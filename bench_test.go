// Package doppio_test holds the top-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation
// (§7), plus ablation benches for the design decisions DESIGN.md
// calls out (D1-D6). Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers depend on the host; EXPERIMENTS.md records the
// paper-vs-measured comparison and the shape checks.
package doppio_test

import (
	"fmt"
	"testing"
	"time"

	"doppio/internal/bench"
	"doppio/internal/browser"
	"doppio/internal/buffer"
	"doppio/internal/core"
	"doppio/internal/fstrace"
	"doppio/internal/jvm"
)

// benchCfg is the scale used by the figure benchmarks: small enough
// for iteration, large enough to dominate startup.
func benchCfg() bench.Config {
	return bench.Config{Scale: 1}
}

// --- Figure 3: macro benchmarks ---

func BenchmarkFig3Native(b *testing.B) {
	for _, spec := range bench.Fig3Workloads {
		b.Run(spec.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := bench.RunNative(spec, benchCfg().Scale); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig3Doppio(b *testing.B) {
	// Chrome only: the paper's headline 24-42x band. The full
	// five-browser matrix comes from `doppio-bench -fig3`; Figure 4/6
	// benches below cover browser diversity cheaply.
	cfg := benchCfg()
	for _, p := range []browser.Profile{browser.Chrome28} {
		for _, spec := range bench.Fig3Workloads {
			b.Run(fmt.Sprintf("%s/%s", p.Name, spec.ID), func(b *testing.B) {
				nativeT, _, err := bench.RunNative(spec, cfg.Scale)
				if err != nil {
					b.Fatal(err)
				}
				var last *bench.DoppioRun
				for i := 0; i < b.N; i++ {
					last, err = bench.RunDoppio(spec, cfg.Scale, p, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(last.Wall)/float64(nativeT), "slowdown-x")
			})
		}
	}
}

// --- Figures 4 and 5: microbenchmarks with suspension accounting ---

func BenchmarkFig4Micro(b *testing.B) {
	cfg := benchCfg()
	for _, spec := range bench.MicroWorkloads {
		b.Run("native/"+spec.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := bench.RunNative(spec, cfg.Scale); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, p := range []browser.Profile{browser.Chrome28, browser.Safari6, browser.IE10} {
			b.Run(p.Name+"/"+spec.ID, func(b *testing.B) {
				nativeT, _, err := bench.RunNative(spec, cfg.Scale)
				if err != nil {
					b.Fatal(err)
				}
				var run *bench.DoppioRun
				for i := 0; i < b.N; i++ {
					run, err = bench.RunDoppio(spec, cfg.Scale, p, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(run.Wall)/float64(nativeT), "wall-slowdown-x")
				b.ReportMetric(float64(run.CPU)/float64(nativeT), "cpu-slowdown-x")
				// Figure 5's metric: suspension share of runtime.
				b.ReportMetric(100*float64(run.Suspended)/float64(run.Wall), "suspended-%")
				b.ReportMetric(float64(run.Suspensions), "suspensions")
			})
		}
	}
}

// --- Figure 6: file system trace replay ---

func BenchmarkFig6FileSystem(b *testing.B) {
	params := fstrace.GenerateParams{
		Ops: 1000, UniqueFiles: 400, BytesRead: 2_000_000, BytesWritten: 30_000,
	}
	for _, p := range []browser.Profile{browser.Chrome28, browser.IE10, browser.IE8} {
		b.Run(p.Name, func(b *testing.B) {
			cfg := benchCfg()
			cfg.Browsers = []browser.Profile{p}
			var slow float64
			for i := 0; i < b.N; i++ {
				rows, err := bench.RunFig6(cfg, params)
				if err != nil {
					b.Fatal(err)
				}
				slow = rows[0].Slowdown
			}
			b.ReportMetric(slow, "vs-native-x")
		})
	}
}

// --- Tables 1 and 2: probe suites ---

func BenchmarkTable1FeatureProbes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1()
		for _, r := range rows {
			if !r.Systems["DoppioJVM"] {
				b.Fatalf("probe failed: %s: %v", r.Feature, r.ProbeErr)
			}
		}
	}
}

func BenchmarkTable2StorageProbes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table2()
		if !rows[1].Probed || !rows[2].Probed {
			b.Fatal("storage probes failed")
		}
	}
}

// --- Ablation D1 (§4.4): resumption mechanism cost ---

func BenchmarkAblationResumeMechanism(b *testing.B) {
	for _, mech := range []string{"setImmediate", "postMessage", "setTimeout"} {
		b.Run(mech, func(b *testing.B) {
			p := browser.IE10 // has all three mechanisms
			var totalSusp, totalRounds int
			var suspended time.Duration
			for i := 0; i < b.N; i++ {
				win := browser.NewWindow(p)
				rt := core.NewRuntime(win.Loop, core.Config{
					Timeslice:      200 * time.Microsecond,
					ForceMechanism: mech,
				})
				steps := 0
				rt.Spawn("spin", core.RunnableFunc(func(t *core.Thread) core.RunResult {
					for steps < 40000 {
						steps++
						if t.CheckSuspend() {
							return core.Yield
						}
					}
					return core.Done
				}))
				rt.Start()
				if err := win.Loop.Run(); err != nil {
					b.Fatal(err)
				}
				st := rt.Stats()
				totalSusp += st.Suspensions
				totalRounds++
				suspended += st.SuspendedTime
			}
			if totalSusp > 0 {
				b.ReportMetric(float64(suspended.Nanoseconds())/float64(totalSusp), "ns/suspend")
			}
		})
	}
}

// --- Ablation D2 (§4.1): adaptive quantum vs fixed counters ---

func BenchmarkAblationQuantum(b *testing.B) {
	cases := map[string]int{"adaptive": 0, "fixed-512": 512, "fixed-65536": 65536}
	for name, fixed := range cases {
		b.Run(name, func(b *testing.B) {
			var longest time.Duration
			for i := 0; i < b.N; i++ {
				win := browser.NewWindow(browser.Chrome28)
				rt := core.NewRuntime(win.Loop, core.Config{
					Timeslice:    2 * time.Millisecond,
					FixedCounter: fixed,
				})
				steps := 0
				rt.Spawn("spin", core.RunnableFunc(func(t *core.Thread) core.RunResult {
					for steps < 300000 {
						steps++
						if t.CheckSuspend() {
							return core.Yield
						}
					}
					return core.Done
				}))
				rt.Start()
				if err := win.Loop.Run(); err != nil {
					b.Fatal(err)
				}
				if lt := win.Loop.Stats().LongestTask; lt > longest {
					longest = lt
				}
			}
			// The quantity the watchdog cares about: how long a single
			// event can run. Fixed counters mis-size it; the adaptive
			// counter tracks the timeslice.
			b.ReportMetric(float64(longest.Microseconds()), "longest-event-us")
		})
	}
}

// --- Ablation D3 (§5.1): typed array vs number array Buffer ---

func BenchmarkAblationBufferStore(b *testing.B) {
	for _, typed := range []bool{true, false} {
		name := "typed-array"
		if !typed {
			name = "number-array"
		}
		b.Run(name, func(b *testing.B) {
			f := &buffer.Factory{Typed: typed}
			buf := f.New(8192)
			for i := 0; i < b.N; i++ {
				off := (i * 4) % 8188
				buf.WriteUInt32LE(uint32(i), off)
				if buf.ReadUInt32LE(off) != uint32(i) {
					b.Fatal("mismatch")
				}
			}
		})
	}
}

// --- Ablation D4 (§5.1): packed binary string density ---

func BenchmarkAblationStringPacking(b *testing.B) {
	data := make([]byte, 16384)
	for i := range data {
		data[i] = byte(i * 31)
	}
	for _, validates := range []bool{false, true} {
		name := "2-bytes-per-char"
		if validates {
			name = "1-byte-per-char"
		}
		b.Run(name, func(b *testing.B) {
			f := &buffer.Factory{Typed: true, ValidatesStrings: validates}
			buf := f.FromBytes(data)
			var packedLen int
			for i := 0; i < b.N; i++ {
				s, err := buf.ToString(buffer.Packed, 0, buf.Len())
				if err != nil {
					b.Fatal(err)
				}
				back, err := f.FromString(s, buffer.Packed)
				if err != nil || back.Len() != len(data) {
					b.Fatal("round trip failed")
				}
				packedLen = len(s)
			}
			b.ReportMetric(float64(packedLen), "go-bytes")
			b.SetBytes(int64(len(data)))
		})
	}
}

// --- Ablation D5 (§6.7): dictionary fields vs slot arrays ---

func BenchmarkAblationFieldStorage(b *testing.B) {
	b.Run("dictionary", func(b *testing.B) {
		fields := map[string]jvm.Slot{
			"Shape/name": {}, "Shape/area": {N: 1}, "Rect/w": {N: 2}, "Rect/h": {N: 5},
		}
		var acc int64
		for i := 0; i < b.N; i++ {
			s := fields["Rect/w"]
			s.N++
			fields["Rect/w"] = s
			acc += fields["Rect/h"].N
		}
		_ = acc
	})
	b.Run("slots", func(b *testing.B) {
		fields := make([]jvm.Slot, 4)
		fields[3].N = 5
		var acc int64
		for i := 0; i < b.N; i++ {
			fields[2].N++
			acc += fields[3].N
		}
		_ = acc
	})
}

// --- Ablation D7 (§6.1): suspend-check placement overhead ---

func BenchmarkAblationSuspendChecks(b *testing.B) {
	run := func(b *testing.B, every int) {
		win := browser.NewWindow(browser.Chrome28)
		rt := core.NewRuntime(win.Loop, core.Config{Timeslice: 5 * time.Millisecond})
		done := false
		steps := 0
		rt.Spawn("spin", core.RunnableFunc(func(t *core.Thread) core.RunResult {
			for steps < b.N {
				steps++
				if every > 0 && steps%every == 0 && t.CheckSuspend() {
					return core.Yield
				}
			}
			done = true
			return core.Done
		}))
		rt.Start()
		if err := win.Loop.Run(); err != nil {
			b.Fatal(err)
		}
		if !done {
			b.Fatal("did not finish")
		}
	}
	b.Run("every-call", func(b *testing.B) { run(b, 1) })
	b.Run("every-64", func(b *testing.B) { run(b, 64) })
	b.Run("never", func(b *testing.B) {
		// Baseline without checks (only viable without a watchdog).
		run(b, 0)
	})
}

package vfs

import (
	"sort"
	"strings"

	"doppio/internal/browser"
	"doppio/internal/eventloop"
	"doppio/internal/vfs/vkernel"
)

// HTTPFS is the read-only backend over files served by the web server
// (§5.1, Figure 2: "one offers read-only access to files served by the
// web server"). Files download asynchronously on demand — the property
// that lets DoppioJVM's class loader pull in class files lazily
// (§6.4) — and are cached in memory once fetched, via the §5.1 index
// utility.
type HTTPFS struct {
	loop   *eventloop.Loop
	remote *browser.RemoteServer
	prefix string // path prefix on the remote server

	// index maps vfs paths to remote existence; built from the
	// server-provided listing at mount time, like Doppio's XHR
	// backend listing file.
	files map[string]bool
	dirs  map[string]bool

	cache map[string][]byte
	sizes map[string]int
}

// NewHTTPFS builds a read-only backend over the remote server,
// exposing the files under prefix. The listing is the pre-generated
// index a Doppio deployment ships alongside the page.
func NewHTTPFS(loop *eventloop.Loop, remote *browser.RemoteServer, prefix string) *HTTPFS {
	h := &HTTPFS{
		loop:   loop,
		remote: remote,
		prefix: strings.Trim(prefix, "/"),
		files:  make(map[string]bool),
		dirs:   map[string]bool{"/": true},
		cache:  make(map[string][]byte),
		sizes:  make(map[string]int),
	}
	for _, rp := range remote.Index() {
		if h.prefix != "" {
			if !strings.HasPrefix(rp, h.prefix+"/") {
				continue
			}
			rp = rp[len(h.prefix)+1:]
		}
		p := "/" + rp
		h.files[p] = true
		for d, _ := splitDir(p); d != "/"; d, _ = splitDir(d) {
			h.dirs[d] = true
		}
	}
	return h
}

// Name identifies the backend.
func (h *HTTPFS) Name() string { return "HTTPRequest" }

// ReadOnly reports true: the web server cannot be written.
func (h *HTTPFS) ReadOnly() bool { return true }

func (h *HTTPFS) remotePath(p string) string {
	rp := strings.TrimPrefix(p, "/")
	if h.prefix != "" {
		rp = h.prefix + "/" + rp
	}
	return rp
}

// Stat describes a node using the index; sizes of not-yet-downloaded
// files are fetched with a HEAD request and cached.
func (h *HTTPFS) Stat(p string, cb func(Stats, error)) {
	if h.dirs[p] {
		cb(Stats{Type: TypeDir}, nil)
		return
	}
	if !h.files[p] {
		cb(Stats{}, Err(ENOENT, "stat", p))
		return
	}
	if size, ok := h.sizes[p]; ok {
		cb(Stats{Type: TypeFile, Size: int64(size)}, nil)
		return
	}
	h.remote.XHRHeadAsync(h.loop, h.remotePath(p), func(size int, err error) {
		if err != nil {
			cb(Stats{}, ErrWithCause(EIO, "stat", p, err))
			return
		}
		h.sizes[p] = size
		cb(Stats{Type: TypeFile, Size: int64(size)}, nil)
	})
}

// Open downloads the file (or serves the cached copy).
func (h *HTTPFS) Open(p string, cb func([]byte, error)) {
	if h.dirs[p] {
		cb(nil, Err(EISDIR, "open", p))
		return
	}
	if !h.files[p] {
		cb(nil, Err(ENOENT, "open", p))
		return
	}
	if data, ok := h.cache[p]; ok {
		cb(append([]byte(nil), data...), nil)
		return
	}
	h.remote.XHRGetAsync(h.loop, h.remotePath(p), func(data []byte, err error) {
		if err != nil {
			cb(nil, ErrWithCause(EIO, "open", p, err))
			return
		}
		h.cache[p] = data
		h.sizes[p] = len(data)
		cb(append([]byte(nil), data...), nil)
	})
}

// Sync fails: the backend is read-only.
func (h *HTTPFS) Sync(p string, _ []byte, cb func(error)) { cb(Err(EROFS, "sync", p)) }

// Unlink fails: the backend is read-only.
func (h *HTTPFS) Unlink(p string, cb func(error)) { cb(Err(EROFS, "unlink", p)) }

// Rmdir fails: the backend is read-only.
func (h *HTTPFS) Rmdir(p string, cb func(error)) { cb(Err(EROFS, "rmdir", p)) }

// Mkdir fails: the backend is read-only.
func (h *HTTPFS) Mkdir(p string, cb func(error)) { cb(Err(EROFS, "mkdir", p)) }

// Rename fails: the backend is read-only.
func (h *HTTPFS) Rename(oldPath, _ string, cb func(error)) { cb(Err(EROFS, "rename", oldPath)) }

// Readdir lists the indexed children of a directory.
func (h *HTTPFS) Readdir(p string, cb func([]string, error)) {
	if h.files[p] {
		cb(nil, Err(ENOTDIR, "readdir", p))
		return
	}
	if !h.dirs[p] {
		cb(nil, Err(ENOENT, "readdir", p))
		return
	}
	seen := make(map[string]bool)
	collect := func(paths map[string]bool) {
		for fp := range paths {
			if name, ok := vkernel.ChildOf(p, fp); ok {
				seen[name] = true
			}
		}
	}
	collect(h.files)
	collect(h.dirs)
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	cb(names, nil)
}

package vfs

import (
	"time"

	"doppio/internal/vfs/vkernel"
)

// FileType distinguishes the node kinds the file system models.
type FileType int

const (
	// TypeFile is a regular file.
	TypeFile FileType = iota
	// TypeDir is a directory.
	TypeDir
	// TypeSymlink is a symbolic link (optional backend feature).
	TypeSymlink
)

// Stats describes a file, in the style of Node's fs.Stats.
type Stats struct {
	Type  FileType
	Size  int64
	Mode  int
	Mtime time.Time
	Atime time.Time
	Ctime time.Time
}

// IsFile reports whether the node is a regular file.
func (s Stats) IsFile() bool { return s.Type == TypeFile }

// IsDirectory reports whether the node is a directory.
func (s Stats) IsDirectory() bool { return s.Type == TypeDir }

// IsSymbolicLink reports whether the node is a symlink.
func (s Stats) IsSymbolicLink() bool { return s.Type == TypeSymlink }

// Flag is a parsed file-open mode.
type Flag int

const (
	// FlagRead permits reads.
	FlagRead Flag = 1 << iota
	// FlagWrite permits writes.
	FlagWrite
	// FlagCreate creates the file if missing.
	FlagCreate
	// FlagTruncate empties the file on open.
	FlagTruncate
	// FlagAppend positions every write at the end.
	FlagAppend
	// FlagExclusive fails if the file already exists.
	FlagExclusive
)

// ParseFlag parses a Node fs flag string ("r", "r+", "w", "wx", "w+",
// "a", "ax", "a+", ...) into a Flag. Unknown strings yield EINVAL.
func ParseFlag(s string) (Flag, error) {
	switch s {
	case "r":
		return FlagRead, nil
	case "r+", "rs+":
		return FlagRead | FlagWrite, nil
	case "w":
		return FlagWrite | FlagCreate | FlagTruncate, nil
	case "wx", "xw":
		return FlagWrite | FlagCreate | FlagTruncate | FlagExclusive, nil
	case "w+":
		return FlagRead | FlagWrite | FlagCreate | FlagTruncate, nil
	case "wx+", "xw+":
		return FlagRead | FlagWrite | FlagCreate | FlagTruncate | FlagExclusive, nil
	case "a":
		return FlagWrite | FlagCreate | FlagAppend, nil
	case "ax", "xa":
		return FlagWrite | FlagCreate | FlagAppend | FlagExclusive, nil
	case "a+":
		return FlagRead | FlagWrite | FlagCreate | FlagAppend, nil
	case "ax+", "xa+":
		return FlagRead | FlagWrite | FlagCreate | FlagAppend | FlagExclusive, nil
	}
	return 0, Err(EINVAL, "open", s)
}

// Has reports whether f includes all bits of g.
func (f Flag) Has(g Flag) bool { return f&g == g }

// Backend is the §5.1 backend API. A backend stores whole files; the
// kernel's file objects provide positional read/write over an
// in-memory copy and write back via Sync on close (NFS-style
// sync-on-close semantics).
//
// All methods take mount-relative, normalized, absolute paths ("/" is
// the backend root, which always exists and is a directory). Backends
// may invoke callbacks synchronously or on a later event-loop turn;
// the front end guarantees asynchronous delivery to its own callers
// either way.
type Backend interface {
	// Name identifies the backend kind (e.g. "InMemory", "LocalStorage").
	Name() string
	// ReadOnly reports whether mutation is forbidden (EROFS).
	ReadOnly() bool
	// Stat describes the node at path.
	Stat(path string, cb func(Stats, error))
	// Open loads the entire contents of the file at path.
	Open(path string, cb func([]byte, error))
	// Sync writes back the entire contents of the file at path,
	// creating it if necessary.
	Sync(path string, data []byte, cb func(error))
	// Unlink removes the file at path.
	Unlink(path string, cb func(error))
	// Rmdir removes the empty directory at path.
	Rmdir(path string, cb func(error))
	// Mkdir creates a directory at path (parent must exist).
	Mkdir(path string, cb func(error))
	// Readdir lists the names in the directory at path.
	Readdir(path string, cb func([]string, error))
	// Rename moves old to new within the backend.
	Rename(oldPath, newPath string, cb func(error))
}

// LinkBackend is the optional link support of §5.1 ("A backend can
// optionally also support chmod, chown, utimes, link, symlink, and
// readlink").
type LinkBackend interface {
	Symlink(target, path string, cb func(error))
	Readlink(path string, cb func(string, error))
}

// AttrBackend is the optional attribute support.
type AttrBackend interface {
	Chmod(path string, mode int, cb func(error))
	Utimes(path string, atime, mtime time.Time, cb func(error))
}

// Flusher is the optional write-back surface: backends (or decorators
// such as CachedBackend) that buffer writes expose Flush to push every
// buffered write to durable storage, in the order it was issued.
type Flusher interface {
	Flush(cb func(error))
}

// splitDir returns the parent directory and base name of a normalized
// absolute path. It is the kernel's vkernel.SplitDir, re-exported for
// the backends in this package.
func splitDir(p string) (dir, base string) { return vkernel.SplitDir(p) }

package vfs

import (
	"testing"

	"doppio/internal/browser"
	"doppio/internal/buffer"
	"doppio/internal/telemetry"
)

func newFlatKVForTest() *FlatKV {
	w := browser.NewWindow(browser.Chrome28)
	return NewLocalStorageFS(w.LocalStorage, &buffer.Factory{})
}

func TestInstrumentRecordsPerOpLatency(t *testing.T) {
	hub := telemetry.NewHub()
	b := Instrument(NewInMemory(), hub)

	if b.Name() != "InMemory" {
		t.Fatalf("Name = %q, want InMemory", b.Name())
	}
	done := make(chan struct{})
	b.Mkdir("/d", func(err error) {
		if err != nil {
			t.Errorf("mkdir: %v", err)
		}
		b.Sync("/d/f", []byte("hello"), func(err error) {
			if err != nil {
				t.Errorf("sync: %v", err)
			}
			b.Open("/d/f", func(data []byte, err error) {
				if err != nil || string(data) != "hello" {
					t.Errorf("open = %q, %v", data, err)
				}
				b.Stat("/d/f", func(s Stats, err error) {
					if err != nil {
						t.Errorf("stat: %v", err)
					}
					close(done)
				})
			})
		})
	})
	<-done

	reg := hub.Registry
	for _, op := range []string{"mkdir", "sync", "open", "stat"} {
		if got := reg.Histogram("vfs.InMemory", op).Count(); got != 1 {
			t.Errorf("vfs.InMemory/%s count = %d, want 1", op, got)
		}
	}
	if got := reg.Counter("vfs.InMemory", "ops").Value(); got != 4 {
		t.Errorf("ops = %d, want 4", got)
	}
}

func TestInstrumentPreservesOptionalCapabilities(t *testing.T) {
	hub := telemetry.NewHub()

	// InMemory supports links and attrs; the wrapper must too.
	mem := Instrument(NewInMemory(), hub)
	lb, ok := mem.(LinkBackend)
	if !ok {
		t.Fatal("instrumented InMemory lost LinkBackend")
	}
	if _, ok := mem.(AttrBackend); !ok {
		t.Fatal("instrumented InMemory lost AttrBackend")
	}
	done := make(chan struct{})
	lb.Symlink("/target", "/link", func(err error) {
		if err != nil {
			t.Errorf("symlink: %v", err)
		}
		close(done)
	})
	<-done
	if got := hub.Registry.Histogram("vfs.InMemory", "symlink").Count(); got != 1 {
		t.Errorf("symlink count = %d, want 1", got)
	}

	// FlatKV supports neither; the wrapper must not invent them.
	kv := Instrument(newFlatKVForTest(), hub)
	if _, ok := kv.(LinkBackend); ok {
		t.Fatal("instrumented FlatKV gained LinkBackend")
	}
	if _, ok := kv.(AttrBackend); ok {
		t.Fatal("instrumented FlatKV gained AttrBackend")
	}
}

func TestInstrumentNilHubIsIdentity(t *testing.T) {
	b := NewInMemory()
	if got := Instrument(b, nil); got != Backend(b) {
		t.Fatal("nil hub must return the backend unchanged")
	}
}

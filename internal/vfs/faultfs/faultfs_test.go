package faultfs

import (
	"testing"
	"time"
)

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := New(Plan{Seed: 7})
	for i := 0; i < 1000; i++ {
		f := in.Next("op")
		if f.Faulty() || f.Delay != 0 {
			t.Fatalf("zero plan injected %+v at op %d", f, i)
		}
	}
	s := in.Stats()
	if s.Ops != 1000 || s.ErrsPre+s.ErrsPost+s.Shorts+s.Delays != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDeterminism(t *testing.T) {
	plan := Plan{
		Seed: 42, ErrRate: 0.2, PostFrac: 0.5, ShortRate: 0.1,
		LatencyRate: 0.3, Latency: time.Millisecond,
		Errnos: []string{"EIO", "ETIMEDOUT"},
	}
	a, b := New(plan), New(plan)
	for i := 0; i < 5000; i++ {
		fa, fb := a.Next("x"), b.Next("x")
		if fa != fb {
			t.Fatalf("sequence diverges at %d: %+v vs %+v", i, fa, fb)
		}
	}
	// A different seed must diverge somewhere early.
	c := New(Plan{Seed: 43, ErrRate: 0.2, PostFrac: 0.5, ShortRate: 0.1,
		LatencyRate: 0.3, Latency: time.Millisecond, Errnos: plan.Errnos})
	a2 := New(plan)
	same := 0
	for i := 0; i < 200; i++ {
		if a2.Next("x") == c.Next("x") {
			same++
		}
	}
	if same == 200 {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestErrRateShiftInvariance is the alignment property the A/B harness
// depends on: turning a fault class off must not shift the sequence of
// the remaining classes, because every Next consumes a fixed number of
// PRNG draws.
func TestErrRateShiftInvariance(t *testing.T) {
	with := New(Plan{Seed: 9, ErrRate: 0.3, LatencyRate: 0.2, Latency: time.Millisecond})
	without := New(Plan{Seed: 9, ErrRate: 0.3})
	for i := 0; i < 2000; i++ {
		fw, fo := with.Next("x"), without.Next("x")
		if (fw.Kind == ErrPre) != (fo.Kind == ErrPre) || fw.Errno != fo.Errno {
			t.Fatalf("errno sequence shifted at %d: %+v vs %+v", i, fw, fo)
		}
	}
}

func TestRatesApproximatelyHonored(t *testing.T) {
	in := New(Plan{Seed: 1, ErrRate: 0.25, PostFrac: 0.4, ShortRate: 0.1})
	const n = 20000
	for i := 0; i < n; i++ {
		in.Next("x")
	}
	s := in.Stats()
	errs := float64(s.ErrsPre+s.ErrsPost) / n
	if errs < 0.22 || errs > 0.28 {
		t.Errorf("err rate = %.3f, want ~0.25", errs)
	}
	post := float64(s.ErrsPost) / float64(s.ErrsPre+s.ErrsPost)
	if post < 0.34 || post > 0.46 {
		t.Errorf("post fraction = %.3f, want ~0.4", post)
	}
	// Shorts only fire when the err draw missed; rate ≈ 0.75 * 0.1.
	shorts := float64(s.Shorts) / n
	if shorts < 0.055 || shorts > 0.095 {
		t.Errorf("short rate = %.3f, want ~0.075", shorts)
	}
}

func TestShortKeepsNonDegenerateFraction(t *testing.T) {
	in := New(Plan{Seed: 3, ShortRate: 1})
	for i := 0; i < 1000; i++ {
		f := in.Next("read")
		if f.Kind != Short {
			t.Fatalf("op %d: kind = %v, want Short", i, f.Kind)
		}
		if f.Keep < 0.1 || f.Keep > 0.9 {
			t.Fatalf("op %d: keep = %v out of [0.1, 0.9]", i, f.Keep)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Error("zero plan reports enabled")
	}
	if !(Plan{ErrRate: 0.1}).Enabled() {
		t.Error("err plan reports disabled")
	}
	if (Plan{LatencyRate: 0.5}).Enabled() {
		t.Error("latency rate without a latency bound reports enabled")
	}
	if !(Plan{LatencyRate: 0.5, Latency: time.Millisecond}).Enabled() {
		t.Error("latency plan reports disabled")
	}
}

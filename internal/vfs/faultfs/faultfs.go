// Package faultfs is the deterministic fault-injection engine behind
// the runtime's network fault model. Browsix-style browser "system
// services" must survive flaky async transports; this package supplies
// the flakiness on demand, reproducibly, so the retry/backoff layers
// above the remote VFS backends (§5.1) and the WebSocket proxy (§5.4)
// can be *proved* to absorb it.
//
// The engine is transport-agnostic: it knows nothing about the vfs
// Backend API or the socket frame format. A decorator (vfs.NewFaulty,
// the Websockify fault hook) asks the Injector for a decision per
// operation and applies it to its own transport — returning an errno,
// delaying a callback, truncating a read, dropping a frame, or
// resetting a connection.
//
// Determinism is the load-bearing property: an Injector seeded with
// the same Plan issues the identical decision sequence on every run,
// because each Next call consumes a fixed number of PRNG draws
// regardless of which rates are enabled. Replaying a single-threaded
// workload therefore injects the same faults at the same operations,
// which is what makes the A/B harness ("bit-identical op log with
// retry absorbing 10% faults") a meaningful check rather than a coin
// flip.
package faultfs

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies one injected fault.
type Kind int

const (
	// None injects nothing (possibly still a latency spike).
	None Kind = iota
	// ErrPre fails the operation before it reaches the transport: the
	// request is lost on the way out.
	ErrPre
	// ErrPost lets the operation commit on the transport and then
	// fails the *reply*: the classic lost-acknowledgement fault that
	// makes blind retries of non-idempotent operations dangerous.
	ErrPost
	// Short truncates a data transfer (short read / short write /
	// truncated frame) and reports a transient error alongside the
	// partial data, so the caller can detect and retry it.
	Short
)

// String names the kind for telemetry and test output.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case ErrPre:
		return "err-pre"
	case ErrPost:
		return "err-post"
	case Short:
		return "short"
	}
	return "unknown"
}

// Fault is one decision: what to do to the current operation. Delay
// may accompany any kind, including None (a latency spike on an
// otherwise healthy call).
type Fault struct {
	Kind Kind
	// Errno is the errno string to surface for ErrPre/ErrPost ("EIO",
	// "ETIMEDOUT", ...). The consumer maps it onto its error type.
	Errno string
	// Delay is a latency spike to apply before completing.
	Delay time.Duration
	// Keep is the fraction of the transfer to deliver for Short,
	// in (0, 1).
	Keep float64
}

// Faulty reports whether the fault alters the operation's outcome
// (latency-only decisions return false).
func (f Fault) Faulty() bool { return f.Kind != None }

// Plan configures an Injector. The zero Plan injects nothing.
type Plan struct {
	// Seed fixes the decision sequence. Two injectors with the same
	// Plan make identical decisions.
	Seed int64
	// ErrRate is the per-operation probability of an injected errno
	// fault (ErrPre or ErrPost).
	ErrRate float64
	// PostFrac is the fraction of errno faults delivered post-commit
	// (ErrPost). Zero means every errno fault is ErrPre.
	PostFrac float64
	// Errnos are the errno strings to inject, chosen uniformly.
	// Empty defaults to {"EIO"} — the transient I/O error.
	Errnos []string
	// ShortRate is the per-operation probability of a truncated
	// transfer (applied by consumers only to data-carrying ops).
	ShortRate float64
	// LatencyRate is the per-operation probability of a latency spike.
	LatencyRate float64
	// Latency is the maximum spike; the actual delay is uniform in
	// (0, Latency].
	Latency time.Duration
}

// Enabled reports whether the plan can inject anything at all.
func (p Plan) Enabled() bool {
	return p.ErrRate > 0 || p.ShortRate > 0 || (p.LatencyRate > 0 && p.Latency > 0)
}

// Stats counts the injector's decisions so far. Counters are atomic;
// read them from any goroutine.
type Stats struct {
	Ops      int64 // Next calls
	ErrsPre  int64
	ErrsPost int64
	Shorts   int64
	Delays   int64
}

// Injector produces the deterministic fault sequence for one Plan.
// It is safe for concurrent use; under concurrency the sequence is
// still fixed but its assignment to operations follows arrival order.
type Injector struct {
	mu   sync.Mutex
	rng  *rand.Rand
	plan Plan

	// observe, when set, is called with every injected (non-None)
	// decision after it is made. It sits outside the PRNG draw schedule,
	// so attaching an observer cannot shift the fault sequence.
	observe func(op string, f Fault)

	ops, errsPre, errsPost, shorts, delays atomic.Int64
}

// Observe registers fn to be called for every faulty decision (None
// decisions, including latency-only ones, are not reported). The hook
// runs outside the injector's PRNG critical section and consumes no
// draws, preserving decision-sequence determinism. The flight
// recorder attaches here via vfs.Stack.
func (in *Injector) Observe(fn func(op string, f Fault)) {
	in.mu.Lock()
	in.observe = fn
	in.mu.Unlock()
}

// New builds an injector for the plan.
func New(plan Plan) *Injector {
	if len(plan.Errnos) == 0 {
		plan.Errnos = []string{"EIO"}
	}
	return &Injector{rng: rand.New(rand.NewSource(plan.Seed)), plan: plan}
}

// Plan returns the injector's configuration.
func (in *Injector) Plan() Plan { return in.plan }

// Next decides the fate of the next operation. op is advisory (it
// appears nowhere in the decision, keeping sequences alignable across
// consumers); every call consumes the same number of PRNG draws so
// that enabling one fault class does not shift the others' sequence.
func (in *Injector) Next(op string) Fault {
	_ = op
	in.mu.Lock()
	// Fixed draw schedule: err?, post?, errno-pick, short?, keep,
	// latency?, delay. Seven draws per call, always.
	dErr := in.rng.Float64()
	dPost := in.rng.Float64()
	dPick := in.rng.Intn(len(in.plan.Errnos))
	dShort := in.rng.Float64()
	dKeep := in.rng.Float64()
	dLat := in.rng.Float64()
	dDelay := in.rng.Float64()
	observe := in.observe
	in.mu.Unlock()

	in.ops.Add(1)
	var f Fault
	if in.plan.LatencyRate > 0 && dLat < in.plan.LatencyRate && in.plan.Latency > 0 {
		f.Delay = time.Duration(dDelay * float64(in.plan.Latency))
		if f.Delay <= 0 {
			f.Delay = time.Nanosecond
		}
		in.delays.Add(1)
	}
	switch {
	case in.plan.ErrRate > 0 && dErr < in.plan.ErrRate:
		f.Errno = in.plan.Errnos[dPick]
		if dPost < in.plan.PostFrac {
			f.Kind = ErrPost
			in.errsPost.Add(1)
		} else {
			f.Kind = ErrPre
			in.errsPre.Add(1)
		}
	case in.plan.ShortRate > 0 && dShort < in.plan.ShortRate:
		f.Kind = Short
		// Keep a non-degenerate prefix: between 10% and 90%.
		f.Keep = 0.1 + 0.8*dKeep
		in.shorts.Add(1)
	}
	if observe != nil && f.Faulty() {
		observe(op, f)
	}
	return f
}

// Stats snapshots the decision counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Ops:      in.ops.Load(),
		ErrsPre:  in.errsPre.Load(),
		ErrsPost: in.errsPost.Load(),
		Shorts:   in.shorts.Load(),
		Delays:   in.delays.Load(),
	}
}

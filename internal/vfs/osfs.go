package vfs

import (
	"os"
	"path/filepath"
	"sort"

	"doppio/internal/core"
	"doppio/internal/eventloop"
)

// OSBackend adapts a host directory to the Doppio backend API, with
// every operation completing asynchronously on the event loop — the
// shape of a real browser's sandboxed-file-system API. It exists for
// the Figure 6 benchmark (Doppio FS machinery over the same storage
// as the native baseline) and for tools that want the simulated
// browser to see real files.
type OSBackend struct {
	loop *eventloop.Loop
	root string
}

// NewOSBackend creates a backend rooted at dir.
func NewOSBackend(loop *eventloop.Loop, dir string) *OSBackend {
	return &OSBackend{loop: loop, root: dir}
}

// Name identifies the backend.
func (o *OSBackend) Name() string { return "HostOS" }

// ReadOnly reports false.
func (o *OSBackend) ReadOnly() bool { return false }

func (o *OSBackend) path(p string) string {
	return filepath.Join(o.root, filepath.FromSlash(p))
}

// dispatch runs op off the event loop and delivers done back on it,
// like any asynchronous browser API. The completion carries the
// deliver closure as its value.
func (o *OSBackend) dispatch(op func() func()) {
	c := core.NewCompletion(o.loop, "vfs.osfs")
	c.Then(func(v interface{}, _ error) { v.(func())() })
	resolve := c.Resolver()
	go func() {
		resolve(op(), nil)
	}()
}

// Stat describes the node at path.
func (o *OSBackend) Stat(p string, cb func(Stats, error)) {
	o.dispatch(func() func() {
		fi, err := os.Stat(o.path(p))
		if err != nil {
			return func() { cb(Stats{}, Err(ENOENT, "stat", p)) }
		}
		st := Stats{Type: TypeFile, Size: fi.Size(), Mtime: fi.ModTime()}
		if fi.IsDir() {
			st.Type = TypeDir
		}
		return func() { cb(st, nil) }
	})
}

// Open loads the file's contents.
func (o *OSBackend) Open(p string, cb func([]byte, error)) {
	o.dispatch(func() func() {
		data, err := os.ReadFile(o.path(p))
		if err != nil {
			return func() { cb(nil, ErrWithCause(ENOENT, "open", p, err)) }
		}
		return func() { cb(data, nil) }
	})
}

// Sync writes back the file's contents.
func (o *OSBackend) Sync(p string, data []byte, cb func(error)) {
	cp := append([]byte(nil), data...)
	o.dispatch(func() func() {
		err := os.WriteFile(o.path(p), cp, 0o644)
		if err != nil {
			return func() { cb(ErrWithCause(EIO, "sync", p, err)) }
		}
		return func() { cb(nil) }
	})
}

// Unlink removes a file.
func (o *OSBackend) Unlink(p string, cb func(error)) {
	o.dispatch(func() func() {
		err := os.Remove(o.path(p))
		if err != nil {
			return func() { cb(ErrWithCause(ENOENT, "unlink", p, err)) }
		}
		return func() { cb(nil) }
	})
}

// Rmdir removes an empty directory.
func (o *OSBackend) Rmdir(p string, cb func(error)) {
	o.dispatch(func() func() {
		err := os.Remove(o.path(p))
		if err != nil {
			return func() { cb(ErrWithCause(ENOTEMPTY, "rmdir", p, err)) }
		}
		return func() { cb(nil) }
	})
}

// Mkdir creates a directory.
func (o *OSBackend) Mkdir(p string, cb func(error)) {
	o.dispatch(func() func() {
		err := os.Mkdir(o.path(p), 0o755)
		if err != nil {
			if os.IsExist(err) {
				return func() { cb(Err(EEXIST, "mkdir", p)) }
			}
			return func() { cb(ErrWithCause(ENOENT, "mkdir", p, err)) }
		}
		return func() { cb(nil) }
	})
}

// Readdir lists a directory.
func (o *OSBackend) Readdir(p string, cb func([]string, error)) {
	o.dispatch(func() func() {
		ents, err := os.ReadDir(o.path(p))
		if err != nil {
			return func() { cb(nil, ErrWithCause(ENOENT, "readdir", p, err)) }
		}
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		sort.Strings(names)
		return func() { cb(names, nil) }
	})
}

// Rename moves a file.
func (o *OSBackend) Rename(oldP, newP string, cb func(error)) {
	o.dispatch(func() func() {
		err := os.Rename(o.path(oldP), o.path(newP))
		if err != nil {
			return func() { cb(ErrWithCause(ENOENT, "rename", oldP, err)) }
		}
		return func() { cb(nil) }
	})
}

package vfs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"doppio/internal/browser"
	"doppio/internal/buffer"
)

// loggedBackend records every operation that reaches the wrapped
// backend, so tests can assert exactly which calls a cache absorbed.
type loggedBackend struct {
	b   Backend
	log *[]string
}

func (l *loggedBackend) rec(format string, args ...interface{}) {
	*l.log = append(*l.log, fmt.Sprintf(format, args...))
}

func (l *loggedBackend) Name() string   { return l.b.Name() }
func (l *loggedBackend) ReadOnly() bool { return l.b.ReadOnly() }

func (l *loggedBackend) Stat(p string, cb func(Stats, error)) { l.rec("stat %s", p); l.b.Stat(p, cb) }
func (l *loggedBackend) Open(p string, cb func([]byte, error)) {
	l.rec("open %s", p)
	l.b.Open(p, cb)
}
func (l *loggedBackend) Sync(p string, data []byte, cb func(error)) {
	l.rec("sync %s", p)
	l.b.Sync(p, data, cb)
}
func (l *loggedBackend) Unlink(p string, cb func(error)) { l.rec("unlink %s", p); l.b.Unlink(p, cb) }
func (l *loggedBackend) Rmdir(p string, cb func(error))  { l.rec("rmdir %s", p); l.b.Rmdir(p, cb) }
func (l *loggedBackend) Mkdir(p string, cb func(error))  { l.rec("mkdir %s", p); l.b.Mkdir(p, cb) }
func (l *loggedBackend) Readdir(p string, cb func([]string, error)) {
	l.rec("readdir %s", p)
	l.b.Readdir(p, cb)
}
func (l *loggedBackend) Rename(o, n string, cb func(error)) {
	l.rec("rename %s %s", o, n)
	l.b.Rename(o, n, cb)
}

func countOps(log []string, op string) int {
	n := 0
	for _, e := range log {
		if strings.HasPrefix(e, op+" ") {
			n++
		}
	}
	return n
}

// The InMemory backend invokes callbacks synchronously, so direct
// backend-level tests can capture results inline.

func bStat(b Backend, p string) (Stats, error) {
	var st Stats
	var out error
	b.Stat(p, func(s Stats, err error) { st, out = s, err })
	return st, out
}

func bOpen(b Backend, p string) ([]byte, error) {
	var data []byte
	var out error
	b.Open(p, func(d []byte, err error) { data, out = d, err })
	return data, out
}

func bSync(b Backend, p string, data []byte) error {
	var out error
	b.Sync(p, data, func(err error) { out = err })
	return out
}

func bUnlink(b Backend, p string) error {
	var out error
	b.Unlink(p, func(err error) { out = err })
	return out
}

func bMkdir(b Backend, p string) error {
	var out error
	b.Mkdir(p, func(err error) { out = err })
	return out
}

func bReaddir(b Backend, p string) ([]string, error) {
	var names []string
	var out error
	b.Readdir(p, func(n []string, err error) { names, out = n, err })
	return names, out
}

func bRename(b Backend, o, n string) error {
	var out error
	b.Rename(o, n, func(err error) { out = err })
	return out
}

func bFlush(t *testing.T, b Backend) error {
	t.Helper()
	fl, ok := b.(Flusher)
	if !ok {
		t.Fatal("cached backend does not implement Flusher")
	}
	var out error
	fl.Flush(func(err error) { out = err })
	return out
}

func cacheStatsOf(t *testing.T, b Backend) CacheStats {
	t.Helper()
	cs, ok := b.(CacheStatser)
	if !ok {
		t.Fatal("cached backend does not implement CacheStatser")
	}
	return cs.CacheStats()
}

func newLoggedCache(opts CacheOptions) (Backend, *[]string) {
	var log []string
	return NewCached(&loggedBackend{b: NewInMemory(), log: &log}, opts), &log
}

func TestCachedServesRepeatedReads(t *testing.T) {
	c, log := newLoggedCache(CacheOptions{})
	if err := bSync(c, "/f", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		data, err := bOpen(c, "/f")
		if err != nil || string(data) != "payload" {
			t.Fatalf("open #%d = %q, %v", i, data, err)
		}
	}
	if n := countOps(*log, "open"); n != 0 {
		t.Errorf("backend opens = %d, want 0 (write-through populated the page)", n)
	}
	if _, err := bStat(c, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := bStat(c, "/f"); err != nil {
		t.Fatal(err)
	}
	if n := countOps(*log, "stat"); n != 1 {
		t.Errorf("backend stats = %d, want 1", n)
	}
	cs := cacheStatsOf(t, c)
	if cs.Hits != 3 || cs.StatHits != 1 || cs.StatMisses != 1 {
		t.Errorf("stats = %+v", cs)
	}
}

func TestCachedNegativeStat(t *testing.T) {
	c, log := newLoggedCache(CacheOptions{})
	for i := 0; i < 3; i++ {
		if _, err := bStat(c, "/missing"); !IsErrno(err, ENOENT) {
			t.Fatalf("stat #%d = %v, want ENOENT", i, err)
		}
	}
	if n := countOps(*log, "stat"); n != 1 {
		t.Errorf("backend stats = %d, want 1 (negative entry should absorb repeats)", n)
	}
	// A cached negative entry also short-circuits Open and Readdir.
	if _, err := bOpen(c, "/missing"); !IsErrno(err, ENOENT) {
		t.Errorf("open = %v, want ENOENT", err)
	}
	if _, err := bReaddir(c, "/missing"); !IsErrno(err, ENOENT) {
		t.Errorf("readdir = %v, want ENOENT", err)
	}
	if n := countOps(*log, "open") + countOps(*log, "readdir"); n != 0 {
		t.Errorf("backend saw %d open/readdir calls, want 0", n)
	}
	// Creating the file clears the negative entry.
	if err := bSync(c, "/missing", []byte("now")); err != nil {
		t.Fatal(err)
	}
	st, err := bStat(c, "/missing")
	if err != nil || st.Size != 3 {
		t.Errorf("stat after create = %+v, %v", st, err)
	}
	if cs := cacheStatsOf(t, c); cs.NegativeHits < 3 {
		t.Errorf("NegativeHits = %d, want >= 3", cs.NegativeHits)
	}
}

// Unlink of a path with a cached negative stat must fail ENOENT without
// a backend round trip, and the entry must not wedge later creation.
func TestUnlinkOfCachedNegativePath(t *testing.T) {
	c, log := newLoggedCache(CacheOptions{})
	if _, err := bStat(c, "/ghost"); !IsErrno(err, ENOENT) {
		t.Fatal(err)
	}
	if err := bUnlink(c, "/ghost"); !IsErrno(err, ENOENT) {
		t.Fatalf("unlink = %v, want ENOENT", err)
	}
	if n := countOps(*log, "unlink"); n != 0 {
		t.Errorf("backend unlinks = %d, want 0", n)
	}
	// Create, unlink for real, then unlink again: the second unlink is
	// served by the negative entry the first one installed.
	if err := bSync(c, "/ghost", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := bUnlink(c, "/ghost"); err != nil {
		t.Fatal(err)
	}
	if n := countOps(*log, "unlink"); n != 1 {
		t.Fatalf("backend unlinks = %d, want 1", n)
	}
	if err := bUnlink(c, "/ghost"); !IsErrno(err, ENOENT) {
		t.Fatalf("re-unlink = %v, want ENOENT", err)
	}
	if n := countOps(*log, "unlink"); n != 1 {
		t.Errorf("backend unlinks = %d, want 1 (negative entry should absorb)", n)
	}
	if _, err := bOpen(c, "/ghost"); !IsErrno(err, ENOENT) {
		t.Errorf("open after unlink = %v, want ENOENT", err)
	}
}

func TestWriteBackFlushOrdering(t *testing.T) {
	c, log := newLoggedCache(CacheOptions{WriteBack: true})
	for _, p := range []string{"/a", "/b", "/c"} {
		if err := bSync(c, p, []byte("v:"+p)); err != nil {
			t.Fatal(err)
		}
	}
	if n := countOps(*log, "sync"); n != 0 {
		t.Fatalf("backend syncs before flush = %d, want 0", n)
	}
	// Buffered files are fully visible through the cache.
	if data, err := bOpen(c, "/b"); err != nil || string(data) != "v:/b" {
		t.Fatalf("open buffered = %q, %v", data, err)
	}
	if st, err := bStat(c, "/c"); err != nil || st.Size != int64(len("v:/c")) {
		t.Fatalf("stat buffered = %+v, %v", st, err)
	}
	if names, err := bReaddir(c, "/"); err != nil || fmt.Sprint(names) != "[a b c]" {
		t.Fatalf("readdir buffered = %v, %v", names, err)
	}
	if err := bFlush(t, c); err != nil {
		t.Fatal(err)
	}
	var syncs []string
	for _, e := range *log {
		if strings.HasPrefix(e, "sync ") {
			syncs = append(syncs, e)
		}
	}
	want := []string{"sync /a", "sync /b", "sync /c"}
	if fmt.Sprint(syncs) != fmt.Sprint(want) {
		t.Fatalf("flush order = %v, want %v", syncs, want)
	}
	// Re-dirtying after a flush queues in new issue order.
	if err := bSync(c, "/b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := bSync(c, "/a", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := bFlush(t, c); err != nil {
		t.Fatal(err)
	}
	syncs = nil
	for _, e := range *log {
		if strings.HasPrefix(e, "sync ") {
			syncs = append(syncs, e)
		}
	}
	if fmt.Sprint(syncs[len(want):]) != "[sync /b sync /a]" {
		t.Fatalf("re-flush order = %v", syncs)
	}
	cs := cacheStatsOf(t, c)
	if cs.WritebackQueued != 5 || cs.WritebackFlushed != 5 || cs.DirtyEntries != 0 {
		t.Errorf("write-back stats = %+v", cs)
	}
}

// Namespace mutations must observe buffered writes: the queue drains
// before the backend sees the mutation.
func TestWriteBackFlushesBeforeMutation(t *testing.T) {
	c, log := newLoggedCache(CacheOptions{WriteBack: true})
	if err := bSync(c, "/a", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := bRename(c, "/a", "/b"); err != nil {
		t.Fatal(err)
	}
	var mutating []string
	for _, e := range *log {
		if strings.HasPrefix(e, "sync ") || strings.HasPrefix(e, "rename ") {
			mutating = append(mutating, e)
		}
	}
	if fmt.Sprint(mutating) != "[sync /a rename /a /b]" {
		t.Fatalf("mutation order = %v, want sync before rename", mutating)
	}
	if data, err := bOpen(c, "/b"); err != nil || string(data) != "data" {
		t.Errorf("open after rename = %q, %v", data, err)
	}
	if _, err := bStat(c, "/a"); !IsErrno(err, ENOENT) {
		t.Errorf("stat old path = %v, want ENOENT", err)
	}
}

// Sync-on-close through the front end buffers in write-back mode; the
// FS-level Flush (and FSync re-sync) drain in issue order.
func TestWriteBackSyncOnCloseOrdering(t *testing.T) {
	var log []string
	h := newHarness(t, browser.Chrome28, func(*browser.Window, *buffer.Factory) Backend {
		return NewCached(&loggedBackend{b: NewInMemory(), log: &log}, CacheOptions{WriteBack: true})
	})
	if err := h.writeFile("/f1", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := h.writeFile("/f2", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if n := countOps(log, "sync"); n != 0 {
		t.Fatalf("backend syncs before flush = %d, want 0", n)
	}
	// The buffered file reads back through a fresh descriptor.
	if data, err := h.readFile("/f1"); err != nil || string(data) != "one" {
		t.Fatalf("readFile buffered = %q, %v", data, err)
	}
	var flushErr error
	h.run(func(done func()) { h.fs.Flush(func(err error) { flushErr = err; done() }) })
	if flushErr != nil {
		t.Fatal(flushErr)
	}
	var syncs []string
	for _, e := range log {
		if strings.HasPrefix(e, "sync ") {
			syncs = append(syncs, e)
		}
	}
	if fmt.Sprint(syncs) != "[sync /f1 sync /f2]" {
		t.Fatalf("close-flush order = %v", syncs)
	}
}

// A rename across a mount boundary fails EXDEV and must leave the
// cached view of the source intact (no spurious negative entry).
func TestCachedRenameAcrossMountBoundary(t *testing.T) {
	for _, writeBack := range []bool{false, true} {
		t.Run(fmt.Sprintf("writeback=%v", writeBack), func(t *testing.T) {
			m := NewMountFS(NewInMemory())
			m.Mount("/mnt", NewInMemory())
			c := NewCached(m, CacheOptions{WriteBack: writeBack})
			if err := bSync(c, "/a", []byte("data")); err != nil {
				t.Fatal(err)
			}
			if _, err := bStat(c, "/a"); err != nil {
				t.Fatal(err)
			}
			if err := bRename(c, "/a", "/mnt/a"); !IsErrno(err, EXDEV) {
				t.Fatalf("cross-mount rename = %v, want EXDEV", err)
			}
			st, err := bStat(c, "/a")
			if err != nil || st.Size != 4 {
				t.Errorf("stat after failed rename = %+v, %v", st, err)
			}
			if data, err := bOpen(c, "/a"); err != nil || string(data) != "data" {
				t.Errorf("open after failed rename = %q, %v", data, err)
			}
			if _, err := bStat(c, "/mnt/a"); !IsErrno(err, ENOENT) {
				t.Errorf("destination exists after failed rename: %v", err)
			}
		})
	}
}

// Mount and Unmount reroute paths under the cache, so both must drop
// clean cached state.
func TestCachedMountChangeInvalidation(t *testing.T) {
	m := NewMountFS(NewInMemory())
	c := NewCached(m, CacheOptions{})
	if err := bMkdir(c, "/data"); err != nil {
		t.Fatal(err)
	}
	if err := bSync(c, "/data/x", []byte("root-copy")); err != nil {
		t.Fatal(err)
	}
	if _, err := bOpen(c, "/data/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := bStat(c, "/data/x"); err != nil {
		t.Fatal(err)
	}
	// Shadow /data with an empty backend: the cached page and stat for
	// /data/x must not survive the routing change.
	m.Mount("/data", NewInMemory())
	if _, err := bStat(c, "/data/x"); !IsErrno(err, ENOENT) {
		t.Errorf("stat served stale after mount: %v", err)
	}
	if _, err := bOpen(c, "/data/x"); !IsErrno(err, ENOENT) {
		t.Errorf("open served stale after mount: %v", err)
	}
	// Unmounting restores the original file — including across the
	// negative entries the shadowing mount just created.
	m.Unmount("/data")
	if data, err := bOpen(c, "/data/x"); err != nil || string(data) != "root-copy" {
		t.Errorf("open after unmount = %q, %v", data, err)
	}
}

func TestCachedEvictionRespectsBudget(t *testing.T) {
	c, log := newLoggedCache(CacheOptions{ByteBudget: 100})
	payload := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 5; i++ {
		if err := bSync(c, fmt.Sprintf("/f%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	cs := cacheStatsOf(t, c)
	if cs.BytesUsed > 100 {
		t.Errorf("BytesUsed = %d, want <= 100", cs.BytesUsed)
	}
	if cs.Evictions < 3 {
		t.Errorf("Evictions = %d, want >= 3", cs.Evictions)
	}
	// The coldest file was evicted: reading it goes to the backend.
	before := countOps(*log, "open")
	if data, err := bOpen(c, "/f0"); err != nil || len(data) != 40 {
		t.Fatalf("open evicted = %d bytes, %v", len(data), err)
	}
	if countOps(*log, "open") != before+1 {
		t.Errorf("open of evicted entry did not reach the backend")
	}
	// Dirty write-back pages are pinned: they never evict, even over
	// budget, because the cache is their only copy.
	cwb, _ := newLoggedCache(CacheOptions{ByteBudget: 50, WriteBack: true})
	for i := 0; i < 4; i++ {
		if err := bSync(cwb, fmt.Sprintf("/d%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if data, err := bOpen(cwb, fmt.Sprintf("/d%d", i)); err != nil || len(data) != 40 {
			t.Fatalf("pinned dirty page /d%d lost: %d bytes, %v", i, len(data), err)
		}
	}
	if err := bFlush(t, cwb); err != nil {
		t.Fatal(err)
	}
	if cs := cacheStatsOf(t, cwb); cs.BytesUsed > 50 {
		t.Errorf("BytesUsed after flush = %d, want <= 50 (clean pages evict)", cs.BytesUsed)
	}
}

func TestCachedReaddirTracksMutations(t *testing.T) {
	c, log := newLoggedCache(CacheOptions{})
	if err := bMkdir(c, "/d"); err != nil {
		t.Fatal(err)
	}
	if names, err := bReaddir(c, "/d"); err != nil || len(names) != 0 {
		t.Fatal(names, err)
	}
	if err := bSync(c, "/d/b", nil); err != nil {
		t.Fatal(err)
	}
	if err := bSync(c, "/d/a", nil); err != nil {
		t.Fatal(err)
	}
	if names, err := bReaddir(c, "/d"); err != nil || fmt.Sprint(names) != "[a b]" {
		t.Fatalf("readdir after writes = %v, %v", names, err)
	}
	if err := bUnlink(c, "/d/b"); err != nil {
		t.Fatal(err)
	}
	if names, err := bReaddir(c, "/d"); err != nil || fmt.Sprint(names) != "[a]" {
		t.Fatalf("readdir after unlink = %v, %v", names, err)
	}
	if n := countOps(*log, "readdir"); n != 1 {
		t.Errorf("backend readdirs = %d, want 1 (cached list tracks mutations)", n)
	}
}

// The decorator preserves optional capabilities, exactly like
// Instrument: wrapping InMemory keeps links and attributes working,
// and symlink creation invalidates the affected stat entries.
func TestCachedPreservesCapabilities(t *testing.T) {
	// Wrap InMemory directly: loggedBackend intentionally exposes only
	// the mandatory surface, but capability preservation is about what
	// the wrapped backend itself implements.
	c := NewCached(NewInMemory(), CacheOptions{})
	if _, ok := c.(LinkBackend); !ok {
		t.Fatal("cached InMemory lost LinkBackend")
	}
	if _, ok := c.(AttrBackend); !ok {
		t.Fatal("cached InMemory lost AttrBackend")
	}
	kv := NewCached(NewLocalStorageFS(browser.NewLocalStorage(1<<20), &buffer.Factory{}), CacheOptions{})
	if _, ok := kv.(LinkBackend); ok {
		t.Fatal("cached FlatKV gained LinkBackend")
	}
	if err := bSync(c, "/target", []byte("data")); err != nil {
		t.Fatal(err)
	}
	// Probe the symlink path first so a negative entry exists.
	if _, err := bStat(c, "/link"); !IsErrno(err, ENOENT) {
		t.Fatal(err)
	}
	var symErr error
	c.(LinkBackend).Symlink("/target", "/link", func(err error) { symErr = err })
	if symErr != nil {
		t.Fatal(symErr)
	}
	st, err := bStat(c, "/link")
	if err != nil || st.Size != 4 {
		t.Errorf("stat through symlink = %+v, %v (stale negative entry?)", st, err)
	}
}

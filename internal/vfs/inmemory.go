package vfs

import (
	"sort"
	"strings"
	"time"

	"doppio/internal/vfs/vkernel"
)

// InMemory is the temporary in-memory storage backend (§5.1, Figure 2:
// "one provides temporary in-memory storage") — the analog of /tmp.
// It keeps a real directory tree and additionally supports the
// optional symlink and attribute operations.
type InMemory struct {
	root *memNode
}

type memNode struct {
	typ      FileType
	data     []byte
	children map[string]*memNode
	target   string // symlink target
	mode     int
	mtime    time.Time
	atime    time.Time
}

// NewInMemory creates an empty in-memory file system.
func NewInMemory() *InMemory {
	return &InMemory{root: newDirNode()}
}

func newDirNode() *memNode {
	return &memNode{typ: TypeDir, children: make(map[string]*memNode), mode: 0o777, mtime: time.Now()}
}

// Name identifies the backend.
func (m *InMemory) Name() string { return "InMemory" }

// ReadOnly reports false: the backend is writable.
func (m *InMemory) ReadOnly() bool { return false }

// walk resolves a normalized absolute path to a node, following
// symlinks in intermediate components (bounded depth).
func (m *InMemory) walk(p string, followLeaf bool) (*memNode, error) {
	return m.walkDepth(p, followLeaf, 0)
}

func (m *InMemory) walkDepth(p string, followLeaf bool, depth int) (*memNode, error) {
	if depth > 16 {
		return nil, Err(EINVAL, "walk", p)
	}
	node := m.root
	if p == "/" {
		return node, nil
	}
	parts := strings.Split(strings.TrimPrefix(p, "/"), "/")
	for i, part := range parts {
		if node.typ != TypeDir {
			return nil, Err(ENOTDIR, "walk", p)
		}
		child, ok := node.children[part]
		if !ok {
			return nil, Err(ENOENT, "walk", p)
		}
		last := i == len(parts)-1
		if child.typ == TypeSymlink && (!last || followLeaf) {
			// Relative targets resolve against the link's directory —
			// the same kernel resolution the front end applies to cwd.
			linkDir := strings.TrimSuffix(p[:len(p)-len(part)], "/")
			resolved, err := m.walkDepth(vkernel.Resolve(linkDir, child.target), true, depth+1)
			if err != nil {
				return nil, err
			}
			child = resolved
		}
		node = child
	}
	return node, nil
}

func (m *InMemory) parentOf(p, op string) (*memNode, string, error) {
	dir, base := splitDir(p)
	if base == "" {
		return nil, "", Err(EINVAL, op, p)
	}
	node, err := m.walk(dir, true)
	if err != nil {
		return nil, "", Err(ENOENT, op, p)
	}
	if node.typ != TypeDir {
		return nil, "", Err(ENOTDIR, op, p)
	}
	return node, base, nil
}

// Stat describes the node at path (following symlinks).
func (m *InMemory) Stat(p string, cb func(Stats, error)) {
	node, err := m.walk(p, true)
	if err != nil {
		cb(Stats{}, Err(ENOENT, "stat", p))
		return
	}
	cb(statOf(node), nil)
}

func statOf(n *memNode) Stats {
	return Stats{
		Type: n.typ, Size: int64(len(n.data)), Mode: n.mode,
		Mtime: n.mtime, Atime: n.atime, Ctime: n.mtime,
	}
}

// Open loads the file's contents.
func (m *InMemory) Open(p string, cb func([]byte, error)) {
	node, err := m.walk(p, true)
	switch {
	case err != nil:
		cb(nil, Err(ENOENT, "open", p))
	case node.typ == TypeDir:
		cb(nil, Err(EISDIR, "open", p))
	default:
		node.atime = time.Now()
		cb(append([]byte(nil), node.data...), nil)
	}
}

// Sync writes back the file's contents, creating it if needed.
func (m *InMemory) Sync(p string, data []byte, cb func(error)) {
	parent, base, err := m.parentOf(p, "sync")
	if err != nil {
		cb(err)
		return
	}
	node, ok := parent.children[base]
	if ok && node.typ == TypeDir {
		cb(Err(EISDIR, "sync", p))
		return
	}
	if !ok {
		node = &memNode{typ: TypeFile, mode: 0o644}
		parent.children[base] = node
	}
	node.data = append([]byte(nil), data...)
	node.mtime = time.Now()
	cb(nil)
}

// Unlink removes a file or symlink.
func (m *InMemory) Unlink(p string, cb func(error)) {
	parent, base, err := m.parentOf(p, "unlink")
	if err != nil {
		cb(err)
		return
	}
	node, ok := parent.children[base]
	switch {
	case !ok:
		cb(Err(ENOENT, "unlink", p))
	case node.typ == TypeDir:
		cb(Err(EISDIR, "unlink", p))
	default:
		delete(parent.children, base)
		cb(nil)
	}
}

// Rmdir removes an empty directory.
func (m *InMemory) Rmdir(p string, cb func(error)) {
	parent, base, err := m.parentOf(p, "rmdir")
	if err != nil {
		cb(err)
		return
	}
	node, ok := parent.children[base]
	switch {
	case !ok:
		cb(Err(ENOENT, "rmdir", p))
	case node.typ != TypeDir:
		cb(Err(ENOTDIR, "rmdir", p))
	case len(node.children) > 0:
		cb(Err(ENOTEMPTY, "rmdir", p))
	default:
		delete(parent.children, base)
		cb(nil)
	}
}

// Mkdir creates a directory; the parent must already exist.
func (m *InMemory) Mkdir(p string, cb func(error)) {
	parent, base, err := m.parentOf(p, "mkdir")
	if err != nil {
		cb(err)
		return
	}
	if _, ok := parent.children[base]; ok {
		cb(Err(EEXIST, "mkdir", p))
		return
	}
	parent.children[base] = newDirNode()
	cb(nil)
}

// Readdir lists a directory's names, sorted.
func (m *InMemory) Readdir(p string, cb func([]string, error)) {
	node, err := m.walk(p, true)
	switch {
	case err != nil:
		cb(nil, Err(ENOENT, "readdir", p))
	case node.typ != TypeDir:
		cb(nil, Err(ENOTDIR, "readdir", p))
	default:
		names := make([]string, 0, len(node.children))
		for name := range node.children {
			names = append(names, name)
		}
		sort.Strings(names)
		cb(names, nil)
	}
}

// Rename moves oldPath to newPath, replacing a plain-file target.
func (m *InMemory) Rename(oldPath, newPath string, cb func(error)) {
	op, ob, err := m.parentOf(oldPath, "rename")
	if err != nil {
		cb(err)
		return
	}
	node, ok := op.children[ob]
	if !ok {
		cb(Err(ENOENT, "rename", oldPath))
		return
	}
	np, nb, err := m.parentOf(newPath, "rename")
	if err != nil {
		cb(err)
		return
	}
	if existing, ok := np.children[nb]; ok {
		if existing.typ == TypeDir && len(existing.children) > 0 {
			cb(Err(ENOTEMPTY, "rename", newPath))
			return
		}
		if existing.typ == TypeDir && node.typ != TypeDir {
			cb(Err(EISDIR, "rename", newPath))
			return
		}
	}
	delete(op.children, ob)
	np.children[nb] = node
	cb(nil)
}

// Symlink creates a symbolic link at path pointing at target.
func (m *InMemory) Symlink(target, p string, cb func(error)) {
	parent, base, err := m.parentOf(p, "symlink")
	if err != nil {
		cb(err)
		return
	}
	if _, ok := parent.children[base]; ok {
		cb(Err(EEXIST, "symlink", p))
		return
	}
	parent.children[base] = &memNode{typ: TypeSymlink, target: target, mode: 0o777, mtime: time.Now()}
	cb(nil)
}

// Readlink returns a symlink's target.
func (m *InMemory) Readlink(p string, cb func(string, error)) {
	node, err := m.walk(p, false)
	switch {
	case err != nil:
		cb("", Err(ENOENT, "readlink", p))
	case node.typ != TypeSymlink:
		cb("", Err(EINVAL, "readlink", p))
	default:
		cb(node.target, nil)
	}
}

// Chmod sets a node's mode bits.
func (m *InMemory) Chmod(p string, mode int, cb func(error)) {
	node, err := m.walk(p, true)
	if err != nil {
		cb(Err(ENOENT, "chmod", p))
		return
	}
	node.mode = mode
	cb(nil)
}

// Utimes sets a node's access and modification times.
func (m *InMemory) Utimes(p string, atime, mtime time.Time, cb func(error)) {
	node, err := m.walk(p, true)
	if err != nil {
		cb(Err(ENOENT, "utimes", p))
		return
	}
	node.atime, node.mtime = atime, mtime
	cb(nil)
}

package vkernel

import "testing"

func TestNormalizeAndClean(t *testing.T) {
	norm := map[string]string{
		"":             ".",
		"/":            "/",
		"/a//b///c/":   "/a/b/c",
		"a/./b":        "a/b",
		"/a/b/../c":    "/a/c",
		"/a/../../b":   "/b",
		"../a":         "../a",
		"a/..":         ".",
		"/..":          "/",
		"a/b/../../..": "..",
	}
	for in, want := range norm {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
	clean := map[string]string{
		"":        "/",
		"a/b":     "/a/b",
		"../a":    "/a",
		"/a/../b": "/b",
		"/a/b/":   "/a/b",
	}
	for in, want := range clean {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestResolve(t *testing.T) {
	cases := []struct{ cwd, p, want string }{
		{"/", "/a/b", "/a/b"},
		{"/home", "rel.txt", "/home/rel.txt"},
		{"/home", "../etc", "/etc"},
		{"/home", ".", "/home"},
		{"", "x", "/x"},
		{"/a/b", "/c/../d", "/d"},
	}
	for _, c := range cases {
		if got := Resolve(c.cwd, c.p); got != c.want {
			t.Errorf("Resolve(%q, %q) = %q, want %q", c.cwd, c.p, got, c.want)
		}
	}
}

func TestSplitDir(t *testing.T) {
	cases := []struct{ p, dir, base string }{
		{"/", "/", ""},
		{"/a", "/", "a"},
		{"/a/b", "/a", "b"},
		{"/a/b/c", "/a/b", "c"},
	}
	for _, c := range cases {
		dir, base := SplitDir(c.p)
		if dir != c.dir || base != c.base {
			t.Errorf("SplitDir(%q) = (%q, %q), want (%q, %q)", c.p, dir, base, c.dir, c.base)
		}
	}
}

func TestPrefixMatching(t *testing.T) {
	if !Under("/mnt/a", "/mnt") || !Under("/mnt", "/mnt") || !Under("/x", "/") {
		t.Error("Under misses true cases")
	}
	if Under("/mntx", "/mnt") || Under("/m", "/mnt") {
		t.Error("Under matches sibling prefixes")
	}
	if got := Rel("/mnt/a/b", "/mnt"); got != "/a/b" {
		t.Errorf("Rel = %q", got)
	}
	if got := Rel("/mnt", "/mnt"); got != "/" {
		t.Errorf("Rel(self) = %q", got)
	}
	if got := Rel("/a/b", "/"); got != "/a/b" {
		t.Errorf("Rel(root) = %q", got)
	}
	if !Covers("/", "/mnt") || !Covers("/a", "/a/b/c") {
		t.Error("Covers misses true cases")
	}
	if Covers("/a", "/a") || Covers("/a", "/ab") {
		t.Error("Covers matches self or siblings")
	}
}

func TestChildOf(t *testing.T) {
	cases := []struct {
		dir, p string
		name   string
		ok     bool
	}{
		{"/", "/a", "a", true},
		{"/", "/a/b", "a", true},
		{"/a", "/a/b/c", "b", true},
		{"/a", "/a", "", false},
		{"/a", "/ab", "", false},
		{"/a/b", "/a", "", false},
	}
	for _, c := range cases {
		name, ok := ChildOf(c.dir, c.p)
		if name != c.name || ok != c.ok {
			t.Errorf("ChildOf(%q, %q) = (%q, %v), want (%q, %v)", c.dir, c.p, name, ok, c.name, c.ok)
		}
	}
}

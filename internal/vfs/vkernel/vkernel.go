// Package vkernel is the shared path-resolution kernel of the Doppio
// file system (§5.1). It owns the one canonical notion of a "resolved
// path": a normalized, absolute, slash-separated string with no "."
// or ".." components and no trailing slash (except the root "/").
//
// Every layer of the VFS stack — the FS front end, the mountable
// composition, and the individual backends — resolves, routes, and
// prefix-matches through these helpers, so normalization and
// prefix-matching behave identically everywhere instead of being
// re-implemented per layer. The package has no dependencies; both
// the vpath Node-path emulation and the vfs kernel build on it.
package vkernel

import "strings"

// Sep is the path separator.
const Sep = "/"

// IsAbs reports whether p is an absolute path.
func IsAbs(p string) bool { return strings.HasPrefix(p, Sep) }

// Normalize cleans a path: collapses duplicate separators, resolves
// "." and "..", and strips trailing slashes (except for the root).
// Relative paths stay relative (leading ".." components survive); an
// empty path normalizes to ".".
func Normalize(p string) string {
	if p == "" {
		return "."
	}
	abs := IsAbs(p)
	parts := strings.Split(p, Sep)
	var out []string
	for _, part := range parts {
		switch part {
		case "", ".":
		case "..":
			if len(out) > 0 && out[len(out)-1] != ".." {
				out = out[:len(out)-1]
			} else if !abs {
				out = append(out, "..")
			}
		default:
			out = append(out, part)
		}
	}
	res := strings.Join(out, Sep)
	if abs {
		return Sep + res
	}
	if res == "" {
		return "."
	}
	return res
}

// Clean normalizes p as an absolute path: relative input is rooted at
// "/" and ".." never escapes the root.
func Clean(p string) string {
	if !IsAbs(p) {
		p = Sep + p
	}
	return Normalize(p)
}

// Resolve resolves p against the working directory cwd, producing a
// canonical absolute path. Absolute p ignores cwd.
func Resolve(cwd, p string) string {
	if IsAbs(p) {
		return Normalize(p)
	}
	if cwd == "" {
		cwd = Sep
	}
	return Clean(cwd + Sep + p)
}

// SplitDir splits a resolved path into its parent directory and base
// name. The root splits into ("/", "").
func SplitDir(p string) (dir, base string) {
	if p == Sep {
		return Sep, ""
	}
	i := strings.LastIndexByte(p, '/')
	if i < 0 {
		return Sep, p
	}
	dir = p[:i]
	if dir == "" {
		dir = Sep
	}
	return dir, p[i+1:]
}

// DirPrefix returns the prefix that children of dir start with:
// dir + "/", or "/" for the root.
func DirPrefix(dir string) string {
	if dir == Sep {
		return Sep
	}
	return dir + Sep
}

// Under reports whether p equals prefix or lives inside it. Both must
// be resolved paths.
func Under(p, prefix string) bool {
	if p == prefix || prefix == Sep {
		return true
	}
	return strings.HasPrefix(p, prefix+Sep)
}

// Rel translates p into the namespace rooted at prefix: Rel(p, p) is
// "/", and Rel("/mnt/a/b", "/mnt") is "/a/b". p must be Under prefix.
func Rel(p, prefix string) string {
	if p == prefix || prefix == Sep && p == Sep {
		return Sep
	}
	if prefix == Sep {
		return p
	}
	return p[len(prefix):]
}

// Covers reports whether sub lives strictly inside p — p is a proper
// ancestor directory of sub.
func Covers(p, sub string) bool {
	return sub != p && Under(sub, p)
}

// ChildOf returns the name of the immediate child of dir that p lives
// in (or is): ChildOf("/a", "/a/b/c") is ("b", true). It reports false
// when p is dir itself or outside dir.
func ChildOf(dir, p string) (string, bool) {
	if !Covers(dir, p) {
		return "", false
	}
	rest := p[len(DirPrefix(dir)):]
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

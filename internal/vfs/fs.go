package vfs

import (
	"doppio/internal/buffer"
	"doppio/internal/eventloop"
	"doppio/internal/vfs/vkernel"
)

// FS is the unified, Node-compatible file system front end (§5.1).
// Every operation is asynchronous: callbacks are delivered on the
// event loop, never synchronously, matching the guarantee the paper
// gives ("our emulated fs module only guarantees the availability of
// the asynchronous interface for any given backend").
type FS struct {
	loop *eventloop.Loop
	bufs *buffer.Factory
	root Backend

	fds    map[int]*FD
	nextFD int
	maxFDs int // 0 = unlimited; Open fails with EMFILE at the cap

	cwd string

	// Ops counts completed file system operations (used by the
	// Figure 6 trace benchmark).
	Ops int
	// OnOp, if non-nil, observes each operation as it is issued —
	// the hook the fstrace recorder attaches to.
	OnOp func(op, path string)
}

// New creates a file system over root, delivering callbacks on loop
// and allocating file buffers from bufs. The initial working
// directory is "/".
func New(loop *eventloop.Loop, bufs *buffer.Factory, root Backend) *FS {
	return &FS{loop: loop, bufs: bufs, root: root, fds: make(map[int]*FD), cwd: "/"}
}

// Root returns the root backend.
func (fs *FS) Root() Backend { return fs.root }

// BufferFactory returns the buffer factory used for file contents.
func (fs *FS) BufferFactory() *buffer.Factory { return fs.bufs }

// --- the process module (§5.1): cwd emulation ---

// Cwd returns the current working directory.
func (fs *FS) Cwd() string { return fs.cwd }

// Chdir changes the current working directory, verifying it exists.
func (fs *FS) Chdir(path string, cb func(error)) {
	p := fs.resolve(path)
	fs.note("chdir", p)
	fs.root.Stat(p, func(st Stats, err error) {
		if err == nil && !st.IsDirectory() {
			err = Err(ENOTDIR, "chdir", p)
		}
		if err == nil {
			fs.cwd = p
		}
		fs.deliverErr(cb, err)
	})
}

// SetCwd sets the working directory without the existence check —
// the inheritance path: a spawned child adopts its parent's already-
// verified cwd, Unix-style. Relative paths resolve against the
// parent's cwd first.
func (fs *FS) SetCwd(path string) { fs.cwd = vkernel.Resolve(fs.cwd, path) }

// SetMaxFDs caps the number of simultaneously open descriptors (the
// per-tenant fd budget); Open fails with EMFILE at the cap. Zero or
// negative removes the cap.
func (fs *FS) SetMaxFDs(n int) {
	if n < 0 {
		n = 0
	}
	fs.maxFDs = n
}

// OpenFDs reports the number of descriptors currently open.
func (fs *FS) OpenFDs() int { return len(fs.fds) }

// CloseAll force-closes every open descriptor without syncing dirty
// contents — the SIGKILL-style teardown path: an evicted tenant's
// buffered writes die with it, and its descriptor table is reclaimed.
// It returns the number of descriptors dropped.
func (fs *FS) CloseAll() int {
	n := len(fs.fds)
	for id, fd := range fs.fds {
		fd.closed = true
		delete(fs.fds, id)
	}
	return n
}

func (fs *FS) resolve(p string) string { return vkernel.Resolve(fs.cwd, p) }

func (fs *FS) note(op, path string) {
	fs.Ops++
	if fs.OnOp != nil {
		fs.OnOp(op, path)
	}
}

// deliver schedules fn on the event loop, guaranteeing asynchronous
// callback delivery.
func (fs *FS) deliver(fn func()) { fs.loop.Post("fs-cb", fn) }

func (fs *FS) deliverErr(cb func(error), err error) {
	fs.deliver(func() { cb(err) })
}

// --- file descriptors ---

// FD is a file descriptor object. Unlike Unix integer descriptors,
// Doppio file descriptors are objects (§5.1): they hold the file's
// entire contents in memory and implement NFS-style sync-on-close.
type FD struct {
	fs     *FS
	id     int
	path   string
	flag   Flag
	data   *buffer.Buffer
	pos    int
	dirty  bool
	closed bool
}

// Path returns the file's absolute path.
func (fd *FD) Path() string { return fd.path }

// ID returns the numeric descriptor id (for display only).
func (fd *FD) ID() int { return fd.id }

// Size returns the current in-memory file size.
func (fd *FD) Size() int { return fd.data.Len() }

// Open opens path with a Node flag string ("r", "w", "a+", ...).
func (fs *FS) Open(path, flagStr string, cb func(*FD, error)) {
	p := fs.resolve(path)
	fs.note("open", p)
	flag, err := ParseFlag(flagStr)
	if err != nil {
		fs.deliver(func() { cb(nil, err) })
		return
	}
	if fs.root.ReadOnly() && flag.Has(FlagWrite) {
		fs.deliver(func() { cb(nil, Err(EROFS, "open", p)) })
		return
	}
	if fs.maxFDs > 0 && len(fs.fds) >= fs.maxFDs {
		fs.deliver(func() { cb(nil, Err(EMFILE, "open", p)) })
		return
	}
	finish := func(fd *FD, err error) { fs.deliver(func() { cb(fd, err) }) }
	newFD := func(data *buffer.Buffer, dirty bool) *FD {
		fs.nextFD++
		fd := &FD{fs: fs, id: fs.nextFD, path: p, flag: flag, data: data, dirty: dirty}
		fs.fds[fd.id] = fd
		return fd
	}
	fs.root.Stat(p, func(st Stats, statErr error) {
		switch {
		case statErr == nil && st.IsDirectory():
			finish(nil, Err(EISDIR, "open", p))
		case statErr == nil:
			if flag.Has(FlagExclusive) {
				finish(nil, Err(EEXIST, "open", p))
				return
			}
			if flag.Has(FlagTruncate) {
				finish(newFD(fs.bufs.New(0), true), nil)
				return
			}
			fs.root.Open(p, func(data []byte, err error) {
				if err != nil {
					finish(nil, err)
					return
				}
				fd := newFD(fs.bufs.FromBytes(data), false)
				if flag.Has(FlagAppend) {
					fd.pos = fd.data.Len()
				}
				finish(fd, nil)
			})
		case IsErrno(statErr, ENOENT) && flag.Has(FlagCreate):
			// Creating: the parent directory must exist.
			dir, _ := splitDir(p)
			fs.root.Stat(dir, func(dst Stats, derr error) {
				switch {
				case derr != nil:
					finish(nil, Err(ENOENT, "open", p))
				case !dst.IsDirectory():
					finish(nil, Err(ENOTDIR, "open", p))
				default:
					finish(newFD(fs.bufs.New(0), true), nil)
				}
			})
		default:
			finish(nil, statErr)
		}
	})
}

// Close closes the descriptor, syncing dirty contents back to the
// backend (sync-on-close).
func (fs *FS) Close(fd *FD, cb func(error)) {
	fs.note("close", fd.path)
	if fd.closed {
		fs.deliverErr(cb, Err(EBADF, "close", fd.path))
		return
	}
	fd.closed = true
	delete(fs.fds, fd.id)
	if !fd.dirty {
		fs.deliverErr(cb, nil)
		return
	}
	fs.root.Sync(fd.path, fd.data.Bytes(), func(err error) {
		fs.deliverErr(cb, err)
	})
}

// FSync flushes dirty contents without closing.
func (fs *FS) FSync(fd *FD, cb func(error)) {
	fs.note("fsync", fd.path)
	if fd.closed {
		fs.deliverErr(cb, Err(EBADF, "fsync", fd.path))
		return
	}
	if !fd.dirty {
		fs.deliverErr(cb, nil)
		return
	}
	fs.root.Sync(fd.path, fd.data.Bytes(), func(err error) {
		if err == nil {
			fd.dirty = false
		}
		fs.deliverErr(cb, err)
	})
}

// Read copies up to length bytes from the file at position pos
// (or the current position when pos < 0) into dst at dstOff and
// advances the position. It reports 0 bytes at EOF.
func (fs *FS) Read(fd *FD, dst *buffer.Buffer, dstOff, length, pos int, cb func(n int, err error)) {
	fs.note("read", fd.path)
	fs.deliver(func() {
		if fd.closed || !fd.flag.Has(FlagRead) {
			cb(0, Err(EBADF, "read", fd.path))
			return
		}
		p := pos
		if p < 0 {
			p = fd.pos
		}
		n := length
		if rem := fd.data.Len() - p; n > rem {
			n = rem
		}
		if n <= 0 {
			cb(0, nil)
			return
		}
		fd.data.Copy(dst, dstOff, p, p+n)
		if pos < 0 {
			fd.pos = p + n
		}
		cb(n, nil)
	})
}

// Write copies length bytes from src at srcOff into the file at
// position pos (current position when pos < 0; end of file under the
// append flag), growing the file as needed.
func (fs *FS) Write(fd *FD, src *buffer.Buffer, srcOff, length, pos int, cb func(n int, err error)) {
	fs.note("write", fd.path)
	fs.deliver(func() {
		if fd.closed || !fd.flag.Has(FlagWrite) {
			cb(0, Err(EBADF, "write", fd.path))
			return
		}
		p := pos
		if fd.flag.Has(FlagAppend) {
			p = fd.data.Len()
		} else if p < 0 {
			p = fd.pos
		}
		if end := p + length; end > fd.data.Len() {
			grown := fs.bufs.New(end)
			fd.data.Copy(grown, 0, 0, fd.data.Len())
			fd.data = grown
		}
		src.Copy(fd.data, p, srcOff, srcOff+length)
		fd.dirty = true
		if pos < 0 || fd.flag.Has(FlagAppend) {
			fd.pos = p + length
		}
		cb(length, nil)
	})
}

// FStat describes an open file.
func (fs *FS) FStat(fd *FD, cb func(Stats, error)) {
	fs.note("fstat", fd.path)
	fs.deliver(func() {
		if fd.closed {
			cb(Stats{}, Err(EBADF, "fstat", fd.path))
			return
		}
		cb(Stats{Type: TypeFile, Size: int64(fd.data.Len())}, nil)
	})
}

// FTruncate resizes an open file.
func (fs *FS) FTruncate(fd *FD, size int, cb func(error)) {
	fs.note("ftruncate", fd.path)
	fs.deliver(func() {
		if fd.closed || !fd.flag.Has(FlagWrite) {
			cb(Err(EBADF, "ftruncate", fd.path))
			return
		}
		resized := fs.bufs.New(size)
		n := fd.data.Len()
		if n > size {
			n = size
		}
		fd.data.Copy(resized, 0, 0, n)
		fd.data = resized
		fd.dirty = true
		cb(nil)
	})
}

// --- whole-file and metadata convenience API (standardized in terms
// of the nine core backend methods, as §5.1 describes) ---

// ReadFile loads the entire file at path.
func (fs *FS) ReadFile(path string, cb func(*buffer.Buffer, error)) {
	p := fs.resolve(path)
	fs.note("readFile", p)
	fs.root.Stat(p, func(st Stats, err error) {
		switch {
		case err != nil:
			fs.deliver(func() { cb(nil, err) })
		case st.IsDirectory():
			fs.deliver(func() { cb(nil, Err(EISDIR, "readFile", p)) })
		default:
			fs.root.Open(p, func(data []byte, err error) {
				fs.deliver(func() {
					if err != nil {
						cb(nil, err)
						return
					}
					cb(fs.bufs.FromBytes(data), nil)
				})
			})
		}
	})
}

// WriteFile replaces the entire file at path with data.
func (fs *FS) WriteFile(path string, data []byte, cb func(error)) {
	p := fs.resolve(path)
	fs.note("writeFile", p)
	if fs.root.ReadOnly() {
		fs.deliverErr(cb, Err(EROFS, "writeFile", p))
		return
	}
	fs.checkWritableTarget(p, "writeFile", func(err error) {
		if err != nil {
			fs.deliverErr(cb, err)
			return
		}
		fs.root.Sync(p, data, func(err error) { fs.deliverErr(cb, err) })
	})
}

// checkWritableTarget verifies p is not a directory and its parent
// exists and is a directory.
func (fs *FS) checkWritableTarget(p, op string, cb func(error)) {
	fs.root.Stat(p, func(st Stats, err error) {
		switch {
		case err == nil && st.IsDirectory():
			cb(Err(EISDIR, op, p))
		case err == nil:
			cb(nil)
		case IsErrno(err, ENOENT):
			dir, _ := splitDir(p)
			fs.root.Stat(dir, func(dst Stats, derr error) {
				switch {
				case derr != nil:
					cb(Err(ENOENT, op, p))
				case !dst.IsDirectory():
					cb(Err(ENOTDIR, op, p))
				default:
					cb(nil)
				}
			})
		default:
			cb(err)
		}
	})
}

// AppendFile appends data to the file at path, creating it if needed.
func (fs *FS) AppendFile(path string, data []byte, cb func(error)) {
	p := fs.resolve(path)
	fs.note("appendFile", p)
	if fs.root.ReadOnly() {
		fs.deliverErr(cb, Err(EROFS, "appendFile", p))
		return
	}
	fs.root.Open(p, func(old []byte, err error) {
		if err != nil && !IsErrno(err, ENOENT) {
			fs.deliverErr(cb, err)
			return
		}
		combined := append(append([]byte(nil), old...), data...)
		fs.checkWritableTarget(p, "appendFile", func(err error) {
			if err != nil {
				fs.deliverErr(cb, err)
				return
			}
			fs.root.Sync(p, combined, func(err error) { fs.deliverErr(cb, err) })
		})
	})
}

// Stat describes the node at path.
func (fs *FS) Stat(path string, cb func(Stats, error)) {
	p := fs.resolve(path)
	fs.note("stat", p)
	fs.root.Stat(p, func(st Stats, err error) {
		fs.deliver(func() { cb(st, err) })
	})
}

// Exists reports whether path exists (Node's deprecated-but-loved API).
func (fs *FS) Exists(path string, cb func(bool)) {
	p := fs.resolve(path)
	fs.note("exists", p)
	fs.root.Stat(p, func(_ Stats, err error) {
		fs.deliver(func() { cb(err == nil) })
	})
}

// Unlink removes the file at path.
func (fs *FS) Unlink(path string, cb func(error)) {
	p := fs.resolve(path)
	fs.note("unlink", p)
	if fs.root.ReadOnly() {
		fs.deliverErr(cb, Err(EROFS, "unlink", p))
		return
	}
	fs.root.Unlink(p, func(err error) { fs.deliverErr(cb, err) })
}

// Rmdir removes the empty directory at path.
func (fs *FS) Rmdir(path string, cb func(error)) {
	p := fs.resolve(path)
	fs.note("rmdir", p)
	if fs.root.ReadOnly() {
		fs.deliverErr(cb, Err(EROFS, "rmdir", p))
		return
	}
	fs.root.Rmdir(p, func(err error) { fs.deliverErr(cb, err) })
}

// Mkdir creates a directory at path.
func (fs *FS) Mkdir(path string, cb func(error)) {
	p := fs.resolve(path)
	fs.note("mkdir", p)
	if fs.root.ReadOnly() {
		fs.deliverErr(cb, Err(EROFS, "mkdir", p))
		return
	}
	fs.root.Mkdir(p, func(err error) { fs.deliverErr(cb, err) })
}

// MkdirAll creates path and any missing parents (not part of Node's
// fs, but simulated here in terms of Mkdir as the §5.1 kernel
// simulates redundant APIs in terms of the core nine).
func (fs *FS) MkdirAll(path string, cb func(error)) {
	p := fs.resolve(path)
	var make func(string, func(error))
	make = func(dir string, done func(error)) {
		fs.root.Stat(dir, func(st Stats, err error) {
			switch {
			case err == nil && st.IsDirectory():
				done(nil)
			case err == nil:
				done(Err(ENOTDIR, "mkdir", dir))
			default:
				parent, _ := splitDir(dir)
				make(parent, func(err error) {
					if err != nil {
						done(err)
						return
					}
					fs.note("mkdir", dir)
					fs.root.Mkdir(dir, done)
				})
			}
		})
	}
	make(p, func(err error) { fs.deliverErr(cb, err) })
}

// Readdir lists the names in the directory at path, sorted by the
// backend's natural order.
func (fs *FS) Readdir(path string, cb func([]string, error)) {
	p := fs.resolve(path)
	fs.note("readdir", p)
	fs.root.Readdir(p, func(names []string, err error) {
		fs.deliver(func() { cb(names, err) })
	})
}

// Rename moves oldPath to newPath.
func (fs *FS) Rename(oldPath, newPath string, cb func(error)) {
	op := fs.resolve(oldPath)
	np := fs.resolve(newPath)
	fs.note("rename", op)
	if fs.root.ReadOnly() {
		fs.deliverErr(cb, Err(EROFS, "rename", op))
		return
	}
	fs.root.Rename(op, np, func(err error) { fs.deliverErr(cb, err) })
}

// Truncate resizes the file at path.
func (fs *FS) Truncate(path string, size int, cb func(error)) {
	p := fs.resolve(path)
	fs.note("truncate", p)
	if fs.root.ReadOnly() {
		fs.deliverErr(cb, Err(EROFS, "truncate", p))
		return
	}
	fs.root.Open(p, func(data []byte, err error) {
		if err != nil {
			fs.deliverErr(cb, err)
			return
		}
		resized := make([]byte, size)
		copy(resized, data)
		fs.root.Sync(p, resized, func(err error) { fs.deliverErr(cb, err) })
	})
}

// Symlink creates a symbolic link (optional backend feature).
func (fs *FS) Symlink(target, path string, cb func(error)) {
	p := fs.resolve(path)
	fs.note("symlink", p)
	lb, ok := fs.root.(LinkBackend)
	if !ok {
		fs.deliverErr(cb, Err(ENOTSUP, "symlink", p))
		return
	}
	lb.Symlink(target, p, func(err error) { fs.deliverErr(cb, err) })
}

// Flush pushes any writes buffered below the front end (a write-back
// CachedBackend, directly or under a MountFS) to durable storage, in
// issue order. Backends without buffering complete immediately.
func (fs *FS) Flush(cb func(error)) {
	fs.note("flush", "/")
	fl, ok := fs.root.(Flusher)
	if !ok {
		fs.deliverErr(cb, nil)
		return
	}
	fl.Flush(func(err error) { fs.deliverErr(cb, err) })
}

// Readlink reads a symbolic link's target.
func (fs *FS) Readlink(path string, cb func(string, error)) {
	p := fs.resolve(path)
	fs.note("readlink", p)
	lb, ok := fs.root.(LinkBackend)
	if !ok {
		fs.deliver(func() { cb("", Err(ENOTSUP, "readlink", p)) })
		return
	}
	lb.Readlink(p, func(target string, err error) {
		fs.deliver(func() { cb(target, err) })
	})
}

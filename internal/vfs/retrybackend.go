package vfs

import (
	"errors"
	"sync"
	"time"

	"doppio/internal/core"
	"doppio/internal/eventloop"
	"doppio/internal/telemetry"
	"doppio/internal/vfs/retry"
)

// errBreakerOpen is the cause attached to breaker fast-fails.
var errBreakerOpen = errors.New("circuit breaker open")

// RetryOptions configures NewRetry.
type RetryOptions struct {
	// Policy shapes the retry loop. A zero Policy gets retry.Defaults().
	Policy retry.Policy
	// Breaker tunes the circuit breaker (zero value = defaults: 5
	// consecutive exhausted ops open it for 1s).
	Breaker retry.BreakerConfig
	// Loop, when non-nil, schedules backoff waits as external events so
	// the event loop stays alive and retries are delivered on the loop
	// thread (required for backends that are not goroutine-safe). With
	// a nil Loop, retries happen immediately with no wait.
	Loop *eventloop.Loop
	// Hub, when non-nil, receives attempt/backoff/breaker counters
	// under the subsystem "vfsretry.<Name>".
	Hub *telemetry.Hub
}

// RetryStats is a point-in-time snapshot of a RetryBackend's counters.
type RetryStats struct {
	Ops              int64 // operations entering the decorator
	Attempts         int64 // backend calls issued (≥ Ops)
	Retries          int64 // re-issued calls after a transient failure
	Recovered        int64 // lost-ack mutations proven committed by a verify probe
	VerifyProbes     int64 // verification reads issued for lost-ack candidates
	FastFails        int64 // operations rejected because the breaker was open
	DeadlineExceeded int64 // operations abandoned at the per-op deadline
	BackoffNanos     int64 // total time spent waiting between attempts
	BreakerState     retry.State
}

// RetryStatser is implemented by every backend returned from NewRetry.
type RetryStatser interface {
	RetryStats() RetryStats
}

// NewRetry wraps a backend in the policy-driven retry decorator — the
// layer that lets the runtime degrade gracefully when the network
// under a remote backend flakes instead of killing the run:
//
//   - Transient failures (vfs.Classify → Errno.Transient: EIO, EAGAIN,
//     ETIMEDOUT) are retried with exponential backoff and jitter, up
//     to the policy's attempt bound and per-op deadline (exceeding the
//     deadline surfaces ETIMEDOUT wrapping the last error).
//   - Non-idempotent mutations (mkdir, unlink, rmdir, rename, symlink)
//     are never blindly re-issued after a transient failure: the reply
//     may have been lost *after* the backend committed. Before the
//     first attempt the decorator takes a pre-flight existence probe —
//     the anchor that makes post-failure probes unambiguous ("the path
//     is gone" only proves our unlink committed if the path existed to
//     begin with; without the anchor, a request lost on the way out
//     would masquerade as a committed op and swallow the backend's
//     ENOENT). When a transient failure follows, a verify probe checks
//     whether the mutation took effect (e.g. the directory now exists)
//     and reports success without a duplicate attempt — the
//     lost-acknowledgement rule that keeps an op-for-op replay under
//     injected faults bit-identical to a fault-free run. When the
//     pre-state rules out a commit (unlinking a path that was already
//     absent, mkdir over an existing node), the mutation is retried
//     directly: the backend's final errno is the correct answer. Reads
//     and whole-file Sync are idempotent and always retried directly.
//   - A circuit breaker counts consecutive exhausted operations; when
//     open, operations fail fast with EAGAIN instead of queueing more
//     traffic onto a dead transport, and after a cooldown a half-open
//     probe decides whether to close it. Responses that prove the
//     service is alive (success or a final errno like ENOENT) reset it.
//
// The wrapper preserves the backend's optional capabilities, exposes
// RetryStats, and reports into hub under "vfsretry.<Name>".
func NewRetry(b Backend, o RetryOptions) Backend {
	if b == nil {
		return nil
	}
	pol := o.Policy
	if pol == (retry.Policy{}) {
		pol = retry.Defaults()
	}
	r := &retrying{
		b:    b,
		pol:  pol,
		rnd:  pol.Rand(),
		br:   retry.NewBreaker(o.Breaker),
		loop: o.Loop,
	}
	if o.Hub != nil {
		sub := "vfsretry." + b.Name()
		reg := o.Hub.Registry
		r.ops = reg.Counter(sub, "ops")
		r.attempts = reg.Counter(sub, "attempts")
		r.retries = reg.Counter(sub, "retries")
		r.recovered = reg.Counter(sub, "recovered")
		r.verifies = reg.Counter(sub, "verify_probes")
		r.fastfail = reg.Counter(sub, "breaker_fastfail")
		r.deadline = reg.Counter(sub, "deadline_exceeded")
		r.backoffNs = reg.Counter(sub, "backoff_ns")
		r.brOpen = reg.Counter(sub, "breaker_open")
		r.brHalfOpen = reg.Counter(sub, "breaker_half_open")
		r.brClosed = reg.Counter(sub, "breaker_closed")
		r.degraded = reg.Counter(sub, "degraded_serves")
		r.backoffHist = reg.Histogram(sub, "backoff")
	} else {
		r.ops = &telemetry.Counter{}
		r.attempts = &telemetry.Counter{}
		r.retries = &telemetry.Counter{}
		r.recovered = &telemetry.Counter{}
		r.verifies = &telemetry.Counter{}
		r.fastfail = &telemetry.Counter{}
		r.deadline = &telemetry.Counter{}
		r.backoffNs = &telemetry.Counter{}
		r.brOpen = &telemetry.Counter{}
		r.brHalfOpen = &telemetry.Counter{}
		r.brClosed = &telemetry.Counter{}
		r.degraded = &telemetry.Counter{}
	}
	var flight *telemetry.FlightRecorder
	if o.Hub != nil {
		flight = o.Hub.Flight
	}
	backendName := b.Name()
	r.br.OnTransition = func(from, to retry.State) {
		flight.RecordNote("breaker", to.String(), backendName, from.String(), 0)
		switch to {
		case retry.Open:
			r.brOpen.Inc()
		case retry.HalfOpen:
			r.brHalfOpen.Inc()
		case retry.Closed:
			r.brClosed.Inc()
		}
	}
	lb, hasLink := b.(LinkBackend)
	ab, hasAttr := b.(AttrBackend)
	r.lb, r.ab = lb, ab
	switch {
	case hasLink && hasAttr:
		return &retryingLinkAttr{retryingLink{r}}
	case hasLink:
		return &retryingLink{r}
	case hasAttr:
		return &retryingAttr{r}
	default:
		return r
	}
}

// retrying decorates the mandatory Backend surface; capability
// variants embed it.
type retrying struct {
	b  Backend
	lb LinkBackend
	ab AttrBackend

	pol  retry.Policy
	br   *retry.Breaker
	loop *eventloop.Loop

	mu  sync.Mutex // guards rnd
	rnd func() float64

	ops, attempts, retries, recovered, verifies *telemetry.Counter
	fastfail, deadline, backoffNs               *telemetry.Counter
	brOpen, brHalfOpen, brClosed, degraded      *telemetry.Counter
	backoffHist                                 *telemetry.Histogram // nil-safe
}

func (r *retrying) Name() string   { return r.b.Name() }
func (r *retrying) ReadOnly() bool { return r.b.ReadOnly() }

// Unwrap exposes the wrapped backend for decorator-chain discovery.
func (r *retrying) Unwrap() Backend { return r.b }

// BreakerState reports the breaker's current state; the Stack uses it
// to count cache hits served while the backend is unreachable.
func (r *retrying) BreakerState() retry.State { return r.br.State() }

// noteDegradedServe counts a cache hit served while the breaker is
// open (wired by Stack).
func (r *retrying) noteDegradedServe() { r.degraded.Inc() }

// RetryStats snapshots the counters.
func (r *retrying) RetryStats() RetryStats {
	return RetryStats{
		Ops:              r.ops.Value(),
		Attempts:         r.attempts.Value(),
		Retries:          r.retries.Value(),
		Recovered:        r.recovered.Value(),
		VerifyProbes:     r.verifies.Value(),
		FastFails:        r.fastfail.Value(),
		DeadlineExceeded: r.deadline.Value(),
		BackoffNanos:     r.backoffNs.Value(),
		BreakerState:     r.br.State(),
	}
}

// backoff computes the jittered wait before the given retry number.
func (r *retrying) backoff(retryNo int) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pol.Backoff(retryNo, r.rnd)
}

// schedule delivers fn after the backoff wait. With a loop, the wait
// rides core.After — a goroutine timer whose completion holds a
// pending slot and delivers fn as an external event on the loop
// thread; without one, fn runs immediately — there is nothing to keep
// alive and nothing that guarantees another goroutine may touch the
// backend.
func (r *retrying) schedule(d time.Duration, fn func()) {
	if d > 0 {
		r.backoffNs.Add(int64(d))
		r.backoffHist.ObserveDuration(d)
	}
	if r.loop == nil || d <= 0 {
		fn()
		return
	}
	core.After(r.loop, "vfs-retry", d, fn)
}

// verifyFn probes whether a mutation already committed. It reports
// (committed, nil) on a determinate answer and a transient error when
// the probe itself failed indeterminately.
type verifyFn func(cb func(committed bool, err error))

// run is the shared retry loop for idempotent operations. attemptFn
// issues one backend call and reports its error; done receives the
// final outcome.
func (r *retrying) run(op, path string, attemptFn func(done func(error)), verify verifyFn, done func(error)) {
	r.ops.Inc()
	if !r.br.Allow() {
		r.fastfail.Inc()
		done(ErrWithCause(EAGAIN, op, path, errBreakerOpen))
		return
	}
	r.attemptLoop(op, path, attemptFn, verify, done)
}

// runMutation is the retry loop for non-idempotent mutations: it takes
// the pre-flight probe first, then arms the lost-ack verify only when
// the pre-state says the mutation could commit (mkVerify may return nil
// to fall back to plain retries). An indeterminate pre-probe also falls
// back to plain retries — for the overwhelmingly common lost-request
// case that is correct, and the vanishing remainder surfaces as a final
// errno rather than silent data corruption.
func (r *retrying) runMutation(op, path string,
	pre func(cb func(existed bool, err error)),
	mkVerify func(existed bool) verifyFn,
	attemptFn func(done func(error)), done func(error)) {
	r.ops.Inc()
	if !r.br.Allow() {
		r.fastfail.Inc()
		done(ErrWithCause(EAGAIN, op, path, errBreakerOpen))
		return
	}
	r.preState(pre, func(existed, ok bool) {
		var verify verifyFn
		if ok {
			verify = mkVerify(existed)
		}
		r.attemptLoop(op, path, attemptFn, verify, done)
	})
}

// preState resolves a mutation's pre-flight existence probe, retrying
// transient probe failures. ok=false means indeterminate.
func (r *retrying) preState(pre func(cb func(existed bool, err error)), done func(existed, ok bool)) {
	tries := 0
	var probe func()
	probe = func() {
		tries++
		r.verifies.Inc()
		pre(func(existed bool, err error) {
			switch {
			case err == nil:
				done(existed, true)
			case IsTransient(err) && tries < r.pol.Attempts():
				r.schedule(r.backoff(tries), probe)
			default:
				done(false, false)
			}
		})
	}
	probe()
}

// attemptLoop drives the attempts for one operation; the breaker slot
// is already held and the pre-state (if any) resolved.
func (r *retrying) attemptLoop(op, path string, attemptFn func(done func(error)), verify verifyFn, done func(error)) {
	start := time.Now()
	attemptNo := 0
	var attempt func()
	finish := func(err error) {
		// The breaker tracks transport health: a success or a final
		// errno proves the backend answered; only transient exhaustion
		// counts against it.
		r.br.Record(err == nil || !IsTransient(err))
		done(err)
	}
	maybeRetry := func(err error) {
		if attemptNo >= r.pol.Attempts() {
			finish(err)
			return
		}
		if r.pol.Deadline > 0 && time.Since(start) >= r.pol.Deadline {
			r.deadline.Inc()
			finish(ErrWithCause(ETIMEDOUT, op, path, err))
			return
		}
		r.retries.Inc()
		r.schedule(r.backoff(attemptNo), attempt)
	}
	attempt = func() {
		attemptNo++
		r.attempts.Inc()
		attemptFn(func(err error) {
			if err == nil || !IsTransient(err) {
				finish(err)
				return
			}
			if verify == nil {
				maybeRetry(err)
				return
			}
			r.runVerify(verify, func(committed bool) {
				if committed {
					r.recovered.Inc()
					finish(nil)
					return
				}
				maybeRetry(err)
			})
		})
	}
	attempt()
}

// runVerify drives a lost-ack probe, retrying the probe itself when it
// fails transiently. An indeterminate probe (errors exhausted) reports
// "not committed", which falls back to retrying the mutation — for
// pre-commit losses that is correct, and for the vanishing remainder
// the duplicate surfaces as a final errno rather than silent data loss.
func (r *retrying) runVerify(verify verifyFn, done func(bool)) {
	tries := 0
	var probe func()
	probe = func() {
		tries++
		r.verifies.Inc()
		verify(func(committed bool, err error) {
			if err == nil {
				done(committed)
				return
			}
			if !IsTransient(err) || tries >= r.pol.Attempts() {
				done(false)
				return
			}
			r.schedule(r.backoff(tries), probe)
		})
	}
	probe()
}

// ---- mandatory Backend surface ----

func (r *retrying) Stat(p string, cb func(Stats, error)) {
	var st Stats
	r.run("stat", p, func(done func(error)) {
		r.b.Stat(p, func(s Stats, err error) { st = s; done(err) })
	}, nil, func(err error) {
		if err != nil {
			st = Stats{}
		}
		cb(st, err)
	})
}

func (r *retrying) Open(p string, cb func([]byte, error)) {
	var data []byte
	r.run("open", p, func(done func(error)) {
		r.b.Open(p, func(d []byte, err error) { data = d; done(err) })
	}, nil, func(err error) {
		if err != nil {
			// A failed attempt may have delivered partial data (short
			// read); never leak it past the retry boundary.
			data = nil
		}
		cb(data, err)
	})
}

// Sync re-uploads the same whole-file contents on retry, so it is
// idempotent by construction.
func (r *retrying) Sync(p string, data []byte, cb func(error)) {
	r.run("sync", p, func(done func(error)) { r.b.Sync(p, data, done) }, nil, cb)
}

// statPre is the standard pre-flight probe: does the path exist?
func (r *retrying) statPre(p string) func(cb func(bool, error)) {
	return func(cb func(bool, error)) {
		r.b.Stat(p, func(_ Stats, err error) {
			switch {
			case err == nil:
				cb(true, nil)
			case IsErrno(err, ENOENT):
				cb(false, nil)
			default:
				cb(false, err)
			}
		})
	}
}

// removalVerify is the post-failure probe for unlink/rmdir: the target
// existed before the attempt, so "gone now" proves our removal landed.
func (r *retrying) removalVerify(p string) verifyFn {
	return func(cb func(bool, error)) {
		r.b.Stat(p, func(_ Stats, err error) {
			switch {
			case err == nil:
				cb(false, nil)
			case IsErrno(err, ENOENT):
				cb(true, nil)
			default:
				cb(false, err)
			}
		})
	}
}

func (r *retrying) Unlink(p string, cb func(error)) {
	mkVerify := func(existed bool) verifyFn {
		if !existed {
			// Nothing to remove — the attempt cannot commit, so plain
			// retries preserve the backend's final ENOENT.
			return nil
		}
		return r.removalVerify(p)
	}
	r.runMutation("unlink", p, r.statPre(p), mkVerify,
		func(done func(error)) { r.b.Unlink(p, done) }, cb)
}

func (r *retrying) Rmdir(p string, cb func(error)) {
	mkVerify := func(existed bool) verifyFn {
		if !existed {
			return nil
		}
		return r.removalVerify(p)
	}
	r.runMutation("rmdir", p, r.statPre(p), mkVerify,
		func(done func(error)) { r.b.Rmdir(p, done) }, cb)
}

func (r *retrying) Mkdir(p string, cb func(error)) {
	mkVerify := func(existed bool) verifyFn {
		if existed {
			// A node is already there — the attempt cannot commit, so
			// plain retries preserve the backend's final EEXIST.
			return nil
		}
		return func(cb func(bool, error)) {
			// Committed iff the directory now exists: the path was free
			// before our attempt, so only our create can have made it.
			r.b.Stat(p, func(st Stats, err error) {
				switch {
				case err == nil:
					cb(st.IsDirectory(), nil)
				case IsErrno(err, ENOENT):
					cb(false, nil)
				default:
					cb(false, err)
				}
			})
		}
	}
	r.runMutation("mkdir", p, r.statPre(p), mkVerify,
		func(done func(error)) { r.b.Mkdir(p, done) }, cb)
}

func (r *retrying) Readdir(p string, cb func([]string, error)) {
	var names []string
	r.run("readdir", p, func(done func(error)) {
		r.b.Readdir(p, func(n []string, err error) { names = n; done(err) })
	}, nil, func(err error) {
		if err != nil {
			names = nil
		}
		cb(names, err)
	})
}

func (r *retrying) Rename(oldPath, newPath string, cb func(error)) {
	mkVerify := func(existed bool) verifyFn {
		if !existed {
			// No source — the attempt cannot commit; plain retries
			// preserve the backend's final ENOENT.
			return nil
		}
		return func(cb func(bool, error)) {
			// The source existed before the attempt, so committed iff
			// it is gone and the destination exists.
			r.b.Stat(oldPath, func(_ Stats, oerr error) {
				switch {
				case oerr == nil:
					cb(false, nil)
				case IsErrno(oerr, ENOENT):
					r.b.Stat(newPath, func(_ Stats, nerr error) {
						switch {
						case nerr == nil:
							cb(true, nil)
						case IsErrno(nerr, ENOENT):
							cb(false, nil)
						default:
							cb(false, nerr)
						}
					})
				default:
					cb(false, oerr)
				}
			})
		}
	}
	r.runMutation("rename", oldPath, r.statPre(oldPath), mkVerify,
		func(done func(error)) { r.b.Rename(oldPath, newPath, done) }, cb)
}

// Flush forwards to the wrapped backend's Flusher if present. The
// individual Sync calls a flush issues pass through this decorator's
// Sync only when the Flusher sits above it, so no retry loop wraps the
// drain itself.
func (r *retrying) Flush(cb func(error)) {
	if fl, ok := r.b.(Flusher); ok {
		fl.Flush(cb)
		return
	}
	cb(nil)
}

// ---- optional capabilities ----

func (r *retrying) symlink(target, p string, cb func(error)) {
	// The pre-flight probe must not follow symlinks, so it uses
	// Readlink: EINVAL means a non-link node occupies the path.
	pre := func(cb func(bool, error)) {
		r.lb.Readlink(p, func(_ string, err error) {
			switch {
			case err == nil, IsErrno(err, EINVAL):
				cb(true, nil)
			case IsErrno(err, ENOENT):
				cb(false, nil)
			default:
				cb(false, err)
			}
		})
	}
	mkVerify := func(existed bool) verifyFn {
		if existed {
			// The path was occupied — the attempt cannot commit; plain
			// retries preserve the backend's final EEXIST.
			return nil
		}
		return func(cb func(bool, error)) {
			// Committed iff the link now resolves to our target.
			r.lb.Readlink(p, func(got string, err error) {
				switch {
				case err == nil:
					cb(got == target, nil)
				case IsErrno(err, ENOENT), IsErrno(err, EINVAL):
					cb(false, nil)
				default:
					cb(false, err)
				}
			})
		}
	}
	r.runMutation("symlink", p, pre, mkVerify,
		func(done func(error)) { r.lb.Symlink(target, p, done) }, cb)
}

func (r *retrying) readlink(p string, cb func(string, error)) {
	var target string
	r.run("readlink", p, func(done func(error)) {
		r.lb.Readlink(p, func(t string, err error) { target = t; done(err) })
	}, nil, func(err error) {
		if err != nil {
			target = ""
		}
		cb(target, err)
	})
}

func (r *retrying) chmod(p string, mode int, cb func(error)) {
	r.run("chmod", p, func(done func(error)) { r.ab.Chmod(p, mode, done) }, nil, cb)
}

func (r *retrying) utimes(p string, atime, mtime time.Time, cb func(error)) {
	r.run("utimes", p, func(done func(error)) { r.ab.Utimes(p, atime, mtime, done) }, nil, cb)
}

// retryingLink adds the optional link capability.
type retryingLink struct{ *retrying }

func (r *retryingLink) Symlink(target, path string, cb func(error)) { r.symlink(target, path, cb) }
func (r *retryingLink) Readlink(path string, cb func(string, error)) {
	r.readlink(path, cb)
}

// retryingAttr adds the optional attribute capability.
type retryingAttr struct{ *retrying }

func (r *retryingAttr) Chmod(path string, mode int, cb func(error)) { r.chmod(path, mode, cb) }
func (r *retryingAttr) Utimes(path string, atime, mtime time.Time, cb func(error)) {
	r.utimes(path, atime, mtime, cb)
}

// retryingLinkAttr has both optional capabilities.
type retryingLinkAttr struct{ retryingLink }

func (r *retryingLinkAttr) Chmod(path string, mode int, cb func(error)) { r.chmod(path, mode, cb) }
func (r *retryingLinkAttr) Utimes(path string, atime, mtime time.Time, cb func(error)) {
	r.utimes(path, atime, mtime, cb)
}

package vfs

import (
	"fmt"
	"testing"
	"time"

	"doppio/internal/core"
)

func TestClassifyDeadlineError(t *testing.T) {
	// A completion deadline expiring must classify as a transient
	// ETIMEDOUT so the retry layer redials instead of giving up.
	de := &core.DeadlineError{Label: "cloud-read", After: 50 * time.Millisecond}
	errno, ok := Classify(de)
	if !ok || errno != ETIMEDOUT {
		t.Fatalf("Classify(DeadlineError) = %v, %v; want ETIMEDOUT", errno, ok)
	}
	if !IsTransient(de) {
		t.Error("DeadlineError not transient")
	}
	// Wrapped deadline errors classify too.
	wrapped := fmt.Errorf("read /f: %w", de)
	if errno, ok := Classify(wrapped); !ok || errno != ETIMEDOUT {
		t.Fatalf("Classify(wrapped) = %v, %v", errno, ok)
	}
	// ApiError still wins its own classification.
	if errno, ok := Classify(Err(ENOENT, "stat", "/f")); !ok || errno != ENOENT {
		t.Fatalf("Classify(ApiError) = %v, %v", errno, ok)
	}
	if _, ok := Classify(fmt.Errorf("plain")); ok {
		t.Error("plain error classified")
	}
}

func TestProcessErrnoClassification(t *testing.T) {
	// The process-layer errnos: EINTR is retryable (the interrupted
	// call did not take effect), the rest are final facts about the
	// world that retrying cannot change.
	for errno, wantTransient := range map[Errno]bool{
		EPIPE:  false,
		ECHILD: false,
		ESRCH:  false,
		EINTR:  true,
	} {
		if got := errno.Transient(); got != wantTransient {
			t.Errorf("%s.Transient() = %v, want %v", errno, got, wantTransient)
		}
		err := Err(errno, "read", "pipe:0")
		if got, ok := Classify(err); !ok || got != errno {
			t.Errorf("Classify(%s) = %v, %v", errno, got, ok)
		}
		if errnoText(errno) == "unknown error" {
			t.Errorf("%s has no errnoText entry", errno)
		}
	}
	if IsTransient(Err(EPIPE, "write", "pipe:1")) {
		t.Error("EPIPE classified transient; writers would spin on a closed pipe")
	}
}

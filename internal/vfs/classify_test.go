package vfs

import (
	"fmt"
	"testing"
	"time"

	"doppio/internal/core"
)

func TestClassifyDeadlineError(t *testing.T) {
	// A completion deadline expiring must classify as a transient
	// ETIMEDOUT so the retry layer redials instead of giving up.
	de := &core.DeadlineError{Label: "cloud-read", After: 50 * time.Millisecond}
	errno, ok := Classify(de)
	if !ok || errno != ETIMEDOUT {
		t.Fatalf("Classify(DeadlineError) = %v, %v; want ETIMEDOUT", errno, ok)
	}
	if !IsTransient(de) {
		t.Error("DeadlineError not transient")
	}
	// Wrapped deadline errors classify too.
	wrapped := fmt.Errorf("read /f: %w", de)
	if errno, ok := Classify(wrapped); !ok || errno != ETIMEDOUT {
		t.Fatalf("Classify(wrapped) = %v, %v", errno, ok)
	}
	// ApiError still wins its own classification.
	if errno, ok := Classify(Err(ENOENT, "stat", "/f")); !ok || errno != ENOENT {
		t.Fatalf("Classify(ApiError) = %v, %v", errno, ok)
	}
	if _, ok := Classify(fmt.Errorf("plain")); ok {
		t.Error("plain error classified")
	}
}

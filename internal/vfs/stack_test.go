package vfs

import (
	"fmt"
	"testing"

	"doppio/internal/telemetry"
	"doppio/internal/vfs/faultfs"
	"doppio/internal/vfs/retry"
)

// TestStackOrder: whatever order the options are given in, the layers
// come out backend → faults → retry → cache → instrument.
func TestStackOrder(t *testing.T) {
	base := NewInMemory()
	hub := telemetry.NewHub()
	// Deliberately scrambled option order.
	b := Stack(base,
		WithTelemetry(hub),
		WithCache(CacheOptions{}),
		WithFaults(faultfs.Plan{Seed: 1, ErrRate: 0.5}),
		WithRetry(RetryOptions{}),
	)
	var layers []Backend
	for cur := b; cur != nil; {
		layers = append(layers, cur)
		u, ok := cur.(Unwrapper)
		if !ok {
			break
		}
		cur = u.Unwrap()
	}
	if len(layers) != 5 {
		t.Fatalf("stack depth = %d, want 5 (instrument, cache, retry, faults, base)", len(layers))
	}
	if layers[4] != Backend(base) {
		t.Fatal("innermost layer is not the base backend")
	}
	if _, ok := layers[1].(CacheStatser); !ok {
		t.Errorf("layer 1 is %T, want the cache", layers[1])
	}
	if _, ok := layers[2].(RetryStatser); !ok {
		t.Errorf("layer 2 is %T, want the retry decorator", layers[2])
	}
	if _, ok := layers[3].(FaultStatser); !ok {
		t.Errorf("layer 3 is %T, want the fault injector", layers[3])
	}
	// The outermost instrument layer is none of the above.
	if _, ok := layers[0].(CacheStatser); ok {
		t.Errorf("layer 0 is %T; the instrument layer must be outermost", layers[0])
	}
	// Find recovers every layer from the outside.
	if _, ok := Find[CacheStatser](b); !ok {
		t.Error("Find[CacheStatser] failed")
	}
	if _, ok := Find[RetryStatser](b); !ok {
		t.Error("Find[RetryStatser] failed")
	}
	if _, ok := Find[FaultStatser](b); !ok {
		t.Error("Find[FaultStatser] failed")
	}
}

func TestStackEmptyAndDisabledLayers(t *testing.T) {
	base := NewInMemory()
	if got := Stack(base); got != Backend(base) {
		t.Error("Stack with no options must return the backend unchanged")
	}
	// A plan that cannot inject adds no fault layer.
	got := Stack(base, WithFaults(faultfs.Plan{Seed: 9}))
	if got != Backend(base) {
		t.Error("Stack with a disabled fault plan must add nothing")
	}
}

// TestStackDegradedServe: with retry and cache stacked, an open
// breaker turns cache hits into counted degraded serves — the graceful
// degradation the stack order exists for.
func TestStackDegradedServe(t *testing.T) {
	s := newScripted(NewInMemory())
	s.Backend.Sync("/warm", []byte("cached"), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	b := Stack(s,
		WithRetry(RetryOptions{
			Policy:  retry.Policy{MaxAttempts: 1},
			Breaker: retry.BreakerConfig{Threshold: 1},
		}),
		WithCache(CacheOptions{}),
	)
	cs, _ := Find[CacheStatser](b)
	rs, _ := Find[RetryStatser](b)

	// Warm the stat cache through a healthy backend.
	b.Stat("/warm", func(_ Stats, err error) {
		if err != nil {
			t.Fatalf("warm stat: %v", err)
		}
	})
	// One exhausted miss trips the breaker.
	s.fail("stat", EIO, false)
	b.Stat("/other", func(_ Stats, err error) {
		if !IsErrno(err, EIO) {
			t.Fatalf("tripping stat: %v, want EIO", err)
		}
	})
	if st := rs.RetryStats(); st.BreakerState != retry.Open {
		t.Fatalf("breaker = %v, want open", st.BreakerState)
	}
	// The cached path is still served — and counted as degraded.
	b.Stat("/warm", func(st Stats, err error) {
		if err != nil || st.Size != 6 {
			t.Fatalf("degraded stat: size %d err %v", st.Size, err)
		}
	})
	if st := cs.CacheStats(); st.DegradedServes < 1 {
		t.Fatalf("cache stats = %+v, want ≥1 degraded serve", st)
	}
	// An uncached path fast-fails instead of hanging on a dead backend.
	b.Stat("/cold", func(_ Stats, err error) {
		if !IsErrno(err, EAGAIN) {
			t.Fatalf("cold stat err = %v, want EAGAIN fast-fail", err)
		}
	})
	if st := rs.RetryStats(); st.FastFails < 1 {
		t.Fatalf("retry stats = %+v, want ≥1 fast fail", st)
	}
}

// dupDetect sits under the fault injector and records "duplicate
// symptoms": errors that can only arise when a committed non-idempotent
// mutation is re-issued. The workload above performs each mutation on a
// fresh path exactly once, so any EEXIST on mkdir — or ENOENT on
// unlink/rmdir/rename — reaching the real backend is a duplicate.
type dupDetect struct {
	Backend
	dups []string
}

func (d *dupDetect) Mkdir(p string, cb func(error)) {
	d.Backend.Mkdir(p, func(err error) {
		if IsErrno(err, EEXIST) {
			d.dups = append(d.dups, "mkdir "+p)
		}
		cb(err)
	})
}

func (d *dupDetect) Unlink(p string, cb func(error)) {
	d.Backend.Unlink(p, func(err error) {
		if IsErrno(err, ENOENT) {
			d.dups = append(d.dups, "unlink "+p)
		}
		cb(err)
	})
}

func (d *dupDetect) Rmdir(p string, cb func(error)) {
	d.Backend.Rmdir(p, func(err error) {
		if IsErrno(err, ENOENT) {
			d.dups = append(d.dups, "rmdir "+p)
		}
		cb(err)
	})
}

func (d *dupDetect) Rename(oldPath, newPath string, cb func(error)) {
	d.Backend.Rename(oldPath, newPath, func(err error) {
		if IsErrno(err, ENOENT) {
			d.dups = append(d.dups, "rename "+oldPath)
		}
		cb(err)
	})
}

// TestRetryNeverDuplicatesMutations is the lost-acknowledgement
// property test: under a heavy post-commit fault rate, the retry
// decorator must absorb every fault without ever re-issuing a committed
// mkdir/unlink/rmdir/rename. Seeds sweep several deterministic fault
// sequences.
func TestRetryNeverDuplicatesMutations(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dup := &dupDetect{Backend: NewInMemory()}
			inj := faultfs.New(faultfs.Plan{
				Seed:      seed,
				ErrRate:   0.3,
				PostFrac:  0.5, // half lost-ack, half lost-request
				ShortRate: 0.1,
			})
			b := Stack(dup,
				WithInjector(inj),
				WithRetry(RetryOptions{Policy: retry.Policy{MaxAttempts: 8}}),
			)
			rs, _ := Find[RetryStatser](b)

			must := func(op string, err error) {
				if err != nil {
					t.Fatalf("%s: %v", op, err)
				}
			}
			const rounds = 60
			for i := 0; i < rounds; i++ {
				d := fmt.Sprintf("/d%d", i)
				b.Mkdir(d, func(err error) { must("mkdir "+d, err) })
				b.Sync(d+"/f", []byte(fmt.Sprintf("payload-%d", i)), func(err error) { must("sync", err) })
				b.Rename(d+"/f", d+"/g", func(err error) { must("rename", err) })
				b.Unlink(d+"/g", func(err error) { must("unlink", err) })
				b.Rmdir(d, func(err error) { must("rmdir "+d, err) })
			}
			if len(dup.dups) != 0 {
				t.Fatalf("committed mutations were re-issued: %v", dup.dups)
			}
			// The run must actually have exercised the lost-ack path.
			st := rs.RetryStats()
			fst := inj.Stats()
			if fst.ErrsPost == 0 || st.Recovered == 0 {
				t.Fatalf("fault plan too weak: injector %+v, retry %+v", fst, st)
			}
			// Nothing left behind: every directory was removed.
			dup.Backend.Readdir("/", func(names []string, err error) {
				must("readdir /", err)
				if len(names) != 0 {
					t.Fatalf("leftover entries after the run: %v", names)
				}
			})
		})
	}
}

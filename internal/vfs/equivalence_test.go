package vfs

import (
	"fmt"
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/buffer"
	"doppio/internal/vfs/faultfs"
	"doppio/internal/vfs/retry"
)

// TestBackendEquivalence drives the same pseudo-random operation
// sequence against every writable backend and requires identical
// observable outcomes — the §5.1 contract that the unified API gives
// "full-featured read/write functionality" regardless of the storage
// mechanism underneath. Every backend also runs wrapped in the caching
// decorator (write-through and, where meaningful, write-back with
// periodic flushes): the cache must be observationally invisible.
func TestBackendEquivalence(t *testing.T) {
	type opResult struct {
		op   string
		err  string
		data string
	}
	// flushEvery > 0 inserts an unrecorded front-end Flush every that
	// many steps, draining write-back queues mid-sequence.
	runSequence := func(name string, flushEvery int, mk func(w *browser.Window, bufs *buffer.Factory) Backend) []opResult {
		h := newHarness(t, browser.Chrome28, mk)
		var results []opResult
		record := func(op string, data string, err error) {
			r := opResult{op: op, data: data}
			if err != nil {
				if ae, ok := err.(*ApiError); ok {
					r.err = string(ae.Errno)
				} else {
					r.err = "ERR"
				}
			}
			results = append(results, r)
		}
		// Deterministic pseudo-random op stream.
		seed := uint32(12345)
		next := func(n int) int {
			seed = seed*1664525 + 1013904223
			return int(seed>>16) % n
		}
		paths := []string{"/a", "/b", "/dir/c", "/dir/d", "/dir/sub/e"}
		h.mkdir("/dir")
		h.mkdir("/dir/sub")
		for i := 0; i < 120; i++ {
			p := paths[next(len(paths))]
			switch next(6) {
			case 0:
				err := h.writeFile(p, []byte(fmt.Sprintf("content-%d", i)))
				record("write "+p, "", err)
			case 1:
				data, err := h.readFile(p)
				record("read "+p, string(data), err)
			case 2:
				st, err := h.stat(p)
				record("stat "+p, fmt.Sprint(st.Size), err)
			case 3:
				err := h.unlink(p)
				record("unlink "+p, "", err)
			case 4:
				names, err := h.readdir("/dir")
				record("readdir", fmt.Sprint(names), err)
			case 5:
				other := paths[next(len(paths))]
				err := h.rename(p, other)
				record("rename "+p+" "+other, "", err)
			}
			if flushEvery > 0 && i%flushEvery == flushEvery-1 {
				h.run(func(done func()) { h.fs.Flush(func(error) { done() }) })
			}
		}
		return results
	}

	reference := runSequence("inmemory", 0, func(*browser.Window, *buffer.Factory) Backend {
		return NewInMemory()
	})

	// Base backend constructors; the cached variants below reuse them.
	base := map[string]func(w *browser.Window, bufs *buffer.Factory) Backend{
		"inmemory": func(*browser.Window, *buffer.Factory) Backend {
			return NewInMemory()
		},
		"localstorage": func(w *browser.Window, bufs *buffer.Factory) Backend {
			return NewLocalStorageFS(w.LocalStorage, bufs)
		},
		"indexeddb": func(w *browser.Window, bufs *buffer.Factory) Backend {
			return NewIndexedDBFS(w.IndexedDB, bufs)
		},
		"cloud": func(w *browser.Window, bufs *buffer.Factory) Backend {
			return NewCloudFS(w.Loop, NewCloudStore(0))
		},
		// The op stream never touches /shadow, so the mount must be
		// invisible to it.
		"mounted": func(w *browser.Window, bufs *buffer.Factory) Backend {
			m := NewMountFS(NewInMemory())
			m.Mount("/shadow", NewLocalStorageFS(w.LocalStorage, bufs))
			return m
		},
	}

	type variant struct {
		name       string
		flushEvery int
		mk         func(w *browser.Window, bufs *buffer.Factory) Backend
	}
	var variants []variant
	for name, mk := range base {
		mk := mk
		if name != "inmemory" {
			variants = append(variants, variant{name, 0, mk})
		}
		variants = append(variants, variant{"cached-" + name, 0,
			func(w *browser.Window, bufs *buffer.Factory) Backend {
				return NewCached(mk(w, bufs), CacheOptions{})
			}})
		variants = append(variants, variant{"cached-writeback-" + name, 25,
			func(w *browser.Window, bufs *buffer.Factory) Backend {
				return NewCached(mk(w, bufs), CacheOptions{WriteBack: true})
			}})
		// The decorator stack at fault rate 0: the fault and retry
		// layers must be observationally invisible on a healthy backend.
		variants = append(variants, variant{"stack-faults0-" + name, 0,
			func(w *browser.Window, bufs *buffer.Factory) Backend {
				return Stack(mk(w, bufs),
					WithFaults(faultfs.Plan{Seed: 42, ErrRate: 0, ShortRate: 0}),
					WithRetry(RetryOptions{Loop: w.Loop}),
				)
			}})
		// 10% injected faults (a quarter of them post-commit lost acks,
		// plus short reads): the retry layer must absorb every one, so
		// the op stream is bit-identical to the bare backend's.
		variants = append(variants, variant{"stack-retry-faults10-" + name, 0,
			func(w *browser.Window, bufs *buffer.Factory) Backend {
				return Stack(mk(w, bufs),
					WithFaults(faultfs.Plan{Seed: 42, ErrRate: 0.1, PostFrac: 0.25, ShortRate: 0.05}),
					WithRetry(RetryOptions{Policy: retry.Policy{
						MaxAttempts: 8, BaseDelay: 50 * time.Microsecond,
						MaxDelay: 500 * time.Microsecond, Multiplier: 2,
						Jitter: 0.2, Seed: 42,
					}, Loop: w.Loop}),
				)
			}})
		// The full stack — faults, retry, and cache together.
		variants = append(variants, variant{"stack-full-" + name, 0,
			func(w *browser.Window, bufs *buffer.Factory) Backend {
				return Stack(mk(w, bufs),
					WithFaults(faultfs.Plan{Seed: 7, ErrRate: 0.1, PostFrac: 0.25, ShortRate: 0.05}),
					WithRetry(RetryOptions{Policy: retry.Policy{
						MaxAttempts: 8, BaseDelay: 50 * time.Microsecond,
						MaxDelay: 500 * time.Microsecond, Multiplier: 2,
						Jitter: 0.2, Seed: 7,
					}, Loop: w.Loop}),
					WithCache(CacheOptions{}),
				)
			}})
	}
	// A tight budget forces constant eviction; correctness must not
	// depend on residency.
	variants = append(variants, variant{"cached-tiny-budget", 0,
		func(*browser.Window, *buffer.Factory) Backend {
			return NewCached(NewInMemory(), CacheOptions{ByteBudget: 16})
		}})

	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			got := runSequence(v.name, v.flushEvery, v.mk)
			if len(got) != len(reference) {
				t.Fatalf("%s: %d results vs %d", v.name, len(got), len(reference))
			}
			for i := range got {
				if got[i] != reference[i] {
					t.Errorf("%s diverges at step %d (%s):\n  inmemory: %+v\n  %s: %+v",
						v.name, i, got[i].op, reference[i], v.name, got[i])
					break
				}
			}
		})
	}
}

// TestReadOnlyBackendCacheEquivalence checks the fifth backend kind:
// a cached HTTPFS must be observationally identical to a bare one,
// including EROFS on mutation attempts and ENOENT probes.
func TestReadOnlyBackendCacheEquivalence(t *testing.T) {
	type result struct {
		op, err, data string
	}
	runSequence := func(cached bool) []result {
		h := newHarness(t, browser.Chrome28, func(w *browser.Window, bufs *buffer.Factory) Backend {
			w.Remote.Serve("assets/logo.png", []byte{1, 2, 3})
			w.Remote.Serve("assets/maps/level1.json", []byte(`{"w":8}`))
			w.Remote.Serve("assets/maps/level2.json", []byte(`{"w":9}`))
			b := Backend(NewHTTPFS(w.Loop, w.Remote, "assets"))
			if cached {
				b = NewCached(b, CacheOptions{WriteBack: true}) // WriteBack must be ignored
			}
			return b
		})
		var results []result
		record := func(op, data string, err error) {
			r := result{op: op, data: data}
			if err != nil {
				if ae, ok := err.(*ApiError); ok {
					r.err = string(ae.Errno)
				} else {
					r.err = "ERR"
				}
			}
			results = append(results, r)
		}
		for round := 0; round < 2; round++ {
			for _, p := range []string{"/logo.png", "/maps/level1.json", "/maps/level2.json", "/missing.png"} {
				data, err := h.readFile(p)
				record("read "+p, string(data), err)
				st, err := h.stat(p)
				record("stat "+p, fmt.Sprint(st.Size), err)
			}
			names, err := h.readdir("/maps")
			record("readdir /maps", fmt.Sprint(names), err)
			record("write", "", h.writeFile("/new.txt", []byte("x")))
			record("unlink", "", h.unlink("/logo.png"))
			record("rename", "", h.rename("/logo.png", "/logo2.png"))
			record("rmdir", "", h.rmdir("/maps"))
		}
		return results
	}
	plain := runSequence(false)
	cached := runSequence(true)
	if len(plain) != len(cached) {
		t.Fatalf("result count: %d vs %d", len(plain), len(cached))
	}
	for i := range plain {
		if plain[i] != cached[i] {
			t.Errorf("cached HTTPFS diverges at step %d:\n  plain:  %+v\n  cached: %+v",
				i, plain[i], cached[i])
		}
	}
}

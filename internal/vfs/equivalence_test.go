package vfs

import (
	"fmt"
	"testing"

	"doppio/internal/browser"
	"doppio/internal/buffer"
)

// TestBackendEquivalence drives the same pseudo-random operation
// sequence against every writable backend and requires identical
// observable outcomes — the §5.1 contract that the unified API gives
// "full-featured read/write functionality" regardless of the storage
// mechanism underneath.
func TestBackendEquivalence(t *testing.T) {
	type opResult struct {
		op   string
		err  string
		data string
	}
	runSequence := func(name string, mk func(w *browser.Window, bufs *buffer.Factory) Backend) []opResult {
		h := newHarness(t, browser.Chrome28, mk)
		var results []opResult
		record := func(op string, data string, err error) {
			r := opResult{op: op, data: data}
			if err != nil {
				if ae, ok := err.(*ApiError); ok {
					r.err = string(ae.Errno)
				} else {
					r.err = "ERR"
				}
			}
			results = append(results, r)
		}
		// Deterministic pseudo-random op stream.
		seed := uint32(12345)
		next := func(n int) int {
			seed = seed*1664525 + 1013904223
			return int(seed>>16) % n
		}
		paths := []string{"/a", "/b", "/dir/c", "/dir/d", "/dir/sub/e"}
		h.mkdir("/dir")
		h.mkdir("/dir/sub")
		for i := 0; i < 120; i++ {
			p := paths[next(len(paths))]
			switch next(6) {
			case 0:
				err := h.writeFile(p, []byte(fmt.Sprintf("content-%d", i)))
				record("write "+p, "", err)
			case 1:
				data, err := h.readFile(p)
				record("read "+p, string(data), err)
			case 2:
				st, err := h.stat(p)
				record("stat "+p, fmt.Sprint(st.Size), err)
			case 3:
				err := h.unlink(p)
				record("unlink "+p, "", err)
			case 4:
				names, err := h.readdir("/dir")
				record("readdir", fmt.Sprint(names), err)
			case 5:
				other := paths[next(len(paths))]
				err := h.rename(p, other)
				record("rename "+p+" "+other, "", err)
			}
		}
		return results
	}

	reference := runSequence("inmemory", func(*browser.Window, *buffer.Factory) Backend {
		return NewInMemory()
	})
	others := map[string]func(w *browser.Window, bufs *buffer.Factory) Backend{
		"localstorage": func(w *browser.Window, bufs *buffer.Factory) Backend {
			return NewLocalStorageFS(w.LocalStorage, bufs)
		},
		"indexeddb": func(w *browser.Window, bufs *buffer.Factory) Backend {
			return NewIndexedDBFS(w.IndexedDB, bufs)
		},
	}
	for name, mk := range others {
		got := runSequence(name, mk)
		if len(got) != len(reference) {
			t.Fatalf("%s: %d results vs %d", name, len(got), len(reference))
		}
		for i := range got {
			if got[i] != reference[i] {
				t.Errorf("%s diverges at step %d (%s):\n  inmemory: %+v\n  %s: %+v",
					name, i, got[i].op, reference[i], name, got[i])
				break
			}
		}
	}
}

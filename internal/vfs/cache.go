package vfs

import (
	"container/list"
	"sort"
	"sync"
	"time"

	"doppio/internal/telemetry"
	"doppio/internal/vfs/vkernel"
)

// DefaultCacheBudget is the page-cache byte budget used when
// CacheOptions.ByteBudget is zero.
const DefaultCacheBudget = 8 << 20

// CacheOptions configures NewCached.
type CacheOptions struct {
	// ByteBudget bounds the bytes held by the whole-file page cache
	// (clean pages only — dirty write-back pages are pinned and may
	// temporarily exceed the budget). Zero means DefaultCacheBudget.
	ByteBudget int
	// WriteBack buffers Sync calls and uploads them on Flush (or before
	// any namespace-mutating operation), instead of writing through.
	// Ignored for read-only backends.
	WriteBack bool
	// Hub, when non-nil, receives hit/miss/eviction/write-back counters
	// and cached-vs-uncached latency histograms under the subsystem
	// "vfscache.<Name>".
	Hub *telemetry.Hub
	// Degraded, when non-nil, is consulted on every cache hit; while it
	// reports true, each hit is additionally counted as a degraded
	// serve — a read answered from clean cached state while the backend
	// underneath is unreachable. Stack wires this to the retry layer's
	// circuit breaker.
	Degraded func() bool
	// OnDegradedServe, when non-nil, is invoked once per degraded serve
	// (in addition to the cache's own DegradedServes counter).
	OnDegradedServe func()
}

// CacheStats is a point-in-time snapshot of a cache's counters.
type CacheStats struct {
	Hits, Misses                       int64 // page (Open) lookups
	StatHits, StatMisses, NegativeHits int64
	ReaddirHits, ReaddirMisses         int64
	Evictions                          int64
	WritebackQueued, WritebackFlushed  int64
	DegradedServes                     int64 // hits served while the backend was unreachable
	BytesUsed                          int64
	DirtyEntries                       int64
}

// CacheStatser is implemented by every backend returned from NewCached;
// callers holding only a Backend can recover the counters with a type
// assertion, the same way the kernel detects optional capabilities.
type CacheStatser interface {
	CacheStats() CacheStats
}

// NewCached wraps b in a write-back/write-through caching decorator: a
// byte-budgeted LRU whole-file page cache, a stat cache that also
// remembers negative (ENOENT) results, and a readdir cache. Like
// Instrument, the wrapper preserves the backend's optional
// capabilities, so type assertions against the result match the
// wrapped backend. Wrapping a *MountFS registers an invalidation hook:
// Mount/Unmount drop all clean cached state, since routing changed
// underneath the cache.
//
// The cache assumes it is the only writer to the backend (the standard
// single-window assumption of §5.1's browser-local backends); external
// mutation of shared stores (e.g. a CloudStore reached from another
// window) is not observed until the relevant entries age out or are
// invalidated by a local write.
func NewCached(b Backend, opts CacheOptions) Backend {
	c := &Cached{
		b:          b,
		budget:     opts.ByteBudget,
		writeBack:  opts.WriteBack && !b.ReadOnly(),
		degraded:   opts.Degraded,
		onDegraded: opts.OnDegradedServe,
		pages:      make(map[string]*cachePage),
		lru:        list.New(),
		stats:      make(map[string]cacheStat),
		dirs:       make(map[string][]string),
		dirtySet:   make(map[string]bool),
	}
	if c.budget <= 0 {
		c.budget = DefaultCacheBudget
	}
	if opts.Hub != nil {
		sub := "vfscache." + b.Name()
		reg := opts.Hub.Registry
		c.hit = reg.Counter(sub, "hit")
		c.miss = reg.Counter(sub, "miss")
		c.statHit = reg.Counter(sub, "stat_hit")
		c.statMiss = reg.Counter(sub, "stat_miss")
		c.negHit = reg.Counter(sub, "stat_negative_hit")
		c.readdirHit = reg.Counter(sub, "readdir_hit")
		c.readdirMiss = reg.Counter(sub, "readdir_miss")
		c.eviction = reg.Counter(sub, "eviction")
		c.wbQueued = reg.Counter(sub, "writeback_queued")
		c.wbFlushed = reg.Counter(sub, "writeback_flushed")
		c.degradedServes = reg.Counter(sub, "degraded_serves")
		c.latOpenHit = reg.Histogram(sub, "open_hit_latency")
		c.latOpenMiss = reg.Histogram(sub, "open_miss_latency")
		c.latStatHit = reg.Histogram(sub, "stat_hit_latency")
		c.latStatMiss = reg.Histogram(sub, "stat_miss_latency")
	} else {
		c.hit = &telemetry.Counter{}
		c.miss = &telemetry.Counter{}
		c.statHit = &telemetry.Counter{}
		c.statMiss = &telemetry.Counter{}
		c.negHit = &telemetry.Counter{}
		c.readdirHit = &telemetry.Counter{}
		c.readdirMiss = &telemetry.Counter{}
		c.eviction = &telemetry.Counter{}
		c.wbQueued = &telemetry.Counter{}
		c.wbFlushed = &telemetry.Counter{}
		c.degradedServes = &telemetry.Counter{}
	}
	// Mount tables may sit under further decorators (faults, retry), so
	// walk the chain instead of asserting on b directly.
	if m, ok := Find[*MountFS](b); ok {
		m.onChange = func(string) { c.InvalidateAll() }
	}
	lb, hasLink := b.(LinkBackend)
	ab, hasAttr := b.(AttrBackend)
	c.lb, c.ab = lb, ab
	// The capability variants embed *Cached (not Cached by value, which
	// would copy the mutex).
	switch {
	case hasLink && hasAttr:
		return &cachedLinkAttr{cachedLink{c}}
	case hasLink:
		return &cachedLink{c}
	case hasAttr:
		return &cachedAttr{c}
	default:
		return c
	}
}

// Cached is the caching decorator state; construct it with NewCached.
type Cached struct {
	b  Backend
	lb LinkBackend
	ab AttrBackend

	mu         sync.Mutex
	budget     int
	used       int
	writeBack  bool
	degraded   func() bool // non-nil when stacked over a breaker
	onDegraded func()

	pages    map[string]*cachePage
	lru      *list.List // clean pages only; front = coldest
	stats    map[string]cacheStat
	dirs     map[string][]string
	dirty    []string // write-back FIFO, in first-buffer order
	dirtySet map[string]bool

	hit, miss, statHit, statMiss, negHit *telemetry.Counter
	readdirHit, readdirMiss, eviction    *telemetry.Counter
	wbQueued, wbFlushed, degradedServes  *telemetry.Counter
	latOpenHit, latOpenMiss              *telemetry.Histogram // nil-safe when no hub
	latStatHit, latStatMiss              *telemetry.Histogram
}

type cachePage struct {
	data  []byte
	dirty bool
	elem  *list.Element // non-nil iff clean and resident in the LRU
}

// cacheStat remembers either a positive Stat result or the fact that
// the path does not exist (neg). Negative entries are what make the
// JVM's classpath probing cheap: VFSClassProvider stats the same
// missing paths on every load.
type cacheStat struct {
	st  Stats
	neg bool
}

// Name reports the wrapped backend's name, so mount tables and
// instrumentation see through the decorator.
func (c *Cached) Name() string { return c.b.Name() }

// ReadOnly reports the wrapped backend's writability.
func (c *Cached) ReadOnly() bool { return c.b.ReadOnly() }

// Unwrap exposes the wrapped backend for decorator-chain discovery.
func (c *Cached) Unwrap() Backend { return c.b }

// noteHit records a cache hit against the degraded-serve hook: a hit
// delivered while the backend underneath is unreachable is the stack's
// graceful-degradation path and is counted as such.
func (c *Cached) noteHit() {
	if c.degraded != nil && c.degraded() {
		c.degradedServes.Inc()
		if c.onDegraded != nil {
			c.onDegraded()
		}
	}
}

// CacheStats snapshots the cache counters.
func (c *Cached) CacheStats() CacheStats {
	c.mu.Lock()
	used, dirty := int64(c.used), int64(len(c.dirty))
	c.mu.Unlock()
	return CacheStats{
		Hits: c.hit.Value(), Misses: c.miss.Value(),
		StatHits: c.statHit.Value(), StatMisses: c.statMiss.Value(),
		NegativeHits: c.negHit.Value(),
		ReaddirHits:  c.readdirHit.Value(), ReaddirMisses: c.readdirMiss.Value(),
		Evictions:       c.eviction.Value(),
		WritebackQueued: c.wbQueued.Value(), WritebackFlushed: c.wbFlushed.Value(),
		DegradedServes: c.degradedServes.Value(),
		BytesUsed:      used, DirtyEntries: dirty,
	}
}

// InvalidateAll drops every clean cached entry. Dirty write-back pages
// survive (their data exists nowhere else) along with their fabricated
// stats, and will flush through whatever the backend routes to now.
func (c *Cached) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for p, pg := range c.pages {
		if !pg.dirty {
			c.lru.Remove(pg.elem)
			c.used -= len(pg.data)
			delete(c.pages, p)
		}
	}
	c.stats = make(map[string]cacheStat)
	c.dirs = make(map[string][]string)
	for p, pg := range c.pages {
		c.stats[p] = cacheStat{st: Stats{Type: TypeFile, Size: int64(len(pg.data))}}
	}
}

// ---- page cache internals (all *Locked methods hold c.mu) ----

func (c *Cached) insertPageLocked(p string, data []byte, dirty bool) {
	c.dropPageLocked(p)
	if !dirty && len(data) > c.budget {
		return // larger than the whole cache: not worth caching
	}
	pg := &cachePage{data: data, dirty: dirty}
	if !dirty {
		pg.elem = c.lru.PushBack(p)
	}
	c.pages[p] = pg
	c.used += len(data)
	c.evictLocked()
}

func (c *Cached) dropPageLocked(p string) {
	if pg, ok := c.pages[p]; ok {
		if pg.elem != nil {
			c.lru.Remove(pg.elem)
		}
		c.used -= len(pg.data)
		delete(c.pages, p)
	}
}

func (c *Cached) evictLocked() {
	for c.used > c.budget {
		front := c.lru.Front()
		if front == nil {
			return // only dirty (pinned) pages remain
		}
		p := front.Value.(string)
		c.lru.Remove(front)
		c.used -= len(c.pages[p].data)
		delete(c.pages, p)
		c.eviction.Inc()
	}
}

func (c *Cached) addNameLocked(dir, base string) {
	names, ok := c.dirs[dir]
	if !ok || base == "" {
		return
	}
	for _, n := range names {
		if n == base {
			return
		}
	}
	names = append(names, base)
	sort.Strings(names)
	c.dirs[dir] = names
}

func (c *Cached) removeNameLocked(dir, base string) {
	names, ok := c.dirs[dir]
	if !ok {
		return
	}
	out := names[:0]
	for _, n := range names {
		if n != base {
			out = append(out, n)
		}
	}
	c.dirs[dir] = out
}

// mergeDirtyLocked folds buffered-but-unflushed children of dir into a
// readdir listing, so write-back files are visible before Flush.
func (c *Cached) mergeDirtyLocked(dir string, names []string) []string {
	out := append([]string(nil), names...)
	if len(c.dirty) == 0 {
		return out
	}
	seen := make(map[string]bool, len(out))
	for _, n := range out {
		seen[n] = true
	}
	for _, dp := range c.dirty {
		if name, ok := vkernel.ChildOf(dir, dp); ok && !seen[name] {
			out = append(out, name)
			seen[name] = true
		}
	}
	sort.Strings(out)
	return out
}

// invalidateSubtreeLocked forgets every cached entry at or under p
// (pages, stats — including negative entries — and readdir listings).
func (c *Cached) invalidateSubtreeLocked(p string) {
	for q := range c.pages {
		if vkernel.Under(q, p) {
			c.dropPageLocked(q)
		}
	}
	for q := range c.stats {
		if vkernel.Under(q, p) {
			delete(c.stats, q)
		}
	}
	for q := range c.dirs {
		if vkernel.Under(q, p) {
			delete(c.dirs, q)
		}
	}
}

// ---- mandatory Backend surface ----

// Stat serves from the stat cache (including negative entries) and
// populates it on miss. Only ENOENT is cached negatively; transient
// errors are not remembered.
func (c *Cached) Stat(p string, cb func(Stats, error)) {
	start := time.Now()
	c.mu.Lock()
	if e, ok := c.stats[p]; ok {
		c.mu.Unlock()
		c.statHit.Inc()
		c.noteHit()
		if e.neg {
			c.negHit.Inc()
			c.latStatHit.ObserveSince(start)
			cb(Stats{}, Err(ENOENT, "stat", p))
			return
		}
		c.latStatHit.ObserveSince(start)
		cb(e.st, nil)
		return
	}
	c.mu.Unlock()
	c.statMiss.Inc()
	c.b.Stat(p, func(st Stats, err error) {
		c.mu.Lock()
		switch {
		case err == nil:
			c.stats[p] = cacheStat{st: st}
		case IsErrno(err, ENOENT):
			c.stats[p] = cacheStat{neg: true}
		}
		c.mu.Unlock()
		c.latStatMiss.ObserveSince(start)
		cb(st, err)
	})
}

// Open serves whole files from the page cache; a cached negative stat
// short-circuits to ENOENT without a backend round trip.
func (c *Cached) Open(p string, cb func([]byte, error)) {
	start := time.Now()
	c.mu.Lock()
	if pg, ok := c.pages[p]; ok {
		if pg.elem != nil {
			c.lru.MoveToBack(pg.elem)
		}
		data := append([]byte(nil), pg.data...)
		c.mu.Unlock()
		c.hit.Inc()
		c.noteHit()
		c.latOpenHit.ObserveSince(start)
		cb(data, nil)
		return
	}
	if e, ok := c.stats[p]; ok && e.neg {
		c.mu.Unlock()
		c.hit.Inc()
		c.negHit.Inc()
		c.noteHit()
		c.latOpenHit.ObserveSince(start)
		cb(nil, Err(ENOENT, "open", p))
		return
	}
	c.mu.Unlock()
	c.miss.Inc()
	c.b.Open(p, func(data []byte, err error) {
		if err == nil {
			c.mu.Lock()
			// Store a private copy: the caller's slice feeds file
			// descriptors that mutate it in place.
			c.insertPageLocked(p, append([]byte(nil), data...), false)
			c.mu.Unlock()
		}
		c.latOpenMiss.ObserveSince(start)
		cb(data, err)
	})
}

// Sync writes through (caching the new contents) or, in write-back
// mode, buffers the write after validating it against cached metadata
// with the same errno semantics a backend applies.
func (c *Cached) Sync(p string, data []byte, cb func(error)) {
	if c.writeBack {
		c.syncBuffered(p, data, cb)
		return
	}
	cp := append([]byte(nil), data...)
	c.b.Sync(p, data, func(err error) {
		if err == nil {
			c.mu.Lock()
			c.insertPageLocked(p, cp, false)
			// Don't fabricate a stat: backends decorate Stats with
			// modes/times the cache can't know. Refetch on demand.
			delete(c.stats, p)
			dir, base := vkernel.SplitDir(p)
			c.addNameLocked(dir, base)
			c.mu.Unlock()
		}
		cb(err)
	})
}

func (c *Cached) syncBuffered(p string, data []byte, cb func(error)) {
	dir, base := vkernel.SplitDir(p)
	if base == "" {
		cb(Err(EINVAL, "sync", p))
		return
	}
	c.Stat(dir, func(dst Stats, derr error) {
		if derr != nil {
			cb(Err(ENOENT, "sync", p))
			return
		}
		if !dst.IsDirectory() {
			cb(Err(ENOTDIR, "sync", p))
			return
		}
		c.Stat(p, func(st Stats, serr error) {
			if serr == nil && st.IsDirectory() {
				cb(Err(EISDIR, "sync", p))
				return
			}
			if serr != nil && !IsErrno(serr, ENOENT) {
				cb(serr)
				return
			}
			cp := append([]byte(nil), data...)
			c.mu.Lock()
			c.insertPageLocked(p, cp, true)
			if !c.dirtySet[p] {
				c.dirtySet[p] = true
				c.dirty = append(c.dirty, p)
			}
			// Dirty files exist only here, so the cache must answer
			// Stat itself until the flush lands.
			c.stats[p] = cacheStat{st: Stats{Type: TypeFile, Size: int64(len(cp))}}
			c.addNameLocked(dir, base)
			c.mu.Unlock()
			c.wbQueued.Inc()
			cb(nil)
		})
	})
}

// Flush uploads buffered writes to the backend in the order they were
// first issued, stopping (and re-queueing the remainder) on the first
// error. A cache with no dirty entries flushes trivially.
func (c *Cached) Flush(cb func(error)) {
	type flushItem struct {
		path string
		data []byte
	}
	c.mu.Lock()
	if len(c.dirty) == 0 {
		c.mu.Unlock()
		cb(nil)
		return
	}
	queue := c.dirty
	c.dirty = nil
	items := make([]flushItem, 0, len(queue))
	for _, p := range queue {
		delete(c.dirtySet, p)
		if pg, ok := c.pages[p]; ok && pg.dirty {
			items = append(items, flushItem{p, pg.data})
		}
	}
	c.mu.Unlock()
	var step func(i int)
	step = func(i int) {
		if i == len(items) {
			cb(nil)
			return
		}
		it := items[i]
		c.b.Sync(it.path, it.data, func(err error) {
			if err != nil {
				// Re-queue this and the remaining entries (unless a
				// concurrent Sync already re-dirtied them) so a later
				// Flush retries in order.
				c.mu.Lock()
				for j := len(items) - 1; j >= i; j-- {
					p := items[j].path
					if pg, ok := c.pages[p]; ok && pg.dirty && !c.dirtySet[p] {
						c.dirtySet[p] = true
						c.dirty = append([]string{p}, c.dirty...)
					}
				}
				c.mu.Unlock()
				cb(err)
				return
			}
			c.wbFlushed.Inc()
			c.mu.Lock()
			// Mark clean unless the entry was re-dirtied mid-flight.
			if pg, ok := c.pages[it.path]; ok && pg.dirty && !c.dirtySet[it.path] {
				pg.dirty = false
				pg.elem = c.lru.PushBack(it.path)
				c.evictLocked()
			}
			c.mu.Unlock()
			step(i + 1)
		})
	}
	step(0)
}

// flushThen drains the write-back queue before a namespace-mutating
// operation, so the backend observes writes and mutations in program
// order; in write-through mode it runs the continuation immediately.
func (c *Cached) flushThen(then func(error)) {
	if !c.writeBack {
		then(nil)
		return
	}
	c.Flush(then)
}

// Unlink removes a file, short-circuiting on a cached negative stat,
// and remembers the removal as a negative entry.
func (c *Cached) Unlink(p string, cb func(error)) {
	c.mu.Lock()
	// Read-only backends answer mutations with EROFS even for missing
	// paths, so the negative-stat shortcut must not preempt them.
	if e, ok := c.stats[p]; ok && e.neg && !c.b.ReadOnly() {
		c.mu.Unlock()
		c.negHit.Inc()
		cb(Err(ENOENT, "unlink", p))
		return
	}
	c.mu.Unlock()
	c.flushThen(func(ferr error) {
		if ferr != nil {
			cb(ferr)
			return
		}
		c.b.Unlink(p, func(err error) {
			if err == nil {
				c.mu.Lock()
				c.dropPageLocked(p)
				c.stats[p] = cacheStat{neg: true}
				dir, base := vkernel.SplitDir(p)
				c.removeNameLocked(dir, base)
				c.mu.Unlock()
			}
			cb(err)
		})
	})
}

// Rmdir removes a directory and caches the resulting absence.
func (c *Cached) Rmdir(p string, cb func(error)) {
	c.mu.Lock()
	if e, ok := c.stats[p]; ok && e.neg && !c.b.ReadOnly() {
		c.mu.Unlock()
		c.negHit.Inc()
		cb(Err(ENOENT, "rmdir", p))
		return
	}
	c.mu.Unlock()
	c.flushThen(func(ferr error) {
		if ferr != nil {
			cb(ferr)
			return
		}
		c.b.Rmdir(p, func(err error) {
			if err == nil {
				c.mu.Lock()
				delete(c.dirs, p)
				c.stats[p] = cacheStat{neg: true}
				dir, base := vkernel.SplitDir(p)
				c.removeNameLocked(dir, base)
				c.mu.Unlock()
			}
			cb(err)
		})
	})
}

// Mkdir creates a directory, clearing any negative entry and updating
// the parent's cached listing.
func (c *Cached) Mkdir(p string, cb func(error)) {
	c.b.Mkdir(p, func(err error) {
		if err == nil {
			c.mu.Lock()
			delete(c.stats, p)
			dir, base := vkernel.SplitDir(p)
			c.addNameLocked(dir, base)
			c.mu.Unlock()
		}
		cb(err)
	})
}

// Readdir serves cached listings (merging in unflushed write-back
// children) and caches backend listings on miss.
func (c *Cached) Readdir(p string, cb func([]string, error)) {
	c.mu.Lock()
	if names, ok := c.dirs[p]; ok {
		out := c.mergeDirtyLocked(p, names)
		c.mu.Unlock()
		c.readdirHit.Inc()
		c.noteHit()
		cb(out, nil)
		return
	}
	if e, ok := c.stats[p]; ok && e.neg {
		c.mu.Unlock()
		c.readdirHit.Inc()
		c.negHit.Inc()
		cb(nil, Err(ENOENT, "readdir", p))
		return
	}
	c.mu.Unlock()
	c.readdirMiss.Inc()
	c.b.Readdir(p, func(names []string, err error) {
		if err != nil {
			cb(names, err)
			return
		}
		c.mu.Lock()
		c.dirs[p] = append([]string(nil), names...)
		out := c.mergeDirtyLocked(p, names)
		c.mu.Unlock()
		cb(out, nil)
	})
}

// Rename moves a node, flushing buffered writes first and then
// invalidating both affected subtrees (a directory rename moves every
// descendant, so exact-path invalidation is not enough).
func (c *Cached) Rename(oldPath, newPath string, cb func(error)) {
	c.mu.Lock()
	if e, ok := c.stats[oldPath]; ok && e.neg && !c.b.ReadOnly() {
		c.mu.Unlock()
		c.negHit.Inc()
		cb(Err(ENOENT, "rename", oldPath))
		return
	}
	c.mu.Unlock()
	c.flushThen(func(ferr error) {
		if ferr != nil {
			cb(ferr)
			return
		}
		c.b.Rename(oldPath, newPath, func(err error) {
			if err == nil {
				c.mu.Lock()
				c.invalidateSubtreeLocked(oldPath)
				if oldPath != newPath {
					c.invalidateSubtreeLocked(newPath)
					c.stats[oldPath] = cacheStat{neg: true}
					od, ob := vkernel.SplitDir(oldPath)
					nd, nb := vkernel.SplitDir(newPath)
					c.removeNameLocked(od, ob)
					c.addNameLocked(nd, nb)
				}
				c.mu.Unlock()
			}
			cb(err)
		})
	})
}

// ---- optional capabilities (on unexported methods; exposed by the
// embedding variants below so type assertions stay truthful) ----

func (c *Cached) symlink(target, p string, cb func(error)) {
	c.flushThen(func(ferr error) {
		if ferr != nil {
			cb(ferr)
			return
		}
		c.lb.Symlink(target, p, func(err error) {
			if err == nil {
				c.mu.Lock()
				delete(c.stats, p)
				dir, base := vkernel.SplitDir(p)
				c.addNameLocked(dir, base)
				c.mu.Unlock()
			}
			cb(err)
		})
	})
}

func (c *Cached) readlink(p string, cb func(string, error)) {
	c.lb.Readlink(p, cb)
}

func (c *Cached) chmod(p string, mode int, cb func(error)) {
	c.ab.Chmod(p, mode, func(err error) {
		if err == nil {
			c.mu.Lock()
			delete(c.stats, p)
			c.mu.Unlock()
		}
		cb(err)
	})
}

func (c *Cached) utimes(p string, atime, mtime time.Time, cb func(error)) {
	c.ab.Utimes(p, atime, mtime, func(err error) {
		if err == nil {
			c.mu.Lock()
			delete(c.stats, p)
			c.mu.Unlock()
		}
		cb(err)
	})
}

// cachedLink adds the optional link capability.
type cachedLink struct{ *Cached }

func (c *cachedLink) Symlink(target, path string, cb func(error)) { c.symlink(target, path, cb) }
func (c *cachedLink) Readlink(path string, cb func(string, error)) {
	c.readlink(path, cb)
}

// cachedAttr adds the optional attribute capability.
type cachedAttr struct{ *Cached }

func (c *cachedAttr) Chmod(path string, mode int, cb func(error)) { c.chmod(path, mode, cb) }
func (c *cachedAttr) Utimes(path string, atime, mtime time.Time, cb func(error)) {
	c.utimes(path, atime, mtime, cb)
}

// cachedLinkAttr has both optional capabilities.
type cachedLinkAttr struct{ cachedLink }

func (c *cachedLinkAttr) Chmod(path string, mode int, cb func(error)) { c.chmod(path, mode, cb) }
func (c *cachedLinkAttr) Utimes(path string, atime, mtime time.Time, cb func(error)) {
	c.utimes(path, atime, mtime, cb)
}

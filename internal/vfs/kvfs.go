package vfs

import (
	"sort"
	"strings"

	"doppio/internal/browser"
	"doppio/internal/buffer"
	"doppio/internal/vfs/vkernel"
)

// kvErr classifies a raw key/value store failure into an *ApiError,
// so every FlatKV failure path is classifiable by vfs.Classify:
// quota exhaustion is ENOSPC (final), anything else is EIO
// (transient). A nil error stays nil.
func kvErr(err error, op, path string) error {
	if err == nil {
		return nil
	}
	if err == browser.ErrQuotaExceeded {
		return ErrWithCause(ENOSPC, op, path, err)
	}
	return ErrWithCause(EIO, op, path, err)
}

// kvAPI is the minimal key/value contract shared by localStorage
// (synchronous strings) and IndexedDB (asynchronous objects); the
// FlatKV backend is written once against it, which is how the paper's
// "two browser-local storage mechanisms" backends share their logic.
type kvAPI interface {
	get(key string, cb func(val string, ok bool))
	put(key, val string, cb func(err error))
	del(key string, cb func())
	keys(cb func([]string))
}

// FlatKV stores a file tree in a flat key/value namespace:
//
//	"f!<path>" → file contents as a packed binary string (§5.1's
//	             Buffer string conversion serving "double-duty" for
//	             string-based storage mechanisms)
//	"d!<path>" → directory marker
//
// The root directory is implicit.
type FlatKV struct {
	kv   kvAPI
	bufs *buffer.Factory
	name string
}

const (
	fileKeyPrefix = "f!"
	dirKeyPrefix  = "d!"
)

// NewLocalStorageFS creates a backend over the window's synchronous
// localStorage, packing file bytes into strings via bufs.
func NewLocalStorageFS(ls *browser.LocalStorage, bufs *buffer.Factory) *FlatKV {
	return &FlatKV{kv: localStorageKV{ls}, bufs: bufs, name: "LocalStorage"}
}

// NewIndexedDBFS creates a backend over the window's asynchronous
// IndexedDB-like object store.
func NewIndexedDBFS(db *browser.AsyncStore, bufs *buffer.Factory) *FlatKV {
	return &FlatKV{kv: asyncStoreKV{db}, bufs: bufs, name: "IndexedDB"}
}

type localStorageKV struct{ ls *browser.LocalStorage }

func (k localStorageKV) get(key string, cb func(string, bool)) { cb(k.ls.GetItem(key)) }
func (k localStorageKV) put(key, val string, cb func(error))   { cb(k.ls.SetItem(key, val)) }
func (k localStorageKV) del(key string, cb func())             { k.ls.RemoveItem(key); cb() }
func (k localStorageKV) keys(cb func([]string)) {
	n := k.ls.Length()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, k.ls.Key(i))
	}
	cb(out)
}

type asyncStoreKV struct{ db *browser.AsyncStore }

func (k asyncStoreKV) get(key string, cb func(string, bool)) {
	k.db.Get(key, func(v []byte, ok bool) { cb(string(v), ok) })
}
func (k asyncStoreKV) put(key, val string, cb func(error)) {
	k.db.Put(key, []byte(val), cb)
}
func (k asyncStoreKV) del(key string, cb func()) {
	k.db.Delete(key, func(error) { cb() })
}
func (k asyncStoreKV) keys(cb func([]string)) { k.db.Keys(cb) }

// Name identifies the backend kind.
func (f *FlatKV) Name() string { return f.name }

// ReadOnly reports false: the backend is writable.
func (f *FlatKV) ReadOnly() bool { return false }

// statNode classifies p as file, dir, or missing.
func (f *FlatKV) statNode(p string, cb func(typ FileType, size int, exists bool)) {
	if p == "/" {
		cb(TypeDir, 0, true)
		return
	}
	f.kv.get(fileKeyPrefix+p, func(val string, ok bool) {
		if ok {
			data, err := f.unpackContents(val)
			if err != nil {
				cb(TypeFile, 0, true)
				return
			}
			cb(TypeFile, len(data), true)
			return
		}
		f.kv.get(dirKeyPrefix+p, func(_ string, ok bool) {
			cb(TypeDir, 0, ok)
		})
	})
}

func (f *FlatKV) packContents(data []byte) (string, error) {
	b := f.bufs.FromBytes(data)
	return b.ToString(buffer.Packed, 0, b.Len())
}

func (f *FlatKV) unpackContents(val string) ([]byte, error) {
	b, err := f.bufs.FromString(val, buffer.Packed)
	if err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// Stat describes the node at path.
func (f *FlatKV) Stat(p string, cb func(Stats, error)) {
	f.statNode(p, func(typ FileType, size int, exists bool) {
		if !exists {
			cb(Stats{}, Err(ENOENT, "stat", p))
			return
		}
		cb(Stats{Type: typ, Size: int64(size)}, nil)
	})
}

// Open loads the file's contents, unpacking the stored string.
func (f *FlatKV) Open(p string, cb func([]byte, error)) {
	f.kv.get(fileKeyPrefix+p, func(val string, ok bool) {
		if !ok {
			f.kv.get(dirKeyPrefix+p, func(_ string, isDir bool) {
				if isDir || p == "/" {
					cb(nil, Err(EISDIR, "open", p))
					return
				}
				cb(nil, Err(ENOENT, "open", p))
			})
			return
		}
		data, err := f.unpackContents(val)
		if err != nil {
			cb(nil, ErrWithCause(EIO, "open", p, err))
			return
		}
		cb(data, nil)
	})
}

// Sync writes back the file's contents as a packed string. Quota
// exhaustion maps to ENOSPC.
func (f *FlatKV) Sync(p string, data []byte, cb func(error)) {
	dir, base := splitDir(p)
	if base == "" {
		cb(Err(EINVAL, "sync", p))
		return
	}
	f.statNode(dir, func(typ FileType, _ int, exists bool) {
		switch {
		case !exists:
			cb(Err(ENOENT, "sync", p))
			return
		case typ != TypeDir:
			cb(Err(ENOTDIR, "sync", p))
			return
		}
		f.kv.get(dirKeyPrefix+p, func(_ string, isDir bool) {
			if isDir {
				cb(Err(EISDIR, "sync", p))
				return
			}
			packed, err := f.packContents(data)
			if err != nil {
				cb(ErrWithCause(EIO, "sync", p, err))
				return
			}
			f.kv.put(fileKeyPrefix+p, packed, func(err error) {
				cb(kvErr(err, "sync", p))
			})
		})
	})
}

// Unlink removes a file.
func (f *FlatKV) Unlink(p string, cb func(error)) {
	f.kv.get(fileKeyPrefix+p, func(_ string, ok bool) {
		if !ok {
			f.kv.get(dirKeyPrefix+p, func(_ string, isDir bool) {
				if isDir {
					cb(Err(EISDIR, "unlink", p))
					return
				}
				cb(Err(ENOENT, "unlink", p))
			})
			return
		}
		f.kv.del(fileKeyPrefix+p, func() { cb(nil) })
	})
}

// childNames extracts the immediate child names of dir from the full
// key list.
func childNames(keys []string, dir string) []string {
	seen := make(map[string]bool)
	for _, key := range keys {
		var p string
		switch {
		case strings.HasPrefix(key, fileKeyPrefix):
			p = key[len(fileKeyPrefix):]
		case strings.HasPrefix(key, dirKeyPrefix):
			p = key[len(dirKeyPrefix):]
		default:
			continue
		}
		if name, ok := vkernel.ChildOf(dir, p); ok {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Rmdir removes an empty directory.
func (f *FlatKV) Rmdir(p string, cb func(error)) {
	f.statNode(p, func(typ FileType, _ int, exists bool) {
		switch {
		case !exists:
			cb(Err(ENOENT, "rmdir", p))
			return
		case typ != TypeDir:
			cb(Err(ENOTDIR, "rmdir", p))
			return
		case p == "/":
			cb(Err(EPERM, "rmdir", p))
			return
		}
		f.kv.keys(func(keys []string) {
			if len(childNames(keys, p)) > 0 {
				cb(Err(ENOTEMPTY, "rmdir", p))
				return
			}
			f.kv.del(dirKeyPrefix+p, func() { cb(nil) })
		})
	})
}

// Mkdir creates a directory marker; the parent must exist.
func (f *FlatKV) Mkdir(p string, cb func(error)) {
	f.statNode(p, func(_ FileType, _ int, exists bool) {
		if exists {
			cb(Err(EEXIST, "mkdir", p))
			return
		}
		dir, _ := splitDir(p)
		f.statNode(dir, func(typ FileType, _ int, parentExists bool) {
			switch {
			case !parentExists:
				cb(Err(ENOENT, "mkdir", p))
			case typ != TypeDir:
				cb(Err(ENOTDIR, "mkdir", p))
			default:
				f.kv.put(dirKeyPrefix+p, "", cb)
			}
		})
	})
}

// Readdir lists the immediate children of a directory.
func (f *FlatKV) Readdir(p string, cb func([]string, error)) {
	f.statNode(p, func(typ FileType, _ int, exists bool) {
		switch {
		case !exists:
			cb(nil, Err(ENOENT, "readdir", p))
			return
		case typ != TypeDir:
			cb(nil, Err(ENOTDIR, "readdir", p))
			return
		}
		f.kv.keys(func(keys []string) { cb(childNames(keys, p), nil) })
	})
}

// Rename moves a file (directory renames move the marker and all
// descendants).
func (f *FlatKV) Rename(oldPath, newPath string, cb func(error)) {
	if oldPath == newPath {
		cb(nil)
		return
	}
	f.kv.get(fileKeyPrefix+oldPath, func(val string, ok bool) {
		if ok {
			f.kv.put(fileKeyPrefix+newPath, val, func(err error) {
				if err != nil {
					cb(kvErr(err, "rename", newPath))
					return
				}
				f.kv.del(fileKeyPrefix+oldPath, func() { cb(nil) })
			})
			return
		}
		f.kv.get(dirKeyPrefix+oldPath, func(_ string, isDir bool) {
			if !isDir {
				cb(Err(ENOENT, "rename", oldPath))
				return
			}
			// Move the directory marker and every descendant key.
			f.kv.keys(func(keys []string) {
				moves := [][2]string{{dirKeyPrefix + oldPath, dirKeyPrefix + newPath}}
				for _, key := range keys {
					for _, prefix := range []string{fileKeyPrefix, dirKeyPrefix} {
						if strings.HasPrefix(key, prefix+oldPath+"/") {
							moves = append(moves, [2]string{key, prefix + newPath + key[len(prefix+oldPath):]})
						}
					}
				}
				var step func(i int)
				step = func(i int) {
					if i == len(moves) {
						cb(nil)
						return
					}
					from, to := moves[i][0], moves[i][1]
					f.kv.get(from, func(val string, ok bool) {
						if !ok {
							step(i + 1)
							return
						}
						f.kv.put(to, val, func(err error) {
							if err != nil {
								cb(kvErr(err, "rename", newPath))
								return
							}
							f.kv.del(from, func() { step(i + 1) })
						})
					})
				}
				step(0)
			})
		})
	})
}

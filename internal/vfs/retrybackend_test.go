package vfs

import (
	"sync"
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/vfs/retry"
)

// scripted wraps a backend and fails chosen calls on a per-op script:
// each entry either drops the request before it reaches the backend
// (pre-commit) or lets it commit and then fails the reply (post-commit,
// the lost-acknowledgement fault). An empty errno passes through.
type scripted struct {
	Backend
	mu   sync.Mutex
	plan map[string][]scriptedFault // op → successive outcomes
	// calls counts backend calls per op, committed or not.
	calls map[string]int
}

type scriptedFault struct {
	errno Errno
	post  bool
}

func newScripted(b Backend) *scripted {
	return &scripted{Backend: b, plan: map[string][]scriptedFault{}, calls: map[string]int{}}
}

func (s *scripted) fail(op string, errno Errno, post bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plan[op] = append(s.plan[op], scriptedFault{errno, post})
}

func (s *scripted) next(op string) scriptedFault {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls[op]++
	q := s.plan[op]
	if len(q) == 0 {
		return scriptedFault{}
	}
	f := q[0]
	s.plan[op] = q[1:]
	return f
}

func (s *scripted) count(op string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[op]
}

func (s *scripted) Stat(p string, cb func(Stats, error)) {
	f := s.next("stat")
	if f.errno != "" && !f.post {
		cb(Stats{}, Err(f.errno, "stat", p))
		return
	}
	s.Backend.Stat(p, func(st Stats, err error) {
		if f.errno != "" {
			cb(Stats{}, Err(f.errno, "stat", p))
			return
		}
		cb(st, err)
	})
}

func (s *scripted) Mkdir(p string, cb func(error)) {
	f := s.next("mkdir")
	if f.errno != "" && !f.post {
		cb(Err(f.errno, "mkdir", p))
		return
	}
	s.Backend.Mkdir(p, func(err error) {
		if f.errno != "" {
			cb(Err(f.errno, "mkdir", p))
			return
		}
		cb(err)
	})
}

func (s *scripted) Unlink(p string, cb func(error)) {
	f := s.next("unlink")
	if f.errno != "" && !f.post {
		cb(Err(f.errno, "unlink", p))
		return
	}
	s.Backend.Unlink(p, func(err error) {
		if f.errno != "" {
			cb(Err(f.errno, "unlink", p))
			return
		}
		cb(err)
	})
}

func (s *scripted) Rename(oldPath, newPath string, cb func(error)) {
	f := s.next("rename")
	if f.errno != "" && !f.post {
		cb(Err(f.errno, "rename", oldPath))
		return
	}
	s.Backend.Rename(oldPath, newPath, func(err error) {
		if f.errno != "" {
			cb(Err(f.errno, "rename", oldPath))
			return
		}
		cb(err)
	})
}

func (s *scripted) Sync(p string, data []byte, cb func(error)) {
	f := s.next("sync")
	if f.errno != "" && !f.post {
		cb(Err(f.errno, "sync", p))
		return
	}
	s.Backend.Sync(p, data, func(err error) {
		if f.errno != "" {
			cb(Err(f.errno, "sync", p))
			return
		}
		cb(err)
	})
}

// fastRetry is a retry policy with no waits, so the inline (nil-loop)
// scheduling path completes synchronously in tests.
func fastRetry(attempts int) retry.Policy {
	return retry.Policy{MaxAttempts: attempts}
}

func retryOver(s *scripted, pol retry.Policy) (Backend, RetryStatser) {
	b := NewRetry(s, RetryOptions{Policy: pol})
	rs, ok := Find[RetryStatser](b)
	if !ok {
		panic("NewRetry lost RetryStatser")
	}
	return b, rs
}

func TestRetryAbsorbsTransientErrors(t *testing.T) {
	s := newScripted(NewInMemory())
	s.Backend.Sync("/x", []byte("data"), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	s.fail("stat", EIO, false)
	s.fail("stat", EIO, false)
	b, rs := retryOver(s, fastRetry(4))

	var got Stats
	var gotErr error
	b.Stat("/x", func(st Stats, err error) { got, gotErr = st, err })
	if gotErr != nil {
		t.Fatalf("stat after two transient failures: %v", gotErr)
	}
	if got.Size != 4 {
		t.Fatalf("stat size = %d, want 4", got.Size)
	}
	st := rs.RetryStats()
	if st.Ops != 1 || st.Attempts != 3 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want Ops 1 Attempts 3 Retries 2", st)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	s := newScripted(NewInMemory())
	for i := 0; i < 10; i++ {
		s.fail("stat", EIO, false)
	}
	b, rs := retryOver(s, fastRetry(3))

	var gotErr error
	b.Stat("/x", func(_ Stats, err error) { gotErr = err })
	if !IsErrno(gotErr, EIO) {
		t.Fatalf("err = %v, want EIO", gotErr)
	}
	if st := rs.RetryStats(); st.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", st.Attempts)
	}
}

func TestRetryPassesFinalErrnoThrough(t *testing.T) {
	s := newScripted(NewInMemory())
	b, rs := retryOver(s, fastRetry(5))

	var gotErr error
	b.Stat("/missing", func(_ Stats, err error) { gotErr = err })
	if !IsErrno(gotErr, ENOENT) {
		t.Fatalf("err = %v, want ENOENT", gotErr)
	}
	if st := rs.RetryStats(); st.Attempts != 1 || st.Retries != 0 {
		t.Fatalf("final errno must not be retried: %+v", st)
	}
}

// TestRetryLostAckMkdir is the lost-acknowledgement case: the mkdir
// commits, the reply is lost, and the decorator must prove the commit
// via a stat probe instead of re-issuing the mkdir (which would surface
// a spurious EEXIST).
func TestRetryLostAckMkdir(t *testing.T) {
	s := newScripted(NewInMemory())
	s.fail("mkdir", EIO, true) // post-commit
	b, rs := retryOver(s, fastRetry(4))

	var gotErr error
	b.Mkdir("/d", func(err error) { gotErr = err })
	if gotErr != nil {
		t.Fatalf("mkdir: %v", gotErr)
	}
	if n := s.count("mkdir"); n != 1 {
		t.Fatalf("backend saw %d mkdir calls, want exactly 1 (no duplicate)", n)
	}
	st := rs.RetryStats()
	if st.Recovered != 1 || st.VerifyProbes < 1 {
		t.Fatalf("stats = %+v, want Recovered 1 and a verify probe", st)
	}
}

// TestRetryLostAckPreCommitRetries is the complementary case: the
// request was lost *before* the commit, the probe finds nothing, and
// the mutation is legitimately re-issued.
func TestRetryLostAckPreCommitRetries(t *testing.T) {
	s := newScripted(NewInMemory())
	s.fail("mkdir", EIO, false) // pre-commit
	b, rs := retryOver(s, fastRetry(4))

	var gotErr error
	b.Mkdir("/d", func(err error) { gotErr = err })
	if gotErr != nil {
		t.Fatalf("mkdir: %v", gotErr)
	}
	if n := s.count("mkdir"); n != 2 {
		t.Fatalf("backend saw %d mkdir calls, want 2 (probe found nothing, retry)", n)
	}
	st := rs.RetryStats()
	if st.Recovered != 0 || st.Retries != 1 {
		t.Fatalf("stats = %+v, want Retries 1 and no recovery", st)
	}
}

func TestRetryLostAckUnlinkAndRename(t *testing.T) {
	s := newScripted(NewInMemory())
	s.Backend.Sync("/a", []byte("x"), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	s.Backend.Sync("/b", []byte("y"), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	s.fail("rename", ETIMEDOUT, true)
	s.fail("unlink", EIO, true)
	b, rs := retryOver(s, fastRetry(4))

	var gotErr error
	b.Rename("/a", "/a2", func(err error) { gotErr = err })
	if gotErr != nil {
		t.Fatalf("rename: %v", gotErr)
	}
	b.Unlink("/b", func(err error) { gotErr = err })
	if gotErr != nil {
		t.Fatalf("unlink: %v", gotErr)
	}
	if n := s.count("rename"); n != 1 {
		t.Fatalf("backend saw %d renames, want 1", n)
	}
	if n := s.count("unlink"); n != 1 {
		t.Fatalf("backend saw %d unlinks, want 1", n)
	}
	if st := rs.RetryStats(); st.Recovered != 2 {
		t.Fatalf("stats = %+v, want Recovered 2", st)
	}
}

// TestRetryVerifyProbeSurvivesTransientFailures: the probe itself can
// fail transiently; the decorator retries the probe before concluding.
func TestRetryVerifyProbeSurvivesTransientFailures(t *testing.T) {
	s := newScripted(NewInMemory())
	s.fail("mkdir", EIO, true) // committed, ack lost
	s.fail("stat", EIO, false) // first probe lost too
	b, rs := retryOver(s, fastRetry(4))

	var gotErr error
	b.Mkdir("/d", func(err error) { gotErr = err })
	if gotErr != nil {
		t.Fatalf("mkdir: %v", gotErr)
	}
	if n := s.count("mkdir"); n != 1 {
		t.Fatalf("backend saw %d mkdir calls, want 1", n)
	}
	if st := rs.RetryStats(); st.VerifyProbes < 2 || st.Recovered != 1 {
		t.Fatalf("stats = %+v, want ≥2 probes and Recovered 1", st)
	}
}

func TestRetryShortReadNeverLeaksPartialData(t *testing.T) {
	s := newScripted(NewInMemory())
	s.Backend.Sync("/f", []byte("full contents"), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	// Exhaust all attempts so the final outcome is the transient error;
	// the partial data a faulty attempt delivered must not escape.
	s.fail("stat", EIO, false)
	s.fail("stat", EIO, false)
	b, _ := retryOver(s, fastRetry(2))

	var gotErr error
	var gotSt Stats
	b.Stat("/f", func(st Stats, err error) { gotSt, gotErr = st, err })
	if !IsErrno(gotErr, EIO) {
		t.Fatalf("err = %v, want EIO", gotErr)
	}
	if gotSt != (Stats{}) {
		t.Fatalf("failed stat leaked data: %+v", gotSt)
	}
}

func TestRetryDeadline(t *testing.T) {
	s := newScripted(NewInMemory())
	for i := 0; i < 50; i++ {
		s.fail("stat", EIO, false)
	}
	// Real backoff waits on a real event loop, so the per-op deadline
	// fires long before the attempt bound does.
	w := browser.NewWindow(browser.Chrome28)
	pol := retry.Policy{MaxAttempts: 50, BaseDelay: 2 * time.Millisecond, Deadline: 5 * time.Millisecond}
	b := NewRetry(s, RetryOptions{Policy: pol, Loop: w.Loop})
	rs, _ := Find[RetryStatser](b)

	var gotErr error
	w.Loop.Post("stat", func() {
		b.Stat("/x", func(_ Stats, err error) { gotErr = err })
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if !IsErrno(gotErr, ETIMEDOUT) {
		t.Fatalf("err = %v, want ETIMEDOUT", gotErr)
	}
	st := rs.RetryStats()
	if st.DeadlineExceeded != 1 {
		t.Fatalf("stats = %+v, want DeadlineExceeded 1", st)
	}
	if st.Attempts >= 50 {
		t.Fatalf("deadline did not bound attempts: %+v", st)
	}
	if st.BackoffNanos <= 0 {
		t.Fatalf("stats = %+v, want nonzero backoff time", st)
	}
}

// TestRetryBreakerCycleThroughBackend drives the breaker through its
// full closed → open → half-open → closed cycle using real backend
// operations (the retry_test.go sibling covers the state machine in
// isolation).
func TestRetryBreakerCycleThroughBackend(t *testing.T) {
	s := newScripted(NewInMemory())
	s.Backend.Sync("/ok", []byte("x"), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := NewRetry(s, RetryOptions{
		Policy:  fastRetry(1),
		Breaker: retry.BreakerConfig{Threshold: 2, Cooldown: time.Second, Now: clock},
	})
	rs, _ := Find[RetryStatser](b)
	brb := b.(interface{ BreakerState() retry.State })

	// Two exhausted ops trip the breaker.
	for i := 0; i < 2; i++ {
		s.fail("stat", EIO, false)
		b.Stat("/ok", func(_ Stats, err error) {
			if !IsErrno(err, EIO) {
				t.Fatalf("op %d: err = %v, want EIO", i, err)
			}
		})
	}
	if st := brb.BreakerState(); st != retry.Open {
		t.Fatalf("breaker = %v, want open", st)
	}

	// While open: fast-fail with EAGAIN, no backend traffic.
	before := s.count("stat")
	var gotErr error
	b.Stat("/ok", func(_ Stats, err error) { gotErr = err })
	if !IsErrno(gotErr, EAGAIN) {
		t.Fatalf("fast-fail err = %v, want EAGAIN", gotErr)
	}
	if s.count("stat") != before {
		t.Fatal("open breaker let traffic through")
	}
	if st := rs.RetryStats(); st.FastFails != 1 {
		t.Fatalf("stats = %+v, want FastFails 1", st)
	}

	// After the cooldown the half-open probe succeeds and closes it.
	now = now.Add(2 * time.Second)
	if st := brb.BreakerState(); st != retry.HalfOpen {
		t.Fatalf("breaker = %v, want half-open after cooldown", st)
	}
	b.Stat("/ok", func(_ Stats, err error) { gotErr = err })
	if gotErr != nil {
		t.Fatalf("half-open probe: %v", gotErr)
	}
	if st := brb.BreakerState(); st != retry.Closed {
		t.Fatalf("breaker = %v, want closed after successful probe", st)
	}
}

// TestRetryPreservesCapabilities: wrapping a backend with optional
// capabilities must preserve them (and wrapping one without must not
// invent them).
func TestRetryPreservesCapabilities(t *testing.T) {
	full := NewInMemory() // has Symlink/Readlink and Chmod/Utimes
	wrapped := NewRetry(full, RetryOptions{})
	if _, ok := wrapped.(LinkBackend); !ok {
		t.Error("retry wrapper dropped LinkBackend")
	}
	if _, ok := wrapped.(AttrBackend); !ok {
		t.Error("retry wrapper dropped AttrBackend")
	}
	if _, ok := wrapped.(RetryStatser); !ok {
		t.Error("retry wrapper has no RetryStats")
	}
	if u, ok := wrapped.(Unwrapper); !ok || u.Unwrap() != Backend(full) {
		t.Error("retry wrapper does not unwrap to its base")
	}
}

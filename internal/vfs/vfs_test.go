package vfs

import (
	"bytes"
	"sort"
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/buffer"
)

// harness drives the asynchronous FS API from linear test code: each
// helper posts one operation and runs the event loop to completion.
type harness struct {
	t  *testing.T
	w  *browser.Window
	fs *FS
}

func newHarness(t *testing.T, p browser.Profile, mkBackend func(w *browser.Window, bufs *buffer.Factory) Backend) *harness {
	t.Helper()
	w := browser.NewWindow(p)
	bufs := &buffer.Factory{Typed: p.HasTypedArrays, ValidatesStrings: p.ValidatesStrings, OnTypedAlloc: w.NoteTypedArrayAlloc}
	fs := New(w.Loop, bufs, mkBackend(w, bufs))
	return &harness{t: t, w: w, fs: fs}
}

func (h *harness) run(fn func(done func())) {
	h.t.Helper()
	finished := false
	h.w.Loop.Post("test", func() { fn(func() { finished = true }) })
	if err := h.w.Loop.Run(); err != nil {
		h.t.Fatal(err)
	}
	if !finished {
		h.t.Fatal("async operation never completed")
	}
}

func (h *harness) writeFile(path string, data []byte) error {
	var out error
	h.run(func(done func()) {
		h.fs.WriteFile(path, data, func(err error) { out = err; done() })
	})
	return out
}

func (h *harness) readFile(path string) ([]byte, error) {
	var data []byte
	var out error
	h.run(func(done func()) {
		h.fs.ReadFile(path, func(b *buffer.Buffer, err error) {
			if b != nil {
				data = b.Bytes()
			}
			out = err
			done()
		})
	})
	return data, out
}

func (h *harness) mkdir(path string) error {
	var out error
	h.run(func(done func()) { h.fs.Mkdir(path, func(err error) { out = err; done() }) })
	return out
}

func (h *harness) readdir(path string) ([]string, error) {
	var names []string
	var out error
	h.run(func(done func()) {
		h.fs.Readdir(path, func(n []string, err error) { names, out = n, err; done() })
	})
	return names, out
}

func (h *harness) stat(path string) (Stats, error) {
	var st Stats
	var out error
	h.run(func(done func()) {
		h.fs.Stat(path, func(s Stats, err error) { st, out = s, err; done() })
	})
	return st, out
}

func (h *harness) unlink(path string) error {
	var out error
	h.run(func(done func()) { h.fs.Unlink(path, func(err error) { out = err; done() }) })
	return out
}

func (h *harness) rmdir(path string) error {
	var out error
	h.run(func(done func()) { h.fs.Rmdir(path, func(err error) { out = err; done() }) })
	return out
}

func (h *harness) rename(a, b string) error {
	var out error
	h.run(func(done func()) { h.fs.Rename(a, b, func(err error) { out = err; done() }) })
	return out
}

// backendsUnderTest builds each writable backend configuration the
// paper lists in Figure 2, plus the mountable composition.
func backendsUnderTest() map[string]func(w *browser.Window, bufs *buffer.Factory) Backend {
	return map[string]func(w *browser.Window, bufs *buffer.Factory) Backend{
		"inmemory": func(*browser.Window, *buffer.Factory) Backend { return NewInMemory() },
		"localstorage": func(w *browser.Window, bufs *buffer.Factory) Backend {
			return NewLocalStorageFS(w.LocalStorage, bufs)
		},
		"indexeddb": func(w *browser.Window, bufs *buffer.Factory) Backend {
			return NewIndexedDBFS(w.IndexedDB, bufs)
		},
		"cloud": func(w *browser.Window, bufs *buffer.Factory) Backend {
			return NewCloudFS(w.Loop, NewCloudStore(100*time.Microsecond))
		},
		"mounted": func(w *browser.Window, bufs *buffer.Factory) Backend {
			m := NewMountFS(NewInMemory())
			m.Mount("/kv", NewLocalStorageFS(w.LocalStorage, bufs))
			return m
		},
	}
}

// TestBackendConformance runs a write/read/metadata suite against
// every writable backend.
func TestBackendConformance(t *testing.T) {
	for name, mk := range backendsUnderTest() {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, browser.Chrome28, mk)

			// Missing files report ENOENT.
			if _, err := h.readFile("/missing"); !IsErrno(err, ENOENT) {
				t.Errorf("readFile(missing) = %v, want ENOENT", err)
			}
			if _, err := h.stat("/missing"); !IsErrno(err, ENOENT) {
				t.Errorf("stat(missing) = %v, want ENOENT", err)
			}

			// Round trip binary content.
			payload := []byte{0, 1, 2, 0xFF, 0xD8, 0x80, 65}
			if err := h.writeFile("/a.bin", payload); err != nil {
				t.Fatalf("writeFile: %v", err)
			}
			got, err := h.readFile("/a.bin")
			if err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("readFile = %v, %v", got, err)
			}
			st, err := h.stat("/a.bin")
			if err != nil || !st.IsFile() || st.Size != int64(len(payload)) {
				t.Errorf("stat = %+v, %v", st, err)
			}

			// Directories.
			if err := h.mkdir("/docs"); err != nil {
				t.Fatalf("mkdir: %v", err)
			}
			if err := h.mkdir("/docs"); !IsErrno(err, EEXIST) {
				t.Errorf("mkdir(existing) = %v, want EEXIST", err)
			}
			if err := h.mkdir("/no/parent"); !IsErrno(err, ENOENT) {
				t.Errorf("mkdir(no parent) = %v, want ENOENT", err)
			}
			if err := h.writeFile("/docs/x.txt", []byte("x")); err != nil {
				t.Fatalf("nested writeFile: %v", err)
			}
			st, err = h.stat("/docs")
			if err != nil || !st.IsDirectory() {
				t.Errorf("stat(dir) = %+v, %v", st, err)
			}
			names, err := h.readdir("/")
			if err != nil {
				t.Fatalf("readdir: %v", err)
			}
			wantNames := []string{"a.bin", "docs"}
			if h.fs.root.Name() == "MountableFileSystem" {
				wantNames = append(wantNames, "kv")
				sort.Strings(wantNames)
			}
			if len(names) != len(wantNames) {
				t.Errorf("readdir(/) = %v, want %v", names, wantNames)
			} else {
				for i := range names {
					if names[i] != wantNames[i] {
						t.Errorf("readdir(/) = %v, want %v", names, wantNames)
						break
					}
				}
			}

			// Reading a directory fails.
			if _, err := h.readFile("/docs"); !IsErrno(err, EISDIR) {
				t.Errorf("readFile(dir) = %v, want EISDIR", err)
			}

			// Rename.
			if err := h.rename("/a.bin", "/docs/b.bin"); err != nil {
				t.Fatalf("rename: %v", err)
			}
			if _, err := h.stat("/a.bin"); !IsErrno(err, ENOENT) {
				t.Errorf("old path still exists after rename")
			}
			got, err = h.readFile("/docs/b.bin")
			if err != nil || !bytes.Equal(got, payload) {
				t.Errorf("renamed content = %v, %v", got, err)
			}

			// Unlink and rmdir.
			if err := h.unlink("/docs"); !IsErrno(err, EISDIR) {
				t.Errorf("unlink(dir) = %v, want EISDIR", err)
			}
			if err := h.rmdir("/docs"); !IsErrno(err, ENOTEMPTY) {
				t.Errorf("rmdir(non-empty) = %v, want ENOTEMPTY", err)
			}
			if err := h.unlink("/docs/b.bin"); err != nil {
				t.Fatalf("unlink: %v", err)
			}
			if err := h.unlink("/docs/x.txt"); err != nil {
				t.Fatalf("unlink: %v", err)
			}
			if err := h.rmdir("/docs"); err != nil {
				t.Fatalf("rmdir: %v", err)
			}
			if _, err := h.stat("/docs"); !IsErrno(err, ENOENT) {
				t.Errorf("rmdir left directory behind")
			}
		})
	}
}

func TestFDLifecycle(t *testing.T) {
	h := newHarness(t, browser.Chrome28, func(*browser.Window, *buffer.Factory) Backend { return NewInMemory() })

	var fd *FD
	h.run(func(done func()) {
		h.fs.Open("/f.txt", "w+", func(f *FD, err error) {
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			fd = f
			done()
		})
	})

	src := h.fs.BufferFactory().FromBytes([]byte("hello world"))
	h.run(func(done func()) {
		h.fs.Write(fd, src, 0, src.Len(), -1, func(n int, err error) {
			if n != 11 || err != nil {
				t.Fatalf("write = %d, %v", n, err)
			}
			done()
		})
	})

	// Sync-on-close: before close the backend has no file.
	if _, err := h.readFile("/f.txt"); !IsErrno(err, ENOENT) {
		t.Errorf("file visible before close: %v", err)
	}
	h.run(func(done func()) {
		h.fs.Close(fd, func(err error) {
			if err != nil {
				t.Fatalf("close: %v", err)
			}
			done()
		})
	})
	got, err := h.readFile("/f.txt")
	if err != nil || string(got) != "hello world" {
		t.Fatalf("after close: %q, %v", got, err)
	}

	// Positional reads.
	h.run(func(done func()) {
		h.fs.Open("/f.txt", "r", func(f *FD, err error) {
			if err != nil {
				t.Fatal(err)
			}
			dst := h.fs.BufferFactory().New(5)
			h.fs.Read(f, dst, 0, 5, 6, func(n int, err error) {
				if n != 5 || err != nil {
					t.Fatalf("read = %d, %v", n, err)
				}
				if string(dst.Bytes()) != "world" {
					t.Errorf("read content = %q", dst.Bytes())
				}
				// Writing through a read-only fd fails.
				h.fs.Write(f, dst, 0, 1, -1, func(_ int, err error) {
					if !IsErrno(err, EBADF) {
						t.Errorf("write on r fd = %v, want EBADF", err)
					}
					done()
				})
			})
		})
	})
}

func TestOpenFlags(t *testing.T) {
	h := newHarness(t, browser.Chrome28, func(*browser.Window, *buffer.Factory) Backend { return NewInMemory() })
	if err := h.writeFile("/x", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	// "wx" on existing file fails.
	h.run(func(done func()) {
		h.fs.Open("/x", "wx", func(_ *FD, err error) {
			if !IsErrno(err, EEXIST) {
				t.Errorf("wx = %v, want EEXIST", err)
			}
			done()
		})
	})
	// "r" on missing file fails.
	h.run(func(done func()) {
		h.fs.Open("/missing", "r", func(_ *FD, err error) {
			if !IsErrno(err, ENOENT) {
				t.Errorf("r missing = %v, want ENOENT", err)
			}
			done()
		})
	})
	// "a" appends.
	h.run(func(done func()) {
		h.fs.Open("/x", "a", func(fd *FD, err error) {
			if err != nil {
				t.Fatal(err)
			}
			src := h.fs.BufferFactory().FromBytes([]byte("def"))
			h.fs.Write(fd, src, 0, 3, -1, func(int, error) {
				h.fs.Close(fd, func(error) { done() })
			})
		})
	})
	got, _ := h.readFile("/x")
	if string(got) != "abcdef" {
		t.Errorf("append result = %q", got)
	}
	// Bad flag string.
	h.run(func(done func()) {
		h.fs.Open("/x", "q", func(_ *FD, err error) {
			if !IsErrno(err, EINVAL) {
				t.Errorf("bad flag = %v, want EINVAL", err)
			}
			done()
		})
	})
}

func TestCallbacksAreAsynchronous(t *testing.T) {
	h := newHarness(t, browser.Chrome28, func(*browser.Window, *buffer.Factory) Backend { return NewInMemory() })
	var order []string
	h.run(func(done func()) {
		h.fs.Exists("/nope", func(bool) {
			order = append(order, "callback")
			done()
		})
		order = append(order, "after-call")
	})
	if order[0] != "after-call" {
		t.Errorf("order = %v: fs callbacks must be delivered asynchronously", order)
	}
}

func TestChdirAndRelativePaths(t *testing.T) {
	h := newHarness(t, browser.Chrome28, func(*browser.Window, *buffer.Factory) Backend { return NewInMemory() })
	if err := h.mkdir("/home"); err != nil {
		t.Fatal(err)
	}
	h.run(func(done func()) {
		h.fs.Chdir("/home", func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			done()
		})
	})
	if h.fs.Cwd() != "/home" {
		t.Fatalf("cwd = %q", h.fs.Cwd())
	}
	if err := h.writeFile("rel.txt", []byte("r")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.stat("/home/rel.txt"); err != nil {
		t.Errorf("relative write landed elsewhere: %v", err)
	}
	h.run(func(done func()) {
		h.fs.Chdir("/home/rel.txt", func(err error) {
			if !IsErrno(err, ENOTDIR) {
				t.Errorf("chdir(file) = %v, want ENOTDIR", err)
			}
			done()
		})
	})
	h.run(func(done func()) {
		h.fs.Chdir("/missing", func(err error) {
			if !IsErrno(err, ENOENT) {
				t.Errorf("chdir(missing) = %v, want ENOENT", err)
			}
			done()
		})
	})
}

func TestMkdirAllAndAppendFile(t *testing.T) {
	h := newHarness(t, browser.Chrome28, func(*browser.Window, *buffer.Factory) Backend { return NewInMemory() })
	h.run(func(done func()) {
		h.fs.MkdirAll("/a/b/c", func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			done()
		})
	})
	if st, err := h.stat("/a/b/c"); err != nil || !st.IsDirectory() {
		t.Fatalf("MkdirAll: %+v, %v", st, err)
	}
	var appendErr error
	h.run(func(done func()) {
		h.fs.AppendFile("/a/b/c/log", []byte("one"), func(err error) { appendErr = err; done() })
	})
	if appendErr != nil {
		t.Fatal(appendErr)
	}
	h.run(func(done func()) {
		h.fs.AppendFile("/a/b/c/log", []byte("two"), func(err error) { appendErr = err; done() })
	})
	got, _ := h.readFile("/a/b/c/log")
	if string(got) != "onetwo" {
		t.Errorf("append = %q", got)
	}
}

func TestTruncate(t *testing.T) {
	h := newHarness(t, browser.Chrome28, func(*browser.Window, *buffer.Factory) Backend { return NewInMemory() })
	if err := h.writeFile("/t", []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	h.run(func(done func()) {
		h.fs.Truncate("/t", 3, func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			done()
		})
	})
	got, _ := h.readFile("/t")
	if string(got) != "abc" {
		t.Errorf("truncate = %q", got)
	}
	h.run(func(done func()) {
		h.fs.Truncate("/t", 5, func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			done()
		})
	})
	got, _ = h.readFile("/t")
	if !bytes.Equal(got, []byte{'a', 'b', 'c', 0, 0}) {
		t.Errorf("grow-truncate = %v", got)
	}
}

func TestSymlinks(t *testing.T) {
	h := newHarness(t, browser.Chrome28, func(*browser.Window, *buffer.Factory) Backend { return NewInMemory() })
	if err := h.writeFile("/target", []byte("data")); err != nil {
		t.Fatal(err)
	}
	h.run(func(done func()) {
		h.fs.Symlink("/target", "/link", func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			done()
		})
	})
	got, err := h.readFile("/link")
	if err != nil || string(got) != "data" {
		t.Errorf("read through symlink = %q, %v", got, err)
	}
	h.run(func(done func()) {
		h.fs.Readlink("/link", func(target string, err error) {
			if err != nil || target != "/target" {
				t.Errorf("readlink = %q, %v", target, err)
			}
			done()
		})
	})
	// Backends without link support report ENOTSUP.
	h2 := newHarness(t, browser.Chrome28, func(w *browser.Window, bufs *buffer.Factory) Backend {
		return NewLocalStorageFS(w.LocalStorage, bufs)
	})
	h2.run(func(done func()) {
		h2.fs.Symlink("/a", "/b", func(err error) {
			if !IsErrno(err, ENOTSUP) {
				t.Errorf("symlink on kv = %v, want ENOTSUP", err)
			}
			done()
		})
	})
}

func TestHTTPFSReadOnly(t *testing.T) {
	h := newHarness(t, browser.Chrome28, func(w *browser.Window, bufs *buffer.Factory) Backend {
		w.Remote.Serve("classes/java/lang/Object.class", []byte{0xCA, 0xFE, 0xBA, 0xBE})
		w.Remote.Serve("classes/java/lang/String.class", []byte{0xCA, 0xFE})
		w.Remote.Serve("index.html", []byte("<html>"))
		return NewHTTPFS(w.Loop, w.Remote, "classes")
	})
	// The prefix filter hides index.html.
	names, err := h.readdir("/")
	if err != nil || len(names) != 1 || names[0] != "java" {
		t.Fatalf("readdir(/) = %v, %v", names, err)
	}
	names, err = h.readdir("/java/lang")
	if err != nil || len(names) != 2 {
		t.Fatalf("readdir(/java/lang) = %v, %v", names, err)
	}
	got, err := h.readFile("/java/lang/Object.class")
	if err != nil || !bytes.Equal(got, []byte{0xCA, 0xFE, 0xBA, 0xBE}) {
		t.Fatalf("readFile = %v, %v", got, err)
	}
	// Stats use HEAD and report sizes.
	st, err := h.stat("/java/lang/String.class")
	if err != nil || st.Size != 2 {
		t.Errorf("stat = %+v, %v", st, err)
	}
	// Writes fail with EROFS at the front end.
	if err := h.writeFile("/java/x", []byte("n")); !IsErrno(err, EROFS) {
		t.Errorf("writeFile = %v, want EROFS", err)
	}
	if err := h.unlink("/java/lang/Object.class"); !IsErrno(err, EROFS) {
		t.Errorf("unlink = %v, want EROFS", err)
	}
	// Opening a descriptor for write fails too.
	h.run(func(done func()) {
		h.fs.Open("/java/lang/Object.class", "w", func(_ *FD, err error) {
			if !IsErrno(err, EROFS) {
				t.Errorf("open w = %v, want EROFS", err)
			}
			done()
		})
	})
}

func TestMountFSRouting(t *testing.T) {
	var store *CloudStore
	h := newHarness(t, browser.Chrome28, func(w *browser.Window, bufs *buffer.Factory) Backend {
		store = NewCloudStore(50 * time.Microsecond)
		m := NewMountFS(NewInMemory())
		m.Mount("/cloud", NewCloudFS(w.Loop, store))
		m.Mount("/tmp", NewInMemory())
		return m
	})
	if err := h.writeFile("/cloud/remote.txt", []byte("c")); err != nil {
		t.Fatal(err)
	}
	if err := h.writeFile("/tmp/local.txt", []byte("l")); err != nil {
		t.Fatal(err)
	}
	if err := h.writeFile("/root.txt", []byte("r")); err != nil {
		t.Fatal(err)
	}
	// The cloud store received the bytes under the translated path.
	if data, ok := store.files["/remote.txt"]; !ok || string(data) != "c" {
		t.Errorf("cloud store contents = %v, %v", data, ok)
	}
	// Mount points appear in the root listing.
	names, err := h.readdir("/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cloud", "root.txt", "tmp"}
	if len(names) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Errorf("readdir(/) = %v, want %v", names, want)
	}
	// Mount points stat as directories.
	if st, err := h.stat("/cloud"); err != nil || !st.IsDirectory() {
		t.Errorf("stat(mount) = %+v, %v", st, err)
	}
	// Cross-backend rename reports EXDEV.
	if err := h.rename("/tmp/local.txt", "/cloud/moved.txt"); !IsErrno(err, EXDEV) {
		t.Errorf("cross-mount rename = %v, want EXDEV", err)
	}
	// Same-backend rename works through the mount.
	if err := h.rename("/cloud/remote.txt", "/cloud/renamed.txt"); err != nil {
		t.Errorf("in-mount rename: %v", err)
	}
	// Removing a mount point is forbidden.
	if err := h.rmdir("/tmp"); !IsErrno(err, EPERM) {
		t.Errorf("rmdir(mount point) = %v, want EPERM", err)
	}
	// Unmount restores the root view.
	m := h.fs.Root().(*MountFS)
	if !m.Unmount("/tmp") || m.Unmount("/tmp") {
		t.Error("Unmount bookkeeping wrong")
	}
}

func TestLocalStorageQuotaBecomesENOSPC(t *testing.T) {
	h := newHarness(t, browser.Chrome28, func(w *browser.Window, bufs *buffer.Factory) Backend {
		return NewLocalStorageFS(browser.NewLocalStorage(256), bufs)
	})
	big := make([]byte, 4096)
	if err := h.writeFile("/big", big); !IsErrno(err, ENOSPC) {
		t.Errorf("over-quota write = %v, want ENOSPC", err)
	}
}

func TestDeepDirectoryRenameOnKV(t *testing.T) {
	h := newHarness(t, browser.Chrome28, func(w *browser.Window, bufs *buffer.Factory) Backend {
		return NewLocalStorageFS(w.LocalStorage, bufs)
	})
	if err := h.mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := h.mkdir("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := h.writeFile("/d/sub/f.txt", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	if err := h.rename("/d", "/e"); err != nil {
		t.Fatal(err)
	}
	got, err := h.readFile("/e/sub/f.txt")
	if err != nil || string(got) != "deep" {
		t.Errorf("after dir rename: %q, %v", got, err)
	}
	if _, err := h.stat("/d"); !IsErrno(err, ENOENT) {
		t.Errorf("old tree still present: %v", err)
	}
}

func TestOpsCounterAndHook(t *testing.T) {
	h := newHarness(t, browser.Chrome28, func(*browser.Window, *buffer.Factory) Backend { return NewInMemory() })
	var ops []string
	h.fs.OnOp = func(op, path string) { ops = append(ops, op) }
	if err := h.writeFile("/x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.stat("/x"); err != nil {
		t.Fatal(err)
	}
	if h.fs.Ops != 2 || len(ops) != 2 || ops[0] != "writeFile" || ops[1] != "stat" {
		t.Errorf("Ops = %d, hook = %v", h.fs.Ops, ops)
	}
}

// Package retry holds the policy side of the runtime's fault model:
// exponential backoff with jitter, per-operation deadlines, and a
// circuit breaker. Like its sibling faultfs, it is transport-agnostic
// — the same Policy drives the VFS RetryBackend's re-issued backend
// calls (§5.1's cloud and HTTP backends) and the socket layer's
// reconnect-with-backoff (§5.4's WebSocket clients). Decorators own
// the scheduling (event-loop timers, goroutine timers); this package
// owns the arithmetic and the breaker state machine.
package retry

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Policy shapes one retry loop. The zero Policy means "no retries":
// callers that want the standard profile start from Defaults().
type Policy struct {
	// MaxAttempts bounds the total tries (first attempt included).
	// Values below 1 behave as 1.
	MaxAttempts int
	// BaseDelay is the wait before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the grown delay. Zero means no cap.
	MaxDelay time.Duration
	// Multiplier grows the delay per retry; values below 1 behave
	// as 2 (pure exponential doubling).
	Multiplier float64
	// Jitter randomizes each delay by ±Jitter fraction (0..1), which
	// de-synchronizes retry storms.
	Jitter float64
	// Deadline bounds the whole operation, attempts and backoff waits
	// included. Zero means no deadline.
	Deadline time.Duration
	// Seed fixes the jitter sequence so runs are reproducible. Two
	// retry loops with the same Policy draw identical jitter.
	Seed int64
}

// Defaults is the standard profile: 6 attempts, 1ms→64ms exponential
// backoff with 30% jitter, no deadline. Tuned so a 25% injected fault
// rate is absorbed with overwhelming probability (0.25^6 ≈ 2e-4 per
// op) while a healthy run pays nothing.
func Defaults() Policy {
	return Policy{
		MaxAttempts: 6,
		BaseDelay:   time.Millisecond,
		MaxDelay:    64 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.3,
	}
}

// Attempts returns the effective attempt bound.
func (p Policy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff computes the wait before retry number retry (1-based: the
// wait after the first failed attempt is Backoff(1, ...)). rnd supplies
// uniform [0,1) draws for jitter; a nil rnd disables jitter.
func (p Policy) Backoff(retry int, rnd func() float64) time.Duration {
	if retry < 1 || p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.BaseDelay) * math.Pow(mult, float64(retry-1))
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rnd != nil {
		d *= 1 + p.Jitter*(2*rnd()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Rand builds the policy's deterministic jitter source. The returned
// function is not goroutine-safe; guard it with the caller's lock.
func (p Policy) Rand() func() float64 {
	rng := rand.New(rand.NewSource(p.Seed))
	return rng.Float64
}

// State is a circuit breaker state.
type State int

const (
	// Closed passes traffic; failures are counted.
	Closed State = iota
	// Open fails fast; no traffic passes until the cooldown elapses.
	Open
	// HalfOpen admits a limited number of probe operations; their
	// outcome closes or re-opens the breaker.
	HalfOpen
)

// String names the state for telemetry and logs.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. The zero value gets the defaults
// noted on each field.
type BreakerConfig struct {
	// Threshold is the count of consecutive operation failures that
	// opens the breaker (default 5).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting
	// probes (default 1s).
	Cooldown time.Duration
	// HalfOpenProbes is how many concurrent probes half-open admits
	// (default 1).
	HalfOpenProbes int
	// Now overrides the clock, for tests (default time.Now).
	Now func() time.Time
}

// Breaker is the circuit breaker: closed → (Threshold consecutive
// failures) → open → (Cooldown) → half-open → probe success closes /
// probe failure re-opens. "Failure" means a transient, exhausted
// operation — the decorators do not Record responses like ENOENT that
// prove the service is alive.
type Breaker struct {
	cfg BreakerConfig

	// OnTransition, when non-nil, observes every state change. It is
	// called with the breaker's lock released, from whichever
	// goroutine drove the transition. Set it before use.
	OnTransition func(from, to State)

	mu       sync.Mutex
	state    State
	failures int
	openedAt time.Time
	probes   int // in-flight half-open probes
}

// NewBreaker builds a breaker with the config's defaults applied.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// State reports the breaker's current state, promoting Open to
// HalfOpen if the cooldown has elapsed.
func (b *Breaker) State() State {
	b.mu.Lock()
	s, fire := b.refreshLocked()
	b.mu.Unlock()
	b.fire(fire)
	return s
}

// Allow reports whether an operation may proceed. In half-open it
// consumes a probe slot; the caller must Record the outcome (which
// releases the slot) or Cancel it.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	s, fire := b.refreshLocked()
	allowed := true
	switch s {
	case Open:
		allowed = false
	case HalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			allowed = false
		} else {
			b.probes++
		}
	}
	b.mu.Unlock()
	b.fire(fire)
	return allowed
}

// Record reports an operation outcome. ok=false is a transient,
// retries-exhausted failure; ok=true is anything that proves the
// service responded.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	_, fire := b.refreshLocked()
	if b.state == HalfOpen && b.probes > 0 {
		b.probes--
	}
	if ok {
		b.failures = 0
		if b.state != Closed {
			fire = append(fire, transition{b.state, Closed})
			b.state = Closed
			b.probes = 0
		}
	} else {
		b.failures++
		trip := b.state == HalfOpen || (b.state == Closed && b.failures >= b.cfg.Threshold)
		if trip && b.state != Open {
			fire = append(fire, transition{b.state, Open})
			b.state = Open
			b.openedAt = b.cfg.Now()
			b.probes = 0
		}
	}
	b.mu.Unlock()
	b.fire(fire)
}

// Cancel releases a half-open probe slot without recording an outcome
// (e.g. the operation was abandoned before reaching the transport).
func (b *Breaker) Cancel() {
	b.mu.Lock()
	if b.state == HalfOpen && b.probes > 0 {
		b.probes--
	}
	b.mu.Unlock()
}

type transition struct{ from, to State }

// refreshLocked promotes Open to HalfOpen after the cooldown and
// returns the current state plus any transition to fire (after the
// lock is released).
func (b *Breaker) refreshLocked() (State, []transition) {
	var fire []transition
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		fire = append(fire, transition{Open, HalfOpen})
		b.state = HalfOpen
		b.probes = 0
	}
	return b.state, fire
}

func (b *Breaker) fire(ts []transition) {
	if b.OnTransition == nil {
		return
	}
	for _, t := range ts {
		b.OnTransition(t.from, t.to)
	}
}

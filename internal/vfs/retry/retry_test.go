package retry

import (
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := p.Backoff(i+1, nil); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := p.Backoff(0, nil); got != 0 {
		t.Errorf("Backoff(0) = %v, want 0", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, Multiplier: 1.5, Jitter: 0.3, Seed: 11}
	rnd := p.Rand()
	for retry := 1; retry <= 20; retry++ {
		raw := p.Backoff(retry, nil)
		got := p.Backoff(retry, rnd)
		lo := time.Duration(float64(raw) * 0.7)
		hi := time.Duration(float64(raw) * 1.3)
		if got < lo || got > hi {
			t.Errorf("retry %d: jittered %v outside [%v, %v]", retry, got, lo, hi)
		}
	}
	// Same seed → same jitter sequence.
	a, b := p.Rand(), p.Rand()
	for i := 0; i < 100; i++ {
		if p.Backoff(3, a) != p.Backoff(3, b) {
			t.Fatal("jitter is not deterministic for a fixed seed")
		}
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := Defaults()
	if p.Attempts() != 6 || p.BaseDelay <= 0 || p.MaxDelay <= p.BaseDelay {
		t.Errorf("Defaults() = %+v", p)
	}
	if (Policy{}).Attempts() != 1 {
		t.Error("zero policy should allow exactly one attempt")
	}
}

// TestBreakerCycle walks the full open → half-open → closed cycle with
// a fake clock — the acceptance-criteria state machine check.
func TestBreakerCycle(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	var transitions []string
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second, Now: clock})
	b.OnTransition = func(from, to State) {
		transitions = append(transitions, from.String()+"->"+to.String())
	}

	if b.State() != Closed {
		t.Fatalf("initial state = %v", b.State())
	}
	// Two failures: still closed; a success resets the count.
	b.Record(false)
	b.Record(false)
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if b.State() != Closed {
		t.Fatalf("state after interleaved failures = %v", b.State())
	}
	// Third consecutive failure trips it.
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state after threshold = %v", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed an operation")
	}
	// Cooldown elapses → half-open, one probe admitted.
	now = now.Add(time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state after cooldown = %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails → open again.
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v", b.State())
	}
	// Second cooldown, successful probe → closed.
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the second probe")
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v", b.State())
	}
	if b.Allow() != true {
		t.Fatal("closed breaker refused traffic")
	}

	want := []string{
		"closed->open", "open->half-open", "half-open->open",
		"open->half-open", "half-open->closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (all: %v)", i, transitions[i], want[i], transitions)
		}
	}
}

func TestBreakerCancelReleasesProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, Now: func() time.Time { return now }})
	b.Record(false)
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Cancel()
	if !b.Allow() {
		t.Fatal("probe slot not released by Cancel")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatalf("state before default threshold = %v", b.State())
	}
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state at default threshold = %v", b.State())
	}
}

// Package vpath emulates the Node JS `path` module (POSIX flavour),
// which Doppio provides alongside the file system (§5.1: "path
// contains useful path string manipulation functions"). The
// normalization semantics live in the shared resolution kernel
// (internal/vfs/vkernel); this package is the user-facing string API
// over it.
package vpath

import (
	"strings"

	"doppio/internal/vfs/vkernel"
)

// Sep is the path separator.
const Sep = vkernel.Sep

// IsAbsolute reports whether p is an absolute path.
func IsAbsolute(p string) bool { return vkernel.IsAbs(p) }

// Normalize cleans a path: collapses duplicate separators, resolves
// "." and "..", and strips trailing slashes (except for the root).
// An empty path normalizes to ".".
func Normalize(p string) string { return vkernel.Normalize(p) }

// Join joins path segments and normalizes the result. Empty segments
// are ignored; joining nothing yields ".".
func Join(parts ...string) string {
	var nonEmpty []string
	for _, p := range parts {
		if p != "" {
			nonEmpty = append(nonEmpty, p)
		}
	}
	if len(nonEmpty) == 0 {
		return "."
	}
	return Normalize(strings.Join(nonEmpty, Sep))
}

// Resolve resolves segments right-to-left against cwd until an
// absolute path is produced, like Node's path.resolve.
func Resolve(cwd string, parts ...string) string {
	resolved := ""
	for i := len(parts) - 1; i >= -1; i-- {
		var p string
		if i >= 0 {
			p = parts[i]
		} else {
			p = cwd
		}
		if p == "" {
			continue
		}
		resolved = p + Sep + resolved
		if IsAbsolute(p) {
			break
		}
	}
	if !IsAbsolute(resolved) {
		resolved = Sep + resolved
	}
	return Normalize(resolved)
}

// Dirname returns the directory portion of p.
func Dirname(p string) string {
	p = Normalize(p)
	if p == Sep {
		return Sep
	}
	i := strings.LastIndex(p, Sep)
	switch i {
	case -1:
		return "."
	case 0:
		return Sep
	default:
		return p[:i]
	}
}

// Basename returns the final path element, optionally stripping ext.
func Basename(p string, ext string) string {
	p = Normalize(p)
	if p == Sep {
		return Sep
	}
	if i := strings.LastIndex(p, Sep); i >= 0 {
		p = p[i+1:]
	}
	if ext != "" && ext != p && strings.HasSuffix(p, ext) {
		p = p[:len(p)-len(ext)]
	}
	return p
}

// Extname returns the extension of p, from the last '.' in the final
// element, or "" if there is none (or the name starts with '.').
func Extname(p string) string {
	base := Basename(p, "")
	i := strings.LastIndex(base, ".")
	if i <= 0 {
		return ""
	}
	return base[i:]
}

// Relative computes the relative path from `from` to `to` (both
// resolved against "/" if relative).
func Relative(from, to string) string {
	from = Resolve("/", from)
	to = Resolve("/", to)
	if from == to {
		return ""
	}
	fp := strings.Split(strings.TrimPrefix(from, Sep), Sep)
	tp := strings.Split(strings.TrimPrefix(to, Sep), Sep)
	if from == Sep {
		fp = nil
	}
	if to == Sep {
		tp = nil
	}
	common := 0
	for common < len(fp) && common < len(tp) && fp[common] == tp[common] {
		common++
	}
	var out []string
	for i := common; i < len(fp); i++ {
		out = append(out, "..")
	}
	out = append(out, tp[common:]...)
	return strings.Join(out, Sep)
}

// Split returns the directory and file portions of p.
func Split(p string) (dir, file string) {
	return Dirname(p), Basename(p, "")
}

// Package vpath emulates the Node JS `path` module (POSIX flavour),
// which Doppio provides alongside the file system (§5.1: "path
// contains useful path string manipulation functions").
package vpath

import "strings"

// Sep is the path separator.
const Sep = "/"

// IsAbsolute reports whether p is an absolute path.
func IsAbsolute(p string) bool { return strings.HasPrefix(p, Sep) }

// Normalize cleans a path: collapses duplicate separators, resolves
// "." and "..", and strips trailing slashes (except for the root).
// An empty path normalizes to ".".
func Normalize(p string) string {
	if p == "" {
		return "."
	}
	abs := IsAbsolute(p)
	parts := strings.Split(p, Sep)
	var out []string
	for _, part := range parts {
		switch part {
		case "", ".":
		case "..":
			if len(out) > 0 && out[len(out)-1] != ".." {
				out = out[:len(out)-1]
			} else if !abs {
				out = append(out, "..")
			}
		default:
			out = append(out, part)
		}
	}
	res := strings.Join(out, Sep)
	if abs {
		return Sep + res
	}
	if res == "" {
		return "."
	}
	return res
}

// Join joins path segments and normalizes the result. Empty segments
// are ignored; joining nothing yields ".".
func Join(parts ...string) string {
	var nonEmpty []string
	for _, p := range parts {
		if p != "" {
			nonEmpty = append(nonEmpty, p)
		}
	}
	if len(nonEmpty) == 0 {
		return "."
	}
	return Normalize(strings.Join(nonEmpty, Sep))
}

// Resolve resolves segments right-to-left against cwd until an
// absolute path is produced, like Node's path.resolve.
func Resolve(cwd string, parts ...string) string {
	resolved := ""
	for i := len(parts) - 1; i >= -1; i-- {
		var p string
		if i >= 0 {
			p = parts[i]
		} else {
			p = cwd
		}
		if p == "" {
			continue
		}
		resolved = p + Sep + resolved
		if IsAbsolute(p) {
			break
		}
	}
	if !IsAbsolute(resolved) {
		resolved = Sep + resolved
	}
	return Normalize(resolved)
}

// Dirname returns the directory portion of p.
func Dirname(p string) string {
	p = Normalize(p)
	if p == Sep {
		return Sep
	}
	i := strings.LastIndex(p, Sep)
	switch i {
	case -1:
		return "."
	case 0:
		return Sep
	default:
		return p[:i]
	}
}

// Basename returns the final path element, optionally stripping ext.
func Basename(p string, ext string) string {
	p = Normalize(p)
	if p == Sep {
		return Sep
	}
	if i := strings.LastIndex(p, Sep); i >= 0 {
		p = p[i+1:]
	}
	if ext != "" && ext != p && strings.HasSuffix(p, ext) {
		p = p[:len(p)-len(ext)]
	}
	return p
}

// Extname returns the extension of p, from the last '.' in the final
// element, or "" if there is none (or the name starts with '.').
func Extname(p string) string {
	base := Basename(p, "")
	i := strings.LastIndex(base, ".")
	if i <= 0 {
		return ""
	}
	return base[i:]
}

// Relative computes the relative path from `from` to `to` (both
// resolved against "/" if relative).
func Relative(from, to string) string {
	from = Resolve("/", from)
	to = Resolve("/", to)
	if from == to {
		return ""
	}
	fp := strings.Split(strings.TrimPrefix(from, Sep), Sep)
	tp := strings.Split(strings.TrimPrefix(to, Sep), Sep)
	if from == Sep {
		fp = nil
	}
	if to == Sep {
		tp = nil
	}
	common := 0
	for common < len(fp) && common < len(tp) && fp[common] == tp[common] {
		common++
	}
	var out []string
	for i := common; i < len(fp); i++ {
		out = append(out, "..")
	}
	out = append(out, tp[common:]...)
	return strings.Join(out, Sep)
}

// Split returns the directory and file portions of p.
func Split(p string) (dir, file string) {
	return Dirname(p), Basename(p, "")
}

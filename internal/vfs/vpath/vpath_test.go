package vpath

import "testing"

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"":              ".",
		"/":             "/",
		"/a/b/c":        "/a/b/c",
		"/a//b///c/":    "/a/b/c",
		"a/./b":         "a/b",
		"/a/b/../c":     "/a/c",
		"/a/../../b":    "/b",
		"../a":          "../a",
		"a/..":          ".",
		"./":            ".",
		"/..":           "/",
		"a/b/../../..":  "..",
		"/a/b/c/../../": "/a",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestJoin(t *testing.T) {
	cases := []struct {
		parts []string
		want  string
	}{
		{[]string{"/a", "b", "c"}, "/a/b/c"},
		{[]string{"a", "../b"}, "b"},
		{[]string{"", ""}, "."},
		{[]string{"/", "tmp"}, "/tmp"},
		{[]string{"a/", "/b/"}, "a/b"},
	}
	for _, c := range cases {
		if got := Join(c.parts...); got != c.want {
			t.Errorf("Join(%v) = %q, want %q", c.parts, got, c.want)
		}
	}
}

func TestResolve(t *testing.T) {
	cases := []struct {
		cwd   string
		parts []string
		want  string
	}{
		{"/home", []string{"a"}, "/home/a"},
		{"/home", []string{"/etc", "passwd"}, "/etc/passwd"},
		{"/home", []string{"a", "/b", "c"}, "/b/c"},
		{"/home", []string{".."}, "/"},
		{"/", nil, "/"},
		{"/a/b", []string{"../c"}, "/a/c"},
	}
	for _, c := range cases {
		if got := Resolve(c.cwd, c.parts...); got != c.want {
			t.Errorf("Resolve(%q, %v) = %q, want %q", c.cwd, c.parts, got, c.want)
		}
	}
}

func TestDirnameBasenameExtname(t *testing.T) {
	if Dirname("/a/b/c.txt") != "/a/b" || Dirname("/a") != "/" || Dirname("/") != "/" || Dirname("a") != "." {
		t.Error("Dirname mismatch")
	}
	if Basename("/a/b/c.txt", "") != "c.txt" || Basename("/a/b/c.txt", ".txt") != "c" || Basename("/", "") != "/" {
		t.Error("Basename mismatch")
	}
	if Extname("/a/b.txt") != ".txt" || Extname("/a/b") != "" || Extname("/a/.hidden") != "" || Extname("a.tar.gz") != ".gz" {
		t.Error("Extname mismatch")
	}
}

func TestRelative(t *testing.T) {
	cases := []struct{ from, to, want string }{
		{"/a/b", "/a/b/c", "c"},
		{"/a/b/c", "/a/b", ".."},
		{"/a/b", "/a/b", ""},
		{"/a/x", "/a/y/z", "../y/z"},
		{"/", "/a", "a"},
	}
	for _, c := range cases {
		if got := Relative(c.from, c.to); got != c.want {
			t.Errorf("Relative(%q, %q) = %q, want %q", c.from, c.to, got, c.want)
		}
	}
}

func TestSplit(t *testing.T) {
	d, f := Split("/a/b/c.go")
	if d != "/a/b" || f != "c.go" {
		t.Errorf("Split = %q, %q", d, f)
	}
}

func TestIsAbsolute(t *testing.T) {
	if !IsAbsolute("/a") || IsAbsolute("a") || IsAbsolute("") {
		t.Error("IsAbsolute mismatch")
	}
}

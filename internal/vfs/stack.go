package vfs

import (
	"doppio/internal/telemetry"
	"doppio/internal/vfs/faultfs"
	"doppio/internal/vfs/retry"
)

// Unwrapper is implemented by every decorator in this package; it
// exposes the wrapped backend so callers can walk a decorator chain.
type Unwrapper interface {
	Unwrap() Backend
}

// FaultStatser is implemented by fault-injecting backends (NewFaulty).
type FaultStatser interface {
	FaultStats() faultfs.Stats
}

// Find walks a decorator chain outermost-in (via Unwrap) and returns
// the first layer satisfying T — a concrete type like *MountFS or a
// capability interface like CacheStatser, RetryStatser, FaultStatser.
func Find[T any](b Backend) (T, bool) {
	for b != nil {
		if t, ok := any(b).(T); ok {
			return t, true
		}
		u, ok := b.(Unwrapper)
		if !ok {
			break
		}
		b = u.Unwrap()
	}
	var zero T
	return zero, false
}

// breakerBackend is the slice of the retry decorator the Stack wires
// into the cache's degraded-serve hook.
type breakerBackend interface {
	BreakerState() retry.State
	noteDegradedServe()
}

// StackOption selects and configures one layer of a backend stack.
type StackOption func(*stackConfig)

type stackConfig struct {
	cache *CacheOptions
	retry *RetryOptions
	plan  *faultfs.Plan
	inj   *faultfs.Injector
	hub   *telemetry.Hub
}

// WithCache adds the caching layer (NewCached) to the stack.
func WithCache(opts CacheOptions) StackOption {
	return func(c *stackConfig) { c.cache = &opts }
}

// WithRetry adds the retry/breaker layer (NewRetry) to the stack.
func WithRetry(opts RetryOptions) StackOption {
	return func(c *stackConfig) { c.retry = &opts }
}

// WithFaults adds the fault-injection layer (NewFaulty) to the stack.
// A plan that cannot inject (Plan.Enabled() == false) adds nothing.
func WithFaults(plan faultfs.Plan) StackOption {
	return func(c *stackConfig) { c.plan = &plan }
}

// WithInjector is WithFaults with a caller-owned injector, for tests
// and harnesses that want to share one decision sequence (or read its
// Stats) across stacks.
func WithInjector(inj *faultfs.Injector) StackOption {
	return func(c *stackConfig) { c.inj = inj }
}

// WithTelemetry instruments the stack: the outermost layer gets
// Instrument(·, hub), and any cache/retry layer that did not set its
// own Hub inherits this one for its vfscache.*/vfsretry.* counters.
func WithTelemetry(hub *telemetry.Hub) StackOption {
	return func(c *stackConfig) { c.hub = hub }
}

// Stack assembles a backend decorator stack in the one order that is
// correct, regardless of the order the options are given in:
//
//	backend → faults → retry → cache → instrument (outermost)
//
// The ordering is load-bearing, not stylistic:
//
//   - Faults sit innermost because they stand in for the network under
//     a remote backend; every layer above must see (and absorb) them.
//   - Retry sits directly above faults so transient failures are
//     retried against the backend itself — retrying above the cache
//     would re-serve cached state instead of re-contacting the store.
//   - Cache sits above retry so that hits cost nothing even while the
//     transport is flaky, and so the stack degrades gracefully: when
//     retry's circuit breaker is open, reads still served from clean
//     cached state are counted as degraded serves.
//   - Instrument sits outermost so its latency histograms measure what
//     the kernel experiences — including backoff waits and cache hits.
//
// Layers are optional; Stack(b) returns b unchanged. When both retry
// and cache layers are present, Stack wires the breaker into the
// cache's degraded-serve hook automatically (an explicit
// CacheOptions.Degraded wins). Use Find to recover a layer's stats
// from the returned backend.
func Stack(backend Backend, opts ...StackOption) Backend {
	var cfg stackConfig
	for _, o := range opts {
		o(&cfg)
	}
	b := backend
	if cfg.inj == nil && cfg.plan != nil && cfg.plan.Enabled() {
		cfg.inj = faultfs.New(*cfg.plan)
	}
	if cfg.inj != nil {
		if cfg.hub != nil && cfg.hub.Flight != nil {
			// The observer sits outside the injector's PRNG draw
			// schedule, so recording faults cannot shift the sequence.
			flight := cfg.hub.Flight
			cfg.inj.Observe(func(op string, f faultfs.Fault) {
				flight.RecordNote("fault", "inject", op, f.Kind.String(), f.Delay.Microseconds())
			})
		}
		b = NewFaulty(b, cfg.inj)
	}
	var brb breakerBackend
	if cfg.retry != nil {
		ro := *cfg.retry
		if ro.Hub == nil {
			ro.Hub = cfg.hub
		}
		b = NewRetry(b, ro)
		brb, _ = b.(breakerBackend)
	}
	if cfg.cache != nil {
		co := *cfg.cache
		if co.Hub == nil {
			co.Hub = cfg.hub
		}
		if co.Degraded == nil && brb != nil {
			co.Degraded = func() bool { return brb.BreakerState() == retry.Open }
			if co.OnDegradedServe == nil {
				co.OnDegradedServe = brb.noteDegradedServe
			}
		}
		b = NewCached(b, co)
	}
	if cfg.hub != nil {
		b = Instrument(b, cfg.hub)
	}
	return b
}

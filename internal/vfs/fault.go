package vfs

import (
	"time"

	"doppio/internal/vfs/faultfs"
)

// NewFaulty wraps a backend in the fault-injection decorator: every
// operation consults the injector and may fail with a seeded,
// deterministic errno, suffer a latency spike, or complete a
// truncated transfer. The decorator is the innermost layer of the
// Stack — it stands in for the flaky network between the runtime and
// a remote backend (§5.1's cloud/HTTP stores, which are the only
// layers that model a network), so everything above it (retry, cache,
// instrumentation) sees exactly the failures a real deployment would.
//
// Fault semantics per kind:
//
//   - ErrPre: the operation never reaches the backend (request lost).
//   - ErrPost: the operation commits on the backend, then the reply is
//     replaced by the errno (acknowledgement lost). This is the case
//     that distinguishes safe retries from duplicated mutations.
//   - Short: Open delivers a prefix of the data alongside a transient
//     error; Sync commits a prefix to the backend and reports a
//     transient error. Ops that carry no payload treat Short as ErrPre
//     with EIO.
//   - A latency spike sleeps before the backend call, on the calling
//     goroutine — in this simulation that is usually the event-loop
//     thread, so a spike models exactly the jank a slow network causes.
//
// Like Instrument and NewCached, the wrapper preserves the backend's
// optional capabilities. A nil injector (or a plan that cannot inject)
// returns the backend unchanged.
func NewFaulty(b Backend, inj *faultfs.Injector) Backend {
	if b == nil || inj == nil || !inj.Plan().Enabled() {
		return b
	}
	base := &faulty{b: b, inj: inj}
	lb, hasLink := b.(LinkBackend)
	ab, hasAttr := b.(AttrBackend)
	base.lb, base.ab = lb, ab
	switch {
	case hasLink && hasAttr:
		return &faultyLinkAttr{faultyLink{base}}
	case hasLink:
		return &faultyLink{base}
	case hasAttr:
		return &faultyAttr{base}
	default:
		return base
	}
}

// faulty decorates the mandatory Backend surface; capability variants
// embed it, mirroring instrument.go.
type faulty struct {
	b   Backend
	lb  LinkBackend
	ab  AttrBackend
	inj *faultfs.Injector
}

func (f *faulty) Name() string   { return f.b.Name() }
func (f *faulty) ReadOnly() bool { return f.b.ReadOnly() }

// Unwrap exposes the wrapped backend for decorator-chain discovery.
func (f *faulty) Unwrap() Backend { return f.b }

// FaultStats snapshots the injector's decision counters.
func (f *faulty) FaultStats() faultfs.Stats { return f.inj.Stats() }

// next draws the next decision and applies its latency spike.
func (f *faulty) next(op string) faultfs.Fault {
	ft := f.inj.Next(op)
	if ft.Delay > 0 {
		time.Sleep(ft.Delay)
	}
	return ft
}

// errFor maps an injected errno string onto an *ApiError, defaulting
// unknown strings to EIO so the error always classifies.
func errFor(ft faultfs.Fault, op, path string) error {
	e := Errno(ft.Errno)
	if e == "" {
		e = EIO
	}
	return Err(e, op, path)
}

// errOp runs an error-only operation under fault injection; Short
// degrades to a pre-commit EIO since there is no payload to truncate.
func (f *faulty) errOp(op, path string, call func(cb func(error)), cb func(error)) {
	ft := f.next(op)
	switch ft.Kind {
	case faultfs.ErrPre:
		cb(errFor(ft, op, path))
	case faultfs.ErrPost:
		call(func(error) { cb(errFor(ft, op, path)) })
	case faultfs.Short:
		cb(Err(EIO, op, path))
	default:
		call(cb)
	}
}

func (f *faulty) Stat(p string, cb func(Stats, error)) {
	ft := f.next("stat")
	switch ft.Kind {
	case faultfs.ErrPre, faultfs.Short:
		cb(Stats{}, errFor(ft, "stat", p))
	case faultfs.ErrPost:
		f.b.Stat(p, func(Stats, error) { cb(Stats{}, errFor(ft, "stat", p)) })
	default:
		f.b.Stat(p, cb)
	}
}

func (f *faulty) Open(p string, cb func([]byte, error)) {
	ft := f.next("open")
	switch ft.Kind {
	case faultfs.ErrPre:
		cb(nil, errFor(ft, "open", p))
	case faultfs.ErrPost:
		f.b.Open(p, func([]byte, error) { cb(nil, errFor(ft, "open", p)) })
	case faultfs.Short:
		// The transfer aborts partway: deliver the prefix that made it
		// across together with a transient error, like an interrupted
		// download.
		f.b.Open(p, func(data []byte, err error) {
			if err != nil {
				cb(nil, err)
				return
			}
			k := int(float64(len(data)) * ft.Keep)
			cb(data[:k], Err(EIO, "open", p))
		})
	default:
		f.b.Open(p, cb)
	}
}

func (f *faulty) Sync(p string, data []byte, cb func(error)) {
	ft := f.next("sync")
	switch ft.Kind {
	case faultfs.ErrPre:
		cb(errFor(ft, "sync", p))
	case faultfs.ErrPost:
		f.b.Sync(p, data, func(error) { cb(errFor(ft, "sync", p)) })
	case faultfs.Short:
		// A short write really lands on the backend: the file holds a
		// truncated prefix until a retry re-uploads the whole content.
		k := int(float64(len(data)) * ft.Keep)
		f.b.Sync(p, data[:k], func(err error) {
			if err != nil {
				cb(err)
				return
			}
			cb(Err(EIO, "sync", p))
		})
	default:
		f.b.Sync(p, data, cb)
	}
}

func (f *faulty) Unlink(p string, cb func(error)) {
	f.errOp("unlink", p, func(cb2 func(error)) { f.b.Unlink(p, cb2) }, cb)
}

func (f *faulty) Rmdir(p string, cb func(error)) {
	f.errOp("rmdir", p, func(cb2 func(error)) { f.b.Rmdir(p, cb2) }, cb)
}

func (f *faulty) Mkdir(p string, cb func(error)) {
	f.errOp("mkdir", p, func(cb2 func(error)) { f.b.Mkdir(p, cb2) }, cb)
}

func (f *faulty) Readdir(p string, cb func([]string, error)) {
	ft := f.next("readdir")
	switch ft.Kind {
	case faultfs.ErrPre, faultfs.Short:
		cb(nil, errFor(ft, "readdir", p))
	case faultfs.ErrPost:
		f.b.Readdir(p, func([]string, error) { cb(nil, errFor(ft, "readdir", p)) })
	default:
		f.b.Readdir(p, cb)
	}
}

func (f *faulty) Rename(oldPath, newPath string, cb func(error)) {
	f.errOp("rename", oldPath, func(cb2 func(error)) { f.b.Rename(oldPath, newPath, cb2) }, cb)
}

// Flush forwards to the wrapped backend's Flusher if present (faults
// apply to the individual Sync calls a flush issues, not to the drain
// itself), and succeeds trivially otherwise.
func (f *faulty) Flush(cb func(error)) {
	if fl, ok := f.b.(Flusher); ok {
		fl.Flush(cb)
		return
	}
	cb(nil)
}

// faultyLink adds the optional link capability.
type faultyLink struct{ *faulty }

func (f *faultyLink) Symlink(target, path string, cb func(error)) {
	f.errOp("symlink", path, func(cb2 func(error)) { f.lb.Symlink(target, path, cb2) }, cb)
}

func (f *faultyLink) Readlink(path string, cb func(string, error)) {
	ft := f.next("readlink")
	switch ft.Kind {
	case faultfs.ErrPre, faultfs.Short:
		cb("", errFor(ft, "readlink", path))
	case faultfs.ErrPost:
		f.lb.Readlink(path, func(string, error) { cb("", errFor(ft, "readlink", path)) })
	default:
		f.lb.Readlink(path, cb)
	}
}

// faultyAttr adds the optional attribute capability.
type faultyAttr struct{ *faulty }

func (f *faultyAttr) Chmod(path string, mode int, cb func(error)) {
	f.errOp("chmod", path, func(cb2 func(error)) { f.ab.Chmod(path, mode, cb2) }, cb)
}

func (f *faultyAttr) Utimes(path string, atime, mtime time.Time, cb func(error)) {
	f.errOp("utimes", path, func(cb2 func(error)) { f.ab.Utimes(path, atime, mtime, cb2) }, cb)
}

// faultyLinkAttr has both optional capabilities.
type faultyLinkAttr struct{ faultyLink }

func (f *faultyLinkAttr) Chmod(path string, mode int, cb func(error)) {
	f.errOp("chmod", path, func(cb2 func(error)) { f.ab.Chmod(path, mode, cb2) }, cb)
}

func (f *faultyLinkAttr) Utimes(path string, atime, mtime time.Time, cb func(error)) {
	f.errOp("utimes", path, func(cb2 func(error)) { f.ab.Utimes(path, atime, mtime, cb2) }, cb)
}

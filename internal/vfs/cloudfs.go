package vfs

import (
	"sort"
	"sync"
	"time"

	"doppio/internal/core"
	"doppio/internal/eventloop"
	"doppio/internal/vfs/vkernel"
)

// CloudStore simulates a Dropbox-style cloud storage service: a remote
// file store reached over the network, with per-operation latency.
// The paper's Dropbox backend (§5.1, Figure 2; Acknowledgements) is a
// thin client over such a service. The store itself lives "outside the
// browser" — it is goroutine-safe and persists across windows, which
// is what makes it cloud storage.
type CloudStore struct {
	mu      sync.Mutex
	files   map[string][]byte
	dirs    map[string]bool
	latency time.Duration
}

// NewCloudStore creates an empty cloud account with the given
// round-trip latency per API call.
func NewCloudStore(latency time.Duration) *CloudStore {
	return &CloudStore{
		files:   make(map[string][]byte),
		dirs:    map[string]bool{"/": true},
		latency: latency,
	}
}

// call delivers fn on the loop after the network round trip.
func (c *CloudStore) call(loop *eventloop.Loop, fn func()) {
	comp := core.NewCompletion(loop, "vfs.cloud")
	comp.Then(func(interface{}, error) { fn() })
	resolve := comp.Resolver()
	go func() {
		if c.latency > 0 {
			time.Sleep(c.latency)
		}
		resolve(nil, nil)
	}()
}

// CloudFS is the Doppio backend over a CloudStore account.
type CloudFS struct {
	loop  *eventloop.Loop
	store *CloudStore
}

// NewCloudFS creates a backend for the cloud account, delivering
// completions on loop.
func NewCloudFS(loop *eventloop.Loop, store *CloudStore) *CloudFS {
	return &CloudFS{loop: loop, store: store}
}

// Name identifies the backend.
func (c *CloudFS) Name() string { return "Dropbox" }

// ReadOnly reports false: cloud storage is writable.
func (c *CloudFS) ReadOnly() bool { return false }

// Stat describes the node at path.
func (c *CloudFS) Stat(p string, cb func(Stats, error)) {
	c.store.call(c.loop, func() {
		c.store.mu.Lock()
		defer c.store.mu.Unlock()
		if data, ok := c.store.files[p]; ok {
			cb(Stats{Type: TypeFile, Size: int64(len(data))}, nil)
			return
		}
		if c.store.dirs[p] {
			cb(Stats{Type: TypeDir}, nil)
			return
		}
		cb(Stats{}, Err(ENOENT, "stat", p))
	})
}

// Open downloads the file's contents.
func (c *CloudFS) Open(p string, cb func([]byte, error)) {
	c.store.call(c.loop, func() {
		c.store.mu.Lock()
		defer c.store.mu.Unlock()
		if data, ok := c.store.files[p]; ok {
			cb(append([]byte(nil), data...), nil)
			return
		}
		if c.store.dirs[p] {
			cb(nil, Err(EISDIR, "open", p))
			return
		}
		cb(nil, Err(ENOENT, "open", p))
	})
}

// Sync uploads the file's contents.
func (c *CloudFS) Sync(p string, data []byte, cb func(error)) {
	cp := append([]byte(nil), data...)
	c.store.call(c.loop, func() {
		c.store.mu.Lock()
		defer c.store.mu.Unlock()
		dir, base := splitDir(p)
		if base == "" {
			cb(Err(EINVAL, "sync", p))
			return
		}
		if !c.store.dirs[dir] {
			cb(Err(ENOENT, "sync", p))
			return
		}
		if c.store.dirs[p] {
			cb(Err(EISDIR, "sync", p))
			return
		}
		c.store.files[p] = cp
		cb(nil)
	})
}

// Unlink removes a file.
func (c *CloudFS) Unlink(p string, cb func(error)) {
	c.store.call(c.loop, func() {
		c.store.mu.Lock()
		defer c.store.mu.Unlock()
		if _, ok := c.store.files[p]; !ok {
			if c.store.dirs[p] {
				cb(Err(EISDIR, "unlink", p))
				return
			}
			cb(Err(ENOENT, "unlink", p))
			return
		}
		delete(c.store.files, p)
		cb(nil)
	})
}

// Rmdir removes an empty directory.
func (c *CloudFS) Rmdir(p string, cb func(error)) {
	c.store.call(c.loop, func() {
		c.store.mu.Lock()
		defer c.store.mu.Unlock()
		if !c.store.dirs[p] {
			if _, ok := c.store.files[p]; ok {
				cb(Err(ENOTDIR, "rmdir", p))
				return
			}
			cb(Err(ENOENT, "rmdir", p))
			return
		}
		if p == "/" {
			cb(Err(EPERM, "rmdir", p))
			return
		}
		if len(c.store.childrenLocked(p)) > 0 {
			cb(Err(ENOTEMPTY, "rmdir", p))
			return
		}
		delete(c.store.dirs, p)
		cb(nil)
	})
}

// Mkdir creates a directory.
func (c *CloudFS) Mkdir(p string, cb func(error)) {
	c.store.call(c.loop, func() {
		c.store.mu.Lock()
		defer c.store.mu.Unlock()
		if c.store.dirs[p] {
			cb(Err(EEXIST, "mkdir", p))
			return
		}
		if _, ok := c.store.files[p]; ok {
			cb(Err(EEXIST, "mkdir", p))
			return
		}
		dir, _ := splitDir(p)
		if !c.store.dirs[dir] {
			cb(Err(ENOENT, "mkdir", p))
			return
		}
		c.store.dirs[p] = true
		cb(nil)
	})
}

func (c *CloudStore) childrenLocked(p string) []string {
	seen := make(map[string]bool)
	add := func(fp string) {
		if name, ok := vkernel.ChildOf(p, fp); ok {
			seen[name] = true
		}
	}
	for fp := range c.files {
		add(fp)
	}
	for dp := range c.dirs {
		add(dp)
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Readdir lists a directory's children.
func (c *CloudFS) Readdir(p string, cb func([]string, error)) {
	c.store.call(c.loop, func() {
		c.store.mu.Lock()
		defer c.store.mu.Unlock()
		if !c.store.dirs[p] {
			if _, ok := c.store.files[p]; ok {
				cb(nil, Err(ENOTDIR, "readdir", p))
				return
			}
			cb(nil, Err(ENOENT, "readdir", p))
			return
		}
		cb(c.store.childrenLocked(p), nil)
	})
}

// Rename moves a file within the account.
func (c *CloudFS) Rename(oldPath, newPath string, cb func(error)) {
	c.store.call(c.loop, func() {
		c.store.mu.Lock()
		defer c.store.mu.Unlock()
		data, ok := c.store.files[oldPath]
		if !ok {
			cb(Err(ENOENT, "rename", oldPath))
			return
		}
		if c.store.dirs[newPath] {
			cb(Err(EISDIR, "rename", newPath))
			return
		}
		dir, _ := splitDir(newPath)
		if !c.store.dirs[dir] {
			cb(Err(ENOENT, "rename", newPath))
			return
		}
		delete(c.store.files, oldPath)
		c.store.files[newPath] = data
		cb(nil)
	})
}

package vfs

import (
	"time"

	"doppio/internal/telemetry"
)

// Instrument wraps a backend so every operation's latency is recorded
// into per-backend histograms in the hub's registry (subsystem
// "vfs.<Name>", one histogram per op) plus an "ops" counter. The
// wrapper preserves the backend's optional capabilities: the result
// implements LinkBackend or AttrBackend exactly when the wrapped
// backend does, so the kernel's feature detection is unaffected.
// A nil hub returns the backend unchanged.
func Instrument(b Backend, h *telemetry.Hub) Backend {
	if b == nil || h == nil {
		return b
	}
	sub := "vfs." + b.Name()
	reg := h.Registry
	base := &instrumented{
		b:       b,
		flight:  h.Flight,
		ops:     reg.Counter(sub, "ops"),
		stat:    reg.Histogram(sub, "stat"),
		open:    reg.Histogram(sub, "open"),
		sync:    reg.Histogram(sub, "sync"),
		unlink:  reg.Histogram(sub, "unlink"),
		rmdir:   reg.Histogram(sub, "rmdir"),
		mkdir:   reg.Histogram(sub, "mkdir"),
		readdir: reg.Histogram(sub, "readdir"),
		rename:  reg.Histogram(sub, "rename"),
	}
	lb, hasLink := b.(LinkBackend)
	ab, hasAttr := b.(AttrBackend)
	if hasLink {
		base.lb = lb
		base.symlink = reg.Histogram(sub, "symlink")
		base.readlink = reg.Histogram(sub, "readlink")
	}
	if hasAttr {
		base.ab = ab
		base.chmod = reg.Histogram(sub, "chmod")
		base.utimes = reg.Histogram(sub, "utimes")
	}
	switch {
	case hasLink && hasAttr:
		return &instrumentedLinkAttr{instrumentedLink{*base}}
	case hasLink:
		return &instrumentedLink{*base}
	case hasAttr:
		return &instrumentedAttr{*base}
	default:
		return base
	}
}

// instrumented decorates the mandatory Backend surface. Optional
// capability methods live on the embedding variants below so that type
// assertions against the wrapper match the wrapped backend.
type instrumented struct {
	b  Backend
	lb LinkBackend
	ab AttrBackend

	ops    *telemetry.Counter
	flight *telemetry.FlightRecorder

	stat, open, sync, unlink, rmdir, mkdir, readdir, rename *telemetry.Histogram
	symlink, readlink, chmod, utimes                        *telemetry.Histogram
}

func (i *instrumented) done(h *telemetry.Histogram, start time.Time, op, path string, err error) {
	h.ObserveSince(start)
	i.ops.Inc()
	if i.flight != nil {
		note := ""
		if err != nil {
			if e, ok := Classify(err); ok {
				note = string(e)
			} else {
				note = "error"
			}
		}
		i.flight.RecordNote("vfs", op, path, note, 0)
	}
}

func (i *instrumented) Name() string   { return i.b.Name() }
func (i *instrumented) ReadOnly() bool { return i.b.ReadOnly() }

// Unwrap exposes the wrapped backend for decorator-chain discovery.
func (i *instrumented) Unwrap() Backend { return i.b }

// Flush forwards to the wrapped backend's Flusher if present; a
// backend without one flushes trivially, matching fs.Flush's own
// fallback, so the forwarding is observationally capability-neutral.
func (i *instrumented) Flush(cb func(error)) {
	if fl, ok := i.b.(Flusher); ok {
		fl.Flush(cb)
		return
	}
	cb(nil)
}

func (i *instrumented) Stat(path string, cb func(Stats, error)) {
	start := time.Now()
	i.b.Stat(path, func(s Stats, err error) { i.done(i.stat, start, "stat", path, err); cb(s, err) })
}

func (i *instrumented) Open(path string, cb func([]byte, error)) {
	start := time.Now()
	i.b.Open(path, func(data []byte, err error) { i.done(i.open, start, "open", path, err); cb(data, err) })
}

func (i *instrumented) Sync(path string, data []byte, cb func(error)) {
	start := time.Now()
	i.b.Sync(path, data, func(err error) { i.done(i.sync, start, "sync", path, err); cb(err) })
}

func (i *instrumented) Unlink(path string, cb func(error)) {
	start := time.Now()
	i.b.Unlink(path, func(err error) { i.done(i.unlink, start, "unlink", path, err); cb(err) })
}

func (i *instrumented) Rmdir(path string, cb func(error)) {
	start := time.Now()
	i.b.Rmdir(path, func(err error) { i.done(i.rmdir, start, "rmdir", path, err); cb(err) })
}

func (i *instrumented) Mkdir(path string, cb func(error)) {
	start := time.Now()
	i.b.Mkdir(path, func(err error) { i.done(i.mkdir, start, "mkdir", path, err); cb(err) })
}

func (i *instrumented) Readdir(path string, cb func([]string, error)) {
	start := time.Now()
	i.b.Readdir(path, func(names []string, err error) { i.done(i.readdir, start, "readdir", path, err); cb(names, err) })
}

func (i *instrumented) Rename(oldPath, newPath string, cb func(error)) {
	start := time.Now()
	i.b.Rename(oldPath, newPath, func(err error) { i.done(i.rename, start, "rename", oldPath+" -> "+newPath, err); cb(err) })
}

// instrumentedLink adds the optional link capability.
type instrumentedLink struct{ instrumented }

func (i *instrumentedLink) Symlink(target, path string, cb func(error)) {
	start := time.Now()
	i.lb.Symlink(target, path, func(err error) { i.done(i.symlink, start, "symlink", path, err); cb(err) })
}

func (i *instrumentedLink) Readlink(path string, cb func(string, error)) {
	start := time.Now()
	i.lb.Readlink(path, func(target string, err error) { i.done(i.readlink, start, "readlink", path, err); cb(target, err) })
}

// instrumentedAttr adds the optional attribute capability.
type instrumentedAttr struct{ instrumented }

func (i *instrumentedAttr) Chmod(path string, mode int, cb func(error)) {
	start := time.Now()
	i.ab.Chmod(path, mode, func(err error) { i.done(i.chmod, start, "chmod", path, err); cb(err) })
}

func (i *instrumentedAttr) Utimes(path string, atime, mtime time.Time, cb func(error)) {
	start := time.Now()
	i.ab.Utimes(path, atime, mtime, func(err error) { i.done(i.utimes, start, "utimes", path, err); cb(err) })
}

// instrumentedLinkAttr has both optional capabilities.
type instrumentedLinkAttr struct{ instrumentedLink }

func (i *instrumentedLinkAttr) Chmod(path string, mode int, cb func(error)) {
	start := time.Now()
	i.ab.Chmod(path, mode, func(err error) { i.done(i.chmod, start, "chmod", path, err); cb(err) })
}

func (i *instrumentedLinkAttr) Utimes(path string, atime, mtime time.Time, cb func(error)) {
	start := time.Now()
	i.ab.Utimes(path, atime, mtime, func(err error) { i.done(i.utimes, start, "utimes", path, err); cb(err) })
}

// Package vfs implements the Doppio file system (§5.1): a Node
// JS-compatible `fs` front end over a small backend API, letting one
// set of file system semantics run over many browser persistent
// storage mechanisms.
//
// Like the original, the front end only guarantees an asynchronous
// interface — callbacks are delivered on the browser event loop —
// because many storage mechanisms have no synchronous API. Language
// implementations combine it with the core package's
// suspend-and-resume to expose synchronous file APIs to programs
// (§4.2, §6.3).
//
// Backends implement the nine-method API of §5.1 ("Backend API"):
// rename, stat, open, unlink, rmdir, mkdir, readdir, close, sync —
// close and sync appear here as the kernel's sync-on-close file
// objects and the backend Sync method. The kernel standardizes
// arguments, resolves relative paths, raises the appropriate errno
// errors, and supplies the shared whole-file-in-memory file
// implementation, so each backend stays small.
package vfs

import (
	"errors"
	"fmt"

	"doppio/internal/core"
)

// Errno is a Unix-style error number.
type Errno string

// The errno values used by the file system, mirroring Node's fs errors.
const (
	ENOENT    Errno = "ENOENT"
	EEXIST    Errno = "EEXIST"
	EISDIR    Errno = "EISDIR"
	ENOTDIR   Errno = "ENOTDIR"
	ENOTEMPTY Errno = "ENOTEMPTY"
	EBADF     Errno = "EBADF"
	EINVAL    Errno = "EINVAL"
	EPERM     Errno = "EPERM"
	EROFS     Errno = "EROFS"
	ENOSPC    Errno = "ENOSPC"
	EXDEV     Errno = "EXDEV"
	ENOTSUP   Errno = "ENOTSUP"
	EIO       Errno = "EIO"
	EAGAIN    Errno = "EAGAIN"
	ETIMEDOUT Errno = "ETIMEDOUT"
	EPIPE     Errno = "EPIPE"
	ECHILD    Errno = "ECHILD"
	EINTR     Errno = "EINTR"
	ESRCH     Errno = "ESRCH"
	EMFILE    Errno = "EMFILE"

	// The connection errnos carried by the socket layer (§5.3): a
	// refused dial, a reset transport, and a peer that violated the
	// mux framing protocol. They live here so the gateway's stream
	// errors classify through the same Classify/Transient machinery
	// as VFS errnos — shed and reset streams retry, protocol
	// violations and refused dials are final.
	ECONNREFUSED Errno = "ECONNREFUSED"
	ECONNRESET   Errno = "ECONNRESET"
	EPROTO       Errno = "EPROTO"
)

// Transient reports whether the errno describes a failure that may
// succeed if the operation is simply tried again — the classification
// the RetryBackend consumes instead of string-matching error text.
// EIO is transient here by design: in this runtime it is the errno the
// remote backends (and the fault injector) surface for flaky-transport
// failures, while genuine namespace errors keep their specific errnos
// (ENOENT, EEXIST, ...), all of which are final.
// EINTR is transient: the interrupted call did not happen (or happened
// partially) and Unix semantics are to retry it, exactly the decision
// the retry layer encodes. The other process errnos are final: a
// broken pipe stays broken (EPIPE), a child that does not exist will
// not appear by retrying (ECHILD), and neither will a dead pid (ESRCH).
// Of the connection errnos, only ECONNRESET is transient: the peer was
// there and the link died, so redialing is worthwhile. A refused dial
// means nothing is listening, and a protocol violation will repeat
// itself byte-for-byte — both final. A shed stream surfaces as EAGAIN,
// already transient, which is exactly the invitation to back off and
// retry that shedding intends.
func (e Errno) Transient() bool {
	switch e {
	case EIO, EAGAIN, ETIMEDOUT, EINTR, ECONNRESET:
		return true
	}
	return false
}

// Classify extracts the errno from an error. The second result
// reports whether the error carried one: any *ApiError anywhere in the
// Unwrap chain classifies; a nil or foreign error does not. Retry and
// breaker decisions go through Classify so that backends that forget
// to wrap a failure degrade to "unclassified" (treated as final)
// instead of being string-matched.
func Classify(err error) (Errno, bool) {
	var ae *ApiError
	if errors.As(err, &ae) {
		return ae.Errno, true
	}
	// A completion deadline expiring classifies as ETIMEDOUT — a
	// transient errno, so the retry layer treats it like any other
	// timed-out transport call.
	var de *core.DeadlineError
	if errors.As(err, &de) {
		return ETIMEDOUT, true
	}
	// Any other error carrying an errno — the socket layer's DialError
	// and StreamError implement this — classifies through the same
	// switchboard, so retry.Policy treats a shed stream (EAGAIN) or a
	// reset transport (ECONNRESET) as transient and a refused dial or
	// protocol violation as final without importing sockets here.
	var ec interface{ Errno() Errno }
	if errors.As(err, &ec) {
		return ec.Errno(), true
	}
	return "", false
}

// IsTransient reports whether err classifies to a transient errno.
func IsTransient(err error) bool {
	e, ok := Classify(err)
	return ok && e.Transient()
}

// ApiError is the error type returned by every file system operation,
// carrying the errno, the operation, and the path.
type ApiError struct {
	Errno Errno
	Op    string
	Path  string
	Cause error
}

func (e *ApiError) Error() string {
	msg := fmt.Sprintf("%s: %s '%s'", e.Errno, errnoText(e.Errno), e.Path)
	if e.Op != "" {
		msg = e.Op + ": " + msg
	}
	return msg
}

// Unwrap exposes the underlying cause, if any.
func (e *ApiError) Unwrap() error { return e.Cause }

func errnoText(e Errno) string {
	switch e {
	case ENOENT:
		return "no such file or directory"
	case EEXIST:
		return "file already exists"
	case EISDIR:
		return "illegal operation on a directory"
	case ENOTDIR:
		return "not a directory"
	case ENOTEMPTY:
		return "directory not empty"
	case EBADF:
		return "bad file descriptor"
	case EINVAL:
		return "invalid argument"
	case EPERM:
		return "operation not permitted"
	case EROFS:
		return "read-only file system"
	case ENOSPC:
		return "no space left on device"
	case EXDEV:
		return "cross-device link"
	case ENOTSUP:
		return "operation not supported"
	case EIO:
		return "input/output error"
	case EAGAIN:
		return "resource temporarily unavailable"
	case ETIMEDOUT:
		return "operation timed out"
	case EPIPE:
		return "broken pipe"
	case ECHILD:
		return "no child processes"
	case EINTR:
		return "interrupted system call"
	case ESRCH:
		return "no such process"
	case EMFILE:
		return "too many open files"
	case ECONNREFUSED:
		return "connection refused"
	case ECONNRESET:
		return "connection reset by peer"
	case EPROTO:
		return "protocol error"
	}
	return "unknown error"
}

// Err builds an ApiError.
func Err(errno Errno, op, path string) *ApiError {
	return &ApiError{Errno: errno, Op: op, Path: path}
}

// ErrWithCause builds an ApiError wrapping an underlying error.
func ErrWithCause(errno Errno, op, path string, cause error) *ApiError {
	return &ApiError{Errno: errno, Op: op, Path: path, Cause: cause}
}

// IsErrno reports whether err classifies to the given errno.
func IsErrno(err error, errno Errno) bool {
	e, ok := Classify(err)
	return ok && e == errno
}

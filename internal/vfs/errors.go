// Package vfs implements the Doppio file system (§5.1): a Node
// JS-compatible `fs` front end over a small backend API, letting one
// set of file system semantics run over many browser persistent
// storage mechanisms.
//
// Like the original, the front end only guarantees an asynchronous
// interface — callbacks are delivered on the browser event loop —
// because many storage mechanisms have no synchronous API. Language
// implementations combine it with the core package's
// suspend-and-resume to expose synchronous file APIs to programs
// (§4.2, §6.3).
//
// Backends implement the nine-method API of §5.1 ("Backend API"):
// rename, stat, open, unlink, rmdir, mkdir, readdir, close, sync —
// close and sync appear here as the kernel's sync-on-close file
// objects and the backend Sync method. The kernel standardizes
// arguments, resolves relative paths, raises the appropriate errno
// errors, and supplies the shared whole-file-in-memory file
// implementation, so each backend stays small.
package vfs

import "fmt"

// Errno is a Unix-style error number.
type Errno string

// The errno values used by the file system, mirroring Node's fs errors.
const (
	ENOENT    Errno = "ENOENT"
	EEXIST    Errno = "EEXIST"
	EISDIR    Errno = "EISDIR"
	ENOTDIR   Errno = "ENOTDIR"
	ENOTEMPTY Errno = "ENOTEMPTY"
	EBADF     Errno = "EBADF"
	EINVAL    Errno = "EINVAL"
	EPERM     Errno = "EPERM"
	EROFS     Errno = "EROFS"
	ENOSPC    Errno = "ENOSPC"
	EXDEV     Errno = "EXDEV"
	ENOTSUP   Errno = "ENOTSUP"
	EIO       Errno = "EIO"
)

// ApiError is the error type returned by every file system operation,
// carrying the errno, the operation, and the path.
type ApiError struct {
	Errno Errno
	Op    string
	Path  string
	Cause error
}

func (e *ApiError) Error() string {
	msg := fmt.Sprintf("%s: %s '%s'", e.Errno, errnoText(e.Errno), e.Path)
	if e.Op != "" {
		msg = e.Op + ": " + msg
	}
	return msg
}

// Unwrap exposes the underlying cause, if any.
func (e *ApiError) Unwrap() error { return e.Cause }

func errnoText(e Errno) string {
	switch e {
	case ENOENT:
		return "no such file or directory"
	case EEXIST:
		return "file already exists"
	case EISDIR:
		return "illegal operation on a directory"
	case ENOTDIR:
		return "not a directory"
	case ENOTEMPTY:
		return "directory not empty"
	case EBADF:
		return "bad file descriptor"
	case EINVAL:
		return "invalid argument"
	case EPERM:
		return "operation not permitted"
	case EROFS:
		return "read-only file system"
	case ENOSPC:
		return "no space left on device"
	case EXDEV:
		return "cross-device link"
	case ENOTSUP:
		return "operation not supported"
	case EIO:
		return "input/output error"
	}
	return "unknown error"
}

// Err builds an ApiError.
func Err(errno Errno, op, path string) *ApiError {
	return &ApiError{Errno: errno, Op: op, Path: path}
}

// ErrWithCause builds an ApiError wrapping an underlying error.
func ErrWithCause(errno Errno, op, path string, cause error) *ApiError {
	return &ApiError{Errno: errno, Op: op, Path: path, Cause: cause}
}

// IsErrno reports whether err is an ApiError with the given errno.
func IsErrno(err error, errno Errno) bool {
	ae, ok := err.(*ApiError)
	return ok && ae.Errno == errno
}

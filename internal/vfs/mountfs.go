package vfs

import (
	"sort"
	"strings"

	"doppio/internal/vfs/vkernel"
)

// MountFS is the MountableFileSystem of §5.1: it composes a root
// backend with backends mounted at directory prefixes, Unix-style,
// routing every operation through the standard backend API — so it is
// "compatible with any new file systems that are implemented in the
// future". All prefix matching and path translation goes through the
// shared resolution kernel (vkernel), the same helpers the FS front
// end and the backends use.
type MountFS struct {
	root   Backend
	mounts []mountPoint // sorted longest prefix first

	// onChange observes Mount/Unmount with the affected prefix; a
	// CachedBackend wrapping this MountFS registers here so routing
	// changes invalidate its cached state.
	onChange func(path string)
}

type mountPoint struct {
	at string // normalized absolute path, not "/"
	b  Backend
}

// NewMountFS creates a mountable file system with root as the backend
// for unmounted paths.
func NewMountFS(root Backend) *MountFS {
	return &MountFS{root: root}
}

// Mount attaches b at path (which is then shadowed entirely).
func (m *MountFS) Mount(path string, b Backend) {
	path = vkernel.Clean(strings.TrimSuffix(path, "/"))
	m.mounts = append(m.mounts, mountPoint{at: path, b: b})
	sort.Slice(m.mounts, func(i, j int) bool { return len(m.mounts[i].at) > len(m.mounts[j].at) })
	m.notifyChange(path)
}

// Unmount detaches the backend at path, reporting whether one existed.
func (m *MountFS) Unmount(path string) bool {
	path = vkernel.Clean(strings.TrimSuffix(path, "/"))
	for i, mp := range m.mounts {
		if mp.at == path {
			m.mounts = append(m.mounts[:i], m.mounts[i+1:]...)
			m.notifyChange(path)
			return true
		}
	}
	return false
}

func (m *MountFS) notifyChange(path string) {
	if m.onChange != nil {
		m.onChange(path)
	}
}

// MountPoints returns the mounted prefixes, longest first.
func (m *MountFS) MountPoints() []string {
	out := make([]string, len(m.mounts))
	for i, mp := range m.mounts {
		out[i] = mp.at
	}
	return out
}

// route finds the backend owning p and translates p into that
// backend's namespace.
func (m *MountFS) route(p string) (Backend, string) {
	for _, mp := range m.mounts {
		if vkernel.Under(p, mp.at) {
			return mp.b, vkernel.Rel(p, mp.at)
		}
	}
	return m.root, p
}

// Name identifies the backend.
func (m *MountFS) Name() string { return "MountableFileSystem" }

// ReadOnly reports false; individual sub-backends enforce their own
// read-only state on mutation.
func (m *MountFS) ReadOnly() bool { return false }

// Stat describes the node at path. Directories that exist only as
// ancestors of a mount point stat as directories.
func (m *MountFS) Stat(p string, cb func(Stats, error)) {
	b, rel := m.route(p)
	b.Stat(rel, func(st Stats, err error) {
		if err != nil && m.coversMountPrefix(p) {
			cb(Stats{Type: TypeDir}, nil)
			return
		}
		cb(st, err)
	})
}

// coversMountPrefix reports whether some mount point lives under p.
func (m *MountFS) coversMountPrefix(p string) bool {
	for _, mp := range m.mounts {
		if vkernel.Covers(p, mp.at) {
			return true
		}
	}
	return false
}

// Open loads a file through the owning backend.
func (m *MountFS) Open(p string, cb func([]byte, error)) {
	b, rel := m.route(p)
	b.Open(rel, cb)
}

// Sync writes a file through the owning backend.
func (m *MountFS) Sync(p string, data []byte, cb func(error)) {
	b, rel := m.route(p)
	b.Sync(rel, data, cb)
}

// Unlink removes a file through the owning backend.
func (m *MountFS) Unlink(p string, cb func(error)) {
	b, rel := m.route(p)
	b.Unlink(rel, cb)
}

// Rmdir removes a directory; mount points cannot be removed.
func (m *MountFS) Rmdir(p string, cb func(error)) {
	if m.isMountPoint(p) {
		cb(Err(EPERM, "rmdir", p))
		return
	}
	b, rel := m.route(p)
	b.Rmdir(rel, cb)
}

// Mkdir creates a directory through the owning backend.
func (m *MountFS) Mkdir(p string, cb func(error)) {
	b, rel := m.route(p)
	b.Mkdir(rel, cb)
}

func (m *MountFS) isMountPoint(p string) bool {
	for _, mp := range m.mounts {
		if mp.at == p {
			return true
		}
	}
	return false
}

// Readdir lists a directory, merging in any mount points that live
// directly beneath it.
func (m *MountFS) Readdir(p string, cb func([]string, error)) {
	b, rel := m.route(p)
	b.Readdir(rel, func(names []string, err error) {
		// Mount points under p must appear even if the underlying
		// backend has no such entry (or the dir only exists because
		// of the mount).
		extra := make(map[string]bool)
		for _, mp := range m.mounts {
			if name, ok := vkernel.ChildOf(p, mp.at); ok {
				extra[name] = true
			}
		}
		if err != nil {
			if len(extra) == 0 {
				cb(nil, err)
				return
			}
			names = nil // dir exists only via mounts
		}
		seen := make(map[string]bool, len(names))
		for _, n := range names {
			seen[n] = true
		}
		for n := range extra {
			if !seen[n] {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		cb(names, nil)
	})
}

// Rename moves a node; cross-backend renames report EXDEV, exactly as
// Unix rename does across devices (callers copy + delete instead).
func (m *MountFS) Rename(oldPath, newPath string, cb func(error)) {
	ob, orel := m.route(oldPath)
	nb, nrel := m.route(newPath)
	if ob != nb {
		cb(Err(EXDEV, "rename", oldPath))
		return
	}
	ob.Rename(orel, nrel, cb)
}

// Flush forwards to the root backend and every mounted backend that
// buffers writes (Flusher), so a write-back cache under any mount
// drains when the front end flushes.
func (m *MountFS) Flush(cb func(error)) {
	targets := make([]Flusher, 0, len(m.mounts)+1)
	if fl, ok := m.root.(Flusher); ok {
		targets = append(targets, fl)
	}
	for _, mp := range m.mounts {
		if fl, ok := mp.b.(Flusher); ok {
			targets = append(targets, fl)
		}
	}
	var step func(i int)
	step = func(i int) {
		if i == len(targets) {
			cb(nil)
			return
		}
		targets[i].Flush(func(err error) {
			if err != nil {
				cb(err)
				return
			}
			step(i + 1)
		})
	}
	step(0)
}

package browser

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"doppio/internal/core"
	"doppio/internal/eventloop"
)

// RemoteServer models the web server that hosts the page: a read-only
// tree of files reachable via XMLHttpRequest. Binary downloads are
// asynchronous-only, which is precisely the restriction (§3.2) that
// Doppio's sync-over-async machinery exists to hide.
type RemoteServer struct {
	mu      sync.RWMutex
	files   map[string][]byte
	latency time.Duration
}

// NewRemoteServer creates an empty server with a small default latency.
func NewRemoteServer() *RemoteServer {
	return &RemoteServer{files: make(map[string][]byte), latency: 300 * time.Microsecond}
}

// SetLatency sets the simulated network round-trip per request.
func (r *RemoteServer) SetLatency(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.latency = d
}

func cleanRemotePath(p string) string {
	return strings.TrimPrefix(p, "/")
}

// Serve publishes content at path (leading slash optional).
func (r *RemoteServer) Serve(path string, content []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.files[cleanRemotePath(path)] = append([]byte(nil), content...)
}

// Index returns all served paths, sorted. Doppio's HTTP-backed file
// system downloads such a listing at mount time to learn the tree.
func (r *RemoteServer) Index() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	paths := make([]string, 0, len(r.files))
	for p := range r.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// StatusError is an XHR failure with an HTTP-like status code.
type StatusError struct {
	Status int
	Path   string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("browser: XHR %q failed with status %d", e.Path, e.Status)
}

// fetch performs the lookup (no latency).
func (r *RemoteServer) fetch(path string) ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.files[cleanRemotePath(path)]
	if !ok {
		return nil, &StatusError{Status: 404, Path: path}
	}
	return append([]byte(nil), b...), nil
}

// XHRGetAsync downloads path and delivers the result on the event loop
// after the simulated network latency.
func (r *RemoteServer) XHRGetAsync(loop *eventloop.Loop, path string, cb func(data []byte, err error)) {
	r.mu.RLock()
	lat := r.latency
	r.mu.RUnlock()
	c := core.NewCompletion(loop, "browser.xhr")
	c.Then(func(v interface{}, err error) {
		data, _ := v.([]byte)
		cb(data, err)
	})
	resolve := c.Resolver()
	go func() {
		if lat > 0 {
			time.Sleep(lat)
		}
		data, err := r.fetch(path)
		resolve(data, err)
	}()
}

// XHRHeadAsync checks existence and size without transferring content.
func (r *RemoteServer) XHRHeadAsync(loop *eventloop.Loop, path string, cb func(size int, err error)) {
	r.XHRGetAsync(loop, path, func(data []byte, err error) {
		cb(len(data), err)
	})
}

package browser

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"doppio/internal/core"
	"doppio/internal/eventloop"
	"doppio/internal/jsstring"
	"doppio/internal/telemetry"
)

// Window ties a browser profile to a live event loop and the storage
// mechanisms the profile supports. It is the "browser instance" that a
// Doppio runtime executes inside.
type Window struct {
	Profile Profile
	Loop    *eventloop.Loop

	// LocalStorage is the synchronous string key/value store
	// (Table 2: standardized, 5 MB, ~90% compatibility).
	LocalStorage *LocalStorage

	// IndexedDB is the asynchronous object store, or nil when the
	// profile lacks it (Table 2: <50% compatibility).
	IndexedDB *AsyncStore

	// Remote serves XHR downloads (the web server hosting the page).
	Remote *RemoteServer

	// Telemetry, when non-nil, is the observability hub every runtime
	// layer hosted in this window (event loop, core, JVM, sockets)
	// reports into. Set it with EnableTelemetry.
	Telemetry *telemetry.Hub

	leakedTypedBytes atomic.Int64
}

// NewWindow creates a browser window for the profile with an idle event
// loop and fresh storage.
func NewWindow(p Profile) *Window {
	w := &Window{
		Profile: p,
		Loop: eventloop.New(eventloop.Options{
			MinTimeoutDelay: p.MinTimeoutDelay,
			HasSetImmediate: p.HasSetImmediate,
			SyncPostMessage: p.SyncPostMessage,
			WatchdogLimit:   p.WatchdogLimit,
		}),
		LocalStorage: NewLocalStorage(p.LocalStorageQuota),
		Remote:       NewRemoteServer(),
	}
	if p.HasIndexedDB {
		w.IndexedDB = NewAsyncStore(w.Loop, p.StorageLatency)
	}
	return w
}

// EnableTelemetry attaches an observability hub to the window and wires
// it into the event loop. Layers created afterwards (core runtimes, JVMs,
// sockets) pick the hub up from w.Telemetry automatically.
func (w *Window) EnableTelemetry(h *telemetry.Hub) {
	w.Telemetry = h
	w.Loop.EnableTelemetry(h)
}

// NoteTypedArrayAlloc records a typed-array allocation of n bytes.
// On profiles with the Safari GC bug the bytes are never reclaimed;
// past the paging threshold every further allocation simulates the
// memory-pressure stall the paper observed on the javap benchmark
// (§7.1: "Safari's memory footprint grows to over 6GB ... causing the
// OS to page memory to disk").
func (w *Window) NoteTypedArrayAlloc(n int) {
	if !w.Profile.TypedArrayGCLeak || n <= 0 {
		return
	}
	leaked := w.leakedTypedBytes.Add(int64(n))
	if leaked > pagingThreshold {
		// Thrash proportionally to how far past the threshold we are.
		over := leaked - pagingThreshold
		stall := time.Duration(over/pagingStallDivisor) * time.Microsecond
		if stall > maxPagingStall {
			stall = maxPagingStall
		}
		if stall > 0 {
			busyWait(stall)
		}
	}
}

// LeakedTypedArrayBytes reports how much typed-array memory has leaked
// (always zero on profiles without the bug).
func (w *Window) LeakedTypedArrayBytes() int64 { return w.leakedTypedBytes.Load() }

const (
	// pagingThreshold is scaled down from the multi-gigabyte real
	// footprint so the pathology manifests at simulation scale.
	pagingThreshold    = 8 << 20 // 8 MiB of leaked typed arrays
	pagingStallDivisor = 64 << 10
	maxPagingStall     = 2 * time.Millisecond
)

// busyWait spins for roughly d; paging stalls burn CPU rather than
// yielding, which is what makes them so painful in the browser.
func busyWait(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// LocalStorage is the synchronous string key/value store available in
// ~90% of browsers (Table 2). Keys and values are strings; the quota
// is enforced as two bytes per stored UTF-16 code unit, as real
// browsers do.
type LocalStorage struct {
	mu    sync.Mutex
	data  map[string]string
	keys  []string // insertion order, for Key(i)
	used  int
	quota int
}

// NewLocalStorage creates an empty store with the given byte quota.
func NewLocalStorage(quota int) *LocalStorage {
	return &LocalStorage{data: make(map[string]string), quota: quota}
}

// ErrQuotaExceeded is returned when a SetItem would exceed the quota,
// mirroring the DOM QuotaExceededError.
var ErrQuotaExceeded = fmt.Errorf("browser: QuotaExceededError: localStorage quota exceeded")

// utf16Units counts UTF-16 code units WTF-8-aware, so that packed
// binary strings (which contain lone surrogates) are charged correctly.
func utf16Units(s string) int { return jsstring.Units(s) }

// SetItem stores value under key, enforcing the quota.
func (s *LocalStorage) SetItem(key, value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cost := 2 * (utf16Units(key) + utf16Units(value))
	old, exists := s.data[key]
	oldCost := 0
	if exists {
		oldCost = 2 * (utf16Units(key) + utf16Units(old))
	}
	if s.used-oldCost+cost > s.quota {
		return ErrQuotaExceeded
	}
	s.used += cost - oldCost
	s.data[key] = value
	if !exists {
		s.keys = append(s.keys, key)
	}
	return nil
}

// GetItem returns the value for key and whether it exists.
func (s *LocalStorage) GetItem(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[key]
	return v, ok
}

// RemoveItem deletes key; removing an absent key is a no-op.
func (s *LocalStorage) RemoveItem(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.data[key]
	if !ok {
		return
	}
	s.used -= 2 * (utf16Units(key) + utf16Units(old))
	delete(s.data, key)
	for i, k := range s.keys {
		if k == key {
			s.keys = append(s.keys[:i], s.keys[i+1:]...)
			break
		}
	}
}

// Length returns the number of stored keys.
func (s *LocalStorage) Length() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.keys)
}

// Key returns the i'th key in insertion order, or "" if out of range.
func (s *LocalStorage) Key(i int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.keys) {
		return ""
	}
	return s.keys[i]
}

// Clear removes everything.
func (s *LocalStorage) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string]string)
	s.keys = nil
	s.used = 0
}

// Used reports the bytes currently counted against the quota.
func (s *LocalStorage) Used() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// AsyncStore is the IndexedDB-like asynchronous object store: binary
// values keyed by string, with every operation completing on a later
// event-loop turn after the profile's storage latency. There is no
// synchronous interface — which is exactly why Doppio needs
// suspend-and-resume to expose it to blocking programs (§5.1).
type AsyncStore struct {
	loop    *eventloop.Loop
	latency time.Duration

	mu   sync.Mutex
	data map[string][]byte
}

// NewAsyncStore creates an empty async store delivering completions on
// loop after latency.
func NewAsyncStore(loop *eventloop.Loop, latency time.Duration) *AsyncStore {
	return &AsyncStore{loop: loop, latency: latency, data: make(map[string][]byte)}
}

func (s *AsyncStore) complete(label string, fn func()) {
	c := core.NewCompletion(s.loop, label)
	c.Then(func(interface{}, error) { fn() })
	resolve := c.Resolver()
	go func() {
		if s.latency > 0 {
			time.Sleep(s.latency)
		}
		resolve(nil, nil)
	}()
}

// Get fetches key and delivers (value, found) asynchronously.
func (s *AsyncStore) Get(key string, cb func(value []byte, found bool)) {
	s.complete("idb-get", func() {
		s.mu.Lock()
		v, ok := s.data[key]
		s.mu.Unlock()
		var cp []byte
		if ok {
			cp = append([]byte(nil), v...)
		}
		cb(cp, ok)
	})
}

// Put stores value under key and delivers completion asynchronously.
func (s *AsyncStore) Put(key string, value []byte, cb func(err error)) {
	cp := append([]byte(nil), value...)
	s.complete("idb-put", func() {
		s.mu.Lock()
		s.data[key] = cp
		s.mu.Unlock()
		cb(nil)
	})
}

// Delete removes key and delivers completion asynchronously.
func (s *AsyncStore) Delete(key string, cb func(err error)) {
	s.complete("idb-delete", func() {
		s.mu.Lock()
		delete(s.data, key)
		s.mu.Unlock()
		cb(nil)
	})
}

// Keys delivers a snapshot of all keys asynchronously.
func (s *AsyncStore) Keys(cb func(keys []string)) {
	s.complete("idb-keys", func() {
		s.mu.Lock()
		keys := make([]string, 0, len(s.data))
		for k := range s.data {
			keys = append(keys, k)
		}
		s.mu.Unlock()
		cb(keys)
	})
}

// Len synchronously reports the number of stored objects. Real
// IndexedDB has no such API; this exists for tests only.
func (s *AsyncStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

package browser

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestProfilesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range All() {
		if p.Name == "" {
			t.Error("profile with empty name")
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.EngineFactor < 1.0 {
			t.Errorf("%s: EngineFactor %v < 1", p.Name, p.EngineFactor)
		}
	}
	if len(Population()) != 5 {
		t.Errorf("Population() has %d browsers, want the paper's 5", len(Population()))
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("Chrome 28")
	if !ok || p.Name != "Chrome 28" {
		t.Fatalf("ByName(Chrome 28) = %+v, %v", p, ok)
	}
	if _, ok := ByName("Netscape 4"); ok {
		t.Error("ByName found a browser that should not exist")
	}
}

func TestPaperQuirksPresent(t *testing.T) {
	if !IE8.SyncPostMessage {
		t.Error("IE8 must have synchronous postMessage (§4.4)")
	}
	if IE8.HasTypedArrays {
		t.Error("IE8 must lack typed arrays")
	}
	if !IE10.HasSetImmediate {
		t.Error("IE10 must have setImmediate (§4.4)")
	}
	if !Safari6.TypedArrayGCLeak {
		t.Error("Safari 6 must model the typed array GC leak (§7.1)")
	}
	for _, p := range []Profile{Chrome28, Firefox22, Safari6, Opera12} {
		if p.HasSetImmediate {
			t.Errorf("%s should not have setImmediate", p.Name)
		}
	}
}

func TestLocalStorageBasics(t *testing.T) {
	s := NewLocalStorage(1 << 20)
	if err := s.SetItem("a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetItem("b", "2"); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.GetItem("a"); !ok || v != "1" {
		t.Errorf("GetItem(a) = %q, %v", v, ok)
	}
	if s.Length() != 2 {
		t.Errorf("Length = %d", s.Length())
	}
	if s.Key(0) != "a" || s.Key(1) != "b" || s.Key(2) != "" {
		t.Errorf("Key order wrong: %q %q %q", s.Key(0), s.Key(1), s.Key(2))
	}
	s.RemoveItem("a")
	if _, ok := s.GetItem("a"); ok {
		t.Error("removed key still present")
	}
	s.RemoveItem("a") // no-op
	s.Clear()
	if s.Length() != 0 || s.Used() != 0 {
		t.Errorf("Clear left Length=%d Used=%d", s.Length(), s.Used())
	}
}

func TestLocalStorageQuota(t *testing.T) {
	s := NewLocalStorage(20) // 10 UTF-16 units total
	if err := s.SetItem("k", "12345678"); err != nil {
		t.Fatalf("within quota: %v", err)
	}
	if err := s.SetItem("x", "y"); err != ErrQuotaExceeded {
		t.Errorf("over quota: got %v, want ErrQuotaExceeded", err)
	}
	// Overwriting the same key with a shorter value must free space.
	if err := s.SetItem("k", "1"); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if err := s.SetItem("x", "y"); err != nil {
		t.Errorf("after shrink: %v", err)
	}
}

func TestLocalStorageUsedAccounting(t *testing.T) {
	f := func(key, val string) bool {
		if key == "" {
			return true
		}
		s := NewLocalStorage(1 << 30)
		if err := s.SetItem(key, val); err != nil {
			return false
		}
		want := 2 * (utf16Units(key) + utf16Units(val))
		if s.Used() != want {
			return false
		}
		s.RemoveItem(key)
		return s.Used() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAsyncStoreIsAsynchronous(t *testing.T) {
	w := NewWindow(Chrome28)
	if w.IndexedDB == nil {
		t.Fatal("Chrome window should have IndexedDB")
	}
	var order []string
	w.Loop.Post("main", func() {
		w.IndexedDB.Put("k", []byte("v"), func(err error) {
			if err != nil {
				t.Errorf("Put: %v", err)
			}
			order = append(order, "put-done")
			w.IndexedDB.Get("k", func(v []byte, found bool) {
				if !found || string(v) != "v" {
					t.Errorf("Get = %q, %v", v, found)
				}
				order = append(order, "get-done")
			})
		})
		order = append(order, "after-put-call")
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "after-put-call,put-done,get-done" {
		t.Errorf("order = %v: completions must be asynchronous", order)
	}
}

func TestAsyncStoreDeleteAndKeys(t *testing.T) {
	w := NewWindow(IE10)
	w.Loop.Post("main", func() {
		w.IndexedDB.Put("a", []byte("1"), func(error) {})
		w.IndexedDB.Put("b", []byte("2"), func(error) {
			w.IndexedDB.Delete("a", func(error) {
				w.IndexedDB.Keys(func(keys []string) {
					if len(keys) != 1 || keys[0] != "b" {
						t.Errorf("Keys = %v", keys)
					}
				})
			})
		})
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if w.IndexedDB.Len() != 1 {
		t.Errorf("Len = %d", w.IndexedDB.Len())
	}
}

func TestProfilesWithoutIndexedDB(t *testing.T) {
	for _, p := range []Profile{Safari6, Opera12, IE8} {
		if w := NewWindow(p); w.IndexedDB != nil {
			t.Errorf("%s should not have IndexedDB", p.Name)
		}
	}
}

func TestXHRGetAsync(t *testing.T) {
	w := NewWindow(Chrome28)
	w.Remote.Serve("/assets/a.bin", []byte{1, 2, 3})
	var got []byte
	var gotErr error
	w.Loop.Post("main", func() {
		w.Remote.XHRGetAsync(w.Loop, "assets/a.bin", func(data []byte, err error) {
			got, gotErr = data, err
		})
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if gotErr != nil || string(got) != "\x01\x02\x03" {
		t.Errorf("XHR = %v, %v", got, gotErr)
	}
}

func TestXHR404(t *testing.T) {
	w := NewWindow(Firefox22)
	var gotErr error
	w.Loop.Post("main", func() {
		w.Remote.XHRGetAsync(w.Loop, "missing", func(_ []byte, err error) { gotErr = err })
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	se, ok := gotErr.(*StatusError)
	if !ok || se.Status != 404 {
		t.Errorf("got %v, want 404 StatusError", gotErr)
	}
}

func TestXHRIndexSorted(t *testing.T) {
	r := NewRemoteServer()
	r.Serve("b", nil)
	r.Serve("/a", []byte("x"))
	idx := r.Index()
	if len(idx) != 2 || idx[0] != "a" || idx[1] != "b" {
		t.Errorf("Index = %v", idx)
	}
}

func TestSafariTypedArrayLeak(t *testing.T) {
	w := NewWindow(Safari6)
	w.NoteTypedArrayAlloc(1 << 20)
	w.NoteTypedArrayAlloc(1 << 20)
	if got := w.LeakedTypedArrayBytes(); got != 2<<20 {
		t.Errorf("leaked = %d, want 2MiB", got)
	}
	chrome := NewWindow(Chrome28)
	chrome.NoteTypedArrayAlloc(1 << 20)
	if got := chrome.LeakedTypedArrayBytes(); got != 0 {
		t.Errorf("Chrome leaked %d bytes; the bug is Safari-only", got)
	}
}

func TestSafariPagingStall(t *testing.T) {
	w := NewWindow(Safari6)
	// Fill past the paging threshold.
	for i := 0; i < 10; i++ {
		w.NoteTypedArrayAlloc(1 << 20)
	}
	start := time.Now()
	w.NoteTypedArrayAlloc(1 << 20)
	if elapsed := time.Since(start); elapsed < 10*time.Microsecond {
		t.Errorf("allocation past threshold took %v; expected a paging stall", elapsed)
	}
}

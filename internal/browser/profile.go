// Package browser models the browser diversity that the Doppio paper
// identifies as a core obstacle (§1, "Browser Diversity") and the
// storage/network substrate that Doppio's OS services are built on
// (§5, Table 2).
//
// Each Profile captures the feature set of one of the browsers in the
// paper's evaluation population (Chrome 28, Firefox 22, Safari 6.0.5,
// Opera 12.16, IE10) plus Internet Explorer 8, which the paper singles
// out for its synchronous postMessage (§4.4) and lack of typed arrays.
// A Window combines a profile with a live event loop and the storage
// mechanisms that the profile supports.
package browser

import "time"

// Profile describes one browser's feature set and quirks.
type Profile struct {
	// Name identifies the browser (e.g. "Chrome 28").
	Name string

	// HasTypedArrays reports whether ArrayBuffer/typed arrays exist.
	// Without them, Buffer and the unmanaged heap fall back to plain
	// JavaScript arrays of numbers (§5.1, §5.2).
	HasTypedArrays bool

	// HasSetImmediate reports whether setImmediate is available
	// (IE10 only, §4.4).
	HasSetImmediate bool

	// SyncPostMessage marks IE8's synchronous postMessage dispatch,
	// which forces Doppio to fall back to setTimeout (§4.4).
	SyncPostMessage bool

	// ValidatesStrings reports whether the JS engine rejects invalid
	// UTF-16 sequences in strings. Where true, Buffer's packed
	// "binary string" codec must store one byte per character instead
	// of two (§5.1, "Binary Data in the Browser").
	ValidatesStrings bool

	// TypedArrayGCLeak models the Safari bug found during the paper's
	// evaluation (§7.1): typed arrays are never garbage collected, so
	// memory grows until the OS pages, degrading performance.
	TypedArrayGCLeak bool

	// HasIndexedDB reports whether the asynchronous object-store API
	// exists (Table 2: <50% compatibility; absent in IE8/Opera 12).
	HasIndexedDB bool

	// HasWebSockets reports whether native WebSocket support exists;
	// browsers without it use the Websockify Flash shim (§5.3), which
	// we model as a higher-latency path.
	HasWebSockets bool

	// MinTimeoutDelay is the setTimeout clamp (≥4 ms per HTML5).
	MinTimeoutDelay time.Duration

	// WatchdogLimit is how long one event may run before the
	// browser's hung-script watchdog kills it.
	WatchdogLimit time.Duration

	// LocalStorageQuota is the localStorage byte quota (5 MB typical,
	// counted as two bytes per stored UTF-16 code unit).
	LocalStorageQuota int

	// EngineFactor models relative JavaScript engine speed, with the
	// fastest engine in the population (Chrome 28's V8) at 1.0.
	// DESIGN.md documents this as the substitution for real JS-engine
	// differences: the DoppioJVM engine injects dispatch overhead
	// proportional to (EngineFactor - 1).
	EngineFactor float64

	// StorageLatency is the per-operation latency of asynchronous
	// storage (IndexedDB-like) backends.
	StorageLatency time.Duration
}

// The paper's browser population. Engine factors are calibrated to the
// relative bar heights in Figures 3-4 (Chrome fastest; IE10 and Safari
// mid-pack; Firefox/Opera slower on this workload; IE8 far behind).
var (
	Chrome28 = Profile{
		Name:              "Chrome 28",
		HasTypedArrays:    true,
		ValidatesStrings:  false,
		HasIndexedDB:      true,
		HasWebSockets:     true,
		MinTimeoutDelay:   4 * time.Millisecond,
		WatchdogLimit:     5 * time.Second,
		LocalStorageQuota: 5 << 20,
		EngineFactor:      1.0,
		StorageLatency:    200 * time.Microsecond,
	}
	Firefox22 = Profile{
		Name:              "Firefox 22",
		HasTypedArrays:    true,
		ValidatesStrings:  false,
		HasIndexedDB:      true,
		HasWebSockets:     true,
		MinTimeoutDelay:   4 * time.Millisecond,
		WatchdogLimit:     10 * time.Second,
		LocalStorageQuota: 5 << 20,
		EngineFactor:      1.9,
		StorageLatency:    250 * time.Microsecond,
	}
	Safari6 = Profile{
		Name:              "Safari 6.0.5",
		HasTypedArrays:    true,
		ValidatesStrings:  false,
		TypedArrayGCLeak:  true,
		HasIndexedDB:      false, // Safari 6 shipped WebSQL, not IndexedDB
		HasWebSockets:     true,
		MinTimeoutDelay:   4 * time.Millisecond,
		WatchdogLimit:     10 * time.Second,
		LocalStorageQuota: 5 << 20,
		EngineFactor:      1.5,
		StorageLatency:    250 * time.Microsecond,
	}
	Opera12 = Profile{
		Name:              "Opera 12.16",
		HasTypedArrays:    true,
		ValidatesStrings:  false,
		HasIndexedDB:      false,
		HasWebSockets:     true,
		MinTimeoutDelay:   4 * time.Millisecond,
		WatchdogLimit:     10 * time.Second,
		LocalStorageQuota: 5 << 20,
		EngineFactor:      2.6,
		StorageLatency:    300 * time.Microsecond,
	}
	IE10 = Profile{
		Name:              "IE 10",
		HasTypedArrays:    true,
		HasSetImmediate:   true,
		ValidatesStrings:  true, // conservative string handling: 1 B/char packing
		HasIndexedDB:      true,
		HasWebSockets:     true,
		MinTimeoutDelay:   4 * time.Millisecond,
		WatchdogLimit:     10 * time.Second,
		LocalStorageQuota: 10 << 20,
		EngineFactor:      1.6,
		StorageLatency:    220 * time.Microsecond,
	}
	IE8 = Profile{
		Name:              "IE 8",
		HasTypedArrays:    false,
		SyncPostMessage:   true,
		ValidatesStrings:  true,
		HasIndexedDB:      false,
		HasWebSockets:     false,
		MinTimeoutDelay:   16 * time.Millisecond, // IE8's coarse timer
		WatchdogLimit:     15 * time.Second,
		LocalStorageQuota: 5 << 20,
		EngineFactor:      8.0,
		StorageLatency:    500 * time.Microsecond,
	}
)

// Population returns the browsers used in the paper's evaluation
// (Figure 3), in presentation order.
func Population() []Profile {
	return []Profile{Chrome28, Firefox22, Safari6, Opera12, IE10}
}

// All returns every modelled profile, including IE8.
func All() []Profile {
	return append(Population(), IE8)
}

// ByName returns the profile with the given name and whether it exists.
func ByName(name string) (Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

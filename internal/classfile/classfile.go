// Package classfile models Java class files as specified in chapter 4
// of the JVM Specification (2nd edition) — the format DoppioJVM's
// class loader parses in the browser (§6.4). It provides a parser, a
// writer (used by the MiniJava compiler to emit real class files), a
// constant-pool builder, and a javap-style disassembler.
package classfile

import "fmt"

// Magic is the class file magic number.
const Magic = 0xCAFEBABE

// Class file version emitted by the compiler (45.3 = JDK 1.1, the
// version level matching the 2nd-edition instruction set).
const (
	MajorVersion = 45
	MinorVersion = 3
)

// ConstTag identifies a constant pool entry kind.
type ConstTag byte

// Constant pool tags (JVM spec §4.4).
const (
	TagUtf8               ConstTag = 1
	TagInteger            ConstTag = 3
	TagFloat              ConstTag = 4
	TagLong               ConstTag = 5
	TagDouble             ConstTag = 6
	TagClass              ConstTag = 7
	TagString             ConstTag = 8
	TagFieldref           ConstTag = 9
	TagMethodref          ConstTag = 10
	TagInterfaceMethodref ConstTag = 11
	TagNameAndType        ConstTag = 12
)

// Constant is one constant pool entry. Long and Double entries occupy
// two pool slots; the second slot holds a zero-tag placeholder.
type Constant struct {
	Tag    ConstTag
	Utf8   string
	Int    int32
	Float  float32
	Long   int64
	Double float64
	// Index operands, meaning depends on Tag:
	//   Class            → Idx1 = name (Utf8)
	//   String           → Idx1 = value (Utf8)
	//   NameAndType      → Idx1 = name, Idx2 = descriptor
	//   *ref             → Idx1 = class, Idx2 = NameAndType
	Idx1, Idx2 uint16
}

// Access flags (JVM spec §4.1, §4.5, §4.6).
const (
	AccPublic       = 0x0001
	AccPrivate      = 0x0002
	AccProtected    = 0x0004
	AccStatic       = 0x0008
	AccFinal        = 0x0010
	AccSuper        = 0x0020
	AccSynchronized = 0x0020
	AccVolatile     = 0x0040
	AccTransient    = 0x0080
	AccNative       = 0x0100
	AccInterface    = 0x0200
	AccAbstract     = 0x0400
)

// ClassFile is a parsed (or to-be-written) class file.
type ClassFile struct {
	Minor, Major uint16
	// ConstPool is 1-based: index 0 is unused, and the slot after a
	// Long/Double entry is a placeholder with Tag 0.
	ConstPool  []Constant
	Flags      uint16
	ThisClass  uint16
	SuperClass uint16
	Interfaces []uint16
	Fields     []Member
	Methods    []Member
	Attrs      []Attribute
}

// Member is a field or method.
type Member struct {
	Flags uint16
	Name  uint16 // Utf8 index
	Desc  uint16 // Utf8 index
	Attrs []Attribute
}

// Attribute is a raw attribute; Code attributes have a typed view.
type Attribute struct {
	Name uint16 // Utf8 index
	Data []byte
}

// ExceptionEntry is one row of a Code attribute's exception table.
type ExceptionEntry struct {
	StartPC, EndPC, HandlerPC uint16
	CatchType                 uint16 // pool index of the class, 0 = any (finally)
}

// Code is the decoded Code attribute of a method.
type Code struct {
	MaxStack, MaxLocals uint16
	Bytecode            []byte
	Exceptions          []ExceptionEntry
	Attrs               []Attribute
}

// --- constant pool accessors ---

func (cf *ClassFile) constant(i uint16, tag ConstTag, what string) (*Constant, error) {
	if int(i) >= len(cf.ConstPool) || i == 0 {
		return nil, fmt.Errorf("classfile: %s index %d out of range", what, i)
	}
	c := &cf.ConstPool[i]
	if c.Tag != tag {
		return nil, fmt.Errorf("classfile: %s index %d has tag %d, want %d", what, i, c.Tag, tag)
	}
	return c, nil
}

// Utf8 returns the string at pool index i.
func (cf *ClassFile) Utf8(i uint16) (string, error) {
	c, err := cf.constant(i, TagUtf8, "utf8")
	if err != nil {
		return "", err
	}
	return c.Utf8, nil
}

// MustUtf8 is Utf8 for indices already validated by the parser.
func (cf *ClassFile) MustUtf8(i uint16) string {
	s, err := cf.Utf8(i)
	if err != nil {
		panic(err)
	}
	return s
}

// ClassNameAt resolves a Class constant to its internal name
// (e.g. "java/lang/Object").
func (cf *ClassFile) ClassNameAt(i uint16) (string, error) {
	c, err := cf.constant(i, TagClass, "class")
	if err != nil {
		return "", err
	}
	return cf.Utf8(c.Idx1)
}

// StringAt resolves a String constant to its value.
func (cf *ClassFile) StringAt(i uint16) (string, error) {
	c, err := cf.constant(i, TagString, "string")
	if err != nil {
		return "", err
	}
	return cf.Utf8(c.Idx1)
}

// RefAt resolves a Fieldref/Methodref/InterfaceMethodref to
// (class name, member name, descriptor).
func (cf *ClassFile) RefAt(i uint16) (class, name, desc string, err error) {
	if int(i) >= len(cf.ConstPool) || i == 0 {
		return "", "", "", fmt.Errorf("classfile: ref index %d out of range", i)
	}
	c := &cf.ConstPool[i]
	switch c.Tag {
	case TagFieldref, TagMethodref, TagInterfaceMethodref:
	default:
		return "", "", "", fmt.Errorf("classfile: index %d is not a member ref (tag %d)", i, c.Tag)
	}
	class, err = cf.ClassNameAt(c.Idx1)
	if err != nil {
		return
	}
	nt, err := cf.constant(c.Idx2, TagNameAndType, "name-and-type")
	if err != nil {
		return
	}
	name, err = cf.Utf8(nt.Idx1)
	if err != nil {
		return
	}
	desc, err = cf.Utf8(nt.Idx2)
	return
}

// Name returns this class's internal name.
func (cf *ClassFile) Name() string {
	n, err := cf.ClassNameAt(cf.ThisClass)
	if err != nil {
		return "<bad>"
	}
	return n
}

// SuperName returns the superclass internal name, or "" for Object.
func (cf *ClassFile) SuperName() string {
	if cf.SuperClass == 0 {
		return ""
	}
	n, err := cf.ClassNameAt(cf.SuperClass)
	if err != nil {
		return "<bad>"
	}
	return n
}

// InterfaceNames returns the implemented interfaces' internal names.
func (cf *ClassFile) InterfaceNames() []string {
	out := make([]string, 0, len(cf.Interfaces))
	for _, i := range cf.Interfaces {
		n, err := cf.ClassNameAt(i)
		if err != nil {
			n = "<bad>"
		}
		out = append(out, n)
	}
	return out
}

// AttrNamed returns the raw attribute with the given name, if present.
func (cf *ClassFile) AttrNamed(attrs []Attribute, name string) ([]byte, bool) {
	for _, a := range attrs {
		if s, err := cf.Utf8(a.Name); err == nil && s == name {
			return a.Data, true
		}
	}
	return nil, false
}

// MemberName returns a member's name.
func (cf *ClassFile) MemberName(m *Member) string { return cf.MustUtf8(m.Name) }

// MemberDesc returns a member's descriptor.
func (cf *ClassFile) MemberDesc(m *Member) string { return cf.MustUtf8(m.Desc) }

// CodeOf decodes a method's Code attribute, or returns nil for
// abstract/native methods.
func (cf *ClassFile) CodeOf(m *Member) (*Code, error) {
	data, ok := cf.AttrNamed(m.Attrs, "Code")
	if !ok {
		return nil, nil
	}
	return parseCode(data)
}

package classfile

import (
	"fmt"
	"strings"
)

// Disassemble renders a javap-like listing of the class file — the
// same job as the paper's javap benchmark, available both as a Go
// library/binary and (reimplemented in MiniJava) as a DoppioJVM
// workload.
func Disassemble(cf *ClassFile) string {
	var b strings.Builder
	kind := "class"
	if cf.Flags&AccInterface != 0 {
		kind = "interface"
	}
	fmt.Fprintf(&b, "%s %s", kind, cf.Name())
	if super := cf.SuperName(); super != "" && super != "java/lang/Object" {
		fmt.Fprintf(&b, " extends %s", super)
	}
	if ifaces := cf.InterfaceNames(); len(ifaces) > 0 {
		fmt.Fprintf(&b, " implements %s", strings.Join(ifaces, ", "))
	}
	b.WriteString(" {\n")
	for i := range cf.Fields {
		f := &cf.Fields[i]
		fmt.Fprintf(&b, "  %s%s %s;\n", flagString(f.Flags), cf.MemberDesc(f), cf.MemberName(f))
	}
	for i := range cf.Methods {
		m := &cf.Methods[i]
		fmt.Fprintf(&b, "  %s%s %s\n", flagString(m.Flags), cf.MemberName(m), cf.MemberDesc(m))
		code, err := cf.CodeOf(m)
		if err != nil {
			fmt.Fprintf(&b, "    <bad code attribute: %v>\n", err)
			continue
		}
		if code == nil {
			continue
		}
		fmt.Fprintf(&b, "    Code: stack=%d, locals=%d\n", code.MaxStack, code.MaxLocals)
		disasmCode(&b, cf, code)
		for _, e := range code.Exceptions {
			catch := "any"
			if e.CatchType != 0 {
				if n, err := cf.ClassNameAt(e.CatchType); err == nil {
					catch = n
				}
			}
			fmt.Fprintf(&b, "    Exception: [%d, %d) -> %d, type %s\n",
				e.StartPC, e.EndPC, e.HandlerPC, catch)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func flagString(flags uint16) string {
	var parts []string
	if flags&AccPublic != 0 {
		parts = append(parts, "public")
	}
	if flags&AccPrivate != 0 {
		parts = append(parts, "private")
	}
	if flags&AccProtected != 0 {
		parts = append(parts, "protected")
	}
	if flags&AccStatic != 0 {
		parts = append(parts, "static")
	}
	if flags&AccFinal != 0 {
		parts = append(parts, "final")
	}
	if flags&AccNative != 0 {
		parts = append(parts, "native")
	}
	if flags&AccAbstract != 0 {
		parts = append(parts, "abstract")
	}
	if len(parts) == 0 {
		return ""
	}
	return strings.Join(parts, " ") + " "
}

func disasmCode(b *strings.Builder, cf *ClassFile, code *Code) {
	bc := code.Bytecode
	for pc := 0; pc < len(bc); pc += InstrLen(bc, pc) {
		op := bc[pc]
		name := OpNames[op]
		if name == "" {
			fmt.Fprintf(b, "    %4d: <illegal %#02x>\n", pc, op)
			return
		}
		fmt.Fprintf(b, "    %4d: %s%s\n", pc, name, operandString(cf, bc, pc))
	}
}

func operandString(cf *ClassFile, bc []byte, pc int) string {
	op := bc[pc]
	switch op {
	case OpBipush:
		return fmt.Sprintf(" %d", int8(bc[pc+1]))
	case OpSipush:
		return fmt.Sprintf(" %d", int16(be16(bc, pc+1)))
	case OpLdc:
		return " " + constString(cf, uint16(bc[pc+1]))
	case OpLdcW, OpLdc2W:
		return " " + constString(cf, be16(bc, pc+1))
	case OpIload, OpLload, OpFload, OpDload, OpAload,
		OpIstore, OpLstore, OpFstore, OpDstore, OpAstore, OpRet:
		return fmt.Sprintf(" %d", bc[pc+1])
	case OpIinc:
		return fmt.Sprintf(" %d, %d", bc[pc+1], int8(bc[pc+2]))
	case OpIfeq, OpIfne, OpIflt, OpIfge, OpIfgt, OpIfle,
		OpIfIcmpeq, OpIfIcmpne, OpIfIcmplt, OpIfIcmpge, OpIfIcmpgt, OpIfIcmple,
		OpIfAcmpeq, OpIfAcmpne, OpGoto, OpJsr, OpIfnull, OpIfnonnull:
		return fmt.Sprintf(" %d", pc+int(int16(be16(bc, pc+1))))
	case OpGotoW, OpJsrW:
		return fmt.Sprintf(" %d", pc+int(int32(be32(bc, pc+1))))
	case OpGetstatic, OpPutstatic, OpGetfield, OpPutfield,
		OpInvokevirtual, OpInvokespecial, OpInvokestatic:
		return " " + refString(cf, be16(bc, pc+1))
	case OpInvokeinterface:
		return fmt.Sprintf(" %s, count %d", refString(cf, be16(bc, pc+1)), bc[pc+3])
	case OpNew, OpAnewarray, OpCheckcast, OpInstanceof:
		if n, err := cf.ClassNameAt(be16(bc, pc+1)); err == nil {
			return " " + n
		}
		return fmt.Sprintf(" #%d", be16(bc, pc+1))
	case OpNewarray:
		return " " + arrayTypeName(bc[pc+1])
	case OpMultianewarray:
		n, _ := cf.ClassNameAt(be16(bc, pc+1))
		return fmt.Sprintf(" %s, dims %d", n, bc[pc+3])
	case OpWide:
		inner := OpNames[bc[pc+1]]
		if bc[pc+1] == OpIinc {
			return fmt.Sprintf(" %s %d, %d", inner, be16(bc, pc+2), int16(be16(bc, pc+4)))
		}
		return fmt.Sprintf(" %s %d", inner, be16(bc, pc+2))
	case OpTableswitch:
		base := (pc + 4) &^ 3
		def := pc + int(int32(be32(bc, base)))
		low := int(int32(be32(bc, base+4)))
		high := int(int32(be32(bc, base+8)))
		var parts []string
		for i := 0; i <= high-low; i++ {
			parts = append(parts, fmt.Sprintf("%d->%d", low+i, pc+int(int32(be32(bc, base+12+4*i)))))
		}
		return fmt.Sprintf(" {%s, default->%d}", strings.Join(parts, ", "), def)
	case OpLookupswitch:
		base := (pc + 4) &^ 3
		def := pc + int(int32(be32(bc, base)))
		n := int(int32(be32(bc, base+4)))
		var parts []string
		for i := 0; i < n; i++ {
			k := int(int32(be32(bc, base+8+8*i)))
			t := pc + int(int32(be32(bc, base+12+8*i)))
			parts = append(parts, fmt.Sprintf("%d->%d", k, t))
		}
		return fmt.Sprintf(" {%s, default->%d}", strings.Join(parts, ", "), def)
	default:
		return ""
	}
}

func constString(cf *ClassFile, i uint16) string {
	if int(i) >= len(cf.ConstPool) {
		return fmt.Sprintf("#%d", i)
	}
	c := &cf.ConstPool[i]
	switch c.Tag {
	case TagInteger:
		return fmt.Sprintf("int %d", c.Int)
	case TagFloat:
		return fmt.Sprintf("float %g", c.Float)
	case TagLong:
		return fmt.Sprintf("long %d", c.Long)
	case TagDouble:
		return fmt.Sprintf("double %g", c.Double)
	case TagString:
		s, _ := cf.StringAt(i)
		return fmt.Sprintf("String %q", s)
	case TagClass:
		n, _ := cf.ClassNameAt(i)
		return "class " + n
	default:
		return fmt.Sprintf("#%d", i)
	}
}

func refString(cf *ClassFile, i uint16) string {
	class, name, desc, err := cf.RefAt(i)
	if err != nil {
		return fmt.Sprintf("#%d", i)
	}
	return fmt.Sprintf("%s.%s:%s", class, name, desc)
}

func arrayTypeName(code byte) string {
	switch code {
	case 4:
		return "boolean"
	case 5:
		return "char"
	case 6:
		return "float"
	case 7:
		return "double"
	case 8:
		return "byte"
	case 9:
		return "short"
	case 10:
		return "int"
	case 11:
		return "long"
	}
	return fmt.Sprintf("<%d>", code)
}

package classfile

import (
	"strings"
	"testing"
)

// buildSample constructs a small class by hand:
//
//	public class demo/Adder extends java/lang/Object {
//	    public static int add(int, int) { return a + b; }
//	}
func buildSample() *ClassFile {
	pb := NewPoolBuilder()
	this := pb.Class("demo/Adder")
	super := pb.Class("java/lang/Object")
	nameIdx := pb.Utf8("add")
	descIdx := pb.Utf8("(II)I")
	codeAttr := pb.Utf8("Code")
	// Also exercise every constant kind.
	pb.Int(42)
	pb.Long(1 << 40)
	pb.Float(2.5)
	pb.Double(3.25)
	pb.String("hello")
	pb.FieldRef("demo/Adder", "count", "I")
	pb.MethodRef("java/lang/Object", "<init>", "()V")
	pb.InterfaceMethodRef("java/lang/Runnable", "run", "()V")

	code := &Code{
		MaxStack:  2,
		MaxLocals: 2,
		Bytecode:  []byte{OpIload0, OpIload1, OpIadd, OpIreturn},
		Exceptions: []ExceptionEntry{
			{StartPC: 0, EndPC: 3, HandlerPC: 3, CatchType: super},
		},
	}
	return &ClassFile{
		Minor: MinorVersion, Major: MajorVersion,
		ConstPool:  pb.Pool(),
		Flags:      AccPublic | AccSuper,
		ThisClass:  this,
		SuperClass: super,
		Methods: []Member{{
			Flags: AccPublic | AccStatic,
			Name:  nameIdx,
			Desc:  descIdx,
			Attrs: []Attribute{{Name: codeAttr, Data: EncodeCode(code)}},
		}},
	}
}

func TestRoundTrip(t *testing.T) {
	orig := buildSample()
	data := orig.Write()
	cf, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cf.Name() != "demo/Adder" {
		t.Errorf("Name = %q", cf.Name())
	}
	if cf.SuperName() != "java/lang/Object" {
		t.Errorf("SuperName = %q", cf.SuperName())
	}
	if len(cf.Methods) != 1 {
		t.Fatalf("methods = %d", len(cf.Methods))
	}
	m := &cf.Methods[0]
	if cf.MemberName(m) != "add" || cf.MemberDesc(m) != "(II)I" {
		t.Errorf("method = %s %s", cf.MemberName(m), cf.MemberDesc(m))
	}
	code, err := cf.CodeOf(m)
	if err != nil || code == nil {
		t.Fatalf("CodeOf: %v", err)
	}
	if code.MaxStack != 2 || code.MaxLocals != 2 {
		t.Errorf("code header = %+v", code)
	}
	want := []byte{OpIload0, OpIload1, OpIadd, OpIreturn}
	if len(code.Bytecode) != len(want) {
		t.Fatalf("bytecode = %v", code.Bytecode)
	}
	for i := range want {
		if code.Bytecode[i] != want[i] {
			t.Fatalf("bytecode = %v, want %v", code.Bytecode, want)
		}
	}
	if len(code.Exceptions) != 1 || code.Exceptions[0].EndPC != 3 {
		t.Errorf("exceptions = %+v", code.Exceptions)
	}
	// All the constant kinds survived.
	foundLong := false
	for _, c := range cf.ConstPool {
		if c.Tag == TagLong && c.Long == 1<<40 {
			foundLong = true
		}
	}
	if !foundLong {
		t.Error("long constant lost in round trip")
	}
}

func TestDoubleRoundTripIdentical(t *testing.T) {
	data := buildSample().Write()
	cf, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	again := cf.Write()
	if string(again) != string(data) {
		t.Error("Write(Parse(x)) != x")
	}
}

func TestBadInputs(t *testing.T) {
	cases := [][]byte{
		nil,
		{0xCA, 0xFE},
		{0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 45, 0, 1},
		buildSample().Write()[:20],
	}
	for i, data := range cases {
		if _, err := Parse(data); err == nil {
			t.Errorf("case %d: Parse accepted bad input", i)
		}
	}
}

func TestInstructionCountIs201(t *testing.T) {
	if got := InstructionCount(); got != 201 {
		t.Errorf("InstructionCount = %d, want 201 (JVM spec 2nd edition)", got)
	}
}

func TestInstrLenSimple(t *testing.T) {
	cases := []struct {
		code []byte
		want int
	}{
		{[]byte{OpNop}, 1},
		{[]byte{OpBipush, 5}, 2},
		{[]byte{OpSipush, 1, 2}, 3},
		{[]byte{OpInvokeinterface, 0, 1, 1, 0}, 5},
		{[]byte{OpWide, OpIload, 0, 5}, 4},
		{[]byte{OpWide, OpIinc, 0, 5, 0, 1}, 6},
		{[]byte{OpGotoW, 0, 0, 0, 5}, 5},
	}
	for _, c := range cases {
		if got := InstrLen(c.code, 0); got != c.want {
			t.Errorf("InstrLen(%v) = %d, want %d", c.code, got, c.want)
		}
	}
}

func TestInstrLenSwitches(t *testing.T) {
	// tableswitch at pc=0: opcode + 3 pad + default(4) + low(4) + high(4) + 2 offsets(8)
	ts := []byte{OpTableswitch, 0, 0, 0,
		0, 0, 0, 20, // default
		0, 0, 0, 1, // low
		0, 0, 0, 2, // high
		0, 0, 0, 10,
		0, 0, 0, 12,
	}
	if got := InstrLen(ts, 0); got != len(ts) {
		t.Errorf("tableswitch InstrLen = %d, want %d", got, len(ts))
	}
	// lookupswitch with 1 pair.
	ls := []byte{OpLookupswitch, 0, 0, 0,
		0, 0, 0, 20, // default
		0, 0, 0, 1, // npairs
		0, 0, 0, 7, // key
		0, 0, 0, 14, // offset
	}
	if got := InstrLen(ls, 0); got != len(ls) {
		t.Errorf("lookupswitch InstrLen = %d, want %d", got, len(ls))
	}
}

func TestDisassemble(t *testing.T) {
	cf, err := Parse(buildSample().Write())
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(cf)
	for _, want := range []string{"class demo/Adder", "public static add", "(II)I",
		"iload_0", "iload_1", "iadd", "ireturn", "Exception:"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestParseMethodDesc(t *testing.T) {
	params, ret, err := ParseMethodDesc("(IJLjava/lang/String;[B[[D)V")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"I", "J", "Ljava/lang/String;", "[B", "[[D"}
	if len(params) != len(want) {
		t.Fatalf("params = %v", params)
	}
	for i := range want {
		if params[i] != want[i] {
			t.Errorf("param %d = %q, want %q", i, params[i], want[i])
		}
	}
	if ret != "V" {
		t.Errorf("ret = %q", ret)
	}
	if _, _, err := ParseMethodDesc("()"); err == nil {
		t.Error("empty return accepted")
	}
	if _, _, err := ParseMethodDesc("(Q)V"); err == nil {
		t.Error("bad type accepted")
	}
	if n, _ := ArgSlots("(IJD)V"); n != 5 {
		t.Errorf("ArgSlots = %d, want 5", n)
	}
}

func TestModifiedUTF8(t *testing.T) {
	s := "a\x00b"
	enc := encodeModifiedUTF8(s)
	if len(enc) != 4 || enc[1] != 0xC0 || enc[2] != 0x80 {
		t.Errorf("encode = %v", enc)
	}
	if got := decodeModifiedUTF8(enc); got != s {
		t.Errorf("decode = %q", got)
	}
}

package classfile

import (
	"encoding/binary"
	"fmt"
	"math"
)

// reader is a bounds-checked big-endian cursor over class file bytes.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("classfile: "+format+" at offset %d", append(args, r.pos)...)
	}
}

func (r *reader) u1() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.fail("truncated (need 1 byte)")
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *reader) u2() uint16 {
	if r.err != nil {
		return 0
	}
	if r.pos+2 > len(r.data) {
		r.fail("truncated (need 2 bytes)")
		return 0
	}
	v := binary.BigEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v
}

func (r *reader) u4() uint32 {
	if r.err != nil {
		return 0
	}
	if r.pos+4 > len(r.data) {
		r.fail("truncated (need 4 bytes)")
		return 0
	}
	v := binary.BigEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.fail("truncated (need %d bytes)", n)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

// Parse decodes a class file.
func Parse(data []byte) (*ClassFile, error) {
	r := &reader{data: data}
	if magic := r.u4(); magic != Magic && r.err == nil {
		return nil, fmt.Errorf("classfile: bad magic %#x", magic)
	}
	cf := &ClassFile{}
	cf.Minor = r.u2()
	cf.Major = r.u2()

	// Constant pool: count entries are indexed 1..count-1.
	count := int(r.u2())
	if count == 0 {
		return nil, fmt.Errorf("classfile: empty constant pool")
	}
	cf.ConstPool = make([]Constant, count)
	for i := 1; i < count && r.err == nil; i++ {
		tag := ConstTag(r.u1())
		c := &cf.ConstPool[i]
		c.Tag = tag
		switch tag {
		case TagUtf8:
			n := int(r.u2())
			c.Utf8 = decodeModifiedUTF8(r.bytes(n))
		case TagInteger:
			c.Int = int32(r.u4())
		case TagFloat:
			c.Float = math.Float32frombits(r.u4())
		case TagLong:
			hi := uint64(r.u4())
			lo := uint64(r.u4())
			c.Long = int64(hi<<32 | lo)
			i++ // occupies two slots
		case TagDouble:
			hi := uint64(r.u4())
			lo := uint64(r.u4())
			c.Double = math.Float64frombits(hi<<32 | lo)
			i++
		case TagClass, TagString:
			c.Idx1 = r.u2()
		case TagFieldref, TagMethodref, TagInterfaceMethodref, TagNameAndType:
			c.Idx1 = r.u2()
			c.Idx2 = r.u2()
		default:
			return nil, fmt.Errorf("classfile: unknown constant tag %d at pool index %d", tag, i)
		}
	}

	cf.Flags = r.u2()
	cf.ThisClass = r.u2()
	cf.SuperClass = r.u2()
	nIfaces := int(r.u2())
	for i := 0; i < nIfaces && r.err == nil; i++ {
		cf.Interfaces = append(cf.Interfaces, r.u2())
	}
	var parseMembers func() []Member
	parseMembers = func() []Member {
		n := int(r.u2())
		out := make([]Member, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			m := Member{Flags: r.u2(), Name: r.u2(), Desc: r.u2()}
			m.Attrs = parseAttrs(r)
			out = append(out, m)
		}
		return out
	}
	cf.Fields = parseMembers()
	cf.Methods = parseMembers()
	cf.Attrs = parseAttrs(r)
	if r.err != nil {
		return nil, r.err
	}
	// Validate the class references up front.
	if _, err := cf.ClassNameAt(cf.ThisClass); err != nil {
		return nil, err
	}
	if cf.SuperClass != 0 {
		if _, err := cf.ClassNameAt(cf.SuperClass); err != nil {
			return nil, err
		}
	}
	return cf, nil
}

func parseAttrs(r *reader) []Attribute {
	n := int(r.u2())
	out := make([]Attribute, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		name := r.u2()
		length := int(r.u4())
		data := r.bytes(length)
		out = append(out, Attribute{Name: name, Data: append([]byte(nil), data...)})
	}
	return out
}

func parseCode(data []byte) (*Code, error) {
	r := &reader{data: data}
	c := &Code{}
	c.MaxStack = r.u2()
	c.MaxLocals = r.u2()
	codeLen := int(r.u4())
	c.Bytecode = append([]byte(nil), r.bytes(codeLen)...)
	nExc := int(r.u2())
	for i := 0; i < nExc && r.err == nil; i++ {
		c.Exceptions = append(c.Exceptions, ExceptionEntry{
			StartPC: r.u2(), EndPC: r.u2(), HandlerPC: r.u2(), CatchType: r.u2(),
		})
	}
	c.Attrs = parseAttrs(r)
	if r.err != nil {
		return nil, r.err
	}
	return c, nil
}

// decodeModifiedUTF8 decodes the JVM's modified UTF-8 (NUL encoded as
// 0xC0 0x80; no 4-byte forms). For the subset we emit it matches
// standard UTF-8, and we pass through unknown sequences unchanged.
func decodeModifiedUTF8(b []byte) string {
	// Fast path: plain ASCII and standard UTF-8 are byte-identical.
	hasC080 := false
	for i := 0; i+1 < len(b); i++ {
		if b[i] == 0xC0 && b[i+1] == 0x80 {
			hasC080 = true
			break
		}
	}
	if !hasC080 {
		return string(b)
	}
	out := make([]byte, 0, len(b))
	for i := 0; i < len(b); i++ {
		if b[i] == 0xC0 && i+1 < len(b) && b[i+1] == 0x80 {
			out = append(out, 0)
			i++
			continue
		}
		out = append(out, b[i])
	}
	return string(out)
}

// encodeModifiedUTF8 encodes a string in the JVM's modified UTF-8.
func encodeModifiedUTF8(s string) []byte {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			out = append(out, 0xC0, 0x80)
			continue
		}
		out = append(out, s[i])
	}
	return out
}

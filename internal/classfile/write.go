package classfile

import (
	"encoding/binary"
	"math"
)

// writer accumulates big-endian class file bytes.
type writer struct{ buf []byte }

func (w *writer) u1(v byte)    { w.buf = append(w.buf, v) }
func (w *writer) u2(v uint16)  { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u4(v uint32)  { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) raw(b []byte) { w.buf = append(w.buf, b...) }

// Write serializes the class file.
func (cf *ClassFile) Write() []byte {
	w := &writer{}
	w.u4(Magic)
	w.u2(cf.Minor)
	w.u2(cf.Major)
	w.u2(uint16(len(cf.ConstPool)))
	for i := 1; i < len(cf.ConstPool); i++ {
		c := &cf.ConstPool[i]
		w.u1(byte(c.Tag))
		switch c.Tag {
		case TagUtf8:
			enc := encodeModifiedUTF8(c.Utf8)
			w.u2(uint16(len(enc)))
			w.raw(enc)
		case TagInteger:
			w.u4(uint32(c.Int))
		case TagFloat:
			w.u4(math.Float32bits(c.Float))
		case TagLong:
			w.u4(uint32(uint64(c.Long) >> 32))
			w.u4(uint32(uint64(c.Long)))
			i++ // skip placeholder slot
		case TagDouble:
			bits := math.Float64bits(c.Double)
			w.u4(uint32(bits >> 32))
			w.u4(uint32(bits))
			i++
		case TagClass, TagString:
			w.u2(c.Idx1)
		case TagFieldref, TagMethodref, TagInterfaceMethodref, TagNameAndType:
			w.u2(c.Idx1)
			w.u2(c.Idx2)
		}
	}
	w.u2(cf.Flags)
	w.u2(cf.ThisClass)
	w.u2(cf.SuperClass)
	w.u2(uint16(len(cf.Interfaces)))
	for _, i := range cf.Interfaces {
		w.u2(i)
	}
	writeMembers := func(ms []Member) {
		w.u2(uint16(len(ms)))
		for _, m := range ms {
			w.u2(m.Flags)
			w.u2(m.Name)
			w.u2(m.Desc)
			writeAttrs(w, m.Attrs)
		}
	}
	writeMembers(cf.Fields)
	writeMembers(cf.Methods)
	writeAttrs(w, cf.Attrs)
	return w.buf
}

func writeAttrs(w *writer, attrs []Attribute) {
	w.u2(uint16(len(attrs)))
	for _, a := range attrs {
		w.u2(a.Name)
		w.u4(uint32(len(a.Data)))
		w.raw(a.Data)
	}
}

// EncodeCode serializes a Code struct into attribute data.
func EncodeCode(c *Code) []byte {
	w := &writer{}
	w.u2(c.MaxStack)
	w.u2(c.MaxLocals)
	w.u4(uint32(len(c.Bytecode)))
	w.raw(c.Bytecode)
	w.u2(uint16(len(c.Exceptions)))
	for _, e := range c.Exceptions {
		w.u2(e.StartPC)
		w.u2(e.EndPC)
		w.u2(e.HandlerPC)
		w.u2(e.CatchType)
	}
	writeAttrs(w, c.Attrs)
	return w.buf
}

// PoolBuilder constructs a deduplicated constant pool.
type PoolBuilder struct {
	pool  []Constant
	index map[Constant]uint16
}

// NewPoolBuilder creates a builder with the reserved zero slot.
func NewPoolBuilder() *PoolBuilder {
	return &PoolBuilder{pool: make([]Constant, 1), index: make(map[Constant]uint16)}
}

// Pool returns the built pool for a ClassFile.
func (b *PoolBuilder) Pool() []Constant { return b.pool }

func (b *PoolBuilder) add(c Constant, wide bool) uint16 {
	if i, ok := b.index[c]; ok {
		return i
	}
	i := uint16(len(b.pool))
	b.pool = append(b.pool, c)
	if wide {
		b.pool = append(b.pool, Constant{}) // placeholder slot
	}
	b.index[c] = i
	return i
}

// Utf8 interns a modified-UTF8 string constant.
func (b *PoolBuilder) Utf8(s string) uint16 {
	return b.add(Constant{Tag: TagUtf8, Utf8: s}, false)
}

// Class interns a Class constant for an internal name.
func (b *PoolBuilder) Class(name string) uint16 {
	return b.add(Constant{Tag: TagClass, Idx1: b.Utf8(name)}, false)
}

// String interns a String constant.
func (b *PoolBuilder) String(s string) uint16 {
	return b.add(Constant{Tag: TagString, Idx1: b.Utf8(s)}, false)
}

// Int interns an Integer constant.
func (b *PoolBuilder) Int(v int32) uint16 {
	return b.add(Constant{Tag: TagInteger, Int: v}, false)
}

// Float interns a Float constant.
func (b *PoolBuilder) Float(v float32) uint16 {
	return b.add(Constant{Tag: TagFloat, Float: v}, false)
}

// Long interns a Long constant (two pool slots).
func (b *PoolBuilder) Long(v int64) uint16 {
	return b.add(Constant{Tag: TagLong, Long: v}, true)
}

// Double interns a Double constant (two pool slots).
func (b *PoolBuilder) Double(v float64) uint16 {
	return b.add(Constant{Tag: TagDouble, Double: v}, true)
}

// NameAndType interns a NameAndType constant.
func (b *PoolBuilder) NameAndType(name, desc string) uint16 {
	return b.add(Constant{Tag: TagNameAndType, Idx1: b.Utf8(name), Idx2: b.Utf8(desc)}, false)
}

// FieldRef interns a Fieldref constant.
func (b *PoolBuilder) FieldRef(class, name, desc string) uint16 {
	return b.add(Constant{Tag: TagFieldref, Idx1: b.Class(class), Idx2: b.NameAndType(name, desc)}, false)
}

// MethodRef interns a Methodref constant.
func (b *PoolBuilder) MethodRef(class, name, desc string) uint16 {
	return b.add(Constant{Tag: TagMethodref, Idx1: b.Class(class), Idx2: b.NameAndType(name, desc)}, false)
}

// InterfaceMethodRef interns an InterfaceMethodref constant.
func (b *PoolBuilder) InterfaceMethodRef(class, name, desc string) uint16 {
	return b.add(Constant{Tag: TagInterfaceMethodref, Idx1: b.Class(class), Idx2: b.NameAndType(name, desc)}, false)
}

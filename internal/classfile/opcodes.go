package classfile

// The complete instruction set of the JVM Specification, 2nd edition —
// the 201 opcodes DoppioJVM implements (§6). Opcode 0xBA is the one
// unused slot in this range.
const (
	OpNop             = 0x00
	OpAconstNull      = 0x01
	OpIconstM1        = 0x02
	OpIconst0         = 0x03
	OpIconst1         = 0x04
	OpIconst2         = 0x05
	OpIconst3         = 0x06
	OpIconst4         = 0x07
	OpIconst5         = 0x08
	OpLconst0         = 0x09
	OpLconst1         = 0x0A
	OpFconst0         = 0x0B
	OpFconst1         = 0x0C
	OpFconst2         = 0x0D
	OpDconst0         = 0x0E
	OpDconst1         = 0x0F
	OpBipush          = 0x10
	OpSipush          = 0x11
	OpLdc             = 0x12
	OpLdcW            = 0x13
	OpLdc2W           = 0x14
	OpIload           = 0x15
	OpLload           = 0x16
	OpFload           = 0x17
	OpDload           = 0x18
	OpAload           = 0x19
	OpIload0          = 0x1A
	OpIload1          = 0x1B
	OpIload2          = 0x1C
	OpIload3          = 0x1D
	OpLload0          = 0x1E
	OpLload1          = 0x1F
	OpLload2          = 0x20
	OpLload3          = 0x21
	OpFload0          = 0x22
	OpFload1          = 0x23
	OpFload2          = 0x24
	OpFload3          = 0x25
	OpDload0          = 0x26
	OpDload1          = 0x27
	OpDload2          = 0x28
	OpDload3          = 0x29
	OpAload0          = 0x2A
	OpAload1          = 0x2B
	OpAload2          = 0x2C
	OpAload3          = 0x2D
	OpIaload          = 0x2E
	OpLaload          = 0x2F
	OpFaload          = 0x30
	OpDaload          = 0x31
	OpAaload          = 0x32
	OpBaload          = 0x33
	OpCaload          = 0x34
	OpSaload          = 0x35
	OpIstore          = 0x36
	OpLstore          = 0x37
	OpFstore          = 0x38
	OpDstore          = 0x39
	OpAstore          = 0x3A
	OpIstore0         = 0x3B
	OpIstore1         = 0x3C
	OpIstore2         = 0x3D
	OpIstore3         = 0x3E
	OpLstore0         = 0x3F
	OpLstore1         = 0x40
	OpLstore2         = 0x41
	OpLstore3         = 0x42
	OpFstore0         = 0x43
	OpFstore1         = 0x44
	OpFstore2         = 0x45
	OpFstore3         = 0x46
	OpDstore0         = 0x47
	OpDstore1         = 0x48
	OpDstore2         = 0x49
	OpDstore3         = 0x4A
	OpAstore0         = 0x4B
	OpAstore1         = 0x4C
	OpAstore2         = 0x4D
	OpAstore3         = 0x4E
	OpIastore         = 0x4F
	OpLastore         = 0x50
	OpFastore         = 0x51
	OpDastore         = 0x52
	OpAastore         = 0x53
	OpBastore         = 0x54
	OpCastore         = 0x55
	OpSastore         = 0x56
	OpPop             = 0x57
	OpPop2            = 0x58
	OpDup             = 0x59
	OpDupX1           = 0x5A
	OpDupX2           = 0x5B
	OpDup2            = 0x5C
	OpDup2X1          = 0x5D
	OpDup2X2          = 0x5E
	OpSwap            = 0x5F
	OpIadd            = 0x60
	OpLadd            = 0x61
	OpFadd            = 0x62
	OpDadd            = 0x63
	OpIsub            = 0x64
	OpLsub            = 0x65
	OpFsub            = 0x66
	OpDsub            = 0x67
	OpImul            = 0x68
	OpLmul            = 0x69
	OpFmul            = 0x6A
	OpDmul            = 0x6B
	OpIdiv            = 0x6C
	OpLdiv            = 0x6D
	OpFdiv            = 0x6E
	OpDdiv            = 0x6F
	OpIrem            = 0x70
	OpLrem            = 0x71
	OpFrem            = 0x72
	OpDrem            = 0x73
	OpIneg            = 0x74
	OpLneg            = 0x75
	OpFneg            = 0x76
	OpDneg            = 0x77
	OpIshl            = 0x78
	OpLshl            = 0x79
	OpIshr            = 0x7A
	OpLshr            = 0x7B
	OpIushr           = 0x7C
	OpLushr           = 0x7D
	OpIand            = 0x7E
	OpLand            = 0x7F
	OpIor             = 0x80
	OpLor             = 0x81
	OpIxor            = 0x82
	OpLxor            = 0x83
	OpIinc            = 0x84
	OpI2l             = 0x85
	OpI2f             = 0x86
	OpI2d             = 0x87
	OpL2i             = 0x88
	OpL2f             = 0x89
	OpL2d             = 0x8A
	OpF2i             = 0x8B
	OpF2l             = 0x8C
	OpF2d             = 0x8D
	OpD2i             = 0x8E
	OpD2l             = 0x8F
	OpD2f             = 0x90
	OpI2b             = 0x91
	OpI2c             = 0x92
	OpI2s             = 0x93
	OpLcmp            = 0x94
	OpFcmpl           = 0x95
	OpFcmpg           = 0x96
	OpDcmpl           = 0x97
	OpDcmpg           = 0x98
	OpIfeq            = 0x99
	OpIfne            = 0x9A
	OpIflt            = 0x9B
	OpIfge            = 0x9C
	OpIfgt            = 0x9D
	OpIfle            = 0x9E
	OpIfIcmpeq        = 0x9F
	OpIfIcmpne        = 0xA0
	OpIfIcmplt        = 0xA1
	OpIfIcmpge        = 0xA2
	OpIfIcmpgt        = 0xA3
	OpIfIcmple        = 0xA4
	OpIfAcmpeq        = 0xA5
	OpIfAcmpne        = 0xA6
	OpGoto            = 0xA7
	OpJsr             = 0xA8
	OpRet             = 0xA9
	OpTableswitch     = 0xAA
	OpLookupswitch    = 0xAB
	OpIreturn         = 0xAC
	OpLreturn         = 0xAD
	OpFreturn         = 0xAE
	OpDreturn         = 0xAF
	OpAreturn         = 0xB0
	OpReturn          = 0xB1
	OpGetstatic       = 0xB2
	OpPutstatic       = 0xB3
	OpGetfield        = 0xB4
	OpPutfield        = 0xB5
	OpInvokevirtual   = 0xB6
	OpInvokespecial   = 0xB7
	OpInvokestatic    = 0xB8
	OpInvokeinterface = 0xB9
	OpNew             = 0xBB
	OpNewarray        = 0xBC
	OpAnewarray       = 0xBD
	OpArraylength     = 0xBE
	OpAthrow          = 0xBF
	OpCheckcast       = 0xC0
	OpInstanceof      = 0xC1
	OpMonitorenter    = 0xC2
	OpMonitorexit     = 0xC3
	OpWide            = 0xC4
	OpMultianewarray  = 0xC5
	OpIfnull          = 0xC6
	OpIfnonnull       = 0xC7
	OpGotoW           = 0xC8
	OpJsrW            = 0xC9
)

// OpNames maps opcodes to mnemonics; undefined opcodes map to "".
var OpNames = [256]string{
	OpNop: "nop", OpAconstNull: "aconst_null", OpIconstM1: "iconst_m1",
	OpIconst0: "iconst_0", OpIconst1: "iconst_1", OpIconst2: "iconst_2",
	OpIconst3: "iconst_3", OpIconst4: "iconst_4", OpIconst5: "iconst_5",
	OpLconst0: "lconst_0", OpLconst1: "lconst_1",
	OpFconst0: "fconst_0", OpFconst1: "fconst_1", OpFconst2: "fconst_2",
	OpDconst0: "dconst_0", OpDconst1: "dconst_1",
	OpBipush: "bipush", OpSipush: "sipush",
	OpLdc: "ldc", OpLdcW: "ldc_w", OpLdc2W: "ldc2_w",
	OpIload: "iload", OpLload: "lload", OpFload: "fload", OpDload: "dload", OpAload: "aload",
	OpIload0: "iload_0", OpIload1: "iload_1", OpIload2: "iload_2", OpIload3: "iload_3",
	OpLload0: "lload_0", OpLload1: "lload_1", OpLload2: "lload_2", OpLload3: "lload_3",
	OpFload0: "fload_0", OpFload1: "fload_1", OpFload2: "fload_2", OpFload3: "fload_3",
	OpDload0: "dload_0", OpDload1: "dload_1", OpDload2: "dload_2", OpDload3: "dload_3",
	OpAload0: "aload_0", OpAload1: "aload_1", OpAload2: "aload_2", OpAload3: "aload_3",
	OpIaload: "iaload", OpLaload: "laload", OpFaload: "faload", OpDaload: "daload",
	OpAaload: "aaload", OpBaload: "baload", OpCaload: "caload", OpSaload: "saload",
	OpIstore: "istore", OpLstore: "lstore", OpFstore: "fstore", OpDstore: "dstore", OpAstore: "astore",
	OpIstore0: "istore_0", OpIstore1: "istore_1", OpIstore2: "istore_2", OpIstore3: "istore_3",
	OpLstore0: "lstore_0", OpLstore1: "lstore_1", OpLstore2: "lstore_2", OpLstore3: "lstore_3",
	OpFstore0: "fstore_0", OpFstore1: "fstore_1", OpFstore2: "fstore_2", OpFstore3: "fstore_3",
	OpDstore0: "dstore_0", OpDstore1: "dstore_1", OpDstore2: "dstore_2", OpDstore3: "dstore_3",
	OpAstore0: "astore_0", OpAstore1: "astore_1", OpAstore2: "astore_2", OpAstore3: "astore_3",
	OpIastore: "iastore", OpLastore: "lastore", OpFastore: "fastore", OpDastore: "dastore",
	OpAastore: "aastore", OpBastore: "bastore", OpCastore: "castore", OpSastore: "sastore",
	OpPop: "pop", OpPop2: "pop2", OpDup: "dup", OpDupX1: "dup_x1", OpDupX2: "dup_x2",
	OpDup2: "dup2", OpDup2X1: "dup2_x1", OpDup2X2: "dup2_x2", OpSwap: "swap",
	OpIadd: "iadd", OpLadd: "ladd", OpFadd: "fadd", OpDadd: "dadd",
	OpIsub: "isub", OpLsub: "lsub", OpFsub: "fsub", OpDsub: "dsub",
	OpImul: "imul", OpLmul: "lmul", OpFmul: "fmul", OpDmul: "dmul",
	OpIdiv: "idiv", OpLdiv: "ldiv", OpFdiv: "fdiv", OpDdiv: "ddiv",
	OpIrem: "irem", OpLrem: "lrem", OpFrem: "frem", OpDrem: "drem",
	OpIneg: "ineg", OpLneg: "lneg", OpFneg: "fneg", OpDneg: "dneg",
	OpIshl: "ishl", OpLshl: "lshl", OpIshr: "ishr", OpLshr: "lshr",
	OpIushr: "iushr", OpLushr: "lushr",
	OpIand: "iand", OpLand: "land", OpIor: "ior", OpLor: "lor", OpIxor: "ixor", OpLxor: "lxor",
	OpIinc: "iinc",
	OpI2l:  "i2l", OpI2f: "i2f", OpI2d: "i2d", OpL2i: "l2i", OpL2f: "l2f", OpL2d: "l2d",
	OpF2i: "f2i", OpF2l: "f2l", OpF2d: "f2d", OpD2i: "d2i", OpD2l: "d2l", OpD2f: "d2f",
	OpI2b: "i2b", OpI2c: "i2c", OpI2s: "i2s",
	OpLcmp: "lcmp", OpFcmpl: "fcmpl", OpFcmpg: "fcmpg", OpDcmpl: "dcmpl", OpDcmpg: "dcmpg",
	OpIfeq: "ifeq", OpIfne: "ifne", OpIflt: "iflt", OpIfge: "ifge", OpIfgt: "ifgt", OpIfle: "ifle",
	OpIfIcmpeq: "if_icmpeq", OpIfIcmpne: "if_icmpne", OpIfIcmplt: "if_icmplt",
	OpIfIcmpge: "if_icmpge", OpIfIcmpgt: "if_icmpgt", OpIfIcmple: "if_icmple",
	OpIfAcmpeq: "if_acmpeq", OpIfAcmpne: "if_acmpne",
	OpGoto: "goto", OpJsr: "jsr", OpRet: "ret",
	OpTableswitch: "tableswitch", OpLookupswitch: "lookupswitch",
	OpIreturn: "ireturn", OpLreturn: "lreturn", OpFreturn: "freturn",
	OpDreturn: "dreturn", OpAreturn: "areturn", OpReturn: "return",
	OpGetstatic: "getstatic", OpPutstatic: "putstatic",
	OpGetfield: "getfield", OpPutfield: "putfield",
	OpInvokevirtual: "invokevirtual", OpInvokespecial: "invokespecial",
	OpInvokestatic: "invokestatic", OpInvokeinterface: "invokeinterface",
	OpNew: "new", OpNewarray: "newarray", OpAnewarray: "anewarray",
	OpArraylength: "arraylength", OpAthrow: "athrow",
	OpCheckcast: "checkcast", OpInstanceof: "instanceof",
	OpMonitorenter: "monitorenter", OpMonitorexit: "monitorexit",
	OpWide: "wide", OpMultianewarray: "multianewarray",
	OpIfnull: "ifnull", OpIfnonnull: "ifnonnull",
	OpGotoW: "goto_w", OpJsrW: "jsr_w",
}

// InstructionCount is the number of defined opcodes — the "201
// bytecode instructions specified in the second edition of the Java
// Virtual Machine Specification" that §6 cites.
func InstructionCount() int {
	n := 0
	for _, name := range OpNames {
		if name != "" {
			n++
		}
	}
	return n
}

// InstrLen returns the total byte length of the instruction starting
// at pc (including the opcode), handling the variable-length
// tableswitch, lookupswitch and wide forms.
func InstrLen(code []byte, pc int) int {
	op := code[pc]
	switch op {
	case OpBipush, OpLdc, OpIload, OpLload, OpFload, OpDload, OpAload,
		OpIstore, OpLstore, OpFstore, OpDstore, OpAstore, OpRet, OpNewarray:
		return 2
	case OpSipush, OpLdcW, OpLdc2W, OpIinc,
		OpIfeq, OpIfne, OpIflt, OpIfge, OpIfgt, OpIfle,
		OpIfIcmpeq, OpIfIcmpne, OpIfIcmplt, OpIfIcmpge, OpIfIcmpgt, OpIfIcmple,
		OpIfAcmpeq, OpIfAcmpne, OpGoto, OpJsr,
		OpGetstatic, OpPutstatic, OpGetfield, OpPutfield,
		OpInvokevirtual, OpInvokespecial, OpInvokestatic,
		OpNew, OpAnewarray, OpCheckcast, OpInstanceof,
		OpIfnull, OpIfnonnull:
		return 3
	case OpMultianewarray:
		return 4
	case OpInvokeinterface, OpGotoW, OpJsrW:
		return 5
	case OpWide:
		if code[pc+1] == OpIinc {
			return 6
		}
		return 4
	case OpTableswitch:
		base := (pc + 4) &^ 3 // skip padding to 4-byte alignment
		low := int(int32(be32(code, base+4)))
		high := int(int32(be32(code, base+8)))
		return base + 12 + 4*(high-low+1) - pc
	case OpLookupswitch:
		base := (pc + 4) &^ 3
		n := int(int32(be32(code, base+4)))
		return base + 8 + 8*n - pc
	default:
		return 1
	}
}

func be32(b []byte, i int) uint32 {
	return uint32(b[i])<<24 | uint32(b[i+1])<<16 | uint32(b[i+2])<<8 | uint32(b[i+3])
}

func be16(b []byte, i int) uint16 {
	return uint16(b[i])<<8 | uint16(b[i+1])
}

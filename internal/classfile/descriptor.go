package classfile

import "fmt"

// ParseMethodDesc splits a method descriptor like
// "(IJLjava/lang/String;[B)V" into parameter type descriptors and the
// return type descriptor.
func ParseMethodDesc(desc string) (params []string, ret string, err error) {
	if len(desc) < 3 || desc[0] != '(' {
		return nil, "", fmt.Errorf("classfile: bad method descriptor %q", desc)
	}
	i := 1
	for i < len(desc) && desc[i] != ')' {
		start := i
		for desc[i] == '[' {
			i++
			if i >= len(desc) {
				return nil, "", fmt.Errorf("classfile: bad method descriptor %q", desc)
			}
		}
		switch desc[i] {
		case 'B', 'C', 'D', 'F', 'I', 'J', 'S', 'Z':
			i++
		case 'L':
			for i < len(desc) && desc[i] != ';' {
				i++
			}
			if i >= len(desc) {
				return nil, "", fmt.Errorf("classfile: bad method descriptor %q", desc)
			}
			i++
		default:
			return nil, "", fmt.Errorf("classfile: bad type in descriptor %q", desc)
		}
		params = append(params, desc[start:i])
	}
	if i >= len(desc) || desc[i] != ')' || i+1 >= len(desc) {
		return nil, "", fmt.Errorf("classfile: bad method descriptor %q", desc)
	}
	return params, desc[i+1:], nil
}

// SlotCount returns how many local-variable/operand slots a type
// descriptor occupies (2 for long and double, 1 otherwise).
func SlotCount(typeDesc string) int {
	if typeDesc == "J" || typeDesc == "D" {
		return 2
	}
	return 1
}

// ArgSlots returns the total argument slots of a method descriptor
// (excluding the receiver).
func ArgSlots(desc string) (int, error) {
	params, _, err := ParseMethodDesc(desc)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range params {
		n += SlotCount(p)
	}
	return n, nil
}

package fleet_test

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"doppio/internal/core"
	"doppio/internal/fleet"
	"doppio/internal/telemetry"
	"doppio/internal/vfs"
)

// yieldTenant builds a friendly tenant: a scheduler thread that
// yields `slices` times and exits. It is the fleet's unit workload —
// cheap, loop-respectful, finishes on its own.
func yieldTenant(label string, slices int) fleet.Tenant {
	return fleet.Tenant{
		Label: label,
		Start: func(env *fleet.Env, done func(error)) (*fleet.Handle, error) {
			rt := core.NewRuntime(env.Win.Loop, core.Config{Telemetry: env.Hub})
			n := 0
			th := rt.Spawn(label, core.RunnableFunc(func(t *core.Thread) core.RunResult {
				n++
				if n >= slices {
					return core.Done
				}
				return core.Yield
			}))
			rt.OnIdle(func() { done(nil) })
			rt.Start()
			return &fleet.Handle{Runtime: rt, Kill: th.Kill}, nil
		},
	}
}

// hogTenant builds a misbehaving tenant: every slice burns real CPU
// for `burn` and never finishes. Only eviction stops it.
func hogTenant(label string, burn time.Duration) fleet.Tenant {
	return fleet.Tenant{
		Label: label,
		Start: func(env *fleet.Env, done func(error)) (*fleet.Handle, error) {
			rt := core.NewRuntime(env.Win.Loop, core.Config{Telemetry: env.Hub})
			th := rt.Spawn(label, core.RunnableFunc(func(t *core.Thread) core.RunResult {
				deadline := time.Now().Add(burn)
				for time.Now().Before(deadline) {
				}
				return core.Yield
			}))
			rt.OnIdle(func() { done(nil) })
			rt.Start()
			return &fleet.Handle{Runtime: rt, Kill: th.Kill}, nil
		},
	}
}

func TestSupervisorRunsTenantsToCompletion(t *testing.T) {
	hub := telemetry.NewHub().EnableFlight(256)
	sup := fleet.NewSupervisor(fleet.Config{Shards: 2, Hub: hub})
	defer sup.Close()

	const n = 32
	refs := make([]*fleet.TenantRef, 0, n)
	for i := 0; i < n; i++ {
		ref, err := sup.Submit(yieldTenant(fmt.Sprintf("t%02d", i), 50))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		refs = append(refs, ref)
	}
	sup.Wait()

	shardsUsed := map[int]bool{}
	for _, ref := range refs {
		if st := ref.State(); st != fleet.StateDone {
			t.Errorf("%s: state %s, err %v", ref.Label(), st, ref.Err())
		}
		if ref.Latency() <= 0 {
			t.Errorf("%s: non-positive latency %v", ref.Label(), ref.Latency())
		}
		shardsUsed[ref.Shard()] = true
	}
	if len(shardsUsed) != 2 {
		t.Errorf("placement used %d shards, want 2", len(shardsUsed))
	}
	if got := hub.Registry.Counter("fleet", "completed").Value(); got != n {
		t.Errorf("fleet/completed = %d, want %d", got, n)
	}
	if got := hub.Registry.Gauge("fleet", "live").Value(); got != 0 {
		t.Errorf("fleet/live = %d after Wait, want 0", got)
	}
	snap := sup.Snapshot()
	if snap.Completed != n || snap.Live != 0 || snap.Admitted != n {
		t.Errorf("snapshot %+v", snap)
	}
}

func TestAdmissionControl(t *testing.T) {
	block := make(chan struct{})
	slow := fleet.Tenant{
		Label:  "slow",
		Budget: fleet.Budget{HeapBytes: 1 << 20, MaxFDs: 8, CacheBytes: 1 << 16},
		Start: func(env *fleet.Env, done func(error)) (*fleet.Handle, error) {
			env.Win.Loop.AddPending()
			go func() {
				<-block
				env.Win.Loop.InvokeExternal("slow-finish", func() {
					env.Win.Loop.DonePending()
					done(nil)
				})
			}()
			return nil, nil
		},
	}
	sup := fleet.NewSupervisor(fleet.Config{
		Shards:        1,
		MaxTenants:    1,
		HeapCapacity:  1 << 20,
		FDCapacity:    8,
		CacheCapacity: 1 << 16,
	})
	defer sup.Close()

	if _, err := sup.Submit(slow); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err := sup.Submit(slow)
	var adm *fleet.AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("second submit: got %v, want AdmissionError", err)
	}
	if !strings.Contains(adm.Reason, "fleet full") {
		t.Errorf("reason %q", adm.Reason)
	}
	close(block)
	sup.Wait()

	// Capacity released: the same budgets are admissible again.
	block = make(chan struct{})
	close(block)
	if _, err := sup.Submit(slow); err != nil {
		t.Fatalf("submit after release: %v", err)
	}
	sup.Wait()
	snap := sup.Snapshot()
	if snap.Rejected != 1 || snap.Completed != 2 {
		t.Errorf("rejected %d completed %d, want 1, 2", snap.Rejected, snap.Completed)
	}
}

// TestEvictionIsolation is the acceptance test for the misbehaving-
// tenant story: a CPU hog placed among friendly tenants is evicted by
// its budget while the friendly tenants all complete, and their tail
// latency stays within an order-of-magnitude bound of a hog-free run.
func TestEvictionIsolation(t *testing.T) {
	latencies := func(withHog bool) ([]time.Duration, *fleet.TenantRef) {
		hub := telemetry.NewHub().EnableFlight(256)
		sup := fleet.NewSupervisor(fleet.Config{Shards: 2, Hub: hub})
		defer sup.Close()
		var hog *fleet.TenantRef
		if withHog {
			spec := hogTenant("hog", 2*time.Millisecond)
			spec.Budget.CPU = 10 * time.Millisecond
			var err error
			hog, err = sup.Submit(spec)
			if err != nil {
				t.Fatalf("submit hog: %v", err)
			}
		}
		refs := make([]*fleet.TenantRef, 0, 16)
		for i := 0; i < 16; i++ {
			ref, err := sup.Submit(yieldTenant(fmt.Sprintf("friendly%02d", i), 100))
			if err != nil {
				t.Fatalf("submit friendly %d: %v", i, err)
			}
			refs = append(refs, ref)
		}
		sup.Wait()
		out := make([]time.Duration, 0, len(refs))
		for _, ref := range refs {
			if st := ref.State(); st != fleet.StateDone {
				t.Errorf("%s: state %s, err %v", ref.Label(), st, ref.Err())
			}
			out = append(out, ref.Latency())
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, hog
	}

	base, _ := latencies(false)
	got, hog := latencies(true)

	if st := hog.State(); st != fleet.StateEvicted {
		t.Fatalf("hog state %s, want evicted (err %v)", st, hog.Err())
	}
	var evictErr *fleet.EvictionError
	if !errors.As(hog.Err(), &evictErr) {
		t.Fatalf("hog err %v, want EvictionError", hog.Err())
	}
	p99base := base[len(base)*99/100]
	p99got := got[len(got)*99/100]
	// Generous bound: the hog must not wreck the friendly tail. It
	// shares one shard until eviction, so some interference is
	// expected; an unbounded hog would push p99 out by seconds.
	limit := p99base*10 + 100*time.Millisecond
	if p99got > limit {
		t.Errorf("friendly p99 %v with hog vs %v without (limit %v)", p99got, p99base, limit)
	}
}

func TestStallEviction(t *testing.T) {
	sup := fleet.NewSupervisor(fleet.Config{
		Shards:      1,
		StallBudget: 2 * time.Millisecond,
		StallCount:  1,
	})
	defer sup.Close()

	// Burns 5ms per slice — every macrotask blows the 2ms stall
	// budget, so the stall monitor fires on the first over-budget
	// task even though no CPU budget is set.
	ref, err := sup.Submit(hogTenant("staller", 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ref.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("staller never evicted")
	}
	if st := ref.State(); st != fleet.StateEvicted {
		t.Fatalf("state %s, want evicted (err %v)", st, ref.Err())
	}
	if !strings.Contains(ref.Err().Error(), "stalled") {
		t.Errorf("err %v, want stall reason", ref.Err())
	}
	snap := sup.Snapshot()
	if len(snap.Evictions) != 1 || snap.Evictions[0].Label != "staller" {
		t.Errorf("eviction log %+v", snap.Evictions)
	}
}

// TestEvictionReclaimsResources proves SIGKILL-style teardown: the
// evicted tenant's fds are closed and its labeled metric series are
// dropped from the registry.
func TestEvictionReclaimsResources(t *testing.T) {
	hub := telemetry.NewHub().EnableFlight(256)
	sup := fleet.NewSupervisor(fleet.Config{Shards: 1, Hub: hub})
	defer sup.Close()

	var leakyFS *vfs.FS
	spec := fleet.Tenant{
		Label:  "leaky",
		Budget: fleet.Budget{CPU: 10 * time.Millisecond, MaxFDs: 16, CacheBytes: 1 << 16},
		Start: func(env *fleet.Env, done func(error)) (*fleet.Handle, error) {
			fs := env.NewFS(env.Root)
			leakyFS = fs
			fs.Open("/leak.txt", "w", func(fd *vfs.FD, err error) {
				if err != nil {
					t.Errorf("open: %v", err)
				}
			})
			rt := core.NewRuntime(env.Win.Loop, core.Config{Telemetry: env.Hub})
			th := rt.Spawn("leaky", core.RunnableFunc(func(t *core.Thread) core.RunResult {
				deadline := time.Now().Add(2 * time.Millisecond)
				for time.Now().Before(deadline) {
				}
				return core.Yield
			}))
			rt.OnIdle(func() { done(nil) })
			rt.Start()
			return &fleet.Handle{Runtime: rt, FS: fs, Kill: th.Kill}, nil
		},
	}
	ref, err := sup.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ref.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("leaky never evicted")
	}
	if st := ref.State(); st != fleet.StateEvicted {
		t.Fatalf("state %s, want evicted (err %v)", st, ref.Err())
	}
	sup.Close() // joins the shard loops — safe to inspect FS after

	if n := leakyFS.OpenFDs(); n != 0 {
		t.Errorf("%d fds still open after eviction", n)
	}
	for _, c := range hub.Registry.Snapshot().Counters {
		if c.Label == "leaky" {
			t.Errorf("labeled counter %s/%s survived eviction", c.Subsystem, c.Name)
		}
	}
	for _, g := range hub.Registry.Snapshot().Gauges {
		if g.Label == "leaky" {
			t.Errorf("labeled gauge %s/%s survived eviction", g.Subsystem, g.Name)
		}
	}
}

func TestConcurrentSubmitRace(t *testing.T) {
	sup := fleet.NewSupervisor(fleet.Config{Shards: 4})
	defer sup.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				ref, err := sup.Submit(yieldTenant(fmt.Sprintf("g%d-t%d", g, i), 20))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				<-ref.Done()
			}
		}(g)
	}
	wg.Wait()
	sup.Wait()
	snap := sup.Snapshot()
	if snap.Completed != 64 {
		t.Errorf("completed %d, want 64", snap.Completed)
	}
}

// Regression: the shard observables (live, load) must settle to
// exactly zero after every tenant finishes. The old implementation
// mixed Add(-1) at release with the monitor tick's Store, so churn
// drove the counters negative — visibly in /debug/fleet and, worse,
// in the placement signal.
func TestShardCountersSettleToZero(t *testing.T) {
	sup := fleet.NewSupervisor(fleet.Config{
		Shards:          2,
		MonitorInterval: 2 * time.Millisecond,
	})
	defer sup.Close()

	for round := 0; round < 4; round++ {
		for i := 0; i < 16; i++ {
			if _, err := sup.Submit(yieldTenant(fmt.Sprintf("r%d-t%02d", round, i), 10)); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
		sup.Wait()
	}

	// live is Store-only, refreshed by the next monitor tick; give the
	// ticks a moment to observe the drained shards.
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := sup.Snapshot()
		settled := true
		for _, sh := range snap.Shards {
			if sh.Live < 0 || sh.Load < 0 {
				t.Fatalf("shard %d counters negative: live %d load %d", sh.Index, sh.Live, sh.Load)
			}
			if sh.Live != 0 || sh.Load != 0 {
				settled = false
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard counters never settled to zero: %+v", snap.Shards)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSnapshotFormat(t *testing.T) {
	sup := fleet.NewSupervisor(fleet.Config{Shards: 2})
	defer sup.Close()
	if _, err := sup.Submit(yieldTenant("fmt-tenant", 10)); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
	text := sup.Snapshot().Format()
	for _, want := range []string{"=== FLEET (2 shards", "fmt-tenant", "done", "shard  live"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format() missing %q:\n%s", want, text)
		}
	}
}

func TestDrive(t *testing.T) {
	env := fleet.NewEnv(fleet.DefaultProfile(), nil)
	ran := false
	err := fleet.Drive(env.Win.Loop, "drive-test", func(done func(error)) {
		env.Win.Loop.SetTimeout(func() {
			ran = true
			done(nil)
		}, time.Millisecond)
	})
	if err != nil || !ran {
		t.Fatalf("Drive: err %v, ran %v", err, ran)
	}

	env2 := fleet.NewEnv(fleet.DefaultProfile(), nil)
	err = fleet.Drive(env2.Win.Loop, "drive-wedge", func(done func(error)) {})
	if err == nil || !strings.Contains(err.Error(), "drained before the workload completed") {
		t.Fatalf("Drive on wedged workload: %v", err)
	}
}

// Package fleet is the multi-tenant hosting layer: it runs many
// isolated Doppio tenants — JVM or MiniC VMs, or whole proc pipelines
// — across a pool of shards, one eventloop.Loop per shard pinned to
// its own goroutine.
//
// The paper's runtime is browser-shaped: one event loop, driven
// serially, one VM at a time. Serving many users means carving that
// shape into parallel isolated units (the Servo experience report's
// lesson) without giving up the single-threaded semantics each VM
// depends on. The fleet keeps both properties: within a shard
// everything is still one goroutine of run-to-completion macrotasks,
// so VMs need no locks; across shards the loops run genuinely in
// parallel.
//
// The pieces:
//
//   - Env is the tenant-construction environment: a browser window,
//     buffer factory, telemetry hub, and (under a supervisor) the
//     tenant's label, shard, root backend, and budget. NewEnv is also
//     the shared harness constructor — bench and the cmd binaries
//     build their single windows with it.
//   - Drive is the shared runner: post a workload onto a loop, run the
//     loop to completion, and distinguish "finished", "watchdog
//     killed", and "loop drained before the workload completed".
//   - Tenant + StartFunc describe a workload abstractly; the package
//     never imports a VM, so anything that can run on a loop — a JVM,
//     a MiniC VM, a dsh pipeline — can be a tenant.
//   - Shard hosts tenants on one loop: a repeating monitor tick
//     publishes per-tenant observables (CPU, heap, fds, run-queue
//     depth), enforces CPU budgets, and feeds the placement signal.
//   - Supervisor owns the shards: admission control against fleet
//     capacities, least-loaded placement keyed off run-queue depth,
//     graceful eviction with SIGKILL-style teardown (kill the VM,
//     drop its fds, invalidate its cache pages), and the /debug/fleet
//     snapshot.
package fleet

import (
	"fmt"
	"time"

	"doppio/internal/browser"
	"doppio/internal/buffer"
	"doppio/internal/core"
	"doppio/internal/eventloop"
	"doppio/internal/profile"
	"doppio/internal/telemetry"
	"doppio/internal/umheap"
	"doppio/internal/vfs"
)

// Budget is a tenant's resource allowance. Zero fields are unlimited.
type Budget struct {
	// CPU is the cumulative execution-time allowance; a tenant whose
	// scheduler has consumed more is evicted at the next monitor tick.
	CPU time.Duration
	// BatchBudget is the per-macrotask responsiveness budget the
	// tenant's core.Runtime should run under (how long one scheduler
	// batch may hog the shard's loop). The StartFunc passes it to the
	// VM; the supervisor sizes it so hostile tenants cannot freeze a
	// shard between monitor ticks.
	BatchBudget time.Duration
	// Priority is the run-queue level the tenant's threads start at.
	Priority int
	// HeapBytes sizes the tenant's unmanaged heap; admission counts it
	// against the fleet's HeapCapacity.
	HeapBytes int
	// MaxFDs caps simultaneously open descriptors on the tenant's FS
	// front end (EMFILE past it); admission counts it against
	// FDCapacity.
	MaxFDs int
	// CacheBytes is the byte budget for the tenant's private VFS page
	// cache; zero mounts the root uncached.
	CacheBytes int
}

// Handle is what a started tenant exposes to its shard's monitor:
// the pieces the supervisor observes (budget consumption, run-queue
// depth) and controls (teardown). Any field may be nil — a tenant is
// monitored only as far as it is observable.
type Handle struct {
	// Runtime is the tenant's scheduler (CPU time, run-queue depth).
	// Pipeline tenants with several runtimes report their primary one.
	Runtime *core.Runtime
	// Heap is the tenant's unmanaged heap (budget consumption).
	Heap *umheap.Heap
	// FS is the tenant's file-system front end; eviction reclaims its
	// descriptors with CloseAll.
	FS *vfs.FS
	// Kill force-terminates the tenant — the SIGKILL. After Kill the
	// tenant's done callback may never fire; the supervisor finishes
	// the bookkeeping itself.
	Kill func()
}

// StartFunc launches a tenant's workload on env's event loop. It is
// called on the shard's loop goroutine and must not block: start the
// VM (or pipeline) and return its handle; call done exactly once, on
// the loop, when the workload finishes. The fleet package stays
// VM-agnostic — bench and dsh supply the constructors.
type StartFunc func(env *Env, done func(error)) (*Handle, error)

// Tenant describes one workload to host.
type Tenant struct {
	// Label names the tenant in telemetry, flight events, the
	// eviction log, and /debug/fleet.
	Label  string
	Budget Budget
	Start  StartFunc
}

// Env is the tenant-construction environment: everything a StartFunc
// needs to build a VM. Outside a supervisor it doubles as the shared
// harness environment — NewEnv replaces the hand-rolled
// window+buffer-factory blocks bench and the cmd binaries used to
// carry.
type Env struct {
	Win  *browser.Window
	Bufs *buffer.Factory
	Hub  *telemetry.Hub

	// Label, Shard, Root, and Budget are set by the supervisor for
	// tenant starts: the tenant's name, its shard index, its private
	// root backend (already cache-wrapped per Budget.CacheBytes), and
	// its allowance.
	Label  string
	Shard  int
	Root   vfs.Backend
	Budget Budget

	// Prof is the tenant's continuous guest profiler, set by the
	// supervisor when the fleet runs with Config.Profiling. StartFuncs
	// pass it to their VM's options (DoppioOptions/NativeOptions/
	// minic.VMOptions all take a Profiler); nil means profiling off,
	// which every profiler entry point treats as a no-op.
	Prof *profile.Profiler
}

// DefaultProfile is the profile the fleet (and the shared harness
// environments built on NewEnv) runs under when the caller does not
// pick one: Chrome 28, the paper's primary evaluation target.
func DefaultProfile() browser.Profile {
	p, _ := browser.ByName("Chrome 28")
	return p
}

// NewEnv builds a browser window for the profile with the standard
// buffer factory, attached to hub when non-nil.
func NewEnv(profile browser.Profile, hub *telemetry.Hub) *Env {
	win := browser.NewWindow(profile)
	if hub != nil {
		win.EnableTelemetry(hub)
	}
	return &Env{
		Win: win,
		Bufs: &buffer.Factory{
			Typed:            win.Profile.HasTypedArrays,
			ValidatesStrings: win.Profile.ValidatesStrings,
			OnTypedAlloc:     win.NoteTypedArrayAlloc,
		},
		Hub: hub,
	}
}

// NewFS builds a file-system front end over root, on this
// environment's loop and buffer factory.
func (e *Env) NewFS(root vfs.Backend) *vfs.FS {
	return vfs.New(e.Win.Loop, e.Bufs, root)
}

// Drive is the shared single-loop runner: it posts start onto the
// loop, runs the loop until it drains (or the watchdog kills it), and
// reports the workload's outcome. start receives a done callback to
// invoke (once, on the loop) when the workload completes; a loop that
// drains without done having fired is an error — the workload wedged.
// This is the driver block bench, doppio-bench, and dsh used to
// hand-roll around every win.Loop.Run() call.
func Drive(loop *eventloop.Loop, label string, start func(done func(error))) error {
	finished := false
	var runErr error
	loop.Post(label, func() {
		start(func(err error) {
			if finished {
				return
			}
			finished = true
			runErr = err
		})
	})
	if err := loop.Run(); err != nil {
		return err
	}
	if !finished {
		return fmt.Errorf("fleet: %s: event loop drained before the workload completed", label)
	}
	return runErr
}

// TenantState is a tenant's lifecycle state.
type TenantState string

const (
	// StatePending is admitted but not yet started on its shard.
	StatePending TenantState = "pending"
	// StateRunning is live on a shard.
	StateRunning TenantState = "running"
	// StateDone completed normally (its done callback fired nil).
	StateDone TenantState = "done"
	// StateFailed completed with an error (or failed to start).
	StateFailed TenantState = "failed"
	// StateEvicted was torn down by the supervisor for exceeding its
	// budget or stalling its shard.
	StateEvicted TenantState = "evicted"
)

// AdmissionError reports a Submit the supervisor refused.
type AdmissionError struct {
	Label  string
	Reason string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("fleet: tenant %q refused admission: %s", e.Label, e.Reason)
}

// EvictionError is the error an evicted tenant's waiters observe.
type EvictionError struct {
	Label  string
	Reason string
}

func (e *EvictionError) Error() string {
	return fmt.Sprintf("fleet: tenant %q evicted: %s", e.Label, e.Reason)
}

// TenantRef is the caller's view of a submitted tenant.
type TenantRef struct {
	t *tenant
}

// Label returns the tenant's label.
func (r *TenantRef) Label() string { return r.t.spec.Label }

// Shard returns the index of the shard the tenant was placed on.
func (r *TenantRef) Shard() int { return r.t.shard.index }

// Done is closed when the tenant reaches a terminal state.
func (r *TenantRef) Done() <-chan struct{} { return r.t.doneCh }

// Err returns the tenant's outcome: nil for StateDone, the workload
// error for StateFailed, an *EvictionError for StateEvicted. Valid
// once Done is closed.
func (r *TenantRef) Err() error { return r.t.err }

// State returns the tenant's current lifecycle state.
func (r *TenantRef) State() TenantState {
	r.t.sup.mu.Lock()
	defer r.t.sup.mu.Unlock()
	return r.t.state
}

// Latency is submit-to-finish wall clock; valid once Done is closed.
func (r *TenantRef) Latency() time.Duration {
	return r.t.finishedAt.Sub(r.t.submittedAt)
}

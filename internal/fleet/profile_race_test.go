package fleet_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"doppio/internal/fleet"
	"doppio/internal/jvm"
	"doppio/internal/jvm/rt"
)

// profSpinSource is a tenant workload for the profiling tests: a hot
// loop through named methods with steady allocation, so the CPU and
// alloc profiles both have something to attribute — and it never
// exits, so only eviction stops it.
const profSpinSource = `
class Work {
    int acc;
    int churn(int i) {
        int[] a = new int[8];
        for (int j = 0; j < a.length; j++) { a[j] = i ^ j; }
        for (int j = 0; j < a.length; j++) { acc = acc * 31 + a[j]; }
        return acc;
    }
}
public class Main {
    public static void main(String[] args) {
        Work w = new Work();
        int i = 0;
        while (true) {
            w.churn(i);
            i++;
        }
    }
}`

// jvmSpinTenant builds a tenant running profSpinSource on a Doppio
// JVM wired to the fleet's per-tenant profiler (Env.Prof).
func jvmSpinTenant(label string, classes map[string][]byte, budget time.Duration) fleet.Tenant {
	return fleet.Tenant{
		Label:  label,
		Budget: fleet.Budget{CPU: budget},
		Start: func(env *fleet.Env, done func(error)) (*fleet.Handle, error) {
			vm := jvm.NewDoppioVM(env.Win, jvm.DoppioOptions{
				Provider:         jvm.MapProvider(classes),
				Timeslice:        2 * time.Millisecond,
				HeapSize:         512 << 10,
				DisableEngineTax: true,
				Profiler:         env.Prof,
			})
			vm.StartMain("Main", nil, done)
			return &fleet.Handle{Runtime: vm.Runtime(), Heap: vm.Heap(),
				Kill: func() { vm.Exit(137) }}, nil
		},
	}
}

// tenantHotWeight sums one tenant's sampled CPU nanoseconds in a
// snapshot (0 if absent or unsampled).
func tenantHotWeight(snap fleet.FleetSnapshot, label string) int64 {
	for _, ti := range snap.Tenants {
		if ti.Label != label {
			continue
		}
		var sum int64
		for _, m := range ti.HotMethods {
			sum += m.Value
		}
		return sum
	}
	return 0
}

// TestProfilingFleetEviction samples a profiling fleet mid-eviction,
// under -race in CI: a spinning JVM tenant is evicted on its CPU
// budget while the test goroutine hammers Snapshot/Format (which read
// the tenant's profiler cross-goroutine). After the eviction the dead
// tenant's profile must stop growing — eviction killed the VM, which
// was the only sample source — and the shard must keep running
// tenants to completion (not wedged).
func TestProfilingFleetEviction(t *testing.T) {
	classes, err := rt.CompileWith(map[string]string{"Main.mj": profSpinSource})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sup := fleet.NewSupervisor(fleet.Config{
		Shards:          2,
		Profiling:       true,
		ProfileInterval: 200 * time.Microsecond,
	})
	defer sup.Close()

	hog, err := sup.Submit(jvmSpinTenant("hog", classes, 15*time.Millisecond))
	if err != nil {
		t.Fatalf("submit hog: %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := sup.Submit(yieldTenant(fmt.Sprintf("friendly%02d", i), 200)); err != nil {
			t.Fatalf("submit friendly %d: %v", i, err)
		}
	}

	// Concurrent readers: the race detector checks that reading the
	// hog's profile while its VM samples into it is clean.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := sup.Snapshot()
				_ = snap.Format()
			}
		}()
	}

	select {
	case <-hog.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("hog never evicted")
	}
	if st := hog.State(); st != fleet.StateEvicted {
		t.Fatalf("hog state %s, want evicted (err %v)", st, hog.Err())
	}

	// The evicted tenant's profile was populated while it lived...
	after := sup.Snapshot()
	weight := tenantHotWeight(after, "hog")
	if weight == 0 {
		t.Error("evicted tenant folded no CPU samples while alive")
	}
	sawGuest := false
	for _, ti := range after.Tenants {
		if ti.Label != "hog" {
			continue
		}
		for _, m := range ti.HotMethods {
			if strings.HasPrefix(m.Method, "Work.churn") || strings.HasPrefix(m.Method, "Main.main") {
				sawGuest = true
			}
		}
	}
	if !sawGuest {
		t.Errorf("hog hot methods carry no guest names: %+v", after.Tenants)
	}

	// ...and stops growing once the VM is dead: no samples are
	// attributed to an evicted tenant.
	time.Sleep(50 * time.Millisecond)
	if again := tenantHotWeight(sup.Snapshot(), "hog"); again != weight {
		t.Errorf("dead tenant's profile grew after eviction: %d -> %d", weight, again)
	}

	// The shard the hog occupied is not wedged: a fresh batch still
	// runs to completion.
	refs := make([]*fleet.TenantRef, 0, 4)
	for i := 0; i < 4; i++ {
		ref, err := sup.Submit(yieldTenant(fmt.Sprintf("late%02d", i), 50))
		if err != nil {
			t.Fatalf("submit late %d: %v", i, err)
		}
		refs = append(refs, ref)
	}
	sup.Wait()
	close(stop)
	readers.Wait()
	for _, ref := range refs {
		if st := ref.State(); st != fleet.StateDone {
			t.Errorf("%s: state %s, err %v", ref.Label(), st, ref.Err())
		}
	}
}

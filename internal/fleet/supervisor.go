package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"doppio/internal/browser"
	"doppio/internal/profile"
	"doppio/internal/telemetry"
	"doppio/internal/vfs"
)

// Config sizes a Supervisor. Zero values take the documented defaults;
// zero capacities are unlimited.
type Config struct {
	// Shards is the number of event loops (and goroutines) to host
	// tenants on. Default: runtime.NumCPU().
	Shards int
	// Profile is the browser profile every shard window runs under.
	// Its watchdog limit is forced to 0 — a hosted tenant must not be
	// able to kill a whole shard. Default: Chrome 28.
	Profile browser.Profile
	// Hub receives fleet metrics, per-tenant labeled series, and
	// flight events. Optional.
	Hub *telemetry.Hub

	// MaxTenants caps live tenants fleet-wide; MaxTenantsPerShard caps
	// them per shard. HeapCapacity, FDCapacity, and CacheCapacity cap
	// the sum of admitted budgets (Budget.HeapBytes / MaxFDs /
	// CacheBytes). Submits past a cap are refused with AdmissionError.
	MaxTenants         int
	MaxTenantsPerShard int
	HeapCapacity       int
	FDCapacity         int
	CacheCapacity      int

	// MonitorInterval is the shard heartbeat — the granularity of
	// budget enforcement and placement-signal refresh. Default: 2ms
	// (clamped up by the profile's minimum timeout delay).
	MonitorInterval time.Duration
	// StallBudget/StallCount arm each shard's stall monitor: after
	// StallCount consecutive macrotasks over StallBudget, the tenant
	// with the largest CPU growth since the last heartbeat is evicted.
	// StallBudget 0 disarms. Note that the shard's own (fast) monitor
	// heartbeat runs between tenant macrotasks and resets the loop's
	// over-budget streak, so counts above 1 effectively require a
	// single macrotask to blow the budget StallCount times in a row
	// without the heartbeat timer coming due — in practice, arm with
	// StallCount 1 and size StallBudget well above the batch budget.
	StallBudget time.Duration
	StallCount  int

	// NewRoot builds a tenant's private root backend; called off-loop
	// at admission, wrapped in a page cache when the tenant's budget
	// asks for one. Default: vfs.NewInMemory.
	NewRoot func() vfs.Backend

	// Profiling gives every tenant its own continuous guest profiler
	// (internal/profile), handed to the StartFunc via Env.Prof; the
	// per-tenant top hot methods surface in /debug/fleet. The sampling
	// interval is ProfileInterval (default 10ms — a continuous low
	// rate, an order of magnitude coarser than the on-demand
	// /debug/profile default).
	Profiling       bool
	ProfileInterval time.Duration
}

// Supervisor owns a pool of shards and the tenants placed on them.
type Supervisor struct {
	cfg    Config
	hub    *telemetry.Hub
	shards []*Shard

	mu        sync.Mutex
	tenants   []*tenant
	evictions []Eviction
	admitted  int
	rejected  int
	completed int
	evicted   int
	failed    int
	live      int
	heapUsed  int // sum of admitted Budget.HeapBytes
	fdsUsed   int // sum of admitted Budget.MaxFDs
	cacheUsed int // sum of admitted Budget.CacheBytes
	closed    bool

	wg sync.WaitGroup

	mAdmitted  *telemetry.Counter
	mRejected  *telemetry.Counter
	mCompleted *telemetry.Counter
	mEvictions *telemetry.Counter
	mLive      *telemetry.Gauge
	mLatency   *telemetry.Histogram
}

// NewSupervisor builds the shard pool and starts its loop goroutines.
// Callers must Close the supervisor to join them.
func NewSupervisor(cfg Config) *Supervisor {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.NumCPU()
	}
	if cfg.Profile.Name == "" {
		if p, ok := browser.ByName("Chrome 28"); ok {
			cfg.Profile = p
		}
	}
	if cfg.MonitorInterval <= 0 {
		cfg.MonitorInterval = 2 * time.Millisecond
	}
	if cfg.NewRoot == nil {
		cfg.NewRoot = func() vfs.Backend { return vfs.NewInMemory() }
	}
	sup := &Supervisor{cfg: cfg, hub: cfg.Hub}
	if hub := sup.hub; hub != nil {
		sup.mAdmitted = hub.Registry.Counter("fleet", "admitted")
		sup.mRejected = hub.Registry.Counter("fleet", "rejected")
		sup.mCompleted = hub.Registry.Counter("fleet", "completed")
		sup.mEvictions = hub.Registry.Counter("fleet", "evictions")
		sup.mLive = hub.Registry.Gauge("fleet", "live")
		sup.mLatency = hub.Registry.Histogram("fleet", "latency")
	}
	sup.shards = make([]*Shard, cfg.Shards)
	for i := range sup.shards {
		sup.shards[i] = newShard(sup, i)
	}
	return sup
}

// Shards returns the pool size.
func (s *Supervisor) Shards() int { return len(s.shards) }

// Submit admits and places a tenant. Admission control runs first:
// the fleet-wide live cap and the heap/fd/cache capacity sums, each
// refused with an *AdmissionError. An admitted tenant is placed on
// the least-loaded shard (run-queue depth + live tenants, as last
// published by the shard monitors) and started from that shard's own
// loop. Safe from any goroutine.
func (s *Supervisor) Submit(spec Tenant) (*TenantRef, error) {
	if spec.Start == nil {
		return nil, fmt.Errorf("fleet: tenant %q has no Start", spec.Label)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("fleet: supervisor closed")
	}
	if reason := s.admitLocked(spec); reason != "" {
		s.rejected++
		s.mu.Unlock()
		if s.mRejected != nil {
			s.mRejected.Inc()
		}
		return nil, &AdmissionError{Label: spec.Label, Reason: reason}
	}
	sh := s.pickShardLocked()
	if sh == nil {
		s.rejected++
		s.mu.Unlock()
		if s.mRejected != nil {
			s.mRejected.Inc()
		}
		return nil, &AdmissionError{Label: spec.Label, Reason: "every shard is at its per-shard tenant cap"}
	}
	t := &tenant{
		spec:        spec,
		sup:         s,
		shard:       sh,
		state:       StatePending,
		submittedAt: time.Now(),
		doneCh:      make(chan struct{}),
	}
	s.admitted++
	s.live++
	s.heapUsed += spec.Budget.HeapBytes
	s.fdsUsed += spec.Budget.MaxFDs
	s.cacheUsed += spec.Budget.CacheBytes
	s.tenants = append(s.tenants, t)
	s.wg.Add(1)
	// Count the in-flight admit immediately so a burst of Submits
	// spreads across shards before the next monitor tick republishes.
	sh.pending.Add(1)
	s.mu.Unlock()

	if s.mAdmitted != nil {
		s.mAdmitted.Inc()
	}
	if s.mLive != nil {
		s.mLive.Add(1)
	}

	// The root backend is built off-loop (in-memory backends are safe
	// to construct anywhere) so Submit does not serialize on the shard.
	root := s.cfg.NewRoot()
	if spec.Budget.CacheBytes > 0 {
		root = vfs.Stack(root, vfs.WithCache(vfs.CacheOptions{ByteBudget: spec.Budget.CacheBytes}))
	}
	t.root = root
	if s.cfg.Profiling {
		// Built off-loop and immutable on the tenant thereafter, so
		// Snapshot can rank hot methods without touching the shard.
		interval := s.cfg.ProfileInterval
		if interval <= 0 {
			interval = 10 * time.Millisecond
		}
		t.prof = profile.New(profile.Options{CPUInterval: interval})
	}

	sh.loop.InvokeExternal("fleet-admit:"+spec.Label, func() { sh.startTenant(t) })
	return &TenantRef{t: t}, nil
}

// admitLocked returns a refusal reason, or "" to admit.
func (s *Supervisor) admitLocked(spec Tenant) string {
	b := spec.Budget
	if s.cfg.MaxTenants > 0 && s.live >= s.cfg.MaxTenants {
		return fmt.Sprintf("fleet full: %d live tenants (cap %d)", s.live, s.cfg.MaxTenants)
	}
	if s.cfg.HeapCapacity > 0 && s.heapUsed+b.HeapBytes > s.cfg.HeapCapacity {
		return fmt.Sprintf("heap capacity: %d + %d requested > %d", s.heapUsed, b.HeapBytes, s.cfg.HeapCapacity)
	}
	if s.cfg.FDCapacity > 0 && s.fdsUsed+b.MaxFDs > s.cfg.FDCapacity {
		return fmt.Sprintf("fd capacity: %d + %d requested > %d", s.fdsUsed, b.MaxFDs, s.cfg.FDCapacity)
	}
	if s.cfg.CacheCapacity > 0 && s.cacheUsed+b.CacheBytes > s.cfg.CacheCapacity {
		return fmt.Sprintf("cache capacity: %d + %d requested > %d", s.cacheUsed, b.CacheBytes, s.cfg.CacheCapacity)
	}
	return ""
}

// pickShardLocked is work-stealing placement inverted: rather than
// idle shards pulling work, Submit pushes each tenant to the shard
// whose published load (live tenants + run-queue depth) is lowest.
func (s *Supervisor) pickShardLocked() *Shard {
	var best *Shard
	var bestLoad int64
	for _, sh := range s.shards {
		if s.cfg.MaxTenantsPerShard > 0 && sh.live.Load()+sh.pending.Load() >= int64(s.cfg.MaxTenantsPerShard) {
			continue
		}
		load := sh.loadSignal()
		if best == nil || load < bestLoad {
			best, bestLoad = sh, load
		}
	}
	return best
}

// finish records a tenant's own completion (done callback or start
// error). Reached from the shard loop.
func (s *Supervisor) finish(t *tenant, err error) {
	state := StateDone
	if err != nil {
		state = StateFailed
	}
	if !s.terminate(t, state, err) {
		return
	}
	// Completed tenants keep their labeled series (final consumption
	// stays visible in /metrics); only eviction unregisters them.
	s.release(t)
}

// terminate moves a tenant to a terminal state; it returns false if
// the tenant already reached one (finish racing evict — whoever is
// second becomes a no-op).
func (s *Supervisor) terminate(t *tenant, state TenantState, err error) bool {
	s.mu.Lock()
	if t.state == StateDone || t.state == StateFailed || t.state == StateEvicted {
		s.mu.Unlock()
		return false
	}
	t.state = state
	t.err = err
	t.finishedAt = time.Now()
	s.live--
	switch state {
	case StateDone:
		s.completed++
	case StateFailed:
		s.failed++
	case StateEvicted:
		s.evicted++
	}
	s.mu.Unlock()
	return true
}

// release returns a terminated tenant's budget reservations and
// resolves its waiters. Called exactly once per tenant, after
// terminate returned true and teardown ran.
func (s *Supervisor) release(t *tenant) {
	s.mu.Lock()
	s.heapUsed -= t.spec.Budget.HeapBytes
	s.fdsUsed -= t.spec.Budget.MaxFDs
	s.cacheUsed -= t.spec.Budget.CacheBytes
	s.mu.Unlock()

	// The shard's live/depth observables are Store-only: the next
	// monitor tick drops this tenant from the count. No Add(-1) here —
	// mixing Add with the tick's Store is what let the counters go
	// negative.
	if s.mLive != nil {
		s.mLive.Add(-1)
	}
	switch t.state {
	case StateDone:
		if s.mCompleted != nil {
			s.mCompleted.Inc()
		}
	case StateEvicted:
		if s.mEvictions != nil {
			s.mEvictions.Inc()
		}
	}
	if s.mLatency != nil {
		s.mLatency.ObserveDuration(t.finishedAt.Sub(t.submittedAt))
	}
	close(t.doneCh)
	s.wg.Done()
}

func (s *Supervisor) logEviction(ev Eviction) {
	s.mu.Lock()
	s.evictions = append(s.evictions, ev)
	s.mu.Unlock()
}

// Wait blocks until every admitted tenant has reached a terminal
// state. The shards stay up — more tenants may be submitted after.
func (s *Supervisor) Wait() { s.wg.Wait() }

// Close shuts the fleet down: each shard's monitor stops, its pending
// slot is released, its loop is stopped, and its goroutine joined.
// Tenants still live are abandoned mid-flight (callers wanting a
// clean drain call Wait first).
func (s *Supervisor) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, sh := range s.shards {
		sh.loop.InvokeExternal("fleet-shutdown", sh.shutdown)
	}
	for _, sh := range s.shards {
		<-sh.joined
	}
}

// TenantInfo is one tenant's row in a FleetSnapshot.
type TenantInfo struct {
	Label      string      `json:"label"`
	Shard      int         `json:"shard"`
	State      TenantState `json:"state"`
	Detail     string      `json:"detail,omitempty"`
	CPUMs      int64       `json:"cpu_ms"`
	HeapUsed   int64       `json:"heap_used"`
	HeapBudget int         `json:"heap_budget,omitempty"`
	FDs        int64       `json:"fds"`
	RunqDepth  int64       `json:"runq_depth"`
	LatencyMs  int64       `json:"latency_ms,omitempty"`
	// HotMethods is the tenant's top-5 CPU-profile methods (leaf
	// attribution, Value in sampled nanoseconds); present only when
	// the fleet runs with Config.Profiling.
	HotMethods []profile.MethodWeight `json:"hot_methods,omitempty"`
}

// ShardInfo is one shard's row in a FleetSnapshot.
type ShardInfo struct {
	Index     int   `json:"index"`
	Live      int64 `json:"live"`
	Load      int64 `json:"load"`
	RunqDepth int64 `json:"runq_depth"`
	TasksRun  int64 `json:"tasks_run"`
	BusyMs    int64 `json:"busy_ms"`
}

// Eviction is one entry in the eviction log.
type Eviction struct {
	Label  string    `json:"label"`
	Shard  int       `json:"shard"`
	Reason string    `json:"reason"`
	CPUMs  int64     `json:"cpu_ms"`
	At     time.Time `json:"at"`
}

// FleetSnapshot is the /debug/fleet view: shard depths, per-tenant
// state and budget consumption, and the eviction log.
type FleetSnapshot struct {
	Shards    []ShardInfo  `json:"shards"`
	Tenants   []TenantInfo `json:"tenants"`
	Evictions []Eviction   `json:"evictions,omitempty"`
	Admitted  int          `json:"admitted"`
	Rejected  int          `json:"rejected"`
	Completed int          `json:"completed"`
	Evicted   int          `json:"evicted"`
	Failed    int          `json:"failed"`
	Live      int          `json:"live"`
}

// Snapshot captures the fleet's state from the registry and the
// atomics the shard monitors publish. It never touches a shard loop,
// so it stays accurate even when a tenant has a shard wedged — which
// is exactly when an operator needs it.
func (s *Supervisor) Snapshot() FleetSnapshot {
	s.mu.Lock()
	snap := FleetSnapshot{
		Admitted:  s.admitted,
		Rejected:  s.rejected,
		Completed: s.completed,
		Evicted:   s.evicted,
		Failed:    s.failed,
		Live:      s.live,
		Evictions: append([]Eviction(nil), s.evictions...),
	}
	tenants := append([]*tenant(nil), s.tenants...)
	infos := make([]TenantInfo, 0, len(tenants))
	for _, t := range tenants {
		info := TenantInfo{
			Label:      t.spec.Label,
			Shard:      t.shard.index,
			State:      t.state,
			CPUMs:      time.Duration(t.cpu.Load()).Milliseconds(),
			HeapUsed:   t.heapUsed.Load(),
			HeapBudget: t.spec.Budget.HeapBytes,
			FDs:        t.fds.Load(),
			RunqDepth:  t.depth.Load(),
		}
		if t.err != nil {
			info.Detail = t.err.Error()
		}
		if !t.finishedAt.IsZero() {
			info.LatencyMs = t.finishedAt.Sub(t.submittedAt).Milliseconds()
		}
		info.HotMethods = t.prof.TopMethods(profile.CPU, 5)
		infos = append(infos, info)
	}
	s.mu.Unlock()
	snap.Tenants = infos

	for _, sh := range s.shards {
		st := sh.loop.Stats()
		snap.Shards = append(snap.Shards, ShardInfo{
			Index:     sh.index,
			Live:      sh.live.Load(),
			Load:      sh.loadSignal(),
			RunqDepth: sh.depth.Load(),
			TasksRun:  int64(st.TasksRun),
			BusyMs:    st.BusyTime.Milliseconds(),
		})
	}
	return snap
}

// Format renders the snapshot as the /debug/fleet text view.
func (snap FleetSnapshot) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== FLEET (%d shards, %d live) ===\n", len(snap.Shards), snap.Live)
	fmt.Fprintf(&b, "admitted %d  rejected %d  completed %d  evicted %d  failed %d\n\n",
		snap.Admitted, snap.Rejected, snap.Completed, snap.Evicted, snap.Failed)
	b.WriteString("shard  live  load  runq  tasks    busy\n")
	for _, sh := range snap.Shards {
		fmt.Fprintf(&b, "%5d  %4d  %4d  %4d  %6d  %5dms\n",
			sh.Index, sh.Live, sh.Load, sh.RunqDepth, sh.TasksRun, sh.BusyMs)
	}
	if len(snap.Tenants) > 0 {
		b.WriteString("\ntenant                shard  state     cpu       heap        fds  runq\n")
		tenants := append([]TenantInfo(nil), snap.Tenants...)
		sort.Slice(tenants, func(i, j int) bool { return tenants[i].Label < tenants[j].Label })
		for _, t := range tenants {
			heap := fmt.Sprintf("%d", t.HeapUsed)
			if t.HeapBudget > 0 {
				heap = fmt.Sprintf("%d/%d", t.HeapUsed, t.HeapBudget)
			}
			fmt.Fprintf(&b, "%-20s  %5d  %-8s  %6dms  %-10s  %3d  %4d\n",
				t.Label, t.Shard, t.State, t.CPUMs, heap, t.FDs, t.RunqDepth)
			if t.Detail != "" {
				fmt.Fprintf(&b, "    %s\n", t.Detail)
			}
			for _, m := range t.HotMethods {
				fmt.Fprintf(&b, "    hot %-40s %8.1fms\n",
					m.Method, float64(m.Value)/1e6)
			}
		}
	}
	if len(snap.Evictions) > 0 {
		b.WriteString("\nevictions:\n")
		for _, ev := range snap.Evictions {
			fmt.Fprintf(&b, "  [%s] %s (shard %d, %dms cpu): %s\n",
				ev.At.Format("15:04:05.000"), ev.Label, ev.Shard, ev.CPUMs, ev.Reason)
		}
	}
	return b.String()
}

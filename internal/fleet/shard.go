package fleet

import (
	"fmt"
	"sync/atomic"
	"time"

	"doppio/internal/eventloop"
	"doppio/internal/profile"
	"doppio/internal/telemetry"
	"doppio/internal/vfs"
)

// Shard hosts tenants on one event loop pinned to one goroutine.
// Everything tenant-facing — starts, monitor ticks, budget
// enforcement, eviction — executes as macrotasks on that loop, so a
// shard's tenants share state with the same no-locks guarantee a
// single browser window gives. Only the published observables (load,
// depth, tenant counters) cross goroutines, as atomics.
type Shard struct {
	index int
	sup   *Supervisor
	env   *Env
	loop  *eventloop.Loop

	// The placement signal is live + depth + pending. live and depth
	// are Store-only (the monitor tick recomputes them from shard
	// state), pending is an exact counter: +1 at Submit, -1 when the
	// admit task lands on the loop — so a burst of Submits spreads
	// across shards before the next tick, and no atomic ever mixes
	// Store with Add (that mix let the counters drift negative when
	// ticks interleaved with admits and releases).
	live    atomic.Int64
	depth   atomic.Int64
	pending atomic.Int64

	// Everything below is loop-goroutine state.
	tenants  []*tenant
	timer    eventloop.TimerID
	stopping bool

	runErr atomic.Value // error, set if the loop died
	joined chan struct{}
}

// newShard builds a shard and starts its loop goroutine. The shard's
// window always runs with the watchdog disabled: a hosted tenant must
// never be able to take the whole shard down, and long macrotasks are
// the stall monitor's and CPU budget's business instead.
func newShard(sup *Supervisor, index int) *Shard {
	profile := sup.cfg.Profile
	profile.WatchdogLimit = 0
	env := NewEnv(profile, sup.hub)
	env.Shard = index
	sh := &Shard{
		index:  index,
		sup:    sup,
		env:    env,
		loop:   env.Win.Loop,
		joined: make(chan struct{}),
	}
	if sup.cfg.StallBudget > 0 {
		sh.loop.SetStallMonitor(sup.cfg.StallBudget, sup.cfg.StallCount, sh.onStall)
	}
	// The pending slot keeps Run alive while the fleet is up, even
	// with no tenants; the monitor timer re-arms itself from the loop.
	sh.loop.AddPending()
	sh.loop.Post("fleet-monitor", sh.monitorTick)
	go func() {
		if err := sh.loop.Run(); err != nil {
			sh.runErr.Store(err)
		}
		close(sh.joined)
	}()
	return sh
}

// loadSignal is the placement key pickShardLocked compares: tenants
// the monitor last saw running, their summed run-queue depth, and
// admits still in flight toward this shard.
func (sh *Shard) loadSignal() int64 {
	return sh.live.Load() + sh.depth.Load() + sh.pending.Load()
}

// startTenant launches an admitted tenant. Loop goroutine.
func (sh *Shard) startTenant(t *tenant) {
	// The admit has landed: from here the tenant is either in
	// sh.tenants (counted by the next tick's live) or terminal.
	sh.pending.Add(-1)
	sh.sup.mu.Lock()
	if t.state != StatePending {
		sh.sup.mu.Unlock()
		return
	}
	t.state = StateRunning
	t.startedAt = time.Now()
	sh.sup.mu.Unlock()

	env := &Env{
		Win: sh.env.Win, Bufs: sh.env.Bufs, Hub: sh.env.Hub,
		Label: t.spec.Label, Shard: sh.index, Root: t.root, Budget: t.spec.Budget,
		Prof: t.prof,
	}
	sh.flight("start", t.spec.Label, int64(sh.index))
	h, err := t.spec.Start(env, func(err error) {
		// Final observable flush before the terminal transition: a
		// tenant that finishes between monitor ticks still reports its
		// consumption (the CI smoke asserts nonzero per-tenant
		// counters).
		sh.publish(t)
		sh.sup.finish(t, err)
	})
	if err != nil {
		sh.sup.finish(t, fmt.Errorf("fleet: start %s: %w", t.spec.Label, err))
		return
	}
	if h == nil {
		h = &Handle{}
	}
	if h.FS != nil && t.spec.Budget.MaxFDs > 0 {
		h.FS.SetMaxFDs(t.spec.Budget.MaxFDs)
	}
	t.handle = h
	if hub := sh.sup.hub; hub != nil {
		t.mCPU = hub.Registry.LabeledGauge("fleet", "tenant_cpu_us", t.spec.Label)
		t.mHeap = hub.Registry.LabeledGauge("fleet", "tenant_heap_bytes", t.spec.Label)
		t.mDepth = hub.Registry.LabeledGauge("fleet", "tenant_runq_depth", t.spec.Label)
		t.mSlices = hub.Registry.LabeledCounter("fleet", "tenant_slices", t.spec.Label)
	}
	sh.tenants = append(sh.tenants, t)
}

// monitorTick is the shard's heartbeat: publish per-tenant
// observables, enforce CPU budgets, refresh the placement load, and
// re-arm. Loop goroutine; the tick interval is the granularity of
// runtime budget enforcement.
func (sh *Shard) monitorTick() {
	if sh.stopping {
		return
	}
	live := sh.tenants[:0]
	depth := 0
	var evictions []*tenant
	for _, t := range sh.tenants {
		if t.terminal() {
			continue
		}
		live = append(live, t)
		cpu, d := sh.publish(t)
		depth += d
		if t.spec.Budget.CPU > 0 && cpu > t.spec.Budget.CPU {
			evictions = append(evictions, t)
		}
	}
	// Clear the tail so dropped tenants are not retained.
	for i := len(live); i < len(sh.tenants); i++ {
		sh.tenants[i] = nil
	}
	sh.tenants = live
	sh.depth.Store(int64(depth))
	sh.live.Store(int64(len(live)))
	for _, t := range evictions {
		sh.evict(t, fmt.Sprintf("cpu budget exceeded: %v > %v",
			time.Duration(t.cpu.Load()).Round(time.Millisecond), t.spec.Budget.CPU))
	}
	sh.timer = sh.loop.SetTimeout(sh.monitorTick, sh.sup.cfg.MonitorInterval)
}

// publish refreshes one tenant's observables — atomics for Snapshot,
// labeled series for /metrics — and returns its cumulative CPU time
// and current run-queue depth. Loop goroutine.
func (sh *Shard) publish(t *tenant) (cpu time.Duration, depth int) {
	h := t.handle
	if h == nil {
		return 0, 0
	}
	if h.Runtime != nil {
		st := h.Runtime.Stats()
		cpu = st.CPUTime
		depth = h.Runtime.QueueDepth()
		t.cpu.Store(int64(cpu))
		if t.mCPU != nil {
			t.mCPU.Set(cpu.Microseconds())
		}
		if delta := int64(st.Slices) - t.lastSlices; delta > 0 {
			if t.mSlices != nil {
				t.mSlices.Add(delta)
			}
			t.lastSlices = int64(st.Slices)
		}
	}
	if h.Heap != nil {
		used := int64(h.Heap.AllocatedBytes())
		t.heapUsed.Store(used)
		if t.mHeap != nil {
			t.mHeap.Set(used)
		}
	}
	if h.FS != nil {
		t.fds.Store(int64(h.FS.OpenFDs()))
	}
	t.depth.Store(int64(depth))
	if t.mDepth != nil {
		t.mDepth.Set(int64(depth))
	}
	return cpu, depth
}

// onStall fires when macrotask latency has exceeded the stall budget
// for N consecutive tasks — some tenant is freezing the shard. The
// monitor's last published CPU readings date from before the stall,
// so the tenant with the largest CPU growth since then is the
// offender; evict it. Loop goroutine.
func (sh *Shard) onStall(ev eventloop.StallEvent) {
	var worst *tenant
	var worstDelta time.Duration
	for _, t := range sh.tenants {
		if t.terminal() || t.handle == nil || t.handle.Runtime == nil {
			continue
		}
		delta := t.handle.Runtime.Stats().CPUTime - time.Duration(t.cpu.Load())
		if worst == nil || delta > worstDelta {
			worst, worstDelta = t, delta
		}
	}
	if worst == nil {
		return
	}
	sh.evict(worst, fmt.Sprintf("stalled shard %d: %d consecutive tasks over %v (last %q ran %v)",
		sh.index, ev.Consecutive, ev.Budget, ev.Label, ev.Elapsed.Round(time.Millisecond)))
}

// evict tears a tenant down SIGKILL-style: mark it terminal (so its
// own done callback becomes a no-op), kill the VM, reclaim its file
// descriptors and cache pages, drop its per-tenant metric series, and
// log the eviction. Loop goroutine.
func (sh *Shard) evict(t *tenant, reason string) {
	evictErr := &EvictionError{Label: t.spec.Label, Reason: reason}
	if !sh.sup.terminate(t, StateEvicted, evictErr) {
		return
	}
	h := t.handle
	if h != nil && h.Kill != nil {
		h.Kill()
	}
	reclaimedFDs := 0
	if h != nil && h.FS != nil {
		reclaimedFDs = h.FS.CloseAll()
	}
	if t.root != nil {
		if cached, ok := vfs.Find[*vfs.Cached](t.root); ok {
			cached.InvalidateAll()
		}
	}
	if hub := sh.sup.hub; hub != nil {
		hub.Registry.Unregister(t.spec.Label)
	}
	sh.flight("evict", t.spec.Label, int64(reclaimedFDs))
	sh.sup.logEviction(Eviction{
		Label: t.spec.Label, Shard: sh.index, Reason: reason,
		CPUMs: time.Duration(t.cpu.Load()).Milliseconds(), At: time.Now(),
	})
	sh.sup.release(t)
}

// shutdown stops the monitor and releases the pending slot; posted by
// Close. Loop goroutine.
func (sh *Shard) shutdown() {
	if sh.stopping {
		return
	}
	sh.stopping = true
	sh.loop.ClearTimeout(sh.timer)
	sh.loop.DonePending()
	sh.loop.Stop()
}

func (sh *Shard) flight(event, label string, arg int64) {
	if hub := sh.sup.hub; hub != nil && hub.Flight != nil {
		hub.Flight.Record("fleet", event, label, arg)
	}
}

// tenant is the supervisor's record of one hosted workload. Lifecycle
// fields (state, err, timestamps) are guarded by the supervisor mutex
// and transition on the owning shard's loop; observables are atomics
// published by the monitor tick so Snapshot never touches a loop.
type tenant struct {
	spec  Tenant
	sup   *Supervisor
	shard *Shard
	root  vfs.Backend
	// prof is the tenant's continuous guest profiler (nil unless the
	// fleet runs with Config.Profiling). Set at Submit, immutable
	// after: Snapshot reads it from any goroutine, the tenant's VM
	// feeds it from the shard loop, and the profiler's own lock
	// mediates. Eviction kills the VM, which stops the only sample
	// sources — a dead tenant can never accrue new samples.
	prof *profile.Profiler

	state       TenantState
	err         error
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time

	handle *Handle // loop-goroutine only

	cpu      atomic.Int64 // nanoseconds of scheduler CPU time
	heapUsed atomic.Int64
	fds      atomic.Int64
	depth    atomic.Int64

	lastSlices int64 // loop-goroutine only; feeds the slices counter

	mCPU    *telemetry.Gauge
	mHeap   *telemetry.Gauge
	mDepth  *telemetry.Gauge
	mSlices *telemetry.Counter

	doneCh chan struct{}
}

// terminal reports whether the tenant has reached a terminal state.
func (t *tenant) terminal() bool {
	t.sup.mu.Lock()
	defer t.sup.mu.Unlock()
	return t.state == StateDone || t.state == StateFailed || t.state == StateEvicted
}

package profile

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFoldAndSnapshot(t *testing.T) {
	p := New(Options{})
	stack := []string{"Main.main", "Main.work:12"}
	p.SampleCPU(stack, 3*time.Millisecond)
	p.SampleCPU(stack, 2*time.Millisecond)
	p.SampleCPU([]string{"Main.main", "Main.idle:4"}, time.Millisecond)

	s := p.Snapshot(CPU)
	if len(s.Entries) != 2 {
		t.Fatalf("want 2 folded stacks, got %d: %+v", len(s.Entries), s.Entries)
	}
	top := s.Entries[0]
	if got := strings.Join(top.Stack, ";"); got != "Main.main;Main.work:12" {
		t.Fatalf("top stack = %q", got)
	}
	if top.Count != 2 || top.Value != int64(5*time.Millisecond) {
		t.Fatalf("top entry = %+v", top)
	}
	if p.Samples() != 3 {
		t.Fatalf("Samples() = %d", p.Samples())
	}
}

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	p.SampleCPU([]string{"a"}, time.Second)
	p.SampleAlloc([]string{"a"}, 100)
	p.SampleBlock([]string{"a"}, time.Second)
	if p.AllocReady() {
		t.Fatal("nil profiler must never ask for alloc samples")
	}
	if n := len(p.Snapshot(CPU).Entries); n != 0 {
		t.Fatalf("nil snapshot has %d entries", n)
	}
	if p.TopMethods(CPU, 5) != nil {
		t.Fatal("nil TopMethods should be empty")
	}
}

func TestAllocGateAndScaling(t *testing.T) {
	p := New(Options{AllocRate: 4})
	sampled := 0
	for i := 0; i < 40; i++ {
		if p.AllocReady() {
			sampled++
			p.SampleAlloc([]string{"Main.alloc:7"}, 16)
		}
	}
	if sampled != 10 {
		t.Fatalf("1-in-4 gate sampled %d of 40", sampled)
	}
	s := p.Snapshot(Alloc)
	if len(s.Entries) != 1 {
		t.Fatalf("entries: %+v", s.Entries)
	}
	// Each sampled event scales by the rate: 10 samples * 4 = 40
	// objects, 10 * 16 * 4 = 640 bytes.
	if s.Entries[0].Count != 40 || s.Entries[0].Value != 640 {
		t.Fatalf("scaled alloc entry = %+v", s.Entries[0])
	}
}

func TestDeltaWindow(t *testing.T) {
	p := New(Options{})
	p.SampleCPU([]string{"a", "b:1"}, 10*time.Millisecond)
	before := p.Snapshot(CPU)
	p.SampleCPU([]string{"a", "b:1"}, 5*time.Millisecond)
	p.SampleCPU([]string{"a", "c:2"}, time.Millisecond)
	d := Delta(before, p.Snapshot(CPU))
	if len(d.Entries) != 2 {
		t.Fatalf("delta entries: %+v", d.Entries)
	}
	if d.Entries[0].Value != int64(5*time.Millisecond) || d.Entries[0].Count != 1 {
		t.Fatalf("delta top = %+v", d.Entries[0])
	}
}

func TestMergeAcrossProfilers(t *testing.T) {
	a := New(Options{})
	b := New(Options{})
	a.SampleBlock([]string{"x", "y:1"}, time.Millisecond)
	b.SampleBlock([]string{"x", "y:1"}, 2*time.Millisecond)
	b.SampleBlock([]string{"z:9"}, time.Millisecond)
	m := Merge(a.Snapshot(Block), b.Snapshot(Block))
	if m.Kind != Block || len(m.Entries) != 2 {
		t.Fatalf("merge = %+v", m)
	}
	if m.Entries[0].Value != int64(3*time.Millisecond) || m.Entries[0].Count != 2 {
		t.Fatalf("merged top = %+v", m.Entries[0])
	}
}

func TestTopMethodsStripsPC(t *testing.T) {
	p := New(Options{})
	p.SampleCPU([]string{"Main.main", "Main.work:12"}, 2*time.Millisecond)
	p.SampleCPU([]string{"Main.main", "Main.work:44"}, 3*time.Millisecond)
	p.SampleCPU([]string{"Main.main", "Main.other:1"}, time.Millisecond)
	top := p.TopMethods(CPU, 1)
	if len(top) != 1 || top[0].Method != "Main.work" {
		t.Fatalf("top methods = %+v", top)
	}
	if top[0].Value != int64(5*time.Millisecond) || top[0].Count != 2 {
		t.Fatalf("merged pc weights = %+v", top[0])
	}
}

func TestCollapsedOutput(t *testing.T) {
	p := New(Options{})
	p.SampleCPU([]string{"a", "b", "c:3"}, 7*time.Nanosecond)
	var buf bytes.Buffer
	if err := p.Snapshot(CPU).WriteCollapsed(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a;b;c:3 7\n" {
		t.Fatalf("collapsed = %q", got)
	}
}

func TestConcurrentSampling(t *testing.T) {
	p := New(Options{AllocRate: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stack := []string{"root", fmt.Sprintf("leaf%d:1", g%2)}
			for i := 0; i < 500; i++ {
				p.SampleCPU(stack, time.Microsecond)
				if p.AllocReady() {
					p.SampleAlloc(stack, 8)
				}
				p.SampleBlock(stack, time.Microsecond)
				if i%100 == 0 {
					_ = p.Snapshot(CPU)
					_ = p.TopMethods(Alloc, 3)
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, e := range p.Snapshot(CPU).Entries {
		total += e.Count
	}
	if total != 8*500 {
		t.Fatalf("lost samples: %d of %d", total, 8*500)
	}
}

// pprofScan is a minimal protobuf walker: it returns the top-level
// (field, wire-type-2 payload | varint) pairs of a message.
type pprofField struct {
	num     int
	varint  uint64
	payload []byte
}

func pprofScan(t *testing.T, data []byte) []pprofField {
	t.Helper()
	var out []pprofField
	for len(data) > 0 {
		key, n := pprofVarint(t, data)
		data = data[n:]
		f := pprofField{num: int(key >> 3)}
		switch key & 7 {
		case 0:
			f.varint, n = pprofVarint(t, data)
			data = data[n:]
		case 2:
			ln, n2 := pprofVarint(t, data)
			data = data[n2:]
			f.payload = data[:ln]
			data = data[ln:]
		default:
			t.Fatalf("unexpected wire type %d for field %d", key&7, f.num)
		}
		out = append(out, f)
	}
	return out
}

func pprofVarint(t *testing.T, data []byte) (uint64, int) {
	t.Helper()
	var v uint64
	for i := 0; i < len(data); i++ {
		v |= uint64(data[i]&0x7f) << (7 * i)
		if data[i] < 0x80 {
			return v, i + 1
		}
	}
	t.Fatal("truncated varint")
	return 0, 0
}

func TestPprofEncoding(t *testing.T) {
	p := New(Options{})
	p.SampleCPU([]string{"Main.main", "Main.work:12"}, 5*time.Millisecond)
	p.SampleCPU([]string{"Main.main"}, time.Millisecond)
	var buf bytes.Buffer
	if err := p.Snapshot(CPU).WritePprof(&buf, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}

	var sampleTypes, samples, locations, functions int
	var strs []string
	for _, f := range pprofScan(t, raw) {
		switch f.num {
		case profSampleType:
			sampleTypes++
		case profSample:
			samples++
			// Each sample carries exactly two packed values.
			var vals []uint64
			for _, sf := range pprofScan(t, f.payload) {
				if sf.num == sampleValue {
					for data := sf.payload; len(data) > 0; {
						v, n := pprofVarint(t, data)
						vals = append(vals, v)
						data = data[n:]
					}
				}
			}
			if len(vals) != 2 {
				t.Fatalf("sample has %d values", len(vals))
			}
		case profLocation:
			locations++
		case profFunction:
			functions++
		case profStringTable:
			strs = append(strs, string(f.payload))
		}
	}
	if sampleTypes != 2 || samples != 2 {
		t.Fatalf("sample_types=%d samples=%d", sampleTypes, samples)
	}
	// Frames: Main.main, Main.work:12 → 2 locations, 2 functions
	// (Main.main, Main.work).
	if locations != 2 || functions != 2 {
		t.Fatalf("locations=%d functions=%d", locations, functions)
	}
	if len(strs) == 0 || strs[0] != "" {
		t.Fatalf("string_table[0] must be empty, got %q", strs)
	}
	want := map[string]bool{"Main.main": false, "Main.work": false, "cpu": false, "nanoseconds": false}
	for _, s := range strs {
		if _, ok := want[s]; ok {
			want[s] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("string table missing %q: %q", k, strs)
		}
	}
}

// TestPprofSchemaFields pins every emitted top-level field to the
// profile.proto schema — number AND wire type. Encoding period_type
// under comment's field number (13 instead of 11) produced bytes that
// still scanned as protobuf but made `go tool pprof` reject the file;
// only a schema-exact check catches that class of bug.
func TestPprofSchemaFields(t *testing.T) {
	p := New(Options{})
	p.SampleCPU([]string{"Main.main", "Main.work:12"}, time.Millisecond)
	var buf bytes.Buffer
	if err := p.Snapshot(CPU).WritePprof(&buf, time.Second); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	// Profile message: field → wants length-delimited payload.
	delimited := map[int]bool{
		1: true, 2: true, 3: true, 4: true, 5: true, 6: true, // sample_type..string_table
		9: false, 10: false, // time_nanos, duration_nanos
		11: true, 12: false, // period_type, period
	}
	seen := map[int]bool{}
	for _, f := range pprofScan(t, raw) {
		wantPayload, ok := delimited[f.num]
		if !ok {
			t.Errorf("field %d is not part of the emitted pprof schema", f.num)
			continue
		}
		if gotPayload := f.payload != nil; gotPayload != wantPayload {
			t.Errorf("field %d: delimited=%v, want %v", f.num, gotPayload, wantPayload)
		}
		seen[f.num] = true
	}
	for _, num := range []int{1, 2, 4, 5, 6, 11, 12} {
		if !seen[num] {
			t.Errorf("required field %d missing from encoding", num)
		}
	}
}

// pprof.go encodes a Snapshot as a gzip-compressed pprof profile —
// the protobuf `perftools.profiles.Profile` message `go tool pprof`
// reads — with no protobuf dependency: the wire format for the
// handful of fields a flat guest profile needs (varints,
// length-delimited submessages, packed repeated ints) is small enough
// to emit by hand.
//
// Frame strings become Functions (pc-stripped name) and Locations
// (one per distinct frame string; the leaf's ":pc" suffix becomes the
// Line.line so pprof's source view distinguishes sample sites inside
// one method). Sample location_ids are leaf-first per the format.
package profile

import (
	"bytes"
	"compress/gzip"
	"io"
	"strconv"
	"strings"
	"time"
)

// proto field tags for the pprof Profile message and its submessages.
const (
	profSampleType   = 1
	profSample       = 2
	profLocation     = 4
	profFunction     = 5
	profStringTable  = 6
	profTimeNanos    = 9
	profDurationNs   = 10
	profPeriodType   = 11
	profPeriod       = 12
	valueTypeType    = 1
	valueTypeUnit    = 2
	sampleLocationID = 1
	sampleValue      = 2
	locationID       = 1
	locationLine     = 4
	lineFunctionID   = 1
	lineLine         = 2
	functionID       = 1
	functionName     = 2
	functionSysName  = 3
	functionFilename = 4
)

type protoBuf struct{ bytes.Buffer }

func (b *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		b.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	b.WriteByte(byte(v))
}

// tagVarint writes field<<3|0 then the varint value.
func (b *protoBuf) tagVarint(field int, v int64) {
	b.varint(uint64(field)<<3 | 0)
	b.varint(uint64(v))
}

// tagBytes writes field<<3|2 then a length-delimited payload.
func (b *protoBuf) tagBytes(field int, payload []byte) {
	b.varint(uint64(field)<<3 | 2)
	b.varint(uint64(len(payload)))
	b.Write(payload)
}

// tagPacked writes a packed repeated varint field.
func (b *protoBuf) tagPacked(field int, vals []uint64) {
	var inner protoBuf
	for _, v := range vals {
		inner.varint(v)
	}
	b.tagBytes(field, inner.Bytes())
}

// strTab interns strings for the profile's string_table; index 0 is
// always "".
type strTab struct {
	idx  map[string]int64
	list []string
}

func newStrTab() *strTab {
	return &strTab{idx: map[string]int64{"": 0}, list: []string{""}}
}

func (t *strTab) id(s string) int64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := int64(len(t.list))
	t.idx[s] = i
	t.list = append(t.list, s)
	return i
}

// sampleTypes returns the (type, unit) pairs for each profile kind,
// matching the conventions runtime/pprof uses so `go tool pprof`
// picks sensible default sample indexes.
func sampleTypes(kind Kind) [][2]string {
	switch kind {
	case Alloc:
		return [][2]string{{"alloc_objects", "count"}, {"alloc_space", "bytes"}}
	case Block:
		return [][2]string{{"contentions", "count"}, {"delay", "nanoseconds"}}
	default:
		return [][2]string{{"samples", "count"}, {"cpu", "nanoseconds"}}
	}
}

// WritePprof encodes the snapshot as a gzipped pprof protobuf.
// duration is the sampling window (zero for cumulative profiles).
func (s Snapshot) WritePprof(w io.Writer, duration time.Duration) error {
	var out protoBuf

	st := newStrTab()
	for _, pair := range sampleTypes(s.Kind) {
		var vt protoBuf
		vt.tagVarint(valueTypeType, st.id(pair[0]))
		vt.tagVarint(valueTypeUnit, st.id(pair[1]))
		out.tagBytes(profSampleType, vt.Bytes())
	}

	// One Location (and one Function) per distinct frame string. The
	// function name strips the ":pc" leaf suffix; the pc itself is
	// the Line.line, so quickened and generic tiers that attribute to
	// the same source pc collapse to the same location.
	locIDs := map[string]uint64{}
	type locDef struct {
		frame string
		id    uint64
	}
	var locs []locDef
	locFor := func(frame string) uint64 {
		if id, ok := locIDs[frame]; ok {
			return id
		}
		id := uint64(len(locs) + 1)
		locIDs[frame] = id
		locs = append(locs, locDef{frame: frame, id: id})
		return id
	}

	var samples []protoBuf
	for _, e := range s.Entries {
		ids := make([]uint64, 0, len(e.Stack))
		for i := len(e.Stack) - 1; i >= 0; i-- { // leaf first
			ids = append(ids, locFor(e.Stack[i]))
		}
		var sm protoBuf
		sm.tagPacked(sampleLocationID, ids)
		sm.tagPacked(sampleValue, []uint64{uint64(e.Count), uint64(e.Value)})
		samples = append(samples, sm)
	}
	for i := range samples {
		out.tagBytes(profSample, samples[i].Bytes())
	}

	funcIDs := map[string]uint64{}
	type funcDef struct {
		name string
		id   uint64
	}
	var funcs []funcDef
	for _, ld := range locs {
		name := LeafMethod(ld.frame)
		line := int64(0)
		if i := strings.LastIndexByte(ld.frame, ':'); i >= 0 {
			if n, err := strconv.ParseInt(ld.frame[i+1:], 10, 64); err == nil {
				line = n
			}
		}
		fid, ok := funcIDs[name]
		if !ok {
			fid = uint64(len(funcs) + 1)
			funcIDs[name] = fid
			funcs = append(funcs, funcDef{name: name, id: fid})
		}
		var ln protoBuf
		ln.tagVarint(lineFunctionID, int64(fid))
		if line > 0 {
			ln.tagVarint(lineLine, line)
		}
		var loc protoBuf
		loc.tagVarint(locationID, int64(ld.id))
		loc.tagBytes(locationLine, ln.Bytes())
		out.tagBytes(profLocation, loc.Bytes())
	}
	for _, fd := range funcs {
		var fn protoBuf
		fn.tagVarint(functionID, int64(fd.id))
		fn.tagVarint(functionName, st.id(fd.name))
		fn.tagVarint(functionSysName, st.id(fd.name))
		fn.tagVarint(functionFilename, st.id("(guest)"))
		out.tagBytes(profFunction, fn.Bytes())
	}

	if !s.Taken.IsZero() {
		out.tagVarint(profTimeNanos, s.Taken.Add(-duration).UnixNano())
	}
	if duration > 0 {
		out.tagVarint(profDurationNs, int64(duration))
	}
	// period_type/period: nominal sampling period, informational.
	var pt protoBuf
	pairs := sampleTypes(s.Kind)
	pt.tagVarint(valueTypeType, st.id(pairs[len(pairs)-1][0]))
	pt.tagVarint(valueTypeUnit, st.id(pairs[len(pairs)-1][1]))
	out.tagBytes(profPeriodType, pt.Bytes())
	out.tagVarint(profPeriod, int64(DefaultCPUInterval))

	// string_table last is fine — field order is free in protobuf.
	for _, str := range st.list {
		out.tagBytes(profStringTable, []byte(str))
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.Bytes()); err != nil {
		return err
	}
	return gz.Close()
}

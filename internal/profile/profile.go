// Package profile is the guest-level sampling profiler: it folds
// guest call stacks — JVM frames on either engine, MiniC frames —
// into weighted flat profiles for three kinds of cost:
//
//   - cpu: on-CPU time, sampled at safepoint boundaries. The engines
//     attribute the time elapsed since the previous sample to the
//     stack observed at the sample point, so the weights are wall-ns
//     of guest execution, not sample counts.
//   - alloc: allocation sites, sampled 1-in-N allocation events and
//     scaled back up by N (bytes and object counts are estimators).
//   - block: blocked time by stack, folded from the labelled
//     core.Completion block events (monitorenter, pipes, sockets).
//
// Stacks are root-first slices of frame strings ("Class.method" for
// caller frames, "Class.method:pc" at the leaf; MiniC uses function
// names). The profiler itself is engine-agnostic: engines walk their
// own explicit frame arrays and hand the strings over.
//
// All methods are safe on a nil *Profiler (they no-op), so VMs can
// hold one unconditionally and the hot paths stay branch-cheap when
// profiling is off. A non-nil Profiler is safe for concurrent use —
// the ops server snapshots it from HTTP goroutines while the VM's
// loop goroutine keeps sampling.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind names one of the three profile dimensions.
type Kind string

const (
	// CPU is on-CPU guest time by stack (value: nanoseconds).
	CPU Kind = "cpu"
	// Alloc is allocation by stack (value: bytes; count: objects).
	Alloc Kind = "alloc"
	// Block is blocked time by stack (value: nanoseconds of waiting;
	// count: contention events).
	Block Kind = "block"
)

// Kinds lists the valid profile kinds.
func Kinds() []Kind { return []Kind{CPU, Alloc, Block} }

// DefaultAllocRate samples one in this many allocation events.
const DefaultAllocRate = 61

// DefaultCPUInterval is the minimum spacing between CPU samples. The
// safepoint clock fires far more often than this; the engines skip
// sample points until the interval has elapsed and then attribute the
// whole elapsed window to the current stack — classic sampling.
const DefaultCPUInterval = time.Millisecond

// Options tunes a Profiler.
type Options struct {
	// AllocRate samples 1-in-N allocation events (default
	// DefaultAllocRate). 1 samples every allocation.
	AllocRate int
	// CPUInterval is the minimum spacing between CPU samples
	// (default DefaultCPUInterval).
	CPUInterval time.Duration
}

// Entry is one folded stack with its accumulated weight.
type Entry struct {
	// Stack is root-first: Stack[0] is the outermost caller, the
	// last element the sampled leaf.
	Stack []string `json:"stack"`
	// Count is samples (cpu), estimated objects (alloc), or
	// contention events (block).
	Count int64 `json:"count"`
	// Value is nanoseconds (cpu, block) or estimated bytes (alloc).
	Value int64 `json:"value"`
}

type bucket struct {
	stack []string
	count int64
	value int64
}

// Profiler folds samples into per-kind weighted stack maps.
type Profiler struct {
	mu    sync.Mutex
	kinds map[Kind]map[string]*bucket
	start time.Time

	allocRate  int64
	allocCred  atomic.Int64 // countdown to the next sampled alloc
	cpuEvery   time.Duration
	cpuSamples atomic.Int64 // cheap liveness signal for tests/smoke
}

// New builds a Profiler with the given options.
func New(opts Options) *Profiler {
	if opts.AllocRate <= 0 {
		opts.AllocRate = DefaultAllocRate
	}
	if opts.CPUInterval <= 0 {
		opts.CPUInterval = DefaultCPUInterval
	}
	p := &Profiler{
		kinds: map[Kind]map[string]*bucket{
			CPU:   {},
			Alloc: {},
			Block: {},
		},
		start:     time.Now(),
		allocRate: int64(opts.AllocRate),
		cpuEvery:  opts.CPUInterval,
	}
	p.allocCred.Store(int64(opts.AllocRate))
	return p
}

// CPUInterval reports the minimum CPU-sample spacing. Safe on nil
// (returns a large interval so callers sample never).
func (p *Profiler) CPUInterval() time.Duration {
	if p == nil {
		return time.Hour
	}
	return p.cpuEvery
}

// Samples reports the number of CPU samples folded so far. Safe on
// nil (zero).
func (p *Profiler) Samples() int64 {
	if p == nil {
		return 0
	}
	return p.cpuSamples.Load()
}

func (p *Profiler) add(kind Kind, stack []string, count, value int64) {
	if len(stack) == 0 {
		stack = []string{"(unknown)"}
	}
	key := strings.Join(stack, ";")
	p.mu.Lock()
	m := p.kinds[kind]
	b := m[key]
	if b == nil {
		b = &bucket{stack: append([]string(nil), stack...)}
		m[key] = b
	}
	b.count += count
	b.value += value
	p.mu.Unlock()
}

// SampleCPU attributes d of on-CPU guest time to stack. Safe on nil.
func (p *Profiler) SampleCPU(stack []string, d time.Duration) {
	if p == nil || d <= 0 {
		return
	}
	p.cpuSamples.Add(1)
	p.add(CPU, stack, 1, int64(d))
}

// AllocReady reports whether the next allocation event should be
// sampled, advancing the 1-in-N gate. Callers walk the stack only
// when it returns true. Safe on nil (always false).
func (p *Profiler) AllocReady() bool {
	if p == nil {
		return false
	}
	if p.allocCred.Add(-1) > 0 {
		return false
	}
	p.allocCred.Store(p.allocRate)
	return true
}

// SampleAlloc records one sampled allocation event of bytes at stack,
// scaling bytes and the object count by the sampling rate so the
// profile estimates totals. Safe on nil.
func (p *Profiler) SampleAlloc(stack []string, bytes int64) {
	if p == nil {
		return
	}
	p.add(Alloc, stack, p.allocRate, bytes*p.allocRate)
}

// SampleBlock attributes d of blocked time (one contention event) to
// stack. Safe on nil.
func (p *Profiler) SampleBlock(stack []string, d time.Duration) {
	if p == nil || d <= 0 {
		return
	}
	p.add(Block, stack, 1, int64(d))
}

// Snapshot is a point-in-time copy of one kind's folded profile.
type Snapshot struct {
	Kind    Kind      `json:"kind"`
	Taken   time.Time `json:"taken"`
	Entries []Entry   `json:"entries"`
}

// Snapshot copies the folded profile for kind, entries sorted by
// descending Value. Safe on nil (empty snapshot).
func (p *Profiler) Snapshot(kind Kind) Snapshot {
	s := Snapshot{Kind: kind, Taken: time.Now()}
	if p == nil {
		return s
	}
	p.mu.Lock()
	for _, b := range p.kinds[kind] {
		s.Entries = append(s.Entries, Entry{Stack: b.stack, Count: b.count, Value: b.value})
	}
	p.mu.Unlock()
	sortEntries(s.Entries)
	return s
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Value != es[j].Value {
			return es[i].Value > es[j].Value
		}
		return strings.Join(es[i].Stack, ";") < strings.Join(es[j].Stack, ";")
	})
}

// Delta returns the growth from prev to cur — the profile of the
// window between the two snapshots. Entries that shrank or vanished
// (impossible under normal operation) are dropped.
func Delta(prev, cur Snapshot) Snapshot {
	base := make(map[string]Entry, len(prev.Entries))
	for _, e := range prev.Entries {
		base[strings.Join(e.Stack, ";")] = e
	}
	out := Snapshot{Kind: cur.Kind, Taken: cur.Taken}
	for _, e := range cur.Entries {
		if b, ok := base[strings.Join(e.Stack, ";")]; ok {
			e.Count -= b.Count
			e.Value -= b.Value
		}
		if e.Count > 0 || e.Value > 0 {
			out.Entries = append(out.Entries, e)
		}
	}
	sortEntries(out.Entries)
	return out
}

// Merge folds several snapshots of the same kind into one (used by
// the ops server to aggregate across registered sources). Stacks are
// merged as-is; callers wanting per-source attribution prefix the
// stacks themselves.
func Merge(snaps ...Snapshot) Snapshot {
	out := Snapshot{}
	acc := map[string]*Entry{}
	var keys []string
	for _, s := range snaps {
		if out.Kind == "" {
			out.Kind = s.Kind
		}
		if s.Taken.After(out.Taken) {
			out.Taken = s.Taken
		}
		for _, e := range s.Entries {
			key := strings.Join(e.Stack, ";")
			if a, ok := acc[key]; ok {
				a.Count += e.Count
				a.Value += e.Value
			} else {
				cp := e
				cp.Stack = append([]string(nil), e.Stack...)
				acc[key] = &cp
				keys = append(keys, key)
			}
		}
	}
	for _, k := range keys {
		out.Entries = append(out.Entries, *acc[k])
	}
	sortEntries(out.Entries)
	return out
}

// WriteCollapsed renders the snapshot in Brendan Gregg's collapsed
// stack format ("frame;frame;frame weight"), one line per folded
// stack, weighted by Value — ready for flamegraph.pl / speedscope.
func (s Snapshot) WriteCollapsed(w io.Writer) error {
	for _, e := range s.Entries {
		if _, err := fmt.Fprintf(w, "%s %d\n", strings.Join(e.Stack, ";"), e.Value); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes the snapshot to path, picking the format by
// extension: ".pb.gz" gets the pprof protobuf (open with
// `go tool pprof path`), ".json" the JSON snapshot, anything else the
// collapsed-stack text. This is the shared exit path behind the cmd
// drivers' -prof-out flag.
func (s Snapshot) WriteFile(path string, duration time.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch {
	case strings.HasSuffix(path, ".pb.gz"):
		err = s.WritePprof(f, duration)
	case strings.HasSuffix(path, ".json"):
		err = s.WriteJSON(f)
	default:
		err = s.WriteCollapsed(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// MethodWeight is one entry of a per-method (leaf-attributed,
// pc-stripped) ranking.
type MethodWeight struct {
	Method string `json:"method"`
	Count  int64  `json:"count"`
	Value  int64  `json:"value"`
}

// LeafMethod strips the ":pc" suffix off a leaf frame.
func LeafMethod(frame string) string {
	if i := strings.LastIndexByte(frame, ':'); i >= 0 {
		return frame[:i]
	}
	return frame
}

// TopMethods ranks methods by leaf-attributed Value for kind and
// returns the top n. Safe on nil (empty).
func (p *Profiler) TopMethods(kind Kind, n int) []MethodWeight {
	if p == nil {
		return nil
	}
	return TopMethods(p.Snapshot(kind), n)
}

// TopMethods ranks the snapshot's leaf methods by Value.
func TopMethods(s Snapshot, n int) []MethodWeight {
	acc := map[string]*MethodWeight{}
	for _, e := range s.Entries {
		if len(e.Stack) == 0 {
			continue
		}
		m := LeafMethod(e.Stack[len(e.Stack)-1])
		w := acc[m]
		if w == nil {
			w = &MethodWeight{Method: m}
			acc[m] = w
		}
		w.Count += e.Count
		w.Value += e.Value
	}
	out := make([]MethodWeight, 0, len(acc))
	for _, w := range acc {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Method < out[j].Method
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// FormatTop renders the snapshot's top-n hot methods one per line —
// the cmd drivers' exit summary when -prof runs without -prof-out.
func FormatTop(s Snapshot, n int) string {
	var b strings.Builder
	for _, m := range TopMethods(s, n) {
		fmt.Fprintf(&b, "  %10.1fms  %6d  %s\n", float64(m.Value)/1e6, m.Count, m.Method)
	}
	return b.String()
}

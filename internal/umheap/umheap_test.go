package umheap

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"doppio/internal/jlong"
)

func heaps() map[string]*Heap {
	return map[string]*Heap{
		"typed":  New(1<<16, true, nil),
		"number": New(1<<16, false, nil),
	}
}

func TestMallocAlignmentAndNonNull(t *testing.T) {
	for name, h := range heaps() {
		for _, n := range []int{0, 1, 7, 8, 9, 100} {
			addr, err := h.Malloc(n)
			if err != nil {
				t.Fatalf("%s: Malloc(%d): %v", name, n, err)
			}
			if addr == 0 {
				t.Errorf("%s: Malloc returned NULL", name)
			}
			if addr%8 != 0 {
				t.Errorf("%s: Malloc(%d) = %d, not 8-aligned", name, n, addr)
			}
		}
	}
}

func TestMallocDistinctRegions(t *testing.T) {
	h := New(1<<12, true, nil)
	a, _ := h.Malloc(16)
	b, _ := h.Malloc(16)
	if a == b || (b > a && b < a+16) || (a > b && a < b+16) {
		t.Errorf("overlapping allocations %d, %d", a, b)
	}
}

func TestFreeAndReuse(t *testing.T) {
	h := New(256, true, nil)
	a, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	b, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Errorf("first fit should reuse freed block: got %d, want %d", b, a)
	}
}

func TestDoubleFree(t *testing.T) {
	h := New(256, true, nil)
	a, _ := h.Malloc(8)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err == nil {
		t.Error("double free not detected")
	}
	if err := h.Free(12345); err == nil {
		t.Error("bad free not detected")
	}
}

func TestOOM(t *testing.T) {
	h := New(128, true, nil)
	if _, err := h.Malloc(1 << 20); err != ErrOOM {
		t.Errorf("err = %v, want ErrOOM", err)
	}
}

func TestCoalescing(t *testing.T) {
	h := New(1<<12, true, nil)
	a, _ := h.Malloc(64)
	b, _ := h.Malloc(64)
	c, _ := h.Malloc(64)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(c); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(b); err != nil {
		t.Fatal(err)
	}
	if h.FreeBlocks() != 1 {
		t.Errorf("FreeBlocks = %d after freeing everything, want 1 (coalesced)", h.FreeBlocks())
	}
	// The whole arena must be allocatable again.
	if _, err := h.Malloc(h.Size() - 8); err != nil {
		t.Errorf("arena not fully coalesced: %v", err)
	}
}

func TestAllocatedBytes(t *testing.T) {
	h := New(1<<12, true, nil)
	a, _ := h.Malloc(10) // rounds to 16
	if got := h.AllocatedBytes(); got != 16 {
		t.Errorf("AllocatedBytes = %d, want 16", got)
	}
	h.Free(a)
	if got := h.AllocatedBytes(); got != 0 {
		t.Errorf("AllocatedBytes after free = %d", got)
	}
}

func TestScalarRoundTrips(t *testing.T) {
	for name, h := range heaps() {
		addr, _ := h.Malloc(64)
		h.StoreU8(addr, 0xAB)
		if h.LoadU8(addr) != 0xAB {
			t.Errorf("%s: u8", name)
		}
		h.StoreI8(addr+1, -5)
		if h.LoadI8(addr+1) != -5 {
			t.Errorf("%s: i8", name)
		}
		h.StoreU16(addr+2, 0xBEEF)
		if h.LoadU16(addr+2) != 0xBEEF {
			t.Errorf("%s: u16", name)
		}
		h.StoreI16(addr+6, -12345)
		if h.LoadI16(addr+6) != -12345 {
			t.Errorf("%s: i16", name)
		}
		h.StoreI32(addr+8, -123456789)
		if h.LoadI32(addr+8) != -123456789 {
			t.Errorf("%s: i32", name)
		}
		h.StoreI64(addr+16, jlong.FromInt64(-1234567890123456789))
		if h.LoadI64(addr+16).Int64() != -1234567890123456789 {
			t.Errorf("%s: i64", name)
		}
		h.StoreF32(addr+24, 3.5)
		if h.LoadF32(addr+24) != 3.5 {
			t.Errorf("%s: f32", name)
		}
		h.StoreF64(addr+32, math.Pi)
		if h.LoadF64(addr+32) != math.Pi {
			t.Errorf("%s: f64", name)
		}
	}
}

func TestLittleEndianLayout(t *testing.T) {
	for name, h := range heaps() {
		addr, _ := h.Malloc(8)
		h.StoreI32(addr, 0x04030201)
		for i, want := range []uint8{1, 2, 3, 4} {
			if got := h.LoadU8(addr + i); got != want {
				t.Errorf("%s: byte %d = %#x, want %#x (little endian)", name, i, got, want)
			}
		}
	}
}

func TestUnalignedAccess(t *testing.T) {
	for name, h := range heaps() {
		addr, _ := h.Malloc(16)
		h.StoreI32(addr+1, 0x0A0B0C0D)
		if got := h.LoadI32(addr + 1); got != 0x0A0B0C0D {
			t.Errorf("%s: unaligned i32 = %#x", name, got)
		}
		h.StoreU16(addr+9, 0x1234)
		if got := h.LoadU16(addr + 9); got != 0x1234 {
			t.Errorf("%s: unaligned u16 = %#x", name, got)
		}
	}
}

func TestStoresAgreeProperty(t *testing.T) {
	typed := New(4096, true, nil)
	num := New(4096, false, nil)
	f := func(off uint8, v int32) bool {
		addr := 8 + int(off)%1024*4
		typed.StoreI32(addr, v)
		num.StoreI32(addr, v)
		return typed.LoadI32(addr) == num.LoadI32(addr) && typed.LoadI32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBulkOps(t *testing.T) {
	for name, h := range heaps() {
		addr, _ := h.Malloc(64)
		data := []byte{9, 8, 7, 6, 5, 4, 3, 2, 1}
		h.WriteBytes(addr, data)
		if !bytes.Equal(h.ReadBytes(addr, len(data)), data) {
			t.Errorf("%s: WriteBytes/ReadBytes mismatch", name)
		}
		h.Memset(addr, 0xFF, 4)
		if !bytes.Equal(h.ReadBytes(addr, 5), []byte{0xFF, 0xFF, 0xFF, 0xFF, 5}) {
			t.Errorf("%s: Memset mismatch", name)
		}
		// Overlapping memmove semantics.
		h.WriteBytes(addr, []byte{1, 2, 3, 4, 5})
		h.Memcpy(addr+2, addr, 3)
		if !bytes.Equal(h.ReadBytes(addr, 5), []byte{1, 2, 1, 2, 3}) {
			t.Errorf("%s: forward overlap = %v", name, h.ReadBytes(addr, 5))
		}
		h.WriteBytes(addr, []byte{1, 2, 3, 4, 5})
		h.Memcpy(addr, addr+2, 3)
		if !bytes.Equal(h.ReadBytes(addr, 5), []byte{3, 4, 5, 4, 5}) {
			t.Errorf("%s: backward overlap = %v", name, h.ReadBytes(addr, 5))
		}
	}
}

func TestCString(t *testing.T) {
	h := New(256, true, nil)
	addr, _ := h.Malloc(32)
	h.WriteCString(addr, "hello")
	if got := h.CString(addr); got != "hello" {
		t.Errorf("CString = %q", got)
	}
	h.WriteCString(addr, "")
	if got := h.CString(addr); got != "" {
		t.Errorf("empty CString = %q", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	h := New(64, true, nil)
	for _, fn := range []func(){
		func() { h.LoadU8(64) },
		func() { h.StoreI32(61, 0) },
		func() { h.LoadU8(-1) },
		func() { h.ReadBytes(60, 8) },
	} {
		func() {
			defer func() {
				if _, ok := recover().(*AccessError); !ok {
					t.Error("expected AccessError panic")
				}
			}()
			fn()
		}()
	}
}

func TestAllocHook(t *testing.T) {
	var saw int
	New(1024, true, func(n int) { saw = n })
	if saw != 1024 {
		t.Errorf("hook saw %d", saw)
	}
	New(1024, false, func(n int) { t.Error("number store reported typed alloc") })
}

func TestMallocFreeStress(t *testing.T) {
	h := New(1<<14, true, nil)
	addrs := make(map[int]byte)
	seq := byte(1)
	for round := 0; round < 200; round++ {
		if round%3 != 2 {
			if addr, err := h.Malloc(16 + round%48); err == nil {
				h.Memset(addr, seq, 16)
				addrs[addr] = seq
				seq++
			}
		} else {
			for addr, v := range addrs {
				// Verify contents survived neighbours' writes.
				if got := h.LoadU8(addr); got != v {
					t.Fatalf("corruption at %d: %d != %d", addr, got, v)
				}
				if err := h.Free(addr); err != nil {
					t.Fatal(err)
				}
				delete(addrs, addr)
				break
			}
		}
	}
	for addr, v := range addrs {
		if got := h.LoadU8(addr); got != v {
			t.Fatalf("final corruption at %d", addr)
		}
	}
}

func BenchmarkTypedHeapI32(b *testing.B) {
	h := New(1<<16, true, nil)
	addr, _ := h.Malloc(4096)
	for i := 0; i < b.N; i++ {
		off := addr + i*4%4096
		h.StoreI32(off, int32(i))
		if h.LoadI32(off) != int32(i) {
			b.Fatal("mismatch")
		}
	}
}

func BenchmarkNumberHeapI32(b *testing.B) {
	h := New(1<<16, false, nil)
	addr, _ := h.Malloc(4096)
	for i := 0; i < b.N; i++ {
		off := addr + i*4%4096
		h.StoreI32(off, int32(i))
		if h.LoadI32(off) != int32(i) {
			b.Fatal("mismatch")
		}
	}
}

// Package umheap implements Doppio's unmanaged heap (§5.2): a
// straightforward first-fit memory allocator operating on an array of
// 32-bit signed integers, with all data stored little-endian.
//
// JavaScript only supports bit operations on signed 32-bit integers,
// which is why each array element represents exactly 32 bits of data.
// Where typed arrays are available the heap is backed by a real int32
// array; elsewhere it falls back to a plain array of numbers, as the
// paper describes. Data written to and read from the heap is copied
// and encoded/decoded, never aliased (§5.2, "data stored to and read
// from DOPPIO's heap are actually copied").
package umheap

import (
	"fmt"
	"math"

	"doppio/internal/jlong"
)

// WordStore is the raw storage: a fixed array of 32-bit words.
type WordStore interface {
	// Words returns the number of 32-bit words.
	Words() int
	// Get returns the word at index i.
	Get(i int) int32
	// Set writes the word at index i.
	Set(i int, v int32)
}

// Int32Store backs the heap with a typed Int32Array.
type Int32Store []int32

// Words returns the word count.
func (s Int32Store) Words() int { return len(s) }

// Get returns word i.
func (s Int32Store) Get(i int) int32 { return s[i] }

// Set writes word i.
func (s Int32Store) Set(i int, v int32) { s[i] = v }

// NumberStore backs the heap with a plain JavaScript array of numbers
// (one float64 per word), for browsers without typed arrays.
type NumberStore []float64

// Words returns the word count.
func (s NumberStore) Words() int { return len(s) }

// Get returns word i.
func (s NumberStore) Get(i int) int32 { return int32(s[i]) }

// Set writes word i.
func (s NumberStore) Set(i int, v int32) { s[i] = float64(v) }

// align is the allocation granularity; 8 keeps doubles aligned.
const align = 8

type block struct{ addr, size int }

// Heap is a first-fit unmanaged heap. Address 0 is reserved as NULL.
type Heap struct {
	words  WordStore
	free   []block     // sorted by address, coalesced
	allocs map[int]int // addr → size

	// allocHook, when set, observes every successful Malloc with the
	// rounded byte size. The heap has no guest-stack context of its
	// own; VMs install a closure that walks their frames (the guest
	// allocation profile). Nil when profiling is off.
	allocHook func(n int)
}

// SetAllocHook installs (or, with nil, removes) the allocation
// observer. The hook runs inline on the allocating goroutine.
func (h *Heap) SetAllocHook(hook func(n int)) { h.allocHook = hook }

// New creates a heap of size bytes (rounded up to a word multiple),
// backed by a typed array when typed is true. onTypedAlloc, if non-nil,
// observes the backing allocation (for the Safari leak model).
func New(size int, typed bool, onTypedAlloc func(int)) *Heap {
	if size < align*2 {
		size = align * 2
	}
	nwords := (size + 3) / 4
	var ws WordStore
	if typed {
		ws = make(Int32Store, nwords)
		if onTypedAlloc != nil {
			onTypedAlloc(nwords * 4)
		}
	} else {
		ws = make(NumberStore, nwords)
	}
	h := &Heap{words: ws, allocs: make(map[int]int)}
	// Address 0 is NULL; the arena starts at the first aligned slot.
	h.free = []block{{addr: align, size: nwords*4 - align}}
	return h
}

// Size returns the heap capacity in bytes.
func (h *Heap) Size() int { return h.words.Words() * 4 }

// Clone returns a deep copy of the heap — same contents, same free
// list, same allocation map — over fresh backing storage, so writes
// through the copy are invisible to the original. This is the address
// space duplication behind the process layer's fork: the child VM
// resumes on a byte-identical image. onTypedAlloc, if non-nil,
// observes the new backing allocation exactly as New would.
func (h *Heap) Clone(onTypedAlloc func(int)) *Heap {
	var ws WordStore
	switch s := h.words.(type) {
	case Int32Store:
		c := make(Int32Store, len(s))
		copy(c, s)
		ws = c
		if onTypedAlloc != nil {
			onTypedAlloc(len(c) * 4)
		}
	case NumberStore:
		c := make(NumberStore, len(s))
		copy(c, s)
		ws = c
	default:
		// An unknown store cannot be duplicated efficiently; fall back
		// to a word-by-word copy into the plain representation.
		c := make(NumberStore, h.words.Words())
		for i := range c {
			c.Set(i, h.words.Get(i))
		}
		ws = c
	}
	clone := &Heap{words: ws, free: append([]block(nil), h.free...), allocs: make(map[int]int, len(h.allocs))}
	for a, n := range h.allocs {
		clone.allocs[a] = n
	}
	return clone
}

// ErrOOM reports allocation failure.
var ErrOOM = fmt.Errorf("umheap: out of memory")

// ErrBadFree reports a Free of an address that was never allocated.
type ErrBadFree int

func (e ErrBadFree) Error() string { return fmt.Sprintf("umheap: invalid free of address %d", int(e)) }

// Malloc allocates n bytes (first fit) and returns the address, which
// is always a non-zero multiple of 8. Allocating zero bytes returns a
// valid unique address of minimal size.
func (h *Heap) Malloc(n int) (int, error) {
	if n < 1 {
		n = 1
	}
	n = (n + align - 1) &^ (align - 1)
	for i, b := range h.free {
		if b.size < n {
			continue
		}
		addr := b.addr
		if b.size == n {
			h.free = append(h.free[:i], h.free[i+1:]...)
		} else {
			h.free[i] = block{addr: b.addr + n, size: b.size - n}
		}
		h.allocs[addr] = n
		if h.allocHook != nil {
			h.allocHook(n)
		}
		return addr, nil
	}
	return 0, ErrOOM
}

// Free releases an allocation, coalescing adjacent free blocks.
func (h *Heap) Free(addr int) error {
	size, ok := h.allocs[addr]
	if !ok {
		return ErrBadFree(addr)
	}
	delete(h.allocs, addr)
	// Insert sorted by address.
	i := 0
	for i < len(h.free) && h.free[i].addr < addr {
		i++
	}
	h.free = append(h.free, block{})
	copy(h.free[i+1:], h.free[i:])
	h.free[i] = block{addr: addr, size: size}
	// Coalesce with successor, then predecessor.
	if i+1 < len(h.free) && h.free[i].addr+h.free[i].size == h.free[i+1].addr {
		h.free[i].size += h.free[i+1].size
		h.free = append(h.free[:i+1], h.free[i+2:]...)
	}
	if i > 0 && h.free[i-1].addr+h.free[i-1].size == h.free[i].addr {
		h.free[i-1].size += h.free[i].size
		h.free = append(h.free[:i], h.free[i+1:]...)
	}
	return nil
}

// AllocatedBytes reports the total bytes currently allocated.
func (h *Heap) AllocatedBytes() int {
	total := 0
	for _, n := range h.allocs {
		total += n
	}
	return total
}

// FreeBlocks returns the number of fragments on the free list.
func (h *Heap) FreeBlocks() int { return len(h.free) }

// AllocCount reports the number of live allocations.
func (h *Heap) AllocCount() int { return len(h.allocs) }

// Extent is one contiguous region of the heap, for free-list maps in
// diagnostics output.
type Extent struct {
	Addr int `json:"addr"`
	Size int `json:"size"`
}

// FreeList returns a copy of the free list, sorted by address — the
// fragmentation map post-mortem reports and /debug/heap print.
func (h *Heap) FreeList() []Extent {
	out := make([]Extent, len(h.free))
	for i, b := range h.free {
		out[i] = Extent{Addr: b.addr, Size: b.size}
	}
	return out
}

func (h *Heap) check(addr, n int) {
	if addr < 0 || addr+n > h.Size() {
		panic(&AccessError{Addr: addr, N: n, Size: h.Size()})
	}
}

// AccessError reports an out-of-bounds heap access; the JVM natives
// map it onto the appropriate Java exception.
type AccessError struct{ Addr, N, Size int }

func (e *AccessError) Error() string {
	return fmt.Sprintf("umheap: access of %d bytes at address %d outside heap of %d bytes", e.N, e.Addr, e.Size)
}

// --- byte-granularity little-endian accessors ---

// LoadU8 reads the byte at addr.
func (h *Heap) LoadU8(addr int) uint8 {
	h.check(addr, 1)
	w := uint32(h.words.Get(addr >> 2))
	return uint8(w >> uint((addr&3)*8))
}

// StoreU8 writes the byte at addr.
func (h *Heap) StoreU8(addr int, v uint8) {
	h.check(addr, 1)
	i := addr >> 2
	shift := uint((addr & 3) * 8)
	w := uint32(h.words.Get(i))
	w = w&^(0xFF<<shift) | uint32(v)<<shift
	h.words.Set(i, int32(w))
}

// LoadI8 reads the signed byte at addr.
func (h *Heap) LoadI8(addr int) int8 { return int8(h.LoadU8(addr)) }

// StoreI8 writes the signed byte at addr.
func (h *Heap) StoreI8(addr int, v int8) { h.StoreU8(addr, uint8(v)) }

// LoadU16 reads a little-endian uint16 at addr (any alignment).
func (h *Heap) LoadU16(addr int) uint16 {
	return uint16(h.LoadU8(addr)) | uint16(h.LoadU8(addr+1))<<8
}

// StoreU16 writes a little-endian uint16 at addr.
func (h *Heap) StoreU16(addr int, v uint16) {
	h.StoreU8(addr, uint8(v))
	h.StoreU8(addr+1, uint8(v>>8))
}

// LoadI16 reads a little-endian int16 at addr.
func (h *Heap) LoadI16(addr int) int16 { return int16(h.LoadU16(addr)) }

// StoreI16 writes a little-endian int16 at addr.
func (h *Heap) StoreI16(addr int, v int16) { h.StoreU16(addr, uint16(v)) }

// LoadI32 reads a little-endian int32 at addr.
func (h *Heap) LoadI32(addr int) int32 {
	if addr&3 == 0 {
		h.check(addr, 4)
		return h.words.Get(addr >> 2)
	}
	return int32(uint32(h.LoadU16(addr)) | uint32(h.LoadU16(addr+2))<<16)
}

// StoreI32 writes a little-endian int32 at addr.
func (h *Heap) StoreI32(addr int, v int32) {
	if addr&3 == 0 {
		h.check(addr, 4)
		h.words.Set(addr>>2, v)
		return
	}
	h.StoreU16(addr, uint16(uint32(v)))
	h.StoreU16(addr+2, uint16(uint32(v)>>16))
}

// LoadI64 reads a little-endian 64-bit integer at addr as a software
// long.
func (h *Heap) LoadI64(addr int) jlong.Long {
	lo := uint32(h.LoadI32(addr))
	hi := uint32(h.LoadI32(addr + 4))
	return jlong.Long{Hi: hi, Lo: lo}
}

// StoreI64 writes a little-endian 64-bit integer at addr.
func (h *Heap) StoreI64(addr int, v jlong.Long) {
	h.StoreI32(addr, int32(v.Lo))
	h.StoreI32(addr+4, int32(v.Hi))
}

// LoadF32 reads a little-endian float32 at addr.
func (h *Heap) LoadF32(addr int) float32 {
	return math.Float32frombits(uint32(h.LoadI32(addr)))
}

// StoreF32 writes a little-endian float32 at addr.
func (h *Heap) StoreF32(addr int, v float32) {
	h.StoreI32(addr, int32(math.Float32bits(v)))
}

// LoadF64 reads a little-endian float64 at addr.
func (h *Heap) LoadF64(addr int) float64 {
	bits := uint64(uint32(h.LoadI32(addr))) | uint64(uint32(h.LoadI32(addr+4)))<<32
	return math.Float64frombits(bits)
}

// StoreF64 writes a little-endian float64 at addr.
func (h *Heap) StoreF64(addr int, v float64) {
	bits := math.Float64bits(v)
	h.StoreI32(addr, int32(uint32(bits)))
	h.StoreI32(addr+4, int32(uint32(bits>>32)))
}

// ReadBytes copies n bytes starting at addr out of the heap.
func (h *Heap) ReadBytes(addr, n int) []byte {
	h.check(addr, n)
	out := make([]byte, n)
	for i := range out {
		out[i] = h.LoadU8(addr + i)
	}
	return out
}

// WriteBytes copies b into the heap at addr.
func (h *Heap) WriteBytes(addr int, b []byte) {
	h.check(addr, len(b))
	for i, c := range b {
		h.StoreU8(addr+i, c)
	}
}

// Memset fills n bytes at addr with v.
func (h *Heap) Memset(addr int, v byte, n int) {
	h.check(addr, n)
	for i := 0; i < n; i++ {
		h.StoreU8(addr+i, v)
	}
}

// Memcpy copies n bytes from src to dst within the heap, handling
// overlap like memmove.
func (h *Heap) Memcpy(dst, src, n int) {
	h.check(dst, n)
	h.check(src, n)
	if dst == src || n == 0 {
		return
	}
	if dst < src {
		for i := 0; i < n; i++ {
			h.StoreU8(dst+i, h.LoadU8(src+i))
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			h.StoreU8(dst+i, h.LoadU8(src+i))
		}
	}
}

// CString reads a NUL-terminated string starting at addr.
func (h *Heap) CString(addr int) string {
	var out []byte
	for {
		b := h.LoadU8(addr)
		if b == 0 {
			return string(out)
		}
		out = append(out, b)
		addr++
	}
}

// WriteCString writes s plus a NUL terminator at addr.
func (h *Heap) WriteCString(addr int, s string) {
	h.WriteBytes(addr, []byte(s))
	h.StoreU8(addr+len(s), 0)
}

package fstrace

import (
	"testing"

	"doppio/internal/browser"
	"doppio/internal/buffer"
	"doppio/internal/telemetry"
	"doppio/internal/vfs"
)

func TestGenerateMatchesPaperProfile(t *testing.T) {
	tr := Generate(PaperParams())
	s := tr.Stats()
	if s.Ops != 3185 {
		t.Errorf("Ops = %d, want 3185", s.Ops)
	}
	// Unique files read should be close to 1560 (every file is read at
	// least once when op budget allows).
	if s.UniqueFiles < 1400 || s.UniqueFiles > 1560 {
		t.Errorf("UniqueFiles = %d, want ≈1560", s.UniqueFiles)
	}
	if s.BytesRead < 9_000_000 {
		t.Errorf("BytesRead = %d, want >10MB-ish", s.BytesRead)
	}
	if s.BytesWritten < 90_000 || s.BytesWritten > 105_000 {
		t.Errorf("BytesWritten = %d, want ≈97KB", s.BytesWritten)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenerateParams{Ops: 100, UniqueFiles: 10, BytesRead: 1000, BytesWritten: 100})
	b := Generate(GenerateParams{Ops: 100, UniqueFiles: 10, BytesRead: 1000, BytesWritten: 100})
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("nondeterministic op count")
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestReplayVFS(t *testing.T) {
	tr := Generate(GenerateParams{Ops: 200, UniqueFiles: 20, BytesRead: 20 * 256, BytesWritten: 512})
	win := browser.NewWindow(browser.Chrome28)
	bufs := &buffer.Factory{Typed: true}
	fs := vfs.New(win.Loop, bufs, vfs.NewInMemory())

	var replayOK int
	var replayErr error
	win.Loop.Post("seed", func() {
		SeedVFS(fs, tr, func(err error) {
			if err != nil {
				t.Errorf("seed: %v", err)
				return
			}
			ReplayVFS(win.Loop, fs, tr, func(ok int, err error) {
				replayOK, replayErr = ok, err
			})
		})
	})
	if err := win.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if replayErr != nil {
		t.Fatal(replayErr)
	}
	if replayOK != len(tr.Ops) {
		t.Errorf("ok ops = %d / %d", replayOK, len(tr.Ops))
	}
}

func TestReplayOS(t *testing.T) {
	tr := Generate(GenerateParams{Ops: 120, UniqueFiles: 12, BytesRead: 12 * 100, BytesWritten: 300})
	root := t.TempDir()
	if err := SeedOS(root, tr); err != nil {
		t.Fatal(err)
	}
	ok, err := ReplayOS(root, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ok != len(tr.Ops) {
		t.Errorf("ok ops = %d / %d", ok, len(tr.Ops))
	}
}

func TestRecorder(t *testing.T) {
	win := browser.NewWindow(browser.Chrome28)
	bufs := &buffer.Factory{Typed: true}
	fs := vfs.New(win.Loop, bufs, vfs.NewInMemory())
	var rec Recorder
	rec.Attach(fs)
	win.Loop.Post("ops", func() {
		fs.WriteFile("/a.txt", []byte("hi"), func(error) {
			fs.ReadFile("/a.txt", func(b *buffer.Buffer, err error) {
				fs.Stat("/a.txt", func(vfs.Stats, error) {})
			})
		})
	})
	if err := win.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Ops) != 3 {
		t.Fatalf("recorded %d ops: %+v", len(rec.Ops), rec.Ops)
	}
	if rec.Ops[0].Kind != OpWrite || rec.Ops[1].Kind != OpRead || rec.Ops[2].Kind != OpStat {
		t.Errorf("ops = %+v", rec.Ops)
	}
}

func TestReplayVFSWithTelemetry(t *testing.T) {
	tr := Generate(GenerateParams{Ops: 120, UniqueFiles: 12, BytesRead: 12 * 128, BytesWritten: 256})
	hub := telemetry.NewHub()
	win := browser.NewWindow(browser.Chrome28)
	bufs := &buffer.Factory{Typed: true}
	fs := vfs.New(win.Loop, bufs, vfs.Instrument(vfs.NewInMemory(), hub))

	var replayOK int
	win.Loop.Post("seed", func() {
		SeedVFS(fs, tr, func(err error) {
			if err != nil {
				t.Errorf("seed: %v", err)
				return
			}
			ReplayVFSWith(win.Loop, fs, tr, hub, func(ok int, err error) {
				if err != nil {
					t.Errorf("replay: %v", err)
				}
				replayOK = ok
			})
		})
	})
	if err := win.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if replayOK != len(tr.Ops) {
		t.Fatalf("ok ops = %d / %d", replayOK, len(tr.Ops))
	}

	// Per-op replay latencies, keyed by trace op kind.
	var kinds = map[OpKind]int64{}
	for _, op := range tr.Ops {
		kinds[op.Kind]++
	}
	total := int64(0)
	for kind, want := range kinds {
		got := hub.Registry.Histogram("fstrace", string(kind)).Count()
		if got != want {
			t.Errorf("fstrace/%s count = %d, want %d", kind, got, want)
		}
		total += got
	}
	if total != int64(len(tr.Ops)) {
		t.Errorf("total observed = %d, want %d", total, len(tr.Ops))
	}

	// The instrumented backend must have seen the traffic too (replay
	// plus seeding).
	if got := hub.Registry.Counter("vfs.InMemory", "ops").Value(); got < int64(len(tr.Ops)) {
		t.Errorf("vfs.InMemory/ops = %d, want >= %d", got, len(tr.Ops))
	}
}

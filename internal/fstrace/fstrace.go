// Package fstrace records and replays file system call traces — the
// methodology of the paper's Figure 6, which replays "recorded file
// system calls from DOPPIOJVM's javac benchmark" against the Doppio
// file system and against Node JS on the native file system.
package fstrace

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"time"

	"doppio/internal/buffer"
	"doppio/internal/eventloop"
	"doppio/internal/telemetry"
	"doppio/internal/vfs"
)

// OpKind enumerates traced operations.
type OpKind string

// The operation kinds a trace may contain.
const (
	OpStat    OpKind = "stat"
	OpRead    OpKind = "read"  // whole-file read (open+read+close)
	OpWrite   OpKind = "write" // whole-file write (open+write+close)
	OpReaddir OpKind = "readdir"
	OpExists  OpKind = "exists"
)

// Op is one traced call.
type Op struct {
	Kind OpKind
	Path string
	// Size is the byte count written (for OpWrite).
	Size int
}

// Trace is an ordered sequence of file system calls plus the file tree
// it runs against.
type Trace struct {
	Ops []Op
	// Files seeds the tree: path → content size in bytes.
	Files map[string]int
	// Dirs lists directories (beyond those implied by Files).
	Dirs []string
}

// Stats summarizes a trace the way §7.3 reports the javac trace.
type Stats struct {
	Ops          int
	UniqueFiles  int
	BytesRead    int
	BytesWritten int
}

// Stats computes the summary counters for the trace.
func (t *Trace) Stats() Stats {
	s := Stats{Ops: len(t.Ops)}
	seen := map[string]bool{}
	for _, op := range t.Ops {
		switch op.Kind {
		case OpRead:
			s.BytesRead += t.Files[op.Path]
			seen[op.Path] = true
		case OpWrite:
			s.BytesWritten += op.Size
		}
	}
	s.UniqueFiles = len(seen)
	return s
}

// GenerateParams scale the synthetic trace. Defaults reproduce the
// paper's javac workload profile: "3185 file system operations,
// touches 1560 unique files, reads over 10.5 megabytes of data, and
// writes 97 kilobytes of data back to disk" (§7.3). The mix mirrors a
// class-loading compiler: stat+read per class file, a directory
// listing here and there, a few output writes.
type GenerateParams struct {
	Ops          int
	UniqueFiles  int
	BytesRead    int
	BytesWritten int
}

// PaperParams returns the Figure 6 workload profile.
func PaperParams() GenerateParams {
	return GenerateParams{Ops: 3185, UniqueFiles: 1560, BytesRead: 10_500_000, BytesWritten: 97_000}
}

// Generate builds a deterministic trace with the requested profile.
func Generate(p GenerateParams) *Trace {
	if p.UniqueFiles < 1 {
		p.UniqueFiles = 1
	}
	t := &Trace{Files: make(map[string]int)}
	fileSize := p.BytesRead / p.UniqueFiles
	if fileSize < 1 {
		fileSize = 1
	}
	// A shallow package tree, like a class path.
	nDirs := p.UniqueFiles/64 + 1
	paths := make([]string, p.UniqueFiles)
	for d := 0; d < nDirs; d++ {
		t.Dirs = append(t.Dirs, fmt.Sprintf("/classes/pkg%02d", d))
	}
	for i := 0; i < p.UniqueFiles; i++ {
		paths[i] = fmt.Sprintf("/classes/pkg%02d/Class%04d.class", i%nDirs, i)
		t.Files[paths[i]] = fileSize
	}

	// Interleave: stat, read per file (2 ops each); periodic readdir;
	// and writes spread across the run.
	nWrites := 24
	writeSize := p.BytesWritten / nWrites
	budget := p.Ops
	fileIdx := 0
	writeIdx := 0
	i := 0
	for budget > 0 {
		switch {
		case i%65 == 64 && writeIdx < nWrites:
			t.Ops = append(t.Ops, Op{Kind: OpWrite, Path: fmt.Sprintf("/out/Out%02d.class", writeIdx), Size: writeSize})
			writeIdx++
			budget--
		case i%50 == 49:
			t.Ops = append(t.Ops, Op{Kind: OpReaddir, Path: t.Dirs[i%nDirs]})
			budget--
		default:
			p := paths[fileIdx%len(paths)]
			fileIdx++
			t.Ops = append(t.Ops, Op{Kind: OpStat, Path: p})
			budget--
			if budget > 0 {
				t.Ops = append(t.Ops, Op{Kind: OpRead, Path: p})
				budget--
			}
		}
		i++
	}
	t.Dirs = append(t.Dirs, "/out")
	return t
}

// fileContent builds deterministic content of the given size.
func fileContent(path string, size int) []byte {
	out := make([]byte, size)
	seed := 0
	for _, c := range path {
		seed = seed*31 + int(c)
	}
	for i := range out {
		seed = seed*1103515245 + 12345
		out[i] = byte(seed >> 16)
	}
	return out
}

// SeedVFS populates a Doppio file system with the trace's tree,
// delivering completion via done. The loop must be run by the caller.
func SeedVFS(fs *vfs.FS, t *Trace, done func(error)) {
	var dirs []string
	dirs = append(dirs, t.Dirs...)
	seenDir := map[string]bool{}
	for p := range t.Files {
		d := filepath.Dir(p)
		if !seenDir[d] {
			seenDir[d] = true
			dirs = append(dirs, d)
		}
	}
	var mkdirs func(i int)
	files := sortedPaths(t.Files)
	var writes func(i int)
	writes = func(i int) {
		if i == len(files) {
			done(nil)
			return
		}
		p := files[i]
		fs.WriteFile(p, fileContent(p, t.Files[p]), func(err error) {
			if err != nil {
				done(err)
				return
			}
			writes(i + 1)
		})
	}
	mkdirs = func(i int) {
		if i == len(dirs) {
			writes(0)
			return
		}
		fs.MkdirAll(dirs[i], func(err error) {
			if err != nil {
				done(err)
				return
			}
			mkdirs(i + 1)
		})
	}
	mkdirs(0)
}

func sortedPaths(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	// Deterministic order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// OpResult is one replayed operation's observable outcome in a
// comparable form: the errno it produced (empty for success) and a
// digest of the data it returned. Two replays of the same trace are
// behaviourally identical exactly when their OpResult logs are equal —
// the comparison the fault-injection A/B harness runs to prove the
// retry layer absorbed every injected fault.
type OpResult struct {
	Kind  OpKind
	Path  string
	Errno string // vfs errno string, "" on success
	Sum   uint64 // FNV-1a of returned data (reads, listings, stats)
}

// String formats one log entry for diffs in test failures.
func (r OpResult) String() string {
	e := r.Errno
	if e == "" {
		e = "OK"
	}
	return fmt.Sprintf("%s %s → %s %016x", r.Kind, r.Path, e, r.Sum)
}

// resultErrno renders an operation error as a stable string: the vfs
// errno when the error classifies, "ERR" otherwise.
func resultErrno(err error) string {
	if err == nil {
		return ""
	}
	if e, ok := vfs.Classify(err); ok {
		return string(e)
	}
	return "ERR"
}

func hashBytes(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// ReplayVFS replays the trace against a Doppio file system, invoking
// done with the number of successful operations. Run the loop to
// completion to drive it.
func ReplayVFS(loop *eventloop.Loop, fs *vfs.FS, t *Trace, done func(okOps int, err error)) {
	ReplayVFSWith(loop, fs, t, nil, done)
}

// ReplayVFSRecord is ReplayVFSWith plus a per-operation result log for
// bit-identical comparison across runs.
func ReplayVFSRecord(loop *eventloop.Loop, fs *vfs.FS, t *Trace, hub *telemetry.Hub, done func(okOps int, log []OpResult, err error)) {
	replay(loop, fs, t, hub, true, done)
}

// ReplayVFSWith is ReplayVFS with per-operation latency telemetry:
// when hub is non-nil, every replayed call's wall time is recorded
// into an "fstrace" histogram named after the operation kind — the
// Figure 6 per-op latency view. A nil hub records nothing.
func ReplayVFSWith(loop *eventloop.Loop, fs *vfs.FS, t *Trace, hub *telemetry.Hub, done func(okOps int, err error)) {
	replay(loop, fs, t, hub, false, func(ok int, _ []OpResult, err error) { done(ok, err) })
}

func replay(loop *eventloop.Loop, fs *vfs.FS, t *Trace, hub *telemetry.Hub, record bool, done func(okOps int, log []OpResult, err error)) {
	var hists map[OpKind]*telemetry.Histogram
	if hub != nil {
		hists = make(map[OpKind]*telemetry.Histogram, 5)
		for _, k := range []OpKind{OpStat, OpRead, OpWrite, OpReaddir, OpExists} {
			hists[k] = hub.Registry.Histogram("fstrace", string(k))
		}
	}
	ok := 0
	var log []OpResult
	if record {
		log = make([]OpResult, 0, len(t.Ops))
	}
	var step func(i int)
	step = func(i int) {
		if i == len(t.Ops) {
			done(ok, log, nil)
			return
		}
		op := t.Ops[i]
		start := time.Now()
		next := func(err error, sum uint64) {
			if h := hists[op.Kind]; h != nil {
				h.ObserveSince(start)
			}
			if err == nil {
				ok++
			}
			if record {
				if err != nil {
					sum = 0
				}
				log = append(log, OpResult{Kind: op.Kind, Path: op.Path, Errno: resultErrno(err), Sum: sum})
			}
			step(i + 1)
		}
		switch op.Kind {
		case OpStat:
			fs.Stat(op.Path, func(st vfs.Stats, err error) {
				next(err, hashBytes([]byte(fmt.Sprintf("%d:%d", st.Type, st.Size))))
			})
		case OpExists:
			fs.Exists(op.Path, func(exists bool) {
				sum := uint64(0)
				if exists {
					sum = 1
				}
				next(nil, sum)
			})
		case OpRead:
			fs.ReadFile(op.Path, func(b *buffer.Buffer, err error) {
				var sum uint64
				if err == nil && b != nil {
					sum = hashBytes(b.Bytes())
				}
				next(err, sum)
			})
		case OpWrite:
			fs.WriteFile(op.Path, fileContent(op.Path, op.Size), func(err error) { next(err, 0) })
		case OpReaddir:
			fs.Readdir(op.Path, func(names []string, err error) {
				next(err, hashBytes([]byte(strings.Join(names, "\x00"))))
			})
		default:
			next(fmt.Errorf("fstrace: unknown op %q", op.Kind), 0)
		}
	}
	step(0)
}

// DiffLogs compares two replay logs and reports the first divergence
// ("" when bit-identical) — the A/B harness's verdict line.
func DiffLogs(a, b []OpResult) string {
	if len(a) != len(b) {
		return fmt.Sprintf("length mismatch: %d vs %d ops", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("op %d diverges: %v vs %v", i, a[i], b[i])
		}
	}
	return ""
}

// SeedOS materializes the trace's tree under root on the host file
// system — the Figure 6 baseline substrate.
func SeedOS(root string, t *Trace) error {
	for _, d := range t.Dirs {
		if err := os.MkdirAll(filepath.Join(root, d), 0o755); err != nil {
			return err
		}
	}
	for p, size := range t.Files {
		full := filepath.Join(root, p)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(full, fileContent(p, size), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ReplayOS replays the trace directly against the host file system —
// "Node JS running on top of the native OS file system".
func ReplayOS(root string, t *Trace) (okOps int, err error) {
	ok := 0
	for _, op := range t.Ops {
		full := filepath.Join(root, op.Path)
		switch op.Kind {
		case OpStat, OpExists:
			if _, err := os.Stat(full); err == nil {
				ok++
			}
		case OpRead:
			if _, err := os.ReadFile(full); err == nil {
				ok++
			}
		case OpWrite:
			if err := os.WriteFile(full, fileContent(op.Path, op.Size), 0o644); err == nil {
				ok++
			}
		case OpReaddir:
			if _, err := os.ReadDir(full); err == nil {
				ok++
			}
		}
	}
	return ok, nil
}

// Recorder captures the operations a live vfs.FS performs — attach it
// with fs.OnOp to record a real workload's trace, as the paper did
// with javac.
type Recorder struct {
	Ops []Op
}

// Attach hooks the recorder into the file system.
func (r *Recorder) Attach(fs *vfs.FS) {
	fs.OnOp = func(op, path string) {
		var kind OpKind
		switch op {
		case "stat", "fstat":
			kind = OpStat
		case "readFile", "read", "open":
			kind = OpRead
		case "writeFile", "write", "appendFile":
			kind = OpWrite
		case "readdir":
			kind = OpReaddir
		case "exists":
			kind = OpExists
		default:
			return
		}
		r.Ops = append(r.Ops, Op{Kind: kind, Path: path})
	}
}

package sockets

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"testing/quick"

	"doppio/internal/browser"
)

func TestFrameRoundTrip(t *testing.T) {
	sizes := []int{0, 1, 125, 126, 127, 65535, 65536, 70000}
	for _, n := range sizes {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i)
		}
		for _, masked := range []bool{false, true} {
			var buf bytes.Buffer
			in := &Frame{Fin: true, Op: OpBinary, Masked: masked, Payload: payload}
			if masked {
				in.MaskKey = [4]byte{1, 2, 3, 4}
			}
			if err := WriteFrame(&buf, in); err != nil {
				t.Fatalf("n=%d masked=%v: %v", n, masked, err)
			}
			out, err := ReadFrame(&buf)
			if err != nil {
				t.Fatalf("n=%d masked=%v: %v", n, masked, err)
			}
			if !out.Fin || out.Op != OpBinary || out.Masked != masked {
				t.Errorf("n=%d: header mismatch %+v", n, out)
			}
			if !bytes.Equal(out.Payload, payload) {
				t.Errorf("n=%d masked=%v: payload mismatch", n, masked)
			}
		}
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(payload []byte, mask [4]byte, op uint8) bool {
		var buf bytes.Buffer
		in := &Frame{Fin: true, Op: Opcode(op & 0xF), Masked: true, MaskKey: mask, Payload: payload}
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		return err == nil && out.Op == in.Op && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAcceptKeyRFCExample(t *testing.T) {
	// The worked example from RFC 6455 §1.3.
	got := AcceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Errorf("AcceptKey = %q, want %q", got, want)
	}
}

// startEchoServer runs a plain TCP echo server — the stand-in for an
// unmodified native socket server.
func startEchoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func TestWebsockifyEndToEnd(t *testing.T) {
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	proxy, err := NewWebsockify("127.0.0.1:0", echoAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	w := browser.NewWindow(browser.Chrome28)
	var got []byte
	w.Loop.Post("main", func() {
		ws := DialWebSocket(w, proxy.Addr())
		ws.OnOpen = func() {
			if err := ws.Send([]byte("ping over websockify")); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
		ws.OnMessage = func(data []byte) {
			got = data
			ws.Close()
		}
		ws.OnError = func(err error) { t.Errorf("ws error: %v", err) }
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping over websockify" {
		t.Errorf("echo = %q", got)
	}
}

func TestDoppioSocketAPI(t *testing.T) {
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	proxy, err := NewWebsockify("127.0.0.1:0", echoAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	w := browser.NewWindow(browser.Firefox22)
	var received []byte
	w.Loop.Post("main", func() {
		Connect(w, proxy.Addr(), func(s *Socket, err error) {
			if err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			s.Write([]byte("hello socket")).Then(func(_ interface{}, err error) {
				if err != nil {
					t.Errorf("Write: %v", err)
					return
				}
				// Read in two chunks to exercise buffering.
				s.Read(5).Then(func(v interface{}, err error) {
					if err != nil {
						t.Errorf("Read: %v", err)
						return
					}
					data, _ := v.([]byte)
					received = append(received, data...)
					s.Read(100).Then(func(v interface{}, err error) {
						if err != nil {
							t.Errorf("Read 2: %v", err)
							return
						}
						data, _ := v.([]byte)
						received = append(received, data...)
						s.Close()
					})
				})
			})
		})
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if string(received) != "hello socket" {
		t.Errorf("received = %q", received)
	}
}

func TestConnectRefused(t *testing.T) {
	w := browser.NewWindow(browser.Chrome28)
	var gotErr error
	w.Loop.Post("main", func() {
		Connect(w, "127.0.0.1:1", func(s *Socket, err error) {
			gotErr = err
			if s != nil {
				t.Error("got a socket despite refusal")
			}
		})
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil {
		t.Error("connection to closed port succeeded")
	}
}

func TestFlashShimBrowser(t *testing.T) {
	// IE8 lacks WebSockets; the Flash shim path must still work.
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	proxy, err := NewWebsockify("127.0.0.1:0", echoAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	w := browser.NewWindow(browser.IE8)
	var got []byte
	w.Loop.Post("main", func() {
		ws := DialWebSocket(w, proxy.Addr())
		ws.OnOpen = func() { ws.Send([]byte("via flash")) }
		ws.OnMessage = func(data []byte) {
			got = data
			ws.Close()
		}
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "via flash" {
		t.Errorf("shim echo = %q", got)
	}
}

func TestSocketEOF(t *testing.T) {
	// A server that closes immediately after one reply produces EOF on
	// the next read.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		n, _ := conn.Read(buf)
		conn.Write(buf[:n])
		conn.Close()
	}()
	proxy, err := NewWebsockify("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	w := browser.NewWindow(browser.Chrome28)
	var first []byte
	eof := false
	w.Loop.Post("main", func() {
		Connect(w, proxy.Addr(), func(s *Socket, err error) {
			if err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			s.Write([]byte("bye")).Then(func(_ interface{}, _ error) {
				s.Read(10).Then(func(v interface{}, err error) {
					first, _ = v.([]byte)
					s.Read(10).Then(func(v interface{}, err error) {
						if v == nil && err == nil {
							eof = true
						}
					})
				})
			})
		})
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if string(first) != "bye" || !eof {
		t.Errorf("first = %q, eof = %v", first, eof)
	}
}

func TestServerHandshakeRejectsPlainHTTP(t *testing.T) {
	client, server := net.Pipe()
	go func() {
		client.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
		client.Close()
	}()
	if _, _, err := ServerHandshake(server); err == nil || !strings.Contains(err.Error(), "upgrade") {
		t.Errorf("plain HTTP accepted: %v", err)
	}
}

package sockets

import (
	"fmt"

	"doppio/internal/browser"
)

// Socket emulates the Unix client socket API over a WebSocket (§5.3:
// "DOPPIO resolves the client side of the issue by emulating a Unix
// socket API in terms of WebSocket functionality"). All methods are
// asynchronous; language implementations wrap them with the core
// package's suspend-and-resume to give programs blocking connect,
// read, write and close.
//
// Incoming WebSocket messages accumulate in a receive buffer; Read
// drains it, waiting for data when it is empty, which restores TCP's
// byte-stream semantics over the message-oriented WebSocket transport.
type Socket struct {
	ws     *WebSocket
	recv   []byte
	open   bool
	closed bool
	err    error

	waitRead func() // pending Read waiting for data
}

// ErrSocketClosed reports I/O on a closed socket.
var ErrSocketClosed = fmt.Errorf("sockets: socket is closed")

// Connect opens a socket to addr via the browser's WebSocket support
// (or the Flash shim on browsers without it) and calls cb on the event
// loop once the connection is established or fails.
func Connect(w *browser.Window, addr string, cb func(*Socket, error)) {
	s := &Socket{}
	s.ws = DialWebSocket(w, addr)
	s.ws.OnOpen = func() {
		s.open = true
		cb(s, nil)
	}
	s.ws.OnError = func(err error) {
		s.err = err
		if !s.open {
			cb(nil, err)
		}
	}
	s.ws.OnMessage = func(data []byte) {
		s.recv = append(s.recv, data...)
		if s.waitRead != nil {
			w := s.waitRead
			s.waitRead = nil
			w()
		}
	}
	s.ws.OnClose = func() {
		wasOpen := s.open
		s.closed = true
		if s.waitRead != nil {
			w := s.waitRead
			s.waitRead = nil
			w()
		}
		if !wasOpen && s.err == nil {
			cb(nil, ErrSocketClosed)
		}
	}
}

// Read delivers up to n bytes once available. At end of stream it
// delivers (nil, nil) — the TCP EOF convention. Only one Read may be
// pending at a time.
func (s *Socket) Read(n int, cb func(data []byte, err error)) {
	if s.waitRead != nil {
		cb(nil, fmt.Errorf("sockets: concurrent Read on one socket"))
		return
	}
	deliver := func() {
		if len(s.recv) == 0 {
			if s.err != nil {
				cb(nil, s.err)
				return
			}
			cb(nil, nil) // EOF
			return
		}
		k := n
		if k > len(s.recv) {
			k = len(s.recv)
		}
		out := s.recv[:k]
		s.recv = append([]byte(nil), s.recv[k:]...)
		cb(out, nil)
	}
	if len(s.recv) > 0 || s.closed {
		deliver()
		return
	}
	s.waitRead = deliver
}

// Write sends data and reports completion.
func (s *Socket) Write(data []byte, cb func(err error)) {
	if s.closed || !s.open {
		cb(ErrSocketClosed)
		return
	}
	cb(s.ws.Send(data))
}

// Close shuts the socket down.
func (s *Socket) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.ws.Close()
}

// Buffered reports the bytes waiting in the receive buffer.
func (s *Socket) Buffered() int { return len(s.recv) }

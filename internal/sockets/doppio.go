package sockets

import (
	"fmt"
	"io"
	"sync"

	"doppio/internal/browser"
	"doppio/internal/core"
	"doppio/internal/eventloop"
)

// Socket emulates the Unix client socket API over the gateway (§5.3:
// "DOPPIO resolves the client side of the issue by emulating a Unix
// socket API in terms of WebSocket functionality"). Read and Write
// return labelled core.Completions — `sockets.read(fd)` /
// `sockets.write(fd)` — so a language thread parked on socket I/O
// shows the socket, not a generic native frame, in deadlock reports
// and /debug/threads; this closes the last blocking-site gap left by
// the PR 4 Completion unification.
//
// Incoming bytes accumulate in a receive buffer; Read drains it,
// waiting for data when it is empty, which restores TCP's byte-stream
// semantics over the message-oriented transport. A Socket is backed
// by either a whole WebSocket (plain mode / legacy Connect) or one
// mux stream of a gateway session (Stack + WithMux).
type Socket struct {
	loop *eventloop.Loop
	fd   int32

	mu      sync.Mutex
	bs      byteStream
	pending *core.Completion // at most one outstanding Read
	pendN   int
}

// ErrSocketClosed reports I/O on a closed socket.
var ErrSocketClosed = fmt.Errorf("sockets: socket is closed")

// byteStream is the transport behind a Socket: a mux stream or a
// plain per-connection WebSocket. tryRead returns (nil, nil) when no
// data is buffered yet, (nil, io.EOF) at end of stream.
type byteStream interface {
	writeAsync(p []byte, done func(error))
	tryRead(max int) ([]byte, error)
	setReadable(fn func())
	closeStream() error
	buffered() int
}

func newSocket(loop *eventloop.Loop, bs byteStream) *Socket {
	s := &Socket{loop: loop, fd: -1, bs: bs}
	bs.setReadable(s.onReadable)
	return s
}

// SetFD records the descriptor number the owning runtime assigned, so
// completion labels read `sockets.read(7)` instead of `sockets.read(-1)`.
func (s *Socket) SetFD(fd int32) { s.fd = fd }

// FD returns the assigned descriptor (-1 before SetFD).
func (s *Socket) FD() int32 { return s.fd }

// onReadable runs whenever the stream gains data, reaches EOF, or
// errors; it settles the pending Read if one is parked. It may fire
// on the event loop (normal delivery) or on a session goroutine
// (transport death), hence the lock; settlement itself goes through
// the completion's goroutine-safe resolver.
func (s *Socket) onReadable() {
	s.mu.Lock()
	c := s.pending
	if c == nil {
		s.mu.Unlock()
		return
	}
	data, err := s.bs.tryRead(s.pendN)
	if data == nil && err == nil {
		// Spurious wakeup: still nothing to deliver.
		s.mu.Unlock()
		return
	}
	s.pending = nil
	s.mu.Unlock()
	s.settleRead(c, data, err)
}

func (s *Socket) settleRead(c *core.Completion, data []byte, err error) {
	if err == io.EOF {
		// TCP EOF convention: (nil, nil).
		c.Resolver()(nil, nil)
		return
	}
	if err != nil {
		c.Resolver()(nil, err)
		return
	}
	c.Resolver()(data, nil)
}

// Read returns a completion that resolves with up to n bytes once
// available ([]byte value), with (nil, nil) at end of stream — the
// TCP EOF convention — or with the stream's terminal error. Only one
// Read may be pending at a time.
func (s *Socket) Read(n int) *core.Completion {
	c := core.NewCompletion(s.loop, fmt.Sprintf("sockets.read(%d)", s.fd))
	s.mu.Lock()
	if s.pending != nil {
		s.mu.Unlock()
		c.Resolver()(nil, fmt.Errorf("sockets: concurrent Read on one socket"))
		return c
	}
	data, err := s.bs.tryRead(n)
	if data == nil && err == nil {
		s.pending = c
		s.pendN = n
		s.mu.Unlock()
		return c
	}
	s.mu.Unlock()
	s.settleRead(c, data, err)
	return c
}

// Write returns a completion that resolves once the bytes are
// admitted to the transport — for a mux stream, once flow control has
// accepted them, so a zero-window stream parks the writer (visibly,
// under the `sockets.write(fd)` label) until the peer grants credit.
func (s *Socket) Write(data []byte) *core.Completion {
	c := core.NewCompletion(s.loop, fmt.Sprintf("sockets.write(%d)", s.fd))
	resolve := c.Resolver()
	s.bs.writeAsync(data, func(err error) { resolve(nil, err) })
	return c
}

// Close shuts the socket down.
func (s *Socket) Close() error {
	s.mu.Lock()
	c := s.pending
	s.pending = nil
	s.mu.Unlock()
	if c != nil {
		c.Resolver()(nil, ErrSocketClosed)
	}
	return s.bs.closeStream()
}

// Buffered reports the bytes waiting in the receive buffer.
func (s *Socket) Buffered() int { return s.bs.buffered() }

// ---- plain (one WebSocket per socket) transport ----

// plainStream adapts a single WebSocket-or-link message flow to the
// byteStream interface: messages append to a receive buffer, writes
// pass through, EOF surfaces when the connection closes.
type plainStream struct {
	mu       sync.Mutex
	send     func([]byte) error
	closeFn  func() error
	recv     []byte
	eof      bool
	err      error
	closed   bool
	readable func()
}

func (p *plainStream) deliver(data []byte) {
	p.mu.Lock()
	p.recv = append(p.recv, data...)
	fn := p.readable
	p.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// finish marks end-of-stream (err == nil) or a terminal error.
func (p *plainStream) finish(err error) {
	p.mu.Lock()
	if p.eof || p.err != nil {
		p.mu.Unlock()
		return
	}
	if err != nil {
		p.err = err
	} else {
		p.eof = true
	}
	fn := p.readable
	p.mu.Unlock()
	if fn != nil {
		fn()
	}
}

func (p *plainStream) writeAsync(data []byte, done func(error)) {
	p.mu.Lock()
	if p.closed || p.eof || p.err != nil {
		p.mu.Unlock()
		done(ErrSocketClosed)
		return
	}
	send := p.send
	p.mu.Unlock()
	done(send(data))
}

func (p *plainStream) tryRead(max int) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.recv) == 0 {
		if p.err != nil {
			return nil, p.err
		}
		if p.eof || p.closed {
			return nil, io.EOF
		}
		return nil, nil
	}
	k := max
	if k > len(p.recv) {
		k = len(p.recv)
	}
	out := p.recv[:k]
	p.recv = append([]byte(nil), p.recv[k:]...)
	return out, nil
}

func (p *plainStream) setReadable(fn func()) {
	p.mu.Lock()
	p.readable = fn
	ready := len(p.recv) > 0 || p.eof || p.err != nil
	p.mu.Unlock()
	if ready && fn != nil {
		fn()
	}
}

func (p *plainStream) closeStream() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	closeFn := p.closeFn
	p.mu.Unlock()
	if closeFn != nil {
		return closeFn()
	}
	return nil
}

func (p *plainStream) buffered() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.recv)
}

// ---- mux-stream transport ----

// muxByteStream adapts one MuxStream to the byteStream interface.
type muxByteStream struct{ st *MuxStream }

func (m muxByteStream) writeAsync(p []byte, done func(error)) { m.st.Write(p, done) }
func (m muxByteStream) tryRead(max int) ([]byte, error)       { return m.st.TryRead(max) }
func (m muxByteStream) setReadable(fn func())                 { m.st.SetReadable(fn) }
func (m muxByteStream) closeStream() error                    { return m.st.Close() }
func (m muxByteStream) buffered() int                         { return m.st.Buffered() }

// Connect opens a plain (one WebSocket) socket to addr via the
// browser's WebSocket support — the legacy single-connection path —
// and calls cb on the event loop once the connection is established
// or fails. Gateway-aware callers use Stack instead.
func Connect(w *browser.Window, addr string, cb func(*Socket, error)) {
	ws := DialWebSocket(w, addr)
	ps := &plainStream{send: ws.Send, closeFn: ws.Close}
	delivered := false
	ws.OnOpen = func() {
		delivered = true
		cb(newSocket(w.Loop, ps), nil)
	}
	ws.OnError = func(err error) {
		if !delivered {
			delivered = true
			cb(nil, err)
			return
		}
		ps.finish(err)
	}
	ws.OnMessage = ps.deliver
	ws.OnClose = func() {
		if !delivered {
			delivered = true
			cb(nil, ErrSocketClosed)
			return
		}
		ps.finish(nil)
	}
}

package sockets

import (
	"io"
	"net"
	"sync"
	"time"

	"doppio/internal/telemetry"
	"doppio/internal/vfs"
	"doppio/internal/vfs/faultfs"
)

// Websockify is the production gateway grown out of the
// kanaka/websockify program the paper relies on for the server side
// of socket support (§5.3). It still "wraps unmodified programs, and
// translates incoming WebSocket connections into normal TCP
// connections", but a connection now picks its mode by handshake
// path:
//
//   - any path but MuxPath: classic websockify — the whole WebSocket
//     is one TCP stream, no flow control (kept for compatibility and
//     as the A/B baseline in sockload);
//   - MuxPath ("/mux"): a multiplexed session — many logical streams
//     over the one WebSocket, each with its own credit window, shed
//     with RST(EAGAIN) when the owning tenant's event loop falls
//     behind (GatewayOptions.QueueDepth over ShedDepth) or the
//     session hits MaxStreams.
type Websockify struct {
	listener net.Listener
	target   string
	opts     GatewayOptions
	wg       sync.WaitGroup

	mu         sync.Mutex
	closed     bool
	inj        *faultfs.Injector
	plainConns int64
	muxConns   int64
	paused     bool
	pauses     int64
	retired    MuxStats // counters of closed mux sessions
	sessions   map[*Mux]struct{}
	conns      map[net.Conn]struct{} // live accepted conns, closed by Close

	tel *proxyTelemetry
}

// GatewayOptions configures NewGateway. The zero value is a plain
// websockify: 64 KiB windows, 1024 streams per session, no shedding,
// no faults, no telemetry.
type GatewayOptions struct {
	// Window is the per-stream receive window advertised to clients
	// (bytes); 0 means 64 KiB.
	Window int
	// MaxStreams caps concurrently open streams per session; a SYN
	// past it is shed. 0 means 1024.
	MaxStreams int
	// ShedDepth is the QueueDepth reading past which new streams are
	// refused with RST(EAGAIN) and open streams stop earning credit.
	// 0 disables depth-based shedding.
	ShedDepth int
	// QueueDepth reports the owning tenant's event-loop run-queue
	// depth (core.Runtime.QueueDepth is safe cross-goroutine). Nil
	// disables depth-based shedding.
	QueueDepth func() int
	// RTO overrides the mux retransmission timeout (0 = 50 ms).
	RTO time.Duration
	// DisableMux serves every path in plain one-stream-per-connection
	// mode, MuxPath included — the -mux=false escape hatch for
	// debugging against clients that cannot speak the framing.
	DisableMux bool
	// Hub, when non-nil, receives gateway counters ("websockify") and
	// mux counters ("sockmux").
	Hub *telemetry.Hub
	// Faults arms deterministic fault injection on the data path at
	// construction (SetFaults can retoggle it at runtime).
	Faults faultfs.Plan
	// Listener overrides the TCP listen (sockload's in-memory
	// transport); when set, listenAddr is ignored.
	Listener net.Listener
	// Dial overrides how the gateway reaches the target (in-memory
	// transport again); nil means net.Dial("tcp", target).
	Dial func(target string) (net.Conn, error)
}

// proxyTelemetry holds the proxy-side metric handles; all counters are
// atomic since the per-connection pumps run on their own goroutines.
type proxyTelemetry struct {
	connections *telemetry.Counter
	framesIn    *telemetry.Counter // WebSocket → TCP
	bytesIn     *telemetry.Counter
	framesOut   *telemetry.Counter // TCP → WebSocket
	bytesOut    *telemetry.Counter
	handshake   *telemetry.Histogram
	flight      *telemetry.FlightRecorder
}

func newProxyTelemetry(h *telemetry.Hub) *proxyTelemetry {
	if h == nil {
		return nil
	}
	return &proxyTelemetry{
		connections: h.Registry.Counter("websockify", "connections"),
		framesIn:    h.Registry.Counter("websockify", "frames_in"),
		bytesIn:     h.Registry.Counter("websockify", "bytes_in"),
		framesOut:   h.Registry.Counter("websockify", "frames_out"),
		bytesOut:    h.Registry.Counter("websockify", "bytes_out"),
		handshake:   h.Registry.Histogram("websockify", "handshake"),
		flight:      h.Flight,
	}
}

// NewGateway starts a gateway on listenAddr (or opts.Listener)
// forwarding every stream to the TCP server at target.
func NewGateway(listenAddr, target string, opts GatewayOptions) (*Websockify, error) {
	ln := opts.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", listenAddr)
		if err != nil {
			return nil, err
		}
	}
	w := &Websockify{
		listener: ln,
		target:   target,
		opts:     opts,
		tel:      newProxyTelemetry(opts.Hub),
		sessions: make(map[*Mux]struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
	if opts.Faults.Enabled() {
		w.inj = faultfs.New(opts.Faults)
	}
	w.wg.Add(1)
	go w.acceptLoop()
	if opts.QueueDepth != nil && opts.ShedDepth > 0 {
		w.wg.Add(1)
		go w.overloadLoop()
	}
	return w, nil
}

// NewWebsockify starts a zero-config gateway — the classic proxy.
func NewWebsockify(listenAddr, target string) (*Websockify, error) {
	return NewGateway(listenAddr, target, GatewayOptions{})
}

// SetFaults toggles deterministic fault injection on the data path at
// runtime (a plan that cannot inject disarms it) — the chaos lever the
// reconnect tests flip mid-run. Faults apply per data frame, in both
// directions, reusing the VFS fault model's kinds. In plain mode:
//
//   - ErrPre drops the frame on the floor — it is never forwarded, the
//     silent loss a reconnecting client's heartbeat must catch.
//   - ErrPost forwards the frame and then resets the bridge, tearing
//     down both the WebSocket and TCP sides abruptly.
//   - Short truncates the frame's payload to Keep of its bytes.
//   - A latency spike stalls the pump before forwarding.
//
// In mux mode faults hit only DATA frames (the data plane): ErrPre
// and ErrPost drop the frame, Short truncates its payload below its
// declared length — both of which go-back-N detects and repairs.
// Control frames (SYN/ACK/CREDIT/FIN/RST) are the reliable plane and
// pass untouched. Connections already past their handshake keep their
// previous injector.
func (w *Websockify) SetFaults(plan faultfs.Plan) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !plan.Enabled() {
		w.inj = nil
		return
	}
	w.inj = faultfs.New(plan)
}

// FaultStats snapshots the injector's decision counters (zero when
// fault injection is off).
func (w *Websockify) FaultStats() faultfs.Stats {
	w.mu.Lock()
	inj := w.inj
	w.mu.Unlock()
	if inj == nil {
		return faultfs.Stats{}
	}
	return inj.Stats()
}

// Addr returns the gateway's listen address.
func (w *Websockify) Addr() string { return w.listener.Addr().String() }

// LiveStreams counts open mux streams across all live sessions — the
// standalone gateway's load signal when no tenant run queue exists.
func (w *Websockify) LiveStreams() int {
	w.mu.Lock()
	sessions := make([]*Mux, 0, len(w.sessions))
	for m := range w.sessions {
		sessions = append(sessions, m)
	}
	w.mu.Unlock()
	n := 0
	for _, m := range sessions {
		n += m.StreamCount()
	}
	return n
}

// Close stops accepting, tears down the listener, all sessions, and
// all live connections, and waits for every per-connection handler to
// exit — no serve goroutine is still mutating gateway state when it
// returns.
func (w *Websockify) Close() error {
	w.mu.Lock()
	w.closed = true
	sessions := make([]*Mux, 0, len(w.sessions))
	for m := range w.sessions {
		sessions = append(sessions, m)
	}
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	err := w.listener.Close()
	for _, m := range sessions {
		m.CloseSession(nil)
	}
	// Closing the conns unblocks handlers parked in ReadFrame so the
	// Wait below cannot hang on an idle client.
	for _, c := range conns {
		c.Close()
	}
	w.wg.Wait()
	return err
}

// track registers an accepted connection for Close's teardown; it
// refuses (false) when the gateway is already closed.
func (w *Websockify) track(conn net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.conns[conn] = struct{}{}
	return true
}

func (w *Websockify) untrack(conn net.Conn) {
	w.mu.Lock()
	delete(w.conns, conn)
	w.mu.Unlock()
}

// overloaded reports whether the owning tenant is past the shed
// threshold right now.
func (w *Websockify) overloaded() bool {
	if w.opts.QueueDepth == nil || w.opts.ShedDepth <= 0 {
		return false
	}
	return w.opts.QueueDepth() > w.opts.ShedDepth
}

// overloadLoop applies backpressure to *open* streams: while the
// tenant's loop is past ShedDepth, every stream's credit is withheld
// (senders run out of window and stall); on recovery the accumulated
// credit is released. New SYNs are shed in handleSyn independently.
func (w *Websockify) overloadLoop() {
	defer w.wg.Done()
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for range t.C {
		// The depth callback is caller-supplied and may take locks of
		// its own — the standalone gateway's is LiveStreams, which
		// takes w.mu — so it must be sampled before w.mu is held.
		over := w.overloaded()
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return
		}
		changed := over != w.paused
		if changed {
			w.paused = over
			if over {
				w.pauses++
			}
		}
		sessions := make([]*Mux, 0, len(w.sessions))
		for m := range w.sessions {
			sessions = append(sessions, m)
		}
		w.mu.Unlock()
		if !changed {
			continue
		}
		for _, m := range sessions {
			m.ForEachStream(func(st *MuxStream) {
				if over {
					st.PauseCredit()
				} else {
					st.ResumeCredit()
				}
			})
		}
	}
}

func (w *Websockify) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.listener.Accept()
		if err != nil {
			return
		}
		if !w.track(conn) {
			conn.Close()
			return
		}
		w.wg.Add(1)
		go w.serve(conn)
	}
}

func (w *Websockify) dialTarget() (net.Conn, error) {
	if w.opts.Dial != nil {
		return w.opts.Dial(w.target)
	}
	return net.Dial("tcp", w.target)
}

// applyFault draws one decision for a frame payload heading through
// the proxy. It reports the (possibly truncated) payload, whether to
// forward it, and whether to reset the bridge after forwarding.
func applyFault(inj *faultfs.Injector, op string, payload []byte) (out []byte, forward, reset bool) {
	if inj == nil {
		return payload, true, false
	}
	ft := inj.Next(op)
	if ft.Delay > 0 {
		time.Sleep(ft.Delay)
	}
	switch ft.Kind {
	case faultfs.ErrPre:
		return nil, false, false
	case faultfs.ErrPost:
		return payload, true, true
	case faultfs.Short:
		return payload[:int(float64(len(payload))*ft.Keep)], true, false
	}
	return payload, true, false
}

// applyMuxFault faults the data plane of a mux frame already split
// into header and payload: drop (skip the send), or truncate the
// payload below its declared length. Control frames pass untouched.
func applyMuxFault(inj *faultfs.Injector, op string, hdr, payload []byte) (out []byte, forward bool) {
	if inj == nil || len(hdr) < MuxHeaderLen || hdr[4] != muxData {
		return payload, true
	}
	ft := inj.Next(op)
	if ft.Delay > 0 {
		time.Sleep(ft.Delay)
	}
	switch ft.Kind {
	case faultfs.ErrPre, faultfs.ErrPost:
		return nil, false
	case faultfs.Short:
		return payload[:int(float64(len(payload))*ft.Keep)], true
	}
	return payload, true
}

// connWriter serializes every writer of one WebSocket connection: the
// mux session's writer goroutine, the reader's pong/close replies, and
// plain mode's two pumps all target the same conn. net.Conn.Write may
// split a frame across several syscalls under backpressure, so
// unserialized writers can interleave mid-frame and desync the WS
// framing layer itself — corruption no retransmission can repair.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

func (cw *connWriter) writeFrame(f *Frame) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return WriteFrame(cw.conn, f)
}

func (cw *connWriter) writeBinary(hdr, payload []byte) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return WriteBinaryFrame(cw.conn, hdr, payload)
}

func (w *Websockify) serve(wsConn net.Conn) {
	defer w.wg.Done()
	defer w.untrack(wsConn)
	defer wsConn.Close()
	w.mu.Lock()
	tel := w.tel
	inj := w.inj
	w.mu.Unlock()
	var hsStart time.Time
	if tel != nil {
		hsStart = time.Now()
	}
	path, br, err := ServerHandshake(wsConn)
	if err != nil {
		return
	}
	peer := wsConn.RemoteAddr().String()
	if tel != nil {
		tel.handshake.ObserveSince(hsStart)
		tel.connections.Inc()
		tel.flight.Record("sock", "conn", peer, 0)
	}
	cw := &connWriter{conn: wsConn}
	if path == MuxPath && !w.opts.DisableMux {
		w.serveMux(wsConn, cw, br, inj)
		return
	}
	w.servePlain(wsConn, cw, br, tel, inj)
}

// ---- mux mode ----

func (w *Websockify) serveMux(wsConn net.Conn, cw *connWriter, br io.Reader, inj *faultfs.Injector) {
	w.mu.Lock()
	w.muxConns++
	w.mu.Unlock()
	var m *Mux
	m = NewMux(MuxConfig{
		Window:     w.opts.Window,
		MaxStreams: w.opts.MaxStreams,
		RTO:        w.opts.RTO,
		Hub:        w.opts.Hub,
		Send: func(hdr, payload []byte) error {
			out, forward := applyMuxFault(inj, "tcp2ws", hdr, payload)
			if !forward {
				return nil
			}
			return cw.writeBinary(hdr, out)
		},
		AcceptStream: func(st *MuxStream) {
			// Admission control: a tenant past the shed threshold
			// refuses the stream outright — RST(EAGAIN), which
			// classifies transient so well-behaved clients back off
			// and redial.
			if w.overloaded() {
				st.Reject(vfs.EAGAIN)
				return
			}
			go w.bridgeStream(st)
		},
	})
	w.mu.Lock()
	w.sessions[m] = struct{}{}
	w.mu.Unlock()

	for {
		f, err := ReadFrame(br)
		if err != nil {
			break
		}
		switch f.Op {
		case OpClose:
			cw.writeFrame(&Frame{Fin: true, Op: OpClose})
			goto done
		case OpPing:
			cw.writeFrame(&Frame{Fin: true, Op: OpPong, Payload: f.Payload})
		case OpBinary:
			payload := f.Payload
			if len(payload) >= MuxHeaderLen && MuxIsData(payload) {
				hdr := payload[:MuxHeaderLen]
				data, forward := applyMuxFault(inj, "ws2tcp", hdr, payload[MuxHeaderLen:])
				if !forward {
					continue
				}
				if len(data) != len(payload)-MuxHeaderLen {
					payload = append(append([]byte{}, hdr...), data...)
				}
			}
			m.HandleFrame(payload)
		}
	}
done:
	stats := m.Stats()
	m.CloseSession(nil)
	w.mu.Lock()
	delete(w.sessions, m)
	w.muxConns--
	w.retired.Add(stats)
	w.mu.Unlock()
}

// bridgeStream connects one accepted mux stream to the TCP target and
// pumps both directions until either side finishes.
func (w *Websockify) bridgeStream(st *MuxStream) {
	tcp, err := w.dialTarget()
	if err != nil {
		st.Reject(vfs.ECONNREFUSED)
		return
	}
	st.Accept()
	// The overload sweep only fires on pause/resume transitions, so a
	// stream admitted between the sweep's session snapshot and the flag
	// flip would otherwise earn credit for the whole episode. Checking
	// the flag here — after the stream is registered — closes the hole
	// from both sides: either the sweep's snapshot saw this stream, or
	// this read sees the flag (and the post-pause re-check undoes a
	// pause that lost the race with the resume sweep).
	w.mu.Lock()
	paused := w.paused
	w.mu.Unlock()
	if paused {
		st.PauseCredit()
		w.mu.Lock()
		paused = w.paused
		w.mu.Unlock()
		if !paused {
			st.ResumeCredit()
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	// stream → TCP.
	go func() {
		defer wg.Done()
		buf := make([]byte, 16<<10)
		for {
			n, err := st.ReadBlocking(buf)
			if n > 0 {
				if _, werr := tcp.Write(buf[:n]); werr != nil {
					st.Reset(vfs.ECONNRESET)
					tcp.Close()
					return
				}
			}
			if err != nil {
				if err == io.EOF {
					// Client finished sending: half-close toward the
					// target so its reply can still drain back.
					type closeWriter interface{ CloseWrite() error }
					if cw, ok := tcp.(closeWriter); ok {
						cw.CloseWrite()
					} else {
						tcp.Close()
					}
				} else {
					tcp.Close()
				}
				return
			}
		}
	}()
	// TCP → stream.
	buf := make([]byte, 16<<10)
	for {
		n, err := tcp.Read(buf)
		if n > 0 {
			if werr := st.WriteBlocking(buf[:n]); werr != nil {
				tcp.Close()
				break
			}
		}
		if err != nil {
			if err == io.EOF {
				st.Close()
			} else {
				st.Reset(vfs.ECONNRESET)
			}
			break
		}
	}
	wg.Wait()
	tcp.Close()
}

// ---- plain mode (classic websockify) ----

func (w *Websockify) servePlain(wsConn net.Conn, cw *connWriter, br io.Reader, tel *proxyTelemetry, inj *faultfs.Injector) {
	w.mu.Lock()
	w.plainConns++
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.plainConns--
		w.mu.Unlock()
	}()
	tcpConn, err := w.dialTarget()
	if err != nil {
		cw.writeFrame(&Frame{Fin: true, Op: OpClose})
		return
	}
	defer tcpConn.Close()

	done := make(chan struct{}, 2)
	// WebSocket → TCP: unwrap frames into the byte stream.
	go func() {
		defer func() { done <- struct{}{} }()
		for {
			f, err := ReadFrame(br)
			if err != nil {
				return
			}
			switch f.Op {
			case OpClose:
				return
			case OpBinary, OpText, OpContinuation:
				payload, forward, reset := applyFault(inj, "ws2tcp", f.Payload)
				if !forward {
					continue
				}
				if tel != nil {
					tel.framesIn.Inc()
					tel.bytesIn.Add(int64(len(payload)))
				}
				if _, err := tcpConn.Write(payload); err != nil {
					return
				}
				if reset {
					tcpConn.Close()
					wsConn.Close()
					return
				}
			case OpPing:
				cw.writeFrame(&Frame{Fin: true, Op: OpPong, Payload: f.Payload})
			}
		}
	}()
	// TCP → WebSocket: wrap the byte stream into binary frames.
	go func() {
		defer func() { done <- struct{}{} }()
		buf := make([]byte, 16*1024)
		for {
			n, err := tcpConn.Read(buf)
			if n > 0 {
				payload, forward, reset := applyFault(inj, "tcp2ws", buf[:n])
				if forward {
					f := &Frame{Fin: true, Op: OpBinary, Payload: payload}
					if tel != nil {
						tel.framesOut.Inc()
						tel.bytesOut.Add(int64(len(payload)))
					}
					if werr := cw.writeFrame(f); werr != nil {
						return
					}
					if reset {
						tcpConn.Close()
						wsConn.Close()
						return
					}
				}
			}
			if err != nil {
				if err != io.EOF {
					return
				}
				cw.writeFrame(&Frame{Fin: true, Op: OpClose})
				return
			}
		}
	}()
	<-done
}

// GatewaySnapshot is the gateway's state for /debug/sock.
type GatewaySnapshot struct {
	Target     string        `json:"target"`
	PlainConns int64         `json:"plain_conns"`
	MuxConns   int64         `json:"mux_conns"`
	Paused     bool          `json:"paused"` // shedding backpressure right now
	Pauses     int64         `json:"pauses"` // times the gateway entered pause
	Stats      MuxStats      `json:"stats"`  // live + retired sessions
	Sessions   []MuxSnapshot `json:"sessions"`
	Faults     faultfs.Stats `json:"faults"`
}

// Snapshot captures per-session stream windows and the shed/reset
// counters — the /debug/sock source.
func (w *Websockify) Snapshot() GatewaySnapshot {
	w.mu.Lock()
	snap := GatewaySnapshot{
		Target:     w.target,
		PlainConns: w.plainConns,
		MuxConns:   w.muxConns,
		Paused:     w.paused,
		Pauses:     w.pauses,
		Stats:      w.retired,
	}
	sessions := make([]*Mux, 0, len(w.sessions))
	for m := range w.sessions {
		sessions = append(sessions, m)
	}
	inj := w.inj
	w.mu.Unlock()
	for _, m := range sessions {
		ms := m.Snapshot()
		snap.Sessions = append(snap.Sessions, ms)
		snap.Stats.Add(ms.Stats)
	}
	if inj != nil {
		snap.Faults = inj.Stats()
	}
	return snap
}

package sockets

import (
	"io"
	"net"
	"sync"
	"time"

	"doppio/internal/telemetry"
	"doppio/internal/vfs/faultfs"
)

// Websockify bridges incoming WebSocket connections to a plain TCP
// target, exactly as the kanaka/websockify program the paper relies on
// for the server side of socket support (§5.3): it "wraps unmodified
// programs, and translates incoming WebSocket connections into normal
// TCP connections".
type Websockify struct {
	listener net.Listener
	target   string
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool

	tel *proxyTelemetry
	inj *faultfs.Injector
}

// proxyTelemetry holds the proxy-side metric handles; all counters are
// atomic since the per-connection pumps run on their own goroutines.
type proxyTelemetry struct {
	connections *telemetry.Counter
	framesIn    *telemetry.Counter // WebSocket → TCP
	bytesIn     *telemetry.Counter
	framesOut   *telemetry.Counter // TCP → WebSocket
	bytesOut    *telemetry.Counter
	handshake   *telemetry.Histogram
	flight      *telemetry.FlightRecorder
}

// SetTelemetry attaches an observability hub to the proxy (nil
// detaches). Connections already past their handshake keep their
// previous telemetry state.
func (w *Websockify) SetTelemetry(h *telemetry.Hub) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if h == nil {
		w.tel = nil
		return
	}
	w.tel = &proxyTelemetry{
		connections: h.Registry.Counter("websockify", "connections"),
		framesIn:    h.Registry.Counter("websockify", "frames_in"),
		bytesIn:     h.Registry.Counter("websockify", "bytes_in"),
		framesOut:   h.Registry.Counter("websockify", "frames_out"),
		bytesOut:    h.Registry.Counter("websockify", "bytes_out"),
		handshake:   h.Registry.Histogram("websockify", "handshake"),
		flight:      h.Flight,
	}
}

// SetFaults arms deterministic fault injection on the proxy's data
// path (a plan that cannot inject disarms it). Faults apply per frame,
// in both directions, reusing the VFS fault model's kinds:
//
//   - ErrPre drops the frame on the floor — it is never forwarded, the
//     silent loss a reconnecting client's heartbeat must catch.
//   - ErrPost forwards the frame and then resets the bridge, tearing
//     down both the WebSocket and TCP sides abruptly.
//   - Short truncates the frame's payload to Keep of its bytes.
//   - A latency spike stalls the pump before forwarding.
//
// Connections already past their handshake keep their previous
// injector.
func (w *Websockify) SetFaults(plan faultfs.Plan) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !plan.Enabled() {
		w.inj = nil
		return
	}
	w.inj = faultfs.New(plan)
}

// FaultStats snapshots the injector's decision counters (zero when
// fault injection is off).
func (w *Websockify) FaultStats() faultfs.Stats {
	w.mu.Lock()
	inj := w.inj
	w.mu.Unlock()
	if inj == nil {
		return faultfs.Stats{}
	}
	return inj.Stats()
}

// NewWebsockify starts a proxy listening on listenAddr (use
// "127.0.0.1:0" for an ephemeral port) that forwards each WebSocket
// connection to the TCP server at target.
func NewWebsockify(listenAddr, target string) (*Websockify, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	w := &Websockify{listener: ln, target: target}
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Addr returns the proxy's listen address.
func (w *Websockify) Addr() string { return w.listener.Addr().String() }

// Close stops accepting and tears down the listener.
func (w *Websockify) Close() error {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	err := w.listener.Close()
	w.wg.Wait()
	return err
}

func (w *Websockify) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.listener.Accept()
		if err != nil {
			return
		}
		go w.serve(conn)
	}
}

// applyFault draws one decision for a frame payload heading through
// the proxy. It reports the (possibly truncated) payload, whether to
// forward it, and whether to reset the bridge after forwarding.
func applyFault(inj *faultfs.Injector, op string, payload []byte) (out []byte, forward, reset bool) {
	if inj == nil {
		return payload, true, false
	}
	ft := inj.Next(op)
	if ft.Delay > 0 {
		time.Sleep(ft.Delay)
	}
	switch ft.Kind {
	case faultfs.ErrPre:
		return nil, false, false
	case faultfs.ErrPost:
		return payload, true, true
	case faultfs.Short:
		return payload[:int(float64(len(payload))*ft.Keep)], true, false
	}
	return payload, true, false
}

func (w *Websockify) serve(wsConn net.Conn) {
	defer wsConn.Close()
	w.mu.Lock()
	tel := w.tel
	inj := w.inj
	w.mu.Unlock()
	var hsStart time.Time
	if tel != nil {
		hsStart = time.Now()
	}
	_, br, err := ServerHandshake(wsConn)
	if err != nil {
		return
	}
	peer := wsConn.RemoteAddr().String()
	if tel != nil {
		tel.handshake.ObserveSince(hsStart)
		tel.connections.Inc()
		tel.flight.Record("sock", "conn", peer, 0)
	}
	tcpConn, err := net.Dial("tcp", w.target)
	if err != nil {
		f := &Frame{Fin: true, Op: OpClose}
		WriteFrame(wsConn, f)
		return
	}
	defer tcpConn.Close()

	done := make(chan struct{}, 2)
	// WebSocket → TCP: unwrap frames into the byte stream.
	go func() {
		defer func() { done <- struct{}{} }()
		for {
			f, err := ReadFrame(br)
			if err != nil {
				return
			}
			switch f.Op {
			case OpClose:
				return
			case OpBinary, OpText, OpContinuation:
				payload, forward, reset := applyFault(inj, "ws2tcp", f.Payload)
				if !forward {
					continue
				}
				if tel != nil {
					tel.framesIn.Inc()
					tel.bytesIn.Add(int64(len(payload)))
				}
				if _, err := tcpConn.Write(payload); err != nil {
					return
				}
				if reset {
					tcpConn.Close()
					wsConn.Close()
					return
				}
			case OpPing:
				WriteFrame(wsConn, &Frame{Fin: true, Op: OpPong, Payload: f.Payload})
			}
		}
	}()
	// TCP → WebSocket: wrap the byte stream into binary frames.
	go func() {
		defer func() { done <- struct{}{} }()
		buf := make([]byte, 16*1024)
		for {
			n, err := tcpConn.Read(buf)
			if n > 0 {
				payload, forward, reset := applyFault(inj, "tcp2ws", buf[:n])
				if forward {
					f := &Frame{Fin: true, Op: OpBinary, Payload: payload}
					if tel != nil {
						tel.framesOut.Inc()
						tel.bytesOut.Add(int64(len(payload)))
					}
					if werr := WriteFrame(wsConn, f); werr != nil {
						return
					}
					if reset {
						tcpConn.Close()
						wsConn.Close()
						return
					}
				}
			}
			if err != nil {
				if err != io.EOF {
					return
				}
				WriteFrame(wsConn, &Frame{Fin: true, Op: OpClose})
				return
			}
		}
	}()
	<-done
}

package sockets

import (
	"io"
	"net"
	"sync"
)

// Websockify bridges incoming WebSocket connections to a plain TCP
// target, exactly as the kanaka/websockify program the paper relies on
// for the server side of socket support (§5.3): it "wraps unmodified
// programs, and translates incoming WebSocket connections into normal
// TCP connections".
type Websockify struct {
	listener net.Listener
	target   string
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
}

// NewWebsockify starts a proxy listening on listenAddr (use
// "127.0.0.1:0" for an ephemeral port) that forwards each WebSocket
// connection to the TCP server at target.
func NewWebsockify(listenAddr, target string) (*Websockify, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	w := &Websockify{listener: ln, target: target}
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Addr returns the proxy's listen address.
func (w *Websockify) Addr() string { return w.listener.Addr().String() }

// Close stops accepting and tears down the listener.
func (w *Websockify) Close() error {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	err := w.listener.Close()
	w.wg.Wait()
	return err
}

func (w *Websockify) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.listener.Accept()
		if err != nil {
			return
		}
		go w.serve(conn)
	}
}

func (w *Websockify) serve(wsConn net.Conn) {
	defer wsConn.Close()
	_, br, err := ServerHandshake(wsConn)
	if err != nil {
		return
	}
	tcpConn, err := net.Dial("tcp", w.target)
	if err != nil {
		f := &Frame{Fin: true, Op: OpClose}
		WriteFrame(wsConn, f)
		return
	}
	defer tcpConn.Close()

	done := make(chan struct{}, 2)
	// WebSocket → TCP: unwrap frames into the byte stream.
	go func() {
		defer func() { done <- struct{}{} }()
		for {
			f, err := ReadFrame(br)
			if err != nil {
				return
			}
			switch f.Op {
			case OpClose:
				return
			case OpBinary, OpText, OpContinuation:
				if _, err := tcpConn.Write(f.Payload); err != nil {
					return
				}
			case OpPing:
				WriteFrame(wsConn, &Frame{Fin: true, Op: OpPong, Payload: f.Payload})
			}
		}
	}()
	// TCP → WebSocket: wrap the byte stream into binary frames.
	go func() {
		defer func() { done <- struct{}{} }()
		buf := make([]byte, 16*1024)
		for {
			n, err := tcpConn.Read(buf)
			if n > 0 {
				f := &Frame{Fin: true, Op: OpBinary, Payload: buf[:n]}
				if werr := WriteFrame(wsConn, f); werr != nil {
					return
				}
			}
			if err != nil {
				if err != io.EOF {
					return
				}
				WriteFrame(wsConn, &Frame{Fin: true, Op: OpClose})
				return
			}
		}
	}()
	<-done
}

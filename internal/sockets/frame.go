// Package sockets implements Doppio's TCP socket support (§5.3).
//
// Browsers only expose outgoing WebSocket connections, so Doppio
// emulates a Unix socket API for client programs in terms of
// WebSockets, while the freely-available Websockify program bridges
// the server side, translating incoming WebSocket connections into
// normal TCP connections for unmodified native servers.
//
// This package contains all three pieces: RFC 6455 framing and
// handshakes (over real TCP via the net package), the asynchronous
// browser-side WebSocket client API delivering events on the event
// loop, and a Websockify proxy.
package sockets

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// Opcode is a WebSocket frame opcode.
type Opcode byte

// The RFC 6455 opcodes used here.
const (
	OpContinuation Opcode = 0x0
	OpText         Opcode = 0x1
	OpBinary       Opcode = 0x2
	OpClose        Opcode = 0x8
	OpPing         Opcode = 0x9
	OpPong         Opcode = 0xA
)

// Frame is one WebSocket data frame.
type Frame struct {
	Fin     bool
	Op      Opcode
	Masked  bool
	MaskKey [4]byte
	Payload []byte
}

// ErrFrameTooLarge guards against absurd frame lengths.
var ErrFrameTooLarge = fmt.Errorf("sockets: frame exceeds maximum size")

const maxFramePayload = 64 << 20

// WriteFrame encodes f to w. Client-to-server frames must be masked.
func WriteFrame(w io.Writer, f *Frame) error {
	b0 := byte(f.Op)
	if f.Fin {
		b0 |= 0x80
	}
	header := []byte{b0, 0}
	n := len(f.Payload)
	switch {
	case n <= 125:
		header[1] = byte(n)
	case n <= 0xFFFF:
		header[1] = 126
		var ext [2]byte
		binary.BigEndian.PutUint16(ext[:], uint16(n))
		header = append(header, ext[:]...)
	default:
		header[1] = 127
		var ext [8]byte
		binary.BigEndian.PutUint64(ext[:], uint64(n))
		header = append(header, ext[:]...)
	}
	if f.Masked {
		header[1] |= 0x80
		header = append(header, f.MaskKey[:]...)
	}
	if _, err := w.Write(header); err != nil {
		return err
	}
	payload := f.Payload
	if f.Masked {
		payload = make([]byte, n)
		for i, c := range f.Payload {
			payload[i] = c ^ f.MaskKey[i%4]
		}
	}
	_, err := w.Write(payload)
	return err
}

// appendFrameHeader appends the wire header for an unmasked frame of
// n payload bytes.
func appendFrameHeader(dst []byte, op Opcode, n int) []byte {
	dst = append(dst, 0x80|byte(op))
	switch {
	case n <= 125:
		dst = append(dst, byte(n))
	case n <= 0xFFFF:
		dst = append(dst, 126, byte(n>>8), byte(n))
	default:
		dst = append(dst, 127)
		var ext [8]byte
		binary.BigEndian.PutUint64(ext[:], uint64(n))
		dst = append(dst, ext[:]...)
	}
	return dst
}

// WriteBinaryFrame writes one unmasked FIN binary frame whose payload
// is the concatenation of parts, in a single writev (net.Buffers) when
// w is a net.Conn — the gateway's zero-copy hot path. The parts are
// never copied or concatenated: the mux layer passes its 13-byte
// header and the stream's send-queue slice straight through to the
// kernel. Unmasked client frames deviate from RFC 6455 §5.2 by
// design; both ends are ours and masking would force a payload copy
// per frame (see WriteFrame), defeating the zero-copy path.
func WriteBinaryFrame(w io.Writer, parts ...[]byte) error {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	bufs := make(net.Buffers, 0, len(parts)+1)
	bufs = append(bufs, appendFrameHeader(make([]byte, 0, 10), OpBinary, n))
	for _, p := range parts {
		if len(p) > 0 {
			bufs = append(bufs, p)
		}
	}
	_, err := bufs.WriteTo(w)
	return err
}

// ReadFrame decodes one frame from r, unmasking the payload.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	f := &Frame{
		Fin:    hdr[0]&0x80 != 0,
		Op:     Opcode(hdr[0] & 0x0F),
		Masked: hdr[1]&0x80 != 0,
	}
	n := uint64(hdr[1] & 0x7F)
	switch n {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return nil, err
		}
		n = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return nil, err
		}
		n = binary.BigEndian.Uint64(ext[:])
	}
	if n > maxFramePayload {
		return nil, ErrFrameTooLarge
	}
	if f.Masked {
		if _, err := io.ReadFull(r, f.MaskKey[:]); err != nil {
			return nil, err
		}
	}
	f.Payload = make([]byte, n)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return nil, err
	}
	if f.Masked {
		for i := range f.Payload {
			f.Payload[i] ^= f.MaskKey[i%4]
		}
	}
	return f, nil
}

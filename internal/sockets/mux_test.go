package sockets

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/vfs"
	"doppio/internal/vfs/faultfs"
)

// streamPattern builds the deterministic byte sequence stream i sends.
func streamPattern(i, n int) []byte {
	out := make([]byte, n)
	for j := range out {
		out[j] = byte(i*31 + j*7 + 3)
	}
	return out
}

// echoOverStack dials nStreams sockets through conn (from the loop
// thread), writes each stream's pattern in chunkSize pieces, reads
// the echo back into got, and calls allDone once every stream has its
// full transcript.
func echoOverStack(t *testing.T, conn *Conn, got [][]byte, total, chunkSize int, allDone func()) {
	t.Helper()
	nStreams := len(got)
	done := 0
	finish := func() {
		done++
		if done == nStreams {
			allDone()
		}
	}
	for i := 0; i < nStreams; i++ {
		i := i
		want := streamPattern(i, total)
		conn.Dial(func(s *Socket, err error) {
			if err != nil {
				t.Errorf("stream %d: dial: %v", i, err)
				finish()
				return
			}
			for off := 0; off < total; off += chunkSize {
				end := off + chunkSize
				if end > total {
					end = total
				}
				chunk := want[off:end]
				s.Write(chunk).Then(func(_ interface{}, err error) {
					if err != nil {
						t.Errorf("stream %d: write: %v", i, err)
					}
				})
			}
			var pump func()
			pump = func() {
				s.Read(4096).Then(func(v interface{}, err error) {
					if err != nil {
						t.Errorf("stream %d: read: %v", i, err)
						finish()
						return
					}
					data, _ := v.([]byte)
					got[i] = append(got[i], data...)
					if len(got[i]) < total {
						pump()
						return
					}
					s.Close()
					finish()
				})
			}
			pump()
		})
	}
}

// TestMuxEquivalence pins the gateway redesign's core claim: N
// logical streams multiplexed over one WebSocket are byte-identical
// to N plain one-connection-per-stream sockets — including when the
// fault injector drops and truncates 10% of data frames, which the
// mux's go-back-N must repair.
func TestMuxEquivalence(t *testing.T) {
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()

	const (
		nStreams = 6
		total    = 8 << 10
		chunk    = 512
	)

	// Reference arm: plain connections, no faults.
	plainGW, err := NewWebsockify("127.0.0.1:0", echoAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer plainGW.Close()
	var plain [][]byte
	{
		w := browser.NewWindow(browser.Chrome28)
		conns := make([]*Conn, nStreams)
		w.Loop.Post("main", func() {
			// One plain Conn per stream (a plain Conn carries one Dial).
			results := make([][]byte, nStreams)
			finished := 0
			for i := 0; i < nStreams; i++ {
				i := i
				conns[i] = Stack(w, plainGW.Addr())
				want := streamPattern(i, total)
				conns[i].Dial(func(s *Socket, err error) {
					if err != nil {
						t.Errorf("plain %d: dial: %v", i, err)
						return
					}
					s.Write(want).Then(func(_ interface{}, err error) {
						if err != nil {
							t.Errorf("plain %d: write: %v", i, err)
						}
					})
					var pump func()
					pump = func() {
						s.Read(4096).Then(func(v interface{}, err error) {
							if err != nil {
								t.Errorf("plain %d: read: %v", i, err)
								return
							}
							data, _ := v.([]byte)
							results[i] = append(results[i], data...)
							if len(results[i]) < total {
								pump()
								return
							}
							s.Close()
							finished++
							if finished == nStreams {
								plain = results
							}
						})
					}
					pump()
				})
			}
		})
		if err := w.Loop.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if plain == nil {
		t.Fatal("plain arm did not finish")
	}

	for _, tc := range []struct {
		name string
		plan faultfs.Plan
	}{
		{"clean", faultfs.Plan{}},
		{"faults10pct", faultfs.Plan{Seed: 7, ErrRate: 0.10, PostFrac: 0.5, ShortRate: 0.10}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			muxGW, err := NewGateway("127.0.0.1:0", echoAddr, GatewayOptions{
				Window: 4 << 10,
				RTO:    10 * time.Millisecond,
				Faults: tc.plan,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer muxGW.Close()

			w := browser.NewWindow(browser.Chrome28)
			got := make([][]byte, nStreams)
			finished := false
			w.Loop.Post("main", func() {
				conn := Stack(w, muxGW.Addr(),
					WithMux(0), WithWindow(4<<10), WithRTO(10*time.Millisecond))
				echoOverStack(t, conn, got, total, chunk, func() {
					finished = true
					conn.Close()
				})
			})
			if err := w.Loop.Run(); err != nil {
				t.Fatal(err)
			}
			if !finished {
				t.Fatal("mux arm did not finish")
			}
			for i := range got {
				if !bytes.Equal(got[i], plain[i]) {
					t.Fatalf("stream %d: mux transcript (%d bytes) != plain transcript (%d bytes)",
						i, len(got[i]), len(plain[i]))
				}
			}
			snap := muxGW.Snapshot()
			if tc.plan.Enabled() {
				if snap.Faults.ErrsPre+snap.Faults.ErrsPost+snap.Faults.Shorts == 0 {
					t.Error("fault plan enabled but no faults were injected")
				}
				if snap.Stats.Retransmits == 0 {
					t.Error("faults injected but no retransmissions recorded")
				}
			}
		})
	}
}

// wirePair builds two directly-wired mux endpoints: every frame one
// side sends is handed to the other's HandleFrame. accept configures
// the server side's AcceptStream handler.
func wirePair(window int, accept func(st *MuxStream)) (client, server *Mux) {
	var cl, sv *Mux
	sv = NewMux(MuxConfig{
		Window:       window,
		RTO:          10 * time.Millisecond,
		AcceptStream: accept,
		Send: func(hdr, payload []byte) error {
			cl.HandleFrame(append(append([]byte{}, hdr...), payload...))
			return nil
		},
	})
	cl = NewMux(MuxConfig{
		Window: window,
		RTO:    10 * time.Millisecond,
		Send: func(hdr, payload []byte) error {
			sv.HandleFrame(append(append([]byte{}, hdr...), payload...))
			return nil
		},
	})
	return cl, sv
}

// TestMuxZeroWindowBackpressure pins the flow-control contract: a
// writer that exhausts the peer's receive window parks until the
// reader drains and credit flows back.
func TestMuxZeroWindowBackpressure(t *testing.T) {
	const window = 1024
	acceptCh := make(chan *MuxStream, 1)
	client, server := wirePair(window, func(st *MuxStream) {
		st.Accept()
		acceptCh <- st
	})
	defer client.CloseSession(nil)
	defer server.CloseSession(nil)

	st, err := client.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WaitOpen(); err != nil {
		t.Fatal(err)
	}
	peer := <-acceptCh

	// First write fills the whole window: admitted immediately.
	first := make(chan error, 1)
	st.Write(streamPattern(1, window), func(err error) { first <- err })
	select {
	case err := <-first:
		if err != nil {
			t.Fatalf("window-filling write failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("window-filling write did not complete")
	}

	// Second write has zero window left: its completion must hold.
	var fired atomic.Bool
	second := make(chan error, 1)
	st.Write([]byte("overflow"), func(err error) {
		fired.Store(true)
		second <- err
	})
	time.Sleep(50 * time.Millisecond)
	if fired.Load() {
		t.Fatal("write completed with zero window — flow control is not engaging")
	}

	// Reader drains; credit flows back; the parked write resumes.
	buf := make([]byte, window)
	n := 0
	for n < window {
		k, err := peer.ReadBlocking(buf[n:])
		if err != nil {
			t.Fatalf("peer read: %v", err)
		}
		n += k
	}
	select {
	case err := <-second:
		if err != nil {
			t.Fatalf("resumed write failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write did not resume after credit returned")
	}
	if client.Stats().Credits+server.Stats().Credits == 0 {
		t.Error("no CREDIT frames recorded")
	}
}

// TestMuxPauseCreditSheds pins the gateway's backpressure lever:
// PauseCredit withholds grants (so a remote writer stalls) and
// ResumeCredit releases the accumulated credit in one batch.
func TestMuxPauseCreditSheds(t *testing.T) {
	const window = 1024
	acceptCh := make(chan *MuxStream, 1)
	client, server := wirePair(window, func(st *MuxStream) {
		st.Accept()
		acceptCh <- st
	})
	defer client.CloseSession(nil)
	defer server.CloseSession(nil)

	st, err := client.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WaitOpen(); err != nil {
		t.Fatal(err)
	}
	peer := <-acceptCh
	peer.PauseCredit()

	if err := st.WriteBlocking(streamPattern(2, window)); err != nil {
		t.Fatal(err)
	}
	// Drain while paused: no credit may flow.
	buf := make([]byte, window)
	n := 0
	for n < window {
		k, err := peer.ReadBlocking(buf[n:])
		if err != nil {
			t.Fatalf("peer read: %v", err)
		}
		n += k
	}
	var blocked atomic.Bool
	done := make(chan error, 1)
	st.Write([]byte("stalled"), func(err error) {
		blocked.Store(true)
		done <- err
	})
	time.Sleep(50 * time.Millisecond)
	if blocked.Load() {
		t.Fatal("write completed while credit was paused")
	}

	peer.ResumeCredit()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after resume failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write did not resume after ResumeCredit")
	}
}

// TestMuxShedStream pins load shedding end to end: a gateway whose
// depth probe reports overload refuses new streams with EAGAIN, which
// classifies transient (back off and redial).
func TestMuxShedStream(t *testing.T) {
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	depth := atomic.Int64{}
	gw, err := NewGateway("127.0.0.1:0", echoAddr, GatewayOptions{
		ShedDepth:  4,
		QueueDepth: func() int { return int(depth.Load()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	depth.Store(100) // hopelessly behind from the start

	// Give the overload sweep a tick to notice.
	time.Sleep(30 * time.Millisecond)

	w := browser.NewWindow(browser.Chrome28)
	var dialErr error
	w.Loop.Post("main", func() {
		conn := Stack(w, gw.Addr(), WithMux(0))
		conn.Dial(func(s *Socket, err error) {
			dialErr = err
			if s != nil {
				s.Close()
			}
			conn.Close()
		})
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if dialErr == nil {
		t.Fatal("dial succeeded through an overloaded gateway")
	}
	if !IsShed(dialErr) {
		t.Fatalf("dial error = %v, want a shed (EAGAIN) StreamError", dialErr)
	}
	errno, ok := vfs.Classify(dialErr)
	if !ok || errno != vfs.EAGAIN || !errno.Transient() {
		t.Fatalf("Classify(%v) = %v, %v; want transient EAGAIN", dialErr, errno, ok)
	}
	if gw.Snapshot().Stats.Shed == 0 {
		t.Error("gateway shed counter is zero")
	}
}

// TestMuxErrorClassification pins satellite 3: gateway failures
// classify through vfs.Classify exactly like VFS errors.
func TestMuxErrorClassification(t *testing.T) {
	cases := []struct {
		err       error
		errno     vfs.Errno
		transient bool
	}{
		{&StreamError{StreamID: 1, Code: vfs.EAGAIN}, vfs.EAGAIN, true},
		{&StreamError{StreamID: 2, Code: vfs.ECONNRESET}, vfs.ECONNRESET, true},
		{&StreamError{StreamID: 3, Code: vfs.ECONNREFUSED}, vfs.ECONNREFUSED, false},
		{&StreamError{StreamID: 4, Code: vfs.EPROTO}, vfs.EPROTO, false},
		{&DialError{Addr: "x:1", Refused: true, Err: io.EOF}, vfs.ECONNREFUSED, false},
		{&DialError{Addr: "x:1", Refused: false, Err: io.EOF}, vfs.ECONNRESET, true},
	}
	for _, tc := range cases {
		errno, ok := vfs.Classify(tc.err)
		if !ok {
			t.Errorf("Classify(%v): not classified", tc.err)
			continue
		}
		if errno != tc.errno {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, errno, tc.errno)
		}
		if errno.Transient() != tc.transient {
			t.Errorf("%v: Transient() = %v, want %v", tc.err, errno.Transient(), tc.transient)
		}
	}
	// The RST code mapping round-trips.
	for _, e := range []vfs.Errno{vfs.EAGAIN, vfs.ECONNREFUSED, vfs.ECONNRESET, vfs.EPROTO} {
		if got := rstErrno(rstCode(e)); got != e {
			t.Errorf("rstErrno(rstCode(%v)) = %v", e, got)
		}
	}
}

// TestMuxRefusedTarget pins the ECONNREFUSED path: a gateway whose
// target is not listening refuses each stream with a final errno.
func TestMuxRefusedTarget(t *testing.T) {
	// A listener we immediately close gives us an address with
	// nothing behind it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	gw, err := NewWebsockify("127.0.0.1:0", deadAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	w := browser.NewWindow(browser.Chrome28)
	var dialErr error
	w.Loop.Post("main", func() {
		conn := Stack(w, gw.Addr(), WithMux(0))
		conn.Dial(func(s *Socket, err error) {
			dialErr = err
			conn.Close()
		})
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	var se *StreamError
	if !errors.As(dialErr, &se) || se.Code != vfs.ECONNREFUSED {
		t.Fatalf("dial error = %v, want StreamError(ECONNREFUSED)", dialErr)
	}
}

// TestMuxHeartbeatConcurrentWriters pins write serialization on both
// ends of a mux session: heartbeat pings fire on the event loop while
// the mux session's writer goroutine sends data frames on the same
// WebSocket, and the gateway's reader answers those pings while its
// session writer streams data back. Before the conn writers were
// serialized, a ping or pong could land mid-data-frame (net.Conn.Write
// splits frames across syscalls under backpressure) and desync the WS
// framing layer; the client's transport handle was also read off-loop
// without synchronization, which -race trips on here.
func TestMuxHeartbeatConcurrentWriters(t *testing.T) {
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	gw, err := NewWebsockify("127.0.0.1:0", echoAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	const (
		nStreams = 4
		total    = 16 << 10
		chunk    = 512
	)
	w := browser.NewWindow(browser.Chrome28)
	var rws *ReconnectingWS
	w.Loop.Post("main", func() {
		rws = NewReconnectingWS(w, gw.Addr(), ReconnectOptions{
			HeartbeatInterval: time.Millisecond,
			HeartbeatTimeout:  10 * time.Second, // never declare the conn dead mid-test
			Path:              MuxPath,
		})
		var m *Mux
		rws.OnMessage = func(data []byte) {
			if m != nil {
				m.HandleFrame(data)
			}
		}
		rws.OnOpen = func(bool) {
			// The small window keeps credit and data frames flowing for
			// the whole transfer, maximizing overlap with the pings.
			m = NewMux(MuxConfig{
				Window: 1 << 10,
				RTO:    20 * time.Millisecond,
				Send:   func(hdr, payload []byte) error { return rws.SendParts(hdr, payload) },
			})
			go func() {
				var wg sync.WaitGroup
				for i := 0; i < nStreams; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						st, err := m.Open()
						if err != nil {
							t.Errorf("stream %d: open: %v", i, err)
							return
						}
						if err := st.WaitOpen(); err != nil {
							t.Errorf("stream %d: wait open: %v", i, err)
							return
						}
						want := streamPattern(i, total)
						go func() {
							// A write error means the stream died; the
							// reader below sees the same error and reports.
							for off := 0; off < total; off += chunk {
								end := off + chunk
								if end > total {
									end = total
								}
								if st.WriteBlocking(want[off:end]) != nil {
									return
								}
							}
						}()
						got := make([]byte, 0, total)
						buf := make([]byte, 4096)
						for len(got) < total {
							n, err := st.ReadBlocking(buf)
							if err != nil {
								t.Errorf("stream %d: read after %d bytes: %v", i, len(got), err)
								return
							}
							got = append(got, buf[:n]...)
						}
						if !bytes.Equal(got, want) {
							t.Errorf("stream %d: transcript corrupted", i)
						}
					}(i)
				}
				wg.Wait()
				w.Loop.InvokeExternal("test-shutdown", func() {
					m.CloseSession(nil)
					rws.Close()
				})
			}()
		}
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	stats := rws.Stats()
	if stats.Heartbeats == 0 {
		t.Error("no heartbeats fired during the transfer — ping and mux writes never overlapped")
	}
	if stats.HeartbeatTimeouts != 0 {
		t.Errorf("%d heartbeat timeouts — pongs were lost or corrupted", stats.HeartbeatTimeouts)
	}
}

// TestMuxSynCollision pins the symmetric-API id-space guards: Open
// skips ids held by peer-opened streams, and a peer SYN colliding with
// a locally opened stream is rejected with RST(EPROTO) instead of
// being silently ignored as a retransmit.
func TestMuxSynCollision(t *testing.T) {
	acceptCh := make(chan *MuxStream, 4)
	var cl, sv *Mux
	sv = NewMux(MuxConfig{
		Window: 4 << 10,
		RTO:    10 * time.Millisecond,
		AcceptStream: func(st *MuxStream) {
			st.Accept()
			acceptCh <- st
		},
		Send: func(hdr, payload []byte) error {
			cl.HandleFrame(append(append([]byte{}, hdr...), payload...))
			return nil
		},
	})
	cl = NewMux(MuxConfig{
		Window: 4 << 10,
		RTO:    10 * time.Millisecond,
		AcceptStream: func(st *MuxStream) {
			st.Accept()
			acceptCh <- st
		},
		Send: func(hdr, payload []byte) error {
			sv.HandleFrame(append(append([]byte{}, hdr...), payload...))
			return nil
		},
	})
	defer cl.CloseSession(nil)
	defer sv.CloseSession(nil)

	// Client opens stream 1; once WaitOpen returns, the server has a
	// peer-opened stream 1 in its map.
	stC, err := cl.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := stC.WaitOpen(); err != nil {
		t.Fatal(err)
	}
	svRemote := <-acceptCh

	// The server now opens its own stream: it must skip id 1.
	stS, err := sv.Open()
	if err != nil {
		t.Fatal(err)
	}
	if stS.ID() == stC.ID() {
		t.Fatalf("server Open allocated id %d, colliding with the peer-opened stream", stS.ID())
	}
	if err := stS.WaitOpen(); err != nil {
		t.Fatal(err)
	}
	<-acceptCh

	before := cl.StreamCount()
	// A buggy peer SYN colliding with the client's locally opened
	// stream 1 — injected directly, as if both sides allocated id 1.
	cl.HandleFrame(muxHeader(stC.ID(), muxSyn, 1024, 0))
	if got := cl.StreamCount(); got != before {
		t.Errorf("colliding SYN changed the stream map: %d -> %d streams", before, got)
	}
	// The RST(EPROTO) reply kills the sender's stream with a protocol
	// error, not a silent desync.
	buf := make([]byte, 8)
	if _, err := svRemote.ReadBlocking(buf); !vfs.IsErrno(err, vfs.EPROTO) {
		t.Fatalf("peer stream error after colliding SYN = %v, want EPROTO", err)
	}
}

// TestGatewayCloseWaitsForConnections pins the teardown contract:
// Close tears down live connections (not just the listener) and waits
// for every per-connection handler to exit, so no serve goroutine is
// still mutating gateway state after it returns.
func TestGatewayCloseWaitsForConnections(t *testing.T) {
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	gw, err := NewWebsockify("127.0.0.1:0", echoAddr)
	if err != nil {
		t.Fatal(err)
	}

	// A raw mux client that completes the handshake and then idles —
	// its handler is parked in ReadFrame when Close runs.
	conn, err := net.Dial("tcp", gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := ClientHandshake(conn, gw.Addr(), MuxPath); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for gw.Snapshot().MuxConns == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gateway never registered the mux connection")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan error, 1)
	go func() { done <- gw.Close() }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung with an idle live connection")
	}
	// Close waited for the handler, so its teardown bookkeeping is
	// complete — not merely in flight.
	if n := gw.Snapshot().MuxConns; n != 0 {
		t.Errorf("MuxConns = %d after Close returned, want 0", n)
	}
}

// TestGatewaySelfDepthNoDeadlock pins the standalone wiring from
// cmd/websockify: the gateway's own LiveStreams as its QueueDepth
// signal. LiveStreams takes the gateway mutex, so the overload ticker
// must sample the callback outside the lock — a regression here wedges
// Snapshot, Close, and /debug/sock on the first 5ms tick.
func TestGatewaySelfDepthNoDeadlock(t *testing.T) {
	var self atomic.Pointer[Websockify]
	gw, err := NewGateway("127.0.0.1:0", "127.0.0.1:1", GatewayOptions{
		ShedDepth: 4,
		QueueDepth: func() int {
			if p := self.Load(); p != nil {
				return p.LiveStreams()
			}
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	self.Store(gw)
	defer gw.Close()

	time.Sleep(20 * time.Millisecond) // let the overload ticker fire
	done := make(chan GatewaySnapshot, 1)
	go func() { done <- gw.Snapshot() }()
	select {
	case snap := <-done:
		if snap.Paused {
			t.Fatalf("idle gateway reports paused: %+v", snap)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Snapshot deadlocked against the overload ticker")
	}
}

package sockets

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/vfs"
	"doppio/internal/vfs/faultfs"
)

// streamPattern builds the deterministic byte sequence stream i sends.
func streamPattern(i, n int) []byte {
	out := make([]byte, n)
	for j := range out {
		out[j] = byte(i*31 + j*7 + 3)
	}
	return out
}

// echoOverStack dials nStreams sockets through conn (from the loop
// thread), writes each stream's pattern in chunkSize pieces, reads
// the echo back into got, and calls allDone once every stream has its
// full transcript.
func echoOverStack(t *testing.T, conn *Conn, got [][]byte, total, chunkSize int, allDone func()) {
	t.Helper()
	nStreams := len(got)
	done := 0
	finish := func() {
		done++
		if done == nStreams {
			allDone()
		}
	}
	for i := 0; i < nStreams; i++ {
		i := i
		want := streamPattern(i, total)
		conn.Dial(func(s *Socket, err error) {
			if err != nil {
				t.Errorf("stream %d: dial: %v", i, err)
				finish()
				return
			}
			for off := 0; off < total; off += chunkSize {
				end := off + chunkSize
				if end > total {
					end = total
				}
				chunk := want[off:end]
				s.Write(chunk).Then(func(_ interface{}, err error) {
					if err != nil {
						t.Errorf("stream %d: write: %v", i, err)
					}
				})
			}
			var pump func()
			pump = func() {
				s.Read(4096).Then(func(v interface{}, err error) {
					if err != nil {
						t.Errorf("stream %d: read: %v", i, err)
						finish()
						return
					}
					data, _ := v.([]byte)
					got[i] = append(got[i], data...)
					if len(got[i]) < total {
						pump()
						return
					}
					s.Close()
					finish()
				})
			}
			pump()
		})
	}
}

// TestMuxEquivalence pins the gateway redesign's core claim: N
// logical streams multiplexed over one WebSocket are byte-identical
// to N plain one-connection-per-stream sockets — including when the
// fault injector drops and truncates 10% of data frames, which the
// mux's go-back-N must repair.
func TestMuxEquivalence(t *testing.T) {
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()

	const (
		nStreams = 6
		total    = 8 << 10
		chunk    = 512
	)

	// Reference arm: plain connections, no faults.
	plainGW, err := NewWebsockify("127.0.0.1:0", echoAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer plainGW.Close()
	var plain [][]byte
	{
		w := browser.NewWindow(browser.Chrome28)
		conns := make([]*Conn, nStreams)
		w.Loop.Post("main", func() {
			// One plain Conn per stream (a plain Conn carries one Dial).
			results := make([][]byte, nStreams)
			finished := 0
			for i := 0; i < nStreams; i++ {
				i := i
				conns[i] = Stack(w, plainGW.Addr())
				want := streamPattern(i, total)
				conns[i].Dial(func(s *Socket, err error) {
					if err != nil {
						t.Errorf("plain %d: dial: %v", i, err)
						return
					}
					s.Write(want).Then(func(_ interface{}, err error) {
						if err != nil {
							t.Errorf("plain %d: write: %v", i, err)
						}
					})
					var pump func()
					pump = func() {
						s.Read(4096).Then(func(v interface{}, err error) {
							if err != nil {
								t.Errorf("plain %d: read: %v", i, err)
								return
							}
							data, _ := v.([]byte)
							results[i] = append(results[i], data...)
							if len(results[i]) < total {
								pump()
								return
							}
							s.Close()
							finished++
							if finished == nStreams {
								plain = results
							}
						})
					}
					pump()
				})
			}
		})
		if err := w.Loop.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if plain == nil {
		t.Fatal("plain arm did not finish")
	}

	for _, tc := range []struct {
		name string
		plan faultfs.Plan
	}{
		{"clean", faultfs.Plan{}},
		{"faults10pct", faultfs.Plan{Seed: 7, ErrRate: 0.10, PostFrac: 0.5, ShortRate: 0.10}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			muxGW, err := NewGateway("127.0.0.1:0", echoAddr, GatewayOptions{
				Window: 4 << 10,
				RTO:    10 * time.Millisecond,
				Faults: tc.plan,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer muxGW.Close()

			w := browser.NewWindow(browser.Chrome28)
			got := make([][]byte, nStreams)
			finished := false
			w.Loop.Post("main", func() {
				conn := Stack(w, muxGW.Addr(),
					WithMux(0), WithWindow(4<<10), WithRTO(10*time.Millisecond))
				echoOverStack(t, conn, got, total, chunk, func() {
					finished = true
					conn.Close()
				})
			})
			if err := w.Loop.Run(); err != nil {
				t.Fatal(err)
			}
			if !finished {
				t.Fatal("mux arm did not finish")
			}
			for i := range got {
				if !bytes.Equal(got[i], plain[i]) {
					t.Fatalf("stream %d: mux transcript (%d bytes) != plain transcript (%d bytes)",
						i, len(got[i]), len(plain[i]))
				}
			}
			snap := muxGW.Snapshot()
			if tc.plan.Enabled() {
				if snap.Faults.ErrsPre+snap.Faults.ErrsPost+snap.Faults.Shorts == 0 {
					t.Error("fault plan enabled but no faults were injected")
				}
				if snap.Stats.Retransmits == 0 {
					t.Error("faults injected but no retransmissions recorded")
				}
			}
		})
	}
}

// wirePair builds two directly-wired mux endpoints: every frame one
// side sends is handed to the other's HandleFrame. accept configures
// the server side's AcceptStream handler.
func wirePair(window int, accept func(st *MuxStream)) (client, server *Mux) {
	var cl, sv *Mux
	sv = NewMux(MuxConfig{
		Window:       window,
		RTO:          10 * time.Millisecond,
		AcceptStream: accept,
		Send: func(hdr, payload []byte) error {
			cl.HandleFrame(append(append([]byte{}, hdr...), payload...))
			return nil
		},
	})
	cl = NewMux(MuxConfig{
		Window: window,
		RTO:    10 * time.Millisecond,
		Send: func(hdr, payload []byte) error {
			sv.HandleFrame(append(append([]byte{}, hdr...), payload...))
			return nil
		},
	})
	return cl, sv
}

// TestMuxZeroWindowBackpressure pins the flow-control contract: a
// writer that exhausts the peer's receive window parks until the
// reader drains and credit flows back.
func TestMuxZeroWindowBackpressure(t *testing.T) {
	const window = 1024
	acceptCh := make(chan *MuxStream, 1)
	client, server := wirePair(window, func(st *MuxStream) {
		st.Accept()
		acceptCh <- st
	})
	defer client.CloseSession(nil)
	defer server.CloseSession(nil)

	st, err := client.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WaitOpen(); err != nil {
		t.Fatal(err)
	}
	peer := <-acceptCh

	// First write fills the whole window: admitted immediately.
	first := make(chan error, 1)
	st.Write(streamPattern(1, window), func(err error) { first <- err })
	select {
	case err := <-first:
		if err != nil {
			t.Fatalf("window-filling write failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("window-filling write did not complete")
	}

	// Second write has zero window left: its completion must hold.
	var fired atomic.Bool
	second := make(chan error, 1)
	st.Write([]byte("overflow"), func(err error) {
		fired.Store(true)
		second <- err
	})
	time.Sleep(50 * time.Millisecond)
	if fired.Load() {
		t.Fatal("write completed with zero window — flow control is not engaging")
	}

	// Reader drains; credit flows back; the parked write resumes.
	buf := make([]byte, window)
	n := 0
	for n < window {
		k, err := peer.ReadBlocking(buf[n:])
		if err != nil {
			t.Fatalf("peer read: %v", err)
		}
		n += k
	}
	select {
	case err := <-second:
		if err != nil {
			t.Fatalf("resumed write failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write did not resume after credit returned")
	}
	if client.Stats().Credits+server.Stats().Credits == 0 {
		t.Error("no CREDIT frames recorded")
	}
}

// TestMuxPauseCreditSheds pins the gateway's backpressure lever:
// PauseCredit withholds grants (so a remote writer stalls) and
// ResumeCredit releases the accumulated credit in one batch.
func TestMuxPauseCreditSheds(t *testing.T) {
	const window = 1024
	acceptCh := make(chan *MuxStream, 1)
	client, server := wirePair(window, func(st *MuxStream) {
		st.Accept()
		acceptCh <- st
	})
	defer client.CloseSession(nil)
	defer server.CloseSession(nil)

	st, err := client.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WaitOpen(); err != nil {
		t.Fatal(err)
	}
	peer := <-acceptCh
	peer.PauseCredit()

	if err := st.WriteBlocking(streamPattern(2, window)); err != nil {
		t.Fatal(err)
	}
	// Drain while paused: no credit may flow.
	buf := make([]byte, window)
	n := 0
	for n < window {
		k, err := peer.ReadBlocking(buf[n:])
		if err != nil {
			t.Fatalf("peer read: %v", err)
		}
		n += k
	}
	var blocked atomic.Bool
	done := make(chan error, 1)
	st.Write([]byte("stalled"), func(err error) {
		blocked.Store(true)
		done <- err
	})
	time.Sleep(50 * time.Millisecond)
	if blocked.Load() {
		t.Fatal("write completed while credit was paused")
	}

	peer.ResumeCredit()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after resume failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write did not resume after ResumeCredit")
	}
}

// TestMuxShedStream pins load shedding end to end: a gateway whose
// depth probe reports overload refuses new streams with EAGAIN, which
// classifies transient (back off and redial).
func TestMuxShedStream(t *testing.T) {
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	depth := atomic.Int64{}
	gw, err := NewGateway("127.0.0.1:0", echoAddr, GatewayOptions{
		ShedDepth:  4,
		QueueDepth: func() int { return int(depth.Load()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	depth.Store(100) // hopelessly behind from the start

	// Give the overload sweep a tick to notice.
	time.Sleep(30 * time.Millisecond)

	w := browser.NewWindow(browser.Chrome28)
	var dialErr error
	w.Loop.Post("main", func() {
		conn := Stack(w, gw.Addr(), WithMux(0))
		conn.Dial(func(s *Socket, err error) {
			dialErr = err
			if s != nil {
				s.Close()
			}
			conn.Close()
		})
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if dialErr == nil {
		t.Fatal("dial succeeded through an overloaded gateway")
	}
	if !IsShed(dialErr) {
		t.Fatalf("dial error = %v, want a shed (EAGAIN) StreamError", dialErr)
	}
	errno, ok := vfs.Classify(dialErr)
	if !ok || errno != vfs.EAGAIN || !errno.Transient() {
		t.Fatalf("Classify(%v) = %v, %v; want transient EAGAIN", dialErr, errno, ok)
	}
	if gw.Snapshot().Stats.Shed == 0 {
		t.Error("gateway shed counter is zero")
	}
}

// TestMuxErrorClassification pins satellite 3: gateway failures
// classify through vfs.Classify exactly like VFS errors.
func TestMuxErrorClassification(t *testing.T) {
	cases := []struct {
		err       error
		errno     vfs.Errno
		transient bool
	}{
		{&StreamError{StreamID: 1, Code: vfs.EAGAIN}, vfs.EAGAIN, true},
		{&StreamError{StreamID: 2, Code: vfs.ECONNRESET}, vfs.ECONNRESET, true},
		{&StreamError{StreamID: 3, Code: vfs.ECONNREFUSED}, vfs.ECONNREFUSED, false},
		{&StreamError{StreamID: 4, Code: vfs.EPROTO}, vfs.EPROTO, false},
		{&DialError{Addr: "x:1", Refused: true, Err: io.EOF}, vfs.ECONNREFUSED, false},
		{&DialError{Addr: "x:1", Refused: false, Err: io.EOF}, vfs.ECONNRESET, true},
	}
	for _, tc := range cases {
		errno, ok := vfs.Classify(tc.err)
		if !ok {
			t.Errorf("Classify(%v): not classified", tc.err)
			continue
		}
		if errno != tc.errno {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, errno, tc.errno)
		}
		if errno.Transient() != tc.transient {
			t.Errorf("%v: Transient() = %v, want %v", tc.err, errno.Transient(), tc.transient)
		}
	}
	// The RST code mapping round-trips.
	for _, e := range []vfs.Errno{vfs.EAGAIN, vfs.ECONNREFUSED, vfs.ECONNRESET, vfs.EPROTO} {
		if got := rstErrno(rstCode(e)); got != e {
			t.Errorf("rstErrno(rstCode(%v)) = %v", e, got)
		}
	}
}

// TestMuxRefusedTarget pins the ECONNREFUSED path: a gateway whose
// target is not listening refuses each stream with a final errno.
func TestMuxRefusedTarget(t *testing.T) {
	// A listener we immediately close gives us an address with
	// nothing behind it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	gw, err := NewWebsockify("127.0.0.1:0", deadAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	w := browser.NewWindow(browser.Chrome28)
	var dialErr error
	w.Loop.Post("main", func() {
		conn := Stack(w, gw.Addr(), WithMux(0))
		conn.Dial(func(s *Socket, err error) {
			dialErr = err
			conn.Close()
		})
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	var se *StreamError
	if !errors.As(dialErr, &se) || se.Code != vfs.ECONNREFUSED {
		t.Fatalf("dial error = %v, want StreamError(ECONNREFUSED)", dialErr)
	}
}

// TestGatewaySelfDepthNoDeadlock pins the standalone wiring from
// cmd/websockify: the gateway's own LiveStreams as its QueueDepth
// signal. LiveStreams takes the gateway mutex, so the overload ticker
// must sample the callback outside the lock — a regression here wedges
// Snapshot, Close, and /debug/sock on the first 5ms tick.
func TestGatewaySelfDepthNoDeadlock(t *testing.T) {
	var self atomic.Pointer[Websockify]
	gw, err := NewGateway("127.0.0.1:0", "127.0.0.1:1", GatewayOptions{
		ShedDepth: 4,
		QueueDepth: func() int {
			if p := self.Load(); p != nil {
				return p.LiveStreams()
			}
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	self.Store(gw)
	defer gw.Close()

	time.Sleep(20 * time.Millisecond) // let the overload ticker fire
	done := make(chan GatewaySnapshot, 1)
	go func() { done <- gw.Snapshot() }()
	select {
	case snap := <-done:
		if snap.Paused {
			t.Fatalf("idle gateway reports paused: %+v", snap)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Snapshot deadlocked against the overload ticker")
	}
}

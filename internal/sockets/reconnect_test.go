package sockets

import (
	"bytes"
	"net"
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/vfs/faultfs"
	"doppio/internal/vfs/retry"
)

// fastPolicy keeps reconnect tests quick and deterministic.
func fastPolicy(attempts int) retry.Policy {
	return retry.Policy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Multiplier: 2}
}

func TestDialErrorRefused(t *testing.T) {
	// Grab a port nothing listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	w := browser.NewWindow(browser.Chrome28)
	var gotErr error
	w.Loop.Post("main", func() {
		ws := DialWebSocket(w, addr)
		ws.OnError = func(err error) { gotErr = err }
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if !IsRefused(gotErr) {
		t.Errorf("dial to closed port: err = %v, want refused DialError", gotErr)
	}
}

func TestDialErrorDroppedDuringHandshake(t *testing.T) {
	// A listener that accepts and immediately hangs up: the TCP dial
	// succeeds, so the failure must classify as dropped, not refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	w := browser.NewWindow(browser.Chrome28)
	var gotErr error
	w.Loop.Post("main", func() {
		ws := DialWebSocket(w, ln.Addr().String())
		ws.OnError = func(err error) { gotErr = err }
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil {
		t.Fatal("handshake against hang-up listener succeeded")
	}
	if IsRefused(gotErr) {
		t.Errorf("mid-handshake hang-up classified as refused: %v", gotErr)
	}
}

// TestReconnectAfterReset drives the full outage cycle: the proxy is
// armed to reset the bridge on the first data frame, the client loses
// the connection, redials with backoff, and completes the exchange on
// a clean second connection.
func TestReconnectAfterReset(t *testing.T) {
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	proxy, err := NewWebsockify("127.0.0.1:0", echoAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	// Every frame commits and then resets the bridge (ErrPost).
	proxy.SetFaults(faultfs.Plan{Seed: 1, ErrRate: 1, PostFrac: 1})

	w := browser.NewWindow(browser.Chrome28)
	var got []byte
	downs := 0
	var r *ReconnectingWS
	w.Loop.Post("main", func() {
		r = NewReconnectingWS(w, proxy.Addr(), ReconnectOptions{Policy: fastPolicy(6)})
		r.OnOpen = func(reconnected bool) {
			if !reconnected {
				if err := r.Send([]byte("first")); err != nil {
					t.Errorf("Send on first open: %v", err)
				}
				return
			}
			// Second connection: heal the proxy and retry the exchange.
			if err := r.Send([]byte("second")); err != nil {
				t.Errorf("Send on reconnect: %v", err)
			}
		}
		r.OnDown = func(error) {
			downs++
			proxy.SetFaults(faultfs.Plan{}) // future connections are clean
		}
		r.OnMessage = func(data []byte) {
			got = data
			r.Close()
		}
		r.OnGiveUp = func(err error) { t.Errorf("gave up: %v", err) }
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Errorf("echo after reconnect = %q", got)
	}
	if downs == 0 {
		t.Error("connection was never lost despite reset injection")
	}
	st := r.Stats()
	if st.Reconnects < 1 || st.Dials < 2 || st.Opens < 2 {
		t.Errorf("stats = %+v, want ≥1 reconnect over ≥2 dials", st)
	}
}

func TestReconnectGiveUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens: every dial is refused

	w := browser.NewWindow(browser.Chrome28)
	var gaveUp error
	var r *ReconnectingWS
	w.Loop.Post("main", func() {
		r = NewReconnectingWS(w, addr, ReconnectOptions{Policy: fastPolicy(3)})
		r.OnGiveUp = func(err error) { gaveUp = err }
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if gaveUp == nil {
		t.Fatal("redial budget never exhausted")
	}
	if !IsRefused(gaveUp) {
		t.Errorf("give-up error = %v, want refused DialError", gaveUp)
	}
	st := r.Stats()
	if st.Dials != 3 || st.GaveUp != 1 || st.BackoffNanos <= 0 {
		t.Errorf("stats = %+v, want 3 dials, 1 give-up, nonzero backoff", st)
	}
}

// startDeafServer accepts WebSocket connections and then ignores every
// frame — including pings — modelling a half-dead peer that only a
// heartbeat timeout can detect.
func startDeafServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, br, err := ServerHandshake(c)
				if err != nil {
					return
				}
				for {
					if _, err := ReadFrame(br); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func TestHeartbeatTimeoutDetectsDeadPeer(t *testing.T) {
	addr, stop := startDeafServer(t)
	defer stop()

	w := browser.NewWindow(browser.Chrome28)
	var r *ReconnectingWS
	w.Loop.Post("main", func() {
		r = NewReconnectingWS(w, addr, ReconnectOptions{
			Policy:            fastPolicy(2),
			HeartbeatInterval: 10 * time.Millisecond,
			HeartbeatTimeout:  10 * time.Millisecond,
		})
		r.OnDown = func(error) { r.Close() } // one detection is enough
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Heartbeats < 1 || st.HeartbeatTimeouts < 1 {
		t.Errorf("stats = %+v, want ≥1 heartbeat and ≥1 timeout", st)
	}
}

func TestHeartbeatPongKeepsConnectionAlive(t *testing.T) {
	// The echo path answers pings (Websockify pongs them itself), so a
	// heartbeating client must see pongs, not timeouts.
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	proxy, err := NewWebsockify("127.0.0.1:0", echoAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	w := browser.NewWindow(browser.Chrome28)
	var r *ReconnectingWS
	w.Loop.Post("main", func() {
		r = NewReconnectingWS(w, proxy.Addr(), ReconnectOptions{
			Policy:            fastPolicy(2),
			HeartbeatInterval: 10 * time.Millisecond,
			HeartbeatTimeout:  200 * time.Millisecond,
		})
		r.OnOpen = func(bool) {
			// Let a few heartbeat cycles run, then shut down.
			w.Loop.SetTimeout(func() { r.Close() }, 60*time.Millisecond)
		}
		r.OnDown = func(err error) { t.Errorf("connection dropped: %v", err) }
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Heartbeats < 2 {
		t.Errorf("heartbeats = %d, want ≥2", st.Heartbeats)
	}
	if st.HeartbeatTimeouts != 0 {
		t.Errorf("heartbeat timeouts = %d on a live path", st.HeartbeatTimeouts)
	}
}

func TestWebsockifyShortFrameTruncates(t *testing.T) {
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	proxy, err := NewWebsockify("127.0.0.1:0", echoAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxy.SetFaults(faultfs.Plan{Seed: 7, ShortRate: 1})

	sent := []byte("twelve bytes")
	w := browser.NewWindow(browser.Chrome28)
	var got []byte
	w.Loop.Post("main", func() {
		ws := DialWebSocket(w, proxy.Addr())
		ws.OnOpen = func() { ws.Send(sent) }
		ws.OnMessage = func(data []byte) {
			got = data
			ws.Close()
		}
		ws.OnError = func(err error) { t.Errorf("ws error: %v", err) }
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= len(sent) {
		t.Fatalf("truncated echo length = %d, want in (0, %d)", len(got), len(sent))
	}
	if !bytes.HasPrefix(sent, got) {
		t.Errorf("truncated echo %q is not a prefix of %q", got, sent)
	}
	fs := proxy.FaultStats()
	if fs.Shorts < 1 {
		t.Errorf("fault stats = %+v, want ≥1 short", fs)
	}
}

func TestWebsockifyFrameDropIsSilent(t *testing.T) {
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	proxy, err := NewWebsockify("127.0.0.1:0", echoAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	// Every frame is dropped pre-commit: the message never reaches the
	// echo server and no reply ever comes back.
	proxy.SetFaults(faultfs.Plan{Seed: 3, ErrRate: 1})

	w := browser.NewWindow(browser.Chrome28)
	got := false
	w.Loop.Post("main", func() {
		ws := DialWebSocket(w, proxy.Addr())
		ws.OnOpen = func() {
			ws.Send([]byte("into the void"))
			// The drop is silent, so only a deadline ends the wait.
			w.Loop.SetTimeout(func() { ws.Close() }, 50*time.Millisecond)
		}
		ws.OnMessage = func([]byte) { got = true }
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("message delivered despite 100% drop rate")
	}
	if fs := proxy.FaultStats(); fs.ErrsPre < 1 {
		t.Errorf("fault stats = %+v, want ≥1 pre-commit drop", fs)
	}
}

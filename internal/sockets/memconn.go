package sockets

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// In-memory transport: a buffered, bidirectional net.Conn pair and a
// matching listener. The sockload harness uses it for the 10 k-
// connection sweep because a real-TCP soak costs ~4 file descriptors
// per connection (client, gateway accept, gateway dial, echo accept)
// — 40 k fds, past the container's hard 20 k cap — while the mux-vs-
// plain comparison only needs both arms to ride the *same* transport.
// Unlike net.Pipe, writes are buffered (up to memConnBuf per
// direction), so latency measurements are not distorted by a
// rendezvous per byte.

const memConnBuf = 256 << 10

// memHalf is one direction: a byte queue with blocking reads and
// writes that block only when the buffer is full.
type memHalf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool // no more writes will arrive
}

func newMemHalf() *memHalf {
	h := &memHalf{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *memHalf) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	for len(p) > 0 {
		for len(h.buf) >= memConnBuf && !h.closed {
			h.cond.Wait()
		}
		if h.closed {
			return total, io.ErrClosedPipe
		}
		n := memConnBuf - len(h.buf)
		if n > len(p) {
			n = len(p)
		}
		h.buf = append(h.buf, p[:n]...)
		p = p[n:]
		total += n
		h.cond.Broadcast()
	}
	return total, nil
}

func (h *memHalf) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.buf) == 0 {
		if h.closed {
			return 0, io.EOF
		}
		h.cond.Wait()
	}
	n := copy(p, h.buf)
	h.buf = h.buf[n:]
	if len(h.buf) == 0 {
		h.buf = nil // let the drained backing array go
	}
	h.cond.Broadcast()
	return n, nil
}

func (h *memHalf) close() {
	h.mu.Lock()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// MemConn is one end of an in-memory connection pair.
type MemConn struct {
	rd, wr *memHalf
	local  string
	remote string
}

// MemPipe returns a connected, buffered in-memory net.Conn pair.
func MemPipe() (*MemConn, *MemConn) {
	a2b, b2a := newMemHalf(), newMemHalf()
	a := &MemConn{rd: b2a, wr: a2b, local: "mem:a", remote: "mem:b"}
	b := &MemConn{rd: a2b, wr: b2a, local: "mem:b", remote: "mem:a"}
	return a, b
}

func (c *MemConn) Read(p []byte) (int, error)  { return c.rd.read(p) }
func (c *MemConn) Write(p []byte) (int, error) { return c.wr.write(p) }

// Close shuts both directions down.
func (c *MemConn) Close() error {
	c.wr.close()
	c.rd.close()
	return nil
}

// CloseWrite half-closes the write side: the peer's reads drain the
// buffer and then see EOF — the TCP CloseWrite the gateway uses to
// propagate a client FIN without losing the target's reply.
func (c *MemConn) CloseWrite() error {
	c.wr.close()
	return nil
}

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

func (c *MemConn) LocalAddr() net.Addr                { return memAddr(c.local) }
func (c *MemConn) RemoteAddr() net.Addr               { return memAddr(c.remote) }
func (c *MemConn) SetDeadline(t time.Time) error      { return nil }
func (c *MemConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *MemConn) SetWriteDeadline(t time.Time) error { return nil }

// MemListener is a net.Listener over MemPipe: Dial hands one end to
// the caller and queues the other for Accept.
type MemListener struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*MemConn
	closed bool
}

// NewMemListener creates an in-memory listener.
func NewMemListener() *MemListener {
	l := &MemListener{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Dial connects to the listener, returning the client end.
func (l *MemListener) Dial() (net.Conn, error) {
	a, b := MemPipe()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, fmt.Errorf("sockets: mem listener closed")
	}
	l.queue = append(l.queue, b)
	l.cond.Broadcast()
	l.mu.Unlock()
	return a, nil
}

// Accept returns the next dialed connection's server end.
func (l *MemListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.queue) == 0 && !l.closed {
		l.cond.Wait()
	}
	if len(l.queue) == 0 {
		return nil, fmt.Errorf("sockets: mem listener closed")
	}
	c := l.queue[0]
	l.queue = l.queue[1:]
	return c, nil
}

// Close unblocks Accept and refuses further dials.
func (l *MemListener) Close() error {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	return nil
}

// Addr returns a synthetic address.
func (l *MemListener) Addr() net.Addr { return memAddr("mem:listener") }

package sockets

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"doppio/internal/telemetry"
	"doppio/internal/vfs"
)

// This file implements the gateway's stream multiplexer: many logical
// byte streams over one WebSocket connection, the rework that turns
// websockify from one-WS-per-TCP-stream into a production gateway
// (DESIGN.md §15).
//
// Each mux frame travels as one WebSocket binary frame whose payload
// is a fixed 13-byte header followed by data:
//
//	[stream id u32][kind u8][arg u32][dlen u32] payload...
//
// arg is the kind's argument: the advertised receive window (SYN,
// SYNACK), the cumulative byte offset of the payload's first byte
// (DATA), the cumulative bytes received (ACK), a credit delta
// (CREDIT), the stream's final length (FIN), or a reset code (RST).
// dlen is the declared payload length; a DATA frame whose payload
// arrives shorter than its dlen was truncated in flight and is
// treated as lost.
//
// DATA frames ride a go-back-N ARQ: the receiver accepts only the
// next in-order offset, acknowledges cumulatively, and duplicate ACKs
// (plus a retransmission timer) drive resends — which is what makes N
// muxed streams byte-identical to N plain connections even under the
// fault injector's 10% frame drop/truncate. Control frames are the
// reliable plane: the fault boundary (faultLink, gateway injector)
// only ever drops or truncates DATA frames, mirroring how real
// networks lose payloads, not the session's existence.
//
// Offsets are uint32 and do not wrap: a stream carries at most ~4 GiB
// and is reset with EPROTO past that — a documented limit, not a
// silent corruption.

// MuxHeaderLen is the fixed mux frame header size.
const MuxHeaderLen = 13

// MuxPath is the handshake request path that selects multiplexed mode
// on the gateway; any other path proxies one TCP stream per
// connection, the classic websockify behavior.
const MuxPath = "/mux"

// The mux frame kinds.
const (
	muxData   byte = 0x0
	muxSyn    byte = 0x1
	muxSynAck byte = 0x2
	muxAck    byte = 0x3
	muxCredit byte = 0x4
	muxFin    byte = 0x5
	muxRst    byte = 0x6
)

// The RST reason codes carried in arg, mapped to errnos so stream
// failures classify through vfs.Classify like every other error.
const (
	rstShed    uint32 = 1 // receiver refused the stream under load
	rstRefused uint32 = 2 // the gateway's TCP dial was refused
	rstReset   uint32 = 3 // transport or peer died mid-stream
	rstProto   uint32 = 4 // framing/credit protocol violation
)

func rstCode(e vfs.Errno) uint32 {
	switch e {
	case vfs.EAGAIN:
		return rstShed
	case vfs.ECONNREFUSED:
		return rstRefused
	case vfs.ECONNRESET:
		return rstReset
	}
	return rstProto
}

func rstErrno(code uint32) vfs.Errno {
	switch code {
	case rstShed:
		return vfs.EAGAIN
	case rstRefused:
		return vfs.ECONNREFUSED
	case rstReset:
		return vfs.ECONNRESET
	}
	return vfs.EPROTO
}

// StreamError is the terminal error of a reset or shed mux stream.
// It carries an errno so vfs.Classify (and therefore retry.Policy)
// treats gateway failures consistently with VFS errors: a shed stream
// is EAGAIN (transient — back off and redial), a dead transport is
// ECONNRESET (transient), a refused target is ECONNREFUSED (final),
// and a protocol violation is EPROTO (final).
type StreamError struct {
	StreamID uint32
	Code     vfs.Errno
}

func (e *StreamError) Error() string {
	return fmt.Sprintf("sockets: stream %d: %s", e.StreamID, e.Code)
}

// Errno classifies the failure for vfs.Classify.
func (e *StreamError) Errno() vfs.Errno { return e.Code }

// IsShed reports whether err is a stream refused for load (the signal
// sockload's shed phase counts).
func IsShed(err error) bool {
	return vfs.IsErrno(err, vfs.EAGAIN)
}

// MuxIsData reports whether a mux frame (a WS binary payload) is a
// DATA frame — the only kind the fault boundary may drop or truncate.
func MuxIsData(frame []byte) bool {
	return len(frame) >= MuxHeaderLen && frame[4] == muxData
}

func muxHeader(id uint32, kind byte, arg, dlen uint32) []byte {
	h := make([]byte, MuxHeaderLen)
	binary.BigEndian.PutUint32(h[0:4], id)
	h[4] = kind
	binary.BigEndian.PutUint32(h[5:9], arg)
	binary.BigEndian.PutUint32(h[9:13], dlen)
	return h
}

// Tunables. Window and MaxStreams are per-config; these are fixed.
const (
	defaultWindow     = 64 << 10
	defaultMaxStreams = 1024
	defaultRTO        = 50 * time.Millisecond
	maxDataChunk      = 16 << 10
	// minRetxGap rate-limits duplicate-ACK fast retransmits so a burst
	// of dup ACKs (one per out-of-order frame) resends the window once,
	// not once per ACK.
	minRetxGap = 2 * time.Millisecond
	// maxStreamBytes caps a stream's cumulative offset below uint32
	// wrap; past it the stream resets with EPROTO.
	maxStreamBytes = 1<<32 - 1 - (64 << 20)
)

// MuxConfig configures one mux session endpoint.
type MuxConfig struct {
	// Send transmits one mux frame (header + payload) on the
	// transport; it is called from the session's writer goroutine,
	// never with the session lock held. The two slices must be sent as
	// one WebSocket binary frame — WriteBinaryFrame does it with a
	// single writev and no copy.
	Send func(hdr, payload []byte) error
	// Window is the receive window advertised per stream (bytes);
	// 0 means 64 KiB.
	Window int
	// MaxStreams caps concurrently open streams; a SYN past the cap is
	// shed with RST(EAGAIN). 0 means 1024.
	MaxStreams int
	// RTO is the go-back-N retransmission timeout; 0 means 50 ms.
	RTO time.Duration
	// AcceptStream, when non-nil, receives each incoming SYN (server
	// role). The handler must call st.Accept or st.Reject. A session
	// without it rejects all SYNs with ECONNREFUSED.
	AcceptStream func(st *MuxStream)
	// OnClose fires once when the session dies (transport failure or
	// CloseSession); err is nil for an orderly local close.
	OnClose func(err error)
	// Hub, when non-nil, mirrors session counters under "sockmux".
	Hub *telemetry.Hub
}

type muxFrame struct {
	hdr     []byte
	payload []byte
}

type muxTel struct {
	streams, shed, resets, retransmits *telemetry.Counter
	dataIn, dataOut                    *telemetry.Counter
}

func newMuxTel(h *telemetry.Hub) muxTel {
	if h == nil {
		return muxTel{
			streams: &telemetry.Counter{}, shed: &telemetry.Counter{},
			resets: &telemetry.Counter{}, retransmits: &telemetry.Counter{},
			dataIn: &telemetry.Counter{}, dataOut: &telemetry.Counter{},
		}
	}
	reg := h.Registry
	return muxTel{
		streams:     reg.Counter("sockmux", "streams"),
		shed:        reg.Counter("sockmux", "shed"),
		resets:      reg.Counter("sockmux", "resets"),
		retransmits: reg.Counter("sockmux", "retransmits"),
		dataIn:      reg.Counter("sockmux", "data_frames_in"),
		dataOut:     reg.Counter("sockmux", "data_frames_out"),
	}
}

// muxStats are the session counters surfaced by Snapshot and
// /debug/sock. All fields are guarded by the Mux lock.
type MuxStats struct {
	Opened      int64 // streams opened locally
	Accepted    int64 // streams accepted from the peer
	Shed        int64 // SYNs refused for load (cap or handler reject)
	Resets      int64 // RST frames sent or received
	Retransmits int64 // go-back-N resends (dup-ACK + RTO)
	DupAcks     int64 // duplicate ACKs received
	Truncated   int64 // DATA frames dropped for a dlen mismatch
	DataIn      int64 // DATA frames accepted in order
	DataOut     int64 // DATA frames first-transmitted
	BytesIn     int64
	BytesOut    int64
	Credits     int64 // CREDIT frames sent
}

// Mux is one endpoint of a multiplexed session. It is
// transport-agnostic and safe for concurrent use: the gateway drives
// it from per-connection goroutines, the browser client from the
// event loop thread, and sockload from thousands of client
// goroutines.
type Mux struct {
	cfg MuxConfig
	tel muxTel

	mu      sync.Mutex
	cond    *sync.Cond // broadcast on stream state changes (blocking I/O)
	outCond *sync.Cond // signals the writer goroutine
	outQ    []muxFrame
	streams map[uint32]*MuxStream
	nextID  uint32
	dead    bool
	deadErr error
	stats   MuxStats

	tickStop chan struct{}
}

// NewMux starts a session endpoint over the given transport send
// function. The caller feeds incoming WS binary payloads to
// HandleFrame and must call CloseSession when the transport dies.
func NewMux(cfg MuxConfig) *Mux {
	if cfg.Window <= 0 {
		cfg.Window = defaultWindow
	}
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = defaultMaxStreams
	}
	if cfg.RTO <= 0 {
		cfg.RTO = defaultRTO
	}
	m := &Mux{
		cfg:      cfg,
		tel:      newMuxTel(cfg.Hub),
		streams:  make(map[uint32]*MuxStream),
		nextID:   1,
		tickStop: make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	m.outCond = sync.NewCond(&m.mu)
	go m.writeLoop()
	go m.retxLoop()
	return m
}

// Stream states.
const (
	stSynSent = iota
	stSynRecv
	stOpen
	stClosed
)

func stateName(s int) string {
	switch s {
	case stSynSent:
		return "syn-sent"
	case stSynRecv:
		return "syn-recv"
	case stOpen:
		return "open"
	}
	return "closed"
}

// MuxStream is one logical byte stream within a session.
type MuxStream struct {
	m      *Mux
	id     uint32
	remote bool // opened by a peer SYN (vs locally via Open)
	state  int
	err    *StreamError

	// Sender: sendBuf holds written bytes not yet acknowledged;
	// sendBase is the stream offset of sendBuf[0]; the first sentLen
	// bytes of sendBuf have been transmitted at least once (credit
	// spent); the rest await window. DATA payloads alias sendBuf — the
	// single copy of user data is the append into sendBuf, everything
	// downstream (retransmits included) is a re-slice.
	sw         sendWindow
	sendBuf    []byte
	sendBase   uint32
	sentLen    int
	lastSend   time.Time
	lastRetx   time.Time
	finSent    bool
	finAt      uint32
	writeWaits []writeWait

	// Receiver.
	rw       recvWindow
	recvBuf  []byte
	recvNext uint32
	finRecv  bool
	finRecvAt uint32

	readable func()          // persistent data/EOF/error notification
	opened   func(err error) // one-shot open/refuse notification
	openFired bool
}

type writeWait struct {
	at   uint32 // fires when the admitted offset reaches at
	done func(error)
}

// ID returns the stream's session-unique id (immutable after open).
func (st *MuxStream) ID() uint32 { return st.id }

// enqueue appends a frame for the writer goroutine. Lock held.
func (m *Mux) enqueue(hdr, payload []byte) {
	if m.dead {
		return
	}
	m.outQ = append(m.outQ, muxFrame{hdr: hdr, payload: payload})
	m.outCond.Signal()
}

// writeLoop is the session's single writer: it drains outQ in order,
// calling cfg.Send without the lock so a backpressured transport
// never wedges frame processing.
func (m *Mux) writeLoop() {
	for {
		m.mu.Lock()
		for len(m.outQ) == 0 && !m.dead {
			m.outCond.Wait()
		}
		if len(m.outQ) == 0 && m.dead {
			m.mu.Unlock()
			return
		}
		batch := m.outQ
		m.outQ = nil
		m.mu.Unlock()
		for _, f := range batch {
			// Re-check liveness per frame: after CloseSession an
			// already-dequeued batch must stop writing — on a
			// reconnecting client the transport may by now belong to
			// the *successor* session, and stale frames with recycled
			// stream ids would corrupt it.
			m.mu.Lock()
			dead := m.dead
			m.mu.Unlock()
			if dead {
				return
			}
			if err := m.cfg.Send(f.hdr, f.payload); err != nil {
				m.fail(err)
				return
			}
		}
	}
}

// retxLoop is the go-back-N timer: it scans for streams whose oldest
// unacked byte has outlived the RTO and resends from the base.
func (m *Mux) retxLoop() {
	t := time.NewTicker(m.cfg.RTO / 2)
	defer t.Stop()
	for {
		select {
		case <-m.tickStop:
			return
		case <-t.C:
		}
		m.mu.Lock()
		now := time.Now()
		for _, st := range m.streams {
			if st.sentLen > 0 && now.Sub(st.lastSend) > m.cfg.RTO {
				m.retransmit(st, now)
			}
		}
		m.mu.Unlock()
	}
}

// retransmit resends the transmitted-but-unacked prefix. Lock held.
func (m *Mux) retransmit(st *MuxStream, now time.Time) {
	for off := 0; off < st.sentLen; off += maxDataChunk {
		end := off + maxDataChunk
		if end > st.sentLen {
			end = st.sentLen
		}
		chunk := st.sendBuf[off:end]
		m.enqueue(muxHeader(st.id, muxData, st.sendBase+uint32(off), uint32(len(chunk))), chunk)
	}
	st.lastSend = now
	st.lastRetx = now
	m.stats.Retransmits++
	m.tel.retransmits.Inc()
}

// pump transmits whatever the window permits and fires Write
// completions whose bytes are fully admitted. Lock held; returns
// callbacks to run after unlock.
func (m *Mux) pump(st *MuxStream) []func() {
	if st.state != stOpen && st.state != stSynSent {
		return nil
	}
	for st.sentLen < len(st.sendBuf) {
		want := len(st.sendBuf) - st.sentLen
		if want > maxDataChunk {
			want = maxDataChunk
		}
		n := st.sw.take(want)
		if n == 0 {
			break
		}
		chunk := st.sendBuf[st.sentLen : st.sentLen+n]
		m.enqueue(muxHeader(st.id, muxData, st.sendBase+uint32(st.sentLen), uint32(n)), chunk)
		st.sentLen += n
		st.lastSend = time.Now()
		m.stats.DataOut++
		m.stats.BytesOut += int64(n)
		m.tel.dataOut.Inc()
	}
	admitted := st.sendBase + uint32(st.sentLen)
	var fire []func()
	kept := st.writeWaits[:0]
	for _, w := range st.writeWaits {
		if w.at <= admitted {
			done := w.done
			fire = append(fire, func() { done(nil) })
		} else {
			kept = append(kept, w)
		}
	}
	st.writeWaits = kept
	if len(fire) > 0 {
		m.cond.Broadcast()
	}
	return fire
}

func run(fns []func()) {
	for _, f := range fns {
		f()
	}
}

// Open starts a new outgoing stream: it sends SYN carrying our
// receive window and returns immediately. Writes are accepted right
// away (they queue until the SYNACK grants window); SetOpened or
// WaitOpen observe acceptance or refusal.
func (m *Mux) Open() (*MuxStream, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return nil, &StreamError{Code: vfs.ECONNRESET}
	}
	// Skip ids already taken by peer-opened streams: both endpoints
	// allocate from one space, so without this a symmetric session
	// (both sides calling Open) would silently collide.
	for m.nextID == 0 || m.streams[m.nextID] != nil {
		m.nextID++
	}
	st := &MuxStream{m: m, id: m.nextID, state: stSynSent}
	m.nextID++
	st.rw.window = m.cfg.Window
	m.streams[st.id] = st
	m.stats.Opened++
	m.tel.streams.Inc()
	m.enqueue(muxHeader(st.id, muxSyn, uint32(st.rw.window), 0), nil)
	return st, nil
}

// SetOpened registers the one-shot open notification: fn(nil) on
// SYNACK, fn(err) on refusal or session death. Fires immediately if
// the stream already settled.
func (st *MuxStream) SetOpened(fn func(err error)) {
	m := st.m
	m.mu.Lock()
	if st.openFired {
		err := error(nil)
		if st.err != nil {
			err = st.err
		}
		m.mu.Unlock()
		fn(err)
		return
	}
	st.opened = fn
	m.mu.Unlock()
}

// WaitOpen blocks until the stream is accepted or refused.
func (st *MuxStream) WaitOpen() error {
	m := st.m
	m.mu.Lock()
	defer m.mu.Unlock()
	for !st.openFired {
		m.cond.Wait()
	}
	if st.err != nil {
		return st.err
	}
	return nil
}

// settleOpen marks the open decided. Lock held; returns callback.
func (st *MuxStream) settleOpen(err error) []func() {
	if st.openFired {
		return nil
	}
	st.openFired = true
	st.m.cond.Broadcast()
	if st.opened == nil {
		return nil
	}
	fn := st.opened
	st.opened = nil
	return []func(){func() { fn(err) }}
}

// Accept admits an incoming stream (server role): it advertises our
// receive window with SYNACK and opens the stream for I/O.
func (st *MuxStream) Accept() {
	m := st.m
	m.mu.Lock()
	if st.state != stSynRecv {
		m.mu.Unlock()
		return
	}
	st.state = stOpen
	st.rw.window = m.cfg.Window
	m.stats.Accepted++
	m.enqueue(muxHeader(st.id, muxSynAck, uint32(st.rw.window), 0), nil)
	fns := m.pump(st)
	m.mu.Unlock()
	run(fns)
}

// Reject refuses an incoming stream with the given errno (server
// role). vfs.EAGAIN is the shed code.
func (st *MuxStream) Reject(code vfs.Errno) {
	m := st.m
	m.mu.Lock()
	if st.state != stSynRecv {
		m.mu.Unlock()
		return
	}
	if code == vfs.EAGAIN {
		m.stats.Shed++
		m.tel.shed.Inc()
	}
	fns := m.resetLocked(st, code, true)
	m.mu.Unlock()
	run(fns)
}

// Write queues p for transmission and calls done(nil) once every byte
// has been admitted to the flow-control window (transmitted once). A
// zero-window stream holds the completion until the peer grants
// credit — the backpressure the tests pin down. done(err) reports a
// reset stream.
func (st *MuxStream) Write(p []byte, done func(error)) {
	m := st.m
	m.mu.Lock()
	if st.err != nil || st.state == stClosed || st.finSent {
		var err error = ErrSocketClosed
		if st.err != nil {
			err = st.err
		}
		m.mu.Unlock()
		if done != nil {
			done(err)
		}
		return
	}
	if uint64(st.sendBase)+uint64(len(st.sendBuf))+uint64(len(p)) > maxStreamBytes {
		fns := m.resetLocked(st, vfs.EPROTO, true)
		m.mu.Unlock()
		run(fns)
		if done != nil {
			done(&StreamError{StreamID: st.id, Code: vfs.EPROTO})
		}
		return
	}
	st.sendBuf = append(st.sendBuf, p...)
	if done != nil {
		st.writeWaits = append(st.writeWaits,
			writeWait{at: st.sendBase + uint32(len(st.sendBuf)), done: done})
	}
	fns := m.pump(st)
	m.mu.Unlock()
	run(fns)
}

// WriteBlocking is Write for goroutine callers: it returns once the
// bytes are admitted to the window.
func (st *MuxStream) WriteBlocking(p []byte) error {
	m := st.m
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if st.err != nil {
			return st.err
		}
		if st.state == stClosed || st.finSent {
			return ErrSocketClosed
		}
		if st.state == stOpen || st.state == stSynSent {
			break
		}
		m.cond.Wait()
	}
	st.sendBuf = append(st.sendBuf, p...)
	target := st.sendBase + uint32(len(st.sendBuf))
	fns := m.pump(st)
	// Fire any async completions inline: they belong to other writers
	// and must not wait for our window.
	m.mu.Unlock()
	run(fns)
	m.mu.Lock()
	for {
		if st.err != nil {
			return st.err
		}
		if st.state == stClosed {
			return ErrSocketClosed
		}
		if st.sendBase+uint32(st.sentLen) >= target || target <= st.sendBase {
			return nil
		}
		m.cond.Wait()
	}
}

// SetReadable registers a persistent notification fired (outside the
// session lock) whenever data arrives, EOF is reached, or the stream
// errors. If the stream is already readable it fires immediately.
func (st *MuxStream) SetReadable(fn func()) {
	m := st.m
	m.mu.Lock()
	st.readable = fn
	ready := len(st.recvBuf) > 0 || st.err != nil || st.atEOFLocked()
	m.mu.Unlock()
	if ready && fn != nil {
		fn()
	}
}

func (st *MuxStream) atEOFLocked() bool {
	return st.finRecv && st.recvNext == st.finRecvAt && len(st.recvBuf) == 0
}

// TryRead drains up to max buffered bytes without blocking. It
// returns (nil, nil) when no data is buffered yet, (nil, io.EOF) at
// end of stream, and (nil, err) on a reset stream. The returned slice
// is valid until the stream is garbage.
func (st *MuxStream) TryRead(max int) ([]byte, error) {
	m := st.m
	m.mu.Lock()
	if len(st.recvBuf) == 0 {
		if st.err != nil {
			err := st.err
			m.mu.Unlock()
			return nil, err
		}
		if st.atEOFLocked() {
			m.mu.Unlock()
			return nil, io.EOF
		}
		m.mu.Unlock()
		return nil, nil
	}
	k := max
	if k > len(st.recvBuf) {
		k = len(st.recvBuf)
	}
	out := st.recvBuf[:k]
	st.recvBuf = st.recvBuf[k:]
	if g := st.rw.drained(k); g > 0 {
		m.creditLocked(st, g)
	}
	m.mu.Unlock()
	return out, nil
}

// ReadBlocking fills buf with at least one byte, blocking until data,
// EOF (0, io.EOF), or a reset (0, err).
func (st *MuxStream) ReadBlocking(buf []byte) (int, error) {
	m := st.m
	m.mu.Lock()
	for {
		if len(st.recvBuf) > 0 {
			k := len(buf)
			if k > len(st.recvBuf) {
				k = len(st.recvBuf)
			}
			copy(buf, st.recvBuf[:k])
			st.recvBuf = st.recvBuf[k:]
			if g := st.rw.drained(k); g > 0 {
				m.creditLocked(st, g)
			}
			m.mu.Unlock()
			return k, nil
		}
		if st.err != nil {
			err := st.err
			m.mu.Unlock()
			return 0, err
		}
		if st.atEOFLocked() {
			m.mu.Unlock()
			return 0, io.EOF
		}
		if m.dead {
			m.mu.Unlock()
			return 0, &StreamError{StreamID: st.id, Code: vfs.ECONNRESET}
		}
		m.cond.Wait()
	}
}

// Buffered reports bytes waiting in the receive buffer.
func (st *MuxStream) Buffered() int {
	st.m.mu.Lock()
	defer st.m.mu.Unlock()
	return len(st.recvBuf)
}

// creditLocked emits a CREDIT grant. Lock held.
func (m *Mux) creditLocked(st *MuxStream, g int) {
	if st.state != stOpen {
		return
	}
	m.enqueue(muxHeader(st.id, muxCredit, uint32(g), 0), nil)
	m.stats.Credits++
}

// PauseCredit withholds future credit grants from the stream's peer —
// the gateway's per-stream backpressure lever when the owning
// tenant's loop falls behind.
func (st *MuxStream) PauseCredit() {
	st.m.mu.Lock()
	st.rw.pause()
	st.m.mu.Unlock()
}

// ResumeCredit lifts a pause and releases any credit that accumulated
// while paused.
func (st *MuxStream) ResumeCredit() {
	m := st.m
	m.mu.Lock()
	if g := st.rw.resume(); g > 0 {
		m.creditLocked(st, g)
	}
	m.mu.Unlock()
}

// Close half-closes the stream for writing: a FIN carrying the final
// offset tells the peer where the byte stream ends. Reads continue
// until the peer's own FIN.
func (st *MuxStream) Close() error {
	m := st.m
	m.mu.Lock()
	if st.err != nil || st.finSent || st.state == stClosed {
		m.mu.Unlock()
		return nil
	}
	st.finSent = true
	st.finAt = st.sendBase + uint32(len(st.sendBuf))
	m.enqueue(muxHeader(st.id, muxFin, st.finAt, 0), nil)
	m.maybeReapLocked(st)
	m.mu.Unlock()
	return nil
}

// Reset kills the stream with the given errno, notifying the peer.
func (st *MuxStream) Reset(code vfs.Errno) {
	m := st.m
	m.mu.Lock()
	fns := m.resetLocked(st, code, true)
	m.mu.Unlock()
	run(fns)
}

// resetLocked tears a stream down, optionally telling the peer, and
// returns the callbacks to run after unlock. Lock held.
func (m *Mux) resetLocked(st *MuxStream, code vfs.Errno, tellPeer bool) []func() {
	if st.state == stClosed {
		return nil
	}
	if tellPeer {
		m.enqueue(muxHeader(st.id, muxRst, rstCode(code), 0), nil)
	}
	m.stats.Resets++
	m.tel.resets.Inc()
	return m.killLocked(st, code)
}

// killLocked finalizes a dead stream without emitting frames.
func (m *Mux) killLocked(st *MuxStream, code vfs.Errno) []func() {
	st.state = stClosed
	st.err = &StreamError{StreamID: st.id, Code: code}
	delete(m.streams, st.id)
	var fns []func()
	fns = append(fns, st.settleOpen(st.err)...)
	for _, w := range st.writeWaits {
		done := w.done
		err := st.err
		fns = append(fns, func() { done(err) })
	}
	st.writeWaits = nil
	if st.readable != nil {
		fns = append(fns, st.readable)
	}
	m.cond.Broadcast()
	return fns
}

// maybeReapLocked removes a stream whose both directions finished, so
// the session map does not grow without bound.
func (m *Mux) maybeReapLocked(st *MuxStream) {
	if st.finSent && st.sendBase == st.finAt && len(st.sendBuf) == 0 &&
		st.finRecv && st.atEOFLocked() {
		st.state = stClosed
		delete(m.streams, st.id)
	}
}

// HandleFrame processes one incoming WS binary payload. The caller is
// the transport's reader (the client's message handler or the
// gateway's connection goroutine).
func (m *Mux) HandleFrame(b []byte) {
	if len(b) < MuxHeaderLen {
		m.fail(&StreamError{Code: vfs.EPROTO})
		return
	}
	id := binary.BigEndian.Uint32(b[0:4])
	kind := b[4]
	arg := binary.BigEndian.Uint32(b[5:9])
	dlen := binary.BigEndian.Uint32(b[9:13])
	payload := b[MuxHeaderLen:]

	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		return
	}
	st := m.streams[id]
	var fns []func()
	switch kind {
	case muxSyn:
		fns = m.handleSyn(id, arg)
	case muxSynAck:
		if st != nil && st.state == stSynSent {
			st.state = stOpen
			st.sw.grant(int(arg))
			fns = append(fns, st.settleOpen(nil)...)
			fns = append(fns, m.pump(st)...)
		}
	case muxData:
		if st == nil {
			// A stale stream: tell the peer to stop sending.
			m.enqueue(muxHeader(id, muxRst, rstReset, 0), nil)
			break
		}
		fns = m.handleData(st, arg, dlen, payload)
	case muxAck:
		if st != nil {
			fns = m.handleAck(st, arg)
		}
	case muxCredit:
		if st != nil {
			st.sw.grant(int(arg))
			fns = m.pump(st)
		}
	case muxFin:
		if st != nil && !st.finRecv {
			st.finRecv = true
			st.finRecvAt = arg
			if st.atEOFLocked() {
				m.cond.Broadcast()
				if st.readable != nil {
					fns = append(fns, st.readable)
				}
				m.maybeReapLocked(st)
			}
		}
	case muxRst:
		if st != nil {
			m.stats.Resets++
			m.tel.resets.Inc()
			fns = m.killLocked(st, rstErrno(arg))
		}
	default:
		m.mu.Unlock()
		m.fail(&StreamError{StreamID: id, Code: vfs.EPROTO})
		return
	}
	m.mu.Unlock()
	run(fns)
}

// handleSyn admits or sheds an incoming stream. Lock held.
func (m *Mux) handleSyn(id uint32, window uint32) []func() {
	if dup := m.streams[id]; dup != nil {
		if dup.remote {
			return nil // retransmitted SYN; control frames are reliable, ignore
		}
		// The peer's SYN collides with a stream *we* opened: both
		// sides are allocating from the same id space. Reject loudly
		// as a protocol violation instead of silently treating it as
		// a retransmit and desyncing the two endpoints' stream maps.
		m.enqueue(muxHeader(id, muxRst, rstProto, 0), nil)
		m.stats.Resets++
		m.tel.resets.Inc()
		return nil
	}
	if m.cfg.AcceptStream == nil {
		m.enqueue(muxHeader(id, muxRst, rstRefused, 0), nil)
		m.stats.Resets++
		return nil
	}
	if len(m.streams) >= m.cfg.MaxStreams {
		m.enqueue(muxHeader(id, muxRst, rstShed, 0), nil)
		m.stats.Shed++
		m.tel.shed.Inc()
		return nil
	}
	st := &MuxStream{m: m, id: id, remote: true, state: stSynRecv}
	st.sw.grant(int(window))
	m.streams[id] = st
	m.tel.streams.Inc()
	accept := m.cfg.AcceptStream
	return []func(){func() { accept(st) }}
}

// handleData runs the receiver side of go-back-N. Lock held.
func (m *Mux) handleData(st *MuxStream, seq, dlen uint32, payload []byte) []func() {
	if int(dlen) != len(payload) {
		// Truncated in flight: treat as loss, solicit a resend.
		m.stats.Truncated++
		m.enqueue(muxHeader(st.id, muxAck, st.recvNext, 0), nil)
		return nil
	}
	n := uint32(len(payload))
	accept := payload
	switch {
	case seq == st.recvNext:
		// In order.
	case seq < st.recvNext && seq+n > st.recvNext:
		// Overlapping retransmit: keep the unseen tail.
		accept = payload[st.recvNext-seq:]
	default:
		// A gap (or a fully stale duplicate): drop, dup-ACK.
		m.enqueue(muxHeader(st.id, muxAck, st.recvNext, 0), nil)
		return nil
	}
	st.recvBuf = append(st.recvBuf, accept...)
	st.recvNext += uint32(len(accept))
	m.stats.DataIn++
	m.stats.BytesIn += int64(len(accept))
	m.tel.dataIn.Inc()
	m.enqueue(muxHeader(st.id, muxAck, st.recvNext, 0), nil)
	// A peer that overruns its credit by more than a full window is
	// violating the protocol, not just racing a grant.
	if len(st.recvBuf) > 2*st.rw.window+maxDataChunk {
		return m.resetLocked(st, vfs.EPROTO, true)
	}
	m.cond.Broadcast()
	if st.readable != nil {
		return []func(){st.readable}
	}
	return nil
}

// handleAck advances the sender base or fast-retransmits. Lock held.
func (m *Mux) handleAck(st *MuxStream, cum uint32) []func() {
	switch {
	case cum > st.sendBase:
		drop := int(cum - st.sendBase)
		if drop > st.sentLen {
			return m.resetLocked(st, vfs.EPROTO, true)
		}
		st.sendBuf = st.sendBuf[drop:]
		st.sentLen -= drop
		st.sendBase = cum
		m.cond.Broadcast()
		fns := m.pump(st)
		m.maybeReapLocked(st)
		return fns
	case cum == st.sendBase && st.sentLen > 0:
		// Duplicate ACK: the peer is missing our base. Fast
		// retransmit, rate-limited.
		m.stats.DupAcks++
		now := time.Now()
		if now.Sub(st.lastRetx) >= minRetxGap {
			m.retransmit(st, now)
		}
	}
	return nil
}

// fail kills the whole session: every stream errors with ECONNRESET
// (transient — redial-worthy), blocked I/O wakes, OnClose fires once.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		return
	}
	m.dead = true
	m.deadErr = err
	var fns []func()
	for _, st := range m.streams {
		fns = append(fns, m.killLocked(st, vfs.ECONNRESET)...)
	}
	m.outQ = nil
	m.outCond.Broadcast()
	m.cond.Broadcast()
	m.mu.Unlock()
	close(m.tickStop) // first fail only: guarded by m.dead above
	run(fns)
	if m.cfg.OnClose != nil {
		m.cfg.OnClose(err)
	}
}

// CloseSession shuts the endpoint down (transport died or owner is
// done). Idempotent.
func (m *Mux) CloseSession(err error) { m.fail(err) }

// Dead reports whether the session has failed/closed.
func (m *Mux) Dead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead
}

// StreamSnapshot is one stream's state for /debug/sock.
type StreamSnapshot struct {
	ID           uint32 `json:"id"`
	State        string `json:"state"`
	SendWindow   int    `json:"send_window"`   // unspent credit
	SendQueued   int    `json:"send_queued"`   // bytes unacked or awaiting window
	RecvBuffered int    `json:"recv_buffered"` // bytes awaiting the consumer
	Paused       bool   `json:"paused"`        // credit withheld (shedding)
}

// MuxSnapshot is the session state for /debug/sock.
type MuxSnapshot struct {
	Dead    bool             `json:"dead"`
	Stats   MuxStats         `json:"stats"`
	Streams []StreamSnapshot `json:"streams"`
}

// Snapshot captures the session's streams and counters.
func (m *Mux) Snapshot() MuxSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := MuxSnapshot{Dead: m.dead, Stats: m.stats}
	for _, st := range m.streams {
		snap.Streams = append(snap.Streams, StreamSnapshot{
			ID:           st.id,
			State:        stateName(st.state),
			SendWindow:   st.sw.avail,
			SendQueued:   len(st.sendBuf),
			RecvBuffered: len(st.recvBuf),
			Paused:       st.rw.paused,
		})
	}
	return snap
}

// Stats snapshots the session counters.
func (m *Mux) Stats() MuxStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Add accumulates b into s (the gateway's live+retired aggregation).
func (s *MuxStats) Add(b MuxStats) {
	s.Opened += b.Opened
	s.Accepted += b.Accepted
	s.Shed += b.Shed
	s.Resets += b.Resets
	s.Retransmits += b.Retransmits
	s.DupAcks += b.DupAcks
	s.Truncated += b.Truncated
	s.DataIn += b.DataIn
	s.DataOut += b.DataOut
	s.BytesIn += b.BytesIn
	s.BytesOut += b.BytesOut
	s.Credits += b.Credits
}

// StreamCount reports the number of live streams in the session.
func (m *Mux) StreamCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.streams)
}

// ForEachStream calls fn for every live stream, outside the session
// lock — the gateway's pause/resume sweep.
func (m *Mux) ForEachStream(fn func(st *MuxStream)) {
	m.mu.Lock()
	streams := make([]*MuxStream, 0, len(m.streams))
	for _, st := range m.streams {
		streams = append(streams, st)
	}
	m.mu.Unlock()
	for _, st := range streams {
		fn(st)
	}
}

package sockets

import (
	"errors"
	"sync"
	"time"

	"doppio/internal/browser"
	"doppio/internal/core"
	"doppio/internal/eventloop"
	"doppio/internal/telemetry"
	"doppio/internal/vfs/retry"
)

// ErrNotConnected reports a Send on a ReconnectingWS that is currently
// between connections.
var ErrNotConnected = errors.New("sockets: not connected")

// errHeartbeatTimeout is the cause recorded when a pong misses its
// deadline.
var errHeartbeatTimeout = errors.New("sockets: heartbeat timed out")

// ReconnectOptions configures NewReconnectingWS.
type ReconnectOptions struct {
	// Policy shapes the redial backoff; a zero Policy gets
	// retry.Defaults(). Policy.MaxAttempts bounds consecutive failed
	// dials within one outage (a successful open resets the count).
	Policy retry.Policy
	// HeartbeatInterval, when positive, pings the server at this period
	// while the connection is open, catching half-dead connections that
	// TCP alone would let linger.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a pong may take before the
	// connection is declared dead and redialed. Zero means
	// HeartbeatInterval.
	HeartbeatTimeout time.Duration
	// Hub, when non-nil, receives dial/reconnect/heartbeat counters
	// under the subsystem "sockretry".
	Hub *telemetry.Hub
	// Path is the handshake request path (""/"/" = plain websockify;
	// MuxPath selects the gateway's multiplexed mode).
	Path string
}

// ReconnectStats is a point-in-time snapshot of a ReconnectingWS's
// counters.
type ReconnectStats struct {
	Dials             int64 // connection attempts issued
	Opens             int64 // attempts that reached the open state
	Reconnects        int64 // opens after a previous connection was lost
	Heartbeats        int64 // pings sent
	HeartbeatTimeouts int64 // connections declared dead by a missed pong
	GaveUp            int64 // outages that exhausted the redial budget
	BackoffNanos      int64 // total time waited between redials
}

// ReconnectingWS maintains a WebSocket to one address across
// connection failures: when the link drops (reset, handshake failure,
// missed heartbeat), it redials with the policy's exponential backoff
// until the attempt budget for the outage is exhausted. It is the
// socket layer's analogue of the VFS retry decorator — the piece that
// keeps a long-lived browser connection (§5.3) alive over the flaky
// transport the fault injector models.
//
// All callbacks fire on the window's event loop, and all methods must
// be called from it (or before Loop.Run starts) — except Send,
// SendParts, and Connected, which are safe from any goroutine: the mux
// session's writer calls them off-loop while reconnects mutate the
// transport on the loop.
type ReconnectingWS struct {
	// OnOpen fires each time a connection reaches the open state;
	// reconnected is false only for the first open.
	OnOpen func(reconnected bool)
	// OnMessage receives each incoming message.
	OnMessage func(data []byte)
	// OnDown fires when an established connection is lost (a redial is
	// already scheduled unless the budget is exhausted).
	OnDown func(err error)
	// OnGiveUp fires when an outage exhausts the redial budget; the
	// last error is passed. The client is idle afterwards.
	OnGiveUp func(err error)

	win  *browser.Window
	loop *eventloop.Loop
	addr string
	opts ReconnectOptions
	rnd  func() float64

	// stateMu guards ws, open, and closed: all three are mutated on
	// the event loop (dial, open/close events, Close) and read from
	// the mux writer goroutine via Send/SendParts/Connected.
	stateMu    sync.Mutex
	ws         *WebSocket
	open       bool
	closed     bool

	everOpened bool // loop thread only
	attempt    int  // failed dials in the current outage
	lastErr    error

	hbPing, hbWatch       eventloop.TimerID
	hasPing, hasWatch     bool
	pongPending           bool
	dials, opens          *telemetry.Counter
	reconnects, gaveUp    *telemetry.Counter
	heartbeats, hbExpired *telemetry.Counter
	backoffNs             *telemetry.Counter
}

// NewReconnectingWS builds a reconnecting client for addr and starts
// the first dial. Assign the On* handlers before running the loop.
func NewReconnectingWS(w *browser.Window, addr string, opts ReconnectOptions) *ReconnectingWS {
	if opts.Policy == (retry.Policy{}) {
		opts.Policy = retry.Defaults()
	}
	r := &ReconnectingWS{
		win:  w,
		loop: w.Loop,
		addr: addr,
		opts: opts,
		rnd:  opts.Policy.Rand(),
	}
	if opts.Hub != nil {
		reg := opts.Hub.Registry
		r.dials = reg.Counter("sockretry", "dials")
		r.opens = reg.Counter("sockretry", "opens")
		r.reconnects = reg.Counter("sockretry", "reconnects")
		r.gaveUp = reg.Counter("sockretry", "gave_up")
		r.heartbeats = reg.Counter("sockretry", "heartbeats")
		r.hbExpired = reg.Counter("sockretry", "heartbeat_timeouts")
		r.backoffNs = reg.Counter("sockretry", "backoff_ns")
	} else {
		r.dials = &telemetry.Counter{}
		r.opens = &telemetry.Counter{}
		r.reconnects = &telemetry.Counter{}
		r.gaveUp = &telemetry.Counter{}
		r.heartbeats = &telemetry.Counter{}
		r.hbExpired = &telemetry.Counter{}
		r.backoffNs = &telemetry.Counter{}
	}
	r.dial()
	return r
}

// Stats snapshots the counters.
func (r *ReconnectingWS) Stats() ReconnectStats {
	return ReconnectStats{
		Dials:             r.dials.Value(),
		Opens:             r.opens.Value(),
		Reconnects:        r.reconnects.Value(),
		Heartbeats:        r.heartbeats.Value(),
		HeartbeatTimeouts: r.hbExpired.Value(),
		GaveUp:            r.gaveUp.Value(),
		BackoffNanos:      r.backoffNs.Value(),
	}
}

// Connected reports whether a connection is currently open. Safe from
// any goroutine.
func (r *ReconnectingWS) Connected() bool {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	return r.open && !r.closed
}

// transport returns the live WebSocket, or nil between connections.
// The handle is read under stateMu so a redial reassigning r.ws on the
// loop cannot race a sender on another goroutine; the returned socket
// may still be torn down concurrently, in which case its own writes
// fail and the caller sees an ordinary send error.
func (r *ReconnectingWS) transport() *WebSocket {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	if !r.open || r.closed || r.ws == nil {
		return nil
	}
	return r.ws
}

// Send transmits data on the current connection, or fails with
// ErrNotConnected between connections (callers may buffer and resend
// from OnOpen). Safe from any goroutine.
func (r *ReconnectingWS) Send(data []byte) error {
	ws := r.transport()
	if ws == nil {
		return ErrNotConnected
	}
	return ws.Send(data)
}

// SendParts transmits one unmasked frame in a single writev (the mux
// hot path; see WebSocket.SendParts), or fails with ErrNotConnected
// between connections. Safe from any goroutine.
func (r *ReconnectingWS) SendParts(parts ...[]byte) error {
	ws := r.transport()
	if ws == nil {
		return ErrNotConnected
	}
	return ws.SendParts(parts...)
}

// Close shuts the client down for good: no further redials, heartbeats
// or callbacks.
func (r *ReconnectingWS) Close() error {
	if r.closed {
		return nil
	}
	r.stateMu.Lock()
	r.closed = true
	r.stateMu.Unlock()
	r.stopHeartbeat()
	if r.ws != nil {
		// Safe even mid-handshake: WebSocket.Close finishes the
		// teardown once the dial settles.
		return r.ws.Close()
	}
	return nil
}

func (r *ReconnectingWS) dial() {
	r.dials.Inc()
	path := r.opts.Path
	if path == "" {
		path = "/"
	}
	ws := DialWebSocketPath(r.win, r.addr, path)
	r.stateMu.Lock()
	r.ws = ws
	r.stateMu.Unlock()
	ws.OnOpen = func() {
		if r.closed {
			ws.Close()
			return
		}
		reconnected := r.everOpened
		r.stateMu.Lock()
		r.open = true
		r.stateMu.Unlock()
		r.everOpened = true
		r.attempt = 0
		r.opens.Inc()
		if reconnected {
			r.reconnects.Inc()
		}
		r.startHeartbeat()
		if r.OnOpen != nil {
			r.OnOpen(reconnected)
		}
	}
	ws.OnMessage = func(data []byte) {
		if r.closed {
			return
		}
		if r.OnMessage != nil {
			r.OnMessage(data)
		}
	}
	ws.OnError = func(err error) { r.lastErr = err }
	ws.OnPong = func([]byte) { r.pongPending = false }
	ws.OnClose = func() {
		r.stopHeartbeat()
		wasOpen := r.open
		r.stateMu.Lock()
		r.open = false
		r.stateMu.Unlock()
		if r.closed {
			return
		}
		if wasOpen && r.OnDown != nil {
			r.OnDown(r.lastErr)
			if r.closed { // the handler shut us down
				return
			}
		}
		r.scheduleRedial()
	}
}

// scheduleRedial books the next dial after the policy's backoff, or
// gives up when the outage has consumed the attempt budget.
func (r *ReconnectingWS) scheduleRedial() {
	r.attempt++
	if r.attempt >= r.opts.Policy.Attempts() {
		r.gaveUp.Inc()
		if r.OnGiveUp != nil {
			r.OnGiveUp(r.lastErr)
		}
		return
	}
	d := r.opts.Policy.Backoff(r.attempt, r.rnd)
	r.backoffNs.Add(int64(d))
	// Same scheme as the VFS retry decorator: core.After's completion
	// holds a pending slot across the wait, and the redial lands on
	// the loop thread as an external event.
	core.After(r.loop, "ws-redial", d, func() {
		if !r.closed {
			r.dial()
		}
	})
}

// ---- heartbeat ----

func (r *ReconnectingWS) startHeartbeat() {
	if r.opts.HeartbeatInterval <= 0 {
		return
	}
	r.hbPing = r.loop.SetTimeout(r.heartbeat, r.opts.HeartbeatInterval)
	r.hasPing = true
}

func (r *ReconnectingWS) stopHeartbeat() {
	if r.hasPing {
		r.loop.ClearTimeout(r.hbPing)
		r.hasPing = false
	}
	if r.hasWatch {
		r.loop.ClearTimeout(r.hbWatch)
		r.hasWatch = false
	}
	r.pongPending = false
}

// heartbeat sends one ping, arms the pong watchdog, and books the next
// beat.
func (r *ReconnectingWS) heartbeat() {
	r.hasPing = false
	if r.closed || !r.open {
		return
	}
	r.heartbeats.Inc()
	r.pongPending = true
	if err := r.ws.Ping(nil); err != nil {
		r.dropDead(err)
		return
	}
	timeout := r.opts.HeartbeatTimeout
	if timeout <= 0 {
		timeout = r.opts.HeartbeatInterval
	}
	// One watchdog outstanding at a time: arming a fresh one per ping
	// would pile up a live timer per beat whenever timeout > interval
	// (keeping the loop busy for a full timeout after Close, since
	// stopHeartbeat can only clear the latest), and a missed pong is
	// still caught within interval+timeout by the next arm.
	if !r.hasWatch {
		r.hbWatch = r.loop.SetTimeout(func() {
			r.hasWatch = false
			if r.pongPending && r.open && !r.closed {
				r.hbExpired.Inc()
				r.dropDead(errHeartbeatTimeout)
			}
		}, timeout)
		r.hasWatch = true
	}
	r.startHeartbeat()
}

// dropDead tears down a connection the heartbeat has declared dead;
// the WebSocket's close event then drives the normal redial path.
func (r *ReconnectingWS) dropDead(err error) {
	r.lastErr = err
	r.stopHeartbeat()
	if r.ws != nil {
		r.ws.Close()
	}
}

package sockets

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"fmt"
	"net"
	"strings"
)

// wsGUID is the magic string of RFC 6455 §1.3.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// AcceptKey computes the Sec-WebSocket-Accept value for a client key.
func AcceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// ClientHandshake performs the HTTP Upgrade that "promotes" an HTTP
// connection to a WebSocket connection (§5.3), returning a buffered
// reader positioned after the server response.
func ClientHandshake(conn net.Conn, host, path string) (*bufio.Reader, error) {
	keyBytes := make([]byte, 16)
	if _, err := rand.Read(keyBytes); err != nil {
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyBytes)
	req := fmt.Sprintf("GET %s HTTP/1.1\r\n"+
		"Host: %s\r\n"+
		"Upgrade: websocket\r\n"+
		"Connection: Upgrade\r\n"+
		"Sec-WebSocket-Key: %s\r\n"+
		"Sec-WebSocket-Version: 13\r\n\r\n", path, host, key)
	if _, err := conn.Write([]byte(req)); err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	if !strings.Contains(status, "101") {
		return nil, fmt.Errorf("sockets: handshake rejected: %s", strings.TrimSpace(status))
	}
	var accept string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		if k, v, ok := strings.Cut(line, ":"); ok && strings.EqualFold(strings.TrimSpace(k), "Sec-WebSocket-Accept") {
			accept = strings.TrimSpace(v)
		}
	}
	if accept != AcceptKey(key) {
		return nil, fmt.Errorf("sockets: bad Sec-WebSocket-Accept %q", accept)
	}
	return br, nil
}

// ServerHandshake accepts the HTTP Upgrade on the server side,
// returning the request path and a buffered reader positioned after
// the request.
func ServerHandshake(conn net.Conn) (string, *bufio.Reader, error) {
	br := bufio.NewReader(conn)
	reqLine, err := br.ReadString('\n')
	if err != nil {
		return "", nil, err
	}
	fields := strings.Fields(reqLine)
	if len(fields) < 2 || fields[0] != "GET" {
		return "", nil, fmt.Errorf("sockets: bad handshake request %q", strings.TrimSpace(reqLine))
	}
	path := fields[1]
	var key string
	upgrade := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return "", nil, err
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		switch {
		case strings.EqualFold(k, "Sec-WebSocket-Key"):
			key = v
		case strings.EqualFold(k, "Upgrade") && strings.EqualFold(v, "websocket"):
			upgrade = true
		}
	}
	if !upgrade || key == "" {
		return "", nil, fmt.Errorf("sockets: not a websocket upgrade request")
	}
	resp := fmt.Sprintf("HTTP/1.1 101 Switching Protocols\r\n"+
		"Upgrade: websocket\r\n"+
		"Connection: Upgrade\r\n"+
		"Sec-WebSocket-Accept: %s\r\n\r\n", AcceptKey(key))
	if _, err := conn.Write([]byte(resp)); err != nil {
		return "", nil, err
	}
	return path, br, nil
}

package sockets

import (
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"sync"
	"syscall"
	"time"

	"doppio/internal/browser"
	"doppio/internal/core"
	"doppio/internal/eventloop"
	"doppio/internal/telemetry"
	"doppio/internal/vfs"
)

// DialError reports why an outgoing WebSocket connection never reached
// the open state, distinguishing the two failures a caller must treat
// differently: a *refused* connection (the dial was actively rejected —
// nothing is listening, so retrying immediately is pointless) versus a
// *dropped* one (the transport connected, or was lost mid-handshake —
// the server exists and a backoff-retry is worthwhile). Reconnecting
// clients branch on Refused instead of string-matching error text.
type DialError struct {
	Addr    string
	Refused bool
	Err     error
}

func (e *DialError) Error() string {
	mode := "connection dropped before open"
	if e.Refused {
		mode = "connection refused"
	}
	return fmt.Sprintf("sockets: dial %s: %s: %v", e.Addr, mode, e.Err)
}

// Unwrap exposes the underlying transport error.
func (e *DialError) Unwrap() error { return e.Err }

// Errno classifies the dial failure for vfs.Classify: a refused dial
// is final (ECONNREFUSED — nothing is listening), a dropped one is
// transient (ECONNRESET — the server exists, redial). This is the
// same split Refused already encodes, exported as an errno so
// retry.Policy treats socket dials consistently with VFS errors.
func (e *DialError) Errno() vfs.Errno {
	if e.Refused {
		return vfs.ECONNREFUSED
	}
	return vfs.ECONNRESET
}

// IsRefused reports whether err is a DialError for a refused
// connection.
func IsRefused(err error) bool {
	var de *DialError
	return errors.As(err, &de) && de.Refused
}

// WebSocket is the asynchronous browser-side WebSocket API: events are
// delivered on the event loop, and only *outgoing* connections are
// possible — the browser restriction that shapes all of §5.3.
//
// On browsers without native WebSocket support the connection runs
// through the Websockify Flash shim, which the paper mentions as the
// fallback; we model the shim as extra per-message latency.
type WebSocket struct {
	loop *eventloop.Loop
	path string
	shim time.Duration // per-message Flash shim latency (0 = native)

	// connMu guards conn's assignment: the connect goroutine installs
	// it mid-handshake, and Close may read it at any time (including
	// before the open event). Post-open readers (Send, Ping, the
	// reader pump) are ordered after the assignment by the open
	// event's delivery and need no lock.
	connMu sync.Mutex
	conn   net.Conn

	// wmu serializes every frame written to conn. Writers live on
	// different goroutines — Send/Ping on the event loop, SendParts on
	// the mux session's writer, the auto-pong on the reader pump — and
	// net.Conn.Write may split one frame across several syscalls under
	// backpressure, so unserialized writers could interleave mid-frame
	// and desync the WS byte stream.
	wmu sync.Mutex

	// OnOpen, OnMessage, OnError and OnClose are the DOM event
	// handlers; assign them before Dial completes the handshake.
	// OnPong receives the payload of pong frames answering Ping —
	// the hook heartbeat monitors use to detect a dead peer.
	OnOpen    func()
	OnMessage func(data []byte)
	OnError   func(err error)
	OnClose   func()
	OnPong    func(data []byte)

	tel *wsTelemetry

	// closeRequested records a Close that arrived before the handshake
	// finished; the open event completes the teardown. Loop thread
	// only.
	closeRequested bool

	// settle resolves the connection-lifetime completion: exactly one
	// call wins — with an error for a failed dial, nil for a peer
	// close — and releases the loop's pending slot.
	settle func(v interface{}, err error)
}

// wsTelemetry holds the socket layer's metric handles. Counters are
// atomic, so the connect goroutine increments them off the event loop.
type wsTelemetry struct {
	framesIn  *telemetry.Counter
	framesOut *telemetry.Counter
	bytesIn   *telemetry.Counter
	bytesOut  *telemetry.Counter
	handshake *telemetry.Histogram
	tracer    *telemetry.Tracer
}

func newWSTelemetry(h *telemetry.Hub) *wsTelemetry {
	if h == nil {
		return nil
	}
	if h.Tracer != nil {
		h.Tracer.ThreadName(telemetry.TIDNetwork, "network")
	}
	return &wsTelemetry{
		framesIn:  h.Registry.Counter("sockets", "frames_in"),
		framesOut: h.Registry.Counter("sockets", "frames_out"),
		bytesIn:   h.Registry.Counter("sockets", "bytes_in"),
		bytesOut:  h.Registry.Counter("sockets", "bytes_out"),
		handshake: h.Registry.Histogram("sockets", "handshake"),
		tracer:    h.Tracer,
	}
}

// flashShimLatency models proxying each message through a Flash applet.
const flashShimLatency = 2 * time.Millisecond

// DialWebSocket opens a WebSocket to addr (host:port) from the given
// browser window. The handshake and I/O happen on real TCP; events
// fire on the window's event loop. The returned WebSocket is not open
// until OnOpen fires.
func DialWebSocket(w *browser.Window, addr string) *WebSocket {
	return DialWebSocketPath(w, addr, "/")
}

// DialWebSocketPath is DialWebSocket with an explicit request path.
// The gateway selects its mode by path: "/" proxies one TCP stream
// per connection, MuxPath multiplexes many (§15 of DESIGN.md).
func DialWebSocketPath(w *browser.Window, addr, path string) *WebSocket {
	ws := &WebSocket{loop: w.Loop, path: path, tel: newWSTelemetry(w.Telemetry)}
	if !w.Profile.HasWebSockets {
		ws.shim = flashShimLatency
	}
	// The whole connection lifetime is one core.Completion: it keeps
	// the event loop alive while the socket lives, and its single-fire
	// settlement delivers the terminal error/close event exactly once
	// no matter how the reader pump and Close race.
	lifetime := core.NewCompletion(w.Loop, "sock.ws("+addr+")")
	lifetime.Then(func(_ interface{}, err error) {
		if err != nil && ws.OnError != nil {
			ws.OnError(err)
		}
		if ws.OnClose != nil {
			ws.OnClose()
		}
	})
	ws.settle = lifetime.Resolver()
	go ws.connect(addr)
	return ws
}

func (ws *WebSocket) emit(label string, fn func()) {
	ws.loop.InvokeExternal(label, fn)
}

func (ws *WebSocket) connect(addr string) {
	var hsSpan telemetry.Span
	var hsStart time.Time
	if tel := ws.tel; tel != nil {
		hsStart = time.Now()
		if tel.tracer != nil {
			hsSpan = tel.tracer.Begin(telemetry.TIDNetwork, "sockets", "handshake "+addr)
		}
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		// The TCP dial itself failed: refused when actively rejected,
		// dropped otherwise (timeout, unreachable, ...).
		ws.fail(&DialError{Addr: addr, Refused: errors.Is(err, syscall.ECONNREFUSED), Err: err})
		return
	}
	br, err := ClientHandshake(conn, addr, ws.path)
	if err != nil {
		// The transport connected but died before the WebSocket opened:
		// a dropped connection, never a refused one.
		conn.Close()
		ws.fail(&DialError{Addr: addr, Err: err})
		return
	}
	if tel := ws.tel; tel != nil {
		hsSpan.End()
		tel.handshake.ObserveSince(hsStart)
	}
	ws.connMu.Lock()
	ws.conn = conn
	ws.connMu.Unlock()
	ws.emit("ws-open", func() {
		if ws.closeRequested {
			// Close raced the handshake: finish the teardown it could
			// not do while conn was nil.
			ws.Close()
			return
		}
		if ws.OnOpen != nil {
			ws.OnOpen()
		}
	})
	// Reader pump: every incoming frame becomes a message event.
	for {
		f, err := ReadFrame(br)
		if err != nil {
			ws.closeEvent()
			return
		}
		switch f.Op {
		case OpClose:
			ws.conn.Close()
			ws.closeEvent()
			return
		case OpPing:
			pong := &Frame{Fin: true, Op: OpPong, Masked: true, Payload: f.Payload}
			rand.Read(pong.MaskKey[:])
			ws.wmu.Lock()
			WriteFrame(ws.conn, pong)
			ws.wmu.Unlock()
		case OpPong:
			data := f.Payload
			ws.emit("ws-pong", func() {
				if ws.OnPong != nil {
					ws.OnPong(data)
				}
			})
		case OpBinary, OpText:
			data := f.Payload
			if tel := ws.tel; tel != nil {
				tel.framesIn.Inc()
				tel.bytesIn.Add(int64(len(data)))
			}
			if ws.shim > 0 {
				time.Sleep(ws.shim)
			}
			ws.emit("ws-message", func() {
				if ws.OnMessage != nil {
					ws.OnMessage(data)
				}
			})
		}
	}
}

func (ws *WebSocket) fail(err error) { ws.settle(nil, err) }
func (ws *WebSocket) closeEvent()    { ws.settle(nil, nil) }

// Send transmits data as one masked binary frame (client frames must
// be masked per RFC 6455).
func (ws *WebSocket) Send(data []byte) error {
	if tel := ws.tel; tel != nil {
		tel.framesOut.Inc()
		tel.bytesOut.Add(int64(len(data)))
	}
	if ws.shim > 0 {
		time.Sleep(ws.shim)
	}
	f := &Frame{Fin: true, Op: OpBinary, Masked: true, Payload: data}
	if _, err := rand.Read(f.MaskKey[:]); err != nil {
		return err
	}
	ws.wmu.Lock()
	defer ws.wmu.Unlock()
	return WriteFrame(ws.conn, f)
}

// SendParts transmits the concatenation of parts as one *unmasked*
// binary frame in a single writev — the mux hot path: the 13-byte
// stream header and the payload go to the kernel without a copy or a
// mask pass. Unmasked client frames deviate from RFC 6455 §5.2 by
// design (both endpoints are ours; see WriteBinaryFrame).
func (ws *WebSocket) SendParts(parts ...[]byte) error {
	if ws.conn == nil {
		return ErrSocketClosed
	}
	if tel := ws.tel; tel != nil {
		n := 0
		for _, p := range parts {
			n += len(p)
		}
		tel.framesOut.Inc()
		tel.bytesOut.Add(int64(n))
	}
	ws.wmu.Lock()
	defer ws.wmu.Unlock()
	return WriteBinaryFrame(ws.conn, parts...)
}

// Ping sends a masked ping frame; the peer's pong is delivered to
// OnPong. Heartbeat monitors pair the two to detect half-dead
// connections that TCP alone would let linger.
func (ws *WebSocket) Ping(payload []byte) error {
	if ws.conn == nil {
		return ErrSocketClosed
	}
	f := &Frame{Fin: true, Op: OpPing, Masked: true, Payload: payload}
	if _, err := rand.Read(f.MaskKey[:]); err != nil {
		return err
	}
	ws.wmu.Lock()
	defer ws.wmu.Unlock()
	return WriteFrame(ws.conn, f)
}

// Close sends a close frame and tears down the connection. Closing
// before the handshake finishes is honored once it does.
func (ws *WebSocket) Close() error {
	ws.closeRequested = true
	ws.connMu.Lock()
	conn := ws.conn
	ws.connMu.Unlock()
	if conn == nil {
		return nil
	}
	// TryLock: if another writer is wedged mid-frame on a dead peer,
	// skip the courtesy close frame — the conn.Close below is what
	// unblocks that writer, and waiting for it here would deadlock.
	if ws.wmu.TryLock() {
		f := &Frame{Fin: true, Op: OpClose, Masked: true}
		rand.Read(f.MaskKey[:])
		WriteFrame(conn, f)
		ws.wmu.Unlock()
	}
	return conn.Close()
}

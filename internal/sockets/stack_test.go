package sockets

import (
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/telemetry"
	"doppio/internal/vfs/faultfs"
	"doppio/internal/vfs/retry"
)

// TestStackLayerOrder pins the builder's enforced order — telemetry
// outermost, faults directly on the transport — independent of the
// order options are passed, mirroring vfs.Stack's contract.
func TestStackLayerOrder(t *testing.T) {
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	gw, err := NewWebsockify("127.0.0.1:0", echoAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	plan := faultfs.Plan{Seed: 1, ErrRate: 0.01}
	hub := telemetry.NewHub()
	orders := [][]Option{
		{WithFaults(plan), WithTelemetry(hub)},
		{WithTelemetry(hub), WithFaults(plan)},
	}
	for i, opts := range orders {
		w := browser.NewWindow(browser.Chrome28)
		var conn *Conn
		w.Loop.Post("main", func() {
			conn = Stack(w, gw.Addr(), opts...)
			defer conn.Close()

			// Outermost must be telemetry regardless of option order.
			tel, ok := conn.Link().(*TelLink)
			if !ok {
				t.Errorf("order %d: outermost layer is %T, want *TelLink", i, conn.Link())
				return
			}
			if _, ok := tel.Unwrap().(*FaultLink); !ok {
				t.Errorf("order %d: under telemetry is %T, want *FaultLink", i, tel.Unwrap())
			}
			// Find walks the chain from the top.
			if _, ok := Find[*FaultLink](conn.Link()); !ok {
				t.Errorf("order %d: Find[*FaultLink] failed", i)
			}
			if _, ok := Find[*TelLink](conn.Link()); !ok {
				t.Errorf("order %d: Find[*TelLink] failed", i)
			}
			if _, ok := Find[*wsLink](conn.Link()); !ok {
				t.Errorf("order %d: Find[*wsLink] failed", i)
			}
		})
		if err := w.Loop.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStackHeartbeatImpliesReconnect pins the option dependency: a
// heartbeat needs somewhere to live, so WithHeartbeat pulls in the
// reconnecting transport with the default policy.
func TestStackHeartbeatImpliesReconnect(t *testing.T) {
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	gw, err := NewWebsockify("127.0.0.1:0", echoAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	w := browser.NewWindow(browser.Chrome28)
	w.Loop.Post("main", func() {
		conn := Stack(w, gw.Addr(), WithHeartbeat(time.Minute))
		defer conn.Close()
		if _, ok := Find[*rwsLink](conn.Link()); !ok {
			t.Errorf("WithHeartbeat did not add the reconnecting transport (got %T)", conn.Link())
		}
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStackMuxEcho exercises the full option set together: reconnect
// policy, mux, telemetry, and a fault plan, over one echo round trip.
func TestStackMuxEcho(t *testing.T) {
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	gw, err := NewWebsockify("127.0.0.1:0", echoAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	hub := telemetry.NewHub()
	w := browser.NewWindow(browser.Chrome28)
	var got []byte
	w.Loop.Post("main", func() {
		conn := Stack(w, gw.Addr(),
			WithReconnect(retry.Defaults()),
			WithMux(8),
			WithWindow(2048),
			WithRTO(10*time.Millisecond),
			WithFaults(faultfs.Plan{Seed: 3, ErrRate: 0.05, ShortRate: 0.05}),
			WithTelemetry(hub),
		)
		conn.Dial(func(s *Socket, err error) {
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			s.Write([]byte("stacked echo")).Then(func(_ interface{}, err error) {
				if err != nil {
					t.Errorf("write: %v", err)
				}
			})
			var pump func()
			pump = func() {
				s.Read(64).Then(func(v interface{}, err error) {
					if err != nil {
						t.Errorf("read: %v", err)
						return
					}
					data, _ := v.([]byte)
					got = append(got, data...)
					if len(got) < len("stacked echo") {
						pump()
						return
					}
					s.Close()
					conn.Close()
				})
			}
			pump()
		})
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "stacked echo" {
		t.Fatalf("echo = %q", got)
	}
	// Telemetry flowed through every layer that was asked to report.
	for _, m := range []struct{ sub, name string }{
		{"sockstack", "frames_out"},
		{"sockmux", "streams"},
		{"sockretry", "dials"},
	} {
		if hub.Registry.Counter(m.sub, m.name).Value() == 0 {
			t.Errorf("%s/%s is zero", m.sub, m.name)
		}
	}
}

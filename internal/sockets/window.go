package sockets

// Per-stream flow control is credit-based, the scheme the mux frames
// carry in their arg field (§15 of DESIGN.md):
//
//   - At stream open, SYN/SYNACK advertise each side's receive window:
//     the number of payload bytes the peer may have in flight.
//   - A sender spends credit when it first transmits a byte
//     (retransmissions are free — the receiver budgeted for the byte
//     when it was first sent, and go-back-N may resend it many times).
//   - A receiver earns the sender new credit by draining its receive
//     buffer: CREDIT frames carry the delta, batched until a quarter
//     of the window has been drained so a byte-at-a-time consumer does
//     not generate a credit frame per byte.
//
// A writer that exhausts the window parks (its Write completion stays
// pending) until credit arrives — the "zero-window writer blocks,
// credit resumes" behavior the equivalence tests pin down. The gateway
// sheds load by withholding credit (pausing) or refusing streams
// (RST), both expressed in this same currency.

// sendWindow is the sender half: the credit balance for one stream
// direction. Callers hold the owning Mux's lock.
type sendWindow struct {
	avail int // bytes of credit not yet spent
}

// grant adds peer-issued credit.
func (w *sendWindow) grant(n int) { w.avail += n }

// take spends up to n bytes of credit, returning how many were
// actually available; 0 means the window is closed and the writer
// must park.
func (w *sendWindow) take(n int) int {
	if n > w.avail {
		n = w.avail
	}
	w.avail -= n
	return n
}

// recvWindow is the receiver half: it remembers the advertised window
// and accumulates drained bytes until a credit grant is worth sending.
// Callers hold the owning Mux's lock.
type recvWindow struct {
	window  int // bytes advertised to the peer at open
	pending int // bytes drained by the consumer, not yet granted back
	paused  bool
}

// creditThreshold is the fraction of the window that must drain before
// a CREDIT frame is emitted: window/4 batches grants without letting
// the sender's view of the window go stale enough to stall it.
func (w *recvWindow) creditThreshold() int {
	t := w.window / 4
	if t < 1 {
		t = 1
	}
	return t
}

// drained records n consumed bytes and returns the credit grant to
// transmit now — 0 when the grant is still batching or the stream is
// paused for shedding (a paused stream keeps accumulating; resume
// releases the whole balance).
func (w *recvWindow) drained(n int) int {
	w.pending += n
	if w.paused || w.pending < w.creditThreshold() {
		return 0
	}
	g := w.pending
	w.pending = 0
	return g
}

// pause withholds future credit grants; the sender runs out of window
// and stalls, which is how the gateway applies backpressure to a
// stream whose tenant has fallen behind.
func (w *recvWindow) pause() { w.paused = true }

// resume lifts a pause and returns any credit that accumulated while
// paused (0 when nothing is owed).
func (w *recvWindow) resume() int {
	w.paused = false
	g := w.pending
	if g > 0 && g >= w.creditThreshold() {
		w.pending = 0
		return g
	}
	return 0
}

package sockets

import (
	"testing"

	"doppio/internal/browser"
	"doppio/internal/telemetry"
)

func TestSocketTelemetryEndToEnd(t *testing.T) {
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	clientHub := telemetry.NewHub().EnableTracing()
	proxyHub := telemetry.NewHub()
	proxy, err := NewGateway("127.0.0.1:0", echoAddr, GatewayOptions{Hub: proxyHub})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	w := browser.NewWindow(browser.Chrome28)
	w.EnableTelemetry(clientHub)

	const payload = "telemetry ping"
	var got []byte
	w.Loop.Post("main", func() {
		ws := DialWebSocket(w, proxy.Addr())
		ws.OnOpen = func() {
			if err := ws.Send([]byte(payload)); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
		ws.OnMessage = func(data []byte) {
			got = data
			ws.Close()
		}
		ws.OnError = func(err error) { t.Errorf("ws error: %v", err) }
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Fatalf("echo = %q", got)
	}

	// Client-side: one frame each way, payload-sized byte counts, one
	// timed handshake.
	reg := clientHub.Registry
	if got := reg.Counter("sockets", "frames_out").Value(); got != 1 {
		t.Errorf("frames_out = %d, want 1", got)
	}
	if got := reg.Counter("sockets", "frames_in").Value(); got != 1 {
		t.Errorf("frames_in = %d, want 1", got)
	}
	if got := reg.Counter("sockets", "bytes_out").Value(); got != int64(len(payload)) {
		t.Errorf("bytes_out = %d, want %d", got, len(payload))
	}
	if got := reg.Counter("sockets", "bytes_in").Value(); got != int64(len(payload)) {
		t.Errorf("bytes_in = %d, want %d", got, len(payload))
	}
	if got := reg.Histogram("sockets", "handshake").Count(); got != 1 {
		t.Errorf("handshake count = %d, want 1", got)
	}

	// The handshake must appear as a span on the network track.
	sawHandshake := false
	for _, ev := range clientHub.Tracer.Events() {
		if ev.Ph == "X" && ev.TID == telemetry.TIDNetwork {
			sawHandshake = true
		}
	}
	if !sawHandshake {
		t.Error("missing handshake span on the network track")
	}

	// Proxy-side: one connection, one frame each way.
	preg := proxyHub.Registry
	if got := preg.Counter("websockify", "connections").Value(); got != 1 {
		t.Errorf("connections = %d, want 1", got)
	}
	if got := preg.Counter("websockify", "frames_in").Value(); got != 1 {
		t.Errorf("proxy frames_in = %d, want 1", got)
	}
	if got := preg.Counter("websockify", "bytes_in").Value(); got != int64(len(payload)) {
		t.Errorf("proxy bytes_in = %d, want %d", got, len(payload))
	}
	if got := preg.Counter("websockify", "frames_out").Value(); got == 0 {
		t.Error("proxy frames_out = 0, want > 0")
	}
	if got := preg.Histogram("websockify", "handshake").Count(); got != 1 {
		t.Errorf("proxy handshake count = %d, want 1", got)
	}
}

func TestSocketTelemetryDisabled(t *testing.T) {
	// No hub on the window: the socket path must run with nil telemetry.
	echoAddr, stopEcho := startEchoServer(t)
	defer stopEcho()
	proxy, err := NewWebsockify("127.0.0.1:0", echoAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	w := browser.NewWindow(browser.Chrome28)
	var got []byte
	w.Loop.Post("main", func() {
		ws := DialWebSocket(w, proxy.Addr())
		if ws.tel != nil {
			t.Error("telemetry attached without a hub")
		}
		ws.OnOpen = func() {
			if err := ws.Send([]byte("x")); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
		ws.OnMessage = func(data []byte) {
			got = data
			ws.Close()
		}
		ws.OnError = func(err error) { t.Errorf("ws error: %v", err) }
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "x" {
		t.Fatalf("echo = %q", got)
	}
}

package sockets

import (
	"fmt"
	"time"

	"doppio/internal/browser"
	"doppio/internal/eventloop"
	"doppio/internal/telemetry"
	"doppio/internal/vfs"
	"doppio/internal/vfs/faultfs"
	"doppio/internal/vfs/retry"
)

// The client-side construction story, redesigned: instead of the
// ad-hoc trio (raw WebSocket + ReconnectingWS + post-hoc mutators), a
// connection is assembled by Stack with the same enforced-decorator-
// order discipline as vfs.Stack:
//
//	transport (ws | reconnecting ws) → faults → telemetry (outermost),
//	with the mux session — when enabled — consuming the whole chain.
//
// The ordering is load-bearing: faults sit directly on the transport
// so they model the network (the mux's go-back-N above them must
// absorb them, exactly like VFS retry absorbs faultfs); telemetry
// sits outermost so its counters see what the application sees.
// Options are order-independent; Find walks the chain.

// Link is one layer of the client transport chain: it sends one
// message (the concatenation of parts, zero-copy where the transport
// allows) and is torn down by Close. Events flow up the chain through
// the LinkEvents bound at assembly.
type Link interface {
	Send(parts ...[]byte) error
	Close() error
}

// LinkUnwrapper is implemented by every decorating link; it exposes
// the wrapped layer so callers can walk the chain.
type LinkUnwrapper interface {
	Unwrap() Link
}

// Find walks a link chain outermost-in (via Unwrap) and returns the
// first layer satisfying T — a concrete type like *FaultLink, or a
// capability interface.
func Find[T any](l Link) (T, bool) {
	for l != nil {
		if t, ok := any(l).(T); ok {
			return t, true
		}
		u, ok := l.(LinkUnwrapper)
		if !ok {
			break
		}
		l = u.Unwrap()
	}
	var zero T
	return zero, false
}

// linkEvents is the upward event flow of a link chain.
type linkEvents struct {
	onOpen    func(reconnected bool)
	onMessage func(data []byte)
	onClosed  func(err error) // terminal: no further events
}

// Option selects and configures one layer of a socket stack.
type Option func(*stackConfig)

type stackConfig struct {
	reconnect *retry.Policy
	heartbeat time.Duration
	mux       bool
	maxStream int
	window    int
	rto       time.Duration
	plan      *faultfs.Plan
	inj       *faultfs.Injector
	hub       *telemetry.Hub
	shedFn    func() int
	shedDepth int
}

// WithReconnect adds the reconnecting transport: connection drops
// redial with the policy's exponential backoff (a zero Policy gets
// retry.Defaults()).
func WithReconnect(policy retry.Policy) Option {
	return func(c *stackConfig) { c.reconnect = &policy }
}

// WithHeartbeat enables ping/pong liveness probing at the given
// period. Heartbeats live in the reconnecting transport, so this
// implies WithReconnect (with default policy) if it was not given.
func WithHeartbeat(d time.Duration) Option {
	return func(c *stackConfig) { c.heartbeat = d }
}

// WithMux multiplexes up to n concurrent logical streams over the one
// connection (n <= 0 means the gateway default, 1024). Each Dial
// opens one flow-controlled stream; without WithMux, a Conn carries
// exactly one Dial.
func WithMux(n int) Option {
	return func(c *stackConfig) { c.mux = true; c.maxStream = n }
}

// WithWindow sets the per-stream receive window (bytes) advertised to
// the gateway; 0 means 64 KiB. Only meaningful with WithMux.
func WithWindow(bytes int) Option {
	return func(c *stackConfig) { c.window = bytes }
}

// WithRTO overrides the mux retransmission timeout (tests).
func WithRTO(d time.Duration) Option {
	return func(c *stackConfig) { c.rto = d }
}

// WithFaults adds the fault-injection layer directly above the
// transport. In mux mode faults hit only DATA frames (drop/truncate,
// both repaired by go-back-N); in plain mode they hit whole messages.
func WithFaults(plan faultfs.Plan) Option {
	return func(c *stackConfig) { c.plan = &plan }
}

// WithInjector is WithFaults with a caller-owned injector, for tests
// that share one decision sequence across stacks.
func WithInjector(inj *faultfs.Injector) Option {
	return func(c *stackConfig) { c.inj = inj }
}

// WithTelemetry instruments the stack (outermost): frame/byte
// counters under "sockstack", plus the hub flows into the transport
// ("sockretry") and mux ("sockmux") layers.
func WithTelemetry(hub *telemetry.Hub) Option {
	return func(c *stackConfig) { c.hub = hub }
}

// WithShed adds client-side load shedding: when depthFn (typically
// the owning runtime's QueueDepth) exceeds maxDepth at Dial time, the
// dial fails immediately with a shed StreamError (EAGAIN — transient,
// so retry policies back off) instead of adding work to a loop that
// is already behind.
func WithShed(depthFn func() int, maxDepth int) Option {
	return func(c *stackConfig) { c.shedFn = depthFn; c.shedDepth = maxDepth }
}

// ---- link layers ----

// wsLink is the base transport over a single WebSocket.
type wsLink struct {
	ws  *WebSocket
	mux bool
}

func (l *wsLink) Send(parts ...[]byte) error {
	if l.mux {
		return l.ws.SendParts(parts...)
	}
	return l.ws.Send(concat(parts))
}

func (l *wsLink) Close() error { return l.ws.Close() }

// rwsLink is the base transport over a reconnecting WebSocket.
type rwsLink struct {
	rws *ReconnectingWS
	mux bool
}

func (l *rwsLink) Send(parts ...[]byte) error {
	if l.mux {
		return l.rws.SendParts(parts...)
	}
	return l.rws.Send(concat(parts))
}

func (l *rwsLink) Close() error { return l.rws.Close() }

func concat(parts [][]byte) []byte {
	if len(parts) == 1 {
		return parts[0]
	}
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]byte, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// FaultLink injects deterministic faults on the client side of the
// data path — the peer of the gateway's injector. Recover it from a
// Conn with Find[*FaultLink] to read its Stats.
type FaultLink struct {
	inner Link
	inj   *faultfs.Injector
	mux   bool
}

// Unwrap exposes the wrapped layer.
func (l *FaultLink) Unwrap() Link { return l.inner }

// Stats snapshots the injector's decision counters.
func (l *FaultLink) Stats() faultfs.Stats { return l.inj.Stats() }

func (l *FaultLink) Send(parts ...[]byte) error {
	if l.mux {
		hdr := parts[0]
		payload := []byte(nil)
		if len(parts) > 1 {
			payload = parts[1]
		}
		out, forward := applyMuxFault(l.inj, "out", hdr, payload)
		if !forward {
			return nil
		}
		return l.inner.Send(hdr, out)
	}
	payload, forward, _ := applyFault(l.inj, "out", concat(parts))
	if !forward {
		return nil
	}
	return l.inner.Send(payload)
}

func (l *FaultLink) Close() error { return l.inner.Close() }

// recv transforms one incoming message (dropping it returns nil, false).
func (l *FaultLink) recv(data []byte) ([]byte, bool) {
	if l.mux {
		if len(data) < MuxHeaderLen || !MuxIsData(data) {
			return data, true
		}
		out, forward := applyMuxFault(l.inj, "in", data[:MuxHeaderLen], data[MuxHeaderLen:])
		if !forward {
			return nil, false
		}
		if len(out) != len(data)-MuxHeaderLen {
			data = append(append([]byte{}, data[:MuxHeaderLen]...), out...)
		}
		return data, true
	}
	out, forward, _ := applyFault(l.inj, "in", data)
	return out, forward
}

// TelLink counts frames and bytes through the stack under the
// "sockstack" subsystem — the outermost layer, so it measures what
// the application sees.
type TelLink struct {
	inner              Link
	framesIn, framesOut *telemetry.Counter
	bytesIn, bytesOut   *telemetry.Counter
}

// Unwrap exposes the wrapped layer.
func (l *TelLink) Unwrap() Link { return l.inner }

func (l *TelLink) Send(parts ...[]byte) error {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	l.framesOut.Inc()
	l.bytesOut.Add(int64(n))
	return l.inner.Send(parts...)
}

func (l *TelLink) Close() error { return l.inner.Close() }

func (l *TelLink) recv(data []byte) {
	l.framesIn.Inc()
	l.bytesIn.Add(int64(len(data)))
}

// ---- the assembled connection ----

// Conn is an assembled client connection: the link chain plus, in mux
// mode, the session. All methods and callbacks run on the window's
// event loop (sessions additionally run internal goroutines, but
// their callbacks are routed loop-safely through completions).
type Conn struct {
	win  *browser.Window
	loop *eventloop.Loop
	addr string
	cfg  stackConfig

	link Link
	tel  *TelLink
	flt  *FaultLink

	mux        *Mux
	open       bool
	closed     bool
	err        error
	waitOpen   []func() // dials queued before the link opened
	plainUsed  bool
	plain      *plainStream
	shedLocal  int64
}

// Stack assembles a client connection to addr from the window's event
// loop, in the one layer order that is correct regardless of option
// order (see the package comment above). The zero-option stack is a
// plain single-stream WebSocket connection.
func Stack(w *browser.Window, addr string, opts ...Option) *Conn {
	var cfg stackConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.heartbeat > 0 && cfg.reconnect == nil {
		p := retry.Defaults()
		cfg.reconnect = &p
	}
	if cfg.inj == nil && cfg.plan != nil && cfg.plan.Enabled() {
		cfg.inj = faultfs.New(*cfg.plan)
	}
	c := &Conn{win: w, loop: w.Loop, addr: addr, cfg: cfg}

	path := "/"
	if cfg.mux {
		path = MuxPath
	}

	// Incoming events route through the chain top-down: telemetry
	// counts, faults may drop/truncate, then the Conn dispatches.
	deliver := func(data []byte) {
		if c.tel != nil {
			c.tel.recv(data)
		}
		if c.flt != nil {
			var ok bool
			if data, ok = c.flt.recv(data); !ok {
				return
			}
		}
		c.dispatch(data)
	}

	// Base transport.
	var base Link
	if cfg.reconnect != nil {
		rws := NewReconnectingWS(w, addr, ReconnectOptions{
			Policy:            *cfg.reconnect,
			HeartbeatInterval: cfg.heartbeat,
			Hub:               cfg.hub,
			Path:              path,
		})
		rws.OnOpen = func(reconnected bool) { c.onOpen(reconnected) }
		rws.OnMessage = deliver
		rws.OnDown = func(err error) { c.onDown(err) }
		rws.OnGiveUp = func(err error) { c.onClosed(err) }
		base = &rwsLink{rws: rws, mux: cfg.mux}
	} else {
		ws := DialWebSocketPath(w, addr, path)
		var lastErr error
		ws.OnOpen = func() { c.onOpen(false) }
		ws.OnMessage = deliver
		ws.OnError = func(err error) { lastErr = err }
		ws.OnClose = func() { c.onClosed(lastErr) }
		base = &wsLink{ws: ws, mux: cfg.mux}
	}

	// Faults directly above the transport.
	link := base
	if cfg.inj != nil {
		c.flt = &FaultLink{inner: link, inj: cfg.inj, mux: cfg.mux}
		link = c.flt
	}
	// Telemetry outermost.
	if cfg.hub != nil {
		reg := cfg.hub.Registry
		c.tel = &TelLink{
			inner:     link,
			framesIn:  reg.Counter("sockstack", "frames_in"),
			framesOut: reg.Counter("sockstack", "frames_out"),
			bytesIn:   reg.Counter("sockstack", "bytes_in"),
			bytesOut:  reg.Counter("sockstack", "bytes_out"),
		}
		link = c.tel
	}
	c.link = link
	if !cfg.mux {
		// The plain stream exists from the start so messages arriving
		// before Dial (a server that talks first) are buffered, not
		// dropped. Closing the socket closes the connection: in plain
		// mode they are the same thing.
		c.plain = &plainStream{
			send:    func(b []byte) error { return c.link.Send(b) },
			closeFn: func() error { return c.Close() },
		}
	}
	return c
}

// Link returns the top of the link chain (walk it with Find).
func (c *Conn) Link() Link { return c.link }

// Mux returns the current mux session (nil in plain mode or before
// the connection opens).
func (c *Conn) Mux() *Mux { return c.mux }

// ShedCount reports dials refused locally by WithShed.
func (c *Conn) ShedCount() int64 { return c.shedLocal }

func (c *Conn) onOpen(reconnected bool) {
	if c.closed {
		return
	}
	if c.cfg.mux {
		// A (re)connection starts a fresh session: the gateway's state
		// for the old one died with the old transport. Streams of the
		// old session error with ECONNRESET (transient; redial).
		if c.mux != nil {
			c.mux.CloseSession(nil)
		}
		c.mux = NewMux(MuxConfig{
			Window:     c.cfg.window,
			MaxStreams: c.cfg.maxStream,
			RTO:        c.cfg.rto,
			Hub:        c.cfg.hub,
			Send: func(hdr, payload []byte) error {
				return c.link.Send(hdr, payload)
			},
		})
	}
	c.open = true
	waiters := c.waitOpen
	c.waitOpen = nil
	for _, fn := range waiters {
		fn()
	}
}

func (c *Conn) onDown(err error) {
	// Reconnecting transport lost the link; a redial is in flight.
	c.open = false
	if c.mux != nil {
		c.mux.CloseSession(err)
		c.mux = nil
	}
	if c.plain != nil {
		c.plain.finish(err)
	}
}

func (c *Conn) onClosed(err error) {
	c.open = false
	if c.mux != nil {
		c.mux.CloseSession(err)
		c.mux = nil
	}
	if c.plain != nil {
		c.plain.finish(err)
	}
	c.err = err
	waiters := c.waitOpen
	c.waitOpen = nil
	for _, fn := range waiters {
		fn()
	}
}

func (c *Conn) dispatch(data []byte) {
	if c.cfg.mux {
		if c.mux != nil {
			c.mux.HandleFrame(data)
		}
		return
	}
	if c.plain != nil {
		c.plain.deliver(data)
	}
}

// Dial opens one logical stream and calls cb on the event loop with
// its Socket. In mux mode every Dial is a new flow-controlled stream
// over the shared connection; in plain mode the Conn carries exactly
// one Dial (the whole connection is the stream) and a second Dial
// fails. A WithShed stack refuses the dial locally (EAGAIN) when the
// owning loop is over its depth threshold.
func (c *Conn) Dial(cb func(*Socket, error)) {
	if c.closed {
		cb(nil, ErrSocketClosed)
		return
	}
	if c.cfg.shedFn != nil && c.cfg.shedDepth > 0 && c.cfg.shedFn() > c.cfg.shedDepth {
		c.shedLocal++
		cb(nil, &StreamError{Code: vfs.EAGAIN})
		return
	}
	if !c.open {
		if c.err != nil {
			cb(nil, c.err)
			return
		}
		c.waitOpen = append(c.waitOpen, func() { c.Dial(cb) })
		return
	}
	if c.cfg.mux {
		st, err := c.mux.Open()
		if err != nil {
			cb(nil, err)
			return
		}
		st.SetOpened(func(err error) {
			// May fire on a session goroutine; marshal to the loop.
			c.loop.InvokeExternal("sock-dial", func() {
				if err != nil {
					cb(nil, err)
					return
				}
				cb(newSocket(c.loop, muxByteStream{st: st}), nil)
			})
		})
		return
	}
	if c.plainUsed {
		cb(nil, fmt.Errorf("sockets: plain connection already dialed (use WithMux for multiple streams)"))
		return
	}
	c.plainUsed = true
	cb(newSocket(c.loop, c.plain), nil)
}

// Close tears the whole connection down: the session (if any), then
// the link chain.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.mux != nil {
		c.mux.CloseSession(nil)
		c.mux = nil
	}
	if c.plain != nil {
		c.plain.finish(nil)
	}
	return c.link.Close()
}

package jvm

import (
	"fmt"
	"math"

	"doppio/internal/classfile"
)

// u16 reads a big-endian operand.
func u16(code []byte, pc int) uint16 { return uint16(code[pc])<<8 | uint16(code[pc+1]) }

func i16(code []byte, pc int) int16 { return int16(u16(code, pc)) }

func u32(code []byte, pc int) uint32 {
	return uint32(code[pc])<<24 | uint32(code[pc+1])<<16 | uint32(code[pc+2])<<8 | uint32(code[pc+3])
}

// resolveClass resolves (with caching) a CP Class entry.
func (vm *NativeVM) resolveClass(c *Class, idx uint16) (*Class, error) {
	rc := &c.CP[idx]
	if rc.ResolvedClass != nil {
		return rc.ResolvedClass, nil
	}
	cls, err := vm.loader.Load(rc.Str)
	if err != nil {
		return nil, err
	}
	rc.ResolvedClass = cls
	return cls, nil
}

// resolveMethodRef resolves a Methodref/InterfaceMethodref entry.
func (vm *NativeVM) resolveMethodRef(c *Class, idx uint16) (*Method, error) {
	rc := &c.CP[idx]
	if rc.ResolvedMethod != nil {
		return rc.ResolvedMethod, nil
	}
	owner, err := vm.loader.Load(rc.ClassName)
	if err != nil {
		return nil, err
	}
	m := owner.FindMethod(rc.MemberName, rc.MemberDesc)
	if m == nil {
		return nil, fmt.Errorf("jvm: no method %s.%s%s", rc.ClassName, rc.MemberName, rc.MemberDesc)
	}
	rc.ResolvedMethod = m
	return m, nil
}

// resolveFieldRef resolves a Fieldref entry.
func (vm *NativeVM) resolveFieldRef(c *Class, idx uint16) (*Field, error) {
	rc := &c.CP[idx]
	if rc.ResolvedField != nil {
		return rc.ResolvedField, nil
	}
	owner, err := vm.loader.Load(rc.ClassName)
	if err != nil {
		return nil, err
	}
	fld := owner.FindField(rc.MemberName)
	if fld == nil {
		return nil, fmt.Errorf("jvm: no field %s.%s", rc.ClassName, rc.MemberName)
	}
	rc.ResolvedField = fld
	return fld, nil
}

// classAssignable implements the checkcast/instanceof relation.
func (vm *NativeVM) classAssignable(c *Class, target string) bool {
	return classAssignableWith(c, target, func(n string) *Class { return vm.LookupClass(n) })
}

// classAssignableWith is the engine-independent assignability check.
func classAssignableWith(c *Class, target string, lookup func(string) *Class) bool {
	if c.Name == target || target == "java/lang/Object" {
		return true
	}
	if c.IsArray {
		if len(target) == 0 || target[0] != '[' {
			return false
		}
		te, ce := target[1:], c.ElemDesc
		if te == ce {
			return true
		}
		switch {
		case len(te) > 0 && te[0] == 'L' && len(ce) > 0 && ce[0] == 'L':
			ec := lookup(ce[1 : len(ce)-1])
			tc := lookup(te[1 : len(te)-1])
			return ec != nil && tc != nil && ec.SubclassOf(tc)
		case len(te) > 0 && te[0] == '[' && len(ce) > 0 && ce[0] == '[':
			ec := lookup(ce)
			return ec != nil && classAssignableWith(ec, te, lookup)
		}
		return false
	}
	if len(target) > 0 && target[0] == '[' {
		return false
	}
	tc := lookup(target)
	return tc != nil && c.SubclassOf(tc)
}

// applyDeposit pushes a completed native result onto the frame.
func (vm *NativeVM) applyDeposit(t *NThread) {
	t.depReady = false
	if t.depThrown != nil {
		ex := t.depThrown
		t.depValue, t.depThrown = nil, nil
		vm.unwind(t, ex)
		return
	}
	if len(t.frames) == 0 {
		return
	}
	f := t.frames[len(t.frames)-1]
	encodePush(f, t.depRet, t.depValue)
	t.depValue = nil
}

// encodePush pushes a decoded native value per return descriptor.
func encodePush(f *NFrame, desc string, v Value) {
	switch desc {
	case "V", "":
	case "J":
		f.pushJ(v.(int64))
	case "F":
		f.pushF(v.(float32))
	case "D":
		f.pushD(v.(float64))
	case "Z", "B", "C", "S", "I":
		f.pushI(v.(int32))
	default:
		if v == nil {
			f.pushR(nil)
		} else {
			f.pushR(v.(*Object))
		}
	}
}

// decodeArgs pops a native call's arguments off the caller frame.
func decodeArgs(m *Method, f *NFrame, hasRecv bool) (recv *Object, args []Value) {
	total := m.ArgSlots
	if hasRecv {
		total++
	}
	base := f.sp - total
	idx := base
	if hasRecv {
		recv = f.stack[idx].R
		idx++
	}
	args = make([]Value, len(m.ParamDescs))
	for i, d := range m.ParamDescs {
		s := f.stack[idx]
		switch d {
		case "J":
			args[i] = s.N
			idx += 2
		case "F":
			args[i] = float32(SlotFloat(s))
			idx++
		case "D":
			args[i] = SlotFloat(s)
			idx += 2
		case "Z", "B", "C", "S", "I":
			args[i] = int32(s.N)
			idx++
		default:
			if s.R == nil {
				args[i] = nil
			} else {
				args[i] = s.R
			}
			idx++
		}
	}
	f.sp = base
	return recv, args
}

// invoke pushes a frame for m, moving arguments from the caller.
func (vm *NativeVM) invoke(t *NThread, caller *NFrame, m *Method, hasRecv bool) {
	if m.IsNative() {
		vm.invokeNative(t, caller, m, hasRecv)
		return
	}
	if m.Code == nil {
		vm.throwByName(t, "java/lang/Error", "abstract method invoked: "+m.String())
		return
	}
	nf := newNFrame(m)
	total := m.ArgSlots
	if hasRecv {
		total++
	}
	copy(nf.locals, caller.stack[caller.sp-total:caller.sp])
	caller.sp -= total
	t.frames = append(t.frames, nf)
	if vm.quicken {
		if qt := m.quick; qt != nil && qt.noteCall() {
			qt.fuse(m, vm.pairs, &vm.qstats, false)
		}
	}
}

func (vm *NativeVM) invokeNative(t *NThread, caller *NFrame, m *Method, hasRecv bool) {
	key := m.Class.Name + "." + m.Name + m.Desc
	fn := vm.natives[key]
	if fn == nil {
		// Search superclasses (natives may be registered on a base).
		for k := m.Class.Super; k != nil && fn == nil; k = k.Super {
			fn = vm.natives[k.Name+"."+m.Name+m.Desc]
		}
	}
	if fn == nil {
		vm.throwByName(t, "java/lang/Error", "UnsatisfiedLinkError: "+key)
		return
	}
	recv, args := decodeArgs(m, caller, hasRecv)
	if hasRecv && recv == nil {
		vm.throwByName(t, "java/lang/NullPointerException", m.Name)
		return
	}
	t.depRet = m.RetDesc
	res := fn(vm, recv, args)
	switch {
	case res.Async:
		if t.depReady {
			vm.applyDeposit(t)
		}
		// Otherwise the thread blocked; resume applies the deposit.
	case res.Thrown != nil:
		vm.unwind(t, res.Thrown)
	default:
		encodePush(caller, m.RetDesc, res.Value)
	}
}

// execQuick executes one quickened (or fused) instruction from the
// method's side table, including its pc advance; throws land with
// f.pc at the faulting instruction, exactly like the generic forms.
func (vm *NativeVM) execQuick(t *NThread, f *NFrame, q *QuickOp) {
	switch q.Kind {
	case QGetfield:
		o := f.popR()
		if o == nil {
			vm.throwByName(t, "java/lang/NullPointerException", q.Field.Name)
			return
		}
		f.push(o.Slots[q.Offset])
		if q.Wide {
			f.push(Slot{})
		}
	case QPutfield:
		if q.Wide {
			f.pop()
		}
		v := f.pop()
		o := f.popR()
		if o == nil {
			vm.throwByName(t, "java/lang/NullPointerException", q.Field.Name)
			return
		}
		o.Slots[q.Offset] = v
	case QGetstatic:
		f.push(q.Field.Class.Statics[q.Field.Name])
		if q.Wide {
			f.push(Slot{})
		}
	case QPutstatic:
		if q.Wide {
			f.pop()
		}
		q.Field.Class.Statics[q.Field.Name] = f.pop()
	case QInvokeStatic:
		f.pc += int(q.Len)
		vm.invoke(t, f, q.Method, false)
		return
	case QInvokeSpecial:
		if f.stack[f.sp-q.Method.ArgSlots-1].R == nil {
			vm.throwByName(t, "java/lang/NullPointerException", q.Method.Name)
			return
		}
		f.pc += int(q.Len)
		vm.invoke(t, f, q.Method, true)
		return
	case QInvokeVirtual:
		recv := f.stack[f.sp-q.Method.ArgSlots-1].R
		if recv == nil {
			vm.throwByName(t, "java/lang/NullPointerException", q.Method.Name)
			return
		}
		m := icLookup(q, recv.Class, &vm.qstats)
		if m == nil {
			vm.throwByName(t, "java/lang/Error", "no such method "+q.Method.String())
			return
		}
		f.pc += int(q.Len)
		vm.invoke(t, f, m, true)
		return
	case QAloadGetfield:
		o := f.locals[q.A].R
		if o == nil {
			// Trap at the getfield half's pc so handler ranges that
			// start between the fused halves still match.
			f.pc += int(q.Len) - 3
			vm.throwByName(t, "java/lang/NullPointerException", q.Field.Name)
			return
		}
		f.push(o.Slots[q.Offset])
		if q.Wide {
			f.push(Slot{})
		}
		vm.qstats.FusedExec++
	case QIloadIadd:
		f.pushI(f.popI() + int32(f.locals[q.A].N))
		vm.qstats.FusedExec++
	case QGetfieldIfeq:
		o := f.popR()
		if o == nil {
			vm.throwByName(t, "java/lang/NullPointerException", q.Field.Name)
			return
		}
		vm.qstats.FusedExec++
		if int32(o.Slots[q.Offset].N) == 0 {
			f.pc = int(q.A)
		} else {
			f.pc += int(q.Len)
		}
		return
	case QIloadIfIcmplt:
		vm.qstats.FusedExec++
		if f.popI() < int32(f.locals[q.A].N) {
			f.pc = int(q.Offset)
		} else {
			f.pc += int(q.Len)
		}
		return
	}
	f.pc += int(q.Len)
}

// methodReturn pops the current frame, transferring the return value.
func (vm *NativeVM) methodReturn(t *NThread, desc string) {
	f := t.frames[len(t.frames)-1]
	var v Slot
	var wide bool
	switch desc {
	case "V":
	case "J", "D":
		f.pop()
		v = f.pop()
		wide = true
	default:
		v = f.pop()
	}
	t.frames = t.frames[:len(t.frames)-1]
	if len(t.frames) == 0 {
		vm.killThread(t)
		return
	}
	caller := t.frames[len(t.frames)-1]
	if desc != "V" {
		caller.push(v)
		if wide {
			caller.push(Slot{})
		}
	}
}

// execute runs up to quantum instructions of thread t.
func (vm *NativeVM) execute(t *NThread, quantum int) error {
	if t.depReady {
		vm.applyDeposit(t)
	}
	for steps := 0; steps < quantum; steps++ {
		if t.state != ntRunnable || vm.exited {
			return nil
		}
		if len(t.frames) == 0 {
			vm.killThread(t)
			return nil
		}
		f := t.frames[len(t.frames)-1]
		code := f.m.Code.Bytecode
		if f.pc >= len(code) {
			// Fell off a void method (e.g. <clinit> without return).
			vm.methodReturn(t, "V")
			continue
		}
		vm.Instructions++
		op := code[f.pc]
		if vm.pairs != nil {
			vm.pairs[pairKey(t.prevOp, op)]++
			t.prevOp = op
		}
		if vm.prof != nil {
			if vm.profCheck--; vm.profCheck <= 0 {
				vm.profTick(t)
			}
		}
		if qt := f.m.quick; qt != nil {
			// The native engine executes only the lazily installed
			// kinds; pre-decoded simple forms (qDeepFirst and up) fall
			// back to the generic handlers below.
			if q := &qt.Ops[f.pc]; q.Kind != QNone && q.Kind < qDeepFirst {
				vm.execQuick(t, f, q)
				continue
			}
		}
		npc := f.pc + classfile.InstrLen(code, f.pc)

		switch op {
		case classfile.OpNop:
		case classfile.OpAconstNull:
			f.pushR(nil)
		case classfile.OpIconstM1, classfile.OpIconst0, classfile.OpIconst1,
			classfile.OpIconst2, classfile.OpIconst3, classfile.OpIconst4, classfile.OpIconst5:
			f.pushI(int32(op) - classfile.OpIconst0)
		case classfile.OpLconst0:
			f.pushJ(0)
		case classfile.OpLconst1:
			f.pushJ(1)
		case classfile.OpFconst0:
			f.pushF(0)
		case classfile.OpFconst1:
			f.pushF(1)
		case classfile.OpFconst2:
			f.pushF(2)
		case classfile.OpDconst0:
			f.pushD(0)
		case classfile.OpDconst1:
			f.pushD(1)
		case classfile.OpBipush:
			f.pushI(int32(int8(code[f.pc+1])))
		case classfile.OpSipush:
			f.pushI(int32(i16(code, f.pc+1)))

		case classfile.OpLdc, classfile.OpLdcW, classfile.OpLdc2W:
			var idx uint16
			if op == classfile.OpLdc {
				idx = uint16(code[f.pc+1])
			} else {
				idx = u16(code, f.pc+1)
			}
			rc := &f.m.Class.CP[idx]
			switch rc.Tag {
			case classfile.TagInteger:
				f.pushI(rc.Int)
			case classfile.TagFloat:
				f.pushF(rc.Float)
			case classfile.TagLong:
				f.pushJ(rc.Long)
			case classfile.TagDouble:
				f.pushD(rc.Double)
			case classfile.TagString:
				if rc.StringObj == nil {
					rc.StringObj = vm.Intern(rc.Str)
				}
				f.pushR(rc.StringObj)
			case classfile.TagClass:
				cls, err := vm.resolveClass(f.m.Class, idx)
				if err != nil {
					vm.throwByName(t, "java/lang/ClassNotFoundException", rc.Str)
					continue
				}
				f.pushR(vm.ClassMirror(cls))
			}

		case classfile.OpIload, classfile.OpFload, classfile.OpAload:
			f.push(f.locals[code[f.pc+1]])
		case classfile.OpLload, classfile.OpDload:
			f.push(f.locals[code[f.pc+1]])
			f.push(Slot{})
		case classfile.OpIload0, classfile.OpIload1, classfile.OpIload2, classfile.OpIload3:
			f.push(f.locals[op-classfile.OpIload0])
		case classfile.OpLload0, classfile.OpLload1, classfile.OpLload2, classfile.OpLload3:
			f.push(f.locals[op-classfile.OpLload0])
			f.push(Slot{})
		case classfile.OpFload0, classfile.OpFload1, classfile.OpFload2, classfile.OpFload3:
			f.push(f.locals[op-classfile.OpFload0])
		case classfile.OpDload0, classfile.OpDload1, classfile.OpDload2, classfile.OpDload3:
			f.push(f.locals[op-classfile.OpDload0])
			f.push(Slot{})
		case classfile.OpAload0, classfile.OpAload1, classfile.OpAload2, classfile.OpAload3:
			f.push(f.locals[op-classfile.OpAload0])

		case classfile.OpIstore, classfile.OpFstore, classfile.OpAstore:
			f.locals[code[f.pc+1]] = f.pop()
		case classfile.OpLstore, classfile.OpDstore:
			f.pop()
			f.locals[code[f.pc+1]] = f.pop()
		case classfile.OpIstore0, classfile.OpIstore1, classfile.OpIstore2, classfile.OpIstore3:
			f.locals[op-classfile.OpIstore0] = f.pop()
		case classfile.OpLstore0, classfile.OpLstore1, classfile.OpLstore2, classfile.OpLstore3:
			f.pop()
			f.locals[op-classfile.OpLstore0] = f.pop()
		case classfile.OpFstore0, classfile.OpFstore1, classfile.OpFstore2, classfile.OpFstore3:
			f.locals[op-classfile.OpFstore0] = f.pop()
		case classfile.OpDstore0, classfile.OpDstore1, classfile.OpDstore2, classfile.OpDstore3:
			f.pop()
			f.locals[op-classfile.OpDstore0] = f.pop()
		case classfile.OpAstore0, classfile.OpAstore1, classfile.OpAstore2, classfile.OpAstore3:
			f.locals[op-classfile.OpAstore0] = f.pop()

		// --- array loads/stores ---
		case classfile.OpIaload, classfile.OpLaload, classfile.OpFaload, classfile.OpDaload,
			classfile.OpAaload, classfile.OpBaload, classfile.OpCaload, classfile.OpSaload:
			idx := f.popI()
			arr := f.popR()
			if arr == nil {
				vm.throwByName(t, "java/lang/NullPointerException", "array load")
				continue
			}
			if int(idx) < 0 || int(idx) >= arr.ArrayLen() {
				vm.throwByName(t, "java/lang/ArrayIndexOutOfBoundsException", fmt.Sprint(idx))
				continue
			}
			switch a := arr.Arr.(type) {
			case []int32:
				f.pushI(a[idx])
			case []int64:
				f.pushJ(a[idx])
			case []float32:
				f.pushF(a[idx])
			case []float64:
				f.pushD(a[idx])
			case []*Object:
				f.pushR(a[idx])
			case []int8:
				f.pushI(int32(a[idx]))
			case []uint16:
				f.pushI(int32(a[idx]))
			case []int16:
				f.pushI(int32(a[idx]))
			}

		case classfile.OpIastore, classfile.OpLastore, classfile.OpFastore, classfile.OpDastore,
			classfile.OpAastore, classfile.OpBastore, classfile.OpCastore, classfile.OpSastore:
			var vi int32
			var vj int64
			var vf float32
			var vd float64
			var vr *Object
			switch op {
			case classfile.OpLastore:
				vj = f.popJ()
			case classfile.OpFastore:
				vf = f.popF()
			case classfile.OpDastore:
				vd = f.popD()
			case classfile.OpAastore:
				vr = f.popR()
			default:
				vi = f.popI()
			}
			idx := f.popI()
			arr := f.popR()
			if arr == nil {
				vm.throwByName(t, "java/lang/NullPointerException", "array store")
				continue
			}
			if int(idx) < 0 || int(idx) >= arr.ArrayLen() {
				vm.throwByName(t, "java/lang/ArrayIndexOutOfBoundsException", fmt.Sprint(idx))
				continue
			}
			switch a := arr.Arr.(type) {
			case []int32:
				a[idx] = vi
			case []int64:
				a[idx] = vj
			case []float32:
				a[idx] = vf
			case []float64:
				a[idx] = vd
			case []*Object:
				a[idx] = vr
			case []int8:
				a[idx] = int8(vi)
			case []uint16:
				a[idx] = uint16(vi)
			case []int16:
				a[idx] = int16(vi)
			}

		// --- stack shuffles ---
		case classfile.OpPop:
			f.pop()
		case classfile.OpPop2:
			f.pop()
			f.pop()
		case classfile.OpDup:
			v := f.stack[f.sp-1]
			f.push(v)
		case classfile.OpDupX1:
			v1 := f.pop()
			v2 := f.pop()
			f.push(v1)
			f.push(v2)
			f.push(v1)
		case classfile.OpDupX2:
			v1 := f.pop()
			v2 := f.pop()
			v3 := f.pop()
			f.push(v1)
			f.push(v3)
			f.push(v2)
			f.push(v1)
		case classfile.OpDup2:
			v1 := f.stack[f.sp-1]
			v2 := f.stack[f.sp-2]
			f.push(v2)
			f.push(v1)
		case classfile.OpDup2X1:
			v1 := f.pop()
			v2 := f.pop()
			v3 := f.pop()
			f.push(v2)
			f.push(v1)
			f.push(v3)
			f.push(v2)
			f.push(v1)
		case classfile.OpDup2X2:
			v1 := f.pop()
			v2 := f.pop()
			v3 := f.pop()
			v4 := f.pop()
			f.push(v2)
			f.push(v1)
			f.push(v4)
			f.push(v3)
			f.push(v2)
			f.push(v1)
		case classfile.OpSwap:
			v1 := f.pop()
			v2 := f.pop()
			f.push(v1)
			f.push(v2)

		// --- arithmetic ---
		case classfile.OpIadd:
			b := f.popI()
			a := f.popI()
			f.pushI(a + b)
		case classfile.OpLadd:
			b := f.popJ()
			a := f.popJ()
			f.pushJ(a + b)
		case classfile.OpFadd:
			b := f.popF()
			a := f.popF()
			f.pushF(a + b)
		case classfile.OpDadd:
			b := f.popD()
			a := f.popD()
			f.pushD(a + b)
		case classfile.OpIsub:
			b := f.popI()
			a := f.popI()
			f.pushI(a - b)
		case classfile.OpLsub:
			b := f.popJ()
			a := f.popJ()
			f.pushJ(a - b)
		case classfile.OpFsub:
			b := f.popF()
			a := f.popF()
			f.pushF(a - b)
		case classfile.OpDsub:
			b := f.popD()
			a := f.popD()
			f.pushD(a - b)
		case classfile.OpImul:
			b := f.popI()
			a := f.popI()
			f.pushI(a * b)
		case classfile.OpLmul:
			b := f.popJ()
			a := f.popJ()
			f.pushJ(a * b)
		case classfile.OpFmul:
			b := f.popF()
			a := f.popF()
			f.pushF(a * b)
		case classfile.OpDmul:
			b := f.popD()
			a := f.popD()
			f.pushD(a * b)
		case classfile.OpIdiv:
			b := f.popI()
			a := f.popI()
			if b == 0 {
				vm.throwByName(t, "java/lang/ArithmeticException", "/ by zero")
				continue
			}
			if a == math.MinInt32 && b == -1 {
				f.pushI(math.MinInt32)
			} else {
				f.pushI(a / b)
			}
		case classfile.OpLdiv:
			b := f.popJ()
			a := f.popJ()
			if b == 0 {
				vm.throwByName(t, "java/lang/ArithmeticException", "/ by zero")
				continue
			}
			if a == math.MinInt64 && b == -1 {
				f.pushJ(math.MinInt64)
			} else {
				f.pushJ(a / b)
			}
		case classfile.OpFdiv:
			b := f.popF()
			a := f.popF()
			f.pushF(a / b)
		case classfile.OpDdiv:
			b := f.popD()
			a := f.popD()
			f.pushD(a / b)
		case classfile.OpIrem:
			b := f.popI()
			a := f.popI()
			if b == 0 {
				vm.throwByName(t, "java/lang/ArithmeticException", "% by zero")
				continue
			}
			if a == math.MinInt32 && b == -1 {
				f.pushI(0)
			} else {
				f.pushI(a % b)
			}
		case classfile.OpLrem:
			b := f.popJ()
			a := f.popJ()
			if b == 0 {
				vm.throwByName(t, "java/lang/ArithmeticException", "% by zero")
				continue
			}
			if a == math.MinInt64 && b == -1 {
				f.pushJ(0)
			} else {
				f.pushJ(a % b)
			}
		case classfile.OpFrem:
			b := f.popF()
			a := f.popF()
			f.pushF(float32(jrem(float64(a), float64(b))))
		case classfile.OpDrem:
			b := f.popD()
			a := f.popD()
			f.pushD(jrem(a, b))
		case classfile.OpIneg:
			f.pushI(-f.popI())
		case classfile.OpLneg:
			f.pushJ(-f.popJ())
		case classfile.OpFneg:
			f.pushF(-f.popF())
		case classfile.OpDneg:
			f.pushD(-f.popD())

		case classfile.OpIshl:
			b := f.popI()
			a := f.popI()
			f.pushI(a << (uint(b) & 31))
		case classfile.OpLshl:
			b := f.popI()
			a := f.popJ()
			f.pushJ(a << (uint(b) & 63))
		case classfile.OpIshr:
			b := f.popI()
			a := f.popI()
			f.pushI(a >> (uint(b) & 31))
		case classfile.OpLshr:
			b := f.popI()
			a := f.popJ()
			f.pushJ(a >> (uint(b) & 63))
		case classfile.OpIushr:
			b := f.popI()
			a := f.popI()
			f.pushI(int32(uint32(a) >> (uint(b) & 31)))
		case classfile.OpLushr:
			b := f.popI()
			a := f.popJ()
			f.pushJ(int64(uint64(a) >> (uint(b) & 63)))
		case classfile.OpIand:
			b := f.popI()
			a := f.popI()
			f.pushI(a & b)
		case classfile.OpLand:
			b := f.popJ()
			a := f.popJ()
			f.pushJ(a & b)
		case classfile.OpIor:
			b := f.popI()
			a := f.popI()
			f.pushI(a | b)
		case classfile.OpLor:
			b := f.popJ()
			a := f.popJ()
			f.pushJ(a | b)
		case classfile.OpIxor:
			b := f.popI()
			a := f.popI()
			f.pushI(a ^ b)
		case classfile.OpLxor:
			b := f.popJ()
			a := f.popJ()
			f.pushJ(a ^ b)

		case classfile.OpIinc:
			slot := code[f.pc+1]
			f.locals[slot].N = int64(int32(f.locals[slot].N) + int32(int8(code[f.pc+2])))

		// --- conversions ---
		case classfile.OpI2l:
			f.pushJ(int64(f.popI()))
		case classfile.OpI2f:
			f.pushF(float32(f.popI()))
		case classfile.OpI2d:
			f.pushD(float64(f.popI()))
		case classfile.OpL2i:
			f.pushI(int32(f.popJ()))
		case classfile.OpL2f:
			f.pushF(float32(f.popJ()))
		case classfile.OpL2d:
			f.pushD(float64(f.popJ()))
		case classfile.OpF2i:
			f.pushI(d2i(float64(f.popF())))
		case classfile.OpF2l:
			f.pushJ(d2l(float64(f.popF())))
		case classfile.OpF2d:
			f.pushD(float64(f.popF()))
		case classfile.OpD2i:
			f.pushI(d2i(f.popD()))
		case classfile.OpD2l:
			f.pushJ(d2l(f.popD()))
		case classfile.OpD2f:
			f.pushF(float32(f.popD()))
		case classfile.OpI2b:
			f.pushI(int32(int8(f.popI())))
		case classfile.OpI2c:
			f.pushI(int32(uint16(f.popI())))
		case classfile.OpI2s:
			f.pushI(int32(int16(f.popI())))

		// --- comparisons ---
		case classfile.OpLcmp:
			b := f.popJ()
			a := f.popJ()
			f.pushI(cmpOrd(a > b, a < b))
		case classfile.OpFcmpl, classfile.OpFcmpg:
			b := float64(f.popF())
			a := float64(f.popF())
			f.pushI(fcmp(a, b, op == classfile.OpFcmpg))
		case classfile.OpDcmpl, classfile.OpDcmpg:
			b := f.popD()
			a := f.popD()
			f.pushI(fcmp(a, b, op == classfile.OpDcmpg))

		case classfile.OpIfeq, classfile.OpIfne, classfile.OpIflt,
			classfile.OpIfge, classfile.OpIfgt, classfile.OpIfle:
			v := f.popI()
			taken := false
			switch op {
			case classfile.OpIfeq:
				taken = v == 0
			case classfile.OpIfne:
				taken = v != 0
			case classfile.OpIflt:
				taken = v < 0
			case classfile.OpIfge:
				taken = v >= 0
			case classfile.OpIfgt:
				taken = v > 0
			case classfile.OpIfle:
				taken = v <= 0
			}
			if taken {
				npc = f.pc + int(i16(code, f.pc+1))
			}
		case classfile.OpIfIcmpeq, classfile.OpIfIcmpne, classfile.OpIfIcmplt,
			classfile.OpIfIcmpge, classfile.OpIfIcmpgt, classfile.OpIfIcmple:
			b := f.popI()
			a := f.popI()
			taken := false
			switch op {
			case classfile.OpIfIcmpeq:
				taken = a == b
			case classfile.OpIfIcmpne:
				taken = a != b
			case classfile.OpIfIcmplt:
				taken = a < b
			case classfile.OpIfIcmpge:
				taken = a >= b
			case classfile.OpIfIcmpgt:
				taken = a > b
			case classfile.OpIfIcmple:
				taken = a <= b
			}
			if taken {
				npc = f.pc + int(i16(code, f.pc+1))
			}
		case classfile.OpIfAcmpeq:
			b := f.popR()
			a := f.popR()
			if a == b {
				npc = f.pc + int(i16(code, f.pc+1))
			}
		case classfile.OpIfAcmpne:
			b := f.popR()
			a := f.popR()
			if a != b {
				npc = f.pc + int(i16(code, f.pc+1))
			}
		case classfile.OpIfnull:
			if f.popR() == nil {
				npc = f.pc + int(i16(code, f.pc+1))
			}
		case classfile.OpIfnonnull:
			if f.popR() != nil {
				npc = f.pc + int(i16(code, f.pc+1))
			}

		case classfile.OpGoto:
			npc = f.pc + int(i16(code, f.pc+1))
		case classfile.OpGotoW:
			npc = f.pc + int(int32(u32(code, f.pc+1)))
		case classfile.OpJsr:
			f.push(Slot{N: int64(npc)})
			npc = f.pc + int(i16(code, f.pc+1))
		case classfile.OpJsrW:
			f.push(Slot{N: int64(npc)})
			npc = f.pc + int(int32(u32(code, f.pc+1)))
		case classfile.OpRet:
			npc = int(f.locals[code[f.pc+1]].N)

		case classfile.OpTableswitch:
			base := (f.pc + 4) &^ 3
			def := f.pc + int(int32(u32(code, base)))
			low := int32(u32(code, base+4))
			high := int32(u32(code, base+8))
			v := f.popI()
			if v < low || v > high {
				npc = def
			} else {
				npc = f.pc + int(int32(u32(code, base+12+4*int(v-low))))
			}
		case classfile.OpLookupswitch:
			base := (f.pc + 4) &^ 3
			def := f.pc + int(int32(u32(code, base)))
			n := int(int32(u32(code, base+4)))
			v := f.popI()
			npc = def
			lo, hi := 0, n-1
			for lo <= hi {
				mid := (lo + hi) / 2
				k := int32(u32(code, base+8+8*mid))
				if k == v {
					npc = f.pc + int(int32(u32(code, base+12+8*mid)))
					break
				} else if k < v {
					lo = mid + 1
				} else {
					hi = mid - 1
				}
			}

		case classfile.OpIreturn, classfile.OpFreturn, classfile.OpAreturn,
			classfile.OpLreturn, classfile.OpDreturn:
			vm.methodReturn(t, f.m.RetDesc)
			continue
		case classfile.OpReturn:
			vm.methodReturn(t, "V")
			continue

		// --- fields ---
		case classfile.OpGetstatic, classfile.OpPutstatic:
			idx := u16(code, f.pc+1)
			fld, err := vm.resolveFieldRef(f.m.Class, idx)
			if err != nil {
				vm.throwByName(t, "java/lang/ClassNotFoundException", err.Error())
				continue
			}
			if fld.Class.State == StateLoaded {
				vm.ensureInit(t, fld.Class)
				continue // re-execute after <clinit>
			}
			if vm.quicken {
				kind := QGetstatic
				if op == classfile.OpPutstatic {
					kind = QPutstatic
				}
				installStaticQuick(f.m, f.pc, kind, fld, &vm.qstats)
			}
			wide := fld.Desc == "J" || fld.Desc == "D"
			if op == classfile.OpGetstatic {
				v := fld.Class.Statics[fld.Name]
				f.push(v)
				if wide {
					f.push(Slot{})
				}
			} else {
				if wide {
					f.pop()
				}
				fld.Class.Statics[fld.Name] = f.pop()
			}
		case classfile.OpGetfield:
			idx := u16(code, f.pc+1)
			fld, err := vm.resolveFieldRef(f.m.Class, idx)
			if err != nil {
				vm.throwByName(t, "java/lang/ClassNotFoundException", err.Error())
				continue
			}
			if vm.quicken {
				installFieldQuick(f.m, f.pc, QGetfield, fld, &vm.qstats)
			}
			o := f.popR()
			if o == nil {
				vm.throwByName(t, "java/lang/NullPointerException", fld.Name)
				continue
			}
			v, gerr := o.GetField(fld.Class, fld.Name)
			if gerr != nil {
				vm.throwByName(t, "java/lang/Error", gerr.Error())
				continue
			}
			f.push(v)
			if fld.Desc == "J" || fld.Desc == "D" {
				f.push(Slot{})
			}
		case classfile.OpPutfield:
			idx := u16(code, f.pc+1)
			fld, err := vm.resolveFieldRef(f.m.Class, idx)
			if err != nil {
				vm.throwByName(t, "java/lang/ClassNotFoundException", err.Error())
				continue
			}
			if vm.quicken {
				installFieldQuick(f.m, f.pc, QPutfield, fld, &vm.qstats)
			}
			if fld.Desc == "J" || fld.Desc == "D" {
				f.pop()
			}
			v := f.pop()
			o := f.popR()
			if o == nil {
				vm.throwByName(t, "java/lang/NullPointerException", fld.Name)
				continue
			}
			if serr := o.SetField(fld.Class, fld.Name, v); serr != nil {
				vm.throwByName(t, "java/lang/Error", serr.Error())
				continue
			}

		// --- invokes ---
		case classfile.OpInvokestatic:
			idx := u16(code, f.pc+1)
			m, err := vm.resolveMethodRef(f.m.Class, idx)
			if err != nil {
				vm.throwByName(t, "java/lang/ClassNotFoundException", err.Error())
				continue
			}
			if m.Class.State == StateLoaded {
				vm.ensureInit(t, m.Class)
				continue
			}
			if vm.quicken {
				installInvokeQuick(f.m, f.pc, QInvokeStatic, m, &vm.qstats)
			}
			f.pc = npc
			vm.invoke(t, f, m, false)
			continue
		case classfile.OpInvokespecial:
			idx := u16(code, f.pc+1)
			m, err := vm.resolveMethodRef(f.m.Class, idx)
			if err != nil {
				vm.throwByName(t, "java/lang/ClassNotFoundException", err.Error())
				continue
			}
			if vm.quicken {
				installInvokeQuick(f.m, f.pc, QInvokeSpecial, m, &vm.qstats)
			}
			recvIdx := f.sp - m.ArgSlots - 1
			if f.stack[recvIdx].R == nil {
				vm.throwByName(t, "java/lang/NullPointerException", m.Name)
				continue
			}
			f.pc = npc
			vm.invoke(t, f, m, true)
			continue
		case classfile.OpInvokevirtual, classfile.OpInvokeinterface:
			idx := u16(code, f.pc+1)
			rm, err := vm.resolveMethodRef(f.m.Class, idx)
			if err != nil {
				vm.throwByName(t, "java/lang/ClassNotFoundException", err.Error())
				continue
			}
			if vm.quicken {
				installInvokeQuick(f.m, f.pc, QInvokeVirtual, rm, &vm.qstats)
			}
			recvIdx := f.sp - rm.ArgSlots - 1
			recv := f.stack[recvIdx].R
			if recv == nil {
				vm.throwByName(t, "java/lang/NullPointerException", rm.Name)
				continue
			}
			m := recv.Class.FindMethod(rm.Name, rm.Desc)
			if m == nil {
				vm.throwByName(t, "java/lang/Error", "no such method "+rm.String())
				continue
			}
			f.pc = npc
			vm.invoke(t, f, m, true)
			continue

		// --- allocation ---
		case classfile.OpNew:
			idx := u16(code, f.pc+1)
			cls, err := vm.resolveClass(f.m.Class, idx)
			if err != nil {
				vm.throwByName(t, "java/lang/ClassNotFoundException", f.m.Class.CP[idx].Str)
				continue
			}
			if cls.State == StateLoaded {
				vm.ensureInit(t, cls)
				continue
			}
			if vm.prof != nil {
				vm.profAllocN(t, profObjBytes(cls))
			}
			f.pushR(NewObject(cls))
		case classfile.OpNewarray:
			n := f.popI()
			if n < 0 {
				vm.throwByName(t, "java/lang/NegativeArraySizeException", fmt.Sprint(n))
				continue
			}
			desc := primArrayDesc(code[f.pc+1])
			arrC, err := vm.loader.Load("[" + desc)
			if err != nil {
				vm.throwByName(t, "java/lang/Error", err.Error())
				continue
			}
			if vm.prof != nil {
				vm.profAllocN(t, profArrayBytes(desc, n))
			}
			f.pushR(NewArray(arrC, desc, int(n)))
		case classfile.OpAnewarray:
			idx := u16(code, f.pc+1)
			n := f.popI()
			if n < 0 {
				vm.throwByName(t, "java/lang/NegativeArraySizeException", fmt.Sprint(n))
				continue
			}
			elemName := f.m.Class.CP[idx].Str
			elemDesc := elemName
			if elemName[0] != '[' {
				elemDesc = "L" + elemName + ";"
			}
			arrC, err := vm.loader.Load("[" + elemDesc)
			if err != nil {
				vm.throwByName(t, "java/lang/ClassNotFoundException", elemName)
				continue
			}
			if vm.prof != nil {
				vm.profAllocN(t, profArrayBytes(elemDesc, n))
			}
			f.pushR(NewArray(arrC, elemDesc, int(n)))
		case classfile.OpMultianewarray:
			idx := u16(code, f.pc+1)
			dims := int(code[f.pc+3])
			counts := make([]int32, dims)
			bad := false
			for i := dims - 1; i >= 0; i-- {
				counts[i] = f.popI()
				if counts[i] < 0 {
					bad = true
				}
			}
			if bad {
				vm.throwByName(t, "java/lang/NegativeArraySizeException", "multianewarray")
				continue
			}
			arrName := f.m.Class.CP[idx].Str
			arr, err := vm.buildMultiArray(arrName, counts)
			if err != nil {
				vm.throwByName(t, "java/lang/Error", err.Error())
				continue
			}
			if vm.prof != nil {
				total := int64(1)
				for _, c := range counts {
					total *= int64(c)
				}
				vm.profAllocN(t, 16+8*total)
			}
			f.pushR(arr)
		case classfile.OpArraylength:
			arr := f.popR()
			if arr == nil {
				vm.throwByName(t, "java/lang/NullPointerException", "arraylength")
				continue
			}
			f.pushI(int32(arr.ArrayLen()))

		case classfile.OpAthrow:
			ex := f.popR()
			if ex == nil {
				vm.throwByName(t, "java/lang/NullPointerException", "athrow")
				continue
			}
			vm.unwind(t, ex)
			continue

		case classfile.OpCheckcast:
			idx := u16(code, f.pc+1)
			target := f.m.Class.CP[idx].Str
			o := f.stack[f.sp-1].R
			if o != nil && !vm.classAssignable(o.Class, target) {
				vm.throwByName(t, "java/lang/ClassCastException",
					o.Class.Name+" cannot be cast to "+target)
				continue
			}
		case classfile.OpInstanceof:
			idx := u16(code, f.pc+1)
			target := f.m.Class.CP[idx].Str
			o := f.popR()
			if o != nil && vm.classAssignable(o.Class, target) {
				f.pushI(1)
			} else {
				f.pushI(0)
			}

		case classfile.OpMonitorenter:
			o := f.popR()
			if o == nil {
				vm.throwByName(t, "java/lang/NullPointerException", "monitorenter")
				continue
			}
			mon := o.EnsureMonitor()
			switch {
			case mon.Owner == nil:
				mon.Owner = t
				mon.Count = 1
			case mon.Owner == t:
				mon.Count++
			default:
				// Block; re-execute monitorenter on resume.
				f.pushR(o)
				t.state = ntBlocked
				mon.BlockQ = append(mon.BlockQ, func() { t.state = ntRunnable })
				return nil
			}
		case classfile.OpMonitorexit:
			o := f.popR()
			if o == nil {
				vm.throwByName(t, "java/lang/NullPointerException", "monitorexit")
				continue
			}
			mon := o.EnsureMonitor()
			if mon.Owner != t {
				vm.throwByName(t, "java/lang/IllegalMonitorStateException", "monitorexit")
				continue
			}
			mon.Count--
			if mon.Count == 0 {
				mon.Owner = nil
				vm.wakeOneBlocked(mon)
			}

		case classfile.OpWide:
			inner := code[f.pc+1]
			slot := int(u16(code, f.pc+2))
			switch inner {
			case classfile.OpIload, classfile.OpFload, classfile.OpAload:
				f.push(f.locals[slot])
			case classfile.OpLload, classfile.OpDload:
				f.push(f.locals[slot])
				f.push(Slot{})
			case classfile.OpIstore, classfile.OpFstore, classfile.OpAstore:
				f.locals[slot] = f.pop()
			case classfile.OpLstore, classfile.OpDstore:
				f.pop()
				f.locals[slot] = f.pop()
			case classfile.OpIinc:
				f.locals[slot].N = int64(int32(f.locals[slot].N) + int32(i16(code, f.pc+4)))
			case classfile.OpRet:
				npc = int(f.locals[slot].N)
			}

		default:
			return fmt.Errorf("jvm: illegal opcode %#02x at %s pc=%d", op, f.m, f.pc)
		}
		f.pc = npc
	}
	return nil
}

// d2i converts double→int with JVM saturation semantics.
func d2i(v float64) int32 {
	switch {
	case math.IsNaN(v):
		return 0
	case v >= math.MaxInt32:
		return math.MaxInt32
	case v <= math.MinInt32:
		return math.MinInt32
	}
	return int32(v)
}

// d2l converts double→long with JVM saturation semantics.
func d2l(v float64) int64 {
	switch {
	case math.IsNaN(v):
		return 0
	case v >= math.MaxInt64:
		return math.MaxInt64
	case v <= math.MinInt64:
		return math.MinInt64
	}
	return int64(v)
}

func cmpOrd(gt, lt bool) int32 {
	switch {
	case gt:
		return 1
	case lt:
		return -1
	}
	return 0
}

// fcmp implements fcmpl/fcmpg and dcmpl/dcmpg NaN behaviour.
func fcmp(a, b float64, nanIsOne bool) int32 {
	if math.IsNaN(a) || math.IsNaN(b) {
		if nanIsOne {
			return 1
		}
		return -1
	}
	return cmpOrd(a > b, a < b)
}

func primArrayDesc(code byte) string {
	switch code {
	case 4:
		return "Z"
	case 5:
		return "C"
	case 6:
		return "F"
	case 7:
		return "D"
	case 8:
		return "B"
	case 9:
		return "S"
	case 10:
		return "I"
	case 11:
		return "J"
	}
	return "I"
}

// buildMultiArray allocates nested arrays for multianewarray.
func (vm *NativeVM) buildMultiArray(arrName string, counts []int32) (*Object, error) {
	arrC, err := vm.loader.Load(arrName)
	if err != nil {
		return nil, err
	}
	elemDesc := arrName[1:]
	arr := NewArray(arrC, elemDesc, int(counts[0]))
	if len(counts) > 1 {
		sub := arr.Arr.([]*Object)
		for i := range sub {
			inner, err := vm.buildMultiArray(elemDesc, counts[1:])
			if err != nil {
				return nil, err
			}
			sub[i] = inner
		}
	}
	return arr, nil
}

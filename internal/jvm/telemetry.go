package jvm

import (
	"fmt"
	"time"

	"doppio/internal/classfile"
	"doppio/internal/telemetry"
)

// vmTelemetry holds the DoppioVM's pre-resolved telemetry handles.
// The interpreter runs on the single event-loop goroutine, so the
// per-opcode counts are plain int64s incremented without atomics and
// published to the registry in bulk when the VM finishes (and on
// demand via FlushTelemetry).
type vmTelemetry struct {
	reg         *telemetry.Registry
	tracer      *telemetry.Tracer
	methodSpans bool

	opCounts    [256]int64
	invocations int64

	nativeCalls  *telemetry.Counter
	nativeLat    *telemetry.Histogram
	classLoadLat *telemetry.Histogram
	classLoads   *telemetry.Counter
}

// EnableTelemetry points the VM at an observability hub (nil
// detaches). NewDoppioVM calls this automatically when the window has
// one.
func (vm *DoppioVM) EnableTelemetry(h *telemetry.Hub) {
	if h == nil {
		vm.tel = nil
		vm.loader.Observe = nil
		return
	}
	tel := &vmTelemetry{
		reg:          h.Registry,
		tracer:       h.Tracer,
		methodSpans:  h.MethodSpans,
		nativeCalls:  h.Registry.Counter("jvm", "native_calls"),
		nativeLat:    h.Registry.Histogram("jvm", "native_call"),
		classLoadLat: h.Registry.Histogram("jvm", "class_load"),
		classLoads:   h.Registry.Counter("jvm", "class_loads"),
	}
	vm.tel = tel
	vm.loader.Observe = func(name string, took time.Duration) {
		tel.classLoadLat.ObserveDuration(took)
		tel.classLoads.Inc()
	}
}

// FlushTelemetry publishes the interpreter's accumulated per-opcode
// execution counts (as jvm/op.<mnemonic> counters) and invocation
// count to the registry, then zeroes the accumulators. The VM flushes
// automatically when main finishes.
func (vm *DoppioVM) FlushTelemetry() {
	tel := vm.tel
	if tel == nil {
		return
	}
	for op, n := range tel.opCounts {
		if n == 0 {
			continue
		}
		tel.reg.Counter("jvm", "op."+opMnemonic(byte(op))).Add(n)
		tel.opCounts[op] = 0
	}
	if tel.invocations != 0 {
		tel.reg.Counter("jvm", "invocations").Add(tel.invocations)
		tel.invocations = 0
	}
}

func opMnemonic(op byte) string {
	if name := classfile.OpNames[op]; name != "" {
		return name
	}
	return fmt.Sprintf("0x%02x", op)
}

// methodSpanBegin opens a per-invocation trace span on the thread's
// track (opt-in via Hub.MethodSpans: a busy run has millions of
// invocations).
func (d *DThread) methodSpanBegin(m *Method) telemetry.Span {
	tel := d.vm.tel
	if tel == nil || !tel.methodSpans || tel.tracer == nil {
		return telemetry.Span{}
	}
	return tel.tracer.Begin(telemetry.TIDCoreThread(d.coreT.ID), "jvm", m.Class.Name+"."+m.Name)
}

package jvm_test

import (
	"bytes"
	"strings"
	"testing"

	"doppio/internal/jvm"
	"doppio/internal/jvm/rt"
)

// runNative compiles main.mj (plus the runtime library), runs its Main
// class on the native engine, and returns stdout.
func runNative(t *testing.T, source string, args ...string) string {
	t.Helper()
	out, err := runNativeErr(t, source, args...)
	if err != nil {
		t.Fatalf("RunMain: %v\noutput:\n%s", err, out)
	}
	return out
}

func runNativeErr(t *testing.T, source string, args ...string) (string, error) {
	t.Helper()
	classes, err := rt.CompileWith(map[string]string{"Main.mj": source})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var stdout bytes.Buffer
	vm := jvm.NewNativeVM(jvm.MapProvider(classes), jvm.NativeOptions{
		Stdout: &stdout, Stderr: &stdout,
	})
	err = vm.RunMain("Main", args)
	return stdout.String(), err
}

func TestHelloWorld(t *testing.T) {
	out := runNative(t, `
public class Main {
    public static void main(String[] args) {
        System.out.println("Hello, Doppio!");
    }
}`)
	if out != "Hello, Doppio!\n" {
		t.Errorf("out = %q", out)
	}
}

func TestArithmeticAndLocals(t *testing.T) {
	out := runNative(t, `
public class Main {
    public static void main(String[] args) {
        int a = 6;
        int b = 7;
        System.out.println(a * b);
        System.out.println(a - b);
        System.out.println((a + 1) / 2);
        System.out.println(17 % 5);
        System.out.println(-a);
        System.out.println(1 << 10);
        System.out.println(-8 >> 1);
        System.out.println(-8 >>> 28);
        System.out.println(6 & 3);
        System.out.println(6 | 3);
        System.out.println(6 ^ 3);
        System.out.println(~5);
    }
}`)
	want := "42\n-1\n3\n2\n-6\n1024\n-4\n15\n2\n7\n5\n-6\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestLongArithmetic(t *testing.T) {
	out := runNative(t, `
public class Main {
    public static void main(String[] args) {
        long big = 9223372036854775807L;
        System.out.println(big);
        System.out.println(big + 1L);
        long x = 123456789L;
        System.out.println(x * x);
        System.out.println(x / 1000L);
        System.out.println(-x % 100L);
        System.out.println(1L << 62);
        System.out.println(Long.parseLong("-42"));
    }
}`)
	want := "9223372036854775807\n-9223372036854775808\n15241578750190521\n123456\n-89\n4611686018427387904\n-42\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestDoublesAndMath(t *testing.T) {
	out := runNative(t, `
public class Main {
    public static void main(String[] args) {
        double d = 2.25;
        System.out.println(d * 2.0);
        System.out.println(Math.sqrt(16.0));
        System.out.println(Math.max(3, 9));
        System.out.println(Math.abs(-2.5));
        System.out.println((int) 3.99);
        System.out.println((long) -7.5);
        float f = 1.5f;
        System.out.println((double) f);
    }
}`)
	want := "4.5\n4.0\n9\n2.5\n3\n-7\n1.5\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestControlFlow(t *testing.T) {
	out := runNative(t, `
public class Main {
    public static void main(String[] args) {
        int sum = 0;
        for (int i = 1; i <= 10; i++) {
            sum += i;
        }
        System.out.println(sum);
        int n = 0;
        while (n < 5) {
            n++;
            if (n == 3) {
                continue;
            }
            if (n == 5) {
                break;
            }
            System.out.print(n);
        }
        System.out.println();
        int k = 0;
        do {
            k++;
        } while (k < 4);
        System.out.println(k);
    }
}`)
	want := "55\n124\n4\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestSwitch(t *testing.T) {
	out := runNative(t, `
public class Main {
    static String name(int v) {
        switch (v) {
        case 1:
            return "one";
        case 2:
        case 3:
            return "two-or-three";
        case 1000:
            return "grand";
        default:
            return "other";
        }
    }
    public static void main(String[] args) {
        System.out.println(name(1));
        System.out.println(name(3));
        System.out.println(name(1000));
        System.out.println(name(-5));
        // Dense switch exercises tableswitch; fallthrough too.
        int total = 0;
        for (int i = 0; i < 4; i++) {
            switch (i) {
            case 0:
                total += 1;
            case 1:
                total += 10;
                break;
            case 2:
                total += 100;
                break;
            }
        }
        System.out.println(total);
    }
}`)
	want := "one\ntwo-or-three\ngrand\nother\n121\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestObjectsAndInheritance(t *testing.T) {
	out := runNative(t, `
class Shape {
    String name;
    Shape(String name) { this.name = name; }
    int area() { return 0; }
    public String toString() { return name + ":" + area(); }
}

class Square extends Shape {
    int side;
    Square(int side) {
        super("square");
        this.side = side;
    }
    int area() { return side * side; }
}

class Rect extends Shape {
    int w;
    int h;
    Rect(int w, int h) {
        super("rect");
        this.w = w;
        this.h = h;
    }
    int area() { return w * h; }
    int perimeter() { return 2 * (w + h); }
}

public class Main {
    public static void main(String[] args) {
        Shape[] shapes = new Shape[3];
        shapes[0] = new Square(4);
        shapes[1] = new Rect(2, 5);
        shapes[2] = new Shape("blob");
        int total = 0;
        for (int i = 0; i < shapes.length; i++) {
            total += shapes[i].area();
            System.out.println(shapes[i]);
        }
        System.out.println(total);
        System.out.println(shapes[0] instanceof Square);
        System.out.println(shapes[0] instanceof Rect);
        System.out.println(shapes[1] instanceof Shape);
        Rect r = (Rect) shapes[1];
        System.out.println(r.perimeter());
    }
}`)
	want := "square:16\nrect:10\nblob:0\n26\ntrue\nfalse\ntrue\n14\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestInterfaces(t *testing.T) {
	out := runNative(t, `
interface Speaker {
    String speak();
}

class Dog implements Speaker {
    public String speak() { return "woof"; }
}

class Cat implements Speaker {
    public String speak() { return "meow"; }
}

public class Main {
    public static void main(String[] args) {
        Speaker[] animals = new Speaker[2];
        animals[0] = new Dog();
        animals[1] = new Cat();
        for (int i = 0; i < animals.length; i++) {
            System.out.println(animals[i].speak());
        }
    }
}`)
	if out != "woof\nmeow\n" {
		t.Errorf("out = %q", out)
	}
}

func TestExceptions(t *testing.T) {
	out := runNative(t, `
public class Main {
    static int divide(int a, int b) {
        return a / b;
    }
    public static void main(String[] args) {
        try {
            divide(1, 0);
            System.out.println("unreached");
        } catch (ArithmeticException e) {
            System.out.println("caught: " + e.getMessage());
        }
        try {
            int[] a = new int[2];
            a[5] = 1;
        } catch (ArrayIndexOutOfBoundsException e) {
            System.out.println("bounds");
        }
        try {
            Object o = "str";
            StringBuilder sb = (StringBuilder) o;
        } catch (ClassCastException e) {
            System.out.println("cast");
        }
        try {
            String s = null;
            s.length();
        } catch (NullPointerException e) {
            System.out.println("npe");
        }
        try {
            throw new IllegalStateException("custom");
        } catch (RuntimeException e) {
            System.out.println(e.getMessage());
        }
        System.out.println("done");
    }
}`)
	want := "caught: / by zero\nbounds\ncast\nnpe\ncustom\ndone\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestFinallyAndJsr(t *testing.T) {
	out := runNative(t, `
public class Main {
    static StringBuilder log = new StringBuilder();

    static int work(int mode) {
        try {
            log.append("t");
            if (mode == 1) {
                throw new RuntimeException("boom");
            }
            if (mode == 2) {
                return 2;
            }
            log.append("b");
        } catch (RuntimeException e) {
            log.append("c");
            return 1;
        } finally {
            log.append("f");
        }
        return 0;
    }

    public static void main(String[] args) {
        System.out.println(work(0) + " " + log.toString());
        log = new StringBuilder();
        System.out.println(work(1) + " " + log.toString());
        log = new StringBuilder();
        System.out.println(work(2) + " " + log.toString());
    }
}`)
	want := "0 tbf\n1 tcf\n2 tf\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestStringsAndBuilder(t *testing.T) {
	out := runNative(t, `
public class Main {
    public static void main(String[] args) {
        String s = "hello" + " " + "world";
        System.out.println(s.length());
        System.out.println(s.substring(6));
        System.out.println(s.indexOf("wor"));
        System.out.println(s.charAt(4));
        System.out.println(s.toUpperCase());
        System.out.println("abc".equals("abc"));
        System.out.println("abc".equals("abd"));
        System.out.println("a" + 1 + 2L + true + 'x' + 1.5);
        String t = "  trim  ";
        System.out.println("[" + t.trim() + "]");
        StringBuilder b = new StringBuilder();
        for (int i = 0; i < 5; i++) {
            b.append(i).append(',');
        }
        System.out.println(b.toString());
        System.out.println(new StringBuilder("dlrow").reverse().toString());
        System.out.println("hello".compareTo("help"));
        String u = "x";
        u += "y";
        u += 3;
        System.out.println(u);
    }
}`)
	want := "11\nworld\n6\no\nHELLO WORLD\ntrue\nfalse\na12truex1.5\n[trim]\n0,1,2,3,4,\nworld\n-4\nxy3\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestStaticsAndClinit(t *testing.T) {
	out := runNative(t, `
class Counter {
    static int count = 10;
    static String tag;
    static {
        tag = "initialized";
        count = count + 5;
    }
    static int bump() { return ++count; }
}

public class Main {
    public static void main(String[] args) {
        System.out.println(Counter.tag);
        System.out.println(Counter.count);
        System.out.println(Counter.bump());
        System.out.println(Counter.count);
    }
}`)
	want := "initialized\n15\n16\n16\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestArraysMultiDim(t *testing.T) {
	out := runNative(t, `
public class Main {
    public static void main(String[] args) {
        int[][] grid = new int[3][4];
        for (int i = 0; i < 3; i++) {
            for (int j = 0; j < 4; j++) {
                grid[i][j] = i * 10 + j;
            }
        }
        System.out.println(grid[2][3]);
        System.out.println(grid.length + " " + grid[0].length);
        long[] longs = new long[2];
        longs[1] = 1L << 40;
        System.out.println(longs[1]);
        char[] chars = new char[3];
        chars[0] = 'a';
        chars[1] = 'b';
        chars[2] = 'c';
        System.out.println(new String(chars));
        byte[] bytes = new byte[2];
        bytes[0] = (byte) 200;
        System.out.println(bytes[0]);
        double[][][] cube = new double[2][2][2];
        cube[1][1][1] = 8.5;
        System.out.println(cube[1][1][1]);
    }
}`)
	want := "23\n3 4\n1099511627776\nabc\n-56\n8.5\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestIncDecAndCompound(t *testing.T) {
	out := runNative(t, `
public class Main {
    static int sf = 5;
    int f = 3;
    public static void main(String[] args) {
        int i = 10;
        System.out.println(i++);
        System.out.println(i);
        System.out.println(--i);
        int[] a = new int[3];
        a[1] = 7;
        System.out.println(a[1]++);
        System.out.println(a[1]);
        System.out.println(sf++);
        System.out.println(sf);
        Main m = new Main();
        m.f += 4;
        System.out.println(m.f--);
        System.out.println(m.f);
        long j = 5L;
        j++;
        System.out.println(j);
        int x = 3;
        x <<= 2;
        x |= 1;
        System.out.println(x);
        x %= 5;
        System.out.println(x);
    }
}`)
	want := "10\n11\n10\n7\n8\n5\n6\n7\n6\n6\n13\n3\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestRecursionFib(t *testing.T) {
	out := runNative(t, `
public class Main {
    static int fib(int n) {
        if (n < 2) {
            return n;
        }
        return fib(n - 1) + fib(n - 2);
    }
    public static void main(String[] args) {
        System.out.println(fib(20));
    }
}`)
	if out != "6765\n" {
		t.Errorf("out = %q", out)
	}
}

func TestCollections(t *testing.T) {
	out := runNative(t, `
import java.util.ArrayList;
import java.util.HashMap;

public class Main {
    public static void main(String[] args) {
        ArrayList list = new ArrayList();
        for (int i = 0; i < 20; i++) {
            list.add(Integer.valueOf(i * i));
        }
        System.out.println(list.size());
        System.out.println(((Integer) list.get(7)).intValue());
        list.remove(0);
        System.out.println(((Integer) list.get(0)).intValue());

        HashMap map = new HashMap();
        for (int i = 0; i < 50; i++) {
            map.put("key" + i, Integer.valueOf(i));
        }
        System.out.println(map.size());
        System.out.println(((Integer) map.get("key31")).intValue());
        System.out.println(map.containsKey("key49"));
        System.out.println(map.containsKey("missing"));
        map.remove("key31");
        System.out.println(map.get("key31") == null);
    }
}`)
	want := "20\n49\n1\n50\n31\ntrue\nfalse\ntrue\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestThreadsAndMonitors(t *testing.T) {
	out := runNative(t, `
class Adder extends Thread {
    static Object lock = new Object();
    static int total = 0;
    int amount;
    Adder(int amount) { this.amount = amount; }
    public void run() {
        for (int i = 0; i < 100; i++) {
            synchronized (lock) {
                total = total + amount;
            }
        }
    }
}

public class Main {
    public static void main(String[] args) {
        Adder a = new Adder(1);
        Adder b = new Adder(10);
        a.start();
        b.start();
        a.join();
        b.join();
        System.out.println(Adder.total);
    }
}`)
	if out != "1100\n" {
		t.Errorf("out = %q", out)
	}
}

func TestWaitNotify(t *testing.T) {
	out := runNative(t, `
class Box {
    Object lock = new Object();
    int value;
    boolean full;

    void put(int v) {
        synchronized (lock) {
            while (full) {
                lock.wait();
            }
            value = v;
            full = true;
            lock.notifyAll();
        }
    }

    int take() {
        synchronized (lock) {
            while (!full) {
                lock.wait();
            }
            full = false;
            lock.notifyAll();
            return value;
        }
    }
}

class Producer extends Thread {
    Box box;
    Producer(Box box) { this.box = box; }
    public void run() {
        for (int i = 1; i <= 5; i++) {
            box.put(i);
        }
    }
}

public class Main {
    public static void main(String[] args) {
        Box box = new Box();
        Producer p = new Producer(box);
        p.start();
        int sum = 0;
        for (int i = 0; i < 5; i++) {
            sum += box.take();
        }
        System.out.println(sum);
    }
}`)
	if out != "15\n" {
		t.Errorf("out = %q", out)
	}
}

func TestUnsafeEndianness(t *testing.T) {
	out := runNative(t, `
import sun.misc.Unsafe;

public class Main {
    public static void main(String[] args) {
        Unsafe u = Unsafe.getUnsafe();
        long addr = u.allocateMemory(16L);
        u.putInt(addr, 12345678);
        System.out.println(u.getInt(addr));
        u.putDouble(addr + 8L, 2.5);
        System.out.println(u.getDouble(addr + 8L));
        u.freeMemory(addr);
        // The heap is little endian, as in the paper (section 5.2).
        System.out.println(u.isBigEndian());
    }
}`)
	want := "12345678\n2.5\nfalse\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestUncaughtException(t *testing.T) {
	out, err := runNativeErr(t, `
public class Main {
    public static void main(String[] args) {
        throw new RuntimeException("fatal");
    }
}`)
	if err == nil {
		t.Fatalf("expected error, got output %q", out)
	}
	if !strings.Contains(err.Error(), "fatal") {
		t.Errorf("err = %v", err)
	}
}

func TestStringHashCodeAndIntern(t *testing.T) {
	out := runNative(t, `
public class Main {
    public static void main(String[] args) {
        // The classic String.hashCode algorithm.
        System.out.println("hello".hashCode());
        String a = "abc";
        String b = new StringBuilder("ab").append('c').toString();
        System.out.println(a == b); // distinct objects, as in Java
        System.out.println(a.equals(b));
        System.out.println(a == b.intern());
    }
}`)
	want := "99162322\nfalse\ntrue\ntrue\n"
	// "hello".hashCode() in Java is 99162322.
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestMainArgs(t *testing.T) {
	out := runNative(t, `
public class Main {
    public static void main(String[] args) {
        System.out.println(args.length);
        for (int i = 0; i < args.length; i++) {
            System.out.println(args[i]);
        }
    }
}`, "first", "second")
	if out != "2\nfirst\nsecond\n" {
		t.Errorf("out = %q", out)
	}
}

func TestRuntimeLibraryUtilities(t *testing.T) {
	out := runNative(t, `
public class Main {
    public static void main(String[] args) {
        System.out.println(Strings.repeat("ab", 3));
        String[] parts = new String[3];
        parts[0] = "x";
        parts[1] = "y";
        parts[2] = "z";
        System.out.println(Strings.join(",", parts));
        System.out.println(Math.round(2.5));
        System.out.println(Math.round(-2.5));
        System.out.println(Math.min(3L, -4L));
        System.out.println(Character.digit('f', 16));
        System.out.println(Character.digit('9', 8));
        System.out.println(Integer.toString(255, 16));
        System.out.println(Integer.toHexString(-1));
        System.out.println(Boolean.valueOf(true).hashCode());
        System.out.println(Double.isNaN(0.0 / 0.0));
        System.out.println(Double.parseDouble("2.5") * 2.0);
        System.out.println("a,b,,c".indexOf(",", 2));
        System.out.println("hello world".replace('o', '0'));
        System.out.println("abc".startsWith("ab"));
        System.out.println("abc".endsWith("bc"));
        System.out.println("".isEmpty());
    }
}`)
	want := "ababab\nx,y,z\n3\n-2\n-4\n15\n-1\nff\nffffffff\n1231\ntrue\n5.0\n3\nhell0 w0rld\ntrue\ntrue\ntrue\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

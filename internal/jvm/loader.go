package jvm

import (
	"fmt"
	"time"

	"doppio/internal/classfile"
)

// SyncProvider supplies class file bytes synchronously (the native
// engine's class path).
type SyncProvider interface {
	Bytes(internalName string) ([]byte, error)
}

// AsyncProvider supplies class file bytes asynchronously — the Doppio
// class path, backed by the Doppio file system so that class files
// download on demand (§6.4).
type AsyncProvider interface {
	BytesAsync(internalName string, cb func([]byte, error))
}

// MapProvider serves classes from memory; it satisfies both provider
// interfaces.
type MapProvider map[string][]byte

// Bytes returns the class bytes or an error.
func (m MapProvider) Bytes(name string) ([]byte, error) {
	b, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("jvm: class not found: %s", name)
	}
	return b, nil
}

// BytesAsync returns the class bytes via cb (synchronously).
func (m MapProvider) BytesAsync(name string, cb func([]byte, error)) {
	cb(m.Bytes(name))
}

// ClassNotFoundError marks a missing class; engines convert it into
// java/lang/ClassNotFoundException.
type ClassNotFoundError struct{ Name string }

func (e *ClassNotFoundError) Error() string { return "jvm: class not found: " + e.Name }

// Registry holds loaded classes shared by the loading strategies.
type Registry struct {
	classes map[string]*Class
}

// NewRegistry creates an empty class registry.
func NewRegistry() *Registry { return &Registry{classes: make(map[string]*Class)} }

// Get returns an already-loaded, fully linked class, or nil. Classes
// the async loader has registered but not yet linked (their Super is
// still being chained in) are hidden: an engine probing mid-load sees
// "not loaded" and takes its normal load path, joining the in-flight
// load's waiters instead of observing a half-linked hierarchy — which
// would otherwise poison the memoized field layouts.
func (r *Registry) Get(name string) *Class {
	c := r.classes[name]
	if c == nil || !c.linked {
		return nil
	}
	return c
}

// Loaded returns the number of loaded classes.
func (r *Registry) Loaded() int { return len(r.classes) }

// LoadedNames returns the names of all loaded classes.
func (r *Registry) LoadedNames() []string {
	out := make([]string, 0, len(r.classes))
	for n := range r.classes {
		out = append(out, n)
	}
	return out
}

// arrayClass synthesizes (or returns the cached) runtime class for an
// array type name such as "[I" or "[Ljava/lang/String;".
func (r *Registry) arrayClass(name string) (*Class, error) {
	if c := r.classes[name]; c != nil {
		return c, nil
	}
	object := r.classes["java/lang/Object"]
	if object == nil {
		return nil, fmt.Errorf("jvm: array class %s requested before java/lang/Object", name)
	}
	c := &Class{
		Name:     name,
		Super:    object,
		Flags:    classfile.AccPublic,
		Statics:  make(map[string]Slot),
		State:    StateInitialized,
		IsArray:  true,
		ElemDesc: name[1:],
		linked:   true,
	}
	c.Layout()
	r.classes[name] = c
	return c, nil
}

// SyncLoader loads classes recursively and synchronously.
type SyncLoader struct {
	Reg      *Registry
	Provider SyncProvider

	// loading marks classes whose hierarchy is being chained in right
	// now — a re-entrant request for one is a superclass/interface
	// cycle, which a valid compiler never emits but a malformed class
	// file can.
	loading map[string]bool
}

// Load returns the class, loading and linking it (and its supertypes)
// if needed. It does not run <clinit>; engines do that at first use.
func (l *SyncLoader) Load(name string) (*Class, error) {
	if c := l.Reg.Get(name); c != nil {
		return c, nil
	}
	if name == "" {
		return nil, fmt.Errorf("jvm: empty class name")
	}
	if name[0] == '[' {
		elem := name[1:]
		// Ensure the element class exists for reference elements.
		if len(elem) > 0 && elem[0] == 'L' {
			if _, err := l.Load(elem[1 : len(elem)-1]); err != nil {
				return nil, err
			}
		} else if len(elem) > 0 && elem[0] == '[' {
			if _, err := l.Load(elem); err != nil {
				return nil, err
			}
		}
		return l.Reg.arrayClass(name)
	}
	// The loading set rejects hierarchy cycles, which would otherwise
	// recurse forever now that Registry.Get hides unlinked classes.
	if l.loading[name] {
		return nil, fmt.Errorf("jvm: circular class hierarchy at %s", name)
	}
	data, err := l.Provider.Bytes(name)
	if err != nil {
		return nil, &ClassNotFoundError{Name: name}
	}
	cf, err := classfile.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("jvm: defining %s: %w", name, err)
	}
	if cf.Name() != name {
		return nil, fmt.Errorf("jvm: class file for %s declares name %s", name, cf.Name())
	}
	c, err := buildRuntime(cf)
	if err != nil {
		return nil, err
	}
	// Register before linking supertypes so self-references (e.g.
	// Object's methods) resolve.
	if l.loading == nil {
		l.loading = make(map[string]bool)
	}
	l.loading[name] = true
	defer delete(l.loading, name)
	l.Reg.classes[name] = c
	if super := cf.SuperName(); super != "" {
		sc, err := l.Load(super)
		if err != nil {
			return nil, err
		}
		c.Super = sc
	}
	for _, iname := range cf.InterfaceNames() {
		ic, err := l.Load(iname)
		if err != nil {
			return nil, err
		}
		c.Interfaces = append(c.Interfaces, ic)
	}
	// Link complete: publish the class and fix its field layout.
	c.linked = true
	c.Layout()
	return c, nil
}

// AsyncLoader loads classes through an asynchronous provider,
// chaining the supertype loads through callbacks — the §6.4 dynamic
// download path.
type AsyncLoader struct {
	Reg      *Registry
	Provider AsyncProvider

	// Observe, when set, is called with the wall time of every fresh
	// (non-cached) class load — the §6.4 download-and-define latency.
	Observe func(name string, took time.Duration)

	// LoadsInFlight guards against duplicate concurrent loads.
	pending map[string][]func(*Class, error)
}

// NewAsyncLoader creates an async loader over the registry.
func NewAsyncLoader(reg *Registry, p AsyncProvider) *AsyncLoader {
	return &AsyncLoader{Reg: reg, Provider: p, pending: make(map[string][]func(*Class, error))}
}

// Load delivers the loaded, linked class via cb.
func (l *AsyncLoader) Load(name string, cb func(*Class, error)) {
	l.load(name, cb, nil)
}

// load is Load with the dependency chain threaded through: chain
// holds the classes whose supertype resolution is in progress above
// this request, so a hierarchy cycle (A extends B extends A) errors
// instead of deadlocking in the pending-waiter queue.
func (l *AsyncLoader) load(name string, cb func(*Class, error), chain map[string]bool) {
	if c := l.Reg.Get(name); c != nil {
		cb(c, nil)
		return
	}
	if name == "" {
		cb(nil, fmt.Errorf("jvm: empty class name"))
		return
	}
	if chain[name] {
		cb(nil, fmt.Errorf("jvm: circular class hierarchy at %s", name))
		return
	}
	if name[0] == '[' {
		elem := name[1:]
		finish := func(err error) {
			if err != nil {
				cb(nil, err)
				return
			}
			cb(l.Reg.arrayClass(name))
		}
		switch {
		case len(elem) > 0 && elem[0] == 'L':
			l.load(elem[1:len(elem)-1], func(_ *Class, err error) { finish(err) }, chain)
		case len(elem) > 0 && elem[0] == '[':
			l.load(elem, func(_ *Class, err error) { finish(err) }, chain)
		default:
			finish(nil)
		}
		return
	}
	if waiters, inFlight := l.pending[name]; inFlight {
		l.pending[name] = append(waiters, cb)
		return
	}
	l.pending[name] = []func(*Class, error){cb}
	loadStart := time.Now()
	finish := func(c *Class, err error) {
		if l.Observe != nil && err == nil {
			l.Observe(name, time.Since(loadStart))
		}
		waiters := l.pending[name]
		delete(l.pending, name)
		for _, w := range waiters {
			w(c, err)
		}
	}
	l.Provider.BytesAsync(name, func(data []byte, err error) {
		if err != nil {
			finish(nil, &ClassNotFoundError{Name: name})
			return
		}
		cf, perr := classfile.Parse(data)
		if perr != nil {
			finish(nil, fmt.Errorf("jvm: defining %s: %w", name, perr))
			return
		}
		if cf.Name() != name {
			finish(nil, fmt.Errorf("jvm: class file for %s declares name %s", name, cf.Name()))
			return
		}
		c, berr := buildRuntime(cf)
		if berr != nil {
			finish(nil, berr)
			return
		}
		l.Reg.classes[name] = c
		// Chain: super, then each interface. The class is registered
		// but stays hidden (unlinked) until the chain completes.
		deps := []string{}
		if super := cf.SuperName(); super != "" {
			deps = append(deps, super)
		}
		deps = append(deps, cf.InterfaceNames()...)
		sub := map[string]bool{name: true}
		for n := range chain {
			sub[n] = true
		}
		var step func(i int)
		step = func(i int) {
			if i == len(deps) {
				if super := cf.SuperName(); super != "" {
					c.Super = l.Reg.Get(super)
				}
				for _, iname := range cf.InterfaceNames() {
					c.Interfaces = append(c.Interfaces, l.Reg.Get(iname))
				}
				// Link complete: publish and fix the field layout.
				c.linked = true
				c.Layout()
				finish(c, nil)
				return
			}
			l.load(deps[i], func(_ *Class, err error) {
				if err != nil {
					finish(nil, err)
					return
				}
				step(i + 1)
			}, sub)
		}
		step(0)
	})
}

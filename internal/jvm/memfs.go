package jvm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// MemHostFS is a synchronous in-memory HostFS — the native engine's
// stand-in for a local disk when benchmarks must run hermetically.
type MemHostFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemHostFS creates an empty in-memory host file system.
func NewMemHostFS() *MemHostFS {
	return &MemHostFS{files: make(map[string][]byte)}
}

// Put seeds a file.
func (m *MemHostFS) Put(path string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[path] = append([]byte(nil), data...)
}

// Len reports the number of files.
func (m *MemHostFS) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.files)
}

// ReadFile reads a whole file.
func (m *MemHostFS) ReadFile(p string, cb func([]byte, error)) {
	m.mu.Lock()
	d, ok := m.files[p]
	m.mu.Unlock()
	if !ok {
		cb(nil, fmt.Errorf("memfs: not found: %s", p))
		return
	}
	cb(append([]byte(nil), d...), nil)
}

// WriteFile replaces a whole file.
func (m *MemHostFS) WriteFile(p string, d []byte, cb func(error)) {
	m.Put(p, d)
	cb(nil)
}

// Append appends to a file.
func (m *MemHostFS) Append(p string, d []byte, cb func(error)) {
	m.mu.Lock()
	m.files[p] = append(m.files[p], d...)
	m.mu.Unlock()
	cb(nil)
}

// Stat reports size and kind; directories are implied by prefixes.
func (m *MemHostFS) Stat(p string, cb func(int64, bool, bool)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d, ok := m.files[p]; ok {
		cb(int64(len(d)), false, true)
		return
	}
	prefix := strings.TrimSuffix(p, "/") + "/"
	for f := range m.files {
		if strings.HasPrefix(f, prefix) || p == "/" {
			cb(0, true, true)
			return
		}
	}
	cb(0, false, false)
}

// List names a directory's children.
func (m *MemHostFS) List(p string, cb func([]string, error)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(p, "/") + "/"
	if p == "/" {
		prefix = "/"
	}
	seen := map[string]bool{}
	for f := range m.files {
		if !strings.HasPrefix(f, prefix) {
			continue
		}
		rest := f[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		if rest != "" {
			seen[rest] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	cb(names, nil)
}

// Delete removes a file.
func (m *MemHostFS) Delete(p string, cb func(error)) {
	m.mu.Lock()
	delete(m.files, p)
	m.mu.Unlock()
	cb(nil)
}

// Mkdir is a no-op (directories are implicit).
func (m *MemHostFS) Mkdir(p string, cb func(error)) { cb(nil) }

// Rename moves a file.
func (m *MemHostFS) Rename(a, b string, cb func(error)) {
	m.mu.Lock()
	if d, ok := m.files[a]; ok {
		m.files[b] = d
		delete(m.files, a)
	}
	m.mu.Unlock()
	cb(nil)
}

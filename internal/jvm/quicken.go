package jvm

import "doppio/internal/classfile"

// This file is the warm-up rewriter shared by both engines: bytecode
// quickening, monomorphic inline caches, and superinstruction fusion
// (ROADMAP item 2, following the "Not So Fast" attribution
// methodology).
//
// The original bytecode is never mutated. Each method instead grows a
// side-table of QuickOps indexed by pc: on the first successful
// generic resolution of a getfield/putfield/getstatic/putstatic/
// invoke* the executing engine installs a quickened form carrying the
// direct field offset or resolved target, and every later visit to
// that pc dispatches on the side-table entry instead of re-resolving
// through the constant pool. Keeping the bytecode intact means the
// un-quickened paper-fidelity path (-jvm-quicken=false) executes the
// byte-identical program, branch offsets and exception ranges stay
// valid without relocation, and a deopted site simply falls back to
// the generic handler that is still there.

// QuickKind enumerates the quickened instruction forms.
type QuickKind uint8

// Quickened forms. The Q*field/Q*static/QInvoke* kinds replace one
// generic instruction; QAloadGetfield, QIloadIadd, QGetfieldIfeq and
// QIloadIfIcmplt are fused superinstructions replacing an adjacent
// pair.
const (
	QNone QuickKind = iota
	QGetfield
	QPutfield
	QGetstatic
	QPutstatic
	QInvokeVirtual // also invokeinterface: receiver-polymorphic, IC-cached
	QInvokeSpecial
	QInvokeStatic
	QAloadGetfield // aload_N/aload ; getfield_q
	QIloadIadd     // iload_N/iload ; iadd
	QGetfieldIfeq  // getfield_q ; ifeq (int-family field, zero test)
	QIloadIfIcmplt // iload_N/iload ; if_icmplt

	// Pre-decoded simple forms, installed in one pass over a warm
	// method's bytecode (predecode). They carry fully decoded operands
	// (local index, absolute branch target, preboxed constant), so a
	// run of consecutive entries executes in a tight inner loop with
	// no per-instruction operand decoding.
	QLoad   // single-slot load: push locals[A]
	QLoad2  // two-slot load (lload/dload): push locals[A] plus a pad
	QStore  // single-slot store: locals[A] = pop
	QStore2 // two-slot store: pop the pad, then locals[A] = pop
	QConst  // push the preboxed constant K
	QGoto   // pc = A (absolute)
	QIf     // pop an int, compare against zero per Op, branch to A
	QIfICmp // pop two ints, compare per Op, branch to A
	QIfACmp // pop two refs, eq/ne per Op, branch to A
	QIfNull // pop a ref, null-test per Op, branch to A
	QArith  // pop two ints, combine per Op (non-throwing ops only)
	QIinc   // locals[A] += Offset (wrapping int32)
	QDup    // duplicate the top stack slot
	QPop    // discard the top stack slot
	QReturn // method return; Desc holds the return descriptor
)

// qDeepFirst marks the start of the pre-decoded simple forms. The
// kinds below it are installed lazily by both engines; the deep forms
// are produced by predecode and executed only by the Doppio engine's
// inner loop (the native engine's typed frames run those pcs through
// the generic handlers).
const qDeepFirst = QLoad

// icMissLimit is how many inline-cache misses a virtual call site
// absorbs before it is declared megamorphic and stops updating its
// cache (it still dispatches through the quickened FindMethod path,
// just without the monomorphic fast hit).
const icMissLimit = 8

// fusionWarmup is the per-method invocation count after which the
// superinstruction fusion pass first runs, and fusionHot is how many
// dynamic executions an adjacent opcode pair needs (per-VM attribution
// counters) before it is considered worth fusing. A method whose first
// pass ran before the pair counters warmed up gets one retry at
// fusionRetry calls; only then does it stop feeding the counters.
const (
	fusionWarmup = 16
	fusionRetry  = 512
	fusionHot    = 64
)

// QuickOp is one quickened instruction in a method's side table.
type QuickOp struct {
	Kind QuickKind
	// Op is the raw opcode this entry replaces (the first of the pair
	// for fused forms): the attribution counters key on it, and the
	// QIf/QArith families dispatch their sub-operation on it.
	Op byte

	// A is the local-variable index of the fused load prefix and the
	// QLoad/QStore/QIinc forms, or the absolute branch target of the
	// QGoto/QIf* forms.
	A int32
	// Offset is the instance-slot index for Q{Getfield,Putfield,
	// AloadGetfield} — inheritance-stable thanks to the superclass-
	// prefix field layout.
	Offset int32
	// Wide marks long/double fields (the engines pad the operand
	// stack with a second slot).
	Wide bool
	// Desc is the field descriptor (the Doppio engine's JS-value
	// conversions key on it).
	Desc string
	// K is the preboxed QConst value in the Doppio engine's JS value
	// representation (nil for aconst_null).
	K interface{}
	// Field is the resolved field, for statics and stats.
	Field *Field
	// Method is the resolved target: the direct target for
	// invokestatic/invokespecial, the resolved declaration (name+desc
	// holder) for invokevirtual/interface.
	Method *Method
	// Len is the byte length of the instruction(s) this entry
	// replaces — the fused forms cover two.
	Len int32

	// Monomorphic inline cache for QInvokeVirtual, keyed on the
	// receiver's class pointer.
	ICClass  *Class
	ICMethod *Method
	// Misses counts IC misses at this site; past icMissLimit the
	// site is megamorphic and ICClass stays nil.
	Misses int32
}

// QuickTable is a method's quickening side table, allocated lazily on
// the first installed site.
type QuickTable struct {
	// Ops is indexed by bytecode pc; untouched pcs hold QNone.
	Ops []QuickOp
	// packed mirrors each entry's hot dispatch fields in one word —
	// kind, raw opcode, length, a small immediate, and the A operand —
	// so the Doppio engine's inner loop pays a single memory read per
	// instruction instead of one per field (which matters doubly under
	// the race detector's per-access instrumentation). Kept in sync by
	// pack(); zero means QNone.
	packed []uint64

	calls  int32 // invocations since allocation, for fusion warm-up
	passes int8  // fusion passes run so far (two max)
	fused  bool  // fusion finished; pair attribution stops feeding
}

// quickTable returns the method's side table, allocating it on first
// use.
func (m *Method) quickTable() *QuickTable {
	if m.quick == nil {
		m.quick = &QuickTable{
			Ops:    make([]QuickOp, len(m.Code.Bytecode)),
			packed: make([]uint64, len(m.Code.Bytecode)),
		}
	}
	return m.quick
}

// Packed-word layout: bits 0-7 kind, 8-15 raw opcode, 16-23 length,
// 24-31 small immediate (the iinc delta), 32-63 the A operand.
const (
	packOpShift  = 8
	packLenShift = 16
	packImmShift = 24
	packAShift   = 32
	packKindMask = 0xff
)

// pack mirrors Ops[pc] into its packed dispatch word.
func (qt *QuickTable) pack(pc int) {
	e := &qt.Ops[pc]
	qt.packed[pc] = uint64(e.Kind) |
		uint64(e.Op)<<packOpShift |
		uint64(uint8(e.Len))<<packLenShift |
		uint64(uint8(e.Offset))<<packImmShift |
		uint64(uint32(e.A))<<packAShift
}

// noteCall bumps the invocation counter and reports whether the
// fusion pass should run now: once at fusionWarmup calls and, if the
// pair counters were still cold then, once more at fusionRetry.
func (qt *QuickTable) noteCall() bool {
	if qt.fused {
		return false
	}
	qt.calls++
	if qt.passes == 0 {
		return qt.calls >= fusionWarmup
	}
	return qt.calls >= fusionRetry
}

// QuickStats is one engine's quickening counters, surfaced through
// /debug/jvm and the post-mortem report.
type QuickStats struct {
	Enabled   bool  `json:"enabled"`
	Sites     int64 `json:"sites"`      // quickened sites installed
	ICHits    int64 `json:"ic_hits"`    // monomorphic fast-path dispatches
	ICMisses  int64 `json:"ic_misses"`  // cache repoints
	Deopts    int64 `json:"deopts"`     // sites gone megamorphic
	Fusions   int64 `json:"fusions"`    // fused superinstruction sites
	FusedExec int64 `json:"fused_exec"` // fused-form executions
}

// QuickStatser is implemented by engines that expose quickening
// counters (the ops layer feeds them into /debug/jvm).
type QuickStatser interface {
	QuickStats() QuickStats
}

// installFieldQuick records a quickened instance-field access at pc.
// No-op (returns false) when the resolved field is static or the
// offset is unassigned — those sites stay generic.
func installFieldQuick(m *Method, pc int, kind QuickKind, fld *Field, st *QuickStats) bool {
	if fld == nil || fld.IsStatic() || fld.Offset < 0 {
		return false
	}
	qt := m.quickTable()
	if qt.Ops[pc].Kind != QNone {
		return true
	}
	qt.Ops[pc] = QuickOp{
		Kind:   kind,
		Op:     m.Code.Bytecode[pc],
		Offset: int32(fld.Offset),
		Wide:   fld.Desc == "J" || fld.Desc == "D",
		Desc:   fld.Desc,
		Field:  fld,
		Len:    int32(classfile.InstrLen(m.Code.Bytecode, pc)),
	}
	qt.pack(pc)
	st.Sites++
	return true
}

// installStaticQuick records a quickened static-field access at pc.
// Callers must only install once the declaring class is initialized —
// the generic handler owns the init-and-reexecute dance.
func installStaticQuick(m *Method, pc int, kind QuickKind, fld *Field, st *QuickStats) bool {
	if fld == nil || !fld.IsStatic() || fld.Class.State != StateInitialized {
		return false
	}
	qt := m.quickTable()
	if qt.Ops[pc].Kind != QNone {
		return true
	}
	qt.Ops[pc] = QuickOp{
		Kind:  kind,
		Op:    m.Code.Bytecode[pc],
		Wide:  fld.Desc == "J" || fld.Desc == "D",
		Desc:  fld.Desc,
		Field: fld,
		Len:   int32(classfile.InstrLen(m.Code.Bytecode, pc)),
	}
	qt.pack(pc)
	st.Sites++
	return true
}

// installInvokeQuick records a quickened call site at pc. For
// QInvokeStatic the declaring class must already be initialized. For
// QInvokeVirtual, target is the resolved declaration and the IC
// starts cold (first execution primes it).
func installInvokeQuick(m *Method, pc int, kind QuickKind, target *Method, st *QuickStats) bool {
	if target == nil {
		return false
	}
	if kind == QInvokeStatic && target.Class.State != StateInitialized {
		return false
	}
	qt := m.quickTable()
	if qt.Ops[pc].Kind != QNone {
		return true
	}
	qt.Ops[pc] = QuickOp{
		Kind:   kind,
		Op:     m.Code.Bytecode[pc],
		Method: target,
		Len:    int32(classfile.InstrLen(m.Code.Bytecode, pc)),
	}
	qt.pack(pc)
	st.Sites++
	return true
}

// icLookup dispatches a quickened virtual call through the site's
// monomorphic inline cache, repointing it on miss and freezing it
// megamorphic after icMissLimit misses. Returns nil when the receiver
// class has no matching method (the caller raises the error the
// generic path would).
func icLookup(op *QuickOp, recv *Class, st *QuickStats) *Method {
	if op.ICClass == recv {
		st.ICHits++
		return op.ICMethod
	}
	target := recv.FindMethod(op.Method.Name, op.Method.Desc)
	if target == nil {
		return nil
	}
	if op.Misses > icMissLimit {
		// Megamorphic: stop touching the cache.
		return target
	}
	st.ICMisses++
	op.Misses++
	if op.Misses > icMissLimit {
		st.Deopts++
		op.ICClass, op.ICMethod = nil, nil
		return target
	}
	op.ICClass, op.ICMethod = recv, target
	return target
}

// pairKey packs two adjacent raw opcodes into an attribution-counter
// index.
func pairKey(prev, op byte) uint16 { return uint16(prev)<<8 | uint16(op) }

// aloadIndex decodes an aload/aload_N opcode's local index, or -1.
func aloadIndex(code []byte, pc int) int {
	op := code[pc]
	switch {
	case op >= classfile.OpAload0 && op <= classfile.OpAload3:
		return int(op - classfile.OpAload0)
	case op == classfile.OpAload:
		return int(code[pc+1])
	}
	return -1
}

// intishDesc reports whether a field descriptor is a single-slot
// int-family type — the kinds an ifeq can test directly.
func intishDesc(d string) bool {
	switch d {
	case "I", "Z", "B", "C", "S":
		return true
	}
	return false
}

// iloadIndex decodes an iload/iload_N opcode's local index, or -1.
func iloadIndex(code []byte, pc int) int {
	op := code[pc]
	switch {
	case op >= classfile.OpIload0 && op <= classfile.OpIload3:
		return int(op - classfile.OpIload0)
	case op == classfile.OpIload:
		return int(code[pc+1])
	}
	return -1
}

// fuse runs the warm-up rewrite over one method: the superinstruction
// pass (adjacent pairs that the VM's dynamic attribution counters show
// to be hot, and whose semantics we have a fused form for, collapse
// into a single side-table entry at the first instruction's pc), then,
// when deep is set, the predecode pass. A fused entry's second pc is
// left in place, so branches that land between the two halves still
// execute the unfused form — fusion needs no branch-target analysis to
// stay safe.
func (qt *QuickTable) fuse(m *Method, pairs *[65536]int64, st *QuickStats, deep bool) {
	qt.passes++
	if qt.passes >= 2 || pairs == nil {
		qt.fused = true
	}
	code := m.Code.Bytecode
	for pc := 0; pairs != nil && pc < len(code); {
		ln := classfile.InstrLen(code, pc)
		pc2 := pc + ln
		if pc2 >= len(code) {
			pc = pc2
			continue
		}
		k := qt.Ops[pc].Kind
		if k == QGetfield {
			// A quickened getfield whose value feeds a hot ifeq (flag
			// tests, null-sentinel ints) fuses into QGetfieldIfeq.
			// Only the single-slot int family fuses — ifeq pops an
			// int, so the fused handler can test the raw slot without
			// the push/pop round trip.
			g := qt.Ops[pc]
			if !g.Wide && code[pc2] == classfile.OpIfeq && intishDesc(g.Desc) &&
				pairs[pairKey(code[pc], code[pc2])] >= fusionHot {
				qt.Ops[pc] = QuickOp{
					Kind:   QGetfieldIfeq,
					Op:     code[pc],
					A:      int32(pc2 + int(i16(code, pc2+1))),
					Offset: g.Offset,
					Desc:   g.Desc,
					Field:  g.Field,
					Len:    g.Len + 3,
				}
				qt.pack(pc)
				st.Fusions++
			}
			pc = pc2
			continue
		}
		// A retry pass may overwrite its own predecoded QLoad at the
		// pair's first pc; anything else installed there stays.
		if k != QNone && k != QLoad {
			pc = pc2
			continue
		}
		if idx := aloadIndex(code, pc); idx >= 0 {
			g := &qt.Ops[pc2]
			if g.Kind == QGetfield && pairs[pairKey(code[pc], code[pc2])] >= fusionHot {
				qt.Ops[pc] = QuickOp{
					Kind:   QAloadGetfield,
					Op:     code[pc],
					A:      int32(idx),
					Offset: g.Offset,
					Wide:   g.Wide,
					Desc:   g.Desc,
					Field:  g.Field,
					Len:    int32(ln) + g.Len,
				}
				qt.pack(pc)
				st.Fusions++
			}
		} else if idx := iloadIndex(code, pc); idx >= 0 {
			if code[pc2] == classfile.OpIadd && pairs[pairKey(code[pc], code[pc2])] >= fusionHot {
				qt.Ops[pc] = QuickOp{
					Kind: QIloadIadd,
					Op:   code[pc],
					A:    int32(idx),
					Len:  int32(ln) + 1,
				}
				qt.pack(pc)
				st.Fusions++
			} else if code[pc2] == classfile.OpIfIcmplt && pairs[pairKey(code[pc], code[pc2])] >= fusionHot {
				// The classic counted-loop backedge: iload of the
				// bound then if_icmplt. The branch target does not fit
				// the packed immediate, so handlers read it from the
				// full entry's Offset.
				qt.Ops[pc] = QuickOp{
					Kind:   QIloadIfIcmplt,
					Op:     code[pc],
					A:      int32(idx),
					Offset: int32(pc2 + int(i16(code, pc2+1))),
					Len:    int32(ln) + 3,
				}
				qt.pack(pc)
				st.Fusions++
			}
		}
		pc = pc2
	}
	if deep {
		qt.predecode(m)
	}
}

// predecode walks a warm method's bytecode and installs pre-decoded
// simple forms at every remaining generic pc whose opcode has one:
// loads, stores, small constants, non-throwing int arithmetic,
// branches, iinc, dup, pop and returns. With the hot field and call
// sites already quickened lazily, a warm method then runs long
// stretches entirely out of the side table, which the Doppio engine
// executes in a tight inner loop without the outer dispatch
// bookkeeping. Throwing forms (idiv/irem, array accesses),
// wide-prefixed forms, switches and ldc (which may trigger class
// loading) stay generic on purpose.
func (qt *QuickTable) predecode(m *Method) {
	code := m.Code.Bytecode
	for pc := 0; pc < len(code); {
		ln := classfile.InstrLen(code, pc)
		if qt.Ops[pc].Kind != QNone {
			pc += ln
			continue
		}
		op := code[pc]
		q := QuickOp{Op: op, Len: int32(ln)}
		switch {
		case op >= classfile.OpIload0 && op <= classfile.OpIload3:
			q.Kind, q.A = QLoad, int32(op-classfile.OpIload0)
		case op >= classfile.OpFload0 && op <= classfile.OpFload3:
			q.Kind, q.A = QLoad, int32(op-classfile.OpFload0)
		case op >= classfile.OpAload0 && op <= classfile.OpAload3:
			q.Kind, q.A = QLoad, int32(op-classfile.OpAload0)
		case op == classfile.OpIload || op == classfile.OpFload || op == classfile.OpAload:
			q.Kind, q.A = QLoad, int32(code[pc+1])
		case op >= classfile.OpLload0 && op <= classfile.OpLload3:
			q.Kind, q.A = QLoad2, int32(op-classfile.OpLload0)
		case op >= classfile.OpDload0 && op <= classfile.OpDload3:
			q.Kind, q.A = QLoad2, int32(op-classfile.OpDload0)
		case op == classfile.OpLload || op == classfile.OpDload:
			q.Kind, q.A = QLoad2, int32(code[pc+1])
		case op >= classfile.OpIstore0 && op <= classfile.OpIstore3:
			q.Kind, q.A = QStore, int32(op-classfile.OpIstore0)
		case op >= classfile.OpFstore0 && op <= classfile.OpFstore3:
			q.Kind, q.A = QStore, int32(op-classfile.OpFstore0)
		case op >= classfile.OpAstore0 && op <= classfile.OpAstore3:
			q.Kind, q.A = QStore, int32(op-classfile.OpAstore0)
		case op == classfile.OpIstore || op == classfile.OpFstore || op == classfile.OpAstore:
			q.Kind, q.A = QStore, int32(code[pc+1])
		case op >= classfile.OpLstore0 && op <= classfile.OpLstore3:
			q.Kind, q.A = QStore2, int32(op-classfile.OpLstore0)
		case op >= classfile.OpDstore0 && op <= classfile.OpDstore3:
			q.Kind, q.A = QStore2, int32(op-classfile.OpDstore0)
		case op == classfile.OpLstore || op == classfile.OpDstore:
			q.Kind, q.A = QStore2, int32(code[pc+1])
		case op == classfile.OpAconstNull:
			q.Kind = QConst // K stays nil
		case op >= classfile.OpIconstM1 && op <= classfile.OpIconst5:
			q.Kind, q.K = QConst, boxI(int32(op)-classfile.OpIconst0)
		case op >= classfile.OpFconst0 && op <= classfile.OpFconst2:
			q.Kind, q.K = QConst, float64(op-classfile.OpFconst0)
		case op == classfile.OpBipush:
			q.Kind, q.K = QConst, boxI(int32(int8(code[pc+1])))
		case op == classfile.OpSipush:
			q.Kind, q.K = QConst, boxI(int32(i16(code, pc+1)))
		case op == classfile.OpGoto:
			q.Kind, q.A = QGoto, int32(pc+int(i16(code, pc+1)))
		case op >= classfile.OpIfeq && op <= classfile.OpIfle:
			q.Kind, q.A = QIf, int32(pc+int(i16(code, pc+1)))
		case op >= classfile.OpIfIcmpeq && op <= classfile.OpIfIcmple:
			q.Kind, q.A = QIfICmp, int32(pc+int(i16(code, pc+1)))
		case op == classfile.OpIfAcmpeq || op == classfile.OpIfAcmpne:
			q.Kind, q.A = QIfACmp, int32(pc+int(i16(code, pc+1)))
		case op == classfile.OpIfnull || op == classfile.OpIfnonnull:
			q.Kind, q.A = QIfNull, int32(pc+int(i16(code, pc+1)))
		case op == classfile.OpIadd || op == classfile.OpIsub || op == classfile.OpImul ||
			op == classfile.OpIand || op == classfile.OpIor || op == classfile.OpIxor ||
			op == classfile.OpIshl || op == classfile.OpIshr || op == classfile.OpIushr:
			q.Kind = QArith
		case op == classfile.OpIinc:
			q.Kind, q.A, q.Offset = QIinc, int32(code[pc+1]), int32(int8(code[pc+2]))
		case op == classfile.OpDup:
			q.Kind = QDup
		case op == classfile.OpPop:
			q.Kind = QPop
		case op >= classfile.OpIreturn && op <= classfile.OpAreturn:
			q.Kind, q.Desc = QReturn, m.RetDesc
		case op == classfile.OpReturn:
			q.Kind, q.Desc = QReturn, "V"
		}
		if q.Kind != QNone {
			qt.Ops[pc] = q
			qt.pack(pc)
		}
		pc += ln
	}
}

// Package rt embeds the runtime class library — the subset of the
// Java Class Library that this reproduction implements in MiniJava
// (the paper's DoppioJVM similarly pairs the OpenJDK class library
// with JavaScript natives, §6.3). The sources compile to real class
// files via the MiniJava compiler.
package rt

import (
	"embed"
	"fmt"
	"io/fs"
	"strings"
	"sync"

	"doppio/internal/minijava"
)

//go:embed src
var srcFS embed.FS

// Sources returns the runtime library sources keyed by file name.
func Sources() map[string]string {
	out := make(map[string]string)
	err := fs.WalkDir(srcFS, "src", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".mj") {
			return nil
		}
		data, err := srcFS.ReadFile(path)
		if err != nil {
			return err
		}
		out[strings.TrimPrefix(path, "src/")] = string(data)
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("rt: embedded sources unreadable: %v", err))
	}
	return out
}

var (
	once     sync.Once
	classes  map[string][]byte
	buildErr error
)

// Classes compiles (once) and returns the runtime library class files
// keyed by internal class name.
func Classes() (map[string][]byte, error) {
	once.Do(func() {
		classes, buildErr = minijava.Compile(Sources())
	})
	return classes, buildErr
}

// CompileWith compiles the runtime library together with extra program
// sources (file name → contents) in one compile set, returning all
// class files.
func CompileWith(extra map[string]string) (map[string][]byte, error) {
	all := Sources()
	for name, src := range extra {
		if _, clash := all[name]; clash {
			return nil, fmt.Errorf("rt: source name %q collides with the runtime library", name)
		}
		all[name] = src
	}
	return minijava.Compile(all)
}

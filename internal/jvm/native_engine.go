package jvm

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"doppio/internal/jlong"
	"doppio/internal/profile"
	"doppio/internal/umheap"
)

// NativeVM is the baseline engine: the analog of the HotSpot
// interpreter the paper compares against (§7.1). It executes the same
// class files as the Doppio engine, but with typed slots, native
// 64-bit longs, a plain Go scheduler (no event loop, no suspend
// machinery), and synchronous I/O.
type NativeVM struct {
	Reg    *Registry
	loader *SyncLoader

	natives map[string]NativeFunc
	strings map[string]*Object
	mirrors map[*Class]*Object

	stdout, stderr io.Writer
	stdin          io.Reader
	fs             HostFS
	heap           *umheap.Heap
	props          map[string]string

	threads  []*NThread
	cur      *NThread
	nextTID  int
	nextHash int32

	timedWaits []timedWait

	exited   bool
	exitCode int32

	// Instructions counts executed bytecodes (benchmark metadata).
	Instructions int64

	// Uncaught records the first uncaught exception, if any.
	Uncaught *Object

	// quicken enables the warm-up rewriter (quicken.go); pairs is the
	// adjacent-opcode attribution table driving superinstruction
	// fusion, allocated only when quickening is on.
	quicken bool
	pairs   *[65536]int64
	qstats  QuickStats

	// prof is the guest profiler (nil when off). The native engine
	// has no core.Runtime, so its scheduler samples itself: profLast
	// is the on-CPU cursor for the running quantum, profCheck the
	// instruction countdown to the next clock read.
	prof      *profile.Profiler
	profLast  time.Time
	profCheck int
}

// timedWait tracks an Object.wait(ms) deadline.
type timedWait struct {
	at time.Time
	w  *Waiter
}

// NativeOptions configure a NativeVM.
type NativeOptions struct {
	Stdout, Stderr io.Writer
	Stdin          io.Reader
	FS             HostFS // defaults to the host OS file system
	Properties     map[string]string
	HeapSize       int

	// Quicken turns on bytecode quickening, inline caches, and
	// superinstruction fusion; off preserves the paper-fidelity
	// generic interpreter.
	Quicken bool
	// Profiler, when non-nil, samples guest CPU time and allocation
	// sites into the given profiler (contention is Doppio-only: the
	// native engine's monitors block without Completions).
	Profiler *profile.Profiler
}

// NewNativeVM creates a VM over the class provider.
func NewNativeVM(provider SyncProvider, opts NativeOptions) *NativeVM {
	if opts.Stdout == nil {
		opts.Stdout = os.Stdout
	}
	if opts.Stderr == nil {
		opts.Stderr = os.Stderr
	}
	if opts.Stdin == nil {
		opts.Stdin = strings.NewReader("")
	}
	if opts.FS == nil {
		opts.FS = OSHostFS{}
	}
	if opts.HeapSize == 0 {
		opts.HeapSize = 1 << 20
	}
	reg := NewRegistry()
	vm := &NativeVM{
		Reg:     reg,
		loader:  &SyncLoader{Reg: reg, Provider: provider},
		natives: registerNatives(),
		strings: make(map[string]*Object),
		mirrors: make(map[*Class]*Object),
		stdout:  opts.Stdout,
		stderr:  opts.Stderr,
		stdin:   opts.Stdin,
		fs:      opts.FS,
		heap:    umheap.New(opts.HeapSize, true, nil),
		props:   opts.Properties,
	}
	if vm.props == nil {
		vm.props = map[string]string{}
	}
	if opts.Quicken {
		vm.quicken = true
		vm.pairs = new([65536]int64)
	}
	if opts.Profiler != nil {
		vm.prof = opts.Profiler
		vm.heap.SetAllocHook(func(n int) {
			if !vm.prof.AllocReady() {
				return
			}
			if t := vm.cur; t != nil {
				vm.prof.SampleAlloc(append(profStackN(t), "(umheap)"), int64(n))
				return
			}
			vm.prof.SampleAlloc([]string{"(host)", "(umheap)"}, int64(n))
		})
	}
	return vm
}

// QuickStats returns the engine's quickening counters (QuickStatser).
func (vm *NativeVM) QuickStats() QuickStats {
	s := vm.qstats
	s.Enabled = vm.quicken
	return s
}

// NThread is one green thread of the native engine.
type NThread struct {
	id     int
	frames []*NFrame
	state  nthreadState
	obj    *Object // java/lang/Thread instance (may be nil for main)
	wakeAt time.Time

	// Deposited native completion.
	depValue  Value
	depThrown *Object
	depReady  bool
	depRet    string // return descriptor of the completed native

	joiners []func()

	// prevOp feeds the adjacent-pair attribution counters.
	prevOp byte
}

type nthreadState int

const (
	ntRunnable nthreadState = iota
	ntBlocked               // waiting for a resume callback
	ntSleeping              // waiting for wakeAt
	ntDead
)

// NFrame is a native-engine stack frame: typed slot arrays sized from
// the method's Code attribute.
type NFrame struct {
	m      *Method
	pc     int
	stack  []Slot
	sp     int
	locals []Slot
}

func newNFrame(m *Method) *NFrame {
	return &NFrame{
		m:      m,
		stack:  make([]Slot, int(m.Code.MaxStack)+2),
		locals: make([]Slot, int(m.Code.MaxLocals)+2),
	}
}

// --- frame stack helpers ---

func (f *NFrame) push(s Slot)     { f.stack[f.sp] = s; f.sp++ }
func (f *NFrame) pop() Slot       { f.sp--; return f.stack[f.sp] }
func (f *NFrame) pushI(v int32)   { f.push(Slot{N: int64(v)}) }
func (f *NFrame) popI() int32     { return int32(f.pop().N) }
func (f *NFrame) pushJ(v int64)   { f.push(Slot{N: v}); f.push(Slot{}) }
func (f *NFrame) popJ() int64     { f.pop(); return f.pop().N }
func (f *NFrame) pushF(v float32) { f.push(FloatSlot(float64(v))) }
func (f *NFrame) popF() float32   { return float32(SlotFloat(f.pop())) }
func (f *NFrame) pushD(v float64) { f.push(FloatSlot(v)); f.push(Slot{}) }
func (f *NFrame) popD() float64   { f.pop(); return SlotFloat(f.pop()) }
func (f *NFrame) pushR(o *Object) { f.push(Slot{R: o}) }
func (f *NFrame) popR() *Object   { return f.pop().R }

// RunMain loads mainClass, runs main([Ljava/lang/String;)V on the main
// thread, and drives the scheduler until every thread finishes.
func (vm *NativeVM) RunMain(mainClass string, args []string) error {
	c, err := vm.loader.Load(mainClass)
	if err != nil {
		return err
	}
	main := c.FindMethod("main", "([Ljava/lang/String;)V")
	if main == nil || !main.IsStatic() {
		return fmt.Errorf("jvm: %s has no static main([Ljava/lang/String;)V", mainClass)
	}
	argArr, err := vm.makeStringArray(args)
	if err != nil {
		return err
	}
	t := &NThread{id: vm.nextTID}
	vm.nextTID++
	f := newNFrame(main)
	f.locals[0] = Slot{R: argArr}
	t.frames = []*NFrame{f}
	vm.threads = append(vm.threads, t)
	// Trigger <clinit> of the main class before main runs.
	vm.cur = t
	if err := vm.ensureInit(t, c); err != nil {
		return err
	}
	return vm.schedule()
}

func (vm *NativeVM) makeStringArray(ss []string) (*Object, error) {
	arrC, err := vm.loader.Load("[Ljava/lang/String;")
	if err != nil {
		return nil, err
	}
	arr := NewArray(arrC, "Ljava/lang/String;", len(ss))
	data := arr.Arr.([]*Object)
	for i, s := range ss {
		data[i] = vm.Intern(s)
	}
	return arr, nil
}

// schedule drives green threads round-robin until all are dead.
func (vm *NativeVM) schedule() error {
	for !vm.exited {
		ran := false
		alive := false
		now := time.Now()
		remaining := vm.timedWaits[:0]
		for _, tw := range vm.timedWaits {
			if !now.Before(tw.at) {
				tw.w.Notify()
			} else if !tw.w.Notified {
				remaining = append(remaining, tw)
			}
		}
		vm.timedWaits = remaining
		for _, t := range vm.threads {
			if t.state == ntSleeping && !now.Before(t.wakeAt) {
				t.state = ntRunnable
			}
			if t.state != ntDead {
				alive = true
			}
		}
		for _, t := range vm.threads {
			if vm.exited {
				break
			}
			if t.state != ntRunnable {
				continue
			}
			ran = true
			vm.cur = t
			if vm.prof != nil {
				vm.profQuantumStart()
			}
			err := vm.execute(t, nativeQuantum)
			if vm.prof != nil {
				vm.profQuantumEnd(t)
			}
			if err != nil {
				return err
			}
		}
		if !alive {
			break
		}
		if !ran {
			// Only sleepers or blocked threads remain.
			var next time.Time
			hasSleeper := false
			for _, t := range vm.threads {
				if t.state == ntSleeping {
					if !hasSleeper || t.wakeAt.Before(next) {
						next = t.wakeAt
						hasSleeper = true
					}
				}
			}
			for _, tw := range vm.timedWaits {
				if !hasSleeper || tw.at.Before(next) {
					next = tw.at
					hasSleeper = true
				}
			}
			if !hasSleeper {
				return fmt.Errorf("jvm: deadlock: all threads blocked")
			}
			time.Sleep(time.Until(next))
		}
	}
	if vm.Uncaught != nil {
		return fmt.Errorf("jvm: uncaught exception: %s", vm.describeThrowable(vm.Uncaught))
	}
	return nil
}

const nativeQuantum = 200_000

func (vm *NativeVM) describeThrowable(ex *Object) string {
	msg := ""
	if s := slotByName(ex, "message"); s.R != nil {
		msg = ": " + vm.GoString(s.R)
	}
	return strings.ReplaceAll(ex.Class.Name, "/", ".") + msg
}

// ensureInit runs <clinit> for c (and its superclasses) by pushing
// initializer frames; it is called before the triggering instruction
// executes, which then re-executes.
func (vm *NativeVM) ensureInit(t *NThread, c *Class) error {
	var chain []*Class
	for k := c; k != nil; k = k.Super {
		if k.State == StateLoaded {
			k.State = StateInitialized
			chain = append(chain, k)
		}
	}
	// Push subclass first so superclass initializers run first.
	for i := 0; i < len(chain); i++ {
		if cl := chain[i].Clinit(); cl != nil {
			t.frames = append(t.frames, newNFrame(cl))
		}
	}
	return nil
}

// throwByName constructs and unwinds with a VM-generated exception.
func (vm *NativeVM) throwByName(t *NThread, class, msg string) {
	ex := vm.MakeThrowable(class, msg)
	vm.unwind(t, ex)
}

// unwind implements §6.6: walk the virtual stack for a handler.
func (vm *NativeVM) unwind(t *NThread, ex *Object) {
	for len(t.frames) > 0 {
		f := t.frames[len(t.frames)-1]
		if f.m.Code != nil {
			for _, e := range f.m.Code.Exceptions {
				if f.pc < int(e.StartPC) || f.pc >= int(e.EndPC) {
					continue
				}
				if e.CatchType != 0 {
					catchName := f.m.Class.CP[e.CatchType].Str
					cc, err := vm.loader.Load(catchName)
					if err != nil || !ex.Class.SubclassOf(cc) {
						continue
					}
				}
				f.pc = int(e.HandlerPC)
				f.sp = 0
				f.pushR(ex)
				return
			}
		}
		t.frames = t.frames[:len(t.frames)-1]
	}
	// Uncaught: thread dies.
	fmt.Fprintf(vm.stderr, "Exception in thread %d %s\n", t.id, vm.describeThrowable(ex))
	if trace, ok := ex.Extra.([]string); ok {
		for _, line := range trace {
			fmt.Fprintf(vm.stderr, "\tat %s\n", line)
		}
	}
	vm.killThread(t)
	if vm.Uncaught == nil {
		vm.Uncaught = ex
	}
}

func (vm *NativeVM) killThread(t *NThread) {
	t.state = ntDead
	t.frames = nil
	for _, j := range t.joiners {
		j()
	}
	t.joiners = nil
}

// --- NativeHost implementation ---

// EngineName identifies the engine.
func (vm *NativeVM) EngineName() string { return "native" }

// Intern returns the canonical String for s.
func (vm *NativeVM) Intern(s string) *Object {
	if o, ok := vm.strings[s]; ok {
		return o
	}
	o := vm.NewString(s)
	vm.strings[s] = o
	return o
}

// NewString builds a String object around a char array.
func (vm *NativeVM) NewString(s string) *Object {
	sc := vm.Reg.Get("java/lang/String")
	if sc == nil {
		var err error
		sc, err = vm.loader.Load("java/lang/String")
		if err != nil {
			panic(fmt.Sprintf("jvm: String class unavailable: %v", err))
		}
	}
	o := NewObject(sc)
	chars := utf16Chars(s)
	arrC, _ := vm.loader.Load("[C")
	arr := &Object{Class: arrC, Arr: chars}
	setSlotByName(o, "value", Slot{R: arr})
	return o
}

// GoString decodes a String object's char array.
func (vm *NativeVM) GoString(o *Object) string {
	return stringValue(o)
}

// MakeThrowable builds an exception object without running user code.
func (vm *NativeVM) MakeThrowable(class, msg string) *Object {
	c, err := vm.loader.Load(class)
	if err != nil {
		// Fall back to the root throwable.
		c, err = vm.loader.Load("java/lang/Throwable")
		if err != nil {
			panic("jvm: no throwable classes loaded")
		}
	}
	ex := NewObject(c)
	if msg != "" {
		setSlotByName(ex, "message", Slot{R: vm.Intern(msg)})
	}
	ex.Extra = vm.captureTrace()
	return ex
}

func (vm *NativeVM) captureTrace() []string {
	t := vm.cur
	if t == nil {
		return nil
	}
	var out []string
	for i := len(t.frames) - 1; i >= 0; i-- {
		f := t.frames[i]
		out = append(out, fmt.Sprintf("%s.%s(pc=%d)", strings.ReplaceAll(f.m.Class.Name, "/", "."), f.m.Name, f.pc))
	}
	return out
}

// ClassMirror returns (creating lazily) the Class instance for c.
func (vm *NativeVM) ClassMirror(c *Class) *Object {
	if m, ok := vm.mirrors[c]; ok {
		return m
	}
	cc, err := vm.loader.Load("java/lang/Class")
	if err != nil {
		cc = c // last resort: self-classed mirror
	}
	m := NewObject(cc)
	m.Extra = c
	setSlotByName(m, "name", Slot{R: vm.Intern(strings.ReplaceAll(c.Name, "/", "."))})
	vm.mirrors[c] = m
	return m
}

// LookupClass returns a loaded class or tries to load it.
func (vm *NativeVM) LookupClass(name string) *Class {
	if c := vm.Reg.Get(name); c != nil {
		return c
	}
	c, err := vm.loader.Load(name)
	if err != nil {
		return nil
	}
	return c
}

// Stdout returns the console writer.
func (vm *NativeVM) Stdout() io.Writer { return vm.stdout }

// Stderr returns the error writer.
func (vm *NativeVM) Stderr() io.Writer { return vm.stderr }

// StdinRead reads up to n bytes from standard input.
func (vm *NativeVM) StdinRead(n int, cb func([]byte, error)) {
	buf := make([]byte, n)
	m, err := vm.stdin.Read(buf)
	if m > 0 {
		cb(buf[:m], nil)
		return
	}
	cb(nil, err)
}

// Property reads a system property.
func (vm *NativeVM) Property(key string) string { return vm.props[key] }

// CurrentTimeMillis returns wall-clock milliseconds.
func (vm *NativeVM) CurrentTimeMillis() int64 { return time.Now().UnixMilli() }

// NanoTime returns a monotonic nanosecond reading.
func (vm *NativeVM) NanoTime() int64 { return time.Now().UnixNano() }

// Exit stops the VM.
func (vm *NativeVM) Exit(code int32) {
	vm.exited = true
	vm.exitCode = code
	for _, t := range vm.threads {
		t.state = ntDead
	}
}

// ExitCode returns the code passed to System.exit (0 by default).
func (vm *NativeVM) ExitCode() int32 { return vm.exitCode }

// FS returns the host file system.
func (vm *NativeVM) FS() HostFS { return vm.fs }

// UnsafeHeap exposes the unmanaged heap.
func (vm *NativeVM) UnsafeHeap() *HeapBinding { return heapBinding(vm.heap) }

// SocketConnect is unsupported on the native engine's default host.
func (vm *NativeVM) SocketConnect(host string, port int32, cb func(int32, error)) {
	cb(-1, fmt.Errorf("jvm: sockets not wired on native engine"))
}

// SocketRead is unsupported by default.
func (vm *NativeVM) SocketRead(handle int32, n int32, cb func([]byte, error)) {
	cb(nil, fmt.Errorf("jvm: sockets not wired on native engine"))
}

// SocketWrite is unsupported by default.
func (vm *NativeVM) SocketWrite(handle int32, data []byte, cb func(error)) {
	cb(fmt.Errorf("jvm: sockets not wired on native engine"))
}

// SocketClose is a no-op by default.
func (vm *NativeVM) SocketClose(handle int32) {}

// IdentityHash issues sequential identity hash codes.
func (vm *NativeVM) IdentityHash(o *Object) int32 {
	if o.Extra == nil {
		vm.nextHash++
		o.Extra = vm.nextHash
	}
	if h, ok := o.Extra.(int32); ok {
		return h
	}
	// Object carries another payload; hash the pointer-ish way.
	vm.nextHash++
	return vm.nextHash
}

// SpawnThread starts threadObj's run() on a fresh green thread.
func (vm *NativeVM) SpawnThread(threadObj *Object) {
	run := threadObj.Class.FindMethod("run", "()V")
	t := &NThread{id: vm.nextTID, obj: threadObj}
	vm.nextTID++
	f := newNFrame(run)
	f.locals[0] = Slot{R: threadObj}
	t.frames = []*NFrame{f}
	threadObj.Extra = t
	vm.threads = append(vm.threads, t)
}

// SetThreadPriority is bookkeeping only: the native engine's
// round-robin interleaver has no priority levels, so the value lives
// in the Thread object's field alone.
func (vm *NativeVM) SetThreadPriority(threadObj *Object, p int32) {}

// CurrentThreadObj returns the running thread's Thread object.
func (vm *NativeVM) CurrentThreadObj() *Object {
	if vm.cur != nil && vm.cur.obj != nil {
		return vm.cur.obj
	}
	// Lazily build a Thread object for the main thread.
	tc := vm.LookupClass("java/lang/Thread")
	if tc == nil {
		return nil
	}
	o := NewObject(tc)
	setSlotByName(o, "name", Slot{R: vm.Intern("main")})
	if vm.cur != nil {
		vm.cur.obj = o
		o.Extra = vm.cur
	}
	return o
}

// Sleep parks the current thread until the deadline.
func (vm *NativeVM) Sleep(ms int64, done func()) {
	t := vm.cur
	t.state = ntSleeping
	t.wakeAt = time.Now().Add(time.Duration(ms) * time.Millisecond)
	done()
}

// YieldThread is a scheduling hint; the quantum scheduler handles it.
func (vm *NativeVM) YieldThread() {}

// JoinThread blocks until threadObj's thread dies.
func (vm *NativeVM) JoinThread(threadObj *Object, done func()) {
	target, ok := threadObj.Extra.(*NThread)
	if !ok || target.state == ntDead {
		done()
		return
	}
	t := vm.cur
	t.state = ntBlocked
	target.joiners = append(target.joiners, func() {
		t.state = ntRunnable
		done()
	})
}

// IsThreadAlive reports liveness.
func (vm *NativeVM) IsThreadAlive(threadObj *Object) bool {
	target, ok := threadObj.Extra.(*NThread)
	return ok && target.state != ntDead
}

// MonitorWait implements Object.wait on the green-thread scheduler.
func (vm *NativeVM) MonitorWait(o *Object, timeoutMs int64) *Object {
	t := vm.cur
	mon := o.EnsureMonitor()
	if mon.Owner != t {
		return vm.MakeThrowable("java/lang/IllegalMonitorStateException", "not owner")
	}
	saved := mon.Count
	mon.Owner = nil
	mon.Count = 0
	vm.wakeOneBlocked(mon)

	t.state = ntBlocked
	w := &Waiter{}
	w.Notify = func() {
		if w.Notified {
			return
		}
		w.Notified = true
		vm.acquireOrQueue(t, mon, saved)
	}
	mon.WaitQ = append(mon.WaitQ, w)
	if timeoutMs > 0 {
		vm.timedWaits = append(vm.timedWaits, timedWait{
			at: time.Now().Add(time.Duration(timeoutMs) * time.Millisecond),
			w:  w,
		})
	}
	return nil
}

func (vm *NativeVM) wakeOneBlocked(mon *Monitor) {
	if len(mon.BlockQ) == 0 {
		return
	}
	f := mon.BlockQ[0]
	mon.BlockQ = mon.BlockQ[1:]
	f()
}

// acquireOrQueue gives t the monitor (with entry count) or queues it.
func (vm *NativeVM) acquireOrQueue(t *NThread, mon *Monitor, count int) {
	if mon.Owner == nil {
		mon.Owner = t
		mon.Count = count
		t.state = ntRunnable
		t.depReady = true
		t.depRet = "V"
		return
	}
	mon.BlockQ = append(mon.BlockQ, func() {
		mon.Owner = t
		mon.Count = count
		t.state = ntRunnable
		t.depReady = true
		t.depRet = "V"
	})
}

// MonitorNotify implements Object.notify/notifyAll.
func (vm *NativeVM) MonitorNotify(o *Object, all bool) *Object {
	mon := o.EnsureMonitor()
	if mon.Owner != vm.cur {
		return vm.MakeThrowable("java/lang/IllegalMonitorStateException", "not owner")
	}
	for len(mon.WaitQ) > 0 {
		w := mon.WaitQ[0]
		mon.WaitQ = mon.WaitQ[1:]
		if !w.Notified {
			w.Notify()
			if !all {
				break
			}
		}
	}
	return nil
}

// BlockAndCall runs launch; on the synchronous native host the
// completion usually fires before this returns, in which case the
// thread never actually blocks.
func (vm *NativeVM) BlockAndCall(launch func(complete func(Value, *Object))) {
	t := vm.cur
	completed := false
	launch(func(v Value, thrown *Object) {
		completed = true
		t.depValue, t.depThrown, t.depReady = v, thrown, true
		if t.state == ntBlocked {
			t.state = ntRunnable
		}
	})
	if !completed {
		t.state = ntBlocked
	}
}

// EvalJS has no JavaScript host on the native engine.
func (vm *NativeVM) EvalJS(snippet string) string {
	return "ReferenceError: no JavaScript host in the native engine"
}

// --- shared helpers ---

// utf16Chars converts a Go string to UTF-16 code units.
func utf16Chars(s string) []uint16 {
	out := make([]uint16, 0, len(s))
	for _, r := range s {
		if r > 0xFFFF {
			r -= 0x10000
			out = append(out, uint16(0xD800|r>>10), uint16(0xDC00|r&0x3FF))
			continue
		}
		out = append(out, uint16(r))
	}
	return out
}

// stringValue reads a String object's chars into a Go string.
func stringValue(o *Object) string {
	if o == nil {
		return "<null>"
	}
	v := slotByName(o, "value")
	if v.R == nil {
		return ""
	}
	chars, ok := v.R.Arr.([]uint16)
	if !ok {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(chars); i++ {
		c := chars[i]
		if c >= 0xD800 && c <= 0xDBFF && i+1 < len(chars) {
			c2 := chars[i+1]
			if c2 >= 0xDC00 && c2 <= 0xDFFF {
				b.WriteRune(rune(c&0x3FF)<<10 | rune(c2&0x3FF) + 0x10000)
				i++
				continue
			}
		}
		b.WriteRune(rune(c))
	}
	return b.String()
}

// heapBinding adapts an umheap.Heap to the Unsafe natives.
func heapBinding(h *umheap.Heap) *HeapBinding {
	return &HeapBinding{
		Malloc: h.Malloc,
		Free:   h.Free,
		GetI8:  h.LoadI8,
		PutI8:  h.StoreI8,
		GetI16: h.LoadI16,
		PutI16: h.StoreI16,
		GetI32: h.LoadI32,
		PutI32: h.StoreI32,
		GetI64: func(addr int) int64 { return h.LoadI64(addr).Int64() },
		PutI64: func(addr int, v int64) { h.StoreI64(addr, jlong.FromInt64(v)) },
		GetF32: h.LoadF32,
		PutF32: h.StoreF32,
		GetF64: h.LoadF64,
		PutF64: h.StoreF64,
	}
}

// OSHostFS adapts the host operating system to HostFS — what "Node JS
// running on top of the native OS file system" is to Figure 6.
type OSHostFS struct {
	// Root, if non-empty, prefixes every path.
	Root string
}

func (o OSHostFS) path(p string) string {
	if o.Root == "" {
		return p
	}
	return o.Root + "/" + strings.TrimPrefix(p, "/")
}

// ReadFile reads a whole file.
func (o OSHostFS) ReadFile(p string, cb func([]byte, error)) { cb(os.ReadFile(o.path(p))) }

// WriteFile replaces a whole file.
func (o OSHostFS) WriteFile(p string, data []byte, cb func(error)) {
	cb(os.WriteFile(o.path(p), data, 0o644))
}

// Append appends to a file.
func (o OSHostFS) Append(p string, data []byte, cb func(error)) {
	f, err := os.OpenFile(o.path(p), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		cb(err)
		return
	}
	_, err = f.Write(data)
	cerr := f.Close()
	if err == nil {
		err = cerr
	}
	cb(err)
}

// Stat reports a path's size and kind.
func (o OSHostFS) Stat(p string, cb func(int64, bool, bool)) {
	fi, err := os.Stat(o.path(p))
	if err != nil {
		cb(0, false, false)
		return
	}
	cb(fi.Size(), fi.IsDir(), true)
}

// List names a directory's children.
func (o OSHostFS) List(p string, cb func([]string, error)) {
	ents, err := os.ReadDir(o.path(p))
	if err != nil {
		cb(nil, err)
		return
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	sort.Strings(names)
	cb(names, nil)
}

// Delete removes a file.
func (o OSHostFS) Delete(p string, cb func(error)) { cb(os.Remove(o.path(p))) }

// Mkdir creates a directory.
func (o OSHostFS) Mkdir(p string, cb func(error)) { cb(os.Mkdir(o.path(p), 0o755)) }

// Rename moves a file.
func (o OSHostFS) Rename(oldP, newP string, cb func(error)) {
	cb(os.Rename(o.path(oldP), o.path(newP)))
}

// fround performs Java's float rounding for f32 arithmetic.
func fround(v float64) float32 { return float32(v) }

// jrem is Java's IEEE remainder for frem/drem.
func jrem(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || b == 0 {
		return math.NaN()
	}
	if math.IsInf(b, 0) {
		return a
	}
	return math.Mod(a, b)
}

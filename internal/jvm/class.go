// Package jvm implements DoppioJVM (§6 of the paper): a Java Virtual
// Machine interpreter with all 201 JVM-spec-2e bytecodes, explicit
// heap-allocated stack frames, class loading through the Doppio file
// system, exceptions by virtual-stack walking, JVM threads over the
// Doppio thread pool, and native methods bridging to Doppio's OS
// services.
//
// Two engines execute the same loaded classes:
//
//   - the Doppio engine (doppio_engine.go) runs inside a simulated
//     browser event loop with JavaScript value semantics — ints as
//     float64 with |0 coercions, longs as software hi/lo pairs,
//     suspend checks at call boundaries, and asynchronous I/O hidden
//     behind suspend-and-resume;
//
//   - the native engine (native_engine.go) is the baseline analog of
//     the HotSpot interpreter: typed slots, int64 longs, no suspend
//     machinery, synchronous I/O.
//
// The performance comparison between them regenerates Figures 3-5.
package jvm

import (
	"fmt"

	"doppio/internal/classfile"
)

// ClassState tracks initialization (JVM spec §2.17).
type ClassState int

// Class lifecycle states.
const (
	StateLoaded ClassState = iota
	StateInitializing
	StateInitialized
)

// Class is a loaded runtime class.
type Class struct {
	Name       string
	File       *classfile.ClassFile
	Super      *Class
	Interfaces []*Class
	Flags      uint16

	Methods []*Method
	Fields  []*Field

	// Statics holds static field values keyed by field name.
	Statics map[string]Slot

	State ClassState

	// CP is the runtime constant pool with resolution caches.
	CP []RTConst

	// Array classes.
	IsArray  bool
	ElemDesc string // element type descriptor for array classes

	methodCache map[string]*Method

	// mirror is the java/lang/Class instance for getClass().
	mirror *Object

	// layout is the memoized instance-field layout (nil until first
	// use; only cached once the hierarchy is linked, so a concurrent
	// async load can never bake in a super-less prefix).
	layout *FieldLayout

	// linked is set by the loader once Super and Interfaces point at
	// real classes. Registry.Get hides unlinked classes from the
	// engines, so an in-flight async load is indistinguishable from a
	// not-yet-requested one.
	linked bool

	// offCache memoizes OffsetOf results per queried name, including
	// misses (-1), so reflective by-name probes pay the hierarchy
	// walk once.
	offCache map[string]int
}

// FieldLayout is a class's instance-field layout, computed at link
// time: the total slot count for the hierarchy and the offsets of the
// fields this class declares itself. Superclass fields occupy the
// prefix [0, Super.Layout().Slots), so an offset resolved against any
// class in the chain indexes correctly into every subclass instance —
// the property quickened getfield/putfield rely on.
type FieldLayout struct {
	// Slots is the instance size in slots, including all supers.
	Slots int
	// Own maps field name → offset for fields declared by this class
	// only (shadowing a super's field yields a distinct slot, same as
	// the JVM's per-declaring-class storage).
	Own map[string]int
}

// Layout computes (and, once the class is linked, memoizes) the
// instance-field layout, assigning Field.Offset as a side effect.
// Static fields keep Offset -1 — they stay in the Statics map.
func (c *Class) Layout() *FieldLayout {
	if c.layout != nil {
		return c.layout
	}
	base := 0
	if c.Super != nil {
		base = c.Super.Layout().Slots
	}
	own := make(map[string]int)
	for _, f := range c.Fields {
		if f.IsStatic() {
			f.Offset = -1
			continue
		}
		f.Offset = base
		own[f.Name] = base
		base++
	}
	lay := &FieldLayout{Slots: base, Own: own}
	if c.linked {
		c.layout = lay
	}
	return lay
}

// OffsetOf resolves an instance-field name to its slot offset,
// walking the superclass chain from c (most-derived declaration
// wins, matching GetField's shadowing semantics). Returns -1 when no
// class in the chain declares the field. Results are memoized.
func (c *Class) OffsetOf(name string) int {
	if off, ok := c.offCache[name]; ok {
		return off
	}
	off := -1
	for k := c; k != nil; k = k.Super {
		if o, ok := k.Layout().Own[name]; ok {
			off = o
			break
		}
	}
	if !c.linked {
		// Don't memoize against a half-linked hierarchy.
		return off
	}
	if c.offCache == nil {
		c.offCache = make(map[string]int)
	}
	c.offCache[name] = off
	return off
}

// IsInterface reports whether the class is an interface.
func (c *Class) IsInterface() bool { return c.Flags&classfile.AccInterface != 0 }

// Method is a runtime method.
type Method struct {
	Class      *Class
	Name, Desc string
	Flags      uint16
	Code       *classfile.Code
	ParamDescs []string
	RetDesc    string
	ArgSlots   int // argument slots excluding the receiver

	// quick is the method's quickening side-table (nil until the
	// first quickenable site resolves). The original bytecode is
	// never rewritten — see QuickTable.
	quick *QuickTable
}

// IsStatic reports the static flag.
func (m *Method) IsStatic() bool { return m.Flags&classfile.AccStatic != 0 }

// IsNative reports the native flag.
func (m *Method) IsNative() bool { return m.Flags&classfile.AccNative != 0 }

// IsAbstract reports the abstract flag.
func (m *Method) IsAbstract() bool { return m.Flags&classfile.AccAbstract != 0 }

// Key returns the name+descriptor key used for lookup.
func (m *Method) Key() string { return m.Name + m.Desc }

// String renders Class.method(desc).
func (m *Method) String() string { return m.Class.Name + "." + m.Name + m.Desc }

// Field is a runtime field.
type Field struct {
	Class      *Class
	Name, Desc string
	Flags      uint16

	// Offset is the instance slot index assigned by the declaring
	// class's FieldLayout; -1 for static fields.
	Offset int
}

// IsStatic reports the static flag.
func (f *Field) IsStatic() bool { return f.Flags&classfile.AccStatic != 0 }

// RTConst is a runtime constant pool entry with resolution caches.
type RTConst struct {
	Tag classfile.ConstTag

	Int    int32
	Long   int64
	Float  float32
	Double float64
	Str    string // Utf8 / String value / Class name

	// For member refs.
	ClassName  string
	MemberName string
	MemberDesc string

	// Caches filled on first resolution.
	ResolvedClass  *Class
	ResolvedMethod *Method
	ResolvedField  *Field
	StringObj      *Object
}

// buildRuntime converts a parsed class file into a runtime Class
// (without linking the hierarchy — the loader does that).
func buildRuntime(cf *classfile.ClassFile) (*Class, error) {
	c := &Class{
		Name:        cf.Name(),
		File:        cf,
		Flags:       cf.Flags,
		Statics:     make(map[string]Slot),
		methodCache: make(map[string]*Method),
	}
	// Runtime constant pool.
	c.CP = make([]RTConst, len(cf.ConstPool))
	for i := 1; i < len(cf.ConstPool); i++ {
		src := &cf.ConstPool[i]
		dst := &c.CP[i]
		dst.Tag = src.Tag
		switch src.Tag {
		case classfile.TagUtf8:
			dst.Str = src.Utf8
		case classfile.TagInteger:
			dst.Int = src.Int
		case classfile.TagFloat:
			dst.Float = src.Float
		case classfile.TagLong:
			dst.Long = src.Long
		case classfile.TagDouble:
			dst.Double = src.Double
		case classfile.TagClass:
			n, err := cf.ClassNameAt(uint16(i))
			if err != nil {
				return nil, err
			}
			dst.Str = n
		case classfile.TagString:
			s, err := cf.StringAt(uint16(i))
			if err != nil {
				return nil, err
			}
			dst.Str = s
		case classfile.TagFieldref, classfile.TagMethodref, classfile.TagInterfaceMethodref:
			cls, name, desc, err := cf.RefAt(uint16(i))
			if err != nil {
				return nil, err
			}
			dst.ClassName, dst.MemberName, dst.MemberDesc = cls, name, desc
		}
	}
	for i := range cf.Fields {
		fm := &cf.Fields[i]
		c.Fields = append(c.Fields, &Field{
			Class:  c,
			Name:   cf.MemberName(fm),
			Desc:   cf.MemberDesc(fm),
			Flags:  fm.Flags,
			Offset: -1, // assigned by Layout at link time
		})
	}
	for i := range cf.Methods {
		mm := &cf.Methods[i]
		m := &Method{
			Class: c,
			Name:  cf.MemberName(mm),
			Desc:  cf.MemberDesc(mm),
			Flags: mm.Flags,
		}
		code, err := cf.CodeOf(mm)
		if err != nil {
			return nil, err
		}
		m.Code = code
		params, ret, err := classfile.ParseMethodDesc(m.Desc)
		if err != nil {
			return nil, err
		}
		m.ParamDescs = params
		m.RetDesc = ret
		for _, p := range params {
			m.ArgSlots += classfile.SlotCount(p)
		}
		c.Methods = append(c.Methods, m)
	}
	// Default static field values.
	for _, f := range c.Fields {
		if f.IsStatic() {
			c.Statics[f.Name] = zeroSlot(f.Desc)
		}
	}
	return c, nil
}

// FindMethod resolves name+desc against this class, walking
// superclasses and then interfaces; results are cached.
func (c *Class) FindMethod(name, desc string) *Method {
	key := name + desc
	if m, ok := c.methodCache[key]; ok {
		return m
	}
	var find func(k *Class) *Method
	find = func(k *Class) *Method {
		for k2 := k; k2 != nil; k2 = k2.Super {
			for _, m := range k2.Methods {
				if m.Name == name && m.Desc == desc {
					return m
				}
			}
		}
		for k2 := k; k2 != nil; k2 = k2.Super {
			for _, i := range k2.Interfaces {
				if m := find(i); m != nil {
					return m
				}
			}
		}
		return nil
	}
	m := find(c)
	if c.methodCache == nil {
		c.methodCache = make(map[string]*Method)
	}
	c.methodCache[key] = m
	return m
}

// FindField resolves a field by name, walking the hierarchy.
func (c *Class) FindField(name string) *Field {
	for k := c; k != nil; k = k.Super {
		for _, f := range k.Fields {
			if f.Name == name {
				return f
			}
		}
		for _, i := range k.Interfaces {
			if f := i.FindField(name); f != nil {
				return f
			}
		}
	}
	return nil
}

// statics returns the Statics map of the class declaring the field.
func (c *Class) staticsOf(name string) (map[string]Slot, error) {
	for k := c; k != nil; k = k.Super {
		if _, ok := k.Statics[name]; ok {
			return k.Statics, nil
		}
		for _, i := range k.Interfaces {
			if s, err := i.staticsOf(name); err == nil {
				return s, nil
			}
		}
	}
	return nil, fmt.Errorf("jvm: no static field %s in %s", name, c.Name)
}

// SubclassOf reports whether c is o or a subclass/implementor of o.
func (c *Class) SubclassOf(o *Class) bool {
	for k := c; k != nil; k = k.Super {
		if k == o {
			return true
		}
		for _, i := range k.Interfaces {
			if i.SubclassOf(o) {
				return true
			}
		}
	}
	return false
}

// Clinit returns the class initializer, if any.
func (c *Class) Clinit() *Method {
	for _, m := range c.Methods {
		if m.Name == "<clinit>" {
			return m
		}
	}
	return nil
}

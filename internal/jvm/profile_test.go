package jvm_test

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/jvm"
	"doppio/internal/jvm/rt"
	"doppio/internal/profile"
)

// runDoppioProf runs source on the Doppio engine with a fresh guest
// profiler attached, returning stdout, the run error, and the
// profiler.
func runDoppioProf(t *testing.T, source string, quicken bool, slice time.Duration) (string, error, *profile.Profiler) {
	t.Helper()
	classes, err := rt.CompileWith(map[string]string{"Main.mj": source})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	win := browser.NewWindow(browser.Chrome28)
	prof := profile.New(profile.Options{})
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		DisableEngineTax: true,
		Timeslice:        slice,
		Quicken:          quicken,
		Profiler:         prof,
	})
	runErr := vm.RunMain("Main", nil)
	return stdout.String(), runErr, prof
}

// runNativeProf is the native-engine counterpart of runDoppioProf.
func runNativeProf(t *testing.T, source string, quicken bool) (string, error, *profile.Profiler) {
	t.Helper()
	classes, err := rt.CompileWith(map[string]string{"Main.mj": source})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prof := profile.New(profile.Options{})
	var stdout bytes.Buffer
	vm := jvm.NewNativeVM(jvm.MapProvider(classes), jvm.NativeOptions{
		Stdout:   &stdout,
		Stderr:   &stdout,
		Quicken:  quicken,
		Profiler: prof,
	})
	runErr := vm.RunMain("Main", nil)
	return stdout.String(), runErr, prof
}

// TestProfilerEquivalenceCorpus runs every conformance program on both
// engines with the profiler attached and compares against the plain
// runs: sampling must be invisible to the guest — byte-identical
// output and the same error outcome.
func TestProfilerEquivalenceCorpus(t *testing.T) {
	for name, src := range conformancePrograms {
		t.Run(name, func(t *testing.T) {
			nOff, nOffErr, _ := runNativeQuick(t, src, false)
			nOn, nOnErr, _ := runNativeProf(t, src, false)
			dOff, dOffErr, _ := runDoppioQuick(t, src, false, 2*time.Millisecond)
			dOn, dOnErr, _ := runDoppioProf(t, src, false, 2*time.Millisecond)
			if (nOffErr == nil) != (nOnErr == nil) || (dOffErr == nil) != (dOnErr == nil) {
				t.Fatalf("error outcome changed under profiling: native %v/%v doppio %v/%v",
					nOffErr, nOnErr, dOffErr, dOnErr)
			}
			if nOn != nOff {
				t.Errorf("native output diverged under profiling:\noff: %q\non:  %q", nOff, nOn)
			}
			if dOn != dOff {
				t.Errorf("doppio output diverged under profiling:\noff: %q\non:  %q", dOff, dOn)
			}
		})
	}
}

// allocStacks renders a profiler's allocation snapshot as sorted
// "stack = count/bytes" lines — a canonical form for equality checks.
func allocStacks(p *profile.Profiler) []string {
	snap := p.Snapshot(profile.Alloc)
	out := make([]string, 0, len(snap.Entries))
	for _, e := range snap.Entries {
		out = append(out, fmt.Sprintf("%s = %d/%d", strings.Join(e.Stack, ";"), e.Count, e.Value))
	}
	sort.Strings(out)
	return out
}

// TestProfilerQuickenPCMapping pins the tentpole's attribution
// property: the quickened tiers map samples back to ORIGINAL bytecode
// pcs. The allocation profile is sampled on a deterministic 1-in-N
// allocation counter, so for a deterministic program the sampled
// alloc sites — stacks with leaf pcs — must be byte-identical with
// quickening on and off. A single differing pc (e.g. a fused
// superinstruction reporting its rewritten index) fails this test.
func TestProfilerQuickenPCMapping(t *testing.T) {
	t.Run("doppio", func(t *testing.T) {
		out0, err0, p0 := runDoppioProf(t, hotProgram, false, 2*time.Millisecond)
		out1, err1, p1 := runDoppioProf(t, hotProgram, true, 2*time.Millisecond)
		if err0 != nil || err1 != nil {
			t.Fatalf("run errors: %v / %v", err0, err1)
		}
		if out0 != out1 {
			t.Fatalf("output diverged: %q vs %q", out0, out1)
		}
		a0, a1 := allocStacks(p0), allocStacks(p1)
		if len(a0) == 0 {
			t.Fatal("no allocation samples folded")
		}
		if strings.Join(a0, "\n") != strings.Join(a1, "\n") {
			t.Errorf("alloc attribution diverged under quickening:\ngeneric:\n%s\nquickened:\n%s",
				strings.Join(a0, "\n"), strings.Join(a1, "\n"))
		}
	})
	t.Run("native", func(t *testing.T) {
		out0, err0, p0 := runNativeProf(t, hotProgram, false)
		out1, err1, p1 := runNativeProf(t, hotProgram, true)
		if err0 != nil || err1 != nil {
			t.Fatalf("run errors: %v / %v", err0, err1)
		}
		if out0 != out1 {
			t.Fatalf("output diverged: %q vs %q", out0, out1)
		}
		a0, a1 := allocStacks(p0), allocStacks(p1)
		if len(a0) == 0 {
			t.Fatal("no allocation samples folded")
		}
		if strings.Join(a0, "\n") != strings.Join(a1, "\n") {
			t.Errorf("alloc attribution diverged under quickening:\ngeneric:\n%s\nquickened:\n%s",
				strings.Join(a0, "\n"), strings.Join(a1, "\n"))
		}
	})
}

// TestProfilerCPUSamples checks that a CPU-bound run folds samples
// with well-formed frames on both engines: dotted class.method
// callers and a ":pc" leaf, no Go host frames.
func TestProfilerCPUSamples(t *testing.T) {
	check := func(t *testing.T, p *profile.Profiler) {
		snap := p.Snapshot(profile.CPU)
		if len(snap.Entries) == 0 {
			t.Fatal("no CPU samples folded")
		}
		sawHot := false
		for _, e := range snap.Entries {
			leaf := e.Stack[len(e.Stack)-1]
			if !strings.Contains(leaf, ":") {
				t.Errorf("leaf frame %q carries no pc", leaf)
			}
			for _, fr := range e.Stack {
				if strings.Contains(fr, "/") || strings.HasPrefix(fr, "doppio/") {
					t.Errorf("host-looking frame %q in guest profile", fr)
				}
			}
			for _, fr := range e.Stack {
				if strings.HasPrefix(fr, "Main.walk") || strings.HasPrefix(fr, "Cell.get") {
					sawHot = true
				}
			}
		}
		if !sawHot {
			t.Errorf("hot method never sampled; stacks: %v", snap.Entries)
		}
	}
	t.Run("doppio", func(t *testing.T) {
		_, err, p := runDoppioProf(t, hotProgram, true, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		check(t, p)
	})
	t.Run("native", func(t *testing.T) {
		_, err, p := runNativeProf(t, hotProgram, true)
		if err != nil {
			t.Fatal(err)
		}
		check(t, p)
	})
}

// blockProgram parks a thread on a monitor so the contention profile
// has something to fold.
const blockProgram = `
class Waiter extends Thread {
    Object lock;
    Waiter(Object lock) { this.lock = lock; }
    public void run() {
        synchronized (lock) {
            lock.wait();
        }
    }
}
public class Main {
    public static void main(String[] args) {
        Object lock = new Object();
        Waiter w = new Waiter(lock);
        w.start();
        Thread.sleep(5);
        synchronized (lock) {
            lock.notifyAll();
        }
        w.join();
        System.out.println("done");
    }
}`

// TestProfilerBlockSamples checks that Doppio-engine Completion waits
// land in the contention profile with the wait label as the leaf.
func TestProfilerBlockSamples(t *testing.T) {
	out, err, p := runDoppioProf(t, blockProgram, false, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "done") {
		t.Fatalf("unexpected output %q", out)
	}
	snap := p.Snapshot(profile.Block)
	if len(snap.Entries) == 0 {
		t.Fatal("no contention samples folded")
	}
	for _, e := range snap.Entries {
		leaf := e.Stack[len(e.Stack)-1]
		if strings.Contains(leaf, ":") && !strings.Contains(leaf, "(") {
			t.Errorf("block leaf %q looks like a pc frame, want a wait label", leaf)
		}
	}
}

package jvm_test

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/buffer"
	"doppio/internal/jvm"
	"doppio/internal/jvm/rt"
	"doppio/internal/vfs"
)

// runDoppio compiles and runs Main on the Doppio engine inside a
// simulated browser window.
func runDoppio(t *testing.T, profile browser.Profile, source string, args ...string) string {
	t.Helper()
	out, err := runDoppioErr(t, profile, source, args...)
	if err != nil {
		t.Fatalf("RunMain (doppio): %v\noutput:\n%s", err, out)
	}
	return out
}

func runDoppioErr(t *testing.T, profile browser.Profile, source string, args ...string) (string, error) {
	t.Helper()
	classes, err := rt.CompileWith(map[string]string{"Main.mj": source})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	win := browser.NewWindow(profile)
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		DisableEngineTax: true,
		Timeslice:        2 * time.Millisecond,
	})
	err = vm.RunMain("Main", args)
	return stdout.String(), err
}

// conformance programs run on both engines and must agree.
var conformancePrograms = map[string]string{
	"arith": `
public class Main {
    public static void main(String[] args) {
        int acc = 1;
        for (int i = 1; i < 12; i++) {
            acc = acc * i % 10007;
        }
        System.out.println(acc);
        System.out.println(2147483647 + 1);
        System.out.println(-2147483648 - 1);
        System.out.println(100000 * 100000);
        long l = 123456789123456789L;
        System.out.println(l / 3L);
        System.out.println(l % 1000000L);
        System.out.println(l * -7L);
        System.out.println(3.5 / 2.0);
        System.out.println((int) (7.0 / 2.0));
        System.out.println(1.0 / 0.0);
        System.out.println(Math.sqrt(2.0));
    }
}`,
	"strings": `
public class Main {
    public static void main(String[] args) {
        StringBuilder b = new StringBuilder();
        for (int i = 0; i < 10; i++) {
            b.append("x").append(i);
        }
        String s = b.toString();
        System.out.println(s);
        System.out.println(s.hashCode());
        System.out.println(s.substring(4, 8));
        System.out.println("count=" + s.length());
    }
}`,
	"exceptions": `
public class Main {
    static int depth(int n) {
        if (n == 0) {
            throw new IllegalStateException("bottom");
        }
        try {
            return depth(n - 1);
        } finally {
            if (n == 3) {
                System.out.println("finally at 3");
            }
        }
    }
    public static void main(String[] args) {
        try {
            depth(5);
        } catch (IllegalStateException e) {
            System.out.println("caught " + e.getMessage());
        }
    }
}`,
	"virtual": `
class A { int f() { return 1; } }
class B extends A { int f() { return 2; } }
class C extends B { int f() { return super.f() + 10; } }
public class Main {
    public static void main(String[] args) {
        A[] xs = new A[3];
        xs[0] = new A();
        xs[1] = new B();
        xs[2] = new C();
        int sum = 0;
        for (int i = 0; i < xs.length; i++) {
            sum = sum * 100 + xs[i].f();
        }
        System.out.println(sum);
    }
}`,
	"longheavy": `
public class Main {
    public static void main(String[] args) {
        long h = 1125899906842597L; // prime
        for (int i = 0; i < 1000; i++) {
            h = 31L * h + (long) i;
            h = h ^ (h >>> 17);
        }
        System.out.println(h);
    }
}`,
	"collections": `
import java.util.ArrayList;
import java.util.HashMap;
public class Main {
    public static void main(String[] args) {
        HashMap m = new HashMap();
        ArrayList l = new ArrayList();
        for (int i = 0; i < 200; i++) {
            String k = "k" + (i % 37);
            Integer old = (Integer) m.get(k);
            int base = old == null ? 0 : old.intValue();
            m.put(k, Integer.valueOf(base + i));
            l.add(k);
        }
        System.out.println(m.size() + " " + l.size());
        System.out.println(((Integer) m.get("k5")).intValue());
        int total = 0;
        Object[] keys = m.keys();
        for (int i = 0; i < keys.length; i++) {
            total += ((Integer) m.get(keys[i])).intValue();
        }
        System.out.println(total);
    }
}`,
	"switchy": `
public class Main {
    static int densePick(int v) {
        switch (v) {
        case 0: return 5;
        case 1: return 6;
        case 2:
        case 3: return 7;
        default: return -1;
        }
    }
    static String sparsePick(int v) {
        switch (v) {
        case -1000: return "low";
        case 0: return "zero";
        case 123456: return "high";
        }
        return "none";
    }
    public static void main(String[] args) {
        int acc = 0;
        for (int i = -1; i < 5; i++) { acc = acc * 10 + densePick(i); }
        System.out.println(acc);
        System.out.println(sparsePick(-1000) + sparsePick(0) + sparsePick(7) + sparsePick(123456));
    }
}`,
	"finallyDeep": `
public class Main {
    static StringBuilder log = new StringBuilder();
    static int f(int mode) {
        try {
            try {
                if (mode == 1) { throw new RuntimeException("inner"); }
                if (mode == 2) { return 20; }
                log.append("a");
            } finally {
                log.append("F1");
            }
            log.append("b");
        } catch (RuntimeException e) {
            log.append("C");
            return 1;
        } finally {
            log.append("F2");
        }
        return 0;
    }
    public static void main(String[] args) {
        System.out.println(f(0) + ":" + log);
        log = new StringBuilder();
        System.out.println(f(1) + ":" + log);
        log = new StringBuilder();
        System.out.println(f(2) + ":" + log);
    }
}`,
	"casting": `
public class Main {
    public static void main(String[] args) {
        Object[] things = new Object[3];
        things[0] = "text";
        things[1] = Integer.valueOf(9);
        things[2] = new int[4];
        int strings = 0;
        int ints = 0;
        for (int i = 0; i < things.length; i++) {
            if (things[i] instanceof String) { strings++; }
            if (things[i] instanceof Integer) { ints++; }
        }
        System.out.println(strings + " " + ints);
        try {
            String s = (String) things[1];
            System.out.println("bad");
        } catch (ClassCastException e) {
            System.out.println("ccast");
        }
        int[] back = (int[]) things[2];
        System.out.println(back.length);
    }
}`,
	"floatmath": `
public class Main {
    public static void main(String[] args) {
        double d = 0.0;
        for (int i = 1; i <= 50; i++) { d += 1.0 / (double) i; }
        System.out.println((int) (d * 1000000.0));
        float f = 0.1f;
        System.out.println(f + 0.2f > 0.3f);
        System.out.println(0.0 / 0.0 == 0.0 / 0.0);
        double nan = 0.0 / 0.0;
        System.out.println(nan < 1.0);
        System.out.println(nan >= 1.0);
        System.out.println((long) 1.0e18);
    }
}`,
	"wideArrays": `
public class Main {
    public static void main(String[] args) {
        long[] ls = new long[4];
        ls[1] = 1000000000000L;
        ls[1] += 234L;           // dup2_x2 path
        ls[2] = ls[1]++;
        System.out.println(ls[1] + " " + ls[2]);
        double[] ds = new double[3];
        ds[0] = 1.5;
        ds[0] *= 4.0;
        System.out.println(ds[0]);
        long l = 5L;
        l <<= 40;
        System.out.println(l);
        short[] ss = new short[2];
        ss[0] = (short) 70000;   // narrowing store
        System.out.println(ss[0]);
        byte b = (byte) 130;
        System.out.println(b);
        char c = (char) 65601;   // wraps to 'A'
        System.out.println(c);
    }
}`,
}

func TestDoppioMatchesNativeEngine(t *testing.T) {
	for name, src := range conformancePrograms {
		t.Run(name, func(t *testing.T) {
			nativeOut := runNative(t, src)
			doppioOut := runDoppio(t, browser.Chrome28, src)
			if nativeOut != doppioOut {
				t.Errorf("engines disagree:\nnative: %q\ndoppio: %q", nativeOut, doppioOut)
			}
		})
	}
}

func TestDoppioAcrossBrowsers(t *testing.T) {
	// Every conformance program must produce identical output on every
	// modelled browser — the paper's core portability claim ("letting
	// code run unmodified across Google Chrome, Firefox, Safari,
	// Opera, and Internet Explorer").
	for name, src := range conformancePrograms {
		want := runNative(t, src)
		for _, p := range browser.All() {
			t.Run(p.Name+"/"+name, func(t *testing.T) {
				got := runDoppio(t, p, src)
				if got != want {
					t.Errorf("%s output = %q, want %q", p.Name, got, want)
				}
			})
		}
	}
}

func TestDoppioSurvivesWatchdog(t *testing.T) {
	// A CPU-bound program far exceeding the watchdog budget must
	// still finish, because DoppioJVM segments execution (§6.1).
	p := browser.Chrome28
	p.WatchdogLimit = 100 * time.Millisecond
	out := runDoppio(t, p, `
public class Main {
    static int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    public static void main(String[] args) {
        System.out.println(fib(24));
    }
}`)
	if out != "46368\n" {
		t.Errorf("out = %q", out)
	}
}

func TestDoppioSuspensionStats(t *testing.T) {
	classes, err := rt.CompileWith(map[string]string{"Main.mj": `
public class Main {
    static int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    public static void main(String[] args) {
        System.out.println(fib(23));
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	win := browser.NewWindow(browser.Chrome28)
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		DisableEngineTax: true,
		Timeslice:        time.Millisecond,
	})
	if err := vm.RunMain("Main", nil); err != nil {
		t.Fatal(err)
	}
	st := vm.Runtime().Stats()
	if st.Suspensions == 0 {
		t.Error("expected suspensions during a CPU-bound run")
	}
	if st.CPUTime == 0 || st.SuspendedTime == 0 {
		t.Errorf("stats not accounted: %+v", st)
	}
	if vm.Instructions == 0 {
		t.Error("instruction counter not advancing")
	}
}

func TestDoppioThreads(t *testing.T) {
	out := runDoppio(t, browser.Chrome28, `
class Worker extends Thread {
    static Object lock = new Object();
    static int done = 0;
    int id;
    Worker(int id) { this.id = id; }
    public void run() {
        int local = 0;
        for (int i = 0; i < 5000; i++) {
            local += i;
        }
        synchronized (lock) {
            done++;
        }
    }
}

public class Main {
    public static void main(String[] args) {
        Worker[] workers = new Worker[4];
        for (int i = 0; i < workers.length; i++) {
            workers[i] = new Worker(i);
            workers[i].start();
        }
        for (int i = 0; i < workers.length; i++) {
            workers[i].join();
        }
        System.out.println(Worker.done);
    }
}`)
	if out != "4\n" {
		t.Errorf("out = %q", out)
	}
}

func TestDoppioWaitNotify(t *testing.T) {
	out := runDoppio(t, browser.Chrome28, `
class Channel {
    Object lock = new Object();
    int value;
    boolean full;

    void put(int v) {
        synchronized (lock) {
            while (full) { lock.wait(); }
            value = v;
            full = true;
            lock.notifyAll();
        }
    }

    int take() {
        synchronized (lock) {
            while (!full) { lock.wait(); }
            full = false;
            lock.notifyAll();
            return value;
        }
    }
}

class Sender extends Thread {
    Channel ch;
    Sender(Channel ch) { this.ch = ch; }
    public void run() {
        for (int i = 1; i <= 10; i++) { ch.put(i); }
    }
}

public class Main {
    public static void main(String[] args) {
        Channel ch = new Channel();
        new Sender(ch).start();
        int sum = 0;
        for (int i = 0; i < 10; i++) { sum += ch.take(); }
        System.out.println(sum);
    }
}`)
	if out != "55\n" {
		t.Errorf("out = %q", out)
	}
}

func TestDoppioSleep(t *testing.T) {
	start := time.Now()
	out := runDoppio(t, browser.Chrome28, `
public class Main {
    public static void main(String[] args) {
        Thread.sleep(30L);
        System.out.println("rested");
    }
}`)
	if out != "rested\n" {
		t.Errorf("out = %q", out)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Error("sleep returned early")
	}
}

// TestDoppioClassLoadingViaVFS exercises §6.4: classes stored in the
// Doppio file system (HTTP backend) download on demand during
// execution.
func TestDoppioClassLoadingViaVFS(t *testing.T) {
	classes, err := rt.CompileWith(map[string]string{"Main.mj": `
class Helper {
    static String greet() { return "from vfs"; }
}
public class Main {
    public static void main(String[] args) {
        System.out.println(Helper.greet());
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	win := browser.NewWindow(browser.Chrome28)
	// Publish every class file on the remote server.
	for name, data := range classes {
		win.Remote.Serve("classes/"+name+".class", data)
	}
	bufs := &buffer.Factory{Typed: true}
	httpBackend := vfs.NewHTTPFS(win.Loop, win.Remote, "classes")
	fs := vfs.New(win.Loop, bufs, httpBackend)

	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         &jvm.VFSClassProvider{FS: fs, Dirs: []string{"/"}},
		FS:               &jvm.VFSHostFS{FS: fs},
		DisableEngineTax: true,
	})
	if err := vm.RunMain("Main", nil); err != nil {
		t.Fatalf("RunMain: %v\n%s", err, stdout.String())
	}
	if got := stdout.String(); got != "from vfs\n" {
		t.Errorf("out = %q", got)
	}
	if vm.Reg.Get("Helper") == nil {
		t.Error("Helper class not loaded")
	}
}

func TestDoppioFileIO(t *testing.T) {
	out := runDoppio(t, browser.Chrome28, `
import java.io.FileOutputStream;
import java.io.FileInputStream;
import java.io.File;

public class Main {
    public static void main(String[] args) {
        FileOutputStream w = new FileOutputStream("/notes.txt");
        w.writeString("line one\n");
        w.writeString("line two\n");
        w.close();

        File f = new File("/notes.txt");
        System.out.println(f.exists());
        System.out.println(f.length());

        FileInputStream r = new FileInputStream("/notes.txt");
        int c = r.read();
        StringBuilder b = new StringBuilder();
        while (c >= 0) {
            b.append((char) c);
            c = r.read();
        }
        System.out.print(b.toString());
    }
}`)
	want := "true\n18\nline one\nline two\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestDoppioMissingClass(t *testing.T) {
	out, err := runDoppioErr(t, browser.Chrome28, `
public class Main {
    public static void main(String[] args) {
        System.out.println("start");
        Object o = makeIt();
        System.out.println(o);
    }
    static Object makeIt() {
        return null;
    }
}`)
	if err != nil {
		t.Fatalf("unexpected: %v / %s", err, out)
	}
	// Now an actually missing class reference at run time.
	classes, cerr := rt.CompileWith(map[string]string{"Main.mj": `
class Ghost { static int x = 1; }
public class Main {
    public static void main(String[] args) {
        System.out.println(Ghost.x);
    }
}`})
	if cerr != nil {
		t.Fatal(cerr)
	}
	delete(classes, "Ghost")
	win := browser.NewWindow(browser.Chrome28)
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		DisableEngineTax: true,
	})
	err = vm.RunMain("Main", nil)
	if err == nil || !strings.Contains(err.Error(), "ClassNotFound") {
		t.Errorf("err = %v (out %q)", err, stdout.String())
	}
}

func TestDoppioEvalJS(t *testing.T) {
	classes, err := rt.CompileWith(map[string]string{"Main.mj": `
import doppio.lang.JS;
public class Main {
    public static void main(String[] args) {
        System.out.println(JS.eval("1+2"));
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	win := browser.NewWindow(browser.Chrome28)
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		DisableEngineTax: true,
		JSEval: func(snippet string) string {
			if snippet == "1+2" {
				return "3"
			}
			return "?"
		},
	})
	if err := vm.RunMain("Main", nil); err != nil {
		t.Fatal(err)
	}
	if stdout.String() != "3\n" {
		t.Errorf("out = %q", stdout.String())
	}
}

func TestDoppioExit(t *testing.T) {
	classes, err := rt.CompileWith(map[string]string{"Main.mj": `
public class Main {
    public static void main(String[] args) {
        System.out.println("before");
        System.exit(3);
        System.out.println("after");
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	win := browser.NewWindow(browser.Chrome28)
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout: &stdout, Provider: jvm.MapProvider(classes), DisableEngineTax: true,
	})
	if err := vm.RunMain("Main", nil); err != nil {
		t.Fatal(err)
	}
	if stdout.String() != "before\n" {
		t.Errorf("out = %q", stdout.String())
	}
	if vm.ExitCode() != 3 {
		t.Errorf("exit code = %d", vm.ExitCode())
	}
}

func TestDoppioUnsafeHeapEndianness(t *testing.T) {
	// §6.5: the OpenJDK endianness probe must work over the Doppio
	// unmanaged heap (little endian, §5.2).
	out := runDoppio(t, browser.IE8, `
import sun.misc.Unsafe;
public class Main {
    public static void main(String[] args) {
        Unsafe u = Unsafe.getUnsafe();
        System.out.println(u.isBigEndian());
        long addr = u.allocateMemory(8L);
        u.putLong(addr, 1311768467463790320L); // 0x123456789ABCDEF0
        System.out.println(u.getLong(addr));
        u.freeMemory(addr);
    }
}`)
	if out != "false\n1311768467463790320\n" {
		t.Errorf("out = %q", out)
	}
}

func TestDoppioStdin(t *testing.T) {
	classes, err := rt.CompileWith(map[string]string{"Main.mj": `
public class Main {
    public static void main(String[] args) {
        StringBuilder b = new StringBuilder();
        int c = System.in.read();
        while (c >= 0 && c != '\n') {
            b.append((char) c);
            c = System.in.read();
        }
        System.out.println("Your name is " + b.toString());
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	win := browser.NewWindow(browser.Chrome28)
	input := strings.NewReader("Ada\n")
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:   &stdout,
		Provider: jvm.MapProvider(classes),
		Stdin: func(n int, cb func([]byte, error)) {
			// Deliver input asynchronously, as keyboard events would.
			win.Loop.AddPending()
			buf := make([]byte, n)
			m, err := input.Read(buf)
			win.Loop.InvokeExternal("stdin", func() {
				if m > 0 {
					cb(buf[:m], nil)
				} else {
					cb(nil, err)
				}
				win.Loop.DonePending()
			})
		},
		DisableEngineTax: true,
	})
	if err := vm.RunMain("Main", nil); err != nil {
		t.Fatal(err)
	}
	if stdout.String() != "Your name is Ada\n" {
		t.Errorf("out = %q", stdout.String())
	}
}

// TestCallFreeLoopLimitation documents the §6.1 caveat: DoppioJVM
// checks for suspension at call boundaries, so "it is possible in
// theory to execute an extremely long-running loop that makes no
// method calls" and exceed the watchdog. A call-free hot loop dies
// under an aggressive watchdog; the same work split across method
// calls survives.
func TestCallFreeLoopLimitation(t *testing.T) {
	p := browser.Chrome28
	p.WatchdogLimit = 60 * time.Millisecond

	callFree := `
public class Main {
    public static void main(String[] args) {
        int acc = 0;
        for (int i = 0; i < 8000000; i++) {
            acc = acc + i & 0xFFFF;
        }
        System.out.println(acc);
    }
}`
	if out, err := runDoppioErr(t, p, callFree); err == nil {
		t.Skipf("host too fast to trip the watchdog (out=%q)", out)
	}

	withCalls := `
public class Main {
    static int step(int acc, int i) { return acc + i & 0xFFFF; }
    public static void main(String[] args) {
        int acc = 0;
        for (int i = 0; i < 300000; i++) {
            acc = step(acc, i);
        }
        System.out.println(acc);
    }
}`
	if _, err := runDoppioErr(t, p, withCalls); err != nil {
		t.Errorf("call-boundary checks failed to segment: %v", err)
	}
}

// TestCustomScheduler exercises §4.3's pluggable scheduling: language
// implementations "can provide a scheduling function that determines
// which thread to resume".
func TestCustomScheduler(t *testing.T) {
	classes, err := rt.CompileWith(map[string]string{"Main.mj": `
class Spin extends Thread {
    static StringBuilder order = new StringBuilder();
    int id;
    Spin(int id) { this.id = id; }
    public void run() {
        synchronized (order) {
            order.append(id);
        }
    }
}
public class Main {
    public static void main(String[] args) {
        Spin a = new Spin(1);
        Spin b = new Spin(2);
        Spin c = new Spin(3);
        a.start(); b.start(); c.start();
        a.join(); b.join(); c.join();
        System.out.println(Spin.order.toString());
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	win := browser.NewWindow(browser.Chrome28)
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		DisableEngineTax: true,
	})
	if err := vm.RunMain("Main", nil); err != nil {
		t.Fatal(err)
	}
	// The default scheduler resumes threads in pool order, so the
	// completion order is deterministic.
	if got := stdout.String(); got != "123\n" {
		t.Errorf("order = %q", got)
	}
}

// TestManyLocalsWideInstructions forces local slots past 255 so the
// compiler emits wide load/store forms, and checks both engines agree.
func TestManyLocalsWideInstructions(t *testing.T) {
	var b strings.Builder
	b.WriteString("public class Main {\n    public static void main(String[] args) {\n")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&b, "        int v%d = %d;\n", i, i*7)
	}
	b.WriteString("        long wide0 = 1L;\n        long wide1 = 2L;\n")
	b.WriteString("        int total = 0;\n")
	for i := 0; i < 300; i += 17 {
		fmt.Fprintf(&b, "        total += v%d;\n", i)
	}
	b.WriteString("        v299 = v299 + 1;\n        total += v299;\n")
	b.WriteString("        System.out.println(total + \" \" + (wide0 + wide1));\n    }\n}\n")
	src := b.String()
	nativeOut := runNative(t, src)
	doppioOut := runDoppio(t, browser.Chrome28, src)
	if nativeOut != doppioOut {
		t.Errorf("engines disagree: native %q vs doppio %q", nativeOut, doppioOut)
	}
	if !strings.Contains(nativeOut, " 3\n") {
		t.Errorf("out = %q", nativeOut)
	}
}

// TestDoppioFileIOOnIE8 drives the whole §5.1 stack on the weakest
// profile: no typed arrays (number-array buffers), string validity
// checks (1-byte-per-char packing), setTimeout resumption — and JVM
// file I/O over a localStorage-backed file system.
func TestDoppioFileIOOnIE8(t *testing.T) {
	classes, err := rt.CompileWith(map[string]string{"Main.mj": `
import java.io.FileOutputStream;
import java.io.FileInputStream;
public class Main {
    public static void main(String[] args) {
        FileOutputStream w = new FileOutputStream("/kv/blob.bin");
        for (int i = 0; i < 64; i++) {
            w.write(i * 5 & 255);
        }
        w.close();
        FileInputStream r = new FileInputStream("/kv/blob.bin");
        int sum = 0;
        int c = r.read();
        while (c >= 0) {
            sum += c;
            c = r.read();
        }
        System.out.println(sum);
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	win := browser.NewWindow(browser.IE8)
	bufs := &buffer.Factory{
		Typed:            win.Profile.HasTypedArrays,
		ValidatesStrings: win.Profile.ValidatesStrings,
	}
	mount := vfs.NewMountFS(vfs.NewInMemory())
	mount.Mount("/kv", vfs.NewLocalStorageFS(win.LocalStorage, bufs))
	fs := vfs.New(win.Loop, bufs, mount)
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		FS:               &jvm.VFSHostFS{FS: fs},
		DisableEngineTax: true,
	})
	if err := vm.RunMain("Main", nil); err != nil {
		t.Fatal(err)
	}
	// sum of (i*5)&255 for i in 0..63: values 0,5,...,315&255.
	want := 0
	for i := 0; i < 64; i++ {
		want += i * 5 & 255
	}
	if stdout.String() != fmt.Sprintf("%d\n", want) {
		t.Errorf("out = %q, want %d", stdout.String(), want)
	}
	// The bytes really landed in localStorage, packed one byte per
	// char (IE8 validates strings).
	if _, ok := win.LocalStorage.GetItem("f!/blob.bin"); !ok {
		t.Error("file not persisted to localStorage")
	}
}

func TestDoppioThreadPriority(t *testing.T) {
	// Thread.setPriority clamps to MIN..MAX, persists in the Java
	// field, and lands on the core scheduler's run-queue level — both
	// for set-before-start threads and for the current thread.
	classes, err := rt.CompileWith(map[string]string{"Main.mj": `
class W extends Thread {
    public void run() { }
}
public class Main {
    public static void main(String[] args) {
        W a = new W();
        W b = new W();
        a.setPriority(9);
        b.setPriority(99);
        System.out.println(a.getPriority());
        System.out.println(b.getPriority());
        a.start(); b.start();
        a.join(); b.join();
        Thread.currentThread().setPriority(3);
        System.out.println(Thread.currentThread().getPriority());
        System.out.println(Thread.MAX_PRIORITY - Thread.MIN_PRIORITY);
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	win := browser.NewWindow(browser.Chrome28)
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		DisableEngineTax: true,
	})
	if err := vm.RunMain("Main", nil); err != nil {
		t.Fatal(err)
	}
	if got := stdout.String(); got != "9\n10\n3\n9\n" {
		t.Errorf("output = %q, want clamped priorities 9, 10, 3 and range 9", got)
	}
	// The core threads must carry the mapped priorities: the two
	// workers 9 and 10 (clamped), the main thread 3.
	var prios []int
	for _, ct := range vm.Runtime().Threads() {
		prios = append(prios, ct.Priority())
	}
	sort.Ints(prios)
	if len(prios) != 3 || prios[0] != 3 || prios[1] != 9 || prios[2] != 10 {
		t.Errorf("core thread priorities = %v, want [3 9 10]", prios)
	}
}

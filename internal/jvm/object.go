package jvm

import (
	"fmt"
	"math"
)

// Slot is one typed storage cell shared by both engines for object
// fields and static fields: primitives live in N (float bits for
// float/double), references in R.
type Slot struct {
	N int64
	R *Object
}

// zeroSlot returns the default value for a field descriptor.
func zeroSlot(desc string) Slot { return Slot{} }

// FloatSlot packs a float64 into a slot.
func FloatSlot(f float64) Slot { return Slot{N: int64(math.Float64bits(f))} }

// SlotFloat unpacks a float64 from a slot.
func SlotFloat(s Slot) float64 { return math.Float64frombits(uint64(s.N)) }

// Object is a JVM object, array, or java/lang/Class mirror.
//
// The paper's representation (§6.7) keys every instance field in a
// dictionary on "DeclaringClass/name"; that dictionary probe on every
// getfield/putfield is one of the two dominant interpreter costs the
// "Not So Fast" attribution methodology exposes. Instance storage is
// now a flat slot array indexed by the per-class FieldLayout computed
// at link time (superclass-prefix offsets, so an offset resolved
// against a superclass is valid for every subclass). The by-name
// GetField/SetField shims below preserve the old reflective surface
// for natives and engine-internal probes.
type Object struct {
	Class *Class

	// Slots is the instance field storage, indexed by Field.Offset
	// per the class's FieldLayout. Long/double fields occupy a single
	// slot (Slot.N is 64-bit).
	Slots []Slot

	// Arr is the payload for array objects: one of []int8 (byte,
	// boolean), []uint16 (char), []int16, []int32, []int64,
	// []float32, []float64, []*Object.
	Arr interface{}

	// Mon is the object's monitor, allocated on first use.
	Mon *Monitor

	// Extra carries VM-internal payloads (e.g. the Go-side stack
	// trace of a Throwable, or the *Class behind a Class mirror).
	Extra interface{}
}

// Monitor is the per-object lock of monitorenter/exit and
// wait/notify. Owners and waiters are engine-specific thread handles.
type Monitor struct {
	Owner interface{}
	Count int
	// BlockQ holds resume callbacks of threads blocked on entry.
	BlockQ []func()
	// WaitQ holds the wait-set: notify moves entries to BlockQ.
	WaitQ []*Waiter
}

// Waiter is one thread in a monitor's wait set.
type Waiter struct {
	Notify   func() // moves the thread to re-acquire the monitor
	Notified bool
}

// EnsureMonitor returns the object's monitor, allocating it lazily.
func (o *Object) EnsureMonitor() *Monitor {
	if o.Mon == nil {
		o.Mon = &Monitor{}
	}
	return o.Mon
}

// NewObject allocates an instance of c with zeroed fields for the
// whole hierarchy.
func NewObject(c *Class) *Object {
	return &Object{Class: c, Slots: make([]Slot, c.Layout().Slots)}
}

// GetField reads an instance field by name, resolving the declaring
// class — the compatibility shim over the flat layout. `from` is the
// class the caller resolved the field against; interfaces (no
// instance fields) and stale owners fall back to a scan from the
// object's own class.
func (o *Object) GetField(from *Class, name string) (Slot, error) {
	if off := from.OffsetOf(name); off >= 0 && off < len(o.Slots) {
		return o.Slots[off], nil
	}
	if from != o.Class {
		if off := o.Class.OffsetOf(name); off >= 0 && off < len(o.Slots) {
			return o.Slots[off], nil
		}
	}
	return Slot{}, fmt.Errorf("jvm: no field %s on %s", name, o.Class.Name)
}

// SetField writes an instance field by name (see GetField).
func (o *Object) SetField(from *Class, name string, v Slot) error {
	if off := from.OffsetOf(name); off >= 0 && off < len(o.Slots) {
		o.Slots[off] = v
		return nil
	}
	if from != o.Class {
		if off := o.Class.OffsetOf(name); off >= 0 && off < len(o.Slots) {
			o.Slots[off] = v
			return nil
		}
	}
	return fmt.Errorf("jvm: no field %s on %s", name, o.Class.Name)
}

// slotByName reads o's field through the per-class memoized offset
// cache — the engines' internal probes ("value", "message", "name",
// "fd", "priority") use this instead of repeated by-name dictionary
// lookups. Returns the zero Slot when the hierarchy lacks the field.
func slotByName(o *Object, name string) Slot {
	if off := o.Class.OffsetOf(name); off >= 0 && off < len(o.Slots) {
		return o.Slots[off]
	}
	return Slot{}
}

// setSlotByName writes o's field through the memoized offset cache;
// silently a no-op when the hierarchy lacks the field (matching the
// engines' historical ignored-error writes).
func setSlotByName(o *Object, name string, v Slot) {
	if off := o.Class.OffsetOf(name); off >= 0 && off < len(o.Slots) {
		o.Slots[off] = v
	}
}

// ArrayLen returns the length of an array object.
func (o *Object) ArrayLen() int {
	switch a := o.Arr.(type) {
	case []int8:
		return len(a)
	case []uint16:
		return len(a)
	case []int16:
		return len(a)
	case []int32:
		return len(a)
	case []int64:
		return len(a)
	case []float32:
		return len(a)
	case []float64:
		return len(a)
	case []*Object:
		return len(a)
	}
	return 0
}

// NewArray allocates a primitive or reference array object for the
// element descriptor.
func NewArray(arrClass *Class, elemDesc string, length int) *Object {
	o := &Object{Class: arrClass}
	switch elemDesc {
	case "Z", "B":
		o.Arr = make([]int8, length)
	case "C":
		o.Arr = make([]uint16, length)
	case "S":
		o.Arr = make([]int16, length)
	case "I":
		o.Arr = make([]int32, length)
	case "J":
		o.Arr = make([]int64, length)
	case "F":
		o.Arr = make([]float32, length)
	case "D":
		o.Arr = make([]float64, length)
	default:
		o.Arr = make([]*Object, length)
	}
	return o
}

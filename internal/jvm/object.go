package jvm

import (
	"fmt"
	"math"
)

// Slot is one typed storage cell shared by both engines for object
// fields and static fields: primitives live in N (float bits for
// float/double), references in R.
type Slot struct {
	N int64
	R *Object
}

// zeroSlot returns the default value for a field descriptor.
func zeroSlot(desc string) Slot { return Slot{} }

// FloatSlot packs a float64 into a slot.
func FloatSlot(f float64) Slot { return Slot{N: int64(math.Float64bits(f))} }

// SlotFloat unpacks a float64 from a slot.
func SlotFloat(s Slot) float64 { return math.Float64frombits(uint64(s.N)) }

// Object is a JVM object, array, or java/lang/Class mirror. Instance
// fields are a dictionary keyed on "DeclaringClass/name" — the
// representation §6.7 describes ("each object contains a reference to
// its class and a dictionary that contains all of its fields keyed on
// their names").
type Object struct {
	Class  *Class
	Fields map[string]Slot

	// Arr is the payload for array objects: one of []int8 (byte,
	// boolean), []uint16 (char), []int16, []int32, []int64,
	// []float32, []float64, []*Object.
	Arr interface{}

	// Mon is the object's monitor, allocated on first use.
	Mon *Monitor

	// Extra carries VM-internal payloads (e.g. the Go-side stack
	// trace of a Throwable, or the *Class behind a Class mirror).
	Extra interface{}
}

// Monitor is the per-object lock of monitorenter/exit and
// wait/notify. Owners and waiters are engine-specific thread handles.
type Monitor struct {
	Owner interface{}
	Count int
	// BlockQ holds resume callbacks of threads blocked on entry.
	BlockQ []func()
	// WaitQ holds the wait-set: notify moves entries to BlockQ.
	WaitQ []*Waiter
}

// Waiter is one thread in a monitor's wait set.
type Waiter struct {
	Notify   func() // moves the thread to re-acquire the monitor
	Notified bool
}

// EnsureMonitor returns the object's monitor, allocating it lazily.
func (o *Object) EnsureMonitor() *Monitor {
	if o.Mon == nil {
		o.Mon = &Monitor{}
	}
	return o.Mon
}

// NewObject allocates an instance of c with zeroed fields for the
// whole hierarchy.
func NewObject(c *Class) *Object {
	o := &Object{Class: c, Fields: make(map[string]Slot)}
	for k := c; k != nil; k = k.Super {
		for _, f := range k.Fields {
			if !f.IsStatic() {
				o.Fields[fieldKey(k, f.Name)] = zeroSlot(f.Desc)
			}
		}
	}
	return o
}

// fieldKey builds the dictionary key for a field of declaring class k.
func fieldKey(k *Class, name string) string { return k.Name + "/" + name }

// GetField reads an instance field, resolving the declaring class.
func (o *Object) GetField(from *Class, name string) (Slot, error) {
	for k := from; k != nil; k = k.Super {
		if v, ok := o.Fields[fieldKey(k, name)]; ok {
			return v, nil
		}
	}
	// Fall back to a scan from the object's own class (invokes from
	// interfaces etc).
	for k := o.Class; k != nil; k = k.Super {
		if v, ok := o.Fields[fieldKey(k, name)]; ok {
			return v, nil
		}
	}
	return Slot{}, fmt.Errorf("jvm: no field %s on %s", name, o.Class.Name)
}

// SetField writes an instance field.
func (o *Object) SetField(from *Class, name string, v Slot) error {
	for k := from; k != nil; k = k.Super {
		key := fieldKey(k, name)
		if _, ok := o.Fields[key]; ok {
			o.Fields[key] = v
			return nil
		}
	}
	for k := o.Class; k != nil; k = k.Super {
		key := fieldKey(k, name)
		if _, ok := o.Fields[key]; ok {
			o.Fields[key] = v
			return nil
		}
	}
	return fmt.Errorf("jvm: no field %s on %s", name, o.Class.Name)
}

// ArrayLen returns the length of an array object.
func (o *Object) ArrayLen() int {
	switch a := o.Arr.(type) {
	case []int8:
		return len(a)
	case []uint16:
		return len(a)
	case []int16:
		return len(a)
	case []int32:
		return len(a)
	case []int64:
		return len(a)
	case []float32:
		return len(a)
	case []float64:
		return len(a)
	case []*Object:
		return len(a)
	}
	return 0
}

// NewArray allocates a primitive or reference array object for the
// element descriptor.
func NewArray(arrClass *Class, elemDesc string, length int) *Object {
	o := &Object{Class: arrClass}
	switch elemDesc {
	case "Z", "B":
		o.Arr = make([]int8, length)
	case "C":
		o.Arr = make([]uint16, length)
	case "S":
		o.Arr = make([]int16, length)
	case "I":
		o.Arr = make([]int32, length)
	case "J":
		o.Arr = make([]int64, length)
	case "F":
		o.Arr = make([]float32, length)
	case "D":
		o.Arr = make([]float64, length)
	default:
		o.Arr = make([]*Object, length)
	}
	return o
}

package jvm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// registerNatives builds the native method table (§6.3): JVM
// interfaces to the file system, unmanaged memory, network
// connections, console, threading and math — implemented against the
// NativeHost so that one table serves both engines.
func registerNatives() map[string]NativeFunc {
	n := map[string]NativeFunc{}

	// --- java/lang/Object ---
	n["java/lang/Object.hashCode()I"] = func(h NativeHost, recv *Object, _ []Value) NativeResult {
		return NativeResult{Value: h.IdentityHash(recv)}
	}
	n["java/lang/Object.getClass()Ljava/lang/Class;"] = func(h NativeHost, recv *Object, _ []Value) NativeResult {
		return NativeResult{Value: h.ClassMirror(recv.Class)}
	}
	n["java/lang/Object.wait(J)V"] = func(h NativeHost, recv *Object, args []Value) NativeResult {
		if thrown := h.MonitorWait(recv, args[0].(int64)); thrown != nil {
			return NativeResult{Thrown: thrown}
		}
		return NativeResult{Async: true}
	}
	n["java/lang/Object.notify()V"] = func(h NativeHost, recv *Object, _ []Value) NativeResult {
		return NativeResult{Thrown: h.MonitorNotify(recv, false)}
	}
	n["java/lang/Object.notifyAll()V"] = func(h NativeHost, recv *Object, _ []Value) NativeResult {
		return NativeResult{Thrown: h.MonitorNotify(recv, true)}
	}

	// --- java/lang/System ---
	n["java/lang/System.currentTimeMillis()J"] = func(h NativeHost, _ *Object, _ []Value) NativeResult {
		return NativeResult{Value: h.CurrentTimeMillis()}
	}
	n["java/lang/System.nanoTime()J"] = func(h NativeHost, _ *Object, _ []Value) NativeResult {
		return NativeResult{Value: h.NanoTime()}
	}
	n["java/lang/System.exit(I)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		h.Exit(args[0].(int32))
		return NativeResult{}
	}
	n["java/lang/System.identityHashCode(Ljava/lang/Object;)I"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		o, _ := args[0].(*Object)
		if o == nil {
			return NativeResult{Value: int32(0)}
		}
		return NativeResult{Value: h.IdentityHash(o)}
	}
	n["java/lang/System.getProperty(Ljava/lang/String;)Ljava/lang/String;"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		key := h.GoString(args[0].(*Object))
		v := h.Property(key)
		if v == "" {
			return NativeResult{Value: nil}
		}
		return NativeResult{Value: h.Intern(v)}
	}
	n["java/lang/System.arraycopy(Ljava/lang/Object;ILjava/lang/Object;II)V"] = nativeArraycopy

	// --- java/lang/String ---
	n["java/lang/String.intern()Ljava/lang/String;"] = func(h NativeHost, recv *Object, _ []Value) NativeResult {
		return NativeResult{Value: h.Intern(h.GoString(recv))}
	}

	// --- java/lang/Throwable ---
	n["java/lang/Throwable.fillInStackTrace()Ljava/lang/Throwable;"] = func(h NativeHost, recv *Object, _ []Value) NativeResult {
		// Engines capture traces in MakeThrowable; user-thrown
		// exceptions get a fresh capture here.
		tmp := h.MakeThrowable(recv.Class.Name, "")
		recv.Extra = tmp.Extra
		return NativeResult{Value: recv}
	}
	n["java/lang/Throwable.stackTraceString()Ljava/lang/String;"] = func(h NativeHost, recv *Object, _ []Value) NativeResult {
		trace, _ := recv.Extra.([]string)
		var b strings.Builder
		for _, line := range trace {
			b.WriteString("\tat ")
			b.WriteString(line)
			b.WriteString("\n")
		}
		return NativeResult{Value: h.NewString(b.String())}
	}

	// --- java/lang/Thread ---
	n["java/lang/Thread.start0()V"] = func(h NativeHost, recv *Object, _ []Value) NativeResult {
		h.SpawnThread(recv)
		return NativeResult{}
	}
	n["java/lang/Thread.sleep(J)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.Sleep(args[0].(int64), func() { complete(nil, nil) })
		})
		return NativeResult{Async: true}
	}
	n["java/lang/Thread.yield()V"] = func(h NativeHost, _ *Object, _ []Value) NativeResult {
		h.YieldThread()
		return NativeResult{}
	}
	n["java/lang/Thread.setPriority0(I)V"] = func(h NativeHost, recv *Object, args []Value) NativeResult {
		h.SetThreadPriority(recv, args[0].(int32))
		return NativeResult{}
	}
	n["java/lang/Thread.currentThread()Ljava/lang/Thread;"] = func(h NativeHost, _ *Object, _ []Value) NativeResult {
		return NativeResult{Value: h.CurrentThreadObj()}
	}
	n["java/lang/Thread.isAlive()Z"] = func(h NativeHost, recv *Object, _ []Value) NativeResult {
		if h.IsThreadAlive(recv) {
			return NativeResult{Value: int32(1)}
		}
		return NativeResult{Value: int32(0)}
	}
	n["java/lang/Thread.join()V"] = func(h NativeHost, recv *Object, _ []Value) NativeResult {
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.JoinThread(recv, func() { complete(nil, nil) })
		})
		return NativeResult{Async: true}
	}

	// --- java/lang/Math ---
	mathUnary := func(fn func(float64) float64) NativeFunc {
		return func(_ NativeHost, _ *Object, args []Value) NativeResult {
			return NativeResult{Value: fn(args[0].(float64))}
		}
	}
	n["java/lang/Math.sqrt(D)D"] = mathUnary(math.Sqrt)
	n["java/lang/Math.sin(D)D"] = mathUnary(math.Sin)
	n["java/lang/Math.cos(D)D"] = mathUnary(math.Cos)
	n["java/lang/Math.tan(D)D"] = mathUnary(math.Tan)
	n["java/lang/Math.log(D)D"] = mathUnary(math.Log)
	n["java/lang/Math.exp(D)D"] = mathUnary(math.Exp)
	n["java/lang/Math.floor(D)D"] = mathUnary(math.Floor)
	n["java/lang/Math.ceil(D)D"] = mathUnary(math.Ceil)
	n["java/lang/Math.atan2(DD)D"] = func(_ NativeHost, _ *Object, args []Value) NativeResult {
		return NativeResult{Value: math.Atan2(args[0].(float64), args[1].(float64))}
	}
	n["java/lang/Math.pow(DD)D"] = func(_ NativeHost, _ *Object, args []Value) NativeResult {
		return NativeResult{Value: math.Pow(args[0].(float64), args[1].(float64))}
	}

	// --- boxed numerics: bit patterns and decimal text ---
	n["java/lang/Double.doubleToLongBits(D)J"] = func(_ NativeHost, _ *Object, args []Value) NativeResult {
		return NativeResult{Value: int64(math.Float64bits(args[0].(float64)))}
	}
	n["java/lang/Double.longBitsToDouble(J)D"] = func(_ NativeHost, _ *Object, args []Value) NativeResult {
		return NativeResult{Value: math.Float64frombits(uint64(args[0].(int64)))}
	}
	n["java/lang/Float.floatToIntBits(F)I"] = func(_ NativeHost, _ *Object, args []Value) NativeResult {
		return NativeResult{Value: int32(math.Float32bits(args[0].(float32)))}
	}
	n["java/lang/Float.intBitsToFloat(I)F"] = func(_ NativeHost, _ *Object, args []Value) NativeResult {
		return NativeResult{Value: math.Float32frombits(uint32(args[0].(int32)))}
	}
	n["java/lang/Double.toStringNative(D)Ljava/lang/String;"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		return NativeResult{Value: h.NewString(javaDoubleString(args[0].(float64)))}
	}
	n["java/lang/Double.parseDouble(Ljava/lang/String;)D"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		s := strings.TrimSpace(h.GoString(args[0].(*Object)))
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return NativeResult{Thrown: h.MakeThrowable("java/lang/NumberFormatException", s)}
		}
		return NativeResult{Value: v}
	}

	// --- java/io console streams ---
	n["java/io/PrintStream.writeNative(Ljava/lang/String;)V"] = func(h NativeHost, recv *Object, args []Value) NativeResult {
		s := h.GoString(args[0].(*Object))
		fd := slotByName(recv, "fd")
		w := h.Stdout()
		if fd.N == 1 {
			w = h.Stderr()
		}
		// A process-layer pipe end acknowledges writes asynchronously
		// (backpressure): block the guest thread until the sink accepts
		// the bytes. Writing to a pipe with no reader raises
		// java/io/IOException, the JVM face of EPIPE.
		if aw, ok := w.(AsyncWriter); ok {
			h.BlockAndCall(func(complete func(Value, *Object)) {
				aw.WriteAsync([]byte(s), func(_ int, err error) {
					if err != nil {
						complete(nil, ioException(h, err))
						return
					}
					complete(nil, nil)
				})
			})
			return NativeResult{Async: true}
		}
		fmt.Fprint(w, s)
		return NativeResult{}
	}
	n["java/io/ConsoleIn.readNative(I)[B"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		count := int(args[0].(int32))
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.StdinRead(count, func(data []byte, err error) {
				if err != nil && len(data) == 0 {
					complete(nil, nil) // EOF → null
					return
				}
				complete(byteArray(h, data), nil)
			})
		})
		return NativeResult{Async: true}
	}

	// --- doppio/io/FileSystem: the Doppio file system bridge (§6.3) ---
	registerFSNatives(n)

	// --- sun/misc/Unsafe over the unmanaged heap (§6.5) ---
	registerUnsafeNatives(n)

	// --- java/net sockets over Doppio sockets (§5.3) ---
	registerSocketNatives(n)

	// --- §6.8 JavaScript interop ---
	n["doppio/lang/JS.eval(Ljava/lang/String;)Ljava/lang/String;"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		return NativeResult{Value: h.NewString(h.EvalJS(h.GoString(args[0].(*Object))))}
	}

	return n
}

// javaDoubleString renders a double the way Java's Double.toString
// does for the common cases.
func javaDoubleString(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "Infinity"
	case math.IsInf(v, -1):
		return "-Infinity"
	case v == math.Trunc(v) && math.Abs(v) < 1e7:
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// byteArray wraps data in a JVM byte[].
func byteArray(h NativeHost, data []byte) *Object {
	arrC := h.LookupClass("[B")
	arr := NewArray(arrC, "B", len(data))
	dst := arr.Arr.([]int8)
	for i, b := range data {
		dst[i] = int8(b)
	}
	return arr
}

// goBytes reads a JVM byte[] into Go bytes.
func goBytes(o *Object) []byte {
	src, _ := o.Arr.([]int8)
	out := make([]byte, len(src))
	for i, b := range src {
		out[i] = byte(b)
	}
	return out
}

func stringArray(h NativeHost, ss []string) *Object {
	arrC := h.LookupClass("[Ljava/lang/String;")
	arr := NewArray(arrC, "Ljava/lang/String;", len(ss))
	dst := arr.Arr.([]*Object)
	for i, s := range ss {
		dst[i] = h.Intern(s)
	}
	return arr
}

func ioException(h NativeHost, err error) *Object {
	return h.MakeThrowable("java/io/IOException", err.Error())
}

func registerFSNatives(n map[string]NativeFunc) {
	const fs = "doppio/io/FileSystem."
	n[fs+"readFile(Ljava/lang/String;)[B"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		path := h.GoString(args[0].(*Object))
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.FS().ReadFile(path, func(data []byte, err error) {
				if err != nil {
					complete(nil, h.MakeThrowable("java/io/FileNotFoundException", path))
					return
				}
				complete(byteArray(h, data), nil)
			})
		})
		return NativeResult{Async: true}
	}
	n[fs+"writeFile(Ljava/lang/String;[B)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		path := h.GoString(args[0].(*Object))
		data := goBytes(args[1].(*Object))
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.FS().WriteFile(path, data, func(err error) {
				if err != nil {
					complete(nil, ioException(h, err))
					return
				}
				complete(nil, nil)
			})
		})
		return NativeResult{Async: true}
	}
	n[fs+"appendFile(Ljava/lang/String;[B)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		path := h.GoString(args[0].(*Object))
		data := goBytes(args[1].(*Object))
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.FS().Append(path, data, func(err error) {
				if err != nil {
					complete(nil, ioException(h, err))
					return
				}
				complete(nil, nil)
			})
		})
		return NativeResult{Async: true}
	}
	n[fs+"exists(Ljava/lang/String;)Z"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		path := h.GoString(args[0].(*Object))
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.FS().Stat(path, func(_ int64, _, exists bool) {
				complete(boolVal(exists), nil)
			})
		})
		return NativeResult{Async: true}
	}
	n[fs+"isDirectory(Ljava/lang/String;)Z"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		path := h.GoString(args[0].(*Object))
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.FS().Stat(path, func(_ int64, isDir, _ bool) {
				complete(boolVal(isDir), nil)
			})
		})
		return NativeResult{Async: true}
	}
	n[fs+"length(Ljava/lang/String;)J"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		path := h.GoString(args[0].(*Object))
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.FS().Stat(path, func(size int64, _, _ bool) {
				complete(size, nil)
			})
		})
		return NativeResult{Async: true}
	}
	n[fs+"list(Ljava/lang/String;)[Ljava/lang/String;"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		path := h.GoString(args[0].(*Object))
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.FS().List(path, func(names []string, err error) {
				if err != nil {
					complete(nil, ioException(h, err))
					return
				}
				complete(stringArray(h, names), nil)
			})
		})
		return NativeResult{Async: true}
	}
	n[fs+"delete(Ljava/lang/String;)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		path := h.GoString(args[0].(*Object))
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.FS().Delete(path, func(err error) {
				if err != nil {
					complete(nil, ioException(h, err))
					return
				}
				complete(nil, nil)
			})
		})
		return NativeResult{Async: true}
	}
	n[fs+"mkdir(Ljava/lang/String;)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		path := h.GoString(args[0].(*Object))
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.FS().Mkdir(path, func(err error) {
				if err != nil {
					complete(nil, ioException(h, err))
					return
				}
				complete(nil, nil)
			})
		})
		return NativeResult{Async: true}
	}
	n[fs+"rename(Ljava/lang/String;Ljava/lang/String;)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		oldP := h.GoString(args[0].(*Object))
		newP := h.GoString(args[1].(*Object))
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.FS().Rename(oldP, newP, func(err error) {
				if err != nil {
					complete(nil, ioException(h, err))
					return
				}
				complete(nil, nil)
			})
		})
		return NativeResult{Async: true}
	}
}

func boolVal(b bool) Value {
	if b {
		return int32(1)
	}
	return int32(0)
}

func registerUnsafeNatives(n map[string]NativeFunc) {
	const u = "sun/misc/Unsafe."
	n[u+"allocateMemory(J)J"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		addr, err := h.UnsafeHeap().Malloc(int(args[0].(int64)))
		if err != nil {
			return NativeResult{Thrown: h.MakeThrowable("java/lang/OutOfMemoryError", err.Error())}
		}
		return NativeResult{Value: int64(addr)}
	}
	n[u+"freeMemory(J)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		if err := h.UnsafeHeap().Free(int(args[0].(int64))); err != nil {
			return NativeResult{Thrown: h.MakeThrowable("java/lang/IllegalArgumentException", err.Error())}
		}
		return NativeResult{}
	}
	n[u+"getByte(J)B"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		return NativeResult{Value: int32(h.UnsafeHeap().GetI8(int(args[0].(int64))))}
	}
	n[u+"putByte(JB)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		h.UnsafeHeap().PutI8(int(args[0].(int64)), int8(args[1].(int32)))
		return NativeResult{}
	}
	n[u+"getShort(J)S"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		return NativeResult{Value: int32(h.UnsafeHeap().GetI16(int(args[0].(int64))))}
	}
	n[u+"putShort(JS)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		h.UnsafeHeap().PutI16(int(args[0].(int64)), int16(args[1].(int32)))
		return NativeResult{}
	}
	n[u+"getInt(J)I"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		return NativeResult{Value: h.UnsafeHeap().GetI32(int(args[0].(int64)))}
	}
	n[u+"putInt(JI)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		h.UnsafeHeap().PutI32(int(args[0].(int64)), args[1].(int32))
		return NativeResult{}
	}
	n[u+"getLong(J)J"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		return NativeResult{Value: h.UnsafeHeap().GetI64(int(args[0].(int64)))}
	}
	n[u+"putLong(JJ)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		h.UnsafeHeap().PutI64(int(args[0].(int64)), args[1].(int64))
		return NativeResult{}
	}
	n[u+"getFloat(J)F"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		return NativeResult{Value: h.UnsafeHeap().GetF32(int(args[0].(int64)))}
	}
	n[u+"putFloat(JF)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		h.UnsafeHeap().PutF32(int(args[0].(int64)), args[1].(float32))
		return NativeResult{}
	}
	n[u+"getDouble(J)D"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		return NativeResult{Value: h.UnsafeHeap().GetF64(int(args[0].(int64)))}
	}
	n[u+"putDouble(JD)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		h.UnsafeHeap().PutF64(int(args[0].(int64)), args[1].(float64))
		return NativeResult{}
	}
}

func registerSocketNatives(n map[string]NativeFunc) {
	const s = "java/net/Socket."
	n[s+"connect0(Ljava/lang/String;I)I"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		host := h.GoString(args[0].(*Object))
		port := args[1].(int32)
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.SocketConnect(host, port, func(handle int32, err error) {
				if err != nil {
					complete(nil, ioException(h, err))
					return
				}
				complete(handle, nil)
			})
		})
		return NativeResult{Async: true}
	}
	n[s+"read0(II)[B"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		handle := args[0].(int32)
		count := args[1].(int32)
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.SocketRead(handle, count, func(data []byte, err error) {
				if err != nil {
					complete(nil, ioException(h, err))
					return
				}
				if data == nil {
					complete(nil, nil) // EOF
					return
				}
				complete(byteArray(h, data), nil)
			})
		})
		return NativeResult{Async: true}
	}
	n[s+"write0(I[B)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		handle := args[0].(int32)
		data := goBytes(args[1].(*Object))
		h.BlockAndCall(func(complete func(Value, *Object)) {
			h.SocketWrite(handle, data, func(err error) {
				if err != nil {
					complete(nil, ioException(h, err))
					return
				}
				complete(nil, nil)
			})
		})
		return NativeResult{Async: true}
	}
	n[s+"close0(I)V"] = func(h NativeHost, _ *Object, args []Value) NativeResult {
		h.SocketClose(args[0].(int32))
		return NativeResult{}
	}
}

// nativeArraycopy implements System.arraycopy for every element kind.
func nativeArraycopy(h NativeHost, _ *Object, args []Value) NativeResult {
	src, _ := args[0].(*Object)
	srcPos := int(args[1].(int32))
	dst, _ := args[2].(*Object)
	dstPos := int(args[3].(int32))
	length := int(args[4].(int32))
	if src == nil || dst == nil {
		return NativeResult{Thrown: h.MakeThrowable("java/lang/NullPointerException", "arraycopy")}
	}
	if srcPos < 0 || dstPos < 0 || length < 0 ||
		srcPos+length > src.ArrayLen() || dstPos+length > dst.ArrayLen() {
		return NativeResult{Thrown: h.MakeThrowable("java/lang/ArrayIndexOutOfBoundsException", "arraycopy")}
	}
	switch s := src.Arr.(type) {
	case []int8:
		d, ok := dst.Arr.([]int8)
		if !ok {
			return arrayStoreMismatch(h)
		}
		copy(d[dstPos:dstPos+length], s[srcPos:srcPos+length])
	case []uint16:
		d, ok := dst.Arr.([]uint16)
		if !ok {
			return arrayStoreMismatch(h)
		}
		copy(d[dstPos:dstPos+length], s[srcPos:srcPos+length])
	case []int16:
		d, ok := dst.Arr.([]int16)
		if !ok {
			return arrayStoreMismatch(h)
		}
		copy(d[dstPos:dstPos+length], s[srcPos:srcPos+length])
	case []int32:
		d, ok := dst.Arr.([]int32)
		if !ok {
			return arrayStoreMismatch(h)
		}
		copy(d[dstPos:dstPos+length], s[srcPos:srcPos+length])
	case []int64:
		d, ok := dst.Arr.([]int64)
		if !ok {
			return arrayStoreMismatch(h)
		}
		copy(d[dstPos:dstPos+length], s[srcPos:srcPos+length])
	case []float32:
		d, ok := dst.Arr.([]float32)
		if !ok {
			return arrayStoreMismatch(h)
		}
		copy(d[dstPos:dstPos+length], s[srcPos:srcPos+length])
	case []float64:
		d, ok := dst.Arr.([]float64)
		if !ok {
			return arrayStoreMismatch(h)
		}
		copy(d[dstPos:dstPos+length], s[srcPos:srcPos+length])
	case []*Object:
		d, ok := dst.Arr.([]*Object)
		if !ok {
			return arrayStoreMismatch(h)
		}
		copy(d[dstPos:dstPos+length], s[srcPos:srcPos+length])
	default:
		return arrayStoreMismatch(h)
	}
	return NativeResult{}
}

func arrayStoreMismatch(h NativeHost) NativeResult {
	return NativeResult{Thrown: h.MakeThrowable("java/lang/ArrayStoreException", "incompatible array types")}
}

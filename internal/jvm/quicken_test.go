package jvm_test

import (
	"bytes"
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/jvm"
	"doppio/internal/jvm/rt"
)

// runDoppioQuick runs source on the Doppio engine with quickening
// toggled, returning stdout, the run error, and the quickening stats.
func runDoppioQuick(t *testing.T, source string, quicken bool, slice time.Duration) (string, error, jvm.QuickStats) {
	t.Helper()
	classes, err := rt.CompileWith(map[string]string{"Main.mj": source})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	win := browser.NewWindow(browser.Chrome28)
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		DisableEngineTax: true,
		Timeslice:        slice,
		Quicken:          quicken,
	})
	runErr := vm.RunMain("Main", nil)
	return stdout.String(), runErr, vm.QuickStats()
}

// runNativeQuick is the native-engine counterpart of runDoppioQuick.
func runNativeQuick(t *testing.T, source string, quicken bool) (string, error, jvm.QuickStats) {
	t.Helper()
	classes, err := rt.CompileWith(map[string]string{"Main.mj": source})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var stdout bytes.Buffer
	vm := jvm.NewNativeVM(jvm.MapProvider(classes), jvm.NativeOptions{
		Stdout:  &stdout,
		Stderr:  &stdout,
		Quicken: quicken,
	})
	runErr := vm.RunMain("Main", nil)
	return stdout.String(), runErr, vm.QuickStats()
}

// TestQuickenEquivalenceCorpus runs every conformance program through
// both engines with quickening on and off. The speed tier is a pure
// optimization: all four configurations must produce byte-identical
// output and agree on the error outcome.
func TestQuickenEquivalenceCorpus(t *testing.T) {
	for name, src := range conformancePrograms {
		t.Run(name, func(t *testing.T) {
			nOff, nOffErr, _ := runNativeQuick(t, src, false)
			nOn, nOnErr, _ := runNativeQuick(t, src, true)
			dOff, dOffErr, _ := runDoppioQuick(t, src, false, 2*time.Millisecond)
			dOn, dOnErr, _ := runDoppioQuick(t, src, true, 2*time.Millisecond)
			if (nOffErr == nil) != (nOnErr == nil) || (dOffErr == nil) != (dOnErr == nil) {
				t.Fatalf("error outcome changed under quickening: native %v/%v doppio %v/%v",
					nOffErr, nOnErr, dOffErr, dOnErr)
			}
			if nOn != nOff {
				t.Errorf("native quickened output diverged:\noff: %q\non:  %q", nOff, nOn)
			}
			if dOn != dOff {
				t.Errorf("doppio quickened output diverged:\noff: %q\non:  %q", dOff, dOn)
			}
			if dOn != nOn {
				t.Errorf("engines disagree under quickening:\nnative: %q\ndoppio: %q", nOn, dOn)
			}
		})
	}
}

// hotProgram drives a call site and field accesses well past the
// fusion warm-up thresholds so the deep quickening tier (fused
// superinstructions plus pre-decoded simple forms) is exercised, not
// just the lazily installed field/invoke kinds.
const hotProgram = `
class Cell {
    int v;
    Cell next;
    Cell(int v) { this.v = v; }
    int get() { return v; }
}
public class Main {
    static int walk(Cell head) {
        int sum = 0;
        for (Cell c = head; c != null; c = c.next) {
            sum = sum * 31 + c.get();
        }
        return sum;
    }
    public static void main(String[] args) {
        Cell head = null;
        for (int i = 0; i < 64; i++) {
            Cell c = new Cell(i);
            c.next = head;
            head = c;
        }
        int acc = 0;
        for (int r = 0; r < 400; r++) {
            acc = acc ^ walk(head) + r;
        }
        System.out.println(acc);
    }
}`

func TestQuickenHotLoopEquivalence(t *testing.T) {
	dOff, _, _ := runDoppioQuick(t, hotProgram, false, 2*time.Millisecond)
	dOn, _, st := runDoppioQuick(t, hotProgram, true, 2*time.Millisecond)
	if dOn != dOff {
		t.Fatalf("hot loop output diverged:\noff: %q\non:  %q", dOff, dOn)
	}
	if st.Sites == 0 || st.ICHits == 0 {
		t.Errorf("hot loop did not quicken: %+v", st)
	}
	if st.Fusions == 0 || st.FusedExec == 0 {
		t.Errorf("hot loop did not reach the fusion tier: %+v", st)
	}
	nOff, _, _ := runNativeQuick(t, hotProgram, false)
	nOn, nst := "", jvm.QuickStats{}
	nOn, _, nst = runNativeQuick(t, hotProgram, true)
	if nOn != nOff {
		t.Fatalf("native hot loop output diverged:\noff: %q\non:  %q", nOff, nOn)
	}
	if nst.Sites == 0 {
		t.Errorf("native hot loop did not quicken: %+v", nst)
	}
}

// gateProgram drives the getfield;ifeq fused pair: drain()'s loop
// condition is a boolean field read whose value feeds ifeq directly.
// The receiver comes through a getstatic (not an aload), so the fused
// QGetfieldIfeq form itself executes rather than being shadowed by
// QAloadGetfield. The loop body avoids every other fusable pair, so a
// nonzero Fusions count pins the new form specifically. The final
// round nulls the receiver to check the fused handler throws the same
// NullPointerException at the same site as the generic pair.
const gateProgram = `
class Gate {
    boolean open;
}
public class Main {
    static Gate gate = new Gate();
    static int drain() {
        int n = 0;
        while (gate.open) {
            n = n + 1;
            if (n >= 40) { gate.open = false; }
        }
        return n;
    }
    public static void main(String[] args) {
        int acc = 0;
        for (int r = 0; r < 200; r++) {
            gate.open = true;
            acc = acc + drain();
        }
        System.out.println(acc);
        gate = null;
        System.out.println(drain());
    }
}`

// boundProgram drives the iload;if_icmplt fused pair: the loop
// condition compares against a local bound, and the body sticks to
// xor so the only fusable hot pair is the bound load feeding
// if_icmplt. The Main.seed read exists to give sweep a quickened
// site — the fusion pass only visits methods that own a side table.
const boundProgram = `
public class Main {
    static int seed = 0;
    static int sweep(int limit) {
        int s = 0;
        int i = 0;
        while (i < limit) {
            s = (s ^ i) + Main.seed;
            i = i + 1;
        }
        return s;
    }
    public static void main(String[] args) {
        int acc = 0;
        for (int r = 0; r < 200; r++) {
            acc = acc ^ sweep(64 + r % 7);
        }
        System.out.println(acc);
    }
}`

// TestQuickenFusedBranchPairs checks the branch-fused
// superinstructions (getfield;ifeq and iload;if_icmplt) for output
// and error-outcome equivalence against the generic interpreter on
// both engines, and that each program actually reaches the fused
// tier.
func TestQuickenFusedBranchPairs(t *testing.T) {
	for name, src := range map[string]string{"gate": gateProgram, "bound": boundProgram} {
		t.Run(name, func(t *testing.T) {
			dOff, dOffErr, _ := runDoppioQuick(t, src, false, 2*time.Millisecond)
			dOn, dOnErr, st := runDoppioQuick(t, src, true, 2*time.Millisecond)
			if dOn != dOff {
				t.Errorf("doppio output diverged:\noff: %q\non:  %q", dOff, dOn)
			}
			if (dOffErr == nil) != (dOnErr == nil) {
				t.Errorf("doppio error outcome changed: off=%v on=%v", dOffErr, dOnErr)
			}
			if st.Fusions == 0 || st.FusedExec == 0 {
				t.Errorf("doppio run did not reach the fused tier: %+v", st)
			}
			nOff, nOffErr, _ := runNativeQuick(t, src, false)
			nOn, nOnErr, nst := runNativeQuick(t, src, true)
			if nOn != nOff {
				t.Errorf("native output diverged:\noff: %q\non:  %q", nOff, nOn)
			}
			if (nOffErr == nil) != (nOnErr == nil) {
				t.Errorf("native error outcome changed: off=%v on=%v", nOffErr, nOnErr)
			}
			if nst.Fusions == 0 || nst.FusedExec == 0 {
				t.Errorf("native run did not reach the fused tier: %+v", nst)
			}
			// Uncaught-exception banners embed engine-specific thread
			// ids, so cross-engine output only compares on clean runs.
			if dOnErr == nil && nOnErr == nil && dOn != nOn {
				t.Errorf("engines disagree under fusion:\nnative: %q\ndoppio: %q", nOn, dOn)
			}
		})
	}
}

// TestQuickenICMissFallback cycles a megamorphic receiver through a
// single quickened invokevirtual site. The inline cache must repoint
// (misses), then deopt to generic dispatch once the miss budget is
// exhausted — and the program output must stay correct throughout.
const polyProgram = `
class Shape { int area() { return 0; } }
class Sq extends Shape { int s; Sq(int s) { this.s = s; } int area() { return s * s; } }
class Re extends Shape { int w; Re(int w) { this.w = w; } int area() { return w * 2; } }
class Tr extends Shape { int b; Tr(int b) { this.b = b; } int area() { return b * 3; } }
public class Main {
    public static void main(String[] args) {
        Shape[] xs = new Shape[3];
        xs[0] = new Sq(4);
        xs[1] = new Re(5);
        xs[2] = new Tr(6);
        int sum = 0;
        for (int i = 0; i < 300; i++) {
            sum += xs[i % 3].area();
        }
        System.out.println(sum);
    }
}`

func TestQuickenICMissFallback(t *testing.T) {
	want, _, _ := runDoppioQuick(t, polyProgram, false, 2*time.Millisecond)
	got, _, st := runDoppioQuick(t, polyProgram, true, 2*time.Millisecond)
	if got != want {
		t.Fatalf("polymorphic output diverged:\noff: %q\non:  %q", want, got)
	}
	if st.ICMisses == 0 {
		t.Errorf("expected inline-cache misses on a cycling receiver: %+v", st)
	}
	if st.Deopts == 0 {
		t.Errorf("expected the megamorphic site to deopt to generic dispatch: %+v", st)
	}
	ngot, _, nst := runNativeQuick(t, polyProgram, true)
	if ngot != want {
		t.Fatalf("native polymorphic output diverged:\noff: %q\non:  %q", want, ngot)
	}
	if nst.ICMisses == 0 || nst.Deopts == 0 {
		t.Errorf("native engine: expected misses and a deopt: %+v", nst)
	}
}

// TestQuickenClassLoadingRace interleaves threads that are the first
// to touch lazily loaded classes while their shared call sites are
// being quickened. The cooperative scheduler switches threads at a
// tiny timeslice, so installs, inline-cache fills, and class loading
// overlap; the result must stay deterministic and identical to the
// generic interpreter's.
const raceProgram = `
class LazyA { static int seed() { return 17; } }
class LazyB { static int seed() { return 29; } }
class Box { int v; Box(int v) { this.v = v; } int get() { return v; } }
class Loader extends Thread {
    static Object lock = new Object();
    static int total = 0;
    int id;
    Loader(int id) { this.id = id; }
    public void run() {
        int acc = 0;
        for (int i = 0; i < 500; i++) {
            int base;
            if (id % 2 == 0) { base = LazyA.seed(); } else { base = LazyB.seed(); }
            Box b = new Box(base + i);
            acc += b.get();
        }
        synchronized (lock) {
            total += acc;
        }
    }
}
public class Main {
    public static void main(String[] args) {
        Loader[] ws = new Loader[4];
        for (int i = 0; i < ws.length; i++) {
            ws[i] = new Loader(i);
            ws[i].start();
        }
        for (int i = 0; i < ws.length; i++) {
            ws[i].join();
        }
        System.out.println(Loader.total);
    }
}`

func TestQuickenClassLoadingRace(t *testing.T) {
	// A 50µs slice forces many mid-method suspensions, interleaving
	// quickening installs with first-touch class loading.
	want, wantErr, _ := runDoppioQuick(t, raceProgram, false, 50*time.Microsecond)
	if wantErr != nil {
		t.Fatalf("generic run failed: %v\n%s", wantErr, want)
	}
	got, gotErr, st := runDoppioQuick(t, raceProgram, true, 50*time.Microsecond)
	if gotErr != nil {
		t.Fatalf("quickened run failed: %v\n%s", gotErr, got)
	}
	if got != want {
		t.Fatalf("racy class loading diverged:\noff: %q\non:  %q", want, got)
	}
	if st.Sites == 0 {
		t.Errorf("racy run did not quicken: %+v", st)
	}
}

// TestQuickenShadowedFieldLayout declares the same field name at three
// depths of a hierarchy. Each declaration must get a distinct slot in
// the flat layout, and quickened getfield/putfield must resolve each
// access to the slot of the class that lexically owns it.
const shadowProgram = `
class A {
    int x;
    A() { x = 1; }
    int ax() { return x; }
    void bumpA() { x += 10; }
}
class B extends A {
    int x;
    B() { x = 2; }
    int bx() { return x; }
    void bumpB() { x += 100; }
}
class C extends B {
    int x;
    C() { x = 3; }
    int cx() { return x; }
}
public class Main {
    public static void main(String[] args) {
        C c = new C();
        for (int i = 0; i < 50; i++) {
            c.bumpA();
            c.bumpB();
        }
        System.out.println(c.ax());
        System.out.println(c.bx());
        System.out.println(c.cx());
    }
}`

func TestQuickenShadowedFieldLayout(t *testing.T) {
	const want = "501\n5002\n3\n"
	for _, quicken := range []bool{false, true} {
		dOut, _, _ := runDoppioQuick(t, shadowProgram, quicken, 2*time.Millisecond)
		if dOut != want {
			t.Errorf("doppio quicken=%v: out = %q, want %q", quicken, dOut, want)
		}
		nOut, _, _ := runNativeQuick(t, shadowProgram, quicken)
		if nOut != want {
			t.Errorf("native quicken=%v: out = %q, want %q", quicken, nOut, want)
		}
	}
}

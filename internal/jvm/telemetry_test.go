package jvm_test

import (
	"bytes"
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/jvm"
	"doppio/internal/jvm/rt"
	"doppio/internal/telemetry"
)

func runDoppioWithHub(t *testing.T, hub *telemetry.Hub, source string) {
	t.Helper()
	classes, err := rt.CompileWith(map[string]string{"Main.mj": source})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	win := browser.NewWindow(browser.Chrome28)
	win.EnableTelemetry(hub)
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		DisableEngineTax: true,
		Timeslice:        2 * time.Millisecond,
	})
	if err := vm.RunMain("Main", nil); err != nil {
		t.Fatalf("RunMain: %v\noutput:\n%s", err, stdout.String())
	}
}

const telemetryProgram = `
public class Main {
    public static void main(String[] args) {
        int acc = 0;
        for (int i = 0; i < 100; i++) {
            acc += i;
        }
        System.out.println(acc);
    }
}`

func TestDoppioVMTelemetry(t *testing.T) {
	hub := telemetry.NewHub()
	runDoppioWithHub(t, hub, telemetryProgram)

	reg := hub.Registry
	// The loop executes iadd and iinc many times; the counters are
	// flushed when main finishes.
	if got := reg.Counter("jvm", "op.iadd").Value(); got < 100 {
		t.Errorf("op.iadd = %d, want >= 100", got)
	}
	if got := reg.Counter("jvm", "op.iinc").Value(); got < 100 {
		t.Errorf("op.iinc = %d, want >= 100", got)
	}
	if got := reg.Counter("jvm", "invocations").Value(); got == 0 {
		t.Error("invocations = 0, want > 0")
	}
	// println goes through the console native.
	if got := reg.Counter("jvm", "native_calls").Value(); got == 0 {
		t.Error("native_calls = 0, want > 0")
	}
	if got := reg.Histogram("jvm", "native_call").Count(); got == 0 {
		t.Error("native_call histogram empty")
	}
	// Every preloaded and on-demand class is a fresh load.
	if got := reg.Counter("jvm", "class_loads").Value(); got == 0 {
		t.Error("class_loads = 0, want > 0")
	}
	if got := reg.Histogram("jvm", "class_load").Count(); got == 0 {
		t.Error("class_load histogram empty")
	}
	// The core runtime underneath must have recorded timeslices too.
	if got := reg.Histogram("core", "timeslice").Count(); got == 0 {
		t.Error("core/timeslice empty: JVM did not wire through core")
	}
}

func TestDoppioVMMethodSpans(t *testing.T) {
	hub := telemetry.NewHub().EnableTracing()
	hub.MethodSpans = true
	runDoppioWithHub(t, hub, telemetryProgram)

	sawMethod := false
	for _, ev := range hub.Tracer.Events() {
		if ev.Cat == "jvm" && ev.Ph == "X" {
			sawMethod = true
			break
		}
	}
	if !sawMethod {
		t.Error("MethodSpans produced no jvm spans")
	}
}

func TestDoppioVMMethodSpansOffByDefault(t *testing.T) {
	hub := telemetry.NewHub().EnableTracing()
	runDoppioWithHub(t, hub, telemetryProgram)
	for _, ev := range hub.Tracer.Events() {
		if ev.Cat == "jvm" && ev.Ph == "X" {
			t.Fatal("per-method spans recorded without MethodSpans opt-in")
		}
	}
}

package jvm

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"doppio/internal/browser"
	"doppio/internal/buffer"
	"doppio/internal/core"
	"doppio/internal/jlong"
	"doppio/internal/profile"
	"doppio/internal/sockets"
	"doppio/internal/telemetry"
	"doppio/internal/umheap"
	"doppio/internal/vfs"
)

// DoppioVM is DoppioJVM proper (§6): the engine that executes JVM
// bytecode inside the simulated browser. Its threads live in the
// Doppio thread pool (§4.3), its stack frames are explicit heap
// objects (§6.1), its values follow JavaScript semantics (ints as
// float64 with |0 coercions; longs as software hi/lo pairs, §8), its
// class loader pulls class files through the asynchronous file system
// (§6.4), and every blocking native rides suspend-and-resume (§6.3).
type DoppioVM struct {
	win *browser.Window
	rt  *core.Runtime

	Reg    *Registry
	loader *AsyncLoader

	natives map[string]NativeFunc
	strings map[string]*Object
	mirrors map[*Class]*Object

	stdout, stderr io.Writer
	stdinFn        func(n int, cb func([]byte, error))
	fs             HostFS
	heap           *umheap.Heap
	bufs           *buffer.Factory
	props          map[string]string
	jsEval         func(string) string

	socketSeq int32
	socketsBy map[int32]*sockets.Socket
	dialFn    func(w *browser.Window, addr string, cb func(*sockets.Socket, error))

	cur      *DThread
	threads  []*DThread
	nextTID  int
	nextHash int32

	exited   bool
	exitCode int32

	// engineTax is the per-instruction dispatch overhead modelling
	// the browser's JS engine speed relative to Chrome 28 (see
	// browser.Profile.EngineFactor and DESIGN.md).
	engineTax int
	taxSink   int

	// Instructions counts executed bytecodes.
	Instructions int64

	// quicken enables the warm-up rewriter (quickened bytecodes,
	// inline caches, superinstructions — see quicken.go). pairs holds
	// the per-VM adjacent-opcode attribution counters the fusion pass
	// consumes, qstats the counters /debug/jvm reports.
	quicken bool
	pairs   *[65536]int64
	qstats  QuickStats

	// prof is the guest profiler (nil when off); its SampleAlloc
	// gate is consulted at the allocation opcodes.
	prof *profile.Profiler

	tel *vmTelemetry

	// Uncaught records the first uncaught exception.
	Uncaught *Object

	mainDone []func(error)
	mainErr  error
}

// DoppioOptions configure a DoppioVM.
type DoppioOptions struct {
	Stdout, Stderr io.Writer
	// Stdin supplies console input asynchronously; nil means EOF.
	Stdin func(n int, cb func([]byte, error))
	// Provider supplies class files; typically a VFS-backed provider.
	Provider AsyncProvider
	// FS is the file system the program sees; typically the Doppio
	// VFS of the same window.
	FS         HostFS
	Properties map[string]string
	// Timeslice, BatchBudget and ForceMechanism pass through to the
	// Doppio execution environment (negative BatchBudget disables
	// slice batching — one timeslice per macrotask).
	Timeslice      time.Duration
	BatchBudget    time.Duration
	ForceMechanism string
	FixedCounter   int
	HeapSize       int
	// JSEval handles §6.8 eval requests.
	JSEval func(string) string
	// SocketDialer overrides how java.net.Socket connections are
	// opened (default sockets.Connect, one WebSocket per socket).
	// The fleet's gateway workload points this at a per-tenant
	// multiplexed sockets.Stack.
	SocketDialer func(w *browser.Window, addr string, cb func(*sockets.Socket, error))
	// DisableEngineTax turns off the per-browser dispatch overhead
	// model (used by unit tests).
	DisableEngineTax bool
	// Quicken enables the interpreter speed tier: quickened
	// bytecodes, monomorphic inline caches, and superinstruction
	// fusion. Off by default — the un-quickened path is the paper-
	// fidelity baseline.
	Quicken bool
	// Profiler, when non-nil, samples guest CPU time, allocation
	// sites, and blocked time into the given profiler (see
	// internal/profile). Nil keeps every sampling hook uninstalled.
	Profiler *profile.Profiler
}

// NewDoppioVM creates a DoppioJVM inside the browser window.
func NewDoppioVM(win *browser.Window, opts DoppioOptions) *DoppioVM {
	if opts.Stdout == nil {
		opts.Stdout = io.Discard
	}
	if opts.Stderr == nil {
		opts.Stderr = opts.Stdout
	}
	if opts.HeapSize == 0 {
		opts.HeapSize = 1 << 20
	}
	reg := NewRegistry()
	bufs := &buffer.Factory{
		Typed:            win.Profile.HasTypedArrays,
		ValidatesStrings: win.Profile.ValidatesStrings,
		OnTypedAlloc:     win.NoteTypedArrayAlloc,
	}
	vm := &DoppioVM{
		win:       win,
		Reg:       reg,
		natives:   registerNatives(),
		strings:   make(map[string]*Object),
		mirrors:   make(map[*Class]*Object),
		stdout:    opts.Stdout,
		stderr:    opts.Stderr,
		stdinFn:   opts.Stdin,
		fs:        opts.FS,
		heap:      umheap.New(opts.HeapSize, win.Profile.HasTypedArrays, win.NoteTypedArrayAlloc),
		bufs:      bufs,
		props:     opts.Properties,
		jsEval:    opts.JSEval,
		socketsBy: make(map[int32]*sockets.Socket),
		dialFn:    opts.SocketDialer,
	}
	if vm.props == nil {
		vm.props = map[string]string{}
	}
	if opts.Provider == nil {
		opts.Provider = MapProvider{}
	}
	vm.loader = NewAsyncLoader(reg, opts.Provider)
	if vm.fs == nil {
		mem := vfs.New(win.Loop, bufs, vfs.NewInMemory())
		vm.fs = &VFSHostFS{FS: mem}
	}
	if !opts.DisableEngineTax {
		vm.engineTax = int(engineBaseTax * win.Profile.EngineFactor)
	}
	if opts.Quicken {
		vm.quicken = true
		vm.pairs = new([65536]int64)
	}
	vm.rt = core.NewRuntime(win.Loop, core.Config{
		Timeslice:      opts.Timeslice,
		BatchBudget:    opts.BatchBudget,
		ForceMechanism: opts.ForceMechanism,
		FixedCounter:   opts.FixedCounter,
		Telemetry:      win.Telemetry,
	})
	if win.Telemetry != nil {
		vm.EnableTelemetry(win.Telemetry)
	}
	if opts.Profiler != nil {
		vm.installProfiler(opts.Profiler)
	}
	return vm
}

// engineBaseTax is the modelled cost of interpreting one bytecode in
// the fastest JS engine of the population (Chrome 28's V8), expressed
// as busy-work iterations per instruction. It is calibrated so that
// DoppioJVM lands in the paper's 24-42x band over the native baseline
// on Chrome; other browsers scale it by Profile.EngineFactor.
// DESIGN.md documents this as the substitution for real JS engines.
const engineBaseTax = 2850.0

// Runtime exposes the underlying Doppio execution environment (for
// suspension statistics — Figures 4 and 5).
func (vm *DoppioVM) Runtime() *core.Runtime { return vm.rt }

// Window returns the hosting browser window.
func (vm *DoppioVM) Window() *browser.Window { return vm.win }

// QuickStats reports the quickening counters (QuickStatser).
func (vm *DoppioVM) QuickStats() QuickStats {
	st := vm.qstats
	st.Enabled = vm.quicken
	return st
}

// DThread is one JVM thread in the Doppio thread pool: an explicit
// array of stack frames (§6.1) plus scheduling state.
type DThread struct {
	vm     *DoppioVM
	id     int
	frames []*DFrame
	obj    *Object
	dead   bool

	depValue  Value
	depThrown *Object
	depReady  bool
	depRet    string

	blocked bool

	// prevOp is the last raw opcode this thread dispatched, feeding
	// the adjacent-pair attribution counters behind fusion.
	prevOp byte

	// pool holds returned frames for reuse — frame allocation is the
	// dominant interpreter cost once dispatch is quickened, and a
	// normally-returning frame has no aliases left.
	pool []*DFrame

	joiners []func()
	coreT   *core.Thread

	// pendingLaunch is the async launch recorded by BlockAndCall,
	// consumed by the interpreter's native-invoke path.
	pendingLaunch func(done func())
	// awaitOn, when set by a host method during an async native's
	// launch, substitutes its own labelled completion for the generic
	// jvm.native(...) one — a thread parked on socket I/O shows
	// sockets.read(fd), not a native frame, in deadlock reports.
	awaitOn *core.Completion
	// completeWait finishes an Object.wait once the monitor is
	// re-acquired.
	completeWait func()
}

// DFrame is the §6.1 stack frame: "a JavaScript object that contains
// an array for the operand stack, an array for the local variables,
// and a reference to the method that the stack frame belongs to."
type DFrame struct {
	m      *Method
	pc     int
	stack  []interface{}
	locals []interface{}

	// span is the optional per-invocation trace span (Hub.MethodSpans);
	// the zero Span is a no-op.
	span telemetry.Span
}

func newDFrame(m *Method) *DFrame {
	return &DFrame{
		m:      m,
		stack:  make([]interface{}, 0, int(m.Code.MaxStack)+2),
		locals: make([]interface{}, int(m.Code.MaxLocals)+2),
	}
}

// framePoolCap bounds the per-thread frame reuse pool.
const framePoolCap = 32

// frameFor returns a frame for m, reusing a pooled one when its
// slices are large enough (they were scrubbed at recycle time).
func (d *DThread) frameFor(m *Method) *DFrame {
	n := len(d.pool)
	if n == 0 {
		return newDFrame(m)
	}
	f := d.pool[n-1]
	d.pool = d.pool[:n-1]
	needL := int(m.Code.MaxLocals) + 2
	needS := int(m.Code.MaxStack) + 2
	if cap(f.locals) < needL || cap(f.stack) < needS {
		return newDFrame(m)
	}
	f.m = m
	f.pc = 0
	f.locals = f.locals[:needL]
	f.stack = f.stack[:0]
	return f
}

// recycleFrame caches a frame that was popped on a normal return for
// reuse. Frames popped by exception unwinding or thread death are not
// recycled — nothing else ever aliases a normally-returned frame,
// which is what makes reuse safe. Slots are not scrubbed: verified
// bytecode never reads a local before writing it or a stack slot
// above the operand top, so stale values are unreachable; the refs
// they pin are bounded by the pool size and die with the thread.
// The pool is part of the speed tier: with quickening off the engine
// keeps its unoptimized allocation behavior so the modelled DoppioJVM
// never beats the native baseline.
func (d *DThread) recycleFrame(f *DFrame) {
	if !d.vm.quicken || len(d.pool) >= framePoolCap {
		return
	}
	f.m = nil
	f.span = telemetry.Span{}
	f.stack = f.stack[:0]
	d.pool = append(d.pool, f)
}

// StartMain arranges for mainClass.main(args) to run; done fires (on
// the event loop) when the JVM exits. The caller drives the window's
// event loop.
func (vm *DoppioVM) StartMain(mainClass string, args []string, done func(error)) {
	if done != nil {
		vm.mainDone = append(vm.mainDone, done)
	}
	// Preload the core classes every JVM needs before user code runs:
	// Object, String, Class, and the VM-thrown exception hierarchy.
	preload := []string{
		"java/lang/Object", "java/lang/String", "java/lang/Class",
		"java/lang/Throwable", "java/lang/Exception", "java/lang/Error",
		"java/lang/RuntimeException", "java/lang/NullPointerException",
		"java/lang/ArithmeticException", "java/lang/ClassCastException",
		"java/lang/IndexOutOfBoundsException",
		"java/lang/ArrayIndexOutOfBoundsException",
		"java/lang/NegativeArraySizeException",
		"java/lang/IllegalMonitorStateException",
		"java/lang/ClassNotFoundException",
	}
	var loadAll func(i int, then func())
	loadAll = func(i int, then func()) {
		if i == len(preload) {
			then()
			return
		}
		vm.loader.Load(preload[i], func(_ *Class, err error) {
			// Missing optional exception classes are tolerated; the
			// first two are mandatory.
			if err != nil && i < 2 {
				vm.finish(err)
				return
			}
			loadAll(i+1, then)
		})
	}
	loadAll(0, func() {
		vm.loader.Load(mainClass, func(c *Class, err error) {
			if err != nil {
				vm.finish(err)
				return
			}
			main := c.FindMethod("main", "([Ljava/lang/String;)V")
			if main == nil || !main.IsStatic() {
				vm.finish(fmt.Errorf("jvm: %s has no static main([Ljava/lang/String;)V", mainClass))
				return
			}
			vm.loader.Load("[Ljava/lang/String;", func(arrC *Class, err error) {
				if err != nil {
					vm.finish(err)
					return
				}
				argArr := NewArray(arrC, "Ljava/lang/String;", len(args))
				data := argArr.Arr.([]*Object)
				for i, s := range args {
					data[i] = vm.Intern(s)
				}
				t := vm.spawn("main")
				f := newDFrame(main)
				f.locals[0] = argArr
				t.frames = []*DFrame{f}
				t.pushInitIfNeeded(c)
				vm.rt.OnIdle(func() { vm.finish(nil) })
				vm.rt.Start()
			})
		})
	})
}

// RunMain is the synchronous convenience wrapper: it starts main and
// drives the event loop to completion.
func (vm *DoppioVM) RunMain(mainClass string, args []string) error {
	var result error
	finished := false
	vm.StartMain(mainClass, args, func(err error) {
		result = err
		finished = true
	})
	if err := vm.win.Loop.Run(); err != nil {
		return err
	}
	if !finished {
		if dead := vm.rt.DeadlockedThreads(); len(dead) > 0 {
			return fmt.Errorf("jvm: deadlock: %d thread(s) blocked forever: %s",
				len(dead), vm.rt.DeadlockReport())
		}
		return fmt.Errorf("jvm: event loop drained before main finished")
	}
	return result
}

func (vm *DoppioVM) finish(err error) {
	vm.FlushTelemetry()
	if err == nil && vm.Uncaught != nil {
		err = fmt.Errorf("jvm: uncaught exception: %s", vm.describeThrowable(vm.Uncaught))
	}
	vm.mainErr = err
	for _, fn := range vm.mainDone {
		fn(err)
	}
	vm.mainDone = nil
}

func (vm *DoppioVM) describeThrowable(ex *Object) string {
	msg := ""
	if s := slotByName(ex, "message"); s.R != nil {
		msg = ": " + vm.GoString(s.R)
	}
	return strings.ReplaceAll(ex.Class.Name, "/", ".") + msg
}

func (vm *DoppioVM) spawn(name string) *DThread {
	vm.nextTID++
	t := &DThread{vm: vm, id: vm.nextTID}
	vm.threads = append(vm.threads, t)
	t.coreT = vm.rt.Spawn(name, t)
	t.coreT.Data = t
	return t
}

// pushInitIfNeeded pushes <clinit> frames for c's uninitialized
// hierarchy; returns true if any frame was pushed (the triggering
// instruction must re-execute).
func (t *DThread) pushInitIfNeeded(c *Class) bool {
	var chain []*Class
	for k := c; k != nil; k = k.Super {
		if k.State == StateLoaded {
			k.State = StateInitialized
			chain = append(chain, k)
		}
	}
	pushed := false
	for _, k := range chain {
		if cl := k.Clinit(); cl != nil {
			t.frames = append(t.frames, newDFrame(cl))
			pushed = true
		}
	}
	return pushed
}

// blockOn suspends the thread around an asynchronous operation via a
// core.Completion labelled with the reason (visible in deadlock
// reports). If the operation completes synchronously the thread never
// blocks and blockOn returns false.
func (t *DThread) blockOn(ct *core.Thread, reason string, launch func(done func())) bool {
	c := core.NewCompletion(t.vm.win.Loop, reason)
	launch(func() { c.Resolve(nil, nil) })
	if o := t.awaitOn; o != nil {
		// The host operation supplied its own labelled completion;
		// park on that one so the blocked-thread label names the real
		// blocking site. Its callbacks (which deposit the result and
		// settle c) run before the thread resumes, per the Completion
		// ordering contract.
		t.awaitOn = nil
		c = o
	}
	if !c.Await(ct) {
		return false
	}
	t.blocked = true
	return true
}

// --- NativeHost implementation ---

// EngineName identifies the engine.
func (vm *DoppioVM) EngineName() string { return "doppio" }

// Intern returns the canonical String for s.
func (vm *DoppioVM) Intern(s string) *Object {
	if o, ok := vm.strings[s]; ok {
		return o
	}
	o := vm.NewString(s)
	vm.strings[s] = o
	return o
}

// NewString builds a String object; String must already be loaded.
func (vm *DoppioVM) NewString(s string) *Object {
	sc := vm.Reg.Get("java/lang/String")
	if sc == nil {
		panic("jvm: NewString before java/lang/String is loaded")
	}
	o := NewObject(sc)
	arrC := vm.Reg.Get("[C")
	if arrC == nil {
		arrC, _ = vm.Reg.arrayClass("[C")
	}
	arr := &Object{Class: arrC, Arr: utf16Chars(s)}
	setSlotByName(o, "value", Slot{R: arr})
	return o
}

// GoString decodes a String object.
func (vm *DoppioVM) GoString(o *Object) string { return stringValue(o) }

// MakeThrowable builds an exception object without user code.
func (vm *DoppioVM) MakeThrowable(class, msg string) *Object {
	c := vm.Reg.Get(class)
	if c == nil {
		c = vm.Reg.Get("java/lang/Throwable")
	}
	if c == nil {
		// Nothing better is loaded yet; a bare Object still unwinds.
		c = vm.Reg.Get("java/lang/Object")
	}
	ex := NewObject(c)
	if msg != "" {
		setSlotByName(ex, "message", Slot{R: vm.Intern(msg)})
	}
	ex.Extra = vm.captureTrace()
	return ex
}

func (vm *DoppioVM) captureTrace() []string {
	t := vm.cur
	if t == nil {
		return nil
	}
	var out []string
	for i := len(t.frames) - 1; i >= 0; i-- {
		f := t.frames[i]
		out = append(out, fmt.Sprintf("%s.%s(pc=%d)", strings.ReplaceAll(f.m.Class.Name, "/", "."), f.m.Name, f.pc))
	}
	return out
}

// ClassMirror returns (lazily) the Class mirror for c.
func (vm *DoppioVM) ClassMirror(c *Class) *Object {
	if m, ok := vm.mirrors[c]; ok {
		return m
	}
	cc := vm.Reg.Get("java/lang/Class")
	if cc == nil {
		cc = c
	}
	m := NewObject(cc)
	m.Extra = c
	setSlotByName(m, "name", Slot{R: vm.Intern(strings.ReplaceAll(c.Name, "/", "."))})
	vm.mirrors[c] = m
	return m
}

// LookupClass returns an already-loaded class (the async loader means
// it cannot load on demand here; interpreters preload).
func (vm *DoppioVM) LookupClass(name string) *Class {
	if c := vm.Reg.Get(name); c != nil {
		return c
	}
	if name != "" && name[0] == '[' {
		c, _ := vm.Reg.arrayClass(name)
		return c
	}
	return nil
}

// Stdout returns the console writer.
func (vm *DoppioVM) Stdout() io.Writer { return vm.stdout }

// Stderr returns the error writer.
func (vm *DoppioVM) Stderr() io.Writer { return vm.stderr }

// StdinRead reads console input asynchronously.
func (vm *DoppioVM) StdinRead(n int, cb func([]byte, error)) {
	if vm.stdinFn == nil {
		cb(nil, io.EOF)
		return
	}
	vm.stdinFn(n, cb)
}

// Property reads a system property.
func (vm *DoppioVM) Property(key string) string { return vm.props[key] }

// CurrentTimeMillis returns wall-clock milliseconds.
func (vm *DoppioVM) CurrentTimeMillis() int64 { return time.Now().UnixMilli() }

// NanoTime returns a monotonic reading.
func (vm *DoppioVM) NanoTime() int64 { return time.Now().UnixNano() }

// Exit stops the VM and the event loop's JVM work.
func (vm *DoppioVM) Exit(code int32) {
	vm.exited = true
	vm.exitCode = code
	for _, t := range vm.threads {
		t.dead = true
		if t.coreT != nil {
			t.coreT.Kill()
		}
	}
	vm.finish(nil)
}

// ExitCode returns the System.exit code.
func (vm *DoppioVM) ExitCode() int32 { return vm.exitCode }

// FS returns the Doppio file system binding.
func (vm *DoppioVM) FS() HostFS { return vm.fs }

// UnsafeHeap exposes the unmanaged heap (§6.5).
func (vm *DoppioVM) UnsafeHeap() *HeapBinding { return heapBinding(vm.heap) }

// Heap exposes the raw unmanaged heap for diagnostics (free-list maps
// in post-mortem reports and the ops server's /debug/heap).
func (vm *DoppioVM) Heap() *umheap.Heap { return vm.heap }

// SocketConnect opens a Doppio socket (§5.3) through the window's
// dialer — sockets.Connect by default, or the SocketDialer option
// (the fleet's gateway workload routes each tenant through its own
// multiplexed Stack there). The thread parks under a
// sockets.connect(addr) label while the dial is in flight.
func (vm *DoppioVM) SocketConnect(host string, port int32, cb func(int32, error)) {
	addr := fmt.Sprintf("%s:%d", host, port)
	c := core.NewCompletion(vm.win.Loop, "sockets.connect("+addr+")")
	vm.cur.awaitOn = c
	c.Then(func(v interface{}, err error) {
		if err != nil {
			cb(-1, err)
			return
		}
		cb(v.(int32), nil)
	})
	dial := vm.dialFn
	if dial == nil {
		dial = sockets.Connect
	}
	dial(vm.win, addr, func(s *sockets.Socket, err error) {
		if err != nil {
			c.Resolve(nil, err)
			return
		}
		vm.socketSeq++
		handle := vm.socketSeq
		s.SetFD(handle)
		vm.socketsBy[handle] = s
		c.Resolve(handle, nil)
	})
}

// SocketRead reads from a Doppio socket. The socket's own completion
// is handed to blockOn via awaitOn, so a stalled read parks the JVM
// thread under sockets.read(fd).
func (vm *DoppioVM) SocketRead(handle int32, n int32, cb func([]byte, error)) {
	s := vm.socketsBy[handle]
	if s == nil {
		cb(nil, fmt.Errorf("jvm: bad socket handle %d", handle))
		return
	}
	c := s.Read(int(n))
	vm.cur.awaitOn = c
	c.Then(func(v interface{}, err error) {
		data, _ := v.([]byte)
		cb(data, err)
	})
}

// SocketWrite writes to a Doppio socket. The write completion resolves
// once flow control admits the bytes, so a zero-window stream parks
// the thread visibly under sockets.write(fd).
func (vm *DoppioVM) SocketWrite(handle int32, data []byte, cb func(error)) {
	s := vm.socketsBy[handle]
	if s == nil {
		cb(fmt.Errorf("jvm: bad socket handle %d", handle))
		return
	}
	c := s.Write(data)
	vm.cur.awaitOn = c
	c.Then(func(_ interface{}, err error) { cb(err) })
}

// SocketClose closes a Doppio socket.
func (vm *DoppioVM) SocketClose(handle int32) {
	if s := vm.socketsBy[handle]; s != nil {
		s.Close()
		delete(vm.socketsBy, handle)
	}
}

// IdentityHash issues identity hash codes.
func (vm *DoppioVM) IdentityHash(o *Object) int32 {
	if o.Extra == nil {
		vm.nextHash++
		o.Extra = vm.nextHash
	}
	if h, ok := o.Extra.(int32); ok {
		return h
	}
	vm.nextHash++
	return vm.nextHash
}

// SpawnThread starts threadObj.run() on a new Doppio thread (§6.2).
// The Java thread's priority field (MIN_PRIORITY..MAX_PRIORITY) maps
// directly onto the run queue's levels.
func (vm *DoppioVM) SpawnThread(threadObj *Object) {
	run := threadObj.Class.FindMethod("run", "()V")
	t := vm.spawn("jvm-thread")
	f := newDFrame(run)
	f.locals[0] = threadObj
	t.frames = []*DFrame{f}
	t.obj = threadObj
	threadObj.Extra = t
	if p := slotByName(threadObj, "priority"); p.N != 0 {
		t.coreT.SetPriority(int(p.N))
	}
}

// SetThreadPriority maps Thread.setPriority onto the run queue: the
// JVM's 1..10 priority range is the scheduler's level range.
func (vm *DoppioVM) SetThreadPriority(threadObj *Object, p int32) {
	if target, ok := threadObj.Extra.(*DThread); ok && target.coreT != nil {
		target.coreT.SetPriority(int(p))
		return
	}
	if vm.cur != nil && vm.cur.obj == threadObj && vm.cur.coreT != nil {
		vm.cur.coreT.SetPriority(int(p))
	}
}

// CurrentThreadObj returns the running thread's Thread object.
func (vm *DoppioVM) CurrentThreadObj() *Object {
	if vm.cur != nil && vm.cur.obj != nil {
		return vm.cur.obj
	}
	tc := vm.Reg.Get("java/lang/Thread")
	if tc == nil {
		return nil
	}
	o := NewObject(tc)
	setSlotByName(o, "name", Slot{R: vm.Intern("main")})
	if vm.cur != nil {
		vm.cur.obj = o
		o.Extra = vm.cur
	}
	return o
}

// Sleep suspends the thread via the browser timer (§4.2).
func (vm *DoppioVM) Sleep(ms int64, done func()) {
	vm.win.Loop.SetTimeout(done, time.Duration(ms)*time.Millisecond)
}

// YieldThread is handled by the cooperative scheduler.
func (vm *DoppioVM) YieldThread() {}

// JoinThread completes when threadObj's thread terminates.
func (vm *DoppioVM) JoinThread(threadObj *Object, done func()) {
	target, ok := threadObj.Extra.(*DThread)
	if !ok || target.dead {
		done()
		return
	}
	target.joiners = append(target.joiners, done)
}

// IsThreadAlive reports thread liveness.
func (vm *DoppioVM) IsThreadAlive(threadObj *Object) bool {
	target, ok := threadObj.Extra.(*DThread)
	return ok && !target.dead
}

// MonitorWait implements Object.wait over the Doppio thread pool.
func (vm *DoppioVM) MonitorWait(o *Object, timeoutMs int64) *Object {
	t := vm.cur
	mon := o.EnsureMonitor()
	if mon.Owner != t {
		return vm.MakeThrowable("java/lang/IllegalMonitorStateException", "not owner")
	}
	saved := mon.Count
	mon.Owner = nil
	mon.Count = 0
	vm.wakeOneBlockedD(mon)

	w := &Waiter{}
	w.Notify = func() {
		if w.Notified {
			return
		}
		w.Notified = true
		vm.acquireOrQueueD(t, mon, saved)
	}
	mon.WaitQ = append(mon.WaitQ, w)
	// The wait native returns Async; arm the blocking continuation so
	// the thread parks until Notify reacquires the monitor.
	t.pendingLaunch = func(done func()) {
		t.completeWait = func() {
			t.depValue, t.depThrown, t.depReady = nil, nil, true
			done()
		}
	}
	if timeoutMs > 0 {
		vm.win.Loop.SetTimeout(func() { w.Notify() }, time.Duration(timeoutMs)*time.Millisecond)
	}
	return nil
}

// MonitorNotify implements Object.notify/notifyAll.
func (vm *DoppioVM) MonitorNotify(o *Object, all bool) *Object {
	mon := o.EnsureMonitor()
	if mon.Owner != vm.cur {
		return vm.MakeThrowable("java/lang/IllegalMonitorStateException", "not owner")
	}
	for len(mon.WaitQ) > 0 {
		w := mon.WaitQ[0]
		mon.WaitQ = mon.WaitQ[1:]
		if !w.Notified {
			w.Notify()
			if !all {
				break
			}
		}
	}
	return nil
}

func (vm *DoppioVM) wakeOneBlockedD(mon *Monitor) {
	if len(mon.BlockQ) == 0 {
		return
	}
	f := mon.BlockQ[0]
	mon.BlockQ = mon.BlockQ[1:]
	f()
}

// acquireOrQueueD hands t the monitor or queues it for entry; on
// acquisition the thread's pending native completes.
func (vm *DoppioVM) acquireOrQueueD(t *DThread, mon *Monitor, count int) {
	grant := func() {
		mon.Owner = t
		mon.Count = count
		if t.completeWait != nil {
			done := t.completeWait
			t.completeWait = nil
			done()
		}
	}
	if mon.Owner == nil {
		grant()
		return
	}
	mon.BlockQ = append(mon.BlockQ, grant)
}

// BlockAndCall bridges async host work into a blocked JVM thread
// (§4.2). The interpreter observes t.depReady afterwards.
func (vm *DoppioVM) BlockAndCall(launch func(complete func(Value, *Object))) {
	t := vm.cur
	t.pendingLaunch = func(done func()) {
		launch(func(v Value, thrown *Object) {
			t.depValue, t.depThrown, t.depReady = v, thrown, true
			done()
		})
	}
}

// EvalJS evaluates JavaScript through the embedder hook (§6.8).
func (vm *DoppioVM) EvalJS(snippet string) string {
	if vm.jsEval != nil {
		return vm.jsEval(snippet)
	}
	return "ReferenceError: no JavaScript evaluator installed"
}

// --- VFS binding ---

// VFSHostFS adapts the Doppio file system (internal/vfs) to the
// native-method HostFS surface. Every operation is asynchronous; the
// JVM natives wrap them with suspend-and-resume.
type VFSHostFS struct{ FS *vfs.FS }

// ReadFile loads a whole file.
func (v *VFSHostFS) ReadFile(path string, cb func([]byte, error)) {
	v.FS.ReadFile(path, func(b *buffer.Buffer, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		cb(b.Bytes(), nil)
	})
}

// WriteFile replaces a whole file.
func (v *VFSHostFS) WriteFile(path string, data []byte, cb func(error)) {
	v.FS.WriteFile(path, data, cb)
}

// Append appends to a file.
func (v *VFSHostFS) Append(path string, data []byte, cb func(error)) {
	v.FS.AppendFile(path, data, cb)
}

// Stat reports size and kind.
func (v *VFSHostFS) Stat(path string, cb func(int64, bool, bool)) {
	v.FS.Stat(path, func(st vfs.Stats, err error) {
		if err != nil {
			cb(0, false, false)
			return
		}
		cb(st.Size, st.IsDirectory(), true)
	})
}

// List names a directory.
func (v *VFSHostFS) List(path string, cb func([]string, error)) {
	v.FS.Readdir(path, cb)
}

// Delete unlinks a file.
func (v *VFSHostFS) Delete(path string, cb func(error)) { v.FS.Unlink(path, cb) }

// Mkdir creates a directory.
func (v *VFSHostFS) Mkdir(path string, cb func(error)) { v.FS.Mkdir(path, cb) }

// Rename moves a file.
func (v *VFSHostFS) Rename(oldP, newP string, cb func(error)) { v.FS.Rename(oldP, newP, cb) }

// VFSClassProvider loads class files from directories of a Doppio
// file system — the §6.4 class path. Classes download on demand
// through whatever backend is mounted (HTTP, localStorage, ...).
type VFSClassProvider struct {
	FS   *vfs.FS
	Dirs []string // class path entries
}

// BytesAsync fetches <dir>/<name>.class from the first class path
// entry that has it.
func (p *VFSClassProvider) BytesAsync(name string, cb func([]byte, error)) {
	var try func(i int)
	try = func(i int) {
		if i == len(p.Dirs) {
			cb(nil, &ClassNotFoundError{Name: name})
			return
		}
		path := strings.TrimSuffix(p.Dirs[i], "/") + "/" + name + ".class"
		p.FS.ReadFile(path, func(b *buffer.Buffer, err error) {
			if err != nil {
				try(i + 1)
				return
			}
			cb(b.Bytes(), nil)
		})
	}
	try(0)
}

// --- JS number helpers (the §3/§8 value model) ---

// jsInt reads a JS-number slot as an int32.
func jsInt(v interface{}) int32 {
	return int32(int64(v.(float64)))
}

// jsNum wraps an int32 back into a JS number.
func jsNum(v int32) interface{} { return float64(v) }

// jsLong reads a software long slot.
func jsLong(v interface{}) jlong.Long { return v.(jlong.Long) }

// jsFloat applies JS Math.fround semantics for JVM floats.
func jsFloat(v float64) float64 { return float64(float32(v)) }

// jsTruncDiv is (a / b) | 0 — the JS idiom for integer division.
func jsTruncDiv(a, b float64) float64 {
	q := a / b
	return float64(int32(int64(math.Trunc(q))))
}

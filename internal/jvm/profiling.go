// profiling.go wires the guest profiler (internal/profile) into both
// JVM engines. The profiler needs three things from an engine: a
// root-first stack walk over its explicit frames, CPU sample points,
// and allocation-site hooks.
//
// Frame strings are "Class.method" for caller frames and
// "Class.method:pc" at the leaf — the pc is the *original* bytecode
// pc in every tier: the quickening side tables are indexed by
// original pc and the bytecode is never rewritten, so the quickened,
// pre-decoded, and generic interpreters attribute samples to the same
// source positions (the property the fidelity tests pin down).
//
// Sample points per engine:
//
//   - DoppioVM rides the core.Runtime hooks: the suspend clock's
//     counter-expiry probe (§4.1 — a timestamp is already being read
//     there) plus the end of every timeslice, and the core block hook
//     folds labelled Completion waits into the contention profile.
//   - NativeVM has no core.Runtime; its scheduler samples inside the
//     execute() quantum loop on an instruction countdown, and at
//     quantum boundaries. Its monitors block threads without
//     Completions, so native-engine contention is out of scope for
//     the block profile (DESIGN.md §17).
package jvm

import (
	"strconv"
	"strings"
	"time"

	"doppio/internal/core"
	"doppio/internal/profile"
)

// profFrame renders one frame string; leaf frames carry the pc.
func profFrame(m *Method, pc int, leaf bool) string {
	name := strings.ReplaceAll(m.Class.Name, "/", ".") + "." + m.Name
	if leaf {
		name += ":" + strconv.Itoa(pc)
	}
	return name
}

// profObjBytes estimates the heap footprint of one instance: a header
// plus one word per field slot (the flat slot layout's own measure).
func profObjBytes(c *Class) int64 {
	return 16 + 8*int64(c.Layout().Slots)
}

// profArrayBytes estimates an array's footprint from its element
// descriptor.
func profArrayBytes(elemDesc string, n int32) int64 {
	if n < 0 {
		n = 0
	}
	size := int64(8)
	switch elemDesc {
	case "B", "Z":
		size = 1
	case "C", "S":
		size = 2
	case "I", "F":
		size = 4
	}
	return 16 + size*int64(n)
}

// profStack walks a Doppio thread's frames root-first.
func (d *DThread) profStack() []string {
	n := len(d.frames)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i, f := range d.frames {
		out[i] = profFrame(f.m, f.pc, i == n-1)
	}
	return out
}

// profAlloc samples one allocation event of the given estimated size
// at the current Doppio stack, subject to the profiler's 1-in-N gate.
func (d *DThread) profAlloc(bytes int64) {
	p := d.vm.prof
	if !p.AllocReady() {
		return
	}
	p.SampleAlloc(d.profStack(), bytes)
}

// installProfiler attaches p to the Doppio engine: CPU samples via
// the runtime's safepoint hook, contention via the block hook, and
// unmanaged-heap allocations via the umheap observer. Guest-object
// allocation opcodes consult vm.prof directly in the interpreter.
func (vm *DoppioVM) installProfiler(p *profile.Profiler) {
	vm.prof = p
	vm.rt.SetSampleHook(func(t *core.Thread, dt time.Duration) {
		d, ok := t.Data.(*DThread)
		if !ok {
			return
		}
		if st := d.profStack(); st != nil {
			p.SampleCPU(st, dt)
		}
	}, p.CPUInterval())
	vm.rt.SetBlockHook(func(t *core.Thread, reason string, dt time.Duration) {
		d, ok := t.Data.(*DThread)
		if !ok {
			return
		}
		// The completion label becomes the leaf frame, so the
		// contention profile reads "call site → what it waited on".
		st := append(d.profStack(), reason)
		p.SampleBlock(st, dt)
	})
	vm.heap.SetAllocHook(func(n int) {
		if !p.AllocReady() {
			return
		}
		if d := vm.cur; d != nil {
			p.SampleAlloc(append(d.profStack(), "(umheap)"), int64(n))
			return
		}
		p.SampleAlloc([]string{"(host)", "(umheap)"}, int64(n))
	})
}

// Profiler returns the engine's guest profiler (nil when off).
func (vm *DoppioVM) Profiler() *profile.Profiler { return vm.prof }

// --- native engine ---

// profCheckEvery is the native engine's instruction countdown between
// clock reads — the analog of the Doppio suspend counter's expiry.
const profCheckEvery = 8192

// profStackN walks a native thread's frames root-first.
func profStackN(t *NThread) []string {
	n := len(t.frames)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i, f := range t.frames {
		out[i] = profFrame(f.m, f.pc, i == n-1)
	}
	return out
}

// profAllocN samples one native-engine allocation event.
func (vm *NativeVM) profAllocN(t *NThread, bytes int64) {
	if !vm.prof.AllocReady() {
		return
	}
	vm.prof.SampleAlloc(profStackN(t), bytes)
}

// profQuantumStart resets the on-CPU cursor at the top of a scheduler
// quantum, so time the thread spent off the CPU is never attributed.
func (vm *NativeVM) profQuantumStart() {
	vm.profLast = time.Now()
	vm.profCheck = profCheckEvery
}

// profTick is the in-quantum sample point: every profCheckEvery
// instructions the execute loop lands here; once the profiler's
// sampling interval has elapsed the window is attributed to the
// current stack.
func (vm *NativeVM) profTick(t *NThread) {
	vm.profCheck = profCheckEvery
	now := time.Now()
	dt := now.Sub(vm.profLast)
	if dt < vm.prof.CPUInterval() {
		return
	}
	vm.profLast = now
	if st := profStackN(t); st != nil {
		vm.prof.SampleCPU(st, dt)
	}
}

// profQuantumEnd closes out a quantum, attributing the tail window
// (below the interval gate) so sampled time tracks real CPU time.
func (vm *NativeVM) profQuantumEnd(t *NThread) {
	dt := time.Since(vm.profLast)
	if dt <= 0 {
		return
	}
	if st := profStackN(t); st != nil {
		vm.prof.SampleCPU(st, dt)
	}
}

// Profiler returns the engine's guest profiler (nil when off).
func (vm *NativeVM) Profiler() *profile.Profiler { return vm.prof }

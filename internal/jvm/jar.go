package jvm

import (
	"archive/zip"
	"bytes"
	"fmt"
	"io"
	"strings"

	"doppio/internal/buffer"
	"doppio/internal/vfs"
)

// WriteJar builds a JAR (zip) archive from class files keyed by
// internal name.
func WriteJar(classes map[string][]byte) ([]byte, error) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	// Deterministic order.
	names := make([]string, 0, len(classes))
	for n := range classes {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		w, err := zw.Create(name + ".class")
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(classes[name]); err != nil {
			return nil, err
		}
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadJar extracts the class files of a JAR archive.
func ReadJar(data []byte) (map[string][]byte, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("jvm: bad jar: %w", err)
	}
	out := make(map[string][]byte)
	for _, f := range zr.File {
		if !strings.HasSuffix(f.Name, ".class") {
			continue
		}
		rc, err := f.Open()
		if err != nil {
			return nil, err
		}
		content, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, err
		}
		out[strings.TrimSuffix(f.Name, ".class")] = content
	}
	return out, nil
}

// JarProvider serves classes from an in-memory JAR image (§6.4: the
// class loader checks "the folders and JAR archive files specified on
// the class path").
type JarProvider struct {
	classes map[string][]byte
}

// NewJarProvider parses jar bytes into a provider.
func NewJarProvider(data []byte) (*JarProvider, error) {
	classes, err := ReadJar(data)
	if err != nil {
		return nil, err
	}
	return &JarProvider{classes: classes}, nil
}

// Bytes returns a class's bytes.
func (p *JarProvider) Bytes(name string) ([]byte, error) {
	return MapProvider(p.classes).Bytes(name)
}

// BytesAsync returns a class's bytes via cb.
func (p *JarProvider) BytesAsync(name string, cb func([]byte, error)) {
	cb(p.Bytes(name))
}

// LoadJarFromVFS fetches a JAR through the Doppio file system (so the
// archive itself can live on any backend — HTTP, localStorage, cloud)
// and delivers a provider for it.
func LoadJarFromVFS(fs *vfs.FS, path string, cb func(*JarProvider, error)) {
	fs.ReadFile(path, func(b *buffer.Buffer, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		p, perr := NewJarProvider(b.Bytes())
		cb(p, perr)
	})
}

// MultiProvider tries each provider in class-path order.
type MultiProvider []AsyncProvider

// BytesAsync walks the class path.
func (m MultiProvider) BytesAsync(name string, cb func([]byte, error)) {
	var try func(i int)
	try = func(i int) {
		if i == len(m) {
			cb(nil, &ClassNotFoundError{Name: name})
			return
		}
		m[i].BytesAsync(name, func(data []byte, err error) {
			if err != nil {
				try(i + 1)
				return
			}
			cb(data, nil)
		})
	}
	try(0)
}

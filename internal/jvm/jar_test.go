package jvm_test

import (
	"bytes"
	"testing"

	"doppio/internal/browser"
	"doppio/internal/buffer"
	"doppio/internal/jvm"
	"doppio/internal/jvm/rt"
	"doppio/internal/vfs"
)

func TestJarRoundTrip(t *testing.T) {
	classes, err := rt.Classes()
	if err != nil {
		t.Fatal(err)
	}
	jar, err := jvm.WriteJar(classes)
	if err != nil {
		t.Fatal(err)
	}
	back, err := jvm.ReadJar(jar)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(classes) {
		t.Fatalf("round trip lost classes: %d vs %d", len(back), len(classes))
	}
	for name, data := range classes {
		if !bytes.Equal(back[name], data) {
			t.Errorf("%s differs after jar round trip", name)
		}
	}
}

// TestRunFromJarOnVFS stores the whole runtime as a JAR inside the
// Doppio file system and runs a program whose classes load from it —
// the §6.4 class-path-with-JARs scenario.
func TestRunFromJarOnVFS(t *testing.T) {
	classes, err := rt.CompileWith(map[string]string{"Main.mj": `
public class Main {
    public static void main(String[] args) {
        System.out.println("loaded from a jar in the vfs");
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	jar, err := jvm.WriteJar(classes)
	if err != nil {
		t.Fatal(err)
	}

	win := browser.NewWindow(browser.Chrome28)
	bufs := &buffer.Factory{Typed: true}
	fs := vfs.New(win.Loop, bufs, vfs.NewInMemory())

	// Stage 1: store the jar in the file system.
	var provider *jvm.JarProvider
	win.Loop.Post("store", func() {
		fs.Mkdir("/lib", func(err error) {
			if err != nil {
				t.Errorf("mkdir: %v", err)
				return
			}
			fs.WriteFile("/lib/rt.jar", jar, func(err error) {
				if err != nil {
					t.Errorf("store jar: %v", err)
					return
				}
				jvm.LoadJarFromVFS(fs, "/lib/rt.jar", func(p *jvm.JarProvider, err error) {
					if err != nil {
						t.Errorf("load jar: %v", err)
						return
					}
					provider = p
				})
			})
		})
	})
	if err := win.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if provider == nil {
		t.Fatal("jar provider not loaded")
	}

	// Stage 2: run with the jar (plus nothing else) as the class path.
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MultiProvider{provider},
		DisableEngineTax: true,
	})
	if err := vm.RunMain("Main", nil); err != nil {
		t.Fatal(err)
	}
	if stdout.String() != "loaded from a jar in the vfs\n" {
		t.Errorf("out = %q", stdout.String())
	}
}

func TestMultiProviderOrder(t *testing.T) {
	a := jvm.MapProvider{"X": []byte("from-a")}
	b := jvm.MapProvider{"X": []byte("from-b"), "Y": []byte("y")}
	mp := jvm.MultiProvider{a, b}
	var got []byte
	mp.BytesAsync("X", func(d []byte, err error) { got = d })
	if string(got) != "from-a" {
		t.Errorf("class path order violated: %q", got)
	}
	mp.BytesAsync("Y", func(d []byte, err error) { got = d })
	if string(got) != "y" {
		t.Errorf("fallthrough failed: %q", got)
	}
	var gotErr error
	mp.BytesAsync("Z", func(_ []byte, err error) { gotErr = err })
	if gotErr == nil {
		t.Error("missing class found")
	}
}

func TestBadJar(t *testing.T) {
	if _, err := jvm.ReadJar([]byte("not a zip")); err == nil {
		t.Error("bad jar accepted")
	}
}

package jvm

import (
	"fmt"
	"math"
	"time"

	"doppio/internal/classfile"
	"doppio/internal/core"
	"doppio/internal/jlong"
)

// retAddr is the returnAddress type pushed by jsr and consumed by ret.
type retAddr int

// --- DFrame stack helpers (JS value conventions) ---

func (f *DFrame) push(v interface{}) { f.stack = append(f.stack, v) }

func (f *DFrame) pop() interface{} {
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}

func (f *DFrame) peek() interface{} { return f.stack[len(f.stack)-1] }

// boxedNums preboxes small JS numbers. Every Doppio stack slot is an
// interface{}, so boxing a float64 allocates; integer results
// overwhelmingly land in a small range (loop counters, flags, field
// values), and serving those from a static table removes most of the
// engine's per-push allocations.
var boxedNums [4096]interface{}

const boxedBase = -512

func init() {
	for i := range boxedNums {
		boxedNums[i] = float64(i + boxedBase)
	}
}

// boxI boxes an int32 as a JS number, using the preboxed cache for
// small values.
func boxI(v int32) interface{} {
	if i := int(v) - boxedBase; i >= 0 && i < len(boxedNums) {
		return boxedNums[i]
	}
	return float64(v)
}

func (f *DFrame) pushI(v int32)      { f.push(boxI(v)) }
func (f *DFrame) popI() int32        { return jsInt(f.pop()) }
func (f *DFrame) pushJ(v jlong.Long) { f.push(v); f.push(nil) }
func (f *DFrame) popJ() jlong.Long {
	f.pop()
	return f.pop().(jlong.Long)
}
func (f *DFrame) pushF(v float64) { f.push(jsFloat(v)) }
func (f *DFrame) popF() float64   { return f.pop().(float64) }
func (f *DFrame) pushD(v float64) { f.push(v); f.push(nil) }
func (f *DFrame) popD() float64 {
	f.pop()
	return f.pop().(float64)
}
func (f *DFrame) pushR(o *Object) {
	if o == nil {
		f.push(nil)
		return
	}
	f.push(o)
}
func (f *DFrame) popR() *Object {
	o, _ := f.pop().(*Object)
	return o
}

// dSlotFromValue converts a JS value into a field Slot per descriptor.
func dSlotFromValue(desc string, v interface{}) Slot {
	switch desc {
	case "J":
		return Slot{N: v.(jlong.Long).Int64()}
	case "F", "D":
		return FloatSlot(v.(float64))
	case "Z", "B", "C", "S", "I":
		return Slot{N: int64(jsInt(v))}
	default:
		o, _ := v.(*Object)
		return Slot{R: o}
	}
}

// dValueFromSlot converts a field Slot into a JS value per descriptor.
func dValueFromSlot(desc string, s Slot) interface{} {
	switch desc {
	case "J":
		return jlong.FromInt64(s.N)
	case "F", "D":
		return SlotFloat(s)
	case "Z", "B", "C", "S", "I":
		return boxI(int32(s.N))
	default:
		if s.R == nil {
			return nil
		}
		return s.R
	}
}

// decodeArgsD pops a native call's arguments off a Doppio frame.
func decodeArgsD(m *Method, f *DFrame, hasRecv bool) (recv *Object, args []Value) {
	total := m.ArgSlots
	if hasRecv {
		total++
	}
	base := len(f.stack) - total
	idx := base
	if hasRecv {
		recv, _ = f.stack[idx].(*Object)
		idx++
	}
	args = make([]Value, len(m.ParamDescs))
	for i, d := range m.ParamDescs {
		v := f.stack[idx]
		switch d {
		case "J":
			args[i] = v.(jlong.Long).Int64()
			idx += 2
		case "F":
			args[i] = float32(v.(float64))
			idx++
		case "D":
			args[i] = v.(float64)
			idx += 2
		case "Z", "B", "C", "S", "I":
			args[i] = jsInt(v)
			idx++
		default:
			if o, ok := v.(*Object); ok {
				args[i] = o
			} else {
				args[i] = nil
			}
			idx++
		}
	}
	f.stack = f.stack[:base]
	return recv, args
}

// encodePushD pushes a decoded native result as a JS value.
func encodePushD(f *DFrame, desc string, v Value) {
	switch desc {
	case "V", "":
	case "J":
		f.pushJ(jlong.FromInt64(v.(int64)))
	case "F":
		f.pushF(float64(v.(float32)))
	case "D":
		f.pushD(v.(float64))
	case "Z", "B", "C", "S", "I":
		f.pushI(v.(int32))
	default:
		if v == nil {
			f.pushR(nil)
		} else {
			f.pushR(v.(*Object))
		}
	}
}

func (d *DThread) applyDeposit() {
	d.depReady = false
	if d.depThrown != nil {
		ex := d.depThrown
		d.depValue, d.depThrown = nil, nil
		d.vm.unwindD(d, ex)
		return
	}
	if len(d.frames) == 0 {
		return
	}
	f := d.frames[len(d.frames)-1]
	encodePushD(f, d.depRet, d.depValue)
	d.depValue = nil
}

// throwD constructs and unwinds a VM-generated exception.
func (vm *DoppioVM) throwD(d *DThread, class, msg string) {
	vm.unwindD(d, vm.MakeThrowable(class, msg))
}

// unwindD walks the explicit frame array for a handler (§6.6:
// "DOPPIOJVM emulates JVM exception handling semantics by iterating
// through its virtual stack representation until it finds a stack
// frame with an applicable exception handler, or until it empties the
// stack and exits with an error").
func (vm *DoppioVM) unwindD(d *DThread, ex *Object) {
	for len(d.frames) > 0 {
		f := d.frames[len(d.frames)-1]
		if f.m.Code != nil {
			for _, e := range f.m.Code.Exceptions {
				if f.pc < int(e.StartPC) || f.pc >= int(e.EndPC) {
					continue
				}
				if e.CatchType != 0 {
					catchName := f.m.Class.CP[e.CatchType].Str
					// A class that was never loaded can have no
					// instances, so an unloaded catch type never
					// matches.
					cc := vm.Reg.Get(catchName)
					if cc == nil || !ex.Class.SubclassOf(cc) {
						continue
					}
				}
				f.pc = int(e.HandlerPC)
				f.stack = f.stack[:0]
				f.pushR(ex)
				return
			}
		}
		f.span.End()
		d.frames = d.frames[:len(d.frames)-1]
	}
	fmt.Fprintf(vm.stderr, "Exception in thread %d %s\n", d.id, vm.describeThrowable(ex))
	if trace, ok := ex.Extra.([]string); ok {
		for _, line := range trace {
			fmt.Fprintf(vm.stderr, "\tat %s\n", line)
		}
	}
	if vm.Uncaught == nil {
		vm.Uncaught = ex
	}
	d.die()
}

func (d *DThread) die() {
	if d.dead {
		return
	}
	d.dead = true
	for _, f := range d.frames {
		f.span.End()
	}
	d.frames = nil
	for _, j := range d.joiners {
		j()
	}
	d.joiners = nil
}

// methodReturnD pops the top frame, moving the return value.
func (d *DThread) methodReturnD(desc string) {
	f := d.frames[len(d.frames)-1]
	var v interface{}
	wide := false
	switch desc {
	case "V":
	case "J", "D":
		f.pop()
		v = f.pop()
		wide = true
	default:
		v = f.pop()
	}
	f.span.End()
	d.frames = d.frames[:len(d.frames)-1]
	if len(d.frames) == 0 {
		d.die()
		return
	}
	d.recycleFrame(f)
	caller := d.frames[len(d.frames)-1]
	if desc != "V" {
		caller.push(v)
		if wide {
			caller.push(nil)
		}
	}
}

// Run executes the thread until it finishes, yields, or blocks — one
// timeslice of the Doppio execution environment.
func (d *DThread) Run(ct *core.Thread) core.RunResult {
	vm := d.vm
	vm.cur = d
	d.blocked = false
	if d.depReady {
		d.applyDeposit()
	}
	for {
		if d.dead || vm.exited {
			d.die()
			return core.Done
		}
		if len(d.frames) == 0 {
			d.die()
			return core.Done
		}
		f := d.frames[len(d.frames)-1]
		code := f.m.Code.Bytecode
		if f.pc >= len(code) {
			d.methodReturnD("V")
			if ct.CheckSuspend() {
				return core.Yield
			}
			continue
		}
		qt := f.m.quick
		if qt != nil && qt.Ops[f.pc].Kind != QNone {
			// A quickened pc: hand the whole run of consecutive
			// side-table entries to the inner loop, which does its own
			// per-bytecode bookkeeping.
			if res := d.runQuickD(ct, f, qt); res != runContinue {
				return res.result()
			}
			continue
		}
		vm.Instructions++
		// Engine tax: model the relative speed of this browser's JS
		// engine with extra dispatch work per bytecode.
		for k := 0; k < vm.engineTax; k++ {
			vm.taxSink++
		}
		op := code[f.pc]
		if tel := vm.tel; tel != nil {
			tel.opCounts[op]++
		}
		if vm.pairs != nil && (qt == nil || !qt.fused) {
			// Pair attribution only feeds the fusion pass; once a
			// method is fused there is nothing left to decide.
			vm.pairs[pairKey(d.prevOp, op)]++
			d.prevOp = op
		}
		npc := f.pc + classfile.InstrLen(code, f.pc)

		switch op {
		case classfile.OpNop:
		case classfile.OpAconstNull:
			f.pushR(nil)
		case classfile.OpIconstM1, classfile.OpIconst0, classfile.OpIconst1,
			classfile.OpIconst2, classfile.OpIconst3, classfile.OpIconst4, classfile.OpIconst5:
			f.pushI(int32(op) - classfile.OpIconst0)
		case classfile.OpLconst0:
			f.pushJ(jlong.Zero)
		case classfile.OpLconst1:
			f.pushJ(jlong.One)
		case classfile.OpFconst0:
			f.pushF(0)
		case classfile.OpFconst1:
			f.pushF(1)
		case classfile.OpFconst2:
			f.pushF(2)
		case classfile.OpDconst0:
			f.pushD(0)
		case classfile.OpDconst1:
			f.pushD(1)
		case classfile.OpBipush:
			f.pushI(int32(int8(code[f.pc+1])))
		case classfile.OpSipush:
			f.pushI(int32(i16(code, f.pc+1)))

		case classfile.OpLdc, classfile.OpLdcW, classfile.OpLdc2W:
			var idx uint16
			if op == classfile.OpLdc {
				idx = uint16(code[f.pc+1])
			} else {
				idx = u16(code, f.pc+1)
			}
			rc := &f.m.Class.CP[idx]
			switch rc.Tag {
			case classfile.TagInteger:
				f.pushI(rc.Int)
			case classfile.TagFloat:
				f.pushF(float64(rc.Float))
			case classfile.TagLong:
				f.pushJ(jlong.FromInt64(rc.Long))
			case classfile.TagDouble:
				f.pushD(rc.Double)
			case classfile.TagString:
				if rc.StringObj == nil {
					rc.StringObj = vm.Intern(rc.Str)
				}
				f.pushR(rc.StringObj)
			case classfile.TagClass:
				cls := vm.Reg.Get(rc.Str)
				if cls == nil {
					if res := d.loadAndRetry(ct, rc.Str); res != runContinue {
						return res.result()
					}
					continue
				}
				f.pushR(vm.ClassMirror(cls))
			}

		case classfile.OpIload, classfile.OpFload, classfile.OpAload:
			f.push(f.locals[code[f.pc+1]])
		case classfile.OpLload, classfile.OpDload:
			f.push(f.locals[code[f.pc+1]])
			f.push(nil)
		case classfile.OpIload0, classfile.OpIload1, classfile.OpIload2, classfile.OpIload3:
			f.push(f.locals[op-classfile.OpIload0])
		case classfile.OpLload0, classfile.OpLload1, classfile.OpLload2, classfile.OpLload3:
			f.push(f.locals[op-classfile.OpLload0])
			f.push(nil)
		case classfile.OpFload0, classfile.OpFload1, classfile.OpFload2, classfile.OpFload3:
			f.push(f.locals[op-classfile.OpFload0])
		case classfile.OpDload0, classfile.OpDload1, classfile.OpDload2, classfile.OpDload3:
			f.push(f.locals[op-classfile.OpDload0])
			f.push(nil)
		case classfile.OpAload0, classfile.OpAload1, classfile.OpAload2, classfile.OpAload3:
			f.push(f.locals[op-classfile.OpAload0])

		case classfile.OpIstore, classfile.OpFstore, classfile.OpAstore:
			f.locals[code[f.pc+1]] = f.pop()
		case classfile.OpLstore, classfile.OpDstore:
			f.pop()
			f.locals[code[f.pc+1]] = f.pop()
		case classfile.OpIstore0, classfile.OpIstore1, classfile.OpIstore2, classfile.OpIstore3:
			f.locals[op-classfile.OpIstore0] = f.pop()
		case classfile.OpLstore0, classfile.OpLstore1, classfile.OpLstore2, classfile.OpLstore3:
			f.pop()
			f.locals[op-classfile.OpLstore0] = f.pop()
		case classfile.OpFstore0, classfile.OpFstore1, classfile.OpFstore2, classfile.OpFstore3:
			f.locals[op-classfile.OpFstore0] = f.pop()
		case classfile.OpDstore0, classfile.OpDstore1, classfile.OpDstore2, classfile.OpDstore3:
			f.pop()
			f.locals[op-classfile.OpDstore0] = f.pop()
		case classfile.OpAstore0, classfile.OpAstore1, classfile.OpAstore2, classfile.OpAstore3:
			f.locals[op-classfile.OpAstore0] = f.pop()

		case classfile.OpIaload, classfile.OpLaload, classfile.OpFaload, classfile.OpDaload,
			classfile.OpAaload, classfile.OpBaload, classfile.OpCaload, classfile.OpSaload:
			idx := f.popI()
			arr := f.popR()
			if arr == nil {
				vm.throwD(d, "java/lang/NullPointerException", "array load")
				continue
			}
			if int(idx) < 0 || int(idx) >= arr.ArrayLen() {
				vm.throwD(d, "java/lang/ArrayIndexOutOfBoundsException", fmt.Sprint(idx))
				continue
			}
			switch a := arr.Arr.(type) {
			case []int32:
				f.pushI(a[idx])
			case []int64:
				f.pushJ(jlong.FromInt64(a[idx]))
			case []float32:
				f.pushF(float64(a[idx]))
			case []float64:
				f.pushD(a[idx])
			case []*Object:
				f.pushR(a[idx])
			case []int8:
				f.pushI(int32(a[idx]))
			case []uint16:
				f.pushI(int32(a[idx]))
			case []int16:
				f.pushI(int32(a[idx]))
			}

		case classfile.OpIastore, classfile.OpLastore, classfile.OpFastore, classfile.OpDastore,
			classfile.OpAastore, classfile.OpBastore, classfile.OpCastore, classfile.OpSastore:
			var vi int32
			var vj jlong.Long
			var vf float64
			var vd float64
			var vr *Object
			switch op {
			case classfile.OpLastore:
				vj = f.popJ()
			case classfile.OpFastore:
				vf = f.popF()
			case classfile.OpDastore:
				vd = f.popD()
			case classfile.OpAastore:
				vr = f.popR()
			default:
				vi = f.popI()
			}
			idx := f.popI()
			arr := f.popR()
			if arr == nil {
				vm.throwD(d, "java/lang/NullPointerException", "array store")
				continue
			}
			if int(idx) < 0 || int(idx) >= arr.ArrayLen() {
				vm.throwD(d, "java/lang/ArrayIndexOutOfBoundsException", fmt.Sprint(idx))
				continue
			}
			switch a := arr.Arr.(type) {
			case []int32:
				a[idx] = vi
			case []int64:
				a[idx] = vj.Int64()
			case []float32:
				a[idx] = float32(vf)
			case []float64:
				a[idx] = vd
			case []*Object:
				a[idx] = vr
			case []int8:
				a[idx] = int8(vi)
			case []uint16:
				a[idx] = uint16(vi)
			case []int16:
				a[idx] = int16(vi)
			}

		case classfile.OpPop:
			f.pop()
		case classfile.OpPop2:
			f.pop()
			f.pop()
		case classfile.OpDup:
			f.push(f.peek())
		case classfile.OpDupX1:
			v1 := f.pop()
			v2 := f.pop()
			f.push(v1)
			f.push(v2)
			f.push(v1)
		case classfile.OpDupX2:
			v1 := f.pop()
			v2 := f.pop()
			v3 := f.pop()
			f.push(v1)
			f.push(v3)
			f.push(v2)
			f.push(v1)
		case classfile.OpDup2:
			v1 := f.pop()
			v2 := f.pop()
			f.push(v2)
			f.push(v1)
			f.push(v2)
			f.push(v1)
		case classfile.OpDup2X1:
			v1 := f.pop()
			v2 := f.pop()
			v3 := f.pop()
			f.push(v2)
			f.push(v1)
			f.push(v3)
			f.push(v2)
			f.push(v1)
		case classfile.OpDup2X2:
			v1 := f.pop()
			v2 := f.pop()
			v3 := f.pop()
			v4 := f.pop()
			f.push(v2)
			f.push(v1)
			f.push(v4)
			f.push(v3)
			f.push(v2)
			f.push(v1)
		case classfile.OpSwap:
			v1 := f.pop()
			v2 := f.pop()
			f.push(v1)
			f.push(v2)

		// --- int arithmetic with JS |0 coercions ---
		case classfile.OpIadd:
			b := f.popI()
			a := f.popI()
			f.pushI(int32(int64(a) + int64(b)))
		case classfile.OpIsub:
			b := f.popI()
			a := f.popI()
			f.pushI(int32(int64(a) - int64(b)))
		case classfile.OpImul:
			b := f.popI()
			a := f.popI()
			f.pushI(int32(int64(a) * int64(b)))
		case classfile.OpIdiv:
			b := f.popI()
			a := f.popI()
			if b == 0 {
				vm.throwD(d, "java/lang/ArithmeticException", "/ by zero")
				continue
			}
			f.push(jsTruncDiv(float64(a), float64(b)))
		case classfile.OpIrem:
			b := f.popI()
			a := f.popI()
			if b == 0 {
				vm.throwD(d, "java/lang/ArithmeticException", "% by zero")
				continue
			}
			f.push(float64(int32(math.Mod(float64(a), float64(b)))))
		case classfile.OpIneg:
			f.pushI(int32(-int64(f.popI())))

		// --- long arithmetic on software longs (§8) ---
		case classfile.OpLadd:
			b := f.popJ()
			a := f.popJ()
			f.pushJ(a.Add(b))
		case classfile.OpLsub:
			b := f.popJ()
			a := f.popJ()
			f.pushJ(a.Sub(b))
		case classfile.OpLmul:
			b := f.popJ()
			a := f.popJ()
			f.pushJ(a.Mul(b))
		case classfile.OpLdiv:
			b := f.popJ()
			a := f.popJ()
			if b.IsZero() {
				vm.throwD(d, "java/lang/ArithmeticException", "/ by zero")
				continue
			}
			f.pushJ(a.Div(b))
		case classfile.OpLrem:
			b := f.popJ()
			a := f.popJ()
			if b.IsZero() {
				vm.throwD(d, "java/lang/ArithmeticException", "% by zero")
				continue
			}
			f.pushJ(a.Rem(b))
		case classfile.OpLneg:
			f.pushJ(f.popJ().Neg())

		// --- float/double arithmetic (JS numbers) ---
		case classfile.OpFadd:
			b := f.popF()
			a := f.popF()
			f.pushF(a + b)
		case classfile.OpFsub:
			b := f.popF()
			a := f.popF()
			f.pushF(a - b)
		case classfile.OpFmul:
			b := f.popF()
			a := f.popF()
			f.pushF(a * b)
		case classfile.OpFdiv:
			b := f.popF()
			a := f.popF()
			f.pushF(a / b)
		case classfile.OpFrem:
			b := f.popF()
			a := f.popF()
			f.pushF(jrem(a, b))
		case classfile.OpFneg:
			f.pushF(-f.popF())
		case classfile.OpDadd:
			b := f.popD()
			a := f.popD()
			f.pushD(a + b)
		case classfile.OpDsub:
			b := f.popD()
			a := f.popD()
			f.pushD(a - b)
		case classfile.OpDmul:
			b := f.popD()
			a := f.popD()
			f.pushD(a * b)
		case classfile.OpDdiv:
			b := f.popD()
			a := f.popD()
			f.pushD(a / b)
		case classfile.OpDrem:
			b := f.popD()
			a := f.popD()
			f.pushD(jrem(a, b))
		case classfile.OpDneg:
			f.pushD(-f.popD())

		// --- shifts and bitwise (|0 world) ---
		case classfile.OpIshl:
			b := f.popI()
			a := f.popI()
			f.pushI(a << (uint(b) & 31))
		case classfile.OpIshr:
			b := f.popI()
			a := f.popI()
			f.pushI(a >> (uint(b) & 31))
		case classfile.OpIushr:
			b := f.popI()
			a := f.popI()
			f.pushI(int32(uint32(a) >> (uint(b) & 31)))
		case classfile.OpLshl:
			b := f.popI()
			a := f.popJ()
			f.pushJ(a.Shl(uint(b)))
		case classfile.OpLshr:
			b := f.popI()
			a := f.popJ()
			f.pushJ(a.Shr(uint(b)))
		case classfile.OpLushr:
			b := f.popI()
			a := f.popJ()
			f.pushJ(a.Ushr(uint(b)))
		case classfile.OpIand:
			b := f.popI()
			a := f.popI()
			f.pushI(a & b)
		case classfile.OpIor:
			b := f.popI()
			a := f.popI()
			f.pushI(a | b)
		case classfile.OpIxor:
			b := f.popI()
			a := f.popI()
			f.pushI(a ^ b)
		case classfile.OpLand:
			b := f.popJ()
			a := f.popJ()
			f.pushJ(a.And(b))
		case classfile.OpLor:
			b := f.popJ()
			a := f.popJ()
			f.pushJ(a.Or(b))
		case classfile.OpLxor:
			b := f.popJ()
			a := f.popJ()
			f.pushJ(a.Xor(b))

		case classfile.OpIinc:
			slot := code[f.pc+1]
			f.locals[slot] = boxI(int32(int64(jsInt(f.locals[slot])) + int64(int8(code[f.pc+2]))))

		// --- conversions ---
		case classfile.OpI2l:
			f.pushJ(jlong.FromInt32(f.popI()))
		case classfile.OpI2f:
			f.pushF(float64(f.popI()))
		case classfile.OpI2d:
			f.pushD(float64(f.popI()))
		case classfile.OpL2i:
			f.pushI(f.popJ().Int32())
		case classfile.OpL2f:
			f.pushF(f.popJ().Float64())
		case classfile.OpL2d:
			f.pushD(f.popJ().Float64())
		case classfile.OpF2i:
			f.pushI(d2i(f.popF()))
		case classfile.OpF2l:
			f.pushJ(jlong.FromFloat64(f.popF()))
		case classfile.OpF2d:
			f.pushD(f.popF())
		case classfile.OpD2i:
			f.pushI(d2i(f.popD()))
		case classfile.OpD2l:
			f.pushJ(jlong.FromFloat64(f.popD()))
		case classfile.OpD2f:
			f.pushF(f.popD())
		case classfile.OpI2b:
			f.pushI(int32(int8(f.popI())))
		case classfile.OpI2c:
			f.pushI(int32(uint16(f.popI())))
		case classfile.OpI2s:
			f.pushI(int32(int16(f.popI())))

		// --- comparisons ---
		case classfile.OpLcmp:
			b := f.popJ()
			a := f.popJ()
			f.pushI(int32(a.Cmp(b)))
		case classfile.OpFcmpl, classfile.OpFcmpg:
			b := f.popF()
			a := f.popF()
			f.pushI(fcmp(a, b, op == classfile.OpFcmpg))
		case classfile.OpDcmpl, classfile.OpDcmpg:
			b := f.popD()
			a := f.popD()
			f.pushI(fcmp(a, b, op == classfile.OpDcmpg))

		case classfile.OpIfeq, classfile.OpIfne, classfile.OpIflt,
			classfile.OpIfge, classfile.OpIfgt, classfile.OpIfle:
			v := f.popI()
			taken := false
			switch op {
			case classfile.OpIfeq:
				taken = v == 0
			case classfile.OpIfne:
				taken = v != 0
			case classfile.OpIflt:
				taken = v < 0
			case classfile.OpIfge:
				taken = v >= 0
			case classfile.OpIfgt:
				taken = v > 0
			case classfile.OpIfle:
				taken = v <= 0
			}
			if taken {
				npc = f.pc + int(i16(code, f.pc+1))
			}
		case classfile.OpIfIcmpeq, classfile.OpIfIcmpne, classfile.OpIfIcmplt,
			classfile.OpIfIcmpge, classfile.OpIfIcmpgt, classfile.OpIfIcmple:
			b := f.popI()
			a := f.popI()
			taken := false
			switch op {
			case classfile.OpIfIcmpeq:
				taken = a == b
			case classfile.OpIfIcmpne:
				taken = a != b
			case classfile.OpIfIcmplt:
				taken = a < b
			case classfile.OpIfIcmpge:
				taken = a >= b
			case classfile.OpIfIcmpgt:
				taken = a > b
			case classfile.OpIfIcmple:
				taken = a <= b
			}
			if taken {
				npc = f.pc + int(i16(code, f.pc+1))
			}
		case classfile.OpIfAcmpeq:
			b := f.popR()
			a := f.popR()
			if a == b {
				npc = f.pc + int(i16(code, f.pc+1))
			}
		case classfile.OpIfAcmpne:
			b := f.popR()
			a := f.popR()
			if a != b {
				npc = f.pc + int(i16(code, f.pc+1))
			}
		case classfile.OpIfnull:
			if f.popR() == nil {
				npc = f.pc + int(i16(code, f.pc+1))
			}
		case classfile.OpIfnonnull:
			if f.popR() != nil {
				npc = f.pc + int(i16(code, f.pc+1))
			}

		case classfile.OpGoto:
			npc = f.pc + int(i16(code, f.pc+1))
		case classfile.OpGotoW:
			npc = f.pc + int(int32(u32(code, f.pc+1)))
		case classfile.OpJsr:
			f.push(retAddr(npc))
			npc = f.pc + int(i16(code, f.pc+1))
		case classfile.OpJsrW:
			f.push(retAddr(npc))
			npc = f.pc + int(int32(u32(code, f.pc+1)))
		case classfile.OpRet:
			npc = int(f.locals[code[f.pc+1]].(retAddr))

		case classfile.OpTableswitch:
			base := (f.pc + 4) &^ 3
			def := f.pc + int(int32(u32(code, base)))
			low := int32(u32(code, base+4))
			high := int32(u32(code, base+8))
			v := f.popI()
			if v < low || v > high {
				npc = def
			} else {
				npc = f.pc + int(int32(u32(code, base+12+4*int(v-low))))
			}
		case classfile.OpLookupswitch:
			base := (f.pc + 4) &^ 3
			def := f.pc + int(int32(u32(code, base)))
			n := int(int32(u32(code, base+4)))
			v := f.popI()
			npc = def
			for i := 0; i < n; i++ {
				if int32(u32(code, base+8+8*i)) == v {
					npc = f.pc + int(int32(u32(code, base+12+8*i)))
					break
				}
			}

		case classfile.OpIreturn, classfile.OpFreturn, classfile.OpAreturn,
			classfile.OpLreturn, classfile.OpDreturn:
			d.methodReturnD(f.m.RetDesc)
			if ct.CheckSuspend() {
				return core.Yield
			}
			continue
		case classfile.OpReturn:
			d.methodReturnD("V")
			if ct.CheckSuspend() {
				return core.Yield
			}
			continue

		case classfile.OpGetstatic, classfile.OpPutstatic:
			idx := u16(code, f.pc+1)
			rc := &f.m.Class.CP[idx]
			owner := vm.Reg.Get(rc.ClassName)
			if owner == nil {
				if res := d.loadAndRetry(ct, rc.ClassName); res != runContinue {
					return res.result()
				}
				continue
			}
			fld := owner.FindField(rc.MemberName)
			if fld == nil {
				vm.throwD(d, "java/lang/Error", "no field "+rc.ClassName+"."+rc.MemberName)
				continue
			}
			if fld.Class.State == StateLoaded {
				if d.pushInitIfNeeded(fld.Class) {
					continue
				}
			}
			if vm.quicken {
				kind := QGetstatic
				if op == classfile.OpPutstatic {
					kind = QPutstatic
				}
				installStaticQuick(f.m, f.pc, kind, fld, &vm.qstats)
			}
			if op == classfile.OpGetstatic {
				f.push(dValueFromSlot(fld.Desc, fld.Class.Statics[fld.Name]))
				if fld.Desc == "J" || fld.Desc == "D" {
					f.push(nil)
				}
			} else {
				if fld.Desc == "J" || fld.Desc == "D" {
					f.pop()
				}
				fld.Class.Statics[fld.Name] = dSlotFromValue(fld.Desc, f.pop())
			}
		case classfile.OpGetfield:
			idx := u16(code, f.pc+1)
			rc := &f.m.Class.CP[idx]
			o := f.popR()
			if o == nil {
				vm.throwD(d, "java/lang/NullPointerException", rc.MemberName)
				continue
			}
			owner := vm.Reg.Get(rc.ClassName)
			if owner == nil {
				owner = o.Class
			}
			s, gerr := o.GetField(owner, rc.MemberName)
			if gerr != nil {
				vm.throwD(d, "java/lang/Error", gerr.Error())
				continue
			}
			if vm.quicken {
				fld := owner.FindField(rc.MemberName)
				if fld == nil {
					fld = o.Class.FindField(rc.MemberName)
				}
				installFieldQuick(f.m, f.pc, QGetfield, fld, &vm.qstats)
			}
			f.push(dValueFromSlot(rc.MemberDesc, s))
			if rc.MemberDesc == "J" || rc.MemberDesc == "D" {
				f.push(nil)
			}
		case classfile.OpPutfield:
			idx := u16(code, f.pc+1)
			rc := &f.m.Class.CP[idx]
			if rc.MemberDesc == "J" || rc.MemberDesc == "D" {
				f.pop()
			}
			v := f.pop()
			o := f.popR()
			if o == nil {
				vm.throwD(d, "java/lang/NullPointerException", rc.MemberName)
				continue
			}
			owner := vm.Reg.Get(rc.ClassName)
			if owner == nil {
				owner = o.Class
			}
			if serr := o.SetField(owner, rc.MemberName, dSlotFromValue(rc.MemberDesc, v)); serr != nil {
				vm.throwD(d, "java/lang/Error", serr.Error())
				continue
			}
			if vm.quicken {
				fld := owner.FindField(rc.MemberName)
				if fld == nil {
					fld = o.Class.FindField(rc.MemberName)
				}
				installFieldQuick(f.m, f.pc, QPutfield, fld, &vm.qstats)
			}

		case classfile.OpInvokestatic, classfile.OpInvokespecial,
			classfile.OpInvokevirtual, classfile.OpInvokeinterface:
			res := d.invokeOp(ct, f, op, code, npc)
			switch res {
			case runContinue:
				continue
			case runYield:
				return core.Yield
			case runBlock:
				return core.Block
			case runDone:
				return core.Done
			}

		case classfile.OpNew:
			idx := u16(code, f.pc+1)
			name := f.m.Class.CP[idx].Str
			cls := vm.Reg.Get(name)
			if cls == nil {
				if res := d.loadAndRetry(ct, name); res != runContinue {
					return res.result()
				}
				continue
			}
			if cls.State == StateLoaded {
				if d.pushInitIfNeeded(cls) {
					continue
				}
			}
			if vm.prof != nil {
				d.profAlloc(profObjBytes(cls))
			}
			f.pushR(NewObject(cls))
		case classfile.OpNewarray:
			n := f.popI()
			if n < 0 {
				vm.throwD(d, "java/lang/NegativeArraySizeException", fmt.Sprint(n))
				continue
			}
			desc := primArrayDesc(code[f.pc+1])
			arrC, _ := vm.Reg.arrayClass("[" + desc)
			if c := vm.Reg.Get("[" + desc); c != nil {
				arrC = c
			}
			if vm.prof != nil {
				d.profAlloc(profArrayBytes(desc, n))
			}
			f.pushR(NewArray(arrC, desc, int(n)))
		case classfile.OpAnewarray:
			idx := u16(code, f.pc+1)
			n := f.popI()
			if n < 0 {
				vm.throwD(d, "java/lang/NegativeArraySizeException", fmt.Sprint(n))
				continue
			}
			elemName := f.m.Class.CP[idx].Str
			elemDesc := elemName
			if elemName[0] != '[' {
				elemDesc = "L" + elemName + ";"
			}
			arrC := vm.Reg.Get("[" + elemDesc)
			if arrC == nil {
				arrC, _ = vm.Reg.arrayClass("[" + elemDesc)
			}
			if vm.prof != nil {
				d.profAlloc(profArrayBytes(elemDesc, n))
			}
			f.pushR(NewArray(arrC, elemDesc, int(n)))
		case classfile.OpMultianewarray:
			idx := u16(code, f.pc+1)
			dims := int(code[f.pc+3])
			counts := make([]int32, dims)
			bad := false
			for i := dims - 1; i >= 0; i-- {
				counts[i] = f.popI()
				if counts[i] < 0 {
					bad = true
				}
			}
			if bad {
				vm.throwD(d, "java/lang/NegativeArraySizeException", "multianewarray")
				continue
			}
			arrName := f.m.Class.CP[idx].Str
			arr := vm.buildMultiArrayD(arrName, counts)
			if vm.prof != nil {
				total := int64(1)
				for _, c := range counts {
					total *= int64(c)
				}
				d.profAlloc(16 + 8*total)
			}
			f.pushR(arr)
		case classfile.OpArraylength:
			arr := f.popR()
			if arr == nil {
				vm.throwD(d, "java/lang/NullPointerException", "arraylength")
				continue
			}
			f.pushI(int32(arr.ArrayLen()))

		case classfile.OpAthrow:
			ex := f.popR()
			if ex == nil {
				vm.throwD(d, "java/lang/NullPointerException", "athrow")
				continue
			}
			vm.unwindD(d, ex)
			continue

		case classfile.OpCheckcast:
			idx := u16(code, f.pc+1)
			target := f.m.Class.CP[idx].Str
			o, _ := f.peek().(*Object)
			if o != nil && !vm.assignableD(o.Class, target) {
				vm.throwD(d, "java/lang/ClassCastException",
					o.Class.Name+" cannot be cast to "+target)
				continue
			}
		case classfile.OpInstanceof:
			idx := u16(code, f.pc+1)
			target := f.m.Class.CP[idx].Str
			o := f.popR()
			if o != nil && vm.assignableD(o.Class, target) {
				f.pushI(1)
			} else {
				f.pushI(0)
			}

		case classfile.OpMonitorenter:
			o := f.popR()
			if o == nil {
				vm.throwD(d, "java/lang/NullPointerException", "monitorenter")
				continue
			}
			mon := o.EnsureMonitor()
			switch {
			case mon.Owner == nil:
				mon.Owner = d
				mon.Count = 1
			case mon.Owner == d:
				mon.Count++
			default:
				// Contended: block; re-execute monitorenter on resume.
				// The completion label names the monitor's class so a
				// deadlock report says what the thread is stuck on.
				f.pushR(o)
				c := core.NewCompletion(vm.win.Loop, "jvm.monitorenter("+o.Class.Name+")")
				mon.BlockQ = append(mon.BlockQ, func() { c.Resolve(nil, nil) })
				c.Await(ct)
				return core.Block
			}
		case classfile.OpMonitorexit:
			o := f.popR()
			if o == nil {
				vm.throwD(d, "java/lang/NullPointerException", "monitorexit")
				continue
			}
			mon := o.EnsureMonitor()
			if mon.Owner != d {
				vm.throwD(d, "java/lang/IllegalMonitorStateException", "monitorexit")
				continue
			}
			mon.Count--
			if mon.Count == 0 {
				mon.Owner = nil
				vm.wakeOneBlockedD(mon)
			}

		case classfile.OpWide:
			inner := code[f.pc+1]
			slot := int(u16(code, f.pc+2))
			switch inner {
			case classfile.OpIload, classfile.OpFload, classfile.OpAload:
				f.push(f.locals[slot])
			case classfile.OpLload, classfile.OpDload:
				f.push(f.locals[slot])
				f.push(nil)
			case classfile.OpIstore, classfile.OpFstore, classfile.OpAstore:
				f.locals[slot] = f.pop()
			case classfile.OpLstore, classfile.OpDstore:
				f.pop()
				f.locals[slot] = f.pop()
			case classfile.OpIinc:
				f.locals[slot] = boxI(int32(int64(jsInt(f.locals[slot])) + int64(i16(code, f.pc+4))))
			case classfile.OpRet:
				npc = int(f.locals[slot].(retAddr))
			}

		default:
			vm.throwD(d, "java/lang/Error", fmt.Sprintf("illegal opcode %#02x", op))
			continue
		}
		f.pc = npc
	}
}

// runSignal communicates interpreter sub-step outcomes.
type runSignal int

const (
	runContinue runSignal = iota
	runYield
	runBlock
	runDone
)

func (r runSignal) result() core.RunResult {
	switch r {
	case runYield:
		return core.Yield
	case runBlock:
		return core.Block
	default:
		return core.Done
	}
}

// loadAndRetry loads a class asynchronously, suspending the thread
// (§6.4: the file system backend downloads the class file on demand).
// It returns runContinue when the class load completed synchronously;
// the caller re-executes the triggering instruction either way.
func (d *DThread) loadAndRetry(ct *core.Thread, name string) runSignal {
	vm := d.vm
	var loadErr error
	blocked := d.blockOn(ct, "jvm.classload("+name+")", func(done func()) {
		vm.loader.Load(name, func(_ *Class, err error) {
			loadErr = err
			done()
		})
	})
	if blocked {
		return runBlock
	}
	if loadErr != nil {
		vm.throwD(d, "java/lang/ClassNotFoundException", name)
	}
	return runContinue
}

// invokeOp handles the four invoke opcodes, including suspend checks
// at call boundaries (§6.1), class initialization, native dispatch
// and the async-native protocol.
func (d *DThread) invokeOp(ct *core.Thread, f *DFrame, op byte, code []byte, npc int) runSignal {
	vm := d.vm
	idx := u16(code, f.pc+1)
	rc := &f.m.Class.CP[idx]
	owner := vm.Reg.Get(rc.ClassName)
	if owner == nil {
		return d.loadAndRetry(ct, rc.ClassName)
	}
	rm := owner.FindMethod(rc.MemberName, rc.MemberDesc)
	if rm == nil {
		vm.throwD(d, "java/lang/Error", "no method "+rc.ClassName+"."+rc.MemberName+rc.MemberDesc)
		return runContinue
	}
	m := rm
	hasRecv := op != classfile.OpInvokestatic
	if op == classfile.OpInvokestatic && m.Class.State == StateLoaded {
		if d.pushInitIfNeeded(m.Class) {
			return runContinue
		}
	}
	if vm.quicken {
		switch op {
		case classfile.OpInvokestatic:
			installInvokeQuick(f.m, f.pc, QInvokeStatic, rm, &vm.qstats)
		case classfile.OpInvokespecial:
			installInvokeQuick(f.m, f.pc, QInvokeSpecial, rm, &vm.qstats)
		default:
			installInvokeQuick(f.m, f.pc, QInvokeVirtual, rm, &vm.qstats)
		}
	}
	if hasRecv {
		recvIdx := len(f.stack) - rm.ArgSlots - 1
		recv, _ := f.stack[recvIdx].(*Object)
		if recv == nil {
			vm.throwD(d, "java/lang/NullPointerException", rm.Name)
			return runContinue
		}
		if op == classfile.OpInvokevirtual || op == classfile.OpInvokeinterface {
			m = recv.Class.FindMethod(rm.Name, rm.Desc)
			if m == nil {
				vm.throwD(d, "java/lang/Error", "no method "+rm.String()+" on "+recv.Class.Name)
				return runContinue
			}
		}
	}
	f.pc = npc
	return d.invokeResolved(ct, f, m, hasRecv)
}

// invokeResolved finishes an invocation whose target is resolved and
// whose receiver (if any) is known non-null. f.pc must already point
// past the invoke instruction — both the generic handler and the
// quickened forms funnel through here so frame construction,
// telemetry, fusion warm-up, and the §6.1 call-boundary suspend check
// stay identical between the two paths.
func (d *DThread) invokeResolved(ct *core.Thread, f *DFrame, m *Method, hasRecv bool) runSignal {
	vm := d.vm
	if m.IsNative() {
		return d.invokeNativeD(ct, f, m, hasRecv)
	}
	if m.Code == nil {
		vm.throwD(d, "java/lang/Error", "abstract method invoked: "+m.String())
		return runContinue
	}
	nf := d.frameFor(m)
	total := m.ArgSlots
	if hasRecv {
		total++
	}
	base := len(f.stack) - total
	copy(nf.locals, f.stack[base:])
	f.stack = f.stack[:base]
	if tel := vm.tel; tel != nil {
		tel.invocations++
		nf.span = d.methodSpanBegin(m)
	}
	d.frames = append(d.frames, nf)
	if vm.quicken && m.Code != nil {
		if qt := m.quickTable(); qt.noteCall() {
			qt.fuse(m, vm.pairs, &vm.qstats, true)
		}
	}
	// §6.1: "DOPPIOJVM checks at each function call boundary whether
	// it should suspend."
	if ct.CheckSuspend() {
		return runYield
	}
	return runContinue
}

// quickFlush writes the inner loop's hoisted state back to the frame
// and the VM's shared counters. A plain method (not a closure) so the
// loop's locals stay registerizable.
func (d *DThread) quickFlush(f *DFrame, st []interface{}, sp, pc int, n, fused int64) {
	f.stack = st[:sp]
	f.pc = pc
	d.vm.Instructions += n
	d.vm.qstats.FusedExec += fused
}

// quickResume rebinds the inner loop to the top frame after a call
// boundary. It reports whether that frame is positioned on a
// quickened pc; when it is not (or the thread is done for), the
// caller hands control back to the outer dispatcher.
func (d *DThread) quickResume() (*DFrame, *QuickTable, bool) {
	vm := d.vm
	if d.dead || vm.exited || len(d.frames) == 0 {
		return nil, nil, false
	}
	f := d.frames[len(d.frames)-1]
	qt := f.m.quick
	if qt == nil || f.pc >= len(qt.Ops) || qt.Ops[f.pc].Kind == QNone {
		return f, qt, false
	}
	return f, qt, true
}

// runQuickD executes a run of consecutive quickened side-table
// entries on the Doppio engine in a tight inner loop. The outer
// dispatcher's per-bytecode costs — shared-counter writes, operand
// decoding, the frame's pc and stack-top fields — are hoisted into
// locals and flushed once per run, so each pre-decoded instruction
// touches only the operand stack and locals. Quickened calls and
// returns rebind the hoisted state to the new top frame and keep
// going (with the §6.1 suspend check still made at every boundary);
// the loop hands back to the outer dispatcher at the first generic
// pc and at every throw (the frame stack may have changed).
func (d *DThread) runQuickD(ct *core.Thread, f *DFrame, qt *QuickTable) runSignal {
	vm := d.vm
	tel := vm.tel
	tax := vm.engineTax
rebind:
	ops := qt.Ops
	packed := qt.packed
	// Pair attribution only matters until the fusion pass has run.
	pairs := vm.pairs
	if qt.fused {
		pairs = nil
	}
	lo := f.locals
	st := f.stack[:cap(f.stack)]
	sp := len(f.stack)
	pc := f.pc
	var n, fused int64
	for {
		if pc >= len(packed) {
			// Fell off the end: the outer loop treats this as an
			// implicit void return.
			d.quickFlush(f, st, sp, pc, n, fused)
			return runContinue
		}
		// One word carries kind, opcode, length, immediate and the A
		// operand — a single memory read dispatches most instructions.
		pk := packed[pc]
		kind := QuickKind(pk & packKindMask)
		if kind == QNone {
			d.quickFlush(f, st, sp, pc, n, fused)
			return runContinue
		}
		n++
		for k := 0; k < tax; k++ {
			vm.taxSink++
		}
		if tel != nil {
			tel.opCounts[byte(pk>>packOpShift)]++
		}
		if pairs != nil {
			op := byte(pk >> packOpShift)
			pairs[pairKey(d.prevOp, op)]++
			d.prevOp = op
		}
		switch kind {
		case QLoad:
			st[sp] = lo[pk>>packAShift]
			sp++
		case QLoad2:
			st[sp] = lo[pk>>packAShift]
			st[sp+1] = nil
			sp += 2
		case QStore:
			sp--
			lo[pk>>packAShift] = st[sp]
		case QStore2:
			sp -= 2
			lo[pk>>packAShift] = st[sp]
		case QConst:
			st[sp] = ops[pc].K
			sp++
		case QDup:
			st[sp] = st[sp-1]
			sp++
		case QPop:
			sp--
		case QIinc:
			a := pk >> packAShift
			lo[a] = boxI(jsInt(lo[a]) + int32(int8(pk>>packImmShift)))
		case QArith:
			sp--
			b := jsInt(st[sp])
			a := jsInt(st[sp-1])
			var r int32
			switch byte(pk >> packOpShift) {
			case classfile.OpIadd:
				r = a + b
			case classfile.OpIsub:
				r = a - b
			case classfile.OpImul:
				r = a * b
			case classfile.OpIand:
				r = a & b
			case classfile.OpIor:
				r = a | b
			case classfile.OpIxor:
				r = a ^ b
			case classfile.OpIshl:
				r = a << (uint(b) & 31)
			case classfile.OpIshr:
				r = a >> (uint(b) & 31)
			case classfile.OpIushr:
				r = int32(uint32(a) >> (uint(b) & 31))
			}
			st[sp-1] = boxI(r)
		case QGoto:
			pc = int(pk >> packAShift)
			continue
		case QIf:
			sp--
			v := jsInt(st[sp])
			var taken bool
			switch byte(pk >> packOpShift) {
			case classfile.OpIfeq:
				taken = v == 0
			case classfile.OpIfne:
				taken = v != 0
			case classfile.OpIflt:
				taken = v < 0
			case classfile.OpIfge:
				taken = v >= 0
			case classfile.OpIfgt:
				taken = v > 0
			case classfile.OpIfle:
				taken = v <= 0
			}
			if taken {
				pc = int(pk >> packAShift)
			} else {
				pc += int((pk >> packLenShift) & 0xff)
			}
			continue
		case QIfICmp:
			sp -= 2
			b := jsInt(st[sp+1])
			a := jsInt(st[sp])
			var taken bool
			switch byte(pk >> packOpShift) {
			case classfile.OpIfIcmpeq:
				taken = a == b
			case classfile.OpIfIcmpne:
				taken = a != b
			case classfile.OpIfIcmplt:
				taken = a < b
			case classfile.OpIfIcmpge:
				taken = a >= b
			case classfile.OpIfIcmpgt:
				taken = a > b
			case classfile.OpIfIcmple:
				taken = a <= b
			}
			if taken {
				pc = int(pk >> packAShift)
			} else {
				pc += int((pk >> packLenShift) & 0xff)
			}
			continue
		case QIfACmp:
			sp -= 2
			b, _ := st[sp+1].(*Object)
			a, _ := st[sp].(*Object)
			taken := a == b
			if byte(pk>>packOpShift) == classfile.OpIfAcmpne {
				taken = !taken
			}
			if taken {
				pc = int(pk >> packAShift)
			} else {
				pc += int((pk >> packLenShift) & 0xff)
			}
			continue
		case QIfNull:
			sp--
			v, _ := st[sp].(*Object)
			taken := v == nil
			if byte(pk>>packOpShift) == classfile.OpIfnonnull {
				taken = !taken
			}
			if taken {
				pc = int(pk >> packAShift)
			} else {
				pc += int((pk >> packLenShift) & 0xff)
			}
			continue
		case QGetfield:
			q := &ops[pc]
			sp--
			o, _ := st[sp].(*Object)
			if o == nil {
				d.quickFlush(f, st, sp, pc, n, fused)
				vm.throwD(d, "java/lang/NullPointerException", q.Field.Name)
				return runContinue
			}
			st[sp] = dValueFromSlot(q.Desc, o.Slots[q.Offset])
			sp++
			if q.Wide {
				st[sp] = nil
				sp++
			}
		case QPutfield:
			q := &ops[pc]
			if q.Wide {
				sp--
			}
			sp -= 2
			o, _ := st[sp].(*Object)
			if o == nil {
				d.quickFlush(f, st, sp, pc, n, fused)
				vm.throwD(d, "java/lang/NullPointerException", q.Field.Name)
				return runContinue
			}
			o.Slots[q.Offset] = dSlotFromValue(q.Desc, st[sp+1])
		case QGetstatic:
			q := &ops[pc]
			st[sp] = dValueFromSlot(q.Desc, q.Field.Class.Statics[q.Field.Name])
			sp++
			if q.Wide {
				st[sp] = nil
				sp++
			}
		case QPutstatic:
			q := &ops[pc]
			if q.Wide {
				sp--
			}
			sp--
			q.Field.Class.Statics[q.Field.Name] = dSlotFromValue(q.Desc, st[sp])
		case QInvokeStatic:
			q := &ops[pc]
			d.quickFlush(f, st, sp, pc+int(q.Len), n, fused)
			if res := d.invokeResolved(ct, f, q.Method, false); res != runContinue {
				return res
			}
			var ok bool
			if f, qt, ok = d.quickResume(); ok {
				goto rebind
			}
			return runContinue
		case QInvokeSpecial:
			q := &ops[pc]
			recv, _ := st[sp-q.Method.ArgSlots-1].(*Object)
			if recv == nil {
				d.quickFlush(f, st, sp, pc, n, fused)
				vm.throwD(d, "java/lang/NullPointerException", q.Method.Name)
				return runContinue
			}
			d.quickFlush(f, st, sp, pc+int(q.Len), n, fused)
			if res := d.invokeResolved(ct, f, q.Method, true); res != runContinue {
				return res
			}
			var ok bool
			if f, qt, ok = d.quickResume(); ok {
				goto rebind
			}
			return runContinue
		case QInvokeVirtual:
			q := &ops[pc]
			recv, _ := st[sp-q.Method.ArgSlots-1].(*Object)
			if recv == nil {
				d.quickFlush(f, st, sp, pc, n, fused)
				vm.throwD(d, "java/lang/NullPointerException", q.Method.Name)
				return runContinue
			}
			m := icLookup(q, recv.Class, &vm.qstats)
			if m == nil {
				d.quickFlush(f, st, sp, pc, n, fused)
				vm.throwD(d, "java/lang/Error", "no method "+q.Method.String()+" on "+recv.Class.Name)
				return runContinue
			}
			d.quickFlush(f, st, sp, pc+int(q.Len), n, fused)
			if res := d.invokeResolved(ct, f, m, true); res != runContinue {
				return res
			}
			var ok bool
			if f, qt, ok = d.quickResume(); ok {
				goto rebind
			}
			return runContinue
		case QReturn:
			d.quickFlush(f, st, sp, pc, n, fused)
			d.methodReturnD(ops[pc].Desc)
			if ct.CheckSuspend() {
				return runYield
			}
			var ok bool
			if f, qt, ok = d.quickResume(); ok {
				goto rebind
			}
			return runContinue
		case QAloadGetfield:
			q := &ops[pc]
			o, _ := lo[pk>>packAShift].(*Object)
			if o == nil {
				// Re-point pc at the getfield half so exception-table
				// ranges see the same throw site as the unfused form.
				d.quickFlush(f, st, sp, pc+int(q.Len)-3, n, fused)
				vm.throwD(d, "java/lang/NullPointerException", q.Field.Name)
				return runContinue
			}
			st[sp] = dValueFromSlot(q.Desc, o.Slots[q.Offset])
			sp++
			if q.Wide {
				st[sp] = nil
				sp++
			}
			fused++
		case QIloadIadd:
			a := pk >> packAShift
			st[sp-1] = boxI(jsInt(st[sp-1]) + jsInt(lo[a]))
			fused++
		case QGetfieldIfeq:
			q := &ops[pc]
			sp--
			o, _ := st[sp].(*Object)
			if o == nil {
				d.quickFlush(f, st, sp, pc, n, fused)
				vm.throwD(d, "java/lang/NullPointerException", q.Field.Name)
				return runContinue
			}
			fused++
			if jsInt(dValueFromSlot(q.Desc, o.Slots[q.Offset])) == 0 {
				pc = int(pk >> packAShift)
			} else {
				pc += int((pk >> packLenShift) & 0xff)
			}
			continue
		case QIloadIfIcmplt:
			sp--
			fused++
			// Branch target exceeds the packed immediate; read the
			// full entry.
			if jsInt(st[sp]) < jsInt(lo[pk>>packAShift]) {
				pc = int(ops[pc].Offset)
			} else {
				pc += int((pk >> packLenShift) & 0xff)
			}
			continue
		}
		pc += int((pk >> packLenShift) & 0xff)
	}
}

func (d *DThread) invokeNativeD(ct *core.Thread, f *DFrame, m *Method, hasRecv bool) runSignal {
	vm := d.vm
	key := m.Class.Name + "." + m.Name + m.Desc
	fn := vm.natives[key]
	if fn == nil {
		for k := m.Class.Super; k != nil && fn == nil; k = k.Super {
			fn = vm.natives[k.Name+"."+m.Name+m.Desc]
		}
	}
	if fn == nil {
		vm.throwD(d, "java/lang/Error", "UnsatisfiedLinkError: "+key)
		return runContinue
	}
	recv, args := decodeArgsD(m, f, hasRecv)
	if hasRecv && recv == nil {
		vm.throwD(d, "java/lang/NullPointerException", m.Name)
		return runContinue
	}
	d.depRet = m.RetDesc
	tel := vm.tel
	var nativeStart time.Time
	if tel != nil {
		nativeStart = time.Now()
	}
	res := fn(vm, recv, args)
	if tel != nil && !res.Async {
		tel.nativeLat.ObserveSince(nativeStart)
		tel.nativeCalls.Inc()
	}
	switch {
	case res.Async:
		launch := d.pendingLaunch
		d.pendingLaunch = nil
		if launch == nil {
			vm.throwD(d, "java/lang/Error", "async native without BlockAndCall: "+key)
			return runContinue
		}
		if tel != nil {
			// Time an async native to its completion, spanning however
			// many event-loop turns the host operation takes.
			inner := launch
			launch = func(done func()) {
				inner(func() {
					tel.nativeLat.ObserveSince(nativeStart)
					tel.nativeCalls.Inc()
					done()
				})
			}
		}
		if d.blockOn(ct, "jvm.native("+key+")", launch) {
			return runBlock
		}
		d.applyDeposit()
		return runContinue
	case res.Thrown != nil:
		vm.unwindD(d, res.Thrown)
		return runContinue
	default:
		encodePushD(f, m.RetDesc, res.Value)
		return runContinue
	}
}

// assignableD is classAssignable against loaded classes only.
func (vm *DoppioVM) assignableD(c *Class, target string) bool {
	return classAssignableWith(c, target, func(n string) *Class {
		if cl := vm.Reg.Get(n); cl != nil {
			return cl
		}
		if n != "" && n[0] == '[' {
			cl, _ := vm.Reg.arrayClass(n)
			return cl
		}
		return nil
	})
}

func (vm *DoppioVM) buildMultiArrayD(arrName string, counts []int32) *Object {
	arrC := vm.Reg.Get(arrName)
	if arrC == nil {
		arrC, _ = vm.Reg.arrayClass(arrName)
	}
	elemDesc := arrName[1:]
	arr := NewArray(arrC, elemDesc, int(counts[0]))
	if len(counts) > 1 {
		sub := arr.Arr.([]*Object)
		for i := range sub {
			sub[i] = vm.buildMultiArrayD(elemDesc, counts[1:])
		}
	}
	return arr
}

package jvm

import "io"

// Value is a decoded JVM value as seen by native methods: one of nil,
// int32 (int/short/char/byte/boolean), int64 (long), float32, float64,
// or *Object. Both engines convert their internal representations to
// and from these at the native boundary, so one native table serves
// both.
type Value interface{}

// NativeResult is what a native method produces.
type NativeResult struct {
	// Value is the decoded return value (ignored for void methods).
	Value Value
	// Thrown, if non-nil, is an exception object to throw at the call
	// site.
	Thrown *Object
	// Async marks that the native started an asynchronous operation
	// via NativeHost.BlockAndCall; the result arrives at the
	// completion callback instead.
	Async bool
}

// NativeFunc implements one native method. recv is nil for statics.
type NativeFunc func(h NativeHost, recv *Object, args []Value) NativeResult

// AsyncWriter is a console sink that acknowledges writes
// asynchronously — the process layer's pipe ends. When a VM's stdout
// or stderr implements it, PrintStream.writeNative blocks the guest
// thread until the sink accepts the bytes (pipe backpressure) instead
// of assuming the write completed. WriteAsync must call cb exactly
// once, on the event loop.
type AsyncWriter interface {
	io.Writer
	WriteAsync(p []byte, cb func(n int, err error))
}

// HostFS is the file system surface natives program against. The
// Doppio engine implements it over the Doppio VFS (asynchronously);
// the native engine implements it over the host OS, invoking the
// callbacks synchronously. All callbacks must eventually fire.
type HostFS interface {
	ReadFile(path string, cb func([]byte, error))
	WriteFile(path string, data []byte, cb func(error))
	Append(path string, data []byte, cb func(error))
	// Stat reports size and kind; exists=false when missing.
	Stat(path string, cb func(size int64, isDir, exists bool))
	List(path string, cb func([]string, error))
	Delete(path string, cb func(error))
	Mkdir(path string, cb func(error))
	Rename(oldPath, newPath string, cb func(error))
}

// NativeHost is the engine surface exposed to native methods (§6.3):
// object and string services, OS services (file system, unmanaged
// heap, sockets, console), threading, and the synchronous-over-
// asynchronous bridge.
type NativeHost interface {
	// EngineName identifies the engine ("doppio" or "native").
	EngineName() string

	// Intern returns the canonical String object for s (§6: string
	// interning).
	Intern(s string) *Object
	// NewString builds a fresh (non-interned) String object.
	NewString(s string) *Object
	// GoString decodes a String object.
	GoString(o *Object) string

	// MakeThrowable builds an exception object of the given class
	// with a message, without running user constructors.
	MakeThrowable(class, msg string) *Object

	// ClassMirror returns the java/lang/Class instance for c.
	ClassMirror(c *Class) *Object

	// LookupClass returns an already-loaded class by name, or nil.
	LookupClass(name string) *Class

	// Console and environment.
	Stdout() io.Writer
	Stderr() io.Writer
	StdinRead(n int, cb func([]byte, error)) // asynchronous console input
	Property(key string) string
	CurrentTimeMillis() int64
	NanoTime() int64
	Exit(code int32)

	// OS services.
	FS() HostFS
	UnsafeHeap() *HeapBinding
	SocketConnect(host string, port int32, cb func(handle int32, err error))
	SocketRead(handle int32, n int32, cb func([]byte, error))
	SocketWrite(handle int32, data []byte, cb func(error))
	SocketClose(handle int32)

	// IdentityHash returns a stable identity hash for o.
	IdentityHash(o *Object) int32

	// Threading (§6.2).
	SpawnThread(threadObj *Object)
	// SetThreadPriority maps Thread.setPriority (MIN_PRIORITY..
	// MAX_PRIORITY) onto the engine's scheduler; engines without a
	// priority scheduler may treat it as bookkeeping.
	SetThreadPriority(threadObj *Object, p int32)
	CurrentThreadObj() *Object
	Sleep(ms int64, done func())
	YieldThread()
	JoinThread(threadObj *Object, done func())
	IsThreadAlive(threadObj *Object) bool
	MonitorWait(o *Object, timeoutMs int64) *Object // returns thrown or nil; blocks current thread
	MonitorNotify(o *Object, all bool) *Object      // returns thrown or nil

	// BlockAndCall bridges asynchronous host operations into
	// synchronous JVM semantics (§4.2): the current thread blocks,
	// launch starts the async work, and complete delivers the
	// decoded return value (and optional exception), resuming the
	// thread. A native using it must return NativeResult{Async: true}.
	BlockAndCall(launch func(complete func(Value, *Object)))

	// EvalJS is the §6.8 interoperability hook: it evaluates a
	// JavaScript snippet in the hosting page and returns the result
	// coerced to a string. Engines without a JS host return an error
	// message string.
	EvalJS(snippet string) string
}

// HeapBinding exposes the unmanaged heap to sun/misc/Unsafe natives.
type HeapBinding struct {
	Malloc func(n int) (int, error)
	Free   func(addr int) error
	GetI8  func(addr int) int8
	PutI8  func(addr int, v int8)
	GetI16 func(addr int) int16
	PutI16 func(addr int, v int16)
	GetI32 func(addr int) int32
	PutI32 func(addr int, v int32)
	GetI64 func(addr int) int64
	PutI64 func(addr int, v int64)
	GetF32 func(addr int) float32
	PutF32 func(addr int, v float32)
	GetF64 func(addr int) float64
	PutF64 func(addr int, v float64)
}

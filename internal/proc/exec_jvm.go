package proc

import (
	"doppio/internal/jvm"
)

// jvmStdin adapts a ReadStream to the JVM's byte-oriented StdinRead.
// Any error — EOF or EINTR — surfaces as (nil, err): ConsoleIn
// translates no-data-with-error to a clean end-of-stream, which is
// the right guest-visible face for both.
func jvmStdin(p *Process, r ReadStream) func(n int, cb func([]byte, error)) {
	return func(n int, cb func([]byte, error)) {
		var handle *pipeRead
		handle = r.Read(n, func(b []byte, err error) {
			p.untrackRead(handle)
			cb(b, err)
		})
		if pr, ok := r.(*PipeReader); ok {
			p.trackRead(handle, pr.P)
		}
	}
}

// SpawnJVM execs mainClass on a fresh Doppio JVM as a new process.
// classes is the class-file image (MapProvider-style); the process
// gets its own vfs.FS front end over the shared mount table and
// stdio through the spec's streams, so a JVM stage slots into a
// pipeline exactly like a MiniC one.
func (k *Kernel) SpawnJVM(mainClass string, classes map[string][]byte, spec SpawnSpec) (*Process, error) {
	k.fill(&spec)
	p := k.register(&Process{
		Name:   spec.Name,
		Args:   spec.Args,
		FS:     k.NewFS(),
		Stdin:  spec.Stdin,
		Stdout: spec.Stdout,
		Stderr: spec.Stderr,
	}, spec.PPID)
	if spec.Cwd != "" {
		p.FS.SetCwd(spec.Cwd)
	}

	vm := jvm.NewDoppioVM(k.win, jvm.DoppioOptions{
		Stdout:   &procWriter{p: p, w: spec.Stdout},
		Stderr:   &procWriter{p: p, w: spec.Stderr},
		Stdin:    jvmStdin(p, spec.Stdin),
		Provider: jvm.MapProvider(classes),
		FS:       &jvm.VFSHostFS{FS: p.FS},
		Profiler: k.prof,
	})
	p.rt = vm.Runtime()
	// Force-kill = System.exit with the signal's wait status: Exit
	// tears down every guest thread and fires the done callback,
	// whose exit bookkeeping the kernel guards against running twice.
	p.kill = func(code int32) { vm.Exit(code) }
	k.flight("proc", "exec", execLabel(p), int64(p.PID))
	vm.StartMain(mainClass, spec.Args, func(err error) {
		code := vm.ExitCode()
		if err != nil && code == 0 {
			code = 1
		}
		k.exit(p, code)
	})
	return p, nil
}

package proc

import "fmt"

// Signal is a Unix-style signal number. The kernel implements the
// four the Browsix process story needs; numbers follow the classic
// assignments so `kill(pid, 9)` reads as expected.
type Signal int32

const (
	SIGINT  Signal = 2  // keyboard interrupt; default terminates
	SIGKILL Signal = 9  // unconditional kill
	SIGPIPE Signal = 13 // write to a pipe with no readers
	SIGCHLD Signal = 17 // child stopped or terminated; informational
)

// String names the signal for flight events and /debug/proc.
func (s Signal) String() string {
	switch s {
	case SIGINT:
		return "SIGINT"
	case SIGKILL:
		return "SIGKILL"
	case SIGPIPE:
		return "SIGPIPE"
	case SIGCHLD:
		return "SIGCHLD"
	}
	return fmt.Sprintf("SIG%d", int32(s))
}

// terminates reports whether the signal's default action kills the
// process. There are no user-installed handlers in this kernel: guest
// languages see signals only as interrupted syscalls (EINTR) before
// the default action lands. SIGCHLD is informational — its delivery
// is the parent's wake-up, not a termination.
func (s Signal) terminates() bool { return s != SIGCHLD }

// ExitStatus is the wait status of a signal-terminated process,
// following the shell convention (128+N).
func (s Signal) ExitStatus() int32 { return 128 + int32(s) }

package proc

import (
	"io"

	"doppio/internal/buffer"
	"doppio/internal/vfs"
)

// ReadStream is what a process's stdin can be: pipe read end, a
// buffered host string, or a VFS file (the `< file` redirection).
// Read delivers up to max bytes; ReadLine delivers one '\n'-
// terminated line (or the remainder at EOF). Both report io.EOF when
// the stream is exhausted. Handles returned by the blocking variants
// are cancelable with EINTR on signal delivery; streams that never
// block return nil handles.
type ReadStream interface {
	Read(max int, cb func([]byte, error)) *pipeRead
	ReadLine(max int, cb func([]byte, error)) *pipeRead
	CloseRead()
}

// WriteStream is what a process's stdout/stderr can be: pipe write
// end, a host io.Writer, or a VFS file (the `> file` redirection).
// WriteAsync acknowledges when the sink accepted the bytes — the
// backpressure path; Write is the synchronous best-effort face for
// host-side code.
type WriteStream interface {
	io.Writer
	WriteAsync(p []byte, cb func(int, error)) *pipeWrite
	CloseWrite()
}

// --- pipe ends -------------------------------------------------------

// PipeReader is the read end of a pipe as a ReadStream.
type PipeReader struct{ P *Pipe }

func (r *PipeReader) Read(max int, cb func([]byte, error)) *pipeRead { return r.P.Read(max, cb) }
func (r *PipeReader) ReadLine(max int, cb func([]byte, error)) *pipeRead {
	return r.P.ReadLine(max, cb)
}
func (r *PipeReader) CloseRead() { r.P.CloseRead() }

// PipeWriter is the write end of a pipe as a WriteStream. The
// synchronous Write face fire-and-forgets (host-side convenience
// only); guests go through WriteAsync.
type PipeWriter struct{ P *Pipe }

func (w *PipeWriter) Write(p []byte) (int, error) {
	w.P.Write(append([]byte(nil), p...), func(int, error) {})
	return len(p), nil
}
func (w *PipeWriter) WriteAsync(p []byte, cb func(int, error)) *pipeWrite {
	return w.P.Write(p, cb)
}
func (w *PipeWriter) CloseWrite() { w.P.CloseWrite() }

// --- host-side streams ----------------------------------------------

// BytesReader serves stdin from an in-memory buffer (dsh feeds a
// literal string, or a `< file` redirection preloaded from the VFS).
// It never blocks, so it needs no cancellation handle.
type BytesReader struct {
	Data []byte
	off  int
}

func (b *BytesReader) Read(max int, cb func([]byte, error)) *pipeRead {
	if b.off >= len(b.Data) {
		cb(nil, io.EOF)
		return nil
	}
	end := b.off + max
	if end > len(b.Data) {
		end = len(b.Data)
	}
	out := b.Data[b.off:end]
	b.off = end
	cb(out, nil)
	return nil
}

func (b *BytesReader) ReadLine(max int, cb func([]byte, error)) *pipeRead {
	if b.off >= len(b.Data) {
		cb(nil, io.EOF)
		return nil
	}
	end := b.off
	for end < len(b.Data) && end-b.off < max {
		c := b.Data[end]
		end++
		if c == '\n' {
			break
		}
	}
	out := b.Data[b.off:end]
	b.off = end
	cb(out, nil)
	return nil
}

func (b *BytesReader) CloseRead() { b.off = len(b.Data) }

// FileReader streams a VFS file as stdin — the `< file` redirection.
// The file loads on first read, asynchronously through the process's
// FS front end; reads arriving during the load are served in order
// once it lands, and a load failure surfaces on every queued read.
// Handles are nil: file stdin never parks a guest interruptibly (the
// VFS read has its own Completion with its own label).
type FileReader struct {
	FS   *vfs.FS
	Path string

	buf     BytesReader
	loaded  bool
	loading bool
	loadErr error
	pending []func()
}

func (f *FileReader) load(then func()) {
	if f.loaded {
		then()
		return
	}
	f.pending = append(f.pending, then)
	if f.loading {
		return
	}
	f.loading = true
	f.FS.ReadFile(f.Path, func(b *buffer.Buffer, err error) {
		f.loaded = true
		f.loadErr = err
		if err == nil {
			f.buf.Data = b.Bytes()
		}
		q := f.pending
		f.pending = nil
		for _, fn := range q {
			fn()
		}
	})
}

func (f *FileReader) Read(max int, cb func([]byte, error)) *pipeRead {
	f.load(func() {
		if f.loadErr != nil {
			cb(nil, f.loadErr)
			return
		}
		f.buf.Read(max, cb)
	})
	return nil
}

func (f *FileReader) ReadLine(max int, cb func([]byte, error)) *pipeRead {
	f.load(func() {
		if f.loadErr != nil {
			cb(nil, f.loadErr)
			return
		}
		f.buf.ReadLine(max, cb)
	})
	return nil
}

func (f *FileReader) CloseRead() {
	f.loaded = true
	f.buf.CloseRead()
}

// WriterStream adapts a host io.Writer (dsh's own stdout, a test
// buffer) into a WriteStream whose async face acknowledges
// immediately — host sinks have no backpressure to express.
type WriterStream struct{ W io.Writer }

func (s *WriterStream) Write(p []byte) (int, error) { return s.W.Write(p) }
func (s *WriterStream) WriteAsync(p []byte, cb func(int, error)) *pipeWrite {
	n, err := s.W.Write(p)
	cb(n, err)
	return nil
}
func (s *WriterStream) CloseWrite() {}

// FileWriter accumulates writes and flushes them to a VFS path when
// the stream closes — the `> file` redirection. (One atomic WriteFile
// at close keeps the backend API surface small; dsh redirections are
// whole-output captures, not incremental logs.)
type FileWriter struct {
	FS   *vfs.FS
	Path string
	// OnErr, if set, observes the close-time write failure (dsh
	// reports it on its stderr).
	OnErr func(error)

	buf    []byte
	closed bool
}

func (f *FileWriter) Write(p []byte) (int, error) {
	f.buf = append(f.buf, p...)
	return len(p), nil
}

func (f *FileWriter) WriteAsync(p []byte, cb func(int, error)) *pipeWrite {
	f.buf = append(f.buf, p...)
	cb(len(p), nil)
	return nil
}

func (f *FileWriter) CloseWrite() {
	if f.closed {
		return
	}
	f.closed = true
	data := f.buf
	f.buf = nil
	f.FS.WriteFile(f.Path, data, func(err error) {
		if err != nil && f.OnErr != nil {
			f.OnErr(err)
		}
	})
}

package proc_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"doppio/internal/browser"
	"doppio/internal/minic"
	"doppio/internal/proc"
	"doppio/internal/telemetry"
	"doppio/internal/vfs"
)

func newKernel(t *testing.T) (*proc.Kernel, *browser.Window) {
	t.Helper()
	win := browser.NewWindow(browser.Chrome28)
	win.EnableTelemetry(telemetry.NewHub().EnableFlight(0))
	return proc.NewKernel(win, vfs.NewInMemory()), win
}

func compileC(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.CompileC(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// TestPipeBackpressureAndEPIPE drives a raw pipe: a writer larger
// than the ring must block until the reader drains; once the reader
// end closes, the blocked writer and every later write fail EPIPE.
func TestPipeBackpressureAndEPIPE(t *testing.T) {
	k, _ := newKernel(t)
	p := k.NewPipe(8)

	var wN int
	var wErr error
	wDone := false
	p.Write([]byte("0123456789abcdef"), func(n int, err error) {
		wN, wErr, wDone = n, err, true
	})
	if wDone {
		t.Fatal("16-byte write into an 8-byte ring completed without a reader")
	}

	// Drain 8 bytes: the freed space absorbs the writer's tail, so the
	// write completes — buffered, pipe-style, not yet read.
	var got []byte
	p.Read(8, func(b []byte, err error) { got = b })
	if string(got) != "01234567" {
		t.Fatalf("first read = %q", got)
	}
	if !wDone || wErr != nil || wN != 16 {
		t.Fatalf("writer done=%v n=%d err=%v, want clean 16 once the tail fits the ring", wDone, wN, wErr)
	}

	// The buffered tail is still there for the reader.
	p.Read(8, func(b []byte, err error) { got = b })
	if string(got) != "89abcdef" {
		t.Fatalf("second read = %q", got)
	}

	// Park another writer, then close the read end: EPIPE, with the
	// already-accepted byte count reported.
	wDone = false
	p.Write(bytes.Repeat([]byte("x"), 12), func(n int, err error) {
		wN, wErr, wDone = n, err, true
	})
	if wDone {
		t.Fatal("oversized writer completed with no reader pending")
	}
	p.CloseRead()
	if !wDone || !vfs.IsErrno(wErr, vfs.EPIPE) {
		t.Fatalf("after CloseRead: done=%v err=%v, want EPIPE", wDone, wErr)
	}
	if wN != 8 {
		t.Errorf("partial write reported %d accepted bytes, want 8 (the ring's worth)", wN)
	}

	// A fresh write against the broken pipe fails immediately.
	var fresh error
	p.Write([]byte("y"), func(_ int, err error) { fresh = err })
	if !vfs.IsErrno(fresh, vfs.EPIPE) {
		t.Fatalf("write after close = %v, want EPIPE", fresh)
	}
}

// TestPipeEOF: readers drain buffered data after the last writer
// closes, then see EOF; line reads flush their partial line.
func TestPipeEOF(t *testing.T) {
	k, _ := newKernel(t)
	p := k.NewPipe(64)
	p.Write([]byte("tail with no newline"), func(int, error) {})
	p.CloseWrite()

	var line []byte
	p.ReadLine(80, func(b []byte, err error) { line = b })
	if string(line) != "tail with no newline" {
		t.Fatalf("line = %q", line)
	}
	var eof error
	p.Read(8, func(_ []byte, err error) { eof = err })
	if eof != io.EOF {
		t.Fatalf("read at end = %v, want io.EOF", eof)
	}
}

// TestMinicPipeline runs `seq | sum`: two MiniC processes bridged by
// a kernel pipe, with backpressure (the ring is smaller than the
// output) and EOF driving the consumer's exit.
func TestMinicPipeline(t *testing.T) {
	k, win := newKernel(t)
	producer := compileC(t, `
int main() {
    for (int i = 1; i <= 200; i++) {
        putint(i); putchar('\n');
    }
    return 0;
}`)
	consumer := compileC(t, `
int main() {
    char buf[64];
    int sum = 0;
    while (getline(buf, 64) >= 0) {
        sum = sum + atoi(buf);
    }
    putint(sum); putchar('\n');
    return 0;
}`)

	pipe := k.NewPipe(32) // much smaller than 200 lines of output
	var out bytes.Buffer
	p1, err := k.SpawnMinic(producer, proc.SpawnSpec{
		Name: "seq", Stdout: &proc.PipeWriter{P: pipe},
	})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := k.SpawnMinic(consumer, proc.SpawnSpec{
		Name: "sum", Stdin: &proc.PipeReader{P: pipe}, Stdout: &proc.WriterStream{W: &out},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := win.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := strings.TrimSpace(out.String()), "20100"; got != want {
		t.Errorf("sum = %q, want %q", got, want)
	}
	if !p1.Exited() || p1.ExitCode() != 0 || !p2.Exited() || p2.ExitCode() != 0 {
		t.Errorf("exit codes: seq=%d sum=%d", p1.ExitCode(), p2.ExitCode())
	}
}

// TestForkWaitpid exercises fork-lite: the child diverges on fork's
// return value, exits with its own code, and the parent's waitpid
// (a labelled Completion under the hood) observes it.
func TestForkWaitpid(t *testing.T) {
	k, win := newKernel(t)
	prog := compileC(t, `
int main() {
    int pid = fork();
    if (pid == 0) {
        puts("child\n");
        exit(42);
    }
    int status = waitpid(pid);
    puts("parent saw ");
    putint(status);
    putchar('\n');
    return status;
}`)
	var out bytes.Buffer
	p, err := k.SpawnMinic(prog, proc.SpawnSpec{
		Name: "forker", Stdout: &proc.WriterStream{W: &out},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := win.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "child\n") || !strings.Contains(out.String(), "parent saw 42\n") {
		t.Errorf("output = %q", out.String())
	}
	if p.ExitCode() != 42 {
		t.Errorf("parent exit = %d, want 42", p.ExitCode())
	}
}

// TestSignalInterruptsBlockedRead is the EINTR acceptance path: a
// process parked on an empty pipe's read gets SIGINT; the in-flight
// read is cancelled with EINTR, the process terminates with 130, and
// a waiter observes it.
func TestSignalInterruptsBlockedRead(t *testing.T) {
	k, win := newKernel(t)
	prog := compileC(t, `
int main() {
    char buf[64];
    getline(buf, 64);
    return 99;
}`)
	pipe := k.NewPipe(0) // writer end stays open: the read never completes
	p, err := k.SpawnMinic(prog, proc.SpawnSpec{
		Name: "reader", Stdin: &proc.PipeReader{P: pipe},
	})
	if err != nil {
		t.Fatal(err)
	}

	var status int32 = -1
	var waitErr error
	k.Waitpid(nil, p.PID).Then(func(v interface{}, err error) {
		if err != nil {
			waitErr = err
			return
		}
		status = v.(int32)
	})

	// Let the reader run until it parks on the pipe, then interrupt.
	fired := false
	win.Loop.SetTimeout(func() {
		fired = true
		if err := k.Kill(p.PID, proc.SIGINT); err != nil {
			t.Errorf("kill: %v", err)
		}
	}, 0)
	if err := win.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("timer never fired")
	}
	if waitErr != nil {
		t.Fatalf("waitpid: %v", waitErr)
	}
	if status != proc.SIGINT.ExitStatus() {
		t.Errorf("wait status = %d, want %d (128+SIGINT)", status, proc.SIGINT.ExitStatus())
	}

	// The black box recorded the delivery and the interrupted process
	// left no queue residue: a fresh write to the pipe still works
	// (its reader reference was closed by exit → EPIPE, the *correct*
	// residue).
	var werr error
	pipe.Write([]byte("late"), func(_ int, err error) { werr = err })
	if !vfs.IsErrno(werr, vfs.EPIPE) {
		t.Errorf("write after reader death = %v, want EPIPE", werr)
	}
	sawSignal := false
	for _, ev := range win.Telemetry.Flight.Events() {
		if ev.Cat == "proc" && ev.Event == "signal" && strings.Contains(ev.Label, "SIGINT") {
			sawSignal = true
		}
	}
	if !sawSignal {
		t.Error("flight recorder has no proc/signal SIGINT event")
	}
}

// TestWaitpidECHILDAndKillESRCH: the errno edges of the process API.
func TestWaitpidECHILDAndKillESRCH(t *testing.T) {
	k, _ := newKernel(t)
	var werr error
	k.Waitpid(nil, 4242).Then(func(_ interface{}, err error) { werr = err })
	if !vfs.IsErrno(werr, vfs.ECHILD) {
		t.Errorf("waitpid(4242) = %v, want ECHILD", werr)
	}
	if err := k.Kill(4242, proc.SIGKILL); !vfs.IsErrno(err, vfs.ESRCH) {
		t.Errorf("kill(4242) = %v, want ESRCH", err)
	}
}

// TestSnapshotShowsBlockedProcess: /debug/proc's data source reports
// pid, state, and the blocked-on Completion label mid-run.
func TestSnapshotShowsBlockedProcess(t *testing.T) {
	k, win := newKernel(t)
	prog := compileC(t, `
int main() {
    char buf[16];
    getline(buf, 16);
    return 0;
}`)
	pipe := k.NewPipe(0)
	p, err := k.SpawnMinic(prog, proc.SpawnSpec{
		Name: "blocked-cat", Stdin: &proc.PipeReader{P: pipe},
	})
	if err != nil {
		t.Fatal(err)
	}
	var snap []proc.ProcInfo
	win.Loop.SetTimeout(func() {
		snap = k.Snapshot()
		// Unblock so the loop can drain.
		pipe.CloseWrite()
	}, 0)
	if err := win.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 {
		t.Fatalf("snapshot rows = %d, want 1: %+v", len(snap), snap)
	}
	row := snap[0]
	if row.PID != p.PID || row.Name != "blocked-cat" {
		t.Errorf("row = %+v", row)
	}
	if row.State != "blocked" || row.Blocked != "minic.getline" {
		t.Errorf("state=%q blocked-on=%q, want blocked on minic.getline", row.State, row.Blocked)
	}
}

// TestSpawnExitCodesPropagate: a plain spawn's exit code reaches
// Waitpid, and zombies reap on wait.
func TestSpawnExitCodesPropagate(t *testing.T) {
	k, win := newKernel(t)
	prog := compileC(t, `int main() { return 3; }`)
	p, err := k.SpawnMinic(prog, proc.SpawnSpec{Name: "ret3"})
	if err != nil {
		t.Fatal(err)
	}
	if err := win.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	var status int32 = -1
	k.Waitpid(nil, p.PID).Then(func(v interface{}, err error) {
		if err == nil {
			status = v.(int32)
		}
	})
	if status != 3 {
		t.Errorf("wait status = %d, want 3", status)
	}
	if k.Lookup(p.PID) != nil {
		t.Error("process not reaped after waitpid")
	}
	var echild error
	k.Waitpid(nil, p.PID).Then(func(_ interface{}, err error) { echild = err })
	if !vfs.IsErrno(echild, vfs.ECHILD) {
		t.Errorf("second waitpid = %v, want ECHILD", echild)
	}
}

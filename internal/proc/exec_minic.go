package proc

import (
	"doppio/internal/minic"
	"doppio/internal/vfs"
)

// SpawnSpec describes the process to create: command name, argv
// tail, and stdio. Nil streams default to immediate-EOF stdin and
// discarded output.
type SpawnSpec struct {
	Name           string
	Args           []string
	Stdin          ReadStream
	Stdout, Stderr WriteStream
	// Cwd is the child's initial working directory — the shell passes
	// its own cwd so children started after `cd` resolve relative
	// paths like Unix children do. Empty means "/".
	Cwd string
	// PPID is the parent pid (0 for a shell-spawned top-level job).
	PPID int32
}

func (k *Kernel) fill(spec *SpawnSpec) {
	if spec.Stdin == nil {
		spec.Stdin = &BytesReader{}
	}
	if spec.Stdout == nil {
		spec.Stdout = &WriterStream{W: discard{}}
	}
	if spec.Stderr == nil {
		spec.Stderr = spec.Stdout
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// procWriter adapts a process's WriteStream to the guests' async
// stdout interfaces (minic.AsyncWriter and jvm.AsyncWriter share the
// shape), registering in-flight pipe writes for EINTR and raising
// SIGPIPE on a broken-pipe write — the Unix default a guest cannot
// ignore.
type procWriter struct {
	p *Process
	w WriteStream
}

func (m *procWriter) Write(b []byte) (int, error) { return m.w.Write(b) }

func (m *procWriter) WriteAsync(b []byte, cb func(int, error)) {
	sigpipe := false
	var handle *pipeWrite
	handle = m.w.WriteAsync(b, func(n int, err error) {
		m.p.untrackWrite(handle)
		sigpipe = vfs.IsErrno(err, vfs.EPIPE) && !m.p.exited
		// Deliver the error to the guest first, then the signal:
		// puts() observes -1 (a JVM PrintStream an IOException), and
		// the default action terminates the process with 141 like a
		// shell pipeline member.
		cb(n, err)
		if sigpipe {
			m.p.kernel.Kill(m.p.PID, SIGPIPE)
		}
	})
	if pw, ok := m.w.(*PipeWriter); ok {
		m.p.trackWrite(handle, pw.P)
	}
}

// minicStdin adapts a ReadStream to minic's line-oriented stdin
// callback. EOF and EINTR both surface as eof=true — getline returns
// -1 and the guest's loop ends; if the EINTR came from a terminating
// signal the process is gone before it can act on it anyway.
func minicStdin(p *Process, r ReadStream) func(max int, cb func(line string, eof bool)) {
	return func(max int, cb func(line string, eof bool)) {
		var handle *pipeRead
		handle = r.ReadLine(max, func(b []byte, err error) {
			p.untrackRead(handle)
			if err != nil || len(b) == 0 {
				cb("", true)
				return
			}
			// getline semantics: strip the terminator.
			if b[len(b)-1] == '\n' {
				b = b[:len(b)-1]
			}
			cb(string(b), false)
		})
		if pr, ok := r.(*PipeReader); ok {
			p.trackRead(handle, pr.P)
		}
	}
}

// minicOS is the minic.OS syscall back end bound to one process.
type minicOS struct {
	k *Kernel
	p *Process
}

func (o *minicOS) Getpid() int32 { return o.p.PID }

func (o *minicOS) Fork(child *minic.VM) int32 {
	return o.k.adoptFork(o.p, child)
}

func (o *minicOS) Waitpid(pid int32, cb func(code int32, ok bool)) {
	c := o.k.Waitpid(o.p, pid)
	c.Then(func(v interface{}, err error) {
		if err != nil {
			cb(-1, false)
			return
		}
		cb(v.(int32), true)
	})
}

func (o *minicOS) Kill(pid, sig int32) int32 {
	if err := o.k.Kill(pid, Signal(sig)); err != nil {
		return -1
	}
	return 0
}

// SpawnMinic execs a compiled MiniC program as a new process: fresh
// VM, fresh vfs.FS front end over the shared mount table, stdio wired
// through the spec's streams. The process appears in the table
// immediately; the program starts on the next loop turns.
func (k *Kernel) SpawnMinic(prog *minic.Program, spec SpawnSpec) (*Process, error) {
	k.fill(&spec)
	p := k.register(&Process{
		Name:   spec.Name,
		Args:   spec.Args,
		FS:     k.NewFS(),
		Stdin:  spec.Stdin,
		Stdout: spec.Stdout,
		Stderr: spec.Stderr,
	}, spec.PPID)
	if spec.Cwd != "" {
		p.FS.SetCwd(spec.Cwd)
	}

	vm, err := minic.NewVM(k.win, prog, minic.VMOptions{
		Stdout:   &procWriter{p: p, w: spec.Stdout},
		Stdin:    minicStdin(p, spec.Stdin),
		FS:       p.FS,
		Args:     append([]string{spec.Name}, spec.Args...),
		OS:       &minicOS{k: k, p: p},
		Profiler: k.prof,
	})
	if err != nil {
		k.reapFailedSpawn(p)
		return nil, err
	}
	p.rt = vm.Runtime()
	p.kill = func(int32) { vm.Kill() }
	k.flight("proc", "exec", execLabel(p), int64(p.PID))
	vm.Start(func(exit int32, runErr error) {
		if runErr != nil && exit == 0 {
			exit = 127
		}
		k.exit(p, exit)
	})
	return p, nil
}

// adoptFork registers a cloned MiniC VM as a child process of parent
// — the kernel half of the fork syscall. The clone inherits the
// parent's stdio streams and working directory, and gets its own FS
// front end (same mount table, private cwd/fds), then starts
// mid-flight.
func (k *Kernel) adoptFork(parent *Process, child *minic.VM) int32 {
	p := k.register(&Process{
		Name:   parent.Name,
		Args:   parent.Args,
		FS:     k.NewFS(),
		Stdin:  dupRead(parent.Stdin),
		Stdout: dupWrite(parent.Stdout),
		Stderr: dupWrite(parent.Stderr),
	}, parent.PID)
	p.FS.SetCwd(parent.FS.Cwd())
	child.SetStdio(&procWriter{p: p, w: p.Stdout}, minicStdin(p, p.Stdin))
	child.SetOS(&minicOS{k: k, p: p})
	p.rt = child.Runtime()
	p.kill = func(int32) { child.Kill() }
	k.flight("proc", "fork", execLabel(p), int64(parent.PID))
	child.StartForked(func(exit int32, runErr error) {
		if runErr != nil && exit == 0 {
			exit = 127
		}
		k.exit(p, exit)
	})
	return p.PID
}

// reapFailedSpawn removes a table entry whose VM never started.
func (k *Kernel) reapFailedSpawn(p *Process) {
	p.exited = true
	k.reap(p)
}

func execLabel(p *Process) string {
	return p.Name
}

// dupRead/dupWrite duplicate a stream reference across fork: pipe
// ends gain an open-end count (the pipe stays open until both parent
// and child close their copy); other streams are plain shared state.
func dupRead(s ReadStream) ReadStream {
	if pr, ok := s.(*PipeReader); ok {
		pr.P.readers++
	}
	return s
}

func dupWrite(s WriteStream) WriteStream {
	if pw, ok := s.(*PipeWriter); ok {
		pw.P.writers++
	}
	return s
}

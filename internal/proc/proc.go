// Package proc is the Browsix-style process layer over the Doppio
// runtime: a small Unix built from pieces the repo already has. A
// process is one guest VM — a Doppio JVM or a MiniC VM — with a pid,
// a parent, stdio streams, and its own vfs.FS front end over the
// kernel's shared root backend (the shared mount table). Pipes are
// in-kernel ring buffers bridging two VMs' Completions; signals map
// onto the existing kill machinery; Waitpid is a labelled
// core.Completion, so a shell blocked on a child shows up in
// /debug/threads as `proc.waitpid(N)` like any other blocked thread.
//
// Everything here is single-goroutine state on the kernel's event
// loop: spawn, wait, kill, and every pipe callback execute as loop
// turns, which is what lets a JVM guest and a MiniC guest sit on the
// two ends of one pipe without a lock in sight.
package proc

import (
	"fmt"
	"sort"

	"doppio/internal/browser"
	"doppio/internal/buffer"
	"doppio/internal/core"
	"doppio/internal/profile"
	"doppio/internal/vfs"
)

// State is a process's lifecycle state.
type State string

const (
	// StateRunning covers runnable and blocked alike — the process
	// exists and may make progress. Snapshot splits the two by asking
	// the VM's scheduler.
	StateRunning State = "running"
	// StateZombie is exited but not yet reaped by Waitpid.
	StateZombie State = "zombie"
)

// Process is one process-table entry.
type Process struct {
	PID  int32
	PPID int32
	// Name is the command name ("cat", "JGrep"); Args its argv tail.
	Name string
	Args []string

	// FS is the process's own front end (cwd, fd table) over the
	// kernel's shared root backend.
	FS *vfs.FS

	Stdin          ReadStream
	Stdout, Stderr WriteStream

	kernel *Kernel
	rt     *core.Runtime // guest scheduler, for blocked-on labels
	// kill force-terminates the guest VM; exit bookkeeping stays with
	// the kernel (the VM's own done callback may never fire after).
	kill func(code int32)

	exited   bool
	exitCode int32
	reaped   bool

	children map[int32]*Process
	// waiters are resolvers of proc.waitpid Completions parked on
	// this process, delivered (exitCode, nil) at exit.
	waiters []func(int32)

	// pendingReads/Writes are in-flight interruptible pipe operations;
	// signal delivery cancels them with EINTR before the default
	// action lands.
	pendingReads  map[*pipeRead]*Pipe
	pendingWrites map[*pipeWrite]*Pipe
}

// ExitCode is valid once the process has exited.
func (p *Process) ExitCode() int32 { return p.exitCode }

// Exited reports whether the process has terminated.
func (p *Process) Exited() bool { return p.exited }

// Runtime exposes the process's guest scheduler (nil until the exec
// layer attaches a VM) — budget accounting hosts read CPU time and
// queue depth from it.
func (p *Process) Runtime() *core.Runtime { return p.rt }

// Kernel owns the process table. Create one per event loop with
// NewKernel; all methods must be called on that loop.
type Kernel struct {
	win  *browser.Window
	bufs *buffer.Factory
	root vfs.Backend

	// prof, when non-nil, is handed to every VM the kernel spawns, so
	// one profiler sees the whole process tree (a pipeline's stages
	// fold into a single profile, frames keyed by class/function).
	prof *profile.Profiler

	procs   map[int32]*Process
	nextPID int32
	pipeSeq int
}

// NewKernel creates a process kernel over the window's event loop and
// a shared VFS root backend (every process mounts the same tree).
func NewKernel(win *browser.Window, root vfs.Backend) *Kernel {
	return &Kernel{
		win: win,
		bufs: &buffer.Factory{
			Typed:            win.Profile.HasTypedArrays,
			ValidatesStrings: win.Profile.ValidatesStrings,
			OnTypedAlloc:     win.NoteTypedArrayAlloc,
		},
		root:    root,
		procs:   make(map[int32]*Process),
		nextPID: 0,
	}
}

// Window exposes the kernel's browser window (its event loop).
func (k *Kernel) Window() *browser.Window { return k.win }

// SetProfiler installs a guest profiler: every process spawned after
// this call samples into p. Call before the first spawn; processes
// already running keep their original (nil) profiler.
func (k *Kernel) SetProfiler(p *profile.Profiler) { k.prof = p }

// Root exposes the shared mount-table backend (ops /debug/vfs).
func (k *Kernel) Root() vfs.Backend { return k.root }

// flight records a process-layer event in the window's flight
// recorder, when telemetry is enabled.
func (k *Kernel) flight(cat, event, label string, arg int64) {
	if k.win.Telemetry != nil {
		k.win.Telemetry.Flight.Record(cat, event, label, arg)
	}
}

// NewFS builds a fresh VFS front end over the shared root: same mount
// table, private cwd and fd bookkeeping. Every spawn gets one; the
// shell uses another for its own builtins (cd, redirections).
func (k *Kernel) NewFS() *vfs.FS {
	return vfs.New(k.win.Loop, k.bufs, k.root)
}

// register allocates a pid and inserts the process.
func (k *Kernel) register(p *Process, ppid int32) *Process {
	k.nextPID++
	p.PID = k.nextPID
	p.PPID = ppid
	p.kernel = k
	p.children = make(map[int32]*Process)
	p.pendingReads = make(map[*pipeRead]*Pipe)
	p.pendingWrites = make(map[*pipeWrite]*Pipe)
	k.procs[p.PID] = p
	if parent := k.procs[ppid]; parent != nil {
		parent.children[p.PID] = p
	}
	return p
}

// Lookup returns the live process with pid, or nil.
func (k *Kernel) Lookup(pid int32) *Process {
	p := k.procs[pid]
	if p == nil || p.reaped {
		return nil
	}
	return p
}

// Waitpid returns a Completion that resolves with the child's exit
// code — labelled `proc.waitpid(N)`, so a parent parked on it is
// legible in thread dumps. A pid that is not an unreaped child of
// parent resolves immediately with ECHILD. A zombie resolves
// immediately and is reaped; a live child resolves at its exit (the
// kernel reaps it then).
func (k *Kernel) Waitpid(parent *Process, pid int32) *core.Completion {
	c := core.NewCompletion(k.win.Loop, fmt.Sprintf("proc.waitpid(%d)", pid))
	child := k.procs[pid]
	owner := child != nil && !child.reaped &&
		(parent == nil || child.PPID == parent.PID)
	if !owner {
		c.Resolve(nil, vfs.Err(vfs.ECHILD, "waitpid", fmt.Sprintf("pid:%d", pid)))
		return c
	}
	if child.exited {
		k.reap(child)
		c.Resolve(child.exitCode, nil)
		return c
	}
	child.waiters = append(child.waiters, func(code int32) {
		c.Resolve(code, nil)
	})
	return c
}

// reap removes a zombie from the table.
func (k *Kernel) reap(p *Process) {
	if !p.exited || p.reaped {
		return
	}
	p.reaped = true
	delete(k.procs, p.PID)
	if parent := k.procs[p.PPID]; parent != nil {
		delete(parent.children, p.PID)
	}
}

// exit is the single termination bookkeeping path — reached from a
// VM's done callback or from a terminating signal. It closes the
// process's stdio ends (EOF downstream, EPIPE upstream), resolves
// waiters, notifies the parent with SIGCHLD, and leaves a zombie
// until reaped (immediately when waiters were already parked; on the
// next Waitpid otherwise — even pid-0-parented processes stay
// waitable after death).
func (k *Kernel) exit(p *Process, code int32) {
	if p.exited {
		return
	}
	p.exited = true
	p.exitCode = code
	k.flight("proc", "exit", fmt.Sprintf("%s[%d]", p.Name, p.PID), int64(code))

	// A dying process abandons its in-flight pipe operations.
	for r, pipe := range p.pendingReads {
		pipe.cancelRead(r, vfs.EINTR)
	}
	for w, pipe := range p.pendingWrites {
		pipe.cancelWrite(w, vfs.EINTR)
	}
	p.pendingReads = make(map[*pipeRead]*Pipe)
	p.pendingWrites = make(map[*pipeWrite]*Pipe)

	if p.Stdin != nil {
		p.Stdin.CloseRead()
	}
	if p.Stdout != nil {
		p.Stdout.CloseWrite()
	}
	if p.Stderr != nil {
		p.Stderr.CloseWrite()
	}

	// Orphaned children have no one left to wait for them: reparent
	// to "init" (ppid 0) and reap the already-dead ones.
	for _, c := range p.children {
		c.PPID = 0
		if c.exited {
			k.reap(c)
		}
	}

	waiters := p.waiters
	p.waiters = nil
	parent := k.procs[p.PPID]
	if len(waiters) > 0 {
		k.reap(p)
	}
	for _, w := range waiters {
		w(code)
	}
	if parent != nil {
		k.flight("proc", "signal", fmt.Sprintf("%s→%s[%d]", SIGCHLD, parent.Name, parent.PID), int64(p.PID))
	}
}

// Kill delivers sig to pid: cancel the process's blocked pipe
// operations with EINTR, then apply the signal's default action
// (terminate with 128+sig for all but SIGCHLD — there are no guest
// signal handlers in this kernel). It returns an ESRCH error for a
// dead or unknown pid.
func (k *Kernel) Kill(pid int32, sig Signal) error {
	p := k.procs[pid]
	if p == nil || p.reaped || p.exited {
		return vfs.Err(vfs.ESRCH, "kill", fmt.Sprintf("pid:%d", pid))
	}
	k.flight("proc", "signal", fmt.Sprintf("%s→%s[%d]", sig, p.Name, p.PID), int64(pid))

	// EINTR first: a thread parked on a pipe read observes the
	// interrupted syscall before the process disappears.
	for r, pipe := range p.pendingReads {
		pipe.cancelRead(r, vfs.EINTR)
	}
	for w, pipe := range p.pendingWrites {
		pipe.cancelWrite(w, vfs.EINTR)
	}
	p.pendingReads = make(map[*pipeRead]*Pipe)
	p.pendingWrites = make(map[*pipeWrite]*Pipe)

	if !sig.terminates() {
		return nil
	}
	if p.kill != nil {
		p.kill(sig.ExitStatus())
	}
	k.exit(p, sig.ExitStatus())
	return nil
}

// trackRead registers an interruptible pipe read with its owning
// process (nil handles — non-blocking streams — are ignored).
func (p *Process) trackRead(r *pipeRead, pipe *Pipe) {
	if r != nil && !r.canceled && !r.done {
		p.pendingReads[r] = pipe
	}
}

func (p *Process) untrackRead(r *pipeRead) {
	if r != nil {
		delete(p.pendingReads, r)
	}
}

func (p *Process) trackWrite(w *pipeWrite, pipe *Pipe) {
	if w != nil && !w.canceled && !w.done {
		p.pendingWrites[w] = pipe
	}
}

func (p *Process) untrackWrite(w *pipeWrite) {
	if w != nil {
		delete(p.pendingWrites, w)
	}
}

// ProcInfo is one row of the ps-style table (/debug/proc).
type ProcInfo struct {
	PID      int32   `json:"pid"`
	PPID     int32   `json:"ppid"`
	Name     string  `json:"name"`
	State    string  `json:"state"`
	Blocked  string  `json:"blocked_on,omitempty"`
	ExitCode int32   `json:"exit_code"`
	Children []int32 `json:"children,omitempty"`
}

// Snapshot captures the live process table, pid-ordered. State is
// derived from the guest scheduler: "running" when a thread is
// runnable, "blocked" (with the Completion label) when every live
// thread is parked, "zombie" after exit.
func (k *Kernel) Snapshot() []ProcInfo {
	out := make([]ProcInfo, 0, len(k.procs))
	for _, p := range k.procs {
		info := ProcInfo{
			PID: p.PID, PPID: p.PPID, Name: p.Name,
			ExitCode: p.exitCode,
		}
		for pid := range p.children {
			info.Children = append(info.Children, pid)
		}
		sort.Slice(info.Children, func(i, j int) bool { return info.Children[i] < info.Children[j] })
		switch {
		case p.exited:
			info.State = string(StateZombie)
		default:
			info.State = string(StateRunning)
			if p.rt != nil {
				d := p.rt.Dump()
				blocked := d.Blocked()
				running := false
				for _, t := range d.Threads {
					if t.State == "ready" || t.State == "running" {
						running = true
					}
				}
				if !running && len(blocked) > 0 {
					info.State = "blocked"
					info.Blocked = blocked[0].BlockedOn
				}
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

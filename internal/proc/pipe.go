package proc

import (
	"fmt"
	"io"

	"doppio/internal/vfs"
)

// DefaultPipeCap is the ring capacity of a pipe created by the
// kernel: small enough that a fast producer feels backpressure from a
// slow consumer within one screenful of output, like the classic 64K
// pipe buffer scaled to this runtime's workloads.
const DefaultPipeCap = 4096

// Pipe is an in-kernel ring buffer bridging two processes' stdio: the
// write end blocks when the ring is full (backpressure), the read end
// blocks when it is empty, and closing either end produces the Unix
// edge semantics — EOF for readers once the last writer is gone,
// EPIPE for writers once the last reader is gone.
//
// A pipe is single-goroutine state: every method must run on the
// kernel's event loop. Blocking is expressed in callbacks — the VM
// layers park their guest thread on a core.Completion and the pipe
// calls back when bytes (or the edge condition) arrive — so one pipe
// can bridge a JVM guest to a MiniC guest without either knowing.
type Pipe struct {
	k    *Kernel
	name string // "pipe:N", used in errors, labels, and flight events

	buf  []byte
	r, w int // ring cursors
	n    int // bytes currently buffered

	readers, writers int // open end counts

	readQ  []*pipeRead
	writeQ []*pipeWrite
}

type pipeRead struct {
	max      int
	line     bool   // line-oriented: deliver up to and including '\n'
	partial  []byte // bytes a line read has consumed while waiting
	cb       func([]byte, error)
	canceled bool
	done     bool
}

type pipeWrite struct {
	data     []byte // bytes not yet copied into the ring
	written  int    // bytes already accepted
	cb       func(int, error)
	canceled bool
	done     bool
	stalled  bool // recorded a pipe-stall flight event
}

// NewPipe creates a pipe with one open reader and one open writer
// reference. cap <= 0 uses DefaultPipeCap.
func (k *Kernel) NewPipe(cap int) *Pipe {
	if cap <= 0 {
		cap = DefaultPipeCap
	}
	k.pipeSeq++
	p := &Pipe{
		k:       k,
		name:    fmt.Sprintf("pipe:%d", k.pipeSeq),
		buf:     make([]byte, cap),
		readers: 1,
		writers: 1,
	}
	return p
}

// Name identifies the pipe in labels and debug output.
func (p *Pipe) Name() string { return p.name }

// Buffered reports the bytes currently in the ring (for /debug/proc).
func (p *Pipe) Buffered() int { return p.n }

// errPipe builds the errno error for an edge condition on this pipe.
func (p *Pipe) errPipe(errno vfs.Errno, op string) error {
	return vfs.Err(errno, op, p.name)
}

// Write delivers p's bytes into the ring. cb fires exactly once, on
// the event loop: immediately when everything fits or the pipe is
// already broken, later when a reader drains enough space. A write
// against a pipe with no readers — now or while blocked — fails with
// EPIPE (and the caller's process, if any, gets SIGPIPE from the
// stdio wiring, not from the pipe itself).
func (p *Pipe) Write(data []byte, cb func(int, error)) *pipeWrite {
	if p.readers == 0 {
		p.k.flight("pipe", "epipe", p.name, int64(len(data)))
		cb(0, p.errPipe(vfs.EPIPE, "write"))
		return nil
	}
	w := &pipeWrite{data: data, cb: cb}
	p.writeQ = append(p.writeQ, w)
	p.pump()
	return w
}

// Read delivers up to max buffered bytes. With the ring empty it
// blocks until a writer supplies data, or reports io.EOF once the
// last writer has closed.
func (p *Pipe) Read(max int, cb func([]byte, error)) *pipeRead {
	r := &pipeRead{max: max, cb: cb}
	p.readQ = append(p.readQ, r)
	p.pump()
	return r
}

// ReadLine delivers one line (up to and including '\n'), max bytes,
// or the remaining bytes at EOF — the shape MiniC's getline needs.
// Unlike Read it keeps blocking until a newline arrives, consuming
// partial data into the pending read as it goes.
func (p *Pipe) ReadLine(max int, cb func([]byte, error)) *pipeRead {
	r := &pipeRead{max: max, line: true, cb: cb}
	p.readQ = append(p.readQ, r)
	p.pump()
	return r
}

// CloseWrite drops one writer reference. When the last writer goes,
// blocked readers wake: with buffered data they drain it, then see
// EOF.
func (p *Pipe) CloseWrite() {
	if p.writers == 0 {
		return
	}
	p.writers--
	if p.writers == 0 {
		p.k.flight("pipe", "close-write", p.name, int64(p.n))
		p.pump()
	}
}

// CloseRead drops one reader reference. When the last reader goes the
// buffer is discarded and every blocked or future writer fails with
// EPIPE — the broken-pipe edge.
func (p *Pipe) CloseRead() {
	if p.readers == 0 {
		return
	}
	p.readers--
	if p.readers == 0 {
		p.k.flight("pipe", "close-read", p.name, int64(p.n))
		p.n, p.r, p.w = 0, 0, 0
		wq := p.writeQ
		p.writeQ = nil
		for _, wr := range wq {
			if wr.canceled {
				continue
			}
			wr.done = true
			p.k.flight("pipe", "epipe", p.name, int64(len(wr.data)))
			wr.cb(wr.written, p.errPipe(vfs.EPIPE, "write"))
		}
		p.pump() // wake readers: empty + no writers coming ⇒ EOF
	}
}

// cancel removes a pending operation, delivering errno (EINTR on
// signal delivery) to its callback. It is a no-op if the operation
// already completed.
func (p *Pipe) cancelRead(r *pipeRead, errno vfs.Errno) {
	if r == nil || r.canceled {
		return
	}
	for i, q := range p.readQ {
		if q == r {
			p.readQ = append(p.readQ[:i], p.readQ[i+1:]...)
			r.canceled = true
			r.cb(nil, p.errPipe(errno, "read"))
			return
		}
	}
}

func (p *Pipe) cancelWrite(w *pipeWrite, errno vfs.Errno) {
	if w == nil || w.canceled {
		return
	}
	for i, q := range p.writeQ {
		if q == w {
			p.writeQ = append(p.writeQ[:i], p.writeQ[i+1:]...)
			w.canceled = true
			w.cb(w.written, p.errPipe(errno, "write"))
			return
		}
	}
}

// pump moves bytes writer→ring→reader until nothing further can
// progress, then resolves whatever edge conditions apply. All
// completion callbacks run inline — on the event loop — in FIFO
// order per queue.
func (p *Pipe) pump() {
	for {
		moved := false

		// Fill the ring from the head writer.
		for len(p.writeQ) > 0 && p.n < len(p.buf) {
			wr := p.writeQ[0]
			chunk := wr.data
			if space := len(p.buf) - p.n; len(chunk) > space {
				chunk = chunk[:space]
			}
			for _, b := range chunk {
				p.buf[p.w] = b
				p.w = (p.w + 1) % len(p.buf)
			}
			p.n += len(chunk)
			wr.written += len(chunk)
			wr.data = wr.data[len(chunk):]
			moved = len(chunk) > 0 || moved
			if len(wr.data) == 0 {
				p.writeQ = p.writeQ[1:]
				wr.done = true
				wr.cb(wr.written, nil)
			} else {
				break // ring full with this writer still pending
			}
		}

		// Drain the ring into the head reader.
		for len(p.readQ) > 0 && p.n > 0 {
			rd := p.readQ[0]
			if rd.line {
				before := p.n
				if !p.fillLine(rd) {
					// No newline yet — but consuming into the partial
					// freed ring space, which is progress a blocked
					// writer must see.
					moved = moved || p.n != before
					break
				}
				p.readQ = p.readQ[1:]
				out := rd.partial
				rd.partial = nil
				rd.done = true
				rd.cb(out, nil)
				moved = true
				continue
			}
			take := rd.max
			if take > p.n {
				take = p.n
			}
			out := make([]byte, take)
			for i := range out {
				out[i] = p.buf[p.r]
				p.r = (p.r + 1) % len(p.buf)
			}
			p.n -= take
			p.readQ = p.readQ[1:]
			rd.done = true
			rd.cb(out, nil)
			moved = true
		}

		if !moved {
			break
		}
	}

	// Edge conditions. Writers stuck with no readers were already
	// failed in CloseRead; here: readers stuck with no writers ⇒ EOF
	// (line reads flush their partial first), and stalled writers get
	// a one-time flight event so pipe stalls show up in the black box.
	if p.writers == 0 {
		rq := p.readQ
		p.readQ = nil
		for _, rd := range rq {
			if rd.canceled {
				continue
			}
			rd.done = true
			if len(rd.partial) > 0 {
				out := rd.partial
				rd.partial = nil
				rd.cb(out, nil)
				continue
			}
			rd.cb(nil, io.EOF)
		}
	}
	for _, wr := range p.writeQ {
		if !wr.stalled {
			wr.stalled = true
			p.k.flight("pipe", "stall", p.name, int64(len(wr.data)))
		}
	}
}

// fillLine moves ring bytes into rd.partial up to a newline or
// rd.max; it reports whether the read is complete (newline seen, max
// reached, or — handled by the caller — EOF).
func (p *Pipe) fillLine(rd *pipeRead) bool {
	for p.n > 0 && len(rd.partial) < rd.max {
		b := p.buf[p.r]
		p.r = (p.r + 1) % len(p.buf)
		p.n--
		rd.partial = append(rd.partial, b)
		if b == '\n' {
			return true
		}
	}
	return len(rd.partial) >= rd.max
}

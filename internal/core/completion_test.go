package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"doppio/internal/eventloop"
)

func TestCompletionSingleFire(t *testing.T) {
	loop := eventloop.New(chromeOpts())
	c := NewCompletion(loop, "op")
	if c.Settled() {
		t.Fatal("fresh completion settled")
	}
	calls := 0
	c.Then(func(v interface{}, err error) { calls++ })
	if !c.Resolve("first", nil) {
		t.Fatal("first Resolve reported false")
	}
	if c.Resolve("second", errors.New("late")) {
		t.Fatal("second Resolve reported true")
	}
	if calls != 1 {
		t.Errorf("callback ran %d times", calls)
	}
	if c.Value() != "first" || c.Err() != nil {
		t.Errorf("Value/Err = %v, %v; later resolution leaked in", c.Value(), c.Err())
	}
	if c.Label() != "op" {
		t.Errorf("Label = %q", c.Label())
	}
}

func TestCompletionThenAfterSettleRunsImmediately(t *testing.T) {
	loop := eventloop.New(chromeOpts())
	c := NewCompletion(loop, "op")
	c.Resolve(42, nil)
	got := 0
	c.Then(func(v interface{}, err error) { got = v.(int) })
	if got != 42 {
		t.Errorf("late Then saw %d", got)
	}
}

func TestCompletionCallbacksBeforeResume(t *testing.T) {
	// Then callbacks deposit results; the awaiting thread must observe
	// them when it resumes.
	loop, rt := newTestRuntime(chromeOpts(), Config{})
	var order []string
	phase := 0
	rt.Spawn("main", RunnableFunc(func(th *Thread) RunResult {
		if phase == 0 {
			phase = 1
			c := NewCompletion(loop, "op")
			c.Then(func(interface{}, error) { order = append(order, "callback") })
			loop.SetTimeout(func() { c.Resolve(nil, nil) }, time.Millisecond)
			c.Await(th)
			return Block
		}
		order = append(order, "resumed")
		return Done
	}))
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "callback" || order[1] != "resumed" {
		t.Errorf("order = %v, want [callback resumed]", order)
	}
}

func TestCompletionAwaitSynchronousPath(t *testing.T) {
	// A completion that settles before Await means the thread never
	// blocks — the §4.2 fast path.
	loop, rt := newTestRuntime(chromeOpts(), Config{})
	blocked := true
	rt.Spawn("main", RunnableFunc(func(th *Thread) RunResult {
		c := NewCompletion(loop, "op")
		c.Resolve("sync", nil)
		blocked = c.Await(th)
		return Done
	}))
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if blocked {
		t.Error("Await blocked on a settled completion")
	}
}

func TestCompletionResolverFromGoroutines(t *testing.T) {
	// Resolver must (a) hold the loop's pending slot so Run waits for
	// the result, and (b) collapse racing settlements to one delivery.
	loop, rt := newTestRuntime(chromeOpts(), Config{})
	resolutions := 0
	phase := 0
	rt.Spawn("main", RunnableFunc(func(th *Thread) RunResult {
		if phase == 0 {
			phase = 1
			c := NewCompletion(loop, "op")
			c.Then(func(interface{}, error) { resolutions++ })
			resolve := c.Resolver()
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					resolve(n, nil)
				}(i)
			}
			wg.Wait()
			c.Await(th)
			return Block
		}
		return Done
	}))
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if resolutions != 1 {
		t.Errorf("resolved %d times, want 1", resolutions)
	}
}

func TestCompletionWithDeadline(t *testing.T) {
	loop, rt := newTestRuntime(chromeOpts(), Config{})
	var got error
	phase := 0
	rt.Spawn("main", RunnableFunc(func(th *Thread) RunResult {
		if phase == 0 {
			phase = 1
			c := NewCompletion(loop, "slow-op").WithDeadline(5 * time.Millisecond)
			c.Then(func(_ interface{}, err error) { got = err })
			// The "result" never arrives; the deadline must fire.
			c.Await(th)
			return Block
		}
		return Done
	}))
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	var de *DeadlineError
	if !errors.As(got, &de) {
		t.Fatalf("err = %v, want *DeadlineError", got)
	}
	if de.Label != "slow-op" || !de.Timeout() || !de.Temporary() {
		t.Errorf("DeadlineError = %+v", de)
	}
}

func TestCompletionResultBeatsDeadline(t *testing.T) {
	loop := eventloop.New(chromeOpts())
	c := NewCompletion(loop, "fast-op").WithDeadline(time.Hour)
	var got error = errors.New("sentinel")
	c.Then(func(_ interface{}, err error) { got = err })
	loop.Post("result", func() { c.Resolve("data", nil) })
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Errorf("err = %v, want nil (result before deadline)", got)
	}
	if c.Value() != "data" {
		t.Errorf("Value = %v", c.Value())
	}
}

func TestAfterRunsOnLoop(t *testing.T) {
	loop := eventloop.New(chromeOpts())
	start := time.Now()
	var elapsed time.Duration
	After(loop, "backoff", 10*time.Millisecond, func() { elapsed = time.Since(start) })
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed == 0 {
		t.Fatal("After callback never ran")
	}
	if elapsed < 10*time.Millisecond {
		t.Errorf("After fired at %v, want >= 10ms", elapsed)
	}
}

func TestAfterZeroDelay(t *testing.T) {
	loop := eventloop.New(chromeOpts())
	ran := false
	After(loop, "immediate", 0, func() { ran = true })
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("zero-delay After never ran")
	}
}

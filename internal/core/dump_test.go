package core

import (
	"strings"
	"testing"
	"time"

	"doppio/internal/telemetry"
)

func TestDumpAndFlightEvents(t *testing.T) {
	hub := telemetry.NewHub().EnableFlight(256)
	loop, rt := newTestRuntime(chromeOpts(), Config{Timeslice: time.Millisecond, Telemetry: hub})

	// worker blocks on a labeled completion that main resolves later.
	c := NewCompletion(loop, "handoff:test")
	rt.Spawn("worker", RunnableFunc(func(th *Thread) RunResult {
		if !c.Await(th) {
			return Done
		}
		return Block
	}))
	rt.Spawn("main", RunnableFunc(func(th *Thread) RunResult {
		loop.SetTimeout(func() { c.Resolve(nil, nil) }, 2*time.Millisecond)
		return Done
	}))
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}

	d := rt.Dump()
	if len(d.Threads) != 2 {
		t.Fatalf("dump threads = %d, want 2", len(d.Threads))
	}
	for _, th := range d.Threads {
		if th.State != "terminated" {
			t.Fatalf("thread %q state = %s, want terminated", th.Name, th.State)
		}
	}
	if len(d.RunQueueDepths) != MaxPriority {
		t.Fatalf("runq levels = %d, want %d", len(d.RunQueueDepths), MaxPriority)
	}
	text := d.Format()
	for _, want := range []string{"thread dump", "worker", "main", "run queue", "mechanism=postMessage"} {
		if !strings.Contains(text, want) {
			t.Fatalf("dump missing %q:\n%s", want, text)
		}
	}

	// Flight ring must have seen: spawns, a block/settle pair labeled
	// with the completion label, and at least one batch.
	got := map[string]bool{}
	for _, ev := range hub.Flight.Events() {
		got[ev.Cat+"/"+ev.Event+"/"+ev.Label] = true
	}
	for _, want := range []string{
		"sched/spawn/worker",
		"sched/spawn/main",
		"comp/block/handoff:test",
		"comp/settle/handoff:test",
		"sched/batch/",
	} {
		if !got[want] {
			t.Fatalf("flight missing %q; recorded: %v", want, got)
		}
	}
}

func TestDumpBlockedThread(t *testing.T) {
	loop, rt := newTestRuntime(chromeOpts(), Config{Timeslice: time.Millisecond})
	c := NewCompletion(loop, "monitorenter:Queue")
	rt.Spawn("stuck", RunnableFunc(func(th *Thread) RunResult {
		c.Await(th)
		return Block
	}))
	rt.Start()
	if err := loop.Run(); err != nil { // drains with the thread still blocked
		t.Fatal(err)
	}
	d := rt.Dump()
	blocked := d.Blocked()
	if len(blocked) != 1 || blocked[0].BlockedOn != "monitorenter:Queue" {
		t.Fatalf("blocked = %+v", blocked)
	}
	if !strings.Contains(d.Format(), "waiting on <monitorenter:Queue>") {
		t.Fatalf("format missing blocked-on label:\n%s", d.Format())
	}
}

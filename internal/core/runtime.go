// Package core implements the Doppio execution environment (§4 of the
// paper): the machinery that lets a language implementation with an
// explicit, heap-allocated call stack run inside the browser's
// single-threaded, event-driven world.
//
// It provides:
//
//   - automatic event segmentation via suspend-and-resume with an
//     adaptive counter (§4.1),
//   - emulation of synchronous source-language APIs on top of
//     asynchronous browser APIs (§4.2) through the Completion
//     primitive,
//   - cooperative multithreading over a pool of saved call stacks,
//     scheduled by a priority run queue with starvation aging (§4.3),
//   - slice batching: many timeslices run back-to-back inside one
//     macrotask until a responsiveness budget expires, so the §4.4
//     resumption round trip is paid once per batch instead of once per
//     slice,
//   - per-browser selection of the fastest resumption mechanism:
//     setImmediate, then postMessage, then setTimeout (§4.4).
//
// A language implementation supplies Runnable values whose state (call
// stack, program counter) lives entirely in Go data structures — the
// analog of the paper's requirement that "the call stack must be
// explicitly stored in JavaScript objects". Each Runnable.Run call
// executes until the thread finishes, decides to yield (after
// Thread.CheckSuspend reports that the timeslice expired), or blocks.
package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"doppio/internal/eventloop"
	"doppio/internal/telemetry"
)

// runtimeSeq distinguishes runtimes that share one event loop — the
// process layer runs one Runtime per guest VM — so their postMessage
// resumption ids never collide across msgMap instances.
var runtimeSeq uint64

// RunResult is what a Runnable reports at the end of a timeslice.
type RunResult int

const (
	// Done means the thread has finished executing.
	Done RunResult = iota
	// Yield means the timeslice expired; the thread remains ready and
	// will be resumed on a later scheduling decision.
	Yield
	// Block means the thread is waiting (async I/O, a monitor, sleep)
	// and must not be rescheduled until its resume function is called.
	Block
)

// Runnable is a resumable computation: all of its state lives on the
// heap so that Run can return mid-computation and continue later.
type Runnable interface {
	Run(t *Thread) RunResult
}

// RunnableFunc adapts a function to the Runnable interface.
type RunnableFunc func(t *Thread) RunResult

// Run calls f.
func (f RunnableFunc) Run(t *Thread) RunResult { return f(t) }

// ThreadState describes where a thread is in its lifecycle.
type ThreadState int

const (
	// ReadyState marks a thread eligible for scheduling.
	ReadyState ThreadState = iota
	// RunningState marks the thread currently executing.
	RunningState
	// BlockedState marks a thread waiting for an external resume.
	BlockedState
	// TerminatedState marks a finished thread.
	TerminatedState
)

func (s ThreadState) String() string {
	switch s {
	case ReadyState:
		return "ready"
	case RunningState:
		return "running"
	case BlockedState:
		return "blocked"
	case TerminatedState:
		return "terminated"
	}
	return "unknown"
}

// Priority bounds, JVM-style: level 1 is the least urgent, 10 the
// most, 5 the default. Config.PriorityLevels may widen or narrow the
// range; these are the defaults.
const (
	MinPriority      = 1
	NormPriority     = 5
	MaxPriority      = 10
	defaultAging     = 16 // picks a lower-priority head waits before preempting
	defaultTimeslice = 10 * time.Millisecond
)

// Config tunes a Runtime.
type Config struct {
	// Timeslice is the preconfigured time slice duration (§4.1) after
	// which a thread should suspend. Defaults to 10 ms.
	Timeslice time.Duration

	// BatchBudget is the responsiveness budget for one macrotask:
	// ready threads keep running timeslices back-to-back until it
	// expires, and only then is the §4.4 resumption round trip paid.
	// Zero derives the budget from the adaptive suspend clock's
	// timeslice (i.e. equal to Timeslice, ~10 ms by default); negative
	// disables batching and runs exactly one slice per macrotask (the
	// pre-batching behavior, kept for A/B comparison).
	BatchBudget time.Duration

	// PriorityLevels is the number of run-queue priority levels
	// (threads use 1..PriorityLevels, larger = more urgent). Defaults
	// to MaxPriority (10), matching the JVM's Thread priority range.
	PriorityLevels int

	// DefaultPriority is the level newly spawned threads start at.
	// Defaults to the middle level (NormPriority for the default
	// range).
	DefaultPriority int

	// AgingThreshold is the number of scheduling decisions a
	// lower-priority thread may wait at the head of its level before
	// it preempts higher-priority work once (starvation aging). Zero
	// uses the default (16); negative disables aging entirely.
	AgingThreshold int

	// ForceMechanism, if non-empty, overrides the automatic resumption
	// mechanism choice ("setImmediate", "postMessage" or "setTimeout")
	// — used by the DESIGN.md D1 ablation.
	ForceMechanism string

	// FixedCounter disables the adaptive quantum and uses this fixed
	// check count instead — the DESIGN.md D2 ablation.
	FixedCounter int

	// Telemetry attaches the runtime to an observability hub.
	Telemetry *telemetry.Hub
}

// Stats captures runtime instrumentation for Figures 4 and 5.
type Stats struct {
	// Suspensions counts suspend-and-resume round trips (§4.4): the
	// number of times the runtime yielded the JavaScript thread and
	// paid the resumption mechanism. With batching, one round trip may
	// cover many timeslices.
	Suspensions int
	// SuspendedTime is total time spent suspended — between yielding
	// the JavaScript thread and the resumption callback firing.
	SuspendedTime time.Duration
	// CPUTime is total time spent executing thread timeslices.
	CPUTime time.Duration
	// ContextSwitches counts scheduler decisions that changed threads.
	ContextSwitches int
	// Slices counts executed timeslices across all threads.
	Slices int
	// Batches counts scheduler macrotasks that ran at least one slice.
	Batches int
	// MaxBatchSlices is the most timeslices any single batch ran.
	MaxBatchSlices int
	// BudgetOverruns counts batches whose total execution exceeded the
	// responsiveness budget (the last slice overshooting its clamped
	// quantum estimate).
	BudgetOverruns int
}

// Runtime is a Doppio execution environment bound to one event loop.
type Runtime struct {
	loop *eventloop.Loop
	cfg  Config

	mechanism string
	rtSeq     uint64 // distinguishes runtimes sharing one loop
	msgSeq    int
	msgMap    map[string]func()

	threads    []*Thread
	runq       *runQueue
	current    *Thread
	nextID     int
	tickQueued bool

	batchBudget time.Duration // 0 = one slice per macrotask

	stats   Stats
	lastRun *Thread

	tel *rtTelemetry

	// Guest-profiler hooks (see SetSampleHook / SetBlockHook). Both
	// run on the loop goroutine; nil when profiling is off.
	sampleHook  func(t *Thread, dt time.Duration)
	sampleEvery time.Duration
	blockHook   func(t *Thread, reason string, dt time.Duration)

	onIdle []func() // notified when no threads remain
}

// rtTelemetry holds the pre-resolved metric handles for one runtime.
// The runtime executes entirely on the event-loop goroutine, so the
// pointer is read without synchronization.
type rtTelemetry struct {
	yieldLatency *telemetry.Histogram // suspend → resumption latency (§4.4)
	sliceDur     *telemetry.Histogram // timeslice execution duration
	batchSlices  *telemetry.Histogram // timeslices per scheduler macrotask
	quantum      *telemetry.Gauge     // latest adaptive suspend-counter quantum (§4.1)
	runqDepth    *telemetry.Gauge     // run-queue depth after the latest batch
	runqMax      *telemetry.Gauge     // high-watermark run-queue depth
	suspensions  *telemetry.Counter
	ctxSwitches  *telemetry.Counter
	overruns     *telemetry.Counter // batches that exceeded the budget
	tracer       *telemetry.Tracer
	flight       *telemetry.FlightRecorder
}

// flight returns the flight recorder, nil when recording is off; the
// recorder's methods are nil-safe so call sites record unconditionally.
func (rt *Runtime) flight() *telemetry.FlightRecorder {
	if tel := rt.tel; tel != nil {
		return tel.flight
	}
	return nil
}

// coreThreadTID maps a Doppio thread ID onto its trace track.
func coreThreadTID(id int) int { return telemetry.TIDCoreThread(id) }

// EnableTelemetry points the runtime at an observability hub (nil
// detaches). NewRuntime calls this automatically with cfg.Telemetry.
func (rt *Runtime) EnableTelemetry(h *telemetry.Hub) {
	if h == nil {
		rt.tel = nil
		return
	}
	rt.tel = &rtTelemetry{
		yieldLatency: h.Registry.Histogram("core", "yield_latency"),
		sliceDur:     h.Registry.Histogram("core", "timeslice"),
		batchSlices:  h.Registry.Histogram("core", "batch_slices"),
		quantum:      h.Registry.Gauge("core", "suspend_quantum"),
		runqDepth:    h.Registry.Gauge("core", "runq_depth"),
		runqMax:      h.Registry.Gauge("core", "runq_depth_max"),
		suspensions:  h.Registry.Counter("core", "suspensions"),
		ctxSwitches:  h.Registry.Counter("core", "context_switches"),
		overruns:     h.Registry.Counter("core", "batch_overruns"),
		tracer:       h.Tracer,
		flight:       h.Flight,
	}
}

// NewRuntime creates a runtime driving threads on the given event
// loop. The resumption mechanism is chosen from the loop's options
// (§4.4) unless cfg.ForceMechanism overrides it.
func NewRuntime(loop *eventloop.Loop, cfg Config) *Runtime {
	if cfg.Timeslice == 0 {
		cfg.Timeslice = defaultTimeslice
	}
	if cfg.PriorityLevels <= 0 {
		cfg.PriorityLevels = MaxPriority
	}
	if cfg.DefaultPriority == 0 {
		cfg.DefaultPriority = (cfg.PriorityLevels + 1) / 2
	}
	aging := uint64(defaultAging)
	switch {
	case cfg.AgingThreshold > 0:
		aging = uint64(cfg.AgingThreshold)
	case cfg.AgingThreshold < 0:
		aging = 0
	}
	rt := &Runtime{
		loop:   loop,
		cfg:    cfg,
		rtSeq:  atomic.AddUint64(&runtimeSeq, 1),
		runq:   newRunQueue(cfg.PriorityLevels, aging),
		msgMap: make(map[string]func()),
	}
	rt.cfg.DefaultPriority = rt.runq.clampPrio(cfg.DefaultPriority)
	switch {
	case cfg.BatchBudget > 0:
		rt.batchBudget = cfg.BatchBudget
	case cfg.BatchBudget == 0:
		rt.batchBudget = cfg.Timeslice
	}
	rt.mechanism = cfg.ForceMechanism
	if rt.mechanism == "" {
		rt.mechanism = chooseMechanism(loop.Options())
	}
	if rt.mechanism == "postMessage" {
		loop.OnMessage(rt.onMessage)
	}
	rt.EnableTelemetry(cfg.Telemetry)
	return rt
}

// chooseMechanism implements §4.4: setImmediate where available (IE10),
// postMessage elsewhere — except browsers whose postMessage is
// synchronous (IE8), forcing the setTimeout fallback.
func chooseMechanism(opts eventloop.Options) string {
	switch {
	case opts.HasSetImmediate:
		return "setImmediate"
	case !opts.SyncPostMessage:
		return "postMessage"
	default:
		return "setTimeout"
	}
}

// Mechanism reports the resumption mechanism in use.
func (rt *Runtime) Mechanism() string { return rt.mechanism }

// Loop returns the underlying event loop.
func (rt *Runtime) Loop() *eventloop.Loop { return rt.loop }

// Stats returns a snapshot of the runtime statistics.
func (rt *Runtime) Stats() Stats { return rt.stats }

// Timeslice returns the configured time slice.
func (rt *Runtime) Timeslice() time.Duration { return rt.cfg.Timeslice }

// BatchBudget returns the effective responsiveness budget (0 when
// batching is disabled).
func (rt *Runtime) BatchBudget() time.Duration { return rt.batchBudget }

func (rt *Runtime) onMessage(id string) {
	cb, ok := rt.msgMap[id]
	if !ok {
		return
	}
	delete(rt.msgMap, id)
	cb()
}

// scheduleResumption inserts fn into the event queue via the chosen
// resumption mechanism (§4.4). Time spent between this call and fn
// executing is "suspended time" (Figure 5). The timestamp is captured
// per closure, so overlapping resumptions each measure their own
// latency.
func (rt *Runtime) scheduleResumption(fn func()) {
	suspendedAt := time.Now()
	wrapped := func() {
		d := time.Since(suspendedAt)
		rt.stats.SuspendedTime += d
		rt.stats.Suspensions++
		if tel := rt.tel; tel != nil {
			tel.yieldLatency.ObserveDuration(d)
			tel.suspensions.Inc()
		}
		fn()
	}
	switch rt.mechanism {
	case "setImmediate":
		if err := rt.loop.SetImmediate(wrapped); err != nil {
			// The forced mechanism is unavailable; fall back.
			rt.loop.SetTimeout(wrapped, 0)
		}
	case "postMessage":
		rt.msgSeq++
		id := fmt.Sprintf("doppio-resume-%d-%d", rt.rtSeq, rt.msgSeq)
		rt.msgMap[id] = wrapped
		rt.loop.PostMessage(id)
	default: // setTimeout
		rt.loop.SetTimeout(wrapped, 0)
	}
}

// SetSampleHook installs a CPU-sampling hook: it fires from the
// suspend clock's counter-expiry path (where the current time has
// already been read, so the fast path stays untouched) and at the end
// of every timeslice, with the on-CPU time elapsed since the thread's
// previous sample. interval is the minimum spacing between in-slice
// samples (elapsed time accumulates until an eligible sample point,
// then the whole window is attributed to the stack observed there —
// classic sampling). A nil hook disables sampling.
func (rt *Runtime) SetSampleHook(hook func(t *Thread, dt time.Duration), interval time.Duration) {
	rt.sampleHook = hook
	if interval <= 0 {
		interval = time.Millisecond
	}
	rt.sampleEvery = interval
	for _, t := range rt.threads {
		rt.armProbe(t)
	}
}

// SetBlockHook installs a contention hook: when a blocked thread is
// resumed, the hook fires with the completion label it waited on and
// the time it spent blocked. The guest stack is unchanged for the
// whole blocked window, so walking it from the hook attributes the
// wait to the blocking call site. A nil hook disables it.
func (rt *Runtime) SetBlockHook(hook func(t *Thread, reason string, dt time.Duration)) {
	rt.blockHook = hook
}

// armProbe points t's suspend clock at the runtime's sample hook.
func (rt *Runtime) armProbe(t *Thread) {
	if rt.sampleHook == nil {
		t.clock.probe = nil
		return
	}
	t.clock.probe = func(now time.Time) { rt.sample(t, now) }
}

// sample attributes the on-CPU window since t's previous sample to
// the hook, if the minimum interval has elapsed.
func (rt *Runtime) sample(t *Thread, now time.Time) {
	hook := rt.sampleHook
	if hook == nil {
		return
	}
	if t.lastSampleAt.IsZero() {
		t.lastSampleAt = now
		return
	}
	dt := now.Sub(t.lastSampleAt)
	if dt < rt.sampleEvery {
		return
	}
	t.lastSampleAt = now
	hook(t, dt)
}

// Spawn creates a new thread in the pool at the default priority,
// ready to run. Start (or an already-running scheduler) will pick it
// up.
func (rt *Runtime) Spawn(name string, r Runnable) *Thread {
	rt.nextID++
	t := &Thread{
		rt:       rt,
		ID:       rt.nextID,
		Name:     name,
		runnable: r,
		state:    ReadyState,
		prio:     rt.cfg.DefaultPriority,
	}
	t.clock = newSuspendClock(rt.cfg.Timeslice, rt.cfg.FixedCounter)
	rt.armProbe(t)
	if tel := rt.tel; tel != nil && tel.tracer != nil {
		tel.tracer.ThreadName(coreThreadTID(t.ID), fmt.Sprintf("doppio thread %d: %s", t.ID, name))
	}
	rt.flight().Record("sched", "spawn", name, int64(t.ID))
	rt.threads = append(rt.threads, t)
	rt.runq.push(t)
	rt.noteQueueDepth()
	return t
}

// Start begins executing threads. It returns immediately; execution
// happens as the event loop runs.
func (rt *Runtime) Start() { rt.queueTick(false) }

// queueTick schedules a scheduler tick. direct posts to the queue
// without the resumption mechanism (used for the initial start);
// otherwise the §4.4 mechanism is used and suspension time is counted.
func (rt *Runtime) queueTick(viaMechanism bool) {
	if rt.tickQueued {
		return
	}
	rt.tickQueued = true
	tick := func() {
		rt.tickQueued = false
		rt.tick()
	}
	if viaMechanism {
		rt.scheduleResumption(tick)
	} else {
		rt.loop.Post("doppio-sched", tick)
	}
}

// tick runs one scheduler batch: ready threads execute timeslices
// back-to-back until the run queue drains or the responsiveness
// budget expires, and only then is the next §4.4 resumption round
// trip scheduled. With batching disabled (negative Config.BatchBudget)
// exactly one slice runs per macrotask.
func (rt *Runtime) tick() {
	if rt.runq.size == 0 {
		rt.maybeIdle()
		return
	}
	budget := rt.batchBudget
	batchStart := time.Now()
	slices := 0
	for {
		t := rt.runq.pop()
		limit := rt.cfg.Timeslice
		if budget > 0 {
			if remaining := budget - time.Since(batchStart); remaining < limit {
				limit = remaining
			}
		}
		rt.runSlice(t, limit)
		slices++
		if rt.runq.size == 0 || budget <= 0 || time.Since(batchStart) >= budget {
			break
		}
	}
	rt.stats.Batches++
	if slices > rt.stats.MaxBatchSlices {
		rt.stats.MaxBatchSlices = slices
	}
	overrun := budget > 0 && time.Since(batchStart) > budget
	if overrun {
		rt.stats.BudgetOverruns++
	}
	if tel := rt.tel; tel != nil {
		tel.batchSlices.Observe(int64(slices))
		if overrun {
			tel.overruns.Inc()
		}
	}
	note := ""
	if overrun {
		note = "overrun"
	}
	rt.flight().RecordNote("sched", "batch", "", note, int64(slices))
	rt.noteQueueDepth()
	if rt.runq.size > 0 {
		rt.queueTick(true)
	} else {
		rt.maybeIdle()
	}
}

// runSlice executes one timeslice of t, bounded by limit, and applies
// the thread's verdict to the scheduler state.
func (rt *Runtime) runSlice(t *Thread, limit time.Duration) {
	if rt.lastRun != nil && rt.lastRun != t {
		rt.stats.ContextSwitches++
		if rt.tel != nil {
			rt.tel.ctxSwitches.Inc()
		}
	}
	rt.lastRun = t
	rt.current = t
	rt.stats.Slices++
	t.state = RunningState
	t.clock.startSlice(limit)

	var span telemetry.Span
	if tel := rt.tel; tel != nil {
		tel.quantum.Set(int64(t.clock.initial))
		if tel.tracer != nil {
			span = tel.tracer.Begin(coreThreadTID(t.ID), "core", t.Name)
		}
	}
	start := time.Now()
	if rt.sampleHook != nil {
		// On-CPU accounting starts fresh each slice: time spent off
		// the CPU (queued, suspended) must not be attributed.
		t.lastSampleAt = start
	}
	res := t.runnable.Run(t)
	elapsed := time.Since(start)
	rt.stats.CPUTime += elapsed
	t.CPUTime += elapsed
	if hook := rt.sampleHook; hook != nil && res != Done {
		// Close out the slice: attribute the tail window (below the
		// in-slice interval gate) so sampled time tracks CPUTime.
		// Finished threads have unwound their stack — skip them.
		if dt := time.Since(t.lastSampleAt); dt > 0 {
			hook(t, dt)
		}
	}
	if tel := rt.tel; tel != nil {
		span.End()
		tel.sliceDur.ObserveDuration(elapsed)
	}
	rt.current = nil

	switch res {
	case Done:
		t.state = TerminatedState
		for _, j := range t.joiners {
			j()
		}
		t.joiners = nil
	case Yield:
		t.state = ReadyState
		rt.runq.push(t)
	case Block:
		// The thread must have parked itself (Thread.Block directly or
		// via Completion.Await). ReadyState is also legal: the
		// completion settled on-loop before the slice returned, and
		// the thread is already queued again.
		if t.state != BlockedState && t.state != ReadyState {
			panic("core: Runnable returned Block without calling Thread.Block")
		}
	}
}

// noteQueueDepth exports the current run-queue depth.
func (rt *Runtime) noteQueueDepth() {
	if tel := rt.tel; tel != nil {
		depth := int64(rt.runq.depth())
		tel.runqDepth.Set(depth)
		tel.runqMax.SetMax(depth)
	}
}

func (rt *Runtime) maybeIdle() {
	if rt.runq.size > 0 {
		return
	}
	for _, t := range rt.threads {
		if t.state == BlockedState || t.state == RunningState {
			return
		}
	}
	for _, fn := range rt.onIdle {
		fn()
	}
	rt.onIdle = nil
}

// OnIdle registers fn to run once every thread has terminated.
func (rt *Runtime) OnIdle(fn func()) {
	rt.onIdle = append(rt.onIdle, fn)
}

// DeadlockedThreads returns the threads still blocked after the event
// loop drained — i.e., threads that can never resume.
func (rt *Runtime) DeadlockedThreads() []*Thread {
	var out []*Thread
	for _, t := range rt.threads {
		if t.state == BlockedState {
			out = append(out, t)
		}
	}
	return out
}

// DeadlockReport formats the deadlocked threads with the label of the
// completion each is blocked on, e.g.
// "worker#2 on monitorenter:Queue". Empty when nothing is deadlocked.
func (rt *Runtime) DeadlockReport() string {
	var b strings.Builder
	for _, t := range rt.DeadlockedThreads() {
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s#%d on %s", t.Name, t.ID, t.BlockedOn())
	}
	return b.String()
}

// Threads returns all threads ever spawned.
func (rt *Runtime) Threads() []*Thread { return rt.threads }

// QueueDepth reports the current run-queue depth — the placement
// signal the fleet supervisor's shard monitor publishes. Like Dump it
// must be called on the loop goroutine (or after the loop drains).
func (rt *Runtime) QueueDepth() int { return rt.runq.depth() }

// Package core implements the Doppio execution environment (§4 of the
// paper): the machinery that lets a language implementation with an
// explicit, heap-allocated call stack run inside the browser's
// single-threaded, event-driven world.
//
// It provides:
//
//   - automatic event segmentation via suspend-and-resume with an
//     adaptive counter (§4.1),
//   - emulation of synchronous source-language APIs on top of
//     asynchronous browser APIs (§4.2),
//   - cooperative multithreading over a pool of saved call stacks, with
//     a pluggable scheduler (§4.3),
//   - per-browser selection of the fastest resumption mechanism:
//     setImmediate, then postMessage, then setTimeout (§4.4).
//
// A language implementation supplies Runnable values whose state (call
// stack, program counter) lives entirely in Go data structures — the
// analog of the paper's requirement that "the call stack must be
// explicitly stored in JavaScript objects". Each Runnable.Run call
// executes until the thread finishes, decides to yield (after
// Thread.CheckSuspend reports that the timeslice expired), or blocks.
package core

import (
	"fmt"
	"time"

	"doppio/internal/browser"
	"doppio/internal/eventloop"
	"doppio/internal/telemetry"
)

// RunResult is what a Runnable reports at the end of a timeslice.
type RunResult int

const (
	// Done means the thread has finished executing.
	Done RunResult = iota
	// Yield means the timeslice expired; the thread remains ready and
	// will be resumed on a later event-loop turn.
	Yield
	// Block means the thread is waiting (async I/O, a monitor, sleep)
	// and must not be rescheduled until its resume function is called.
	Block
)

// Runnable is a resumable computation: all of its state lives on the
// heap so that Run can return mid-computation and continue later.
type Runnable interface {
	Run(t *Thread) RunResult
}

// RunnableFunc adapts a function to the Runnable interface.
type RunnableFunc func(t *Thread) RunResult

// Run calls f.
func (f RunnableFunc) Run(t *Thread) RunResult { return f(t) }

// ThreadState describes where a thread is in its lifecycle.
type ThreadState int

const (
	// ReadyState marks a thread eligible for scheduling.
	ReadyState ThreadState = iota
	// RunningState marks the thread currently executing.
	RunningState
	// BlockedState marks a thread waiting for an external resume.
	BlockedState
	// TerminatedState marks a finished thread.
	TerminatedState
)

func (s ThreadState) String() string {
	switch s {
	case ReadyState:
		return "ready"
	case RunningState:
		return "running"
	case BlockedState:
		return "blocked"
	case TerminatedState:
		return "terminated"
	}
	return "unknown"
}

// Scheduler picks the next thread to resume from the ready pool.
// The default resumes an arbitrary ready thread (the paper's default);
// language implementations may provide their own (§4.3).
type Scheduler func(ready []*Thread) *Thread

// Config tunes a Runtime.
type Config struct {
	// Timeslice is the preconfigured time slice duration (§4.1) after
	// which a thread should suspend. Defaults to 10 ms.
	Timeslice time.Duration
	// Scheduler overrides the default arbitrary-ready-thread policy.
	Scheduler Scheduler
	// ForceMechanism, if non-empty, overrides the automatic resumption
	// mechanism choice ("setImmediate", "postMessage" or "setTimeout")
	// — used by the DESIGN.md D1 ablation.
	ForceMechanism string
	// FixedCounter disables the adaptive quantum and uses this fixed
	// check count instead — the DESIGN.md D2 ablation.
	FixedCounter int
}

// Stats captures runtime instrumentation for Figures 4 and 5.
type Stats struct {
	// Suspensions counts suspend-and-resume round trips.
	Suspensions int
	// SuspendedTime is total time spent suspended — between yielding
	// the JavaScript thread and the resumption callback firing.
	SuspendedTime time.Duration
	// CPUTime is total time spent executing thread timeslices.
	CPUTime time.Duration
	// ContextSwitches counts scheduler decisions that changed threads.
	ContextSwitches int
}

// Runtime is a Doppio execution environment bound to one browser window.
type Runtime struct {
	win  *browser.Window
	loop *eventloop.Loop
	cfg  Config

	mechanism string
	msgSeq    int
	msgMap    map[string]func()

	threads    []*Thread
	ready      []*Thread
	current    *Thread
	nextID     int
	tickQueued bool

	stats       Stats
	suspendedAt time.Time
	lastRun     *Thread

	tel *rtTelemetry

	onIdle []func() // notified when no threads remain
}

// rtTelemetry holds the pre-resolved metric handles for one runtime.
// The runtime executes entirely on the event-loop goroutine, so the
// pointer is read without synchronization.
type rtTelemetry struct {
	yieldLatency *telemetry.Histogram // suspend → resumption latency (§4.4)
	sliceDur     *telemetry.Histogram // timeslice execution duration
	quantum      *telemetry.Gauge     // latest adaptive suspend-counter quantum (§4.1)
	suspensions  *telemetry.Counter
	ctxSwitches  *telemetry.Counter
	tracer       *telemetry.Tracer
}

// coreThreadTID maps a Doppio thread ID onto its trace track.
func coreThreadTID(id int) int { return telemetry.TIDCoreThread(id) }

// EnableTelemetry points the runtime at an observability hub (nil
// detaches). NewRuntime calls this automatically when the window has
// one.
func (rt *Runtime) EnableTelemetry(h *telemetry.Hub) {
	if h == nil {
		rt.tel = nil
		return
	}
	rt.tel = &rtTelemetry{
		yieldLatency: h.Registry.Histogram("core", "yield_latency"),
		sliceDur:     h.Registry.Histogram("core", "timeslice"),
		quantum:      h.Registry.Gauge("core", "suspend_quantum"),
		suspensions:  h.Registry.Counter("core", "suspensions"),
		ctxSwitches:  h.Registry.Counter("core", "context_switches"),
		tracer:       h.Tracer,
	}
}

// NewRuntime creates a runtime inside the window's event loop.
func NewRuntime(win *browser.Window, cfg Config) *Runtime {
	if cfg.Timeslice == 0 {
		cfg.Timeslice = 10 * time.Millisecond
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = func(ready []*Thread) *Thread { return ready[0] }
	}
	rt := &Runtime{
		win:    win,
		loop:   win.Loop,
		cfg:    cfg,
		msgMap: make(map[string]func()),
	}
	rt.mechanism = cfg.ForceMechanism
	if rt.mechanism == "" {
		rt.mechanism = chooseMechanism(win.Profile)
	}
	if rt.mechanism == "postMessage" {
		win.Loop.OnMessage(rt.onMessage)
	}
	rt.EnableTelemetry(win.Telemetry)
	return rt
}

// chooseMechanism implements §4.4: setImmediate where available (IE10),
// postMessage elsewhere — except IE8, whose postMessage is synchronous,
// forcing the setTimeout fallback.
func chooseMechanism(p browser.Profile) string {
	switch {
	case p.HasSetImmediate:
		return "setImmediate"
	case !p.SyncPostMessage:
		return "postMessage"
	default:
		return "setTimeout"
	}
}

// Mechanism reports the resumption mechanism in use.
func (rt *Runtime) Mechanism() string { return rt.mechanism }

// Window returns the browser window the runtime lives in.
func (rt *Runtime) Window() *browser.Window { return rt.win }

// Loop returns the underlying event loop.
func (rt *Runtime) Loop() *eventloop.Loop { return rt.loop }

// Stats returns a snapshot of the runtime statistics.
func (rt *Runtime) Stats() Stats { return rt.stats }

// Timeslice returns the configured time slice.
func (rt *Runtime) Timeslice() time.Duration { return rt.cfg.Timeslice }

func (rt *Runtime) onMessage(id string) {
	cb, ok := rt.msgMap[id]
	if !ok {
		return
	}
	delete(rt.msgMap, id)
	cb()
}

// scheduleResumption inserts fn into the event queue via the chosen
// resumption mechanism (§4.4). Time spent between this call and fn
// executing is "suspended time" (Figure 5).
func (rt *Runtime) scheduleResumption(fn func()) {
	rt.suspendedAt = time.Now()
	wrapped := func() {
		d := time.Since(rt.suspendedAt)
		rt.stats.SuspendedTime += d
		rt.stats.Suspensions++
		if tel := rt.tel; tel != nil {
			tel.yieldLatency.ObserveDuration(d)
			tel.suspensions.Inc()
		}
		fn()
	}
	switch rt.mechanism {
	case "setImmediate":
		if err := rt.loop.SetImmediate(wrapped); err != nil {
			// The forced mechanism is unavailable; fall back.
			rt.loop.SetTimeout(wrapped, 0)
		}
	case "postMessage":
		rt.msgSeq++
		id := fmt.Sprintf("doppio-resume-%d", rt.msgSeq)
		rt.msgMap[id] = wrapped
		rt.loop.PostMessage(id)
	default: // setTimeout
		rt.loop.SetTimeout(wrapped, 0)
	}
}

// Spawn creates a new thread in the pool, ready to run. Start (or an
// already-running scheduler) will pick it up.
func (rt *Runtime) Spawn(name string, r Runnable) *Thread {
	rt.nextID++
	t := &Thread{
		rt:       rt,
		ID:       rt.nextID,
		Name:     name,
		runnable: r,
		state:    ReadyState,
	}
	t.clock = newSuspendClock(rt.cfg.Timeslice, rt.cfg.FixedCounter)
	if tel := rt.tel; tel != nil && tel.tracer != nil {
		tel.tracer.ThreadName(coreThreadTID(t.ID), fmt.Sprintf("doppio thread %d: %s", t.ID, name))
	}
	rt.threads = append(rt.threads, t)
	rt.ready = append(rt.ready, t)
	return t
}

// Start begins executing threads. It returns immediately; execution
// happens as the event loop runs.
func (rt *Runtime) Start() { rt.queueTick(false) }

// queueTick schedules a scheduler tick. direct posts to the queue
// without the resumption mechanism (used for the initial start);
// otherwise the §4.4 mechanism is used and suspension time is counted.
func (rt *Runtime) queueTick(viaMechanism bool) {
	if rt.tickQueued {
		return
	}
	rt.tickQueued = true
	tick := func() {
		rt.tickQueued = false
		rt.tick()
	}
	if viaMechanism {
		rt.scheduleResumption(tick)
	} else {
		rt.loop.Post("doppio-sched", tick)
	}
}

// tick runs one timeslice of one ready thread.
func (rt *Runtime) tick() {
	if len(rt.ready) == 0 {
		rt.maybeIdle()
		return
	}
	t := rt.cfg.Scheduler(rt.ready)
	// Remove t from the ready pool.
	for i, r := range rt.ready {
		if r == t {
			rt.ready = append(rt.ready[:i], rt.ready[i+1:]...)
			break
		}
	}
	if rt.lastRun != nil && rt.lastRun != t {
		rt.stats.ContextSwitches++
		if rt.tel != nil {
			rt.tel.ctxSwitches.Inc()
		}
	}
	rt.lastRun = t
	rt.current = t
	t.state = RunningState
	t.clock.startSlice()

	var span telemetry.Span
	if tel := rt.tel; tel != nil {
		tel.quantum.Set(int64(t.clock.initial))
		if tel.tracer != nil {
			span = tel.tracer.Begin(coreThreadTID(t.ID), "core", t.Name)
		}
	}
	start := time.Now()
	res := t.runnable.Run(t)
	elapsed := time.Since(start)
	rt.stats.CPUTime += elapsed
	t.CPUTime += elapsed
	if tel := rt.tel; tel != nil {
		span.End()
		tel.sliceDur.ObserveDuration(elapsed)
	}
	rt.current = nil

	switch res {
	case Done:
		t.state = TerminatedState
		for _, j := range t.joiners {
			j()
		}
		t.joiners = nil
		if len(rt.ready) > 0 {
			rt.queueTick(true)
		} else {
			rt.maybeIdle()
		}
	case Yield:
		t.state = ReadyState
		rt.ready = append(rt.ready, t)
		rt.queueTick(true)
	case Block:
		if t.state != BlockedState {
			panic("core: Runnable returned Block without calling Thread.Block")
		}
		if len(rt.ready) > 0 {
			rt.queueTick(true)
		}
	}
}

func (rt *Runtime) maybeIdle() {
	if len(rt.ready) > 0 {
		return
	}
	for _, t := range rt.threads {
		if t.state == BlockedState || t.state == RunningState {
			return
		}
	}
	for _, fn := range rt.onIdle {
		fn()
	}
	rt.onIdle = nil
}

// OnIdle registers fn to run once every thread has terminated.
func (rt *Runtime) OnIdle(fn func()) {
	rt.onIdle = append(rt.onIdle, fn)
}

// DeadlockedThreads returns the threads still blocked after the event
// loop drained — i.e., threads that can never resume.
func (rt *Runtime) DeadlockedThreads() []*Thread {
	var out []*Thread
	for _, t := range rt.threads {
		if t.state == BlockedState {
			out = append(out, t)
		}
	}
	return out
}

// Threads returns all threads ever spawned.
func (rt *Runtime) Threads() []*Thread { return rt.threads }

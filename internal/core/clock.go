package core

import "time"

// suspendClock implements the adaptive suspend counter of §4.1:
//
//	"DOPPIO uses a simple counter to determine when an application
//	 needs to suspend. Each suspend check initiated by the language
//	 implementation decrements the counter by 1. When the counter
//	 reaches 0, DOPPIO determines how long it took for the counter to
//	 tick to 0. It then updates a cumulative moving average
//	 representing how often the program checks whether or not it
//	 should suspend. This new value, along with a preconfigured time
//	 slice duration, is then used to set the new counter value."
type suspendClock struct {
	timeslice time.Duration
	fixed     int // non-zero disables adaptation (ablation D2)

	counter    int
	initial    int
	resetAt    time.Time
	avgPerMs   float64 // cumulative moving average of checks per ms
	samples    int
	sliceStart time.Time
	sliceLimit time.Duration // this slice's target duration (≤ timeslice)

	// probe, when set, fires on every counter expiry with the
	// timestamp check() already read — the profiler's CPU sample
	// point. It costs nothing on the counter>0 fast path.
	probe func(now time.Time)
}

const (
	initialCounter = 100
	minCounter     = 32
	maxCounter     = 50_000_000
)

func newSuspendClock(timeslice time.Duration, fixed int) *suspendClock {
	c := &suspendClock{timeslice: timeslice, fixed: fixed}
	c.counter = initialCounter
	if fixed > 0 {
		c.counter = fixed
	}
	c.initial = c.counter
	c.resetAt = time.Now()
	return c
}

// startSlice notes the beginning of a fresh timeslice. limit bounds
// this slice's target duration — the scheduler passes the remaining
// responsiveness budget so a batch's final slice lands near the budget
// instead of overshooting by a full timeslice. Non-positive or
// oversized limits fall back to the configured timeslice.
func (c *suspendClock) startSlice(limit time.Duration) {
	if limit <= 0 || limit > c.timeslice {
		limit = c.timeslice
	}
	c.sliceLimit = limit
	c.sliceStart = time.Now()
	c.resetAt = c.sliceStart
	if c.fixed > 0 {
		c.counter = c.fixed
		c.initial = c.fixed
		return
	}
	c.counter = c.quantumFromAverage()
	c.initial = c.counter
}

// check decrements the counter and reports whether the timeslice has
// expired (time to suspend).
func (c *suspendClock) check() bool {
	c.counter--
	if c.counter > 0 {
		return false
	}
	now := time.Now()
	if c.probe != nil {
		c.probe(now)
	}
	if c.fixed > 0 {
		// Fixed mode: suspend every `fixed` checks, no adaptation.
		c.counter = c.fixed
		c.resetAt = now
		return true
	}
	elapsed := now.Sub(c.resetAt)
	if elapsed <= 0 {
		elapsed = time.Microsecond
	}
	rate := float64(c.initial) / (float64(elapsed) / float64(time.Millisecond))
	c.samples++
	// Cumulative moving average of the program's check rate.
	c.avgPerMs += (rate - c.avgPerMs) / float64(c.samples)

	if since := now.Sub(c.sliceStart); since < c.sliceLimit {
		// The timeslice hasn't expired yet: re-arm the counter for the
		// remaining budget and keep running.
		remaining := c.sliceLimit - since
		c.counter = clampCounter(int(c.avgPerMs * float64(remaining) / float64(time.Millisecond)))
		c.initial = c.counter
		c.resetAt = now
		return false
	}
	// Timeslice expired: suspend. The next slice's quantum comes from
	// the moving average.
	return true
}

func (c *suspendClock) quantumFromAverage() int {
	if c.samples == 0 {
		return initialCounter
	}
	return clampCounter(int(c.avgPerMs * float64(c.sliceLimit) / float64(time.Millisecond)))
}

func clampCounter(n int) int {
	if n < minCounter {
		return minCounter
	}
	if n > maxCounter {
		return maxCounter
	}
	return n
}

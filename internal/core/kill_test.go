package core

import (
	"errors"
	"testing"

	"doppio/internal/eventloop"
)

// TestKillMidAwait pins the contract the process layer leans on:
// proc.Kernel.Kill terminates a guest whose thread is parked on a
// Completion (a pipe read, a waitpid). Killing the thread mid-await
// must not resurrect it when the operation's late resolution arrives,
// must release the loop's pending slot (no leaked resolver keeping
// Run alive), and must leave the scheduler's run queue usable for
// other threads.
func TestKillMidAwait(t *testing.T) {
	loop := eventloop.New(chromeOpts())
	rt := NewRuntime(loop, Config{})

	var c *Completion
	ran := 0
	th := rt.Spawn("victim", RunnableFunc(func(t2 *Thread) RunResult {
		ran++
		if ran > 1 {
			t.Error("killed thread was scheduled again")
			return Done
		}
		c = NewCompletion(loop, "test.pipe-read")
		if !c.Await(t2) {
			t.Error("await resolved synchronously")
		}
		return Block
	}))
	rt.Start()

	killed := false
	survivorRan := false
	var poll func()
	poll = func() {
		if th.State() != BlockedState {
			loop.SetTimeout(poll, 0)
			return
		}
		killed = true
		// The external half of the in-flight operation: holds the
		// loop's pending slot until fired.
		resolve := c.Resolver()
		th.Kill()
		// The late result must release the slot and be ignored by the
		// terminated thread (Thread.Block's resume is a no-op then).
		go resolve(nil, errors.New("canceled by signal"))
		// The run queue still schedules other work after the kill.
		rt.Spawn("survivor", RunnableFunc(func(*Thread) RunResult {
			survivorRan = true
			return Done
		}))
		rt.Start()
	}
	loop.SetTimeout(poll, 0)

	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("victim never reached the blocked state")
	}
	if ran != 1 {
		t.Fatalf("victim ran %d slices, want 1", ran)
	}
	if th.State() != TerminatedState {
		t.Errorf("victim state = %v, want terminated", th.State())
	}
	if !survivorRan {
		t.Error("run queue wedged: survivor thread never ran")
	}
	if dl := rt.DeadlockedThreads(); len(dl) != 0 {
		t.Errorf("deadlocked threads after kill: %d", len(dl))
	}
	if !c.Settled() {
		t.Error("late resolution was dropped instead of settling the completion")
	}
}

package core

import "testing"

func rqThread(id, prio int) *Thread {
	return &Thread{ID: id, prio: prio}
}

func TestRunQueueFIFOWithinLevel(t *testing.T) {
	q := newRunQueue(10, 0)
	a, b, c := rqThread(1, 5), rqThread(2, 5), rqThread(3, 5)
	q.push(a)
	q.push(b)
	q.push(c)
	if q.depth() != 3 {
		t.Fatalf("depth = %d", q.depth())
	}
	for i, want := range []*Thread{a, b, c} {
		if got := q.pop(); got != want {
			t.Fatalf("pop %d = #%d, want #%d", i, got.ID, want.ID)
		}
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue")
	}
}

func TestRunQueueHigherLevelFirst(t *testing.T) {
	q := newRunQueue(10, 0)
	lo, hi := rqThread(1, 2), rqThread(2, 9)
	q.push(lo)
	q.push(hi)
	if got := q.pop(); got != hi {
		t.Fatalf("pop = #%d, want high-priority thread", got.ID)
	}
	if got := q.pop(); got != lo {
		t.Fatalf("pop = #%d, want low-priority thread", got.ID)
	}
}

func TestRunQueueRemoveMidList(t *testing.T) {
	q := newRunQueue(10, 0)
	a, b, c := rqThread(1, 5), rqThread(2, 5), rqThread(3, 5)
	q.push(a)
	q.push(b)
	q.push(c)
	q.remove(b)
	if b.inQueue {
		t.Fatal("removed thread still marked queued")
	}
	if got := q.pop(); got != a {
		t.Fatalf("pop = #%d, want #1", got.ID)
	}
	if got := q.pop(); got != c {
		t.Fatalf("pop = #%d, want #3", got.ID)
	}
	if q.size != 0 {
		t.Fatalf("size = %d", q.size)
	}
	// remove on a dequeued thread is a no-op.
	q.remove(a)
}

func TestRunQueueDoubleEnqueuePanics(t *testing.T) {
	q := newRunQueue(10, 0)
	a := rqThread(1, 5)
	q.push(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double enqueue did not panic")
		}
	}()
	q.push(a)
}

func TestRunQueueAgingPreempts(t *testing.T) {
	// With threshold 3, a waiting low-priority thread preempts on the
	// third pop that would otherwise pass it over.
	q := newRunQueue(10, 3)
	lo := rqThread(99, 1)
	q.push(lo)
	for i := 0; i < 5; i++ {
		hi := rqThread(i, 9)
		q.push(hi)
	}
	for i := 0; i < 2; i++ {
		if got := q.pop(); got.prio != 9 {
			t.Fatalf("pop %d = prio %d, want high-priority first", i, got.prio)
		}
	}
	if got := q.pop(); got != lo {
		t.Fatalf("aged pop = #%d (prio %d), want starved low-priority thread", got.ID, got.prio)
	}
}

func TestRunQueueClampPrio(t *testing.T) {
	q := newRunQueue(10, 0)
	if got := q.clampPrio(0); got != 1 {
		t.Errorf("clampPrio(0) = %d", got)
	}
	if got := q.clampPrio(11); got != 10 {
		t.Errorf("clampPrio(11) = %d", got)
	}
	if got := q.clampPrio(7); got != 7 {
		t.Errorf("clampPrio(7) = %d", got)
	}
}

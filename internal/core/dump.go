package core

import (
	"fmt"
	"strings"
	"time"
)

// ThreadInfo is the post-mortem / live-inspection view of one thread:
// everything a jstack-style report prints per thread.
type ThreadInfo struct {
	ID       int    `json:"id"`
	Name     string `json:"name"`
	State    string `json:"state"`
	Priority int    `json:"priority"`
	// BlockedOn is the label of the Completion the thread is blocked on
	// (e.g. "monitorenter:Queue"); empty unless State is "blocked".
	BlockedOn string        `json:"blocked_on,omitempty"`
	CPUTime   time.Duration `json:"cpu_time_ns"`
	InQueue   bool          `json:"in_queue"`
}

// SchedulerDump is a point-in-time view of the whole runtime: the
// thread table plus scheduler configuration, queue shape, and
// counters. Collect it with Runtime.Dump on the event-loop goroutine
// (or after the loop has drained).
type SchedulerDump struct {
	Mechanism   string        `json:"mechanism"`
	Timeslice   time.Duration `json:"timeslice_ns"`
	BatchBudget time.Duration `json:"batch_budget_ns"`
	Threads     []ThreadInfo  `json:"threads"`
	// RunQueueDepths is the queued-thread count per priority level;
	// index 0 is priority 1, the least urgent.
	RunQueueDepths []int `json:"runq_depths"`
	Stats          Stats `json:"stats"`
}

// Dump snapshots the runtime. The runtime executes entirely on the
// event-loop goroutine, so call Dump from there (loop.Post) or after
// Loop.Run has returned.
func (rt *Runtime) Dump() SchedulerDump {
	d := SchedulerDump{
		Mechanism:      rt.mechanism,
		Timeslice:      rt.cfg.Timeslice,
		BatchBudget:    rt.batchBudget,
		RunQueueDepths: rt.runq.levelDepths(),
		Stats:          rt.stats,
		Threads:        make([]ThreadInfo, 0, len(rt.threads)),
	}
	for _, t := range rt.threads {
		d.Threads = append(d.Threads, ThreadInfo{
			ID:        t.ID,
			Name:      t.Name,
			State:     t.state.String(),
			Priority:  t.prio,
			BlockedOn: t.blockedOn,
			CPUTime:   t.CPUTime,
			InQueue:   t.inQueue,
		})
	}
	return d
}

// Blocked returns the threads in the dump that are blocked.
func (d SchedulerDump) Blocked() []ThreadInfo {
	var out []ThreadInfo
	for _, t := range d.Threads {
		if t.State == "blocked" {
			out = append(out, t)
		}
	}
	return out
}

// Format renders the dump as a jstack-style human-readable report.
func (d SchedulerDump) Format() string {
	var b strings.Builder
	b.WriteString("== thread dump ==\n")
	fmt.Fprintf(&b, "scheduler: mechanism=%s timeslice=%s batch-budget=%s\n",
		d.Mechanism, d.Timeslice, d.BatchBudget)
	fmt.Fprintf(&b, "stats: slices=%d batches=%d max-batch=%d overruns=%d suspensions=%d ctx-switches=%d\n",
		d.Stats.Slices, d.Stats.Batches, d.Stats.MaxBatchSlices,
		d.Stats.BudgetOverruns, d.Stats.Suspensions, d.Stats.ContextSwitches)
	depths := make([]string, len(d.RunQueueDepths))
	for i, n := range d.RunQueueDepths {
		depths[i] = fmt.Sprintf("p%d:%d", i+1, n)
	}
	fmt.Fprintf(&b, "run queue: %s\n", strings.Join(depths, " "))
	fmt.Fprintf(&b, "threads (%d):\n", len(d.Threads))
	for _, t := range d.Threads {
		fmt.Fprintf(&b, "  %q #%d prio=%d %s cpu=%s", t.Name, t.ID, t.Priority, t.State, t.CPUTime.Round(time.Microsecond))
		if t.BlockedOn != "" {
			fmt.Fprintf(&b, "\n    waiting on <%s>", t.BlockedOn)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
